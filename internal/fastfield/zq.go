package fastfield

import "fmt"

// zq provides arithmetic in the prime field Z_q, optionally via lookup
// tables (the paper: "We can implement operations over Z_q via a table, so
// that they take O(log q) time"). Tables are built when q is small enough
// that a q×q multiplication table is cheap.
type zq struct {
	q        uint32
	mulTable []uint32 // q*q entries when tabled, nil otherwise
	invTable []uint32 // q entries when tabled
}

// tableLimit bounds the table size: q ≤ tableLimit gets a q² table (≤ 16 MB).
const tableLimit = 2048

func newZq(q uint32) *zq {
	z := &zq{q: q}
	if q <= tableLimit {
		z.mulTable = make([]uint32, int(q)*int(q))
		for a := uint32(0); a < q; a++ {
			for b := a; b < q; b++ {
				p := uint32(uint64(a) * uint64(b) % uint64(q))
				z.mulTable[a*q+b] = p
				z.mulTable[b*q+a] = p
			}
		}
		z.invTable = make([]uint32, q)
		for a := uint32(1); a < q; a++ {
			z.invTable[a] = z.expDirect(a, uint64(q-2))
		}
	}
	return z
}

func (z *zq) add(a, b uint32) uint32 {
	s := a + b
	if s >= z.q {
		s -= z.q
	}
	return s
}

func (z *zq) sub(a, b uint32) uint32 {
	if a >= b {
		return a - b
	}
	return a + z.q - b
}

func (z *zq) neg(a uint32) uint32 {
	if a == 0 {
		return 0
	}
	return z.q - a
}

func (z *zq) mul(a, b uint32) uint32 {
	if z.mulTable != nil {
		return z.mulTable[a*z.q+b]
	}
	return uint32(uint64(a) * uint64(b) % uint64(z.q))
}

func (z *zq) expDirect(a uint32, e uint64) uint32 {
	result := uint32(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = uint32(uint64(result) * uint64(base) % uint64(z.q))
		}
		base = uint32(uint64(base) * uint64(base) % uint64(z.q))
		e >>= 1
	}
	return result
}

func (z *zq) exp(a uint32, e uint64) uint32 {
	result := uint32(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = z.mul(result, base)
		}
		base = z.mul(base, base)
		e >>= 1
	}
	return result
}

func (z *zq) inv(a uint32) uint32 {
	if a == 0 {
		panic("fastfield: inverse of zero in Z_q")
	}
	if z.invTable != nil {
		return z.invTable[a]
	}
	return z.expDirect(a, uint64(z.q-2))
}

// generator finds a generator of Z_q^* by trial against the prime factors
// of q−1.
func (z *zq) generator() (uint32, error) {
	factors := primeFactors(uint64(z.q - 1))
	for g := uint32(2); g < z.q; g++ {
		ok := true
		for _, p := range factors {
			if z.expDirect(g, uint64(z.q-1)/p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("fastfield: no generator found for Z_%d", z.q)
}

func primeFactors(n uint64) []uint64 {
	var out []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

func isPrime(n uint32) bool {
	if n < 2 {
		return false
	}
	for p := uint32(2); uint64(p)*uint64(p) <= uint64(n); p++ {
		if n%p == 0 {
			return false
		}
	}
	return true
}
