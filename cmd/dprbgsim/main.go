// Command dprbgsim runs a configurable D-PRBG simulation: n players
// (optionally some Byzantine), a one-time trusted seed, and a stream of
// shared coins generated on demand with full cost accounting. It is the
// interactive companion to cmd/experiments.
//
// Usage:
//
//	dprbgsim -n 13 -t 2 -k 32 -coins 200 -batch 32 -crash 2,9 -v
//
// Fault injection (shared vocabulary with internal/adversary):
//
//	-crash 2,9                        players 2 and 9 crash at start
//	-faults 'crash:2; garbage@40:9'   full spec — crash, crash-after@R,
//	                                  silent[@R], garbage[@R], replay[@R]
//
// Observability:
//
//	-trace coins.jsonl   write the full protocol trace as JSONL (replayable
//	                     with obs.ParseJSONL)
//	-timeline            print a per-round timeline (player 0 + network view)
//	-pprof :6060         serve net/http/pprof and live counters (expvar) on
//	                     the given address while the simulation runs
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// config is the validated flag set of one invocation.
type config struct {
	n, t, k  int
	coins    int
	batch    int
	seed     int
	faults   adversary.Spec
	rngSeed  int64
	verbose  bool
	useTCP   bool
	trace    string
	timeline bool
	pprof    string
}

// parseFlags parses args into a config, validating every combination up
// front so misconfigurations fail with a clear message instead of a late
// protocol error deep inside a run.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("dprbgsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 7, "number of players (n ≥ 6t+1)")
		t        = fs.Int("t", 1, "Byzantine fault bound")
		k        = fs.Int("k", 32, "coin field GF(2^k), 2 ≤ k ≤ 64")
		coins    = fs.Int("coins", 100, "shared coins to generate")
		batch    = fs.Int("batch", 16, "Coin-Gen batch size M")
		seed     = fs.Int("seed", 8, "initial trusted-dealer seed coins")
		crash    = fs.String("crash", "", "comma-separated player indices that crash at start (alias for -faults 'crash:...')")
		faults   = fs.String("faults", "", "fault spec 'behaviour[@param]:idx,idx;...' (behaviours: crash, crash-after@R, silent[@R], garbage[@R], replay[@R])")
		rngSeed  = fs.Int64("rngseed", time.Now().UnixNano(), "PRNG seed (reproducibility)")
		verbose  = fs.Bool("v", false, "print every coin")
		useTCP   = fs.Bool("tcp", false, "carry every protocol message over TCP loopback sockets")
		trace    = fs.String("trace", "", "write a JSONL protocol trace to this file")
		timeline = fs.Bool("timeline", false, "print a per-round timeline after the run")
		pprofA   = fs.String("pprof", "", "serve net/http/pprof and expvar counters on this address (e.g. :6060)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected positional arguments: %v", fs.Args())
	}

	if *t < 0 {
		return nil, fmt.Errorf("-t must be ≥ 0, got %d", *t)
	}
	if *n < 6**t+1 {
		return nil, fmt.Errorf("-n %d is too small for -t %d: the paper's Coin-Gen regime needs n ≥ 6t+1 = %d",
			*n, *t, 6**t+1)
	}
	if *k < 2 || *k > 64 {
		return nil, fmt.Errorf("-k must be in [2, 64], got %d", *k)
	}
	if *coins < 1 {
		return nil, fmt.Errorf("-coins must be ≥ 1, got %d", *coins)
	}
	if *batch < 1 {
		return nil, fmt.Errorf("-batch must be ≥ 1, got %d", *batch)
	}
	if *batch <= core.DefaultThreshold {
		return nil, fmt.Errorf("-batch %d must exceed the refill threshold %d or refills cannot make net progress",
			*batch, core.DefaultThreshold)
	}
	if *seed < core.DefaultThreshold {
		return nil, fmt.Errorf("-seed %d is below the refill threshold %d: the first refill would run out of challenge coins",
			*seed, core.DefaultThreshold)
	}

	// -crash is sugar for the crash behaviour of the full -faults spec; both
	// feed the same parser so every flag error reads identically.
	spec := *faults
	if *crash != "" {
		if spec != "" {
			spec += "; "
		}
		spec += "crash:" + *crash
	}
	parsed, err := adversary.ParseSpec(spec, *n, *rngSeed)
	if err != nil {
		return nil, err
	}
	if len(parsed) > *t {
		return nil, fmt.Errorf("%d faulty players exceed the fault bound -t %d", len(parsed), *t)
	}

	return &config{
		n: *n, t: *t, k: *k,
		coins: *coins, batch: *batch, seed: *seed,
		faults: parsed, rngSeed: *rngSeed,
		verbose: *verbose, useTCP: *useTCP,
		trace: *trace, timeline: *timeline, pprof: *pprofA,
	}, nil
}

// publishCounters exposes the live counter snapshot as the expvar variable
// "dprbg.counters". expvar.Publish panics on duplicate names, so the
// registration is process-global and sticky: the last-started run wins.
var publishCounters = sync.OnceFunc(func() {
	expvar.Publish("dprbg.counters", expvar.Func(func() interface{} {
		liveCounters.mu.Lock()
		defer liveCounters.mu.Unlock()
		if liveCounters.ctr == nil {
			return nil
		}
		return liveCounters.ctr.Snapshot()
	}))
})

var liveCounters struct {
	mu  sync.Mutex
	ctr *metrics.Counters
}

func run(args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}

	field, err := gf2k.New(cfg.k)
	if err != nil {
		return err
	}

	var ctr metrics.Counters
	if cfg.pprof != "" {
		liveCounters.mu.Lock()
		liveCounters.ctr = &ctr
		liveCounters.mu.Unlock()
		publishCounters()
		go func() {
			if err := http.ListenAndServe(cfg.pprof, nil); err != nil {
				fmt.Fprintf(stderr, "dprbgsim: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(stderr, "dprbgsim: pprof + expvar on http://%s/debug/pprof/ (counters at /debug/vars)\n", cfg.pprof)
	}

	// Assemble the tracer: a JSONL export, an in-memory ring for the
	// timeline, or both. No flag → nil tracer → true zero-cost path.
	var sinks []obs.Sink
	var ring *obs.Ring
	var jsonl *obs.JSONL
	var traceFile *os.File
	if cfg.trace != "" {
		traceFile, err = os.Create(cfg.trace)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		defer traceFile.Close()
		jsonl = obs.NewJSONL(traceFile)
		sinks = append(sinks, jsonl)
	}
	if cfg.timeline {
		ring = obs.NewRing(0)
		sinks = append(sinks, ring)
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.New(&ctr, sinks...)
	}

	coreCfg := core.Config{
		Field:     field.WithCounters(&ctr),
		N:         cfg.n,
		T:         cfg.t,
		BatchSize: cfg.batch,
		Counters:  &ctr,
	}
	rng := rand.New(rand.NewSource(cfg.rngSeed))
	gens, err := core.SetupTrusted(coreCfg, cfg.seed, rng)
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "dprbgsim: n=%d t=%d k=%d batch=%d seed=%d faults=[%s] rngseed=%d tcp=%v\n",
		cfg.n, cfg.t, cfg.k, cfg.batch, cfg.seed, describeFaults(cfg.faults), cfg.rngSeed, cfg.useTCP)

	opts := []simnet.Option{simnet.WithCounters(&ctr)}
	if tracer != nil {
		opts = append(opts, simnet.WithTracer(tracer))
	}
	var nw *simnet.Network
	if cfg.useTCP {
		nw, err = simnet.NewTCP(cfg.n, opts...)
		if err != nil {
			return err
		}
		defer nw.Close()
	} else {
		nw = simnet.New(cfg.n, opts...)
	}
	fns := make([]simnet.PlayerFunc, cfg.n)
	for i := 0; i < cfg.n; i++ {
		if f, ok := cfg.faults[i]; ok {
			fns[i] = f.Fn
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(cfg.rngSeed + int64(i) + 1))
			out := make([]gf2k.Element, 0, cfg.coins)
			for len(out) < cfg.coins {
				c, err := gens[i].Next(nd, rnd)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		}
	}
	start := time.Now()
	results := simnet.Run(nw, fns)
	elapsed := time.Since(start)

	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			return fmt.Errorf("write trace %s: %w", cfg.trace, err)
		}
		fmt.Fprintf(stderr, "dprbgsim: trace written to %s\n", cfg.trace)
	}

	var ref []gf2k.Element
	var refIdx int
	for i, r := range results {
		// Faulty players are outside the unanimity/error contract: some stop
		// with an error by design (e.g. silent players hit the round budget).
		if _, faulty := cfg.faults[i]; faulty {
			continue
		}
		if r.Err != nil {
			return fmt.Errorf("player %d: %w", i, r.Err)
		}
		if ref == nil {
			ref = r.Value.([]gf2k.Element)
			refIdx = i
			continue
		}
		got := r.Value.([]gf2k.Element)
		for h := range ref {
			if got[h] != ref[h] {
				return fmt.Errorf("UNANIMITY VIOLATION at coin %d between players %d and %d", h, refIdx, i)
			}
		}
	}

	if cfg.timeline {
		// One player's view plus the network events is the readable cut;
		// every honest player's timeline is identical up to span ids.
		var view []obs.Event
		for _, e := range ring.Events() {
			if e.Player == refIdx || e.Player < 0 {
				view = append(view, e)
			}
		}
		fmt.Fprintf(stdout, "--- timeline (player %d + network; %d of %d events) ---\n",
			refIdx, len(view), len(ring.Events()))
		obs.Timeline(stdout, view)
		if d := ring.Dropped(); d > 0 {
			fmt.Fprintf(stdout, "(ring dropped %d oldest events; timeline is truncated at the front)\n", d)
		}
	}

	if cfg.verbose {
		for h, c := range ref {
			fmt.Fprintf(stdout, "coin %4d: %0*x\n", h, (field.K()+3)/4, uint64(c))
		}
	}
	st := gens[refIdx].Stats()
	s := ctr.Snapshot()
	fmt.Fprintf(stdout, "coins delivered:   %d (all honest players unanimous)\n", st.CoinsDelivered)
	fmt.Fprintf(stdout, "refills:           %d (batch size %d; %.2f seed coins each; %.2f leader attempts each)\n",
		st.Batches, cfg.batch, float64(st.SeedSpent)/max1(st.Batches), float64(st.Attempts)/max1(st.Batches))
	fmt.Fprintf(stdout, "totals:            %d msgs, %d bytes, %d rounds, %d interpolations, %d field mults\n",
		s.Messages, s.Bytes, s.Rounds, s.Interpolations, s.FieldMuls)
	fmt.Fprintf(stdout, "amortized/coin:    %.1f msgs, %.1f bytes, %.2f rounds, %.2f interpolations\n",
		float64(s.Messages)/float64(cfg.coins), float64(s.Bytes)/float64(cfg.coins),
		float64(s.Rounds)/float64(cfg.coins), float64(s.Interpolations)/float64(cfg.coins))
	fmt.Fprintf(stdout, "wall clock:        %v (%.1f µs/coin)\n", elapsed,
		float64(elapsed.Microseconds())/float64(cfg.coins))
	return nil
}

func max1(v int) float64 {
	if v < 1 {
		return 1
	}
	return float64(v)
}

// describeFaults renders the parsed spec back as "idx:behaviour" pairs in
// index order for the startup banner.
func describeFaults(sp adversary.Spec) string {
	parts := make([]string, 0, len(sp))
	for _, i := range sp.Indices() {
		parts = append(parts, fmt.Sprintf("%d:%s", i, sp[i].Name))
	}
	return strings.Join(parts, " ")
}
