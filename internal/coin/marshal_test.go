package coin

import (
	"math/rand"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/simnet"
)

func TestBatchMarshalRoundTrip(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	batches, values, err := DealTrusted(f, 7, 2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize each player's batch, restore, expose: the restored batches
	// must produce the original coins.
	restored := make([]*Batch, 7)
	for i, b := range batches {
		b.Silent = i == 6 // exercise the flag
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		r, err := UnmarshalBatch(data)
		if err != nil {
			t.Fatal(err)
		}
		if r.T != b.T || r.Silent != b.Silent || len(r.S) != len(b.S) || r.Remaining() != b.Remaining() {
			t.Fatalf("player %d: metadata mismatch: %+v vs %+v", i, r, b)
		}
		restored[i] = r
	}
	nw := simnet.New(7)
	fns := make([]simnet.PlayerFunc, 7)
	for i := range fns {
		b := restored[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			var out []gf2k.Element
			for b.Remaining() > 0 {
				c, err := b.Expose(nd)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for h, want := range values {
			if got[h] != want {
				t.Fatalf("player %d coin %d: %#x, want %#x", i, h, got[h], want)
			}
		}
	}
}

func TestBatchMarshalPreservesCursor(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(2))
	batches, values, err := DealTrusted(f, 4, 1, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expose one coin, serialize mid-stream, restore, continue.
	nw := simnet.New(4)
	fns := make([]simnet.PlayerFunc, 4)
	for i := range fns {
		b := batches[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := b.Expose(nd); err != nil {
				return nil, err
			}
			data, err := b.MarshalBinary()
			if err != nil {
				return nil, err
			}
			r, err := UnmarshalBatch(data)
			if err != nil {
				return nil, err
			}
			if r.Cursor() != 1 || r.Remaining() != 2 {
				t.Errorf("cursor/remaining = %d/%d, want 1/2", r.Cursor(), r.Remaining())
			}
			return r.Expose(nd)
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.(gf2k.Element) != values[1] {
			t.Fatalf("player %d: resumed at wrong coin", i)
		}
	}
}

func TestUnmarshalBatchRejectsMalformed(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(3))
	batches, _, err := DealTrusted(f, 4, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	good, err := batches[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("NOTMAGIC"), good[8:]...),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0xff),
		"cursor range": func() []byte { b := append([]byte{}, good...); b[len(b)-4] = 0xff; return b }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalBatch(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Valid round trip sanity.
	if _, err := UnmarshalBatch(good); err != nil {
		t.Fatalf("good encoding rejected: %v", err)
	}
}
