package multicell

import (
	"strconv"

	"repro/internal/obs/prom"
)

// Metrics declares the cluster's Prometheus families on a registry.
// Attach via Config.Metrics. Routing counters are incremented inline on
// the draw path (counter bumps only — no clock reads); the per-cell depth
// gauges are snapshots, refreshed by Refresh, which the gateway calls at
// scrape time so every /metrics response carries current depths. A nil
// bundle adds one nil check to the hot path, nothing more.
type Metrics struct {
	reg *prom.Registry

	// RoutedDraws is multicell_routed_draws_total{cell,route}: served
	// draws by serving cell and how they got there — hash (tenant's
	// consistent-hash home), rr (anonymous round-robin), shed (rerouted
	// off a saturated/lagging/down primary).
	RoutedDraws *prom.CounterVec
	// Shed is multicell_shed_total{cell}: draws whose PRIMARY was this
	// cell but which another cell served (the shed-away view; the
	// receiving side shows up under routed_draws{route="shed"}).
	Shed *prom.CounterVec
	// Rejected is multicell_rejected_total{reason}: rate-limited,
	// stream-quota, saturated, down.
	Rejected *prom.CounterVec

	// Per-cell snapshot gauges (Refresh): store depth, queue depth, refill
	// lag below the high-water mark, refill-in-flight, down flag.
	Depth          *prom.GaugeVec
	Queue          *prom.GaugeVec
	RefillLag      *prom.GaugeVec
	RefillInFlight *prom.GaugeVec
	Down           *prom.GaugeVec
	CellCoins      *prom.GaugeVec
	CellBlocked    *prom.GaugeVec
}

// NewMetrics registers the cluster families on r (nil r → disabled).
func NewMetrics(r *prom.Registry) *Metrics {
	return &Metrics{
		reg:            r,
		RoutedDraws:    r.CounterVec("multicell_routed_draws_total", "Draws served, by serving cell and route (hash, rr, shed).", "cell", "route"),
		Shed:           r.CounterVec("multicell_shed_total", "Draws shed away from their primary cell (saturated, lagging or down).", "cell"),
		Rejected:       r.CounterVec("multicell_rejected_total", "Draws rejected by the router (rate-limited, stream-quota, saturated, down).", "reason"),
		Depth:          r.GaugeVec("beacon_cell_depth", "Sealed coins left in the cell's store.", "cell"),
		Queue:          r.GaugeVec("beacon_cell_queue_depth", "Draw requests waiting in the cell's bounded queue.", "cell"),
		RefillLag:      r.GaugeVec("beacon_cell_refill_lag", "Coins the cell's store sits below its high-water mark (0 = pipeline keeping up).", "cell"),
		RefillInFlight: r.GaugeVec("beacon_cell_refill_in_flight", "1 while the cell runs a pipelined Coin-Gen.", "cell"),
		Down:           r.GaugeVec("beacon_cell_down", "1 once the cell failed terminally and was retired from routing.", "cell"),
		CellCoins:      r.GaugeVec("beacon_cell_coins_total", "Coins the cell has delivered (snapshot of the cell's own counter).", "cell"),
		CellBlocked:    r.GaugeVec("beacon_cell_blocked_draws", "Draws that waited on a Coin-Gen round inside this cell.", "cell"),
	}
}

// registerGauges installs the scrape-time cluster-level gauges.
func (m *Metrics) registerGauges(cl *Cluster) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.GaugeFunc("multicell_streams_active", "Live Stream subscriptions across all tenants.",
		func() float64 { return float64(cl.streamsActive.Load()) })
	m.reg.GaugeFunc("multicell_cells", "Configured cell count.",
		func() float64 { return float64(cl.Cells()) })
}

// Refresh snapshots every cell's depth gauges. The gateway wraps its
// /metrics handler with this so scrapes are always current.
func (m *Metrics) Refresh(cl *Cluster) {
	if m == nil || m.reg == nil {
		return
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	for _, st := range cl.CellStats() {
		c := strconv.Itoa(st.Cell)
		m.Depth.With(c).SetInt(int64(st.Remaining))
		m.Queue.With(c).SetInt(int64(st.QueueDepth))
		m.RefillLag.With(c).SetInt(int64(st.RefillLag))
		m.RefillInFlight.With(c).Set(b2f(st.RefillInFlight))
		m.Down.With(c).Set(b2f(st.Down))
		m.CellCoins.With(c).SetInt(st.Coins)
		m.CellBlocked.With(c).SetInt(st.BlockedDraws)
	}
}

// routedDraw counts one served draw (nil-safe).
func (m *Metrics) routedDraw(cell int, route string) {
	if m == nil {
		return
	}
	m.RoutedDraws.With(strconv.Itoa(cell), route).Inc()
}

// shed counts one draw shed away from its primary cell (nil-safe).
func (m *Metrics) shed(primary int) {
	if m == nil {
		return
	}
	m.Shed.With(strconv.Itoa(primary)).Inc()
}

// rejected counts one router rejection (nil-safe).
func (m *Metrics) rejected(reason string) {
	if m == nil {
		return
	}
	m.Rejected.With(reason).Inc()
}

// cellDown latches the down gauge the moment a cell is retired (nil-safe;
// Refresh keeps it set thereafter).
func (m *Metrics) cellDown(cell int) {
	if m == nil {
		return
	}
	m.Down.With(strconv.Itoa(cell)).Set(1)
}
