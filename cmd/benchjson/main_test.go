package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro/internal/gf2k
BenchmarkInterpolate/k=32/n=64-8   	    1000	   1234.5 ns/op	      56 B/op	       7 allocs/op
BenchmarkBatchVSSScale/n=16-8      	     200	 987654 ns/op	  4096 B/op	      99 allocs/op
BenchmarkBeaconDraw-8              	   50000	     321 ns/op	     18000 coins/s
BenchmarkBroken: some note line
PASS
ok  	repro/internal/gf2k	2.345s
`
	results, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkInterpolate/k=32/n=64" || r.Iterations != 1000 {
		t.Fatalf("bad first result (GOMAXPROCS suffix must be stripped): %+v", r)
	}
	if r.Metrics["ns/op"] != 1234.5 || r.Metrics["allocs/op"] != 7 {
		t.Fatalf("bad metrics: %+v", r.Metrics)
	}
	if results[2].Metrics["coins/s"] != 18000 {
		t.Fatalf("custom metric lost: %+v", results[2].Metrics)
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":                "BenchmarkFoo",
		"BenchmarkFoo-16":               "BenchmarkFoo",
		"BenchmarkFoo":                  "BenchmarkFoo",
		"BenchmarkFoo/n=64-4":           "BenchmarkFoo/n=64",
		"BenchmarkFoo/shared-challenge": "BenchmarkFoo/shared-challenge",
		"BenchmarkFoo/k=0064":           "BenchmarkFoo/k=0064",
		"BenchmarkFoo-":                 "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Fatalf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMergeResults(t *testing.T) {
	old := []Result{
		{Name: "A", Iterations: 1, Metrics: map[string]float64{"ns/op": 100}},
		{Name: "B", Iterations: 1, Metrics: map[string]float64{"ns/op": 200}},
	}
	fresh := []Result{
		{Name: "B", Iterations: 2, Metrics: map[string]float64{"ns/op": 150}},
		{Name: "C", Iterations: 3, Metrics: map[string]float64{"ns/op": 300}},
	}
	got := mergeResults(old, fresh)
	if len(got) != 3 {
		t.Fatalf("merged %d results, want 3", len(got))
	}
	if got[0].Name != "A" || got[1].Name != "B" || got[2].Name != "C" {
		t.Fatalf("merge order broken: %+v", got)
	}
	if got[1].Metrics["ns/op"] != 150 || got[1].Iterations != 2 {
		t.Fatalf("same-name entry not overwritten: %+v", got[1])
	}
	if got[0].Metrics["ns/op"] != 100 {
		t.Fatalf("untouched entry changed: %+v", got[0])
	}
}

func TestSplitSeries(t *testing.T) {
	if got := splitSeries(""); got != nil {
		t.Fatalf("splitSeries(\"\") = %v, want nil", got)
	}
	got := splitSeries(" Interpolate, BatchVSS ,,BeaconDraw ")
	want := []string{"Interpolate", "BatchVSS", "BeaconDraw"}
	if len(got) != len(want) {
		t.Fatalf("splitSeries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitSeries = %v, want %v", got, want)
		}
	}
}

func doc(entries map[string]float64) Document {
	var d Document
	for name, ns := range entries {
		m := map[string]float64{}
		if ns > 0 {
			m["ns/op"] = ns
		}
		d.Results = append(d.Results, Result{Name: name, Iterations: 1, Metrics: m})
	}
	return d
}

func TestCompareDocsFlagsRegression(t *testing.T) {
	base := doc(map[string]float64{
		"BenchmarkInterpolate/n=64-8": 1000,
		"BenchmarkBatchVSSScale-8":    2000,
		"BenchmarkBeaconDraw-8":       500,
	})
	cand := doc(map[string]float64{
		"BenchmarkInterpolate/n=64-8": 1300, // +30%: regression at 25% tolerance
		"BenchmarkBatchVSSScale-8":    2100, // +5%: within tolerance
		"BenchmarkBeaconDraw-8":       400,  // faster: always passes
	})
	rep := compareDocs(base, cand, []string{"Interpolate", "BatchVSS", "BeaconDraw"}, nil, 0.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "BenchmarkInterpolate/n=64-8" {
		t.Fatalf("regressions = %+v, want just Interpolate", rep.Regressions)
	}
	if len(rep.Passed) != 2 {
		t.Fatalf("passed = %+v, want 2 entries", rep.Passed)
	}
	if got := rep.Regressions[0].Change; got < 0.29 || got > 0.31 {
		t.Fatalf("regression change = %v, want ~0.30", got)
	}
	if !strings.Contains(rep.String(), "FAIL") {
		t.Fatalf("report does not mark the failure:\n%s", rep.String())
	}
}

func TestCompareDocsExactlyAtToleranceIsNotRegression(t *testing.T) {
	base := doc(map[string]float64{"BenchmarkInterpolate-8": 1000})
	cand := doc(map[string]float64{"BenchmarkInterpolate-8": 1250})
	rep := compareDocs(base, cand, nil, nil, 0.25)
	if len(rep.Regressions) != 0 || len(rep.Passed) != 1 {
		t.Fatalf("+25%% at 0.25 tolerance must pass: %+v", rep)
	}
}

// TestCompareDocsMissingNamesFail pins the disappearing-benchmark fix: a
// gated name present in only one document fails the comparison (in BOTH
// directions) instead of silently turning its gate into a no-op.
func TestCompareDocsMissingNamesFail(t *testing.T) {
	base := doc(map[string]float64{
		"BenchmarkInterpolate-8": 1000,
		"BenchmarkOnlyInBase-8":  50, // deleted/renamed benchmark
	})
	cand := doc(map[string]float64{
		"BenchmarkInterpolate-8": 900,
		"BenchmarkBrandNew-8":    75, // new benchmark, no baseline yet
	})
	rep := compareDocs(base, cand, nil, nil, 0.25)
	if len(rep.Missing) != 2 {
		t.Fatalf("missing = %v, want both one-sided names", rep.Missing)
	}
	if !rep.Failed() {
		t.Fatal("one-sided gated names must fail the comparison")
	}
	if len(rep.Regressions) != 0 || len(rep.Passed) != 1 {
		t.Fatalf("common entry not compared normally: %+v", rep)
	}
	if !strings.Contains(rep.String(), "FAIL") {
		t.Fatalf("report does not flag missing names:\n%s", rep.String())
	}
}

// TestCompareDocsAllowMissing: the allowlist downgrades declared one-sided
// names to skips — and only those.
func TestCompareDocsAllowMissing(t *testing.T) {
	base := doc(map[string]float64{
		"BenchmarkInterpolate-8": 1000,
		"BenchmarkOnlyInBase-8":  50,
	})
	cand := doc(map[string]float64{
		"BenchmarkInterpolate-8": 900,
		"BenchmarkBrandNew-8":    75,
	})
	rep := compareDocs(base, cand, nil, []string{"BrandNew"}, 0.25)
	if len(rep.Missing) != 1 || !strings.Contains(rep.Missing[0], "OnlyInBase") {
		t.Fatalf("missing = %v, want only the unlisted OnlyInBase", rep.Missing)
	}
	if len(rep.Skipped) != 1 || !strings.Contains(rep.Skipped[0], "BrandNew") {
		t.Fatalf("skipped = %v, want the allowlisted BrandNew", rep.Skipped)
	}
	rep = compareDocs(base, cand, nil, []string{"BrandNew", "OnlyInBase"}, 0.25)
	if rep.Failed() {
		t.Fatalf("fully allowlisted one-sided names still fail: %+v", rep)
	}
}

func TestCompareDocsSeriesFilter(t *testing.T) {
	base := doc(map[string]float64{
		"BenchmarkInterpolate-8": 1000,
		"BenchmarkUnrelated-8":   100,
	})
	cand := doc(map[string]float64{
		"BenchmarkInterpolate-8": 1010,
		"BenchmarkUnrelated-8":   900, // 9x slower, but not a gated series
	})
	rep := compareDocs(base, cand, []string{"Interpolate"}, nil, 0.25)
	if len(rep.Regressions) != 0 {
		t.Fatalf("ungated series failed the gate: %+v", rep.Regressions)
	}
	if len(rep.Passed) != 1 || rep.Passed[0].Name != "BenchmarkInterpolate-8" {
		t.Fatalf("passed = %+v, want just Interpolate", rep.Passed)
	}
}

func TestCompareDocsMissingNsOpSkipped(t *testing.T) {
	base := doc(map[string]float64{"BenchmarkX-8": 1000})
	cand := doc(map[string]float64{"BenchmarkX-8": 0}) // no ns/op metric
	rep := compareDocs(base, cand, nil, nil, 0.25)
	if len(rep.Regressions) != 0 || len(rep.Skipped) != 1 {
		t.Fatalf("entry without ns/op must be skipped: %+v", rep)
	}
}

func gdoc(entries map[string]map[string]float64) Document {
	var d Document
	for name, m := range entries {
		d.Results = append(d.Results, Result{Name: name, Iterations: 1, Metrics: m})
	}
	return d
}

func TestParseGateSpec(t *testing.T) {
	g, err := parseGateSpec("MultiCellLoad/cells=4:draws/s:5000")
	if err != nil {
		t.Fatal(err)
	}
	if g.Pattern != "MultiCellLoad/cells=4" || g.Metric != "draws/s" || g.Value != 5000 {
		t.Fatalf("parsed %+v", g)
	}
	for _, bad := range []string{"", "a:b", "a:b:c:d", "a:b:notanumber"} {
		if _, err := parseGateSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	r, err := parseRatioSpec("cells=4:cells=1:draws/s:2.5")
	if err != nil {
		t.Fatal(err)
	}
	if r.A != "cells=4" || r.B != "cells=1" || r.Metric != "draws/s" || r.Min != 2.5 {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"a:b:c", "a:b:c:d:e", "a:b:c:nan2"} {
		if _, err := parseRatioSpec(bad); err == nil {
			t.Fatalf("ratio %q accepted", bad)
		}
	}
}

func TestApplyGatesFloorCeiling(t *testing.T) {
	cand := gdoc(map[string]map[string]float64{
		"BenchmarkLoad/cells=4-8": {"draws/s": 8000, "p99-ns": 1e6},
		"BenchmarkLoad/cells=1-8": {"draws/s": 3000, "p99-ns": 5e5},
	})
	cases := []struct {
		name     string
		floors   []gateSpec
		ceilings []gateSpec
		fail     bool
	}{
		{"floor holds", []gateSpec{{"cells=4", "draws/s", 5000}}, nil, false},
		{"floor violated", []gateSpec{{"cells=4", "draws/s", 10000}}, nil, true},
		{"floor over several entries", []gateSpec{{"Load", "draws/s", 2000}}, nil, false},
		{"ceiling holds", nil, []gateSpec{{"cells=4", "p99-ns", 2e6}}, false},
		{"ceiling violated", nil, []gateSpec{{"cells=4", "p99-ns", 1e5}}, true},
		{"vanished benchmark fails the gate", []gateSpec{{"cells=16", "draws/s", 1}}, nil, true},
		{"missing metric fails the gate", []gateSpec{{"cells=4", "coins/s", 1}}, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rep Report
			rep.applyGates(cand, tc.floors, tc.ceilings, nil)
			if rep.Failed() != tc.fail {
				t.Fatalf("failed=%v want %v: %+v", rep.Failed(), tc.fail, rep)
			}
		})
	}
}

func TestApplyGatesRatio(t *testing.T) {
	cand := gdoc(map[string]map[string]float64{
		"BenchmarkLoad/cells=4/clients=16-8": {"draws/s": 9000},
		"BenchmarkLoad/cells=1/clients=16-8": {"draws/s": 3000},
	})
	run := func(spec ratioSpec) Report {
		var rep Report
		rep.applyGates(cand, nil, nil, []ratioSpec{spec})
		return rep
	}
	if rep := run(ratioSpec{"cells=4/", "cells=1/", "draws/s", 2.5}); rep.Failed() {
		t.Fatalf("3.0x scaling failed a 2.5x gate: %+v", rep)
	}
	if rep := run(ratioSpec{"cells=4/", "cells=1/", "draws/s", 3.5}); !rep.Failed() {
		t.Fatal("3.0x scaling passed a 3.5x gate")
	}
	// An ambiguous pattern (both entries match "cells=") must fail loudly.
	if rep := run(ratioSpec{"cells=", "cells=1/", "draws/s", 1}); !rep.Failed() {
		t.Fatal("ambiguous ratio numerator accepted")
	}
	// A vanished side must fail, not no-op.
	if rep := run(ratioSpec{"cells=8/", "cells=1/", "draws/s", 1}); !rep.Failed() {
		t.Fatal("ratio with a vanished numerator passed")
	}
}
