package metrics

import (
	"sync"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.AddFieldAdds(3)
	c.AddFieldMuls(4)
	c.AddFieldInvs(5)
	c.AddInterpolations(6)
	c.AddMessages(7)
	c.AddBytes(8)
	c.AddBroadcasts(9)
	c.AddRounds(10)
	c.AddDomainHits(11)
	c.AddDomainMisses(12)
	s := c.Snapshot()
	want := Snapshot{
		FieldAdds: 3, FieldMuls: 4, FieldInvs: 5, Interpolations: 6,
		Messages: 7, Bytes: 8, Broadcasts: 9, Rounds: 10,
		DomainHits: 11, DomainMisses: 12,
	}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddBytes(100)
	c.AddRounds(5)
	c.AddDomainHits(1)
	c.AddDomainMisses(2)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestDiff(t *testing.T) {
	var c Counters
	c.AddMessages(10)
	before := c.Snapshot()
	c.AddMessages(7)
	c.AddBytes(42)
	d := Diff(before, c.Snapshot())
	if d.Messages != 7 || d.Bytes != 42 || d.Rounds != 0 {
		t.Fatalf("diff = %+v", d)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{FieldAdds: 1, Messages: 10, Bytes: 100, DomainHits: 3}
	b := Snapshot{FieldAdds: 2, Messages: 5, Rounds: 7, DomainMisses: 4}
	sum := a.Add(b)
	if sum.FieldAdds != 3 || sum.Messages != 15 || sum.Bytes != 100 ||
		sum.Rounds != 7 || sum.DomainHits != 3 || sum.DomainMisses != 4 {
		t.Fatalf("sum = %+v", sum)
	}
	if (Snapshot{}).Add(Snapshot{}) != (Snapshot{}) {
		t.Fatal("zero + zero != zero")
	}
}

func TestPerUnit(t *testing.T) {
	s := Snapshot{Bytes: 100, Messages: 10}
	u := s.PerUnit(10)
	if u.Bytes != 10 || u.Messages != 1 {
		t.Fatalf("per unit = %+v", u)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PerUnit(0) did not panic")
		}
	}()
	s.PerUnit(0)
}

func TestString(t *testing.T) {
	s := Snapshot{FieldAdds: 1, Bytes: 2}
	got := s.String()
	if got == "" {
		t.Fatal("empty String()")
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddMessages(1)
				c.AddBytes(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Messages != 8000 || s.Bytes != 16000 {
		t.Fatalf("concurrent totals: %+v", s)
	}
}
