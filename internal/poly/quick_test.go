package poly

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gf2k"
)

// quickPoints generates a random degree, a polynomial of that degree, and a
// set of distinct evaluation points, for property-based interpolation tests.
type quickCase struct {
	P  Poly
	Xs []gf2k.Element
}

func quickConfig(f gf2k.Field, maxDeg, extraPoints int, seed int64) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			deg := rng.Intn(maxDeg + 1)
			secret, _ := f.Rand(rng)
			p, err := Random(f, deg, secret, rng)
			if err != nil {
				panic(err)
			}
			n := deg + 1 + rng.Intn(extraPoints+1)
			seen := map[gf2k.Element]bool{}
			xs := make([]gf2k.Element, 0, n)
			for len(xs) < n {
				x, _ := f.Rand(rng)
				if x == 0 || seen[x] {
					continue
				}
				seen[x] = true
				xs = append(xs, x)
			}
			vals[0] = reflect.ValueOf(quickCase{P: p, Xs: xs})
		},
	}
}

// Property: interpolating deg+1 evaluations recovers a polynomial that
// agrees with the original everywhere (checked at fresh points and at 0).
func TestQuickInterpolationIdentity(t *testing.T) {
	f := gf2k.MustNew(32)
	cfg := quickConfig(f, 8, 4, 1)
	err := quick.Check(func(c quickCase) bool {
		deg := c.P.Degree()
		if deg < 0 {
			deg = 0
		}
		pts := c.Xs[:deg+1]
		q, err := Interpolate(f, pts, EvalMany(f, c.P, pts), nil)
		if err != nil {
			return false
		}
		for _, x := range c.Xs {
			if Eval(f, q, x) != Eval(f, c.P, x) {
				return false
			}
		}
		return Eval(f, q, 0) == c.P[0]
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: a degree-d polynomial evaluated at any point set fits degree d
// and does not fit degree d−1 (when d ≥ 1 and enough points are given).
func TestQuickFitsDegreeTight(t *testing.T) {
	f := gf2k.MustNew(32)
	cfg := quickConfig(f, 6, 6, 2)
	err := quick.Check(func(c quickCase) bool {
		d := c.P.Degree()
		if d < 1 || len(c.Xs) < d+3 {
			return true // vacuous
		}
		ys := EvalMany(f, c.P, c.Xs)
		ok, err := FitsDegree(f, c.Xs, ys, d, nil)
		if err != nil || !ok {
			return false
		}
		tight, err := FitsDegree(f, c.Xs, ys, d-1, nil)
		if err != nil {
			return false
		}
		return !tight
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: Eval is a ring homomorphism w.r.t. Add and ScalarMul.
func TestQuickEvalLinearity(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(3))
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			p, _ := Random(f, rng.Intn(6), gf2k.Element(rng.Uint32()), rng)
			q, _ := Random(f, rng.Intn(6), gf2k.Element(rng.Uint32()), rng)
			x, _ := f.Rand(rng)
			c, _ := f.Rand(rng)
			vals[0] = reflect.ValueOf(p)
			vals[1] = reflect.ValueOf(q)
			vals[2] = reflect.ValueOf(x)
			vals[3] = reflect.ValueOf(c)
		},
	}
	err := quick.Check(func(p, q Poly, x, c gf2k.Element) bool {
		if Eval(f, Add(f, p, q), x) != f.Add(Eval(f, p, x), Eval(f, q, x)) {
			return false
		}
		return Eval(f, ScalarMul(f, c, p), x) == f.Mul(c, Eval(f, p, x))
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
