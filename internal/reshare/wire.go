package reshare

import (
	"repro/internal/gf2k"
)

// Wire formats for the three resharing rounds, exported (like vss's wire
// flags) so adversarial harnesses can speak — and deliberately abuse — the
// protocol's messages. All payloads begin with a flag byte; field elements
// use the coin field's fixed-width encoding.
const (
	// WireSubShares prefixes a sub-dealing column (old sub-dealer →
	// one new player, point-to-point): the flag byte, the mask sub-share
	// μ_o(y_j), then the m coin sub-shares g_{o,h}(y_j) in tail order.
	WireSubShares = 0x10
	// WireChallenge prefixes a challenge-coin share (old member → all):
	// the flag byte followed by exactly one field element.
	WireChallenge = 0x11
	// WireCombination prefixes a combination broadcast (new player → all):
	// the flag byte, then one entry per old-committee member o — a
	// CombiValue byte followed by w_{o,j}, or a bare CombiComplaint byte
	// when the player holds no well-formed column from o.
	WireCombination = 0x12

	// CombiValue / CombiComplaint are the per-dealer entry markers inside
	// a WireCombination broadcast.
	CombiValue     = 0x00
	CombiComplaint = 0x01
)

// encodeSubShares builds a WireSubShares column: mask sub-share first, then
// the per-coin sub-shares.
func encodeSubShares(f gf2k.Field, mask gf2k.Element, subs []gf2k.Element) []byte {
	buf := make([]byte, 0, 1+(len(subs)+1)*f.ByteLen())
	buf = append(buf, WireSubShares)
	buf = f.AppendElement(buf, mask)
	return f.AppendElements(buf, subs)
}

// parseSubShares decodes a WireSubShares column, returning the mask
// sub-share, the coin sub-shares and the coin count. ok is false for
// anything malformed; the caller separately checks the count against the
// cluster-wide majority (a column of the wrong length is a complaint, not
// an error).
func parseSubShares(f gf2k.Field, payload []byte) (mask gf2k.Element, subs []gf2k.Element, ok bool) {
	if len(payload) < 1 || payload[0] != WireSubShares {
		return 0, nil, false
	}
	body := payload[1:]
	el := f.ByteLen()
	if len(body) < el || len(body)%el != 0 {
		return 0, nil, false
	}
	m := len(body)/el - 1
	mask, rest, err := f.ReadElement(body)
	if err != nil {
		return 0, nil, false
	}
	subs, rest, err = f.ReadElements(rest, m)
	if err != nil || len(rest) != 0 {
		return 0, nil, false
	}
	return mask, subs, true
}

// encodeChallenge builds a WireChallenge share payload.
func encodeChallenge(f gf2k.Field, share gf2k.Element) []byte {
	return f.AppendElement([]byte{WireChallenge}, share)
}

// parseChallenge decodes a WireChallenge payload.
func parseChallenge(f gf2k.Field, payload []byte) (gf2k.Element, bool) {
	if len(payload) < 1 || payload[0] != WireChallenge {
		return 0, false
	}
	v, rest, err := f.ReadElement(payload[1:])
	if err != nil || len(rest) != 0 {
		return 0, false
	}
	return v, true
}

// encodeCombination builds a WireCombination broadcast: for each old member
// o, the value w[o] when present[o], a complaint marker otherwise.
func encodeCombination(f gf2k.Field, w []gf2k.Element, present []bool) []byte {
	buf := make([]byte, 0, 1+len(w)*(1+f.ByteLen()))
	buf = append(buf, WireCombination)
	for o := range w {
		if present[o] {
			buf = append(buf, CombiValue)
			buf = f.AppendElement(buf, w[o])
		} else {
			buf = append(buf, CombiComplaint)
		}
	}
	return buf
}

// parseCombination decodes a WireCombination broadcast for an old committee
// of oldN members. ok is false when the payload is malformed or does not
// cover exactly oldN entries.
func parseCombination(f gf2k.Field, oldN int, payload []byte) (w []gf2k.Element, present []bool, ok bool) {
	if len(payload) < 1 || payload[0] != WireCombination {
		return nil, nil, false
	}
	body := payload[1:]
	w = make([]gf2k.Element, oldN)
	present = make([]bool, oldN)
	for o := 0; o < oldN; o++ {
		if len(body) < 1 {
			return nil, nil, false
		}
		marker := body[0]
		body = body[1:]
		switch marker {
		case CombiValue:
			v, rest, err := f.ReadElement(body)
			if err != nil {
				return nil, nil, false
			}
			w[o], present[o] = v, true
			body = rest
		case CombiComplaint:
		default:
			return nil, nil, false
		}
	}
	if len(body) != 0 {
		return nil, nil, false
	}
	return w, present, true
}
