// Package prom is a small, dependency-free metrics registry with a
// Prometheus text-exposition handler — the cluster-observability face of the
// repository. Every beacond daemon serves a Registry on GET /metrics, so one
// scrape config (or cmd/beaconctl) sees the whole multi-process beacon:
// per-peer watermark lag, round and draw latency distributions, refill
// pipeline timing, handshake outcomes.
//
// Three metric kinds are supported, mirroring the Prometheus data model:
//
//   - Counter: a monotonically increasing int64 (events, totals).
//   - Gauge: a float64 that goes up and down (positions, depths, lags).
//     GaugeFunc registers a callback sampled at scrape time instead — the
//     right shape for values the program already tracks elsewhere.
//   - Histogram: fixed upper-bound buckets with a running sum and count
//     (latencies). Buckets are chosen at registration and never change, so
//     observation is a binary search plus two atomic adds.
//
// Vec variants attach label dimensions ("peer", "phase", ...); With resolves
// a label combination to a child handle once, and call sites hold the child,
// so the hot path never touches a map.
//
// The disabled path is a nil handle: every method on a nil *Registry,
// *Counter, *Gauge or *Histogram (and the nil Vec types) returns immediately
// without locking or allocating, exactly like the nil *obs.Tracer. Protocol
// code therefore threads metric handles unconditionally; a process that
// never creates a Registry pays one pointer check per site.
package prom

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families in registration order. The zero value is
// unusable; NewRegistry creates one. A nil *Registry hands out nil metric
// handles, making the whole instrumentation layer a no-op.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byN  map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]*family)}
}

// family is one named metric with its type, help text, label schema and
// children (one child per label-value combination; the empty combination for
// unlabelled metrics).
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histograms only

	mu       sync.Mutex
	order    []string // child keys in creation order
	children map[string]any
	fn       func() float64 // GaugeFunc only
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if name == "" {
		panic("prom: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byN[name]; ok {
		// Re-registration must agree on shape; families are then shared, so
		// two subsystems can contribute to one metric.
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("prom: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]any),
	}
	r.fams = append(r.fams, f)
	r.byN[name] = f
	return f
}

// child returns (creating on first use) the family's child for the given
// label values.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("prom: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = make()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// --- counter ------------------------------------------------------------------

// Counter is a monotonically increasing value. Nil receivers are no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers (or finds) an unlabelled counter. Nil-safe: a nil
// registry returns a nil handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.CounterVec(name, help).With()
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, "counter", labels, nil)}
}

// With resolves one label-value combination to its child counter. Resolve
// once and hold the child; With takes the family lock.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// --- gauge --------------------------------------------------------------------

// Gauge is a value that can go up and down, stored as float64 bits. Nil
// receivers are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value (sugar for the common case).
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d to the gauge (CAS loop; contended gauges should prefer Set).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge registers (or finds) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.GaugeVec(name, help).With()
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil)}
}

// With resolves one label-value combination to its child gauge.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time —
// for state the program already tracks (queue depths, log positions) where a
// write-through gauge would just duplicate it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, "gauge", nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// --- histogram ----------------------------------------------------------------

// Histogram counts observations into fixed upper-bound buckets, keeping a
// running sum and total count. Bucket upper bounds are inclusive (Prometheus
// `le` semantics) and the +Inf bucket is implicit. Nil receivers are no-ops.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // one per bucket, NOT cumulative; +Inf is the last
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bucket with upper ≥ v; len(upper) is +Inf.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts aligned with upper (+Inf last),
// plus count and sum, coherent enough for exposition (individual loads are
// atomic; a scrape racing observations may be off by in-flight ones, which
// Prometheus tolerates by design).
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.upper)+1)
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// Histogram registers (or finds) an unlabelled histogram with the given
// bucket upper bounds (sorted ascending; DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a histogram family. All children share
// the bucket layout fixed here.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(b) {
		panic(fmt.Sprintf("prom: histogram %s buckets not sorted", name))
	}
	return &HistogramVec{f: r.register(name, help, "histogram", labels, b)}
}

// With resolves one label-value combination to its child histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.child(values, func() any {
		return &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}).(*Histogram)
}

// DefBuckets is the default latency bucket layout, in seconds: 100µs to
// ~100s, a decade per three buckets — wide enough for both the sub-ms
// single-process draws and the multi-second distributed round timeouts.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// ExpBuckets returns n buckets starting at start, each factor× the last.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("prom: ExpBuckets wants start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n buckets starting at start, stepping by width.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("prom: LinearBuckets wants n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// --- exposition ---------------------------------------------------------------

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): families in registration order, children in creation
// order, so output is deterministic for a deterministic program.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	fn := f.fn
	f.mu.Unlock()
	if len(children) == 0 && fn == nil {
		return nil // registered family with no children yet: omit
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	if fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(fn()))
		return err
	}
	for i, key := range keys {
		values := strings.Split(key, "\xff")
		if key == "" {
			values = nil
		}
		if err := f.writeChild(w, values, children[i]); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, values []string, c any) error {
	base := labelString(f.labels, values, "", "")
	switch m := c.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, base, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, base, formatValue(m.Value()))
		return err
	case *Histogram:
		cum, count, sum := m.snapshot()
		for i, upper := range m.upper {
			le := labelString(f.labels, values, "le", formatValue(upper))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum[i]); err != nil {
				return err
			}
		}
		le := labelString(f.labels, values, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatValue(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, count)
		return err
	}
	return fmt.Errorf("prom: unknown child type %T", c)
}

// labelString renders {a="x",b="y"} (plus an optional extra pair, for le),
// or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integral values
// without an exponent, +Inf/-Inf/NaN by name.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the text exposition — mount it on
// GET /metrics. A nil registry serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
