package conformance

// The scenario matrix and its dispatcher live outside the _test files so
// that the schedule-exploration harness (internal/conformance/schedules),
// the experiment driver (cmd/experiments) and the nightly fuzz driver
// (cmd/schedulefuzz) can execute the exact same scenarios the suite gates.

import "fmt"

// vssAttacks is every VSS/Batch-VSS attack the suite sweeps; gradecast,
// ba and coingen attacks below likewise. The "honest" entry is the control
// run that pins the attack-free baseline.
var vssAttacks = []string{
	"honest",
	"wrong-degree-dealer",
	"equivocal-dealer",
	"silent-dealer",
	"inconsistent-dealer-tolerated",
	"inconsistent-dealer-overwhelming",
	"false-complainer",
	"delta-liar",
	"garbage-verifier",
	"crash-verifier",
}

var gradecastAttacks = []string{
	"honest",
	"grade-split-half",
	"grade-split-one",
	"echo-liar",
	"silent-sender",
	"crash-sender",
}

var baAttacks = []string{"honest", "griefer-king", "vote-equivocator", "crash"}

var coingenAttacks = []string{
	"honest",
	"crash",
	"silent",
	"wrong-degree-dealer",
	"deal-corrupt",
	"gamma-equivocate",
	"coin-share-liar",
}

// Scenarios is the full {attack × protocol × (n,t)} sweep. Every entry
// reproduces from its printed name alone: `go test -run 'TestSuite/<name>'`.
func Scenarios() []Scenario {
	var scs []Scenario
	// VSS at n = 3t+1 (the tight bound) for two fault levels; Batch-VSS is
	// the same ceremony with M > 1.
	for _, nt := range [][2]int{{4, 1}, {7, 2}} {
		for _, a := range vssAttacks {
			scs = append(scs,
				Scenario{Protocol: "vss", Attack: a, N: nt[0], T: nt[1], M: 1, Seed: 1},
				Scenario{Protocol: "batch-vss", Attack: a, N: nt[0], T: nt[1], M: 4, Seed: 2},
			)
		}
		for _, a := range gradecastAttacks {
			scs = append(scs, Scenario{Protocol: "gradecast", Attack: a, N: nt[0], T: nt[1], Seed: 3})
		}
	}
	// Phase-king BA needs n ≥ 5t+1.
	for _, nt := range [][2]int{{6, 1}, {11, 2}} {
		for _, a := range baAttacks {
			for _, v := range []string{"ones", "zeros", "mixed"} {
				scs = append(scs, Scenario{Protocol: "ba", Attack: a, Variant: v, N: nt[0], T: nt[1], Seed: 4})
			}
		}
	}
	// Coin-Gen needs n ≥ 6t+1.
	for _, nt := range [][2]int{{7, 1}, {13, 2}} {
		for _, a := range coingenAttacks {
			scs = append(scs, Scenario{Protocol: "coingen", Attack: a, N: nt[0], T: nt[1], M: 3, Seed: 5})
		}
	}
	return scs
}

// ScenarioActors reports, for a scenario, which players its attack corrupts
// and which additional players a hostile schedule must leave untouched
// (pinned). The schedule-exploration harness samples its disturbance
// victims from the complement of corrupt ∪ pinned:
//
//   - corrupt players are off-limits because the attack expectations are
//     calibrated against their exact behavior (e.g. "the cheating dealer is
//     expelled") — disturbing them would change what the attack does;
//   - pinned players are honest players whose exact traffic the scenario's
//     assertions are calibrated against: the VSS dealer (verdict exactness
//     is about THIS dealer's ceremony) and the chosen victims of the
//     inconsistent-dealer attacks (the paper's accept/reject boundary is
//     exactly t vs 2t lies, so the lie count must not drift).
func ScenarioActors(sc Scenario) (corrupt, pinned []int) {
	lastT := make([]int, 0, sc.T)
	for i := sc.N - sc.T; i < sc.N; i++ {
		lastT = append(lastT, i)
	}
	switch sc.Protocol {
	case "vss", "batch-vss":
		pinned = []int{vssDealer}
		switch sc.Attack {
		case "honest":
		case "wrong-degree-dealer", "equivocal-dealer", "silent-dealer":
			corrupt = []int{vssDealer}
		case "inconsistent-dealer-tolerated":
			// The dealing carries exactly t lies — the accept/reject boundary.
			// One more fault from the schedule (a partitioned or crashed
			// verifier reads as one more bad share) legitimately tips the
			// verdict to reject, so the "must accept" calibration only holds
			// with every other player undisturbed: pin them all. The
			// overwhelming variant below has no such knife edge — extra
			// faults only push it further past reject.
			corrupt = []int{vssDealer}
			pinned = honestSet(sc.N, nil)
		case "inconsistent-dealer-overwhelming":
			corrupt = []int{vssDealer}
			pinned = append(pinned, honestSet(sc.N, []int{vssDealer})[:2*sc.T]...)
		default: // verifier attacks
			corrupt = lastT
		}
	case "gradecast":
		if sc.Attack != "honest" {
			corrupt = []int{gcAttacker}
		}
	case "ba":
		if sc.Attack != "honest" {
			corrupt = []int{baAttacker}
		}
	case "coingen":
		if sc.Attack != "honest" {
			corrupt = []int{cgAttacker}
		}
	}
	return corrupt, pinned
}

// RunScenario dispatches one scenario to its runner and Check, returning a
// fingerprint of the honest outputs (used by the determinism tests).
func RunScenario(sc Scenario) (string, error) {
	switch sc.Protocol {
	case "vss", "batch-vss":
		o, err := RunVSS(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			fp += fmt.Sprintf("%d:%v:%x;", i, o.Players[i].Verdict, o.Players[i].Secrets)
		}
		return fp, nil
	case "gradecast":
		o, err := RunGradeCast(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			for d, got := range o.Outputs[i] {
				fp += fmt.Sprintf("%d/%d:%x/%d;", i, d, got.Value, got.Confidence)
			}
		}
		return fp, nil
	case "ba":
		o, err := RunBA(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			fp += fmt.Sprintf("%d:%d;", i, o.Decisions[i])
		}
		return fp, nil
	case "coingen":
		o, err := RunCoinGen(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			p := o.Players[i]
			fp += fmt.Sprintf("%d:a%d,c%v,x%x;", i, p.Res.Attempts, p.Res.Clique, p.Coins)
		}
		return fp, nil
	}
	return "", fmt.Errorf("conformance: unknown protocol %q", sc.Protocol)
}
