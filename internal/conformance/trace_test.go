package conformance

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestFailfDumpsCanonicalTrace pins the CI failure-artifact hook: with
// CONFORMANCE_TRACE_DIR set, a property violation writes the scenario's full
// canonical timeline as parseable JSONL named after the scenario.
func TestFailfDumpsCanonicalTrace(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(TraceDirEnv, dir)

	sc := Scenario{Protocol: "coingen", Attack: "honest", N: 7, T: 1, M: 2, Seed: 41}
	o, err := RunCoinGen(sc)
	if err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	if err := o.Env.failf("synthetic violation for trace dump"); err == nil {
		t.Fatal("failf returned nil")
	}

	name := "coingen_honest_n-7_t-1_m-2_seed-41.jsonl"
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		entries, _ := os.ReadDir(dir)
		var got []string
		for _, e := range entries {
			got = append(got, e.Name())
		}
		t.Fatalf("trace file %s not written (dir has %v): %v", name, got, err)
	}
	defer f.Close()

	events, err := obs.ParseJSONL(f)
	if err != nil {
		t.Fatalf("dumped trace is not valid JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("dumped trace is empty")
	}
	want := obs.CanonicalOrder(o.Env.ring.Events())
	if len(events) != len(want) {
		t.Fatalf("dumped %d events, ring holds %d canonical events", len(events), len(want))
	}
}

// TestNoDumpWithoutEnv pins that the hook is inert outside CI.
func TestNoDumpWithoutEnv(t *testing.T) {
	t.Setenv(TraceDirEnv, "") // explicit empty, regardless of ambient env
	sc := Scenario{Protocol: "coingen", Attack: "honest", N: 7, T: 1, M: 2, Seed: 42}
	o, err := RunCoinGen(sc)
	if err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	if err := o.Env.failf("synthetic"); err == nil {
		t.Fatal("failf returned nil")
	}
}
