package schedules

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/conformance"
	"repro/internal/simnet"
)

// TestHostileMatrix is the harness gate: the full conformance matrix, each
// scenario under K sampled hostile schedules. A failure prints the
// (scenario, schedule-seed) repro pair, the sampled schedule, and its
// greedy shrink to a 1-minimal rule set.
func TestHostileMatrix(t *testing.T) {
	k := K()
	for _, sc := range conformance.Scenarios() {
		sc := sc
		for j := 0; j < k; j++ {
			seed := ScheduleSeed(sc, j)
			t.Run(fmt.Sprintf("%s/sched=%d", sc, seed), func(t *testing.T) {
				if _, err := Run(sc, seed); err != nil {
					shrunk := Shrink(sc, Sample(sc, seed))
					t.Fatalf("%s\nshrunk schedule: %q\n%v", Repro(sc, seed), shrunk, err)
				}
			})
		}
	}
}

// TestHostileDeterministic replays one hostile run per protocol family and
// requires byte-identical fingerprints — the repro contract: the printed
// (scenario, schedule-seed) pair IS the execution.
func TestHostileDeterministic(t *testing.T) {
	cases := []conformance.Scenario{
		{Protocol: "vss", Attack: "honest", N: 7, T: 2, M: 1, Seed: 1},
		{Protocol: "batch-vss", Attack: "crash-verifier", N: 7, T: 2, M: 4, Seed: 2},
		{Protocol: "gradecast", Attack: "echo-liar", N: 7, T: 2, Seed: 3},
		{Protocol: "ba", Attack: "griefer-king", Variant: "mixed", N: 11, T: 2, Seed: 4},
		{Protocol: "coingen", Attack: "deal-corrupt", N: 13, T: 2, M: 3, Seed: 5},
	}
	for _, sc := range cases {
		sc := sc
		seed := ScheduleSeed(sc, 0)
		t.Run(sc.String(), func(t *testing.T) {
			fp1, err1 := Run(sc, seed)
			fp2, err2 := Run(sc, seed)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("verdict flipped between identical runs: %v vs %v", err1, err2)
			}
			if err1 != nil {
				t.Fatalf("hostile run failed: %s\n%v", Repro(sc, seed), err1)
			}
			if fp1 != fp2 {
				t.Fatalf("fingerprint differs between identical runs:\n%s\n%s", fp1, fp2)
			}
		})
	}
}

// injectedScenario and injectedSchedule are a hand-built failing pair: two
// whole-run crashes blow the n = 3t+1 = 4 fault budget (the honest dealer
// cannot survive two network-dead verifiers with t = 1), padded with rules
// that are irrelevant to the failure — a reorder flag, a delay window and a
// crash window far past protocol end, and a late partition. The shrinker
// must strip the padding and keep exactly the two live crashes.
func injectedScenario() conformance.Scenario {
	return conformance.Scenario{Protocol: "vss", Attack: "honest", N: 4, T: 1, M: 1, Seed: 1}
}

func injectedSchedule() *simnet.Schedule {
	return &simnet.Schedule{
		Seed:    99,
		Reorder: true,
		Delays: []simnet.DelayRule{
			{From: 1, To: simnet.Wildcard, Start: 100, End: 104,
				Dist: simnet.Dist{Kind: simnet.DistFixed, Min: 2}},
		},
		Partitions: []simnet.PartitionRule{
			{Isolated: []int{1}, Start: 300, Heal: 304},
		},
		Crashes: []simnet.CrashRule{
			{Player: 1, Start: 0, Recover: 64},
			{Player: 2, Start: 0, Recover: 64},
			{Player: 2, Start: 200, Recover: 204},
		},
	}
}

// TestInjectedFailureRepro pins the failure-path plumbing end to end on the
// injected pair: the run fails, fails identically on replay (first line —
// the property violation and repro header — is byte-identical; the trace
// tail below it is diagnostics, not contract), and the schedule string
// round-trips through ParseSchedule to the same failure.
func TestInjectedFailureRepro(t *testing.T) {
	sc, s := injectedScenario(), injectedSchedule()
	_, err1 := RunWith(sc, s)
	if err1 == nil {
		t.Fatal("injected over-budget schedule did not fail")
	}
	_, err2 := RunWith(sc, s)
	if err2 == nil {
		t.Fatal("injected failure did not reproduce")
	}
	first := func(err error) string { return strings.SplitN(err.Error(), "\n", 2)[0] }
	if first(err1) != first(err2) {
		t.Fatalf("failure not byte-identical across replays:\n%q\n%q", first(err1), first(err2))
	}
	parsed, perr := simnet.ParseSchedule(s.String())
	if perr != nil {
		t.Fatalf("schedule string %q does not parse back: %v", s, perr)
	}
	_, err3 := RunWith(sc, parsed)
	if err3 == nil || first(err3) != first(err1) {
		t.Fatalf("parsed schedule %q does not reproduce the failure: %v", s, err3)
	}
}

// TestInjectedFailureShrinks pins the shrinker: the padded 6-rule injected
// schedule must shrink to exactly the two live crash rules, the shrunk
// schedule must still fail, and it must be 1-minimal — removing either
// remaining rule makes the scenario pass.
func TestInjectedFailureShrinks(t *testing.T) {
	sc, s := injectedScenario(), injectedSchedule()
	shrunk := Shrink(sc, s)
	if shrunk == nil {
		t.Fatal("Shrink returned nil for a failing schedule")
	}
	want := simnet.Schedule{
		Seed: 99,
		Crashes: []simnet.CrashRule{
			{Player: 1, Start: 0, Recover: 64},
			{Player: 2, Start: 0, Recover: 64},
		},
	}
	if shrunk.String() != want.String() {
		t.Fatalf("shrunk to %q, want %q", shrunk, &want)
	}
	if _, err := RunWith(sc, shrunk); err == nil {
		t.Fatal("shrunk schedule no longer fails")
	}
	for i := 0; i < shrunk.RuleCount(); i++ {
		if _, err := RunWith(sc, shrunk.WithoutRule(i)); err != nil {
			t.Fatalf("shrunk schedule is not 1-minimal: still fails without rule %d: %v", i, err)
		}
	}
	// Shrink on a passing schedule reports "nothing to shrink".
	if got := Shrink(sc, &simnet.Schedule{Seed: 1, Reorder: true}); got != nil {
		t.Fatalf("Shrink of a passing schedule returned %q, want nil", got)
	}
}

// TestBenignGolden pins the schedule-off behavior across commits: the
// fingerprint of every benign (Schedule == nil) scenario, hashed together,
// must match testdata/benign.golden. Adding the schedule engine — or any
// future change — must not perturb a single benign output bit. Regenerate
// deliberately with UPDATE_GOLDEN=1 when the matrix itself changes.
func TestBenignGolden(t *testing.T) {
	var b strings.Builder
	for _, sc := range conformance.Scenarios() {
		fp, err := conformance.RunScenario(sc)
		if err != nil {
			t.Fatalf("benign scenario failed: %v", err)
		}
		fmt.Fprintf(&b, "%s=%s\n", sc, fp)
	}
	got := fmt.Sprintf("%x\n", sha256.Sum256([]byte(b.String())))
	golden := filepath.Join("testdata", "benign.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("benign fingerprint hash drifted: got %s want %s — the schedule engine must be a strict no-op when off; regenerate with UPDATE_GOLDEN=1 only for a deliberate matrix change", got, want)
	}
}

// TestVictimsRespectBudget asserts the sampler's fault-budget arithmetic
// for every scenario: disturbed ∪ corrupt never exceeds t, victims never
// overlap corrupt or pinned players.
func TestVictimsRespectBudget(t *testing.T) {
	for _, sc := range conformance.Scenarios() {
		for j := 0; j < 3; j++ {
			seed := ScheduleSeed(sc, j)
			corrupt, pinned := conformance.ScenarioActors(sc)
			off := map[int]bool{}
			for _, i := range corrupt {
				off[i] = true
			}
			for _, i := range pinned {
				off[i] = true
			}
			s := Sample(sc, seed)
			dist := s.Disturbed(sc.N)
			if len(dist)+len(corrupt) > sc.T {
				t.Fatalf("%s sched=%d: %d disturbed + %d corrupt > t=%d (%q)",
					sc, seed, len(dist), len(corrupt), sc.T, s)
			}
			for _, v := range dist {
				if off[v] {
					t.Fatalf("%s sched=%d: disturbed player %d is corrupt or pinned (%q)", sc, seed, v, s)
				}
			}
			if !s.Reorder {
				t.Fatalf("%s sched=%d: sampled schedule lost the reorder flag", sc, seed)
			}
		}
	}
}
