// Command benchjson runs the repository's benchmarks and records the
// results as a JSON document, so successive PRs can diff machine-readable
// baselines (BENCH_<date>.json at the repo root) instead of eyeballing
// `go test -bench` output.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_2026-08-05.json
//	go run ./cmd/benchjson -bench 'Interpolate' -benchtime 100x -out /dev/stdout
//
// With -merge, results are folded into an existing -out document instead of
// replacing it: same-name entries are overwritten, new ones appended. This
// lets a targeted run (e.g. the serving-path BeaconDrawThroughput series)
// refresh its series without re-running every benchmark:
//
//	go run ./cmd/benchjson -bench 'BeaconDrawThroughput' -pkgs ./internal/beacon \
//	    -benchtime 2000x -merge -out BENCH_2026-08-05.json
//
// The raw benchmark output is teed to stderr while it is parsed, so the
// command is a drop-in replacement for `make bench`.
//
// With -compare, no benchmarks run: the command diffs a fresh results
// document against a committed baseline and exits non-zero when any gated
// series regressed beyond the tolerance — the CI bench-regression gate:
//
//	go run ./cmd/benchjson -bench 'Interpolate|BatchVSSScale' -out fresh.json
//	go run ./cmd/benchjson -compare -baseline BENCH_2026-08-05.json \
//	    -candidate fresh.json -tolerance 0.25 -series Interpolate,BatchVSS,BeaconDraw
//
// A gated name present in only one document FAILS the comparison: a
// benchmark that silently disappears (renamed, deleted, build-tagged away)
// would otherwise turn its gate into a no-op forever. Intentional
// one-sided names — a candidate subset run against a full baseline, or a
// brand-new benchmark with no baseline yet — are declared with
// -allow-missing substrings. Relative gating uses ns/op only (allocation
// counts are exact and caught by tests).
//
// -floor, -ceiling and -ratio add absolute gates on the CANDIDATE
// document, each against any Result metric (including custom ReportMetric
// units). All three are repeatable; a spec that matches no candidate entry
// is itself a failure, for the same no-silent-no-op reason:
//
//	-floor   'MultiCellLoad/cells=4:draws/s:5000'   every match ≥ 5000
//	-ceiling 'MultiCellLoad/cells=4:p99-ns:2e8'     every match ≤ 2e8
//	-ratio   'cells=4/clients=16:cells=1/clients=16:draws/s:2.5'
//	         metric(unique match A) ≥ 2.5 × metric(unique match B)
//
// Specs are colon-separated because benchmark names never contain ':'
// (they do contain '/', '=' and '-').
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line: name, iteration count, and the measured
// metrics keyed by unit (ns/op, B/op, allocs/op, and any custom ReportMetric
// units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the file format: enough context to interpret the numbers
// (host, Go version, benchtime) plus the results.
type Document struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus,omitempty"`
	Benchtime string   `json:"benchtime,omitempty"`
	Command   string   `json:"command"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		bench        = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime    = flag.String("benchtime", "", "passed to go test -benchtime (e.g. 1s, 100x)")
		pkgs         = flag.String("pkgs", "./...", "package pattern to benchmark")
		out          = flag.String("out", "", "output JSON file (default stdout)")
		merge        = flag.Bool("merge", false, "merge results by name into an existing -out file instead of replacing it")
		compare      = flag.Bool("compare", false, "compare -candidate against -baseline instead of running benchmarks")
		baseline     = flag.String("baseline", "", "baseline JSON document for -compare")
		candidate    = flag.String("candidate", "", "fresh JSON document for -compare")
		tolerance    = flag.Float64("tolerance", 0.25, "relative ns/op regression allowed by -compare (0.25 = +25%)")
		series       = flag.String("series", "", "comma-separated name substrings gated by -compare (empty = every common entry)")
		allowMissing = flag.String("allow-missing", "", "comma-separated name substrings allowed to be present in only one document")
	)
	var floors, ceilings []gateSpec
	var ratios []ratioSpec
	flag.Func("floor", "candidate gate 'substr:metric:min' — every matching entry's metric must be ≥ min (repeatable)",
		func(s string) error { g, err := parseGateSpec(s); floors = append(floors, g); return err })
	flag.Func("ceiling", "candidate gate 'substr:metric:max' — every matching entry's metric must be ≤ max (repeatable)",
		func(s string) error { g, err := parseGateSpec(s); ceilings = append(ceilings, g); return err })
	flag.Func("ratio", "candidate gate 'substrA:substrB:metric:min' — metric(A) must be ≥ min × metric(B), each substring matching exactly one entry (repeatable)",
		func(s string) error { r, err := parseRatioSpec(s); ratios = append(ratios, r); return err })
	flag.Parse()

	if *compare {
		if *baseline == "" || *candidate == "" {
			log.Fatal("benchjson: -compare requires -baseline and -candidate")
		}
		base, err := readDocument(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := readDocument(*candidate)
		if err != nil {
			log.Fatal(err)
		}
		report := compareDocs(base, cand, splitSeries(*series), splitSeries(*allowMissing), *tolerance)
		report.applyGates(cand, floors, ceilings, ratios)
		fmt.Fprint(os.Stderr, report.String())
		if report.Failed() {
			os.Exit(1)
		}
		return
	}
	if len(floors) > 0 || len(ceilings) > 0 || len(ratios) > 0 {
		log.Fatal("benchjson: -floor/-ceiling/-ratio are only meaningful with -compare")
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", *pkgs}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	results, perr := parseBench(io.TeeReader(pipe, os.Stderr))
	if err := cmd.Wait(); err != nil {
		log.Fatalf("go test -bench: %v", err)
	}
	if perr != nil {
		log.Fatalf("parse benchmark output: %v", perr)
	}

	doc := Document{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Benchtime: *benchtime,
		Command:   "go " + strings.Join(args, " "),
		Results:   results,
	}
	if *merge && *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old Document
			if err := json.Unmarshal(prev, &old); err != nil {
				log.Fatalf("merge into %s: %v", *out, err)
			}
			doc.Results = mergeResults(old.Results, results)
			doc.Command = old.Command + " ; " + doc.Command
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d results written to %s (%d from this run)\n",
		len(doc.Results), *out, len(results))
}

// mergeResults overlays fresh results onto an existing series: entries with
// the same benchmark name are replaced in place, new names are appended, and
// untouched old entries survive.
func mergeResults(old, fresh []Result) []Result {
	idx := make(map[string]int, len(old))
	out := append([]Result(nil), old...)
	for i, r := range out {
		idx[r.Name] = i
	}
	for _, r := range fresh {
		if i, ok := idx[r.Name]; ok {
			out[i] = r
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// trimProcs strips the "-N" GOMAXPROCS suffix go test appends to benchmark
// names (absent when GOMAXPROCS=1), so documents recorded on machines with
// different core counts — a laptop baseline vs a CI runner — compare by
// stable names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// readDocument loads a benchjson Document from disk.
func readDocument(path string) (Document, error) {
	var doc Document
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, fmt.Errorf("benchjson: %w", err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("benchjson: parse %s: %v", path, err)
	}
	return doc, nil
}

// splitSeries parses the -series flag: comma-separated, whitespace-trimmed
// name substrings; empty input means "gate everything".
func splitSeries(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Delta is one compared benchmark: baseline and candidate ns/op plus the
// relative change ((cand-base)/base; +0.30 = 30% slower).
type Delta struct {
	Name       string
	Base, Cand float64
	Change     float64
}

// Report is the outcome of compareDocs: gated entries that regressed beyond
// tolerance, gated entries that passed, gated names missing from one of the
// documents (failures unless allowlisted), names skipped because they
// carried no ns/op metric or were allowlisted one-sided, and the absolute
// gate verdicts from applyGates.
type Report struct {
	Tolerance   float64
	Regressions []Delta
	Passed      []Delta
	Missing     []string
	Skipped     []string
	GateFailed  []string
	GatePassed  []string
}

// Failed reports whether any gate tripped: a relative regression, a gated
// name that disappeared, or an absolute floor/ceiling/ratio violation.
func (r Report) Failed() bool {
	return len(r.Regressions) > 0 || len(r.Missing) > 0 || len(r.GateFailed) > 0
}

// String renders the report as the CI log block: every comparison with its
// relative change, then the verdict line.
func (r Report) String() string {
	var b strings.Builder
	line := func(verdict string, d Delta) {
		fmt.Fprintf(&b, "%-6s %-60s %12.1f -> %12.1f ns/op  %+.1f%%\n",
			verdict, d.Name, d.Base, d.Cand, 100*d.Change)
	}
	for _, d := range r.Passed {
		line("ok", d)
	}
	for _, d := range r.Regressions {
		line("FAIL", d)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(&b, "%-6s %s\n", "FAIL", name)
	}
	for _, name := range r.Skipped {
		fmt.Fprintf(&b, "%-6s %s\n", "skip", name)
	}
	for _, g := range r.GatePassed {
		fmt.Fprintf(&b, "%-6s %s\n", "ok", g)
	}
	for _, g := range r.GateFailed {
		fmt.Fprintf(&b, "%-6s %s\n", "FAIL", g)
	}
	if r.Failed() {
		fmt.Fprintf(&b, "benchjson: %d relative regressions (tolerance +%.0f%%), %d gated series missing, %d absolute gates violated\n",
			len(r.Regressions), 100*r.Tolerance, len(r.Missing), len(r.GateFailed))
	} else {
		fmt.Fprintf(&b, "benchjson: %d series within +%.0f%% tolerance, %d absolute gates satisfied\n",
			len(r.Passed), 100*r.Tolerance, len(r.GatePassed))
	}
	return b.String()
}

// gateSpec is one -floor/-ceiling: every candidate entry whose name
// contains Pattern must carry Metric on the right side of Value.
type gateSpec struct {
	Pattern string
	Metric  string
	Value   float64
}

func parseGateSpec(s string) (gateSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
		return gateSpec{}, fmt.Errorf("benchjson: gate %q is not 'substr:metric:value'", s)
	}
	v, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return gateSpec{}, fmt.Errorf("benchjson: gate %q: bad value: %v", s, err)
	}
	return gateSpec{Pattern: parts[0], Metric: parts[1], Value: v}, nil
}

// ratioSpec is one -ratio: Metric of the unique candidate entry matching A
// must be at least Min times Metric of the unique entry matching B.
type ratioSpec struct {
	A, B   string
	Metric string
	Min    float64
}

func parseRatioSpec(s string) (ratioSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return ratioSpec{}, fmt.Errorf("benchjson: ratio %q is not 'substrA:substrB:metric:min'", s)
	}
	min, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return ratioSpec{}, fmt.Errorf("benchjson: ratio %q: bad minimum: %v", s, err)
	}
	return ratioSpec{A: parts[0], B: parts[1], Metric: parts[2], Min: min}, nil
}

// uniqueMetric finds the single candidate entry whose name contains pattern
// and returns its metric value; zero or multiple matches (or a match
// without the metric) are errors — an ambiguous or vanished gate target
// must fail loudly, not gate the wrong series.
func uniqueMetric(cand Document, pattern, metric string) (string, float64, error) {
	name, val, found := "", 0.0, 0
	for _, r := range cand.Results {
		if !strings.Contains(r.Name, pattern) {
			continue
		}
		found++
		name = r.Name
		var ok bool
		if val, ok = r.Metrics[metric]; !ok {
			return "", 0, fmt.Errorf("%s has no %s metric", r.Name, metric)
		}
	}
	switch found {
	case 0:
		return "", 0, fmt.Errorf("no candidate entry matches %q", pattern)
	case 1:
		return name, val, nil
	default:
		return "", 0, fmt.Errorf("%d candidate entries match %q — need exactly one", found, pattern)
	}
}

// applyGates evaluates the absolute -floor/-ceiling/-ratio gates against
// the candidate document, appending verdicts to GatePassed/GateFailed. A
// spec matching no entry fails: a gate must never become a silent no-op
// because its benchmark disappeared.
func (r *Report) applyGates(cand Document, floors, ceilings []gateSpec, ratios []ratioSpec) {
	bound := func(g gateSpec, kind string, violated func(v float64) bool) {
		matched := 0
		for _, res := range cand.Results {
			if !strings.Contains(res.Name, g.Pattern) {
				continue
			}
			matched++
			v, ok := res.Metrics[g.Metric]
			if !ok {
				r.GateFailed = append(r.GateFailed, fmt.Sprintf("%s %s: %s has no %s metric", kind, g.Pattern, res.Name, g.Metric))
				continue
			}
			if violated(v) {
				r.GateFailed = append(r.GateFailed, fmt.Sprintf("%s violated: %s %s = %g vs %g", kind, res.Name, g.Metric, v, g.Value))
			} else {
				r.GatePassed = append(r.GatePassed, fmt.Sprintf("%s: %s %s = %g vs %g", kind, res.Name, g.Metric, v, g.Value))
			}
		}
		if matched == 0 {
			r.GateFailed = append(r.GateFailed, fmt.Sprintf("%s %s: no candidate entry matches", kind, g.Pattern))
		}
	}
	for _, g := range floors {
		bound(g, "floor", func(v float64) bool { return v < g.Value })
	}
	for _, g := range ceilings {
		bound(g, "ceiling", func(v float64) bool { return v > g.Value })
	}
	for _, rt := range ratios {
		an, av, aerr := uniqueMetric(cand, rt.A, rt.Metric)
		bn, bv, berr := uniqueMetric(cand, rt.B, rt.Metric)
		switch {
		case aerr != nil:
			r.GateFailed = append(r.GateFailed, fmt.Sprintf("ratio %s/%s: %v", rt.A, rt.B, aerr))
		case berr != nil:
			r.GateFailed = append(r.GateFailed, fmt.Sprintf("ratio %s/%s: %v", rt.A, rt.B, berr))
		case bv == 0:
			r.GateFailed = append(r.GateFailed, fmt.Sprintf("ratio %s/%s: %s %s is zero", rt.A, rt.B, bn, rt.Metric))
		case av/bv < rt.Min:
			r.GateFailed = append(r.GateFailed, fmt.Sprintf("ratio violated: %s %s = %g is %.2fx %s (need ≥ %.2fx)",
				an, rt.Metric, av, av/bv, bn, rt.Min))
		default:
			r.GatePassed = append(r.GatePassed, fmt.Sprintf("ratio: %s is %.2fx %s on %s (need ≥ %.2fx)",
				an, av/bv, bn, rt.Metric, rt.Min))
		}
	}
}

// matchesSeries reports whether a benchmark name belongs to one of the gated
// series (substring match, so "Interpolate" covers every sub-benchmark of
// BenchmarkInterpolate). An empty series list gates every name.
func matchesSeries(name string, series []string) bool {
	if len(series) == 0 {
		return true
	}
	for _, s := range series {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// compareDocs gates candidate against baseline: every gated name present in
// both documents with an ns/op metric is compared, and a relative slowdown
// above tolerance is a regression. Speedups always pass (the committed
// baseline is refreshed by PRs that improve it). A gated name present in
// only ONE document is a failure unless it matches allowMissing: a renamed
// or deleted benchmark must trip its gate, not quietly retire it.
// Both-sided names without an ns/op metric are skipped (never emitted by
// `go test -bench`, only by hand-built documents).
func compareDocs(base, cand Document, series, allowMissing []string, tolerance float64) Report {
	rep := Report{Tolerance: tolerance}
	baseNames := make(map[string]bool, len(base.Results))
	baseNS := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseNames[r.Name] = true
		if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
			baseNS[r.Name] = ns
		}
	}
	oneSided := func(name, where string) {
		if matchesSeries(name, allowMissing) && len(allowMissing) > 0 {
			rep.Skipped = append(rep.Skipped, fmt.Sprintf("%s (missing from %s, allowlisted)", name, where))
			return
		}
		rep.Missing = append(rep.Missing, fmt.Sprintf("%s missing from %s (gate would be a no-op; allowlist intentional one-sided names with -allow-missing)", name, where))
	}
	seen := make(map[string]bool, len(cand.Results))
	for _, r := range cand.Results {
		if !matchesSeries(r.Name, series) {
			continue
		}
		seen[r.Name] = true
		if !baseNames[r.Name] {
			oneSided(r.Name, "baseline")
			continue
		}
		ns, ok := r.Metrics["ns/op"]
		bns, bok := baseNS[r.Name]
		if !ok || ns <= 0 || !bok {
			rep.Skipped = append(rep.Skipped, r.Name+" (no common ns/op)")
			continue
		}
		d := Delta{Name: r.Name, Base: bns, Cand: ns, Change: (ns - bns) / bns}
		if d.Change > tolerance {
			rep.Regressions = append(rep.Regressions, d)
		} else {
			rep.Passed = append(rep.Passed, d)
		}
	}
	for _, r := range base.Results {
		if matchesSeries(r.Name, series) && !seen[r.Name] {
			oneSided(r.Name, "candidate")
		}
	}
	return rep
}

// parseBench extracts benchmark lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
//
// from go test output. Value/unit pairs after the iteration count become
// Metrics entries; non-benchmark lines are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: some note" lines
		}
		res := Result{Name: trimProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	return out, sc.Err()
}
