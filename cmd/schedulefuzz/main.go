// Command schedulefuzz is the nightly driver for the schedule-exploration
// conformance harness (internal/conformance/schedules): it keeps throwing
// freshly seeded hostile-network schedules at randomly chosen conformance
// scenarios until a time budget expires, and treats any property violation
// as a bug in either a protocol or the harness's fault-budget model.
//
// Every failure is reported as a (scenario, schedule-seed) pair — the
// complete reproduction recipe — together with the expanded schedule, its
// greedy shrink to a 1-minimal rule set, and (via the conformance trace
// dump) the full canonical obs timeline of the failing run. The artifact
// directory is self-contained: failures.txt holds the repro pairs and
// shrunk schedules, *.jsonl the timelines, ready for CI upload.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/conformance"
	"repro/internal/conformance/schedules"
)

func main() {
	duration := flag.Duration("duration", 10*time.Minute, "wall-clock fuzzing budget")
	seed := flag.Int64("seed", 0, "base seed for the (scenario, schedule) stream; 0 draws from the clock")
	out := flag.String("out", "schedule-fuzz-out", "artifact directory for failure repros and timelines")
	maxFailures := flag.Int("maxfailures", 5, "stop after this many distinct failures")
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	// Failing runs dump their canonical timeline into the artifact dir.
	if err := os.Setenv(conformance.TraceDirEnv, *out); err != nil {
		fmt.Fprintf(os.Stderr, "schedulefuzz: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("schedulefuzz: base seed %d, budget %s\n", *seed, *duration)

	rng := rand.New(rand.NewSource(*seed))
	scs := conformance.Scenarios()
	deadline := time.Now().Add(*duration)
	runs, failures := 0, 0
	for time.Now().Before(deadline) && failures < *maxFailures {
		sc := scs[rng.Intn(len(scs))]
		schedSeed := rng.Int63()
		runs++
		if _, err := schedules.Run(sc, schedSeed); err != nil {
			failures++
			report(*out, sc, schedSeed, err)
		}
	}
	fmt.Printf("schedulefuzz: %d runs, %d failures (base seed %d)\n", runs, failures, *seed)
	if failures > 0 {
		os.Exit(1)
	}
}

// report prints a failure and appends its self-contained repro block —
// the (scenario, schedule-seed) pair, the sampled schedule, and its
// 1-minimal shrink — to <out>/failures.txt.
func report(out string, sc conformance.Scenario, schedSeed int64, err error) {
	repro := schedules.Repro(sc, schedSeed)
	shrunk := schedules.Shrink(sc, schedules.Sample(sc, schedSeed))
	block := fmt.Sprintf("%s\nshrunk schedule: %q\n%v\n\n", repro, shrunk, err)
	fmt.Print(block)
	if mkErr := os.MkdirAll(out, 0o755); mkErr != nil {
		fmt.Fprintf(os.Stderr, "schedulefuzz: %v\n", mkErr)
		return
	}
	f, fErr := os.OpenFile(filepath.Join(out, "failures.txt"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if fErr != nil {
		fmt.Fprintf(os.Stderr, "schedulefuzz: %v\n", fErr)
		return
	}
	defer f.Close()
	if _, wErr := f.WriteString(block); wErr != nil {
		fmt.Fprintf(os.Stderr, "schedulefuzz: %v\n", wErr)
	}
}
