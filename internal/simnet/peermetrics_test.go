package simnet

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/prom"
)

// startMeteredCluster brings up one peer Network per player, each with its
// own prom registry (as real daemons have — one process, one registry).
func startMeteredCluster(t *testing.T, cfg *PeerConfig, extra ...Option) ([]*Network, []*prom.Registry) {
	t.Helper()
	n := cfg.N()
	nws := make([]*Network, n)
	regs := make([]*prom.Registry, n)
	for i := 0; i < n; i++ {
		regs[i] = prom.NewRegistry()
		opts := append([]Option{WithPeerMetrics(NewPeerMetrics(regs[i]))}, extra...)
		nw, err := NewPeer(cfg, i, opts...)
		if err != nil {
			t.Fatalf("NewPeer(%d): %v", i, err)
		}
		t.Cleanup(nw.Close)
		nws[i] = nw
	}
	for i, nw := range nws {
		if err := nw.WaitPeers(n-1, 10*time.Second); err != nil {
			t.Fatalf("player %d mesh: %v", i, err)
		}
	}
	return nws, regs
}

func scrape(t *testing.T, r *prom.Registry) []prom.Sample {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := prom.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	return samples
}

// TestPeerMetricsEndToEnd runs a metered 3-player cluster for a few rounds
// and checks every advertised series reports what actually happened.
func TestPeerMetricsEndToEnd(t *testing.T) {
	cfg := testPeerCfg(t, 3)
	nws, regs := startMeteredCluster(t, cfg)
	const epoch = 5
	for i, nw := range nws {
		nw.SetEpoch(epoch)
		if err := nw.StartAt(0); err != nil {
			t.Fatalf("StartAt(%d): %v", i, err)
		}
	}
	const rounds = 3
	var wg sync.WaitGroup
	for i, nw := range nws {
		wg.Add(1)
		go func(i int, nw *Network) {
			defer wg.Done()
			nd := nw.Node(i)
			for r := 0; r < rounds; r++ {
				nd.SendAll([]byte{byte(r)})
				if _, err := nd.EndRound(); err != nil {
					t.Errorf("player %d round %d: %v", i, r, err)
					return
				}
			}
		}(i, nw)
	}
	wg.Wait()

	samples := scrape(t, regs[0])
	for _, peer := range []string{"1", "2"} {
		if v, ok := prom.Value(samples, "simnet_peer_watermark", "peer", peer); !ok || v < rounds-1 {
			t.Errorf("watermark{peer=%s} = %v, %v; want ≥ %d", peer, v, ok, rounds-1)
		}
		if v, ok := prom.Value(samples, "simnet_peer_connected", "peer", peer); !ok || v != 1 {
			t.Errorf("connected{peer=%s} = %v, %v; want 1", peer, v, ok)
		}
		if v, ok := prom.Value(samples, "simnet_peer_reconnects_total", "peer", peer); !ok || v < 1 {
			t.Errorf("reconnects{peer=%s} = %v, %v; want ≥ 1", peer, v, ok)
		}
		if v, ok := prom.Value(samples, "simnet_peer_watermark_lag", "peer", peer); !ok || v > 1 {
			t.Errorf("lag{peer=%s} = %v, %v; want ≤ 1", peer, v, ok)
		}
		if v, ok := prom.Value(samples, "simnet_peer_epoch", "peer", peer); !ok || v != epoch {
			t.Errorf("epoch{peer=%s} = %v, %v; want %d", peer, v, ok, epoch)
		}
	}
	if v, ok := prom.Value(samples, "simnet_handshake_total", "result", "ok"); !ok || v < 2 {
		t.Errorf("handshake ok = %v, %v; want ≥ 2", v, ok)
	}
	if v, ok := prom.Value(samples, "simnet_round_duration_seconds_count"); !ok || v != rounds {
		t.Errorf("round duration count = %v, %v; want %d", v, ok, rounds)
	}
	// The accessor agrees with the gauge.
	if got := nws[0].PeerEpoch(1); got != epoch {
		t.Errorf("PeerEpoch(1) = %d, want %d", got, epoch)
	}
	// Own slot: never announced to ourselves.
	if got := nws[0].PeerEpoch(0); got != -1 {
		t.Errorf("PeerEpoch(self) = %d, want -1", got)
	}
}

// TestPeerMetricsDemotionAndQueryRTT kills one daemon mid-run and checks the
// survivor's demotion counter and connected gauge, plus query RTT samples.
func TestPeerMetricsDemotionAndQueryRTT(t *testing.T) {
	cfg := testPeerCfg(t, 2)
	nws, regs := startMeteredCluster(t, cfg,
		WithRoundTimeout(200*time.Millisecond),
		WithQueryHandler(func(from int, req []byte) []byte { return append([]byte("ack:"), req...) }),
	)
	for i, nw := range nws {
		if err := nw.StartAt(0); err != nil {
			t.Fatalf("StartAt(%d): %v", i, err)
		}
	}
	// One out-of-band query to get an RTT sample.
	if _, err := nws[0].Query(1, []byte("ping"), 5*time.Second); err != nil {
		t.Fatalf("query: %v", err)
	}

	// Round 0 with both alive.
	var wg sync.WaitGroup
	for i, nw := range nws {
		wg.Add(1)
		go func(i int, nw *Network) {
			defer wg.Done()
			if _, err := nw.Node(i).EndRound(); err != nil {
				t.Errorf("player %d: %v", i, err)
			}
		}(i, nw)
	}
	wg.Wait()

	// Kill player 1; player 0's next barrier must demote it.
	nws[1].Close()
	if _, err := nws[0].Node(0).EndRound(); err != nil {
		t.Fatalf("survivor round: %v", err)
	}

	samples := scrape(t, regs[0])
	if v, ok := prom.Value(samples, "simnet_peer_demotions_total", "peer", "1"); !ok || v != 1 {
		t.Errorf("demotions{peer=1} = %v, %v; want 1", v, ok)
	}
	if v, ok := prom.Value(samples, "simnet_peer_query_rtt_seconds_count", "peer", "1"); !ok || v != 1 {
		t.Errorf("query RTT count{peer=1} = %v, %v; want 1", v, ok)
	}
}

// TestPeerMetricsDisabled pins the nil path: no metrics option, nil
// PeerMetrics, and PeerMetrics from a nil registry must all run cleanly.
func TestPeerMetricsDisabled(t *testing.T) {
	if pm := NewPeerMetrics(nil); pm.Watermark != nil || pm.RoundDuration != nil {
		t.Fatal("NewPeerMetrics(nil) should hand out nil instruments")
	}
	cfg := testPeerCfg(t, 2)
	nws := startPeerCluster(t, cfg, WithPeerMetrics(nil))
	for i, nw := range nws {
		nw.SetEpoch(1)
		if err := nw.StartAt(0); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	var wg sync.WaitGroup
	for i, nw := range nws {
		wg.Add(1)
		go func(i int, nw *Network) {
			defer wg.Done()
			if _, err := nw.Node(i).EndRound(); err != nil {
				t.Errorf("player %d: %v", i, err)
			}
		}(i, nw)
	}
	wg.Wait()
}
