// Package rba implements randomized binary Byzantine agreement driven by a
// shared-coin source — the paper's motivating application ("Shared coins
// are needed, amongst other things, for Byzantine agreement (BA) and
// broadcast", §1.1). Each phase consumes ONE shared coin; a D-PRBG makes
// that cheap, which is exactly the speed-up the paper is after.
//
// The protocol (for n ≥ 5t+1) is the classic common-coin loop:
//
//	phase: every player sends its value; let maj be the majority value and
//	       c its count (including one's own vote); then one shared coin b
//	       is exposed; if c ≥ n−2t the player keeps maj, otherwise it
//	       adopts b.
//
// Correctness sketch: (validity) if all honest players hold v they each see
// c ≥ n−t and keep v forever. (agreement) within a phase, two honest
// players cannot keep different majority values — their ≥ n−2t supporter
// sets would overlap in ≥ n−4t ≥ t+1 players, one of them honest; so all
// "keepers" keep a common w, and with probability ≥ 1/2 the coin — which
// the adversary cannot predict when the phase's votes are already fixed —
// equals w and every honest player ends the phase with w, after which
// validity makes w permanent. After R phases all honest players agree
// except with probability ≤ 2^−R (plus the coins' own Mn·2^−k unanimity
// error).
//
// The phase count is fixed (not expected-constant with early exit) so that
// every player consumes the same number of shared coins and the coin
// source stays in lockstep for whatever runs next.
package rba

import (
	"fmt"

	"repro/internal/coin"
	"repro/internal/simnet"
)

// Config parameterizes a randomized agreement.
type Config struct {
	// N is the player count, T the fault bound; N ≥ 5T+1.
	N, T int
	// Phases is the number of coin phases R; residual disagreement
	// probability is ≤ 2^−R. Defaults to 20.
	Phases int
	// Coins supplies one shared coin per phase.
	Coins coin.Source
}

// MinPlayers returns the required network size, 5t+1.
func MinPlayers(t int) int { return 5*t + 1 }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < MinPlayers(c.T) {
		return fmt.Errorf("rba: need n ≥ %d for t=%d, have %d", MinPlayers(c.T), c.T, c.N)
	}
	if c.Coins == nil {
		return fmt.Errorf("rba: nil coin source")
	}
	return nil
}

// Run executes the agreement with input bit 0 or 1 and returns the decided
// bit. Consumes exactly Phases · (1 + coin-expose) rounds.
func Run(nd *simnet.Node, cfg Config, input byte) (byte, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if input > 1 {
		return 0, fmt.Errorf("rba: input must be 0 or 1, got %d", input)
	}
	phases := cfg.Phases
	if phases <= 0 {
		phases = 20
	}
	n, t := cfg.N, cfg.T
	v := input
	for phase := 0; phase < phases; phase++ {
		nd.SendAll([]byte{v})
		msgs, err := nd.EndRound()
		if err != nil {
			return 0, fmt.Errorf("rba: phase %d vote round: %w", phase, err)
		}
		count := [2]int{}
		count[v]++
		for _, payload := range simnet.FirstFromEach(msgs) {
			if len(payload) == 1 && payload[0] <= 1 {
				count[payload[0]]++
			}
		}
		maj := byte(0)
		if count[1] > count[0] {
			maj = 1
		}

		b, err := cfg.Coins.ExposeBit(nd)
		if err != nil {
			return 0, fmt.Errorf("rba: phase %d coin: %w", phase, err)
		}
		if count[maj] >= n-2*t {
			v = maj
		} else {
			v = b
		}
	}
	return v, nil
}
