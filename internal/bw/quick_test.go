package bw

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gf2k"
	"repro/internal/poly"
)

// decodeCase is a random codeword with ≤ maxErrors corruptions.
type decodeCase struct {
	Degree, MaxErr int
	Xs, Ys         []gf2k.Element
	Original       poly.Poly
	Injected       int
}

// Property (testing/quick): for any degree, any error budget, any point
// count ≥ degree+2e+1 and any ≤ e corruptions, Decode recovers exactly the
// original polynomial and reports exactly the corrupted positions.
func TestQuickDecodeRecovers(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			degree := rng.Intn(5)
			maxErr := rng.Intn(4)
			n := degree + 2*maxErr + 1 + rng.Intn(5)
			p, err := poly.Random(f, degree, gf2k.Element(rng.Uint32()), rng)
			if err != nil {
				panic(err)
			}
			xs := make([]gf2k.Element, n)
			for i := range xs {
				xs[i] = gf2k.Element(i + 1)
			}
			ys := poly.EvalMany(f, p, xs)
			e := 0
			if maxErr > 0 {
				e = rng.Intn(maxErr + 1)
			}
			for _, i := range rng.Perm(n)[:e] {
				for {
					d := gf2k.Element(rng.Uint32())
					if d != 0 {
						ys[i] ^= d
						break
					}
				}
			}
			vals[0] = reflect.ValueOf(decodeCase{
				Degree: degree, MaxErr: maxErr, Xs: xs, Ys: ys,
				Original: p, Injected: e,
			})
		},
	}
	err := quick.Check(func(c decodeCase) bool {
		res, err := Decode(f, c.Xs, c.Ys, c.Degree, c.MaxErr, nil)
		if err != nil {
			return false
		}
		if len(res.ErrorIndexes) != c.Injected {
			return false
		}
		for _, x := range []gf2k.Element{0, 0x9999, 0x12345} {
			if poly.Eval(f, res.Poly, x) != poly.Eval(f, c.Original, x) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: Decode never invents a polynomial — if the corrupted word is
// beyond the unique-decoding radius of EVERY degree-d polynomial (checked
// by re-encoding), either decoding fails or the output genuinely agrees
// with ≥ n−e points.
func TestQuickDecodeSoundness(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(11))
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			degree := rng.Intn(4)
			maxErr := 1 + rng.Intn(3)
			n := degree + 2*maxErr + 1
			xs := make([]gf2k.Element, n)
			ys := make([]gf2k.Element, n)
			for i := range xs {
				xs[i] = gf2k.Element(i + 1)
				ys[i] = gf2k.Element(rng.Uint32()) // random word, likely no codeword
			}
			vals[0] = reflect.ValueOf(decodeCase{Degree: degree, MaxErr: maxErr, Xs: xs, Ys: ys})
		},
	}
	err := quick.Check(func(c decodeCase) bool {
		res, err := Decode(f, c.Xs, c.Ys, c.Degree, c.MaxErr, nil)
		if err != nil {
			return true // correct: no codeword nearby
		}
		// If it decoded, the agreement must really be ≥ n − maxErr.
		agree := 0
		for i := range c.Xs {
			if poly.Eval(f, res.Poly, c.Xs[i]) == c.Ys[i] {
				agree++
			}
		}
		return agree >= len(c.Xs)-c.MaxErr && res.Poly.Degree() <= c.Degree
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
