package beacon

import (
	"context"
	"testing"
)

// TestModAcceptExactUniformity is the mathematical core of the rejection
// sampler, checked exhaustively: for an 8-bit draw space and every modulus,
// the accepted values split into residue classes of exactly equal size.
// This is the property the old raw reduction lacked (256 mod 7 = 4, so four
// residues used to be one count heavier).
func TestModAcceptExactUniformity(t *testing.T) {
	const k = 8
	for m := uint64(1); m <= 256; m++ {
		counts := make([]int, m)
		accepted := 0
		for v := uint64(0); v < 256; v++ {
			if modAccept(v, k, m) {
				counts[v%m]++
				accepted++
			}
		}
		if accepted == 0 {
			t.Fatalf("m=%d: rejection cutoff accepts nothing", m)
		}
		// No more than m−1 draws may be wasted, and every residue class
		// must be hit the identical number of times.
		if rejected := 256 - accepted; uint64(rejected) >= m {
			t.Fatalf("m=%d: %d rejected, want < m", m, rejected)
		}
		for r, c := range counts {
			if c != accepted/int(m) {
				t.Fatalf("m=%d: residue %d accepted %d times, want %d", m, r, c, accepted/int(m))
			}
		}
	}
}

// TestModAcceptFullWidth pins the k=64 branch, where 2^64 overflows uint64
// and the cutoff must be computed from MaxUint64 arithmetic.
func TestModAcceptFullWidth(t *testing.T) {
	max := ^uint64(0)
	// Powers of two divide 2^64: nothing is ever rejected.
	for _, m := range []uint64{1, 2, 1 << 16, 1 << 63} {
		if !modAccept(max, 64, m) || !modAccept(0, 64, m) {
			t.Fatalf("m=%d divides 2^64 but a draw was rejected", m)
		}
	}
	// 2^64 ≡ 1 (mod 3): exactly the top draw falls in the ragged tail.
	if modAccept(max, 64, 3) {
		t.Fatal("m=3: MaxUint64 is the one tail value and must be rejected")
	}
	if !modAccept(max-1, 64, 3) {
		t.Fatal("m=3: MaxUint64-1 is below the cutoff and must be accepted")
	}
	// 2^64 ≡ 6 (mod 10): the top six draws are the tail.
	for v := max - 5; v != 0; v++ {
		if modAccept(v, 64, 10) {
			t.Fatalf("m=10: tail draw %#x accepted", v)
		}
		if v == max {
			break
		}
	}
	if !modAccept(max-6, 64, 10) {
		t.Fatal("m=10: MaxUint64-6 must be accepted")
	}
}

// TestDrawModUniformChi runs a chi-squared uniformity check on live DrawMod
// output for moduli that do not divide the k=8 draw space. The run is
// deterministic (seeded dealing and refills), so the statistic is a fixed
// number, not a flake source; the threshold is the 99.9th percentile. The
// old raw reduction's bias on this small field (4 residues heavier by
// 1/36th) is exactly what rejection sampling removes.
func TestDrawModUniformChi(t *testing.T) {
	if testing.Short() {
		t.Skip("draws thousands of coins through the refill pipeline")
	}
	s, err := New(testConfig(t, 64, 6, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	// 99.9% chi-squared critical values for m−1 degrees of freedom.
	for _, tc := range []struct {
		m       int
		n       int
		critVal float64
	}{
		{m: 7, n: 2100, critVal: 22.458},
		{m: 10, n: 2000, critVal: 27.877},
	} {
		counts := make([]int, tc.m)
		for i := 0; i < tc.n; i++ {
			l, err := s.DrawMod(ctx, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if l < 1 || l > tc.m {
				t.Fatalf("DrawMod(%d) = %d outside [1,%d]", tc.m, l, tc.m)
			}
			counts[l-1]++
		}
		expect := float64(tc.n) / float64(tc.m)
		chi := 0.0
		for _, c := range counts {
			d := float64(c) - expect
			chi += d * d / expect
		}
		if chi > tc.critVal {
			t.Fatalf("DrawMod(%d) residues %v: chi-squared %.2f > %.2f", tc.m, counts, chi, tc.critVal)
		}
	}
}

// TestDrawModEdges pins the explicit edge handling: m ≤ 0 rejected, m = 1
// answered without spending a coin, m beyond the draw space rejected
// before any coin is consumed.
func TestDrawModEdges(t *testing.T) {
	s, err := New(testConfig(t, 24, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	for _, bad := range []int{0, -1, -7} {
		if _, err := s.DrawMod(ctx, bad); err == nil {
			t.Fatalf("DrawMod(%d) accepted", bad)
		}
	}
	// The k=8 test field draws from [0, 256): a larger modulus cannot be
	// served and must fail fast.
	if _, err := s.DrawMod(ctx, 257); err == nil {
		t.Fatal("DrawMod(257) accepted on an 8-bit field")
	}
	before := s.Stats().CoinsDelivered
	l, err := s.DrawMod(ctx, 1)
	if err != nil || l != 1 {
		t.Fatalf("DrawMod(1) = %d, %v; want 1, nil", l, err)
	}
	if after := s.Stats().CoinsDelivered; after != before {
		t.Fatalf("DrawMod(1) consumed %d coins; the single outcome needs none", after-before)
	}
	// m = 256 divides the space exactly: always one draw, never a rejection.
	if l, err := s.DrawMod(ctx, 256); err != nil || l < 1 || l > 256 {
		t.Fatalf("DrawMod(256) = %d, %v", l, err)
	}
}
