package gradecast

import (
	"bytes"
	"testing"
)

// FuzzDecodeInstanceValues: the multiplexed-frame decoder must never panic
// and accepted frames must re-encode to an equivalent value set.
func FuzzDecodeInstanceValues(f *testing.F) {
	vals := make([][]byte, 5)
	vals[0] = []byte("abc")
	vals[3] = []byte{}
	f.Add(encodeInstanceValues(vals))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := decodeInstanceValues(5, data)
		if err != nil {
			return
		}
		re := encodeInstanceValues(out)
		out2, err := decodeInstanceValues(5, re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		for i := range out {
			if (out[i] == nil) != (out2[i] == nil) || !bytes.Equal(out[i], out2[i]) {
				t.Fatalf("round trip mismatch at instance %d", i)
			}
		}
	})
}
