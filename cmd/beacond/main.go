// Command beacond serves shared randomness from a D-PRBG cluster — the
// deployable face of internal/beacon. It runs in one of three modes:
//
// Single-process (-all, also the default): all n players live in one
// process and randomness is served over HTTP. On first start the cluster is
// seeded with a one-time trusted-dealer batch (the paper's only trusted
// step); on SIGTERM/SIGINT it shuts down gracefully and persists every
// player's sealed store under -data, and a restart resumes from those files
// without the dealer ever being consulted again (§1.2's "the new seed is
// stored until the next execution of the application").
//
//	beacond -all -addr :8433 -n 7 -t 1 -k 32 -data /var/lib/beacond
//
// Ceremony (-deal): run the one-time trusted dealer for a multi-process
// cluster described by a peer config, writing every player's initial state
// files under -data for the operator to distribute (docs/OPERATIONS.md).
//
//	beacond -deal -config peers.yaml -data /tmp/ceremony
//
// Per-player daemon (-player): run exactly ONE player's Coin-Gen/Coin-Expose
// state machine, speaking authenticated TCP to the other daemons listed in
// the peer config. Every daemon appends the shared coins to an append-only
// public log under -data; the logs are byte-identical across honest
// daemons. Crash recovery and late joins are automatic as long as the
// player has not missed a refill (see internal/beacon Daemon docs).
//
//	beacond -player 3 -config peers.yaml -data /var/lib/beacond
//
// HTTP endpoints (single-process mode; daemon mode serves the observability
// endpoints only — /v1/healthz, /metrics, /debug/vars, /debug/trace — on
// -addr when set):
//
//	GET /v1/coin        one shared coin (an element of GF(2^k))
//	GET /v1/bits?n=128  n shared random bits, hex-encoded LSB-first
//	GET /v1/modulo?m=6  a shared value in [1, m] (the paper's leader draw)
//	GET /v1/healthz     liveness plus a stats summary
//	GET /metrics        Prometheus text exposition (draw latency, refill
//	                    pipeline, per-peer watermarks in daemon mode)
//	GET /debug/vars     expvar, with the unified beacon.VarsSnapshot under
//	                    the "beacon" key in both modes
//	GET /debug/trace    last ?n= events from the in-memory flight recorder,
//	                    as obs JSONL (mergeable with beaconctl timeline)
//
// Overload responses use 429 (queue full or rate-limited); a clean
// shutdown answers in-flight requests before persisting.
package main

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/beacon"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/prom"
	"repro/internal/simnet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// config is the validated flag set of one invocation.
type config struct {
	addr         string
	n, t, k      int
	batch        int
	threshold    int
	highWater    int
	seedCoins    int
	queue        int
	rate         float64
	burst        int
	data         string
	insecureRand bool
	rngSeed      int64

	// Mode selection (see usageModes).
	all        bool
	deal       bool
	player     int
	configPath string

	// Daemon-mode tuning.
	emit         int
	emitInterval time.Duration
	roundTimeout time.Duration
	dialBackoff  time.Duration
	trace        string
}

// usageModes names the invocation shapes; every mode-selection error points
// the operator at it.
const usageModes = `modes:
  beacond -all    [-n 7 -t 1 ...]                     single process hosting all n players (default)
  beacond -deal   -config peers.yaml -data DIR        one-time dealer ceremony for a multi-process cluster
  beacond -player I -config peers.yaml -data DIR      one player's daemon, peered over authenticated TCP`

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("beacond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8433", "HTTP listen address (daemon mode: empty disables HTTP)")
	fs.IntVar(&c.n, "n", 7, "number of players (n ≥ 6t+1)")
	fs.IntVar(&c.t, "t", 1, "Byzantine fault bound")
	fs.IntVar(&c.k, "k", 32, "coin field GF(2^k), 2 ≤ k ≤ 64")
	fs.IntVar(&c.batch, "batch", 96, "Coin-Gen batch size M")
	fs.IntVar(&c.threshold, "threshold", core.DefaultThreshold, "blocking refill threshold")
	fs.IntVar(&c.highWater, "highwater", 64, "proactive refill high-water mark (0 disables the pipeline)")
	fs.IntVar(&c.seedCoins, "seed-coins", 0, "one-time trusted-dealer seed size (default: batch)")
	fs.IntVar(&c.queue, "queue", 256, "request queue depth (backpressure bound)")
	fs.Float64Var(&c.rate, "rate", 0, "token-bucket rate limit in requests/s (0 disables)")
	fs.IntVar(&c.burst, "burst", 0, "token-bucket burst (default 1 when -rate is set)")
	fs.StringVar(&c.data, "data", "", "state directory for persisted stores (empty: no persistence; required in -deal/-player modes)")
	fs.BoolVar(&c.insecureRand, "insecure-rand", false, "use seeded math/rand instead of crypto/rand (reproducible demos ONLY)")
	fs.Int64Var(&c.rngSeed, "rng-seed", 1, "seed for -insecure-rand")
	fs.BoolVar(&c.all, "all", false, "single-process mode: host all n players in this process (the default)")
	fs.BoolVar(&c.deal, "deal", false, "run the one-time dealer ceremony for -config, write state files under -data, and exit")
	fs.IntVar(&c.player, "player", -1, "multi-process mode: run only this player's daemon (requires -config and -data)")
	fs.StringVar(&c.configPath, "config", "", "peer config (peers.yaml) for -deal and -player modes")
	fs.IntVar(&c.emit, "emit", 0, "daemon mode: stop after the public log reaches this many coins (0 = run forever)")
	fs.DurationVar(&c.emitInterval, "emit-interval", 0, "daemon mode: minimum delay between coin openings (0 = as fast as rounds allow)")
	fs.DurationVar(&c.roundTimeout, "round-timeout", 0, "daemon mode: barrier timeout before lagging peers are dropped from a round (0 = transport default)")
	fs.DurationVar(&c.dialBackoff, "dial-backoff", 0, "daemon mode: maximum reconnect backoff between dial attempts (0 = transport default)")
	fs.StringVar(&c.trace, "trace", "", "write an obs JSONL protocol trace to this file (-all: refill spans; -player: the full protocol)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("beacond: unexpected arguments %v", fs.Args())
	}
	if err := c.validateModes(); err != nil {
		return nil, fmt.Errorf("%w\n%s", err, usageModes)
	}
	return &c, nil
}

// validateModes enforces that exactly one invocation shape was requested
// and that it has what it needs.
func (c *config) validateModes() error {
	modes := 0
	for _, on := range []bool{c.all, c.deal, c.player >= 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("beacond: -all, -deal and -player are mutually exclusive")
	}
	switch {
	case c.deal:
		if c.configPath == "" {
			return fmt.Errorf("beacond: -deal requires -config peers.yaml")
		}
		if c.data == "" {
			return fmt.Errorf("beacond: -deal requires -data (where to write the ceremony output)")
		}
	case c.player >= 0:
		if c.configPath == "" {
			return fmt.Errorf("beacond: -player requires -config peers.yaml (without it there is no cluster to join; use -all for the single-process mode)")
		}
		if c.data == "" {
			return fmt.Errorf("beacond: -player requires -data (the player's state directory from the -deal ceremony)")
		}
	default:
		// Single-process mode (explicit -all or no mode flag at all).
		if c.configPath != "" {
			return fmt.Errorf("beacond: -config is only meaningful with -deal or -player")
		}
	}
	return nil
}

func (c *config) beaconConfig(ctr *metrics.Counters) (beacon.Config, error) {
	field, err := gf2k.New(c.k)
	if err != nil {
		return beacon.Config{}, err
	}
	cfg := beacon.Config{
		Core: core.Config{
			Field:     field,
			N:         c.n,
			T:         c.t,
			BatchSize: c.batch,
			Threshold: c.threshold,
			HighWater: c.highWater,
		},
		SeedCoins:  c.seedCoins,
		QueueDepth: c.queue,
		Rate:       c.rate,
		Burst:      c.burst,
		Counters:   ctr,
	}
	if c.insecureRand {
		var salt atomic.Int64
		seed := c.rngSeed
		cfg.Rand = func(i int) io.Reader {
			return rand.New(rand.NewSource(seed + int64(i)*1009 + salt.Add(1)*1_000_003))
		}
	} else {
		cfg.Rand = func(int) io.Reader { return cryptorand.Reader }
	}
	return cfg, cfg.Validate()
}

// liveVars holds the current mode's snapshot function. expvar.Publish
// panics on duplicate names and tests start several servers (of both modes)
// in one process, so a single "beacon" key is registered once and
// dispatches to whatever ran last — both modes publish the same unified
// beacon.VarsSnapshot schema.
var liveVars atomic.Value // of func() beacon.VarsSnapshot

var publishOnce = func() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			expvar.Publish("beacon", expvar.Func(func() any {
				if f, ok := liveVars.Load().(func() beacon.VarsSnapshot); ok {
					return f()
				}
				return nil
			}))
		}
	}
}()

// publishVars installs f as the process's /debug/vars snapshot source.
func publishVars(f func() beacon.VarsSnapshot) {
	liveVars.Store(f)
	publishOnce()
}

// traceHandler serves the in-memory flight recorder as obs JSONL: the last
// ?n= events (default: everything retained). The dump carries each event's
// origin/epoch correlation keys, so per-daemon dumps merge with
// obs.MergeJSONL into one cluster timeline (beaconctl timeline does).
func traceHandler(ring *obs.Ring) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		evs := ring.Events()
		if q := r.URL.Query().Get("n"); q != "" {
			var n int
			if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n < 1 {
				http.Error(w, "beacond: malformed ?n= event count", http.StatusBadRequest)
				return
			}
			if len(evs) > n {
				evs = evs[len(evs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		j := obs.NewJSONL(w)
		for _, e := range evs {
			j.Emit(e)
		}
		j.Flush() //nolint:errcheck // client went away; nothing to do
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	c, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	switch {
	case c.deal:
		return runDeal(c, stdout)
	case c.player >= 0:
		return runPlayer(ctx, c, stdout, stderr)
	}
	ctr := &metrics.Counters{}
	cfg, err := c.beaconConfig(ctr)
	if err != nil {
		return err
	}
	reg := prom.NewRegistry()
	cfg.Metrics = beacon.NewServiceMetrics(reg)
	// Always-on flight recorder: the refill tracer feeds the in-memory ring
	// (served at /debug/trace) and, with -trace, a JSONL file as well.
	ring := obs.NewRing(0)
	sinks := []obs.Sink{ring}
	if c.trace != "" {
		f, err := os.Create(c.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONL(f)
		defer jsonl.Flush() //nolint:errcheck // best-effort trace file
		sinks = append(sinks, jsonl)
	}
	cfg.Tracer = obs.New(ctr, sinks...)

	var svc *beacon.Service
	switch {
	case c.data != "" && beacon.HaveStores(c.data):
		stores, err := beacon.LoadStores(c.data, c.n)
		if err != nil {
			return err
		}
		if svc, err = beacon.Resume(cfg, stores); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: resumed %d players from %s (%d coins; trusted dealer not consulted)\n",
			c.n, c.data, svc.Stats().Remaining)
	default:
		if svc, err = beacon.New(cfg); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: fresh start, one-time trusted-dealer seed of %d coins\n",
			svc.Stats().Remaining)
	}
	publishVars(func() beacon.VarsSnapshot { return svc.Stats().Vars() })

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newMux(svc, c.k, reg, ring)}
	fmt.Fprintf(stdout, "beacond: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "beacond: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "beacond: http shutdown: %v\n", err)
	}
	if err := svc.Close(shutCtx); err != nil {
		return fmt.Errorf("beacond: close service: %w", err)
	}
	if c.data != "" {
		if err := svc.Persist(c.data); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: persisted %d player stores to %s (%d coins)\n",
			c.n, c.data, svc.Stats().Remaining)
	}
	st := svc.Stats()
	fmt.Fprintf(stdout, "beacond: served %d draws (%d coins), %d refills (%d pipelined, %d blocking), %d blocked draws\n",
		st.Draws, st.CoinsDelivered, st.Refills, st.PipelinedRefills, st.BlockingRefills, st.BlockedDraws)
	return nil
}

func newMux(svc *beacon.Service, k int, reg *prom.Registry, ring *obs.Ring) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/coin", func(w http.ResponseWriter, r *http.Request) {
		e, err := svc.Draw(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"coin": fmt.Sprintf("0x%0*x", (k+3)/4, uint64(e)), "k": k})
	})
	mux.HandleFunc("GET /v1/bits", func(w http.ResponseWriter, r *http.Request) {
		var n int
		if _, err := fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n); err != nil {
			http.Error(w, "beacond: missing or malformed ?n= bit count", http.StatusBadRequest)
			return
		}
		bits, err := svc.DrawBits(r.Context(), n)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"bits": hex.EncodeToString(bits), "n": n})
	})
	mux.HandleFunc("GET /v1/modulo", func(w http.ResponseWriter, r *http.Request) {
		var m int
		if _, err := fmt.Sscanf(r.URL.Query().Get("m"), "%d", &m); err != nil {
			http.Error(w, "beacond: missing or malformed ?m= modulus", http.StatusBadRequest)
			return
		}
		v, err := svc.DrawMod(r.Context(), m)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"value": v, "m": m})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		writeJSON(w, map[string]any{
			"status":    "ok",
			"remaining": st.Remaining,
			"queue":     st.QueueDepth,
			"refilling": st.RefillInFlight,
			"resumed":   st.Resumed,
		})
	})
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/trace", traceHandler(ring))
	return mux
}

// writeErr maps service errors onto HTTP status codes: overload conditions
// are retryable 429s, validation failures 400s, shutdown 503.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, beacon.ErrOverloaded), errors.Is(err, beacon.ErrRateLimited):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, beacon.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), 499) // client closed request
	default:
		var status = http.StatusInternalServerError
		if isValidation(err) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
	}
}

// isValidation distinguishes argument errors (bad bit counts, bad moduli)
// from internal protocol failures.
func isValidation(err error) bool {
	s := err.Error()
	return strings.Contains(s, "outside") || strings.Contains(s, "invalid modulus")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// runDeal executes the one-time dealer ceremony for a multi-process
// cluster: every player's initial store/meta pair lands under -data, ready
// to be scattered to the daemons' machines.
func runDeal(c *config, stdout io.Writer) error {
	pc, err := simnet.LoadPeerConfig(c.configPath)
	if err != nil {
		return err
	}
	if err := beacon.DealCluster(pc, c.data, dealerRand(c)); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "beacond: dealt %d seed coins to %d players under %s\n",
		beacon.SeedCoinCount(pc), pc.N(), c.data)
	fmt.Fprintf(stdout, "beacond: distribute each player-NNN.* file set to its machine; the files contain secret shares\n")
	return nil
}

// runPlayer runs one player's daemon until the context is cancelled or the
// -emit target is reached.
func runPlayer(ctx context.Context, c *config, stdout, stderr io.Writer) error {
	pc, err := simnet.LoadPeerConfig(c.configPath)
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(stdout, "beacond[player %d]: "+format+"\n", append([]any{c.player}, args...)...)
	}
	ctr := &metrics.Counters{}
	// The flight recorder is always on: every daemon retains its recent
	// protocol events in memory for /debug/trace, and -trace additionally
	// streams them to a JSONL file. NewDaemon stamps the tracer with this
	// player's origin and epoch, so dumps from different daemons correlate.
	ring := obs.NewRing(0)
	sinks := []obs.Sink{ring}
	if c.trace != "" {
		f, err := os.Create(c.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONL(f)
		defer jsonl.Flush() //nolint:errcheck // best-effort trace file
		sinks = append(sinks, jsonl)
	}
	tracer := obs.New(ctr, sinks...)
	reg := prom.NewRegistry()
	d, err := beacon.NewDaemon(beacon.DaemonConfig{
		Peers:          pc,
		Self:           c.player,
		StateDir:       c.data,
		Emit:           c.emit,
		EmitInterval:   c.emitInterval,
		Rand:           playerRand(c),
		Counters:       ctr,
		Tracer:         tracer,
		Metrics:        beacon.NewDaemonMetrics(reg),
		PeerMetrics:    simnet.NewPeerMetrics(reg),
		RoundTimeout:   c.roundTimeout,
		DialBackoffMax: c.dialBackoff,
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	publishVars(func() beacon.VarsSnapshot { return d.Stats().Vars() })

	var srv *http.Server
	if c.addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
			st := d.Stats()
			writeJSON(w, map[string]any{
				"status": "ok", "player": st.Player, "joined": st.Joined,
				"round": st.Round, "log": st.LogLen, "epoch": st.Epoch,
				"remaining": st.Remaining, "refilling": st.Refilling, "peers": st.Peers,
			})
		})
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /debug/vars", expvar.Handler())
		mux.HandleFunc("GET /debug/trace", traceHandler(ring))
		ln, err := net.Listen("tcp", c.addr)
		if err != nil {
			return err
		}
		logf("stats on http://%s", ln.Addr())
		srv = &http.Server{Handler: mux}
		go srv.Serve(ln)
	}

	logf("joining cluster %q as player %d of %d (log %s)",
		pc.Cluster, c.player, pc.N(), beacon.CoinLogFile(c.data, c.player))
	runErr := d.Run(ctx)
	if srv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}
	if runErr != nil {
		return fmt.Errorf("beacond: player %d: %w", c.player, runErr)
	}
	st := d.Stats()
	logf("stopped cleanly at log position %d (epoch %d, %d coins in store)", st.LogLen, st.Epoch, st.Remaining)
	return nil
}

// dealerRand is the ceremony's randomness source; playerRand is one
// daemon's private source. -insecure-rand pins both to a deterministic
// stream for reproducible demos and the soak harness.
func dealerRand(c *config) io.Reader {
	if c.insecureRand {
		return rand.New(rand.NewSource(c.rngSeed))
	}
	return cryptorand.Reader
}

func playerRand(c *config) io.Reader {
	if c.insecureRand {
		return rand.New(rand.NewSource(c.rngSeed + int64(c.player)*1009))
	}
	return cryptorand.Reader
}
