package simnet

// Peer-transport enactment of hostile schedules: wall-clock holds on done
// frames, crash-window frame drops driving demotion/promotion, and the
// round-timeout grace regression — "slow under jitter" must not demote
// like "gone" does.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// runPeerChatter drives every daemon of the cluster through `rounds`
// all-to-all rounds and returns, per player per round, the set of senders
// seen at the boundary. A non-zero pace sleeps that long before each round
// flush — it keeps an undisturbed majority from blasting through its
// remaining rounds in microseconds after a demotion, so a recovering peer
// has a real boundary left to rejoin at (exactly what a beacon's steady
// round cadence provides in production).
func runPeerChatter(t *testing.T, nws []*Network, rounds int, pace time.Duration) [][]map[int]bool {
	t.Helper()
	n := len(nws)
	seen := make([][]map[int]bool, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, nw := range nws {
		if err := nw.StartAt(0); err != nil {
			t.Fatalf("StartAt(%d): %v", i, err)
		}
	}
	for i, nw := range nws {
		wg.Add(1)
		go func(i int, nw *Network) {
			defer wg.Done()
			nd := nw.Node(i)
			for r := 0; r < rounds; r++ {
				if pace > 0 {
					time.Sleep(pace)
				}
				nd.SendAll([]byte(fmt.Sprintf("r%d-p%d", r, i)))
				msgs, err := nd.EndRound()
				if err != nil {
					errs[i] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				froms := map[int]bool{}
				for _, m := range msgs {
					froms[m.From] = true
				}
				seen[i] = append(seen[i], froms)
			}
		}(i, nw)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
	return seen
}

// demotions counts peer-demoted-* spans in the ring.
func demotions(ring *obs.Ring) int {
	n := 0
	for _, e := range ring.Events() {
		if strings.HasPrefix(e.Name, "peer-demoted-") {
			n++
		}
	}
	return n
}

func TestPeerScheduleJitterGrace(t *testing.T) {
	// Player 2's done frames are held 4 schedule units (= 240ms) — far past
	// the 120ms round timeout. The grace multiplier derived from
	// Schedule.MaxDelay must keep the honest straggler in the required set:
	// no demotion, and its traffic present at every boundary.
	if testing.Short() {
		t.Skip("wall-clock schedule holds")
	}
	cfg := testPeerCfg(t, 3)
	sched := &Schedule{Seed: 3, Delays: []DelayRule{{
		From: 2, To: Wildcard, Start: 0, End: 0, Dist: Dist{Kind: DistFixed, Min: 4},
	}}}
	rings := make([]*obs.Ring, 3)
	nws := make([]*Network, 3)
	for i := 0; i < 3; i++ {
		rings[i] = obs.NewRing(1 << 12)
		nw, err := NewPeer(cfg, i,
			WithSchedule(sched),
			WithScheduleUnit(60*time.Millisecond),
			WithRoundTimeout(120*time.Millisecond),
			WithTracer(obs.New(nil, rings[i])))
		if err != nil {
			t.Fatalf("NewPeer(%d): %v", i, err)
		}
		t.Cleanup(nw.Close)
		nws[i] = nw
	}
	for i, nw := range nws {
		if err := nw.WaitPeers(2, 10*time.Second); err != nil {
			t.Fatalf("player %d mesh: %v", i, err)
		}
	}
	const rounds = 4
	seen := runPeerChatter(t, nws, rounds, 0)
	for i := 0; i < 3; i++ {
		if got := demotions(rings[i]); got != 0 {
			t.Errorf("player %d demoted %d peers under pure jitter — grace multiplier not applied", i, got)
		}
		for r := 0; r < rounds; r++ {
			for j := 0; j < 3; j++ {
				if j != i && !seen[i][r][j] {
					t.Errorf("player %d round %d missing traffic from %d", i, r, j)
				}
			}
		}
	}
}

func TestPeerScheduleCrashDemotesThenPromotes(t *testing.T) {
	// Crash player 2 for rounds [1,3): its frames are eaten, so the others
	// demote it (that IS the peer-mode enactment of a crash), commit the
	// window's rounds without it, and promote it back once its post-recovery
	// done frames flow again. Everyone finishes; the last round is whole.
	if testing.Short() {
		t.Skip("wall-clock demotion timeouts")
	}
	cfg := testPeerCfg(t, 3)
	sched := &Schedule{Seed: 8, Crashes: []CrashRule{{Player: 2, Start: 1, Recover: 3}}}
	rings := make([]*obs.Ring, 3)
	nws := make([]*Network, 3)
	for i := 0; i < 3; i++ {
		rings[i] = obs.NewRing(1 << 12)
		nw, err := NewPeer(cfg, i,
			WithSchedule(sched),
			WithScheduleUnit(20*time.Millisecond),
			WithRoundTimeout(250*time.Millisecond),
			WithTracer(obs.New(nil, rings[i])))
		if err != nil {
			t.Fatalf("NewPeer(%d): %v", i, err)
		}
		t.Cleanup(nw.Close)
		nws[i] = nw
	}
	for i, nw := range nws {
		if err := nw.WaitPeers(2, 10*time.Second); err != nil {
			t.Fatalf("player %d mesh: %v", i, err)
		}
	}
	const rounds = 6
	seen := runPeerChatter(t, nws, rounds, 60*time.Millisecond)

	// The crash must have been observed: players 0 and 1 demoted somebody.
	if demotions(rings[0])+demotions(rings[1]) == 0 {
		t.Error("crash window produced no demotion — schedule not enacted on the wire")
	}
	for i := 0; i < 2; i++ {
		// Inside the window the crashed player's traffic is gone...
		for r := 1; r < 3; r++ {
			if seen[i][r][2] {
				t.Errorf("player %d round %d saw traffic from crashed player 2", i, r)
			}
		}
		// ...and the final round is whole again: recovery promoted it back.
		if !seen[i][rounds-1][2] {
			t.Errorf("player %d round %d missing traffic from recovered player 2", i, rounds-1)
		}
	}
}
