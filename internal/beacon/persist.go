package beacon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/coin"
	"repro/internal/gf2k"
)

// Store persistence: one file per player, written atomically
// (temp-file + rename), holding that player's coin.Store in the
// length-prefixed Batch wire format. In a real deployment each player
// writes only its own file on its own machine; the simulated cluster
// writes all n side by side. The share bytes are the players' secrets —
// files are created 0600 and the directory 0700.

// storeFile names player i's store file inside dir.
func storeFile(dir string, player int) string {
	return filepath.Join(dir, fmt.Sprintf("player-%03d.store", player))
}

// Persist writes every player's store under dir. Call only after Close
// has returned: the stores must be quiescent. A restarted process resumes
// with LoadStores + Resume, never re-running the trusted dealer.
func (s *Service) Persist(dir string) error {
	if !s.closed.Load() {
		return fmt.Errorf("beacon: persist requires a closed service")
	}
	select {
	case <-s.execDone:
	default:
		return fmt.Errorf("beacon: persist requires a closed service")
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	for i, g := range s.gens {
		enc, err := g.Store().MarshalBinary()
		if err != nil {
			return fmt.Errorf("beacon: marshal player %d store: %w", i, err)
		}
		if err := writeAtomic(storeFile(dir, i), enc); err != nil {
			return fmt.Errorf("beacon: persist player %d store: %w", i, err)
		}
	}
	return nil
}

// LoadStores reads n persisted player stores from dir. It returns
// os.ErrNotExist (wrapped) when no store files are present, so callers can
// distinguish "fresh start" from genuine corruption.
func LoadStores(dir string, n int) ([]*coin.Store, error) {
	stores := make([]*coin.Store, n)
	for i := 0; i < n; i++ {
		data, err := os.ReadFile(storeFile(dir, i))
		if err != nil {
			return nil, fmt.Errorf("beacon: load player %d store: %w", i, err)
		}
		st, err := coin.UnmarshalStore(data)
		if err != nil {
			return nil, fmt.Errorf("beacon: load player %d store: %w", i, err)
		}
		stores[i] = st
	}
	return stores, nil
}

// HaveStores reports whether dir contains a persisted store for player 0
// (and hence, for an uncorrupted state directory, for every player).
func HaveStores(dir string) bool {
	_, err := os.Stat(storeFile(dir, 0))
	return err == nil
}

// --- single-player persistence (daemon mode) ---------------------------------
//
// A multi-process daemon owns exactly one player's state: the sealed store
// (snapshotted after every refill and at graceful shutdown), a small meta
// file pinning the refill epoch and the public-log length the snapshot
// corresponds to, and the append-only public coin log itself. The log is
// the beacon's output stream AND the crash-recovery ledger: the store
// snapshot is only taken at refill boundaries, so after a crash the store
// cursor is rewound to the snapshot while the log records how far the
// daemon actually got — the difference is replayed with coin.Store.Discard.

// SaveStore atomically writes one player's store snapshot under dir.
func SaveStore(dir string, player int, st *coin.Store) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	enc, err := st.MarshalBinary()
	if err != nil {
		return fmt.Errorf("beacon: marshal player %d store: %w", player, err)
	}
	return writeAtomic(storeFile(dir, player), enc)
}

// LoadStore reads one player's persisted store from dir.
func LoadStore(dir string, player int) (*coin.Store, error) {
	data, err := os.ReadFile(storeFile(dir, player))
	if err != nil {
		return nil, fmt.Errorf("beacon: load player %d store: %w", player, err)
	}
	st, err := coin.UnmarshalStore(data)
	if err != nil {
		return nil, fmt.Errorf("beacon: load player %d store: %w", player, err)
	}
	return st, nil
}

// Meta is the per-player daemon metadata persisted next to the store.
type Meta struct {
	// Epoch counts absorbed Coin-Gen refills since the current committee
	// took over (the dealer ceremony, or the last reshare). A rejoining
	// daemon whose epoch differs from the cluster's has missed a refill and
	// catches up with a proactive reshare (docs/OPERATIONS.md).
	Epoch int
	// LogLen is the public-log length at the moment the store snapshot was
	// written; the recovery discard is len(log) − LogLen.
	LogLen int
	// Generation counts committee handovers: 0 for the dealt committee,
	// bumped by every reshare. Must match the store's generation and the
	// peers.yaml generation field, so a daemon restarted against the wrong
	// roster generation fails loudly instead of joining a mesh it cannot
	// serve (the config digest separates the meshes anyway).
	Generation int `json:",omitempty"`
}

func metaFile(dir string, player int) string {
	return filepath.Join(dir, fmt.Sprintf("player-%03d.meta", player))
}

// SaveMeta atomically writes the player's daemon metadata.
func SaveMeta(dir string, player int, m Meta) error {
	enc, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeAtomic(metaFile(dir, player), enc)
}

// LoadMeta reads the player's daemon metadata; a missing file is the zero
// Meta (fresh post-ceremony state).
func LoadMeta(dir string, player int) (Meta, error) {
	var m Meta
	data, err := os.ReadFile(metaFile(dir, player))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("beacon: player %d meta: %w", player, err)
	}
	return m, nil
}

// CoinLogFile names player i's public coin log inside dir: one line per
// opened coin, "<index> <value-hex>", append-only. Identical at every
// honest player — this file IS the beacon's public output stream.
func CoinLogFile(dir string, player int) string {
	return filepath.Join(dir, fmt.Sprintf("player-%03d.coins", player))
}

// FormatLogEntry renders one public-log line (without newline); every
// writer must use it so logs stay byte-comparable across daemons.
func FormatLogEntry(index int, value gf2k.Element) string {
	return fmt.Sprintf("%d %x", index, uint64(value))
}

// LoadCoinLog reads a public coin log back into memory. A final line not
// terminated by '\n' (the signature of a crash mid-append) is dropped
// unconditionally — even when it happens to parse: "5 deadbeef\n" torn to
// "5 dead" yields the right index with a WRONG value, and loading it would
// silently fork this daemon's public log from the cluster's. The dropped
// entry replays from peers at rejoin. Any line inside the terminated
// prefix that fails to parse is corruption and fails. Entries must be
// contiguous from 0.
func LoadCoinLog(path string) ([]gf2k.Element, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	s := string(data)
	if i := strings.LastIndexByte(s, '\n'); i >= 0 {
		s = s[:i+1]
	} else {
		s = "" // a single torn line, no terminated prefix at all
	}
	var out []gf2k.Element
	for i, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		var idx int
		var val uint64
		if _, err := fmt.Sscanf(line, "%d %x", &idx, &val); err != nil || idx != len(out) {
			return nil, fmt.Errorf("beacon: coin log %s corrupt at line %d", path, i+1)
		}
		out = append(out, gf2k.Element(val))
	}
	return out, nil
}

// openCoinLog opens the log for appending, verifying it against the
// already-loaded entries by rewriting it when the file holds a torn tail.
func openCoinLog(path string, entries []gf2k.Element) (*os.File, error) {
	// Rewrite from the verified in-memory entries: this heals a torn final
	// line and guarantees the bytes on disk match FormatLogEntry exactly.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	for i, v := range entries {
		fmt.Fprintln(w, FormatLogEntry(i, v))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o600)
}

// writeAtomic writes data to path via a temp file, fsync and rename, so a
// crash mid-write never leaves a truncated store behind and the rename
// target is durable before it becomes visible.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".store-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
