// Command benchjson runs the repository's benchmarks and records the
// results as a JSON document, so successive PRs can diff machine-readable
// baselines (BENCH_<date>.json at the repo root) instead of eyeballing
// `go test -bench` output.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_2026-08-05.json
//	go run ./cmd/benchjson -bench 'Interpolate' -benchtime 100x -out /dev/stdout
//
// With -merge, results are folded into an existing -out document instead of
// replacing it: same-name entries are overwritten, new ones appended. This
// lets a targeted run (e.g. the serving-path BeaconDrawThroughput series)
// refresh its series without re-running every benchmark:
//
//	go run ./cmd/benchjson -bench 'BeaconDrawThroughput' -pkgs ./internal/beacon \
//	    -benchtime 2000x -merge -out BENCH_2026-08-05.json
//
// The raw benchmark output is teed to stderr while it is parsed, so the
// command is a drop-in replacement for `make bench`.
//
// With -compare, no benchmarks run: the command diffs a fresh results
// document against a committed baseline and exits non-zero when any gated
// series regressed beyond the tolerance — the CI bench-regression gate:
//
//	go run ./cmd/benchjson -bench 'Interpolate|BatchVSSScale' -out fresh.json
//	go run ./cmd/benchjson -compare -baseline BENCH_2026-08-05.json \
//	    -candidate fresh.json -tolerance 0.25 -series Interpolate,BatchVSS,BeaconDraw
//
// Only ns/op is gated (allocation counts are exact and caught by tests;
// custom metrics are informational). Entries present in just one document
// are reported but never fail the gate, so a targeted benchmark subset can
// be compared against a full baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line: name, iteration count, and the measured
// metrics keyed by unit (ns/op, B/op, allocs/op, and any custom ReportMetric
// units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the file format: enough context to interpret the numbers
// (host, Go version, benchtime) plus the results.
type Document struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime,omitempty"`
	Command   string   `json:"command"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "", "passed to go test -benchtime (e.g. 1s, 100x)")
		pkgs      = flag.String("pkgs", "./...", "package pattern to benchmark")
		out       = flag.String("out", "", "output JSON file (default stdout)")
		merge     = flag.Bool("merge", false, "merge results by name into an existing -out file instead of replacing it")
		compare   = flag.Bool("compare", false, "compare -candidate against -baseline instead of running benchmarks")
		baseline  = flag.String("baseline", "", "baseline JSON document for -compare")
		candidate = flag.String("candidate", "", "fresh JSON document for -compare")
		tolerance = flag.Float64("tolerance", 0.25, "relative ns/op regression allowed by -compare (0.25 = +25%)")
		series    = flag.String("series", "", "comma-separated name substrings gated by -compare (empty = every common entry)")
	)
	flag.Parse()

	if *compare {
		if *baseline == "" || *candidate == "" {
			log.Fatal("benchjson: -compare requires -baseline and -candidate")
		}
		base, err := readDocument(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := readDocument(*candidate)
		if err != nil {
			log.Fatal(err)
		}
		report := compareDocs(base, cand, splitSeries(*series), *tolerance)
		fmt.Fprint(os.Stderr, report.String())
		if len(report.Regressions) > 0 {
			os.Exit(1)
		}
		return
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", *pkgs}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	results, perr := parseBench(io.TeeReader(pipe, os.Stderr))
	if err := cmd.Wait(); err != nil {
		log.Fatalf("go test -bench: %v", err)
	}
	if perr != nil {
		log.Fatalf("parse benchmark output: %v", perr)
	}

	doc := Document{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
		Command:   "go " + strings.Join(args, " "),
		Results:   results,
	}
	if *merge && *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old Document
			if err := json.Unmarshal(prev, &old); err != nil {
				log.Fatalf("merge into %s: %v", *out, err)
			}
			doc.Results = mergeResults(old.Results, results)
			doc.Command = old.Command + " ; " + doc.Command
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d results written to %s (%d from this run)\n",
		len(doc.Results), *out, len(results))
}

// mergeResults overlays fresh results onto an existing series: entries with
// the same benchmark name are replaced in place, new names are appended, and
// untouched old entries survive.
func mergeResults(old, fresh []Result) []Result {
	idx := make(map[string]int, len(old))
	out := append([]Result(nil), old...)
	for i, r := range out {
		idx[r.Name] = i
	}
	for _, r := range fresh {
		if i, ok := idx[r.Name]; ok {
			out[i] = r
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// trimProcs strips the "-N" GOMAXPROCS suffix go test appends to benchmark
// names (absent when GOMAXPROCS=1), so documents recorded on machines with
// different core counts — a laptop baseline vs a CI runner — compare by
// stable names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// readDocument loads a benchjson Document from disk.
func readDocument(path string) (Document, error) {
	var doc Document
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, fmt.Errorf("benchjson: %w", err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("benchjson: parse %s: %v", path, err)
	}
	return doc, nil
}

// splitSeries parses the -series flag: comma-separated, whitespace-trimmed
// name substrings; empty input means "gate everything".
func splitSeries(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Delta is one compared benchmark: baseline and candidate ns/op plus the
// relative change ((cand-base)/base; +0.30 = 30% slower).
type Delta struct {
	Name       string
	Base, Cand float64
	Change     float64
}

// Report is the outcome of compareDocs: gated entries that regressed beyond
// tolerance, gated entries that passed, and names skipped because they were
// present in only one document or carried no ns/op metric.
type Report struct {
	Tolerance   float64
	Regressions []Delta
	Passed      []Delta
	Skipped     []string
}

// String renders the report as the CI log block: every comparison with its
// relative change, then the verdict line.
func (r Report) String() string {
	var b strings.Builder
	line := func(verdict string, d Delta) {
		fmt.Fprintf(&b, "%-6s %-60s %12.1f -> %12.1f ns/op  %+.1f%%\n",
			verdict, d.Name, d.Base, d.Cand, 100*d.Change)
	}
	for _, d := range r.Passed {
		line("ok", d)
	}
	for _, d := range r.Regressions {
		line("FAIL", d)
	}
	for _, name := range r.Skipped {
		fmt.Fprintf(&b, "%-6s %s (no common ns/op)\n", "skip", name)
	}
	if len(r.Regressions) > 0 {
		fmt.Fprintf(&b, "benchjson: %d series regressed beyond +%.0f%% tolerance\n",
			len(r.Regressions), 100*r.Tolerance)
	} else {
		fmt.Fprintf(&b, "benchjson: %d series within +%.0f%% tolerance\n",
			len(r.Passed), 100*r.Tolerance)
	}
	return b.String()
}

// matchesSeries reports whether a benchmark name belongs to one of the gated
// series (substring match, so "Interpolate" covers every sub-benchmark of
// BenchmarkInterpolate). An empty series list gates every name.
func matchesSeries(name string, series []string) bool {
	if len(series) == 0 {
		return true
	}
	for _, s := range series {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// compareDocs gates candidate against baseline: every gated name present in
// both documents with an ns/op metric is compared, and a relative slowdown
// above tolerance is a regression. One-sided names are skipped, not failed —
// a targeted candidate run may legitimately cover a subset of the baseline,
// and new benchmarks have no baseline yet. Speedups always pass (the
// committed baseline is refreshed by PRs that improve it).
func compareDocs(base, cand Document, series []string, tolerance float64) Report {
	rep := Report{Tolerance: tolerance}
	baseNS := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
			baseNS[r.Name] = ns
		}
	}
	seen := make(map[string]bool, len(cand.Results))
	for _, r := range cand.Results {
		if !matchesSeries(r.Name, series) {
			continue
		}
		seen[r.Name] = true
		ns, ok := r.Metrics["ns/op"]
		bns, bok := baseNS[r.Name]
		if !ok || ns <= 0 || !bok {
			rep.Skipped = append(rep.Skipped, r.Name)
			continue
		}
		d := Delta{Name: r.Name, Base: bns, Cand: ns, Change: (ns - bns) / bns}
		if d.Change > tolerance {
			rep.Regressions = append(rep.Regressions, d)
		} else {
			rep.Passed = append(rep.Passed, d)
		}
	}
	for _, r := range base.Results {
		if matchesSeries(r.Name, series) && !seen[r.Name] {
			rep.Skipped = append(rep.Skipped, r.Name)
		}
	}
	return rep
}

// parseBench extracts benchmark lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
//
// from go test output. Value/unit pairs after the iteration count become
// Metrics entries; non-benchmark lines are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: some note" lines
		}
		res := Result{Name: trimProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	return out, sc.Err()
}
