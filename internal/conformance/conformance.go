// Package conformance is the seeded adversarial conformance suite: it
// sweeps {attack × protocol × (n, t)} configurations through the simnet
// fault-injection layer and asserts the paper's stated guarantees directly
// on the outputs — honest players agree, disqualified dealers are exactly
// the cheating ones, grades never split 2-vs-0, sealed coins are identical
// across honest players and unpredictable before Coin-Expose.
//
// Every scenario is a pure function of its (seed, config) pair: player
// randomness, adversary randomness and message interception are all derived
// from Scenario.Seed, and simnet delivers deterministically, so a failing
// table entry reproduces exactly from the name printed by `go test`. Each
// run is traced into an in-memory obs ring; failures attach the tail of the
// timeline for diagnosis.
//
// The non-test files hold the scenario runners (one per protocol) so that
// experiments and future fuzz drivers can execute the same scenarios
// outside `go test`.
package conformance

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/simnet"
)

// TraceDirEnv names the directory where failing scenarios dump their full
// canonical timeline as JSONL (one file per scenario). CI sets it and
// uploads the directory as a failure artifact; unset means no dump.
const TraceDirEnv = "CONFORMANCE_TRACE_DIR"

// Scenario names one conformance case: a protocol under a named attack at a
// given size, fully reproducible from Seed.
type Scenario struct {
	// Protocol selects the runner: "vss", "batch-vss", "gradecast", "ba" or
	// "coingen".
	Protocol string
	// Attack is the runner-specific attack key; "honest" is the control.
	Attack string
	// Variant is an optional protocol-specific knob (e.g. the BA input
	// pattern).
	Variant string
	// N, T are the network size and fault bound; M the batch size where the
	// protocol has one.
	N, T, M int
	// Seed derives every random choice in the scenario.
	Seed int64
	// Width, when > 1, runs every player's pure compute through a
	// parallel.Pool of that width (per-player forks of one root, as a
	// beacon deployment would). Verdicts and canonical transcripts must be
	// byte-identical to the serial run — that invariance is itself part of
	// the conformance contract.
	Width int
	// Schedule, when non-nil, runs the scenario under a hostile-network
	// schedule (simnet.WithSchedule): seeded delivery jitter, partitions
	// with heals, crash windows, within-round reordering. Players the
	// schedule disturbs (Schedule.Disturbed — charged against the fault
	// budget t exactly like corrupted players) are exempted from the
	// honest-output assertions; see the runners. The schedule-exploration
	// harness in conformance/schedules samples these.
	Schedule *simnet.Schedule
}

// String renders the scenario as the subtest name — quoting it back into
// the tables in suite_test.go reproduces the exact run.
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", s.Protocol, s.Attack)
	if s.Variant != "" {
		fmt.Fprintf(&b, "+%s", s.Variant)
	}
	fmt.Fprintf(&b, "/n=%d,t=%d", s.N, s.T)
	if s.M > 0 {
		fmt.Fprintf(&b, ",m=%d", s.M)
	}
	fmt.Fprintf(&b, ",seed=%d", s.Seed)
	if s.Width > 1 {
		fmt.Fprintf(&b, ",w=%d", s.Width)
	}
	if s.Schedule != nil {
		// The schedule seed completes the (scenario-seed, schedule-seed)
		// repro pair; the full rule list is printed by failf on failure.
		fmt.Fprintf(&b, ",sched=%d", s.Schedule.Seed)
	}
	return b.String()
}

// pools returns one compute pool per player: nil (serial) for Width ≤ 1,
// otherwise per-player forks sharing one root's capacity tokens.
func (s Scenario) pools() []*parallel.Pool {
	out := make([]*parallel.Pool, s.N)
	if s.Width > 1 {
		root := parallel.New(s.Width)
		for i := range out {
			out[i] = root.Fork()
		}
	}
	return out
}

// env is the per-scenario test substrate: a traced network plus trusted
// seed-coin batches for the protocols that consume sealed coins.
type env struct {
	sc    Scenario
	field gf2k.Field
	ring  *obs.Ring
	nw    *simnet.Network
	// seeds[i] is player i's batch of pre-dealt sealed coins; seedVals the
	// corresponding coin values (known to the test, not to the players).
	seeds    []*coin.Batch
	seedVals []gf2k.Element
}

// newEnv builds the scenario substrate. All randomness below the scenario —
// the trusted seed dealing now, player and adversary rngs later — derives
// from sc.Seed, and the interceptor (nil for player-level attacks) is
// installed before the first round, so the run is a pure function of
// (sc, ic).
func newEnv(sc Scenario, ic simnet.Interceptor, seedCoins int) (*env, error) {
	f := gf2k.MustNew(32)
	master := rand.New(rand.NewSource(sc.Seed))
	seeds, vals, err := coin.DealTrusted(f, sc.N, sc.T, seedCoins, master)
	if err != nil {
		return nil, fmt.Errorf("conformance: deal trusted seed: %w", err)
	}
	if err := sc.Schedule.Validate(sc.N); err != nil {
		return nil, fmt.Errorf("conformance: %w", err)
	}
	ring := obs.NewRing(1 << 15)
	nw := simnet.New(sc.N,
		simnet.WithTracer(obs.New(nil, ring)),
		simnet.WithMaxRounds(4096),
		simnet.WithInterceptor(ic),
		simnet.WithSchedule(sc.Schedule),
	)
	return &env{sc: sc, field: f, ring: ring, nw: nw, seeds: seeds, seedVals: vals}, nil
}

// playerRand returns player i's private randomness source, derived from the
// scenario seed.
func (e *env) playerRand(i int) *rand.Rand {
	return rand.New(rand.NewSource(e.sc.Seed + 7919*int64(i+1)))
}

// attackSeed derives the adversary's randomness for the player at index i.
func (e *env) attackSeed(i int) int64 {
	return e.sc.Seed ^ 0x5a5a5a5a ^ int64(i)<<16
}

// Diagnose renders the tail of the captured trace — the obs timeline of the
// last `lastRounds` worth of events — for attaching to a failure report.
func (e *env) Diagnose(lastEvents int) string {
	events := e.ring.Events()
	if len(events) > lastEvents {
		events = events[len(events)-lastEvents:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s, trace tail (%d events):\n", e.sc, len(events))
	obs.Timeline(&b, events)
	return b.String()
}

// failf wraps a property violation with the reproduction pair and trace
// tail, and (when TraceDirEnv is set) dumps the full canonical timeline for
// artifact upload.
func (e *env) failf(format string, args ...interface{}) error {
	e.dumpTrace()
	return fmt.Errorf("%s: %s\n%s", e.sc, fmt.Sprintf(format, args...), e.Diagnose(60))
}

// dumpTrace writes the scenario's complete event stream — in canonical,
// scheduler-independent order — as JSONL into $CONFORMANCE_TRACE_DIR. The
// file name is the scenario name with path-hostile characters flattened, so
// a CI artifact maps back to the failing subtest. Dump errors are swallowed:
// the trace is diagnostics for an already-failing run, never a new failure.
func (e *env) dumpTrace() {
	dir := os.Getenv(TraceDirEnv)
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	name := strings.NewReplacer("/", "_", ",", "_", "=", "-", "+", "_").Replace(e.sc.String())
	f, err := os.Create(filepath.Join(dir, name+".jsonl"))
	if err != nil {
		return
	}
	defer f.Close()
	sink := obs.NewJSONL(f)
	for _, ev := range obs.CanonicalOrder(e.ring.Events()) {
		sink.Emit(ev)
	}
	_ = sink.Flush()
}

// assertable returns the players whose outputs the scenario's properties
// are asserted on: everyone neither corrupted by the attack nor disturbed
// by the hostile schedule. A disturbed player runs honest code, but the
// schedule damages its connectivity in ways the paper charges against the
// fault budget t (see simnet.Schedule.Disturbed) — its own outputs carry no
// guarantee, exactly like a corrupted player's, while the undisturbed
// majority's guarantees must survive.
func (s Scenario) assertable(corrupt []int) []int {
	exempt := append([]int(nil), corrupt...)
	exempt = append(exempt, s.Schedule.Disturbed(s.N)...)
	return honestSet(s.N, exempt)
}

// disturbed reports whether the scenario's schedule disturbs player i.
func (s Scenario) disturbed(i int) bool {
	for _, d := range s.Schedule.Disturbed(s.N) {
		if d == i {
			return true
		}
	}
	return false
}

// honestSet returns all indices not in corrupt, ascending.
func honestSet(n int, corrupt []int) []int {
	bad := map[int]bool{}
	for _, i := range corrupt {
		bad[i] = true
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !bad[i] {
			out = append(out, i)
		}
	}
	return out
}

// checkHonest returns an error if any honest player's run failed.
func checkHonest(e *env, results []simnet.PlayerResult, honest []int) error {
	for _, i := range honest {
		if results[i].Err != nil {
			return e.failf("honest player %d failed: %v", i, results[i].Err)
		}
	}
	return nil
}
