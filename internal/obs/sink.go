package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink consumes trace events. Implementations must be safe for concurrent
// Emit calls: the Tracer serializes its own emissions, but a sink may be
// shared by several tracers or fed directly by tests.
type Sink interface {
	Emit(Event)
}

// --- ring buffer --------------------------------------------------------------

// Ring is a fixed-capacity in-memory sink that overwrites its oldest events
// when full — the always-on flight recorder. The zero value is unusable;
// call NewRing.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped int64
}

// DefaultRingCapacity is plenty for a multi-batch Coin-Gen run at n ≤ 32.
const DefaultRingCapacity = 1 << 16

// NewRing creates a ring buffer holding up to capacity events
// (DefaultRingCapacity if capacity ≤ 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit appends the event, evicting the oldest when at capacity.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Dropped reports how many events were evicted to make room.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// --- JSONL --------------------------------------------------------------------

// JSONL streams events to a writer, one JSON object per line — the
// replayable export format. Write errors are sticky and surfaced by Err
// (Emit cannot fail, matching the Sink interface).
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL creates a JSONL sink over w. Call Flush before inspecting the
// underlying writer.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one line. After the first error it is a no-op.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(e)
	}
	j.mu.Unlock()
}

// Flush drains buffered output and returns the first error seen, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Err returns the first write/encode error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ParseJSONL reads a JSONL export back into the event sequence it encodes.
// It is the inverse of the JSONL sink: exporting and parsing yields the
// identical []Event (the round-trip property obs's tests pin down).
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: parse JSONL line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read JSONL: %w", err)
	}
	return out, nil
}

// Tee fans every event out to each sink in order.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
