package main

import (
	"math/rand"

	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/poly"
	"repro/internal/simnet"
	"repro/internal/vss"
)

// vssCeremony runs Deal+Verify for all players with dealer 0 and returns
// the honest players' common verdict. cheat values: 0 honest, 1 random
// wrong-degree dealer, 2 optimal wrong-degree dealer (plants M distinct
// roots in the challenge polynomial, achieving the M/p bound exactly).
func vssCeremony(field gf2k.Field, n, t, m int, seed int64, cheat int, ctr *metrics.Counters) bool {
	if ctr != nil {
		field = field.WithCounters(ctr)
	}
	rng := rand.New(rand.NewSource(seed))
	batches, _, err := coin.DealTrusted(field, n, t, 1, rng)
	if err != nil {
		panic(err)
	}
	var opts []simnet.Option
	if ctr != nil {
		opts = append(opts, simnet.WithCounters(ctr))
	}
	nw := simnet.New(n, opts...)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			cfg := vss.Config{Field: field, N: n, T: t, Coins: batches[i], Counters: ctr}
			if i == 0 && cheat != 0 {
				return cheatingVSSDealer(nd, cfg, m, seed, cheat == 2)
			}
			rnd := rand.New(rand.NewSource(seed + int64(i) + 1))
			var secrets []gf2k.Element
			if i == 0 {
				secrets = make([]gf2k.Element, m)
				for j := range secrets {
					secrets[j], _ = field.Rand(rnd)
				}
			}
			inst, err := vss.Deal(nd, cfg, 0, secrets, rnd)
			if err != nil {
				return nil, err
			}
			return inst.Verify(nd)
		}
	}
	results := simnet.Run(nw, fns)
	for i := 1; i < n; i++ {
		if results[i].Err != nil {
			panic(results[i].Err)
		}
	}
	return results[1].Value.(bool)
}

// cheatingVSSDealer deals shares of degree-(t+1) polynomials and then
// follows the protocol honestly. With optimal=true the degree-(t+1)
// coefficients are the coefficients of Q(r) = Π_{i=1..M} (r − i), so the
// batch check passes exactly when the challenge r lands on one of M
// planted roots — the adversary achieving Lemma 3's M/p bound.
func cheatingVSSDealer(nd *simnet.Node, cfg vss.Config, m int, seed int64, optimal bool) (interface{}, error) {
	f := cfg.Field
	rnd := rand.New(rand.NewSource(seed*31 + 7))
	mask := f.K()
	var maskVal uint64 = ^uint64(0)
	if mask < 64 {
		maskVal = (uint64(1) << mask) - 1
	}
	polys := make([]poly.Poly, m+1)
	for j := 0; j <= m; j++ {
		p, err := poly.Random(f, cfg.T+1, gf2k.Element(rnd.Uint64()&maskVal), rnd)
		if err != nil {
			return nil, err
		}
		if j < m && p[cfg.T+1] == 0 {
			p[cfg.T+1] = 1
		}
		polys[j] = p
	}
	if optimal {
		// Q(r) = Π_{i=1..m} (r − i): coefficient q_j goes to secret j's
		// top coefficient (the combination multiplies it by r^j) and q_0
		// to the mask's, so the combined top coefficient IS Q(r).
		q := poly.Poly{1}
		for i := 1; i <= m; i++ {
			root, err := f.ElementFromID(i)
			if err != nil {
				return nil, err
			}
			q = poly.Mul(f, q, poly.Poly{root, 1})
		}
		polys[m][cfg.T+1] = q[0] // mask
		for j := 1; j <= m; j++ {
			polys[j-1][cfg.T+1] = q[j]
		}
	}
	var myShares []gf2k.Element
	var myMask gf2k.Element
	for i := 0; i < cfg.N; i++ {
		id, err := f.ElementFromID(i + 1)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 0, (m+1)*f.ByteLen())
		shares := make([]gf2k.Element, 0, m+1)
		for _, p := range polys {
			v := poly.Eval(f, p, id)
			shares = append(shares, v)
			buf = f.AppendElement(buf, v)
		}
		if i == nd.Index() {
			myShares = shares[:m]
			myMask = shares[m]
			continue
		}
		nd.Send(i, buf)
	}
	if _, err := nd.EndRound(); err != nil {
		return nil, err
	}
	inst := vss.NewInstance(cfg, nd.Index(), myShares, myMask)
	return inst.Verify(nd)
}
