package simnet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// chatter runs a fixed n-player protocol for `rounds` rounds — every player
// sends a round-and-sender-stamped payload to every other player each round
// — and returns, per player, the flattened (round, From, payload) delivery
// transcript. It is the workload for schedule-semantics tests: any drop,
// shift or reorder the engine applies is visible in the transcript.
func chatter(nw *Network, rounds int) [][]string {
	n := nw.N()
	out := make([][]string, n)
	fns := make([]PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *Node) (interface{}, error) {
			var lines []string
			for r := 0; r < rounds; r++ {
				nd.SendAll([]byte(fmt.Sprintf("r%d-p%d", r, nd.Index())))
				msgs, err := nd.EndRound()
				if err != nil {
					return nil, err
				}
				for _, m := range msgs {
					lines = append(lines, fmt.Sprintf("@%d from%d:%s", r, m.From, m.Payload))
				}
			}
			return lines, nil
		}
	}
	results := Run(nw, fns)
	for i, r := range results {
		if r.Err != nil {
			panic(fmt.Sprintf("chatter player %d: %v", i, r.Err))
		}
		if r.Value != nil {
			out[i] = r.Value.([]string)
		}
	}
	return out
}

func TestScheduleZeroChange(t *testing.T) {
	// Installing a nil or zero schedule must be byte-identical to not
	// installing one: same transcripts, no engine.
	base := chatter(New(4), 6)
	for name, opt := range map[string]Option{
		"nil":  WithSchedule(nil),
		"zero": WithSchedule(&Schedule{Seed: 42}),
	} {
		nw := New(4, opt)
		if nw.eng != nil {
			t.Fatalf("%s schedule built an engine", name)
		}
		if got := chatter(nw, 6); !reflect.DeepEqual(got, base) {
			t.Fatalf("%s schedule changed delivery: %v vs %v", name, got, base)
		}
	}
}

func TestScheduleFixedDelayShiftsDelivery(t *testing.T) {
	// Delay 0→1 by exactly 2 rounds during rounds [0,2): those payloads
	// arrive at the boundary of round staged+2; everything else is on time.
	s := &Schedule{Seed: 1, Delays: []DelayRule{{
		From: 0, To: 1, Start: 0, End: 2, Dist: Dist{Kind: DistFixed, Min: 2},
	}}}
	got := chatter(New(3, WithSchedule(s)), 6)

	wantAt := func(lines []string, frag string) int {
		for _, l := range lines {
			if strings.Contains(l, frag) {
				at := 0
				fmt.Sscanf(l, "@%d", &at)
				return at
			}
		}
		return -1
	}
	// Player 1's copies of p0's rounds 0 and 1 arrive two boundaries late.
	if at := wantAt(got[1], "from0:r0-p0"); at != 2 {
		t.Fatalf("p1 got p0 round-0 payload at boundary %d, want 2", at)
	}
	if at := wantAt(got[1], "from0:r1-p0"); at != 3 {
		t.Fatalf("p1 got p0 round-1 payload at boundary %d, want 3", at)
	}
	// Outside the window, and on the untouched 0→2 edge, delivery is on time.
	if at := wantAt(got[1], "from0:r2-p0"); at != 2 {
		t.Fatalf("p1 got p0 round-2 payload at boundary %d, want 2", at)
	}
	if at := wantAt(got[2], "from0:r0-p0"); at != 0 {
		t.Fatalf("p2 got p0 round-0 payload at boundary %d, want 0", at)
	}
	// FIFO preserved on the delayed edge: the round-0 payload precedes the
	// round-1 payload even though both are late.
	i0, i1 := -1, -1
	for i, l := range got[1] {
		if strings.Contains(l, "from0:r0-p0") {
			i0 = i
		}
		if strings.Contains(l, "from0:r1-p0") {
			i1 = i
		}
	}
	if i0 == -1 || i1 == -1 || i0 > i1 {
		t.Fatalf("delayed edge lost FIFO order: r0 at %d, r1 at %d", i0, i1)
	}
}

func TestScheduleCrashDropsBothDirections(t *testing.T) {
	// Crash player 1 during rounds [1,3): everything from or to it in that
	// window vanishes; traffic before and after flows.
	s := &Schedule{Seed: 9, Crashes: []CrashRule{{Player: 1, Start: 1, Recover: 3}}}
	got := chatter(New(3, WithSchedule(s)), 5)

	has := func(lines []string, frag string) bool {
		for _, l := range lines {
			if strings.Contains(l, frag) {
				return true
			}
		}
		return false
	}
	for r := 0; r < 5; r++ {
		inWindow := r >= 1 && r < 3
		if has(got[0], fmt.Sprintf("from1:r%d-p1", r)) == inWindow {
			t.Fatalf("p0 seeing p1 round-%d traffic = %v, crash window = %v", r, !inWindow, inWindow)
		}
		if has(got[1], fmt.Sprintf("from0:r%d-p0", r)) == inWindow {
			t.Fatalf("p1 seeing p0 round-%d traffic = %v, crash window = %v", r, !inWindow, inWindow)
		}
		// The 0↔2 edge never involves the crashed player.
		if !has(got[2], fmt.Sprintf("from0:r%d-p0", r)) {
			t.Fatalf("p2 lost p0 round-%d traffic to an unrelated crash", r)
		}
	}
}

func TestSchedulePartitionDefersToHeal(t *testing.T) {
	// Partition {0} from {1,2} during [1,3): cross-cut traffic staged in the
	// window arrives at the boundary of round 3 (the heal), in FIFO order;
	// intra-side traffic is untouched.
	s := &Schedule{Seed: 5, Partitions: []PartitionRule{{Isolated: []int{0}, Start: 1, Heal: 3}}}
	got := chatter(New(3, WithSchedule(s)), 6)

	at := func(lines []string, frag string) int {
		for _, l := range lines {
			if strings.Contains(l, frag) {
				v := -1
				fmt.Sscanf(l, "@%d", &v)
				return v
			}
		}
		return -1
	}
	for r := 1; r < 3; r++ {
		if got := at(got[1], fmt.Sprintf("from0:r%d-p0", r)); got != 3 {
			t.Fatalf("cross-cut round-%d payload arrived at boundary %d, want heal boundary 3", r, got)
		}
		if got := at(got[0], fmt.Sprintf("from2:r%d-p2", r)); got != 3 {
			t.Fatalf("reverse cross-cut round-%d payload arrived at %d, want 3", r, got)
		}
		if got := at(got[2], fmt.Sprintf("from1:r%d-p1", r)); got != r {
			t.Fatalf("intra-side round-%d payload arrived at %d, want %d", r, got, r)
		}
	}
	if got := at(got[1], "from0:r3-p0"); got != 3 {
		t.Fatalf("post-heal payload arrived at %d, want 3", got)
	}
}

func TestScheduleReorderPreservesPerSenderFIFO(t *testing.T) {
	// Reorder permutes cross-sender merge order but never a single sender's
	// emission order. Each sender emits two messages per round.
	nw := New(4, WithSchedule(&Schedule{Seed: 77, Reorder: true}))
	n := nw.N()
	fns := make([]PlayerFunc, n)
	type rec struct{ order [][]int } // per round, sequence of From values
	recs := make([]rec, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *Node) (interface{}, error) {
			for r := 0; r < 4; r++ {
				nd.SendAll([]byte{byte(r), 0})
				nd.SendAll([]byte{byte(r), 1})
				msgs, err := nd.EndRound()
				if err != nil {
					return nil, err
				}
				var froms []int
				seen := map[int]byte{}
				for _, m := range msgs {
					froms = append(froms, m.From)
					// Second copy from a sender must carry the higher tag.
					if prev, ok := seen[m.From]; ok && prev >= m.Payload[1] {
						return nil, fmt.Errorf("sender %d FIFO violated in round %d", m.From, r)
					}
					seen[m.From] = m.Payload[1]
				}
				recs[i].order = append(recs[i].order, froms)
			}
			return nil, nil
		}
	}
	for _, res := range Run(nw, fns) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	// The permutation must actually differ from canonical order somewhere —
	// otherwise Reorder is a no-op and the test is vacuous.
	shuffled := false
	for _, rc := range recs {
		for _, froms := range rc.order {
			if !sortedInts(froms) {
				shuffled = true
			}
		}
	}
	if !shuffled {
		t.Fatal("Reorder never permuted any delivery (seed degenerate or engine inert)")
	}
}

func sortedInts(v []int) bool {
	for i := 1; i < len(v); i++ {
		if v[i-1] > v[i] {
			return false
		}
	}
	return true
}

func TestScheduleDeterministicAcrossRunsAndTransports(t *testing.T) {
	// The same schedule replays byte-identically run to run and across the
	// in-memory and TCP transports (both enact it at the shared commit seam).
	s := &Schedule{
		Seed:    31337,
		Reorder: true,
		Delays: []DelayRule{
			{From: 0, To: Wildcard, Start: 0, End: 8, Dist: Dist{Kind: DistUniform, Min: 0, Max: 2}},
			{From: 2, To: 1, Start: 2, End: 6, Dist: Dist{Kind: DistHeavyTail, Min: 0, Max: 4}},
		},
		Partitions: []PartitionRule{{Isolated: []int{3}, Start: 1, Heal: 3}},
		Crashes:    []CrashRule{{Player: 1, Start: 4, Recover: 5}},
	}
	mem1 := chatter(New(4, WithSchedule(s)), 8)
	mem2 := chatter(New(4, WithSchedule(s)), 8)
	if !reflect.DeepEqual(mem1, mem2) {
		t.Fatal("same schedule, two in-memory runs differ")
	}
	tnw, err := NewTCP(4, WithSchedule(s))
	if err != nil {
		t.Fatal(err)
	}
	defer tnw.Close()
	if tcp := chatter(tnw, 8); !reflect.DeepEqual(mem1, tcp) {
		t.Fatalf("in-memory and TCP transcripts diverge under schedule:\nmem: %v\ntcp: %v", mem1, tcp)
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	cases := []*Schedule{
		nil,
		{Seed: 7, Reorder: true},
		{
			Seed:    -3,
			Reorder: true,
			Delays: []DelayRule{
				{From: 0, To: Wildcard, Start: 0, End: 8, Dist: Dist{Kind: DistFixed, Min: 2}},
				{From: Wildcard, To: 3, Start: 4, End: openEnd, Dist: Dist{Kind: DistUniform, Min: 1, Max: 5}},
				{From: 2, To: 1, Start: 0, End: 0, Dist: Dist{Kind: DistHeavyTail, Min: 0, Max: 9}},
			},
			Partitions: []PartitionRule{{Isolated: []int{1, 4}, Start: 2, Heal: 6}},
			Crashes:    []CrashRule{{Player: 2, Start: 0, Recover: 4}},
		},
	}
	for _, s := range cases {
		text := s.String()
		back, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", text, err)
		}
		// Open-ended windows normalize (0 and openEnd both mean open), so
		// compare the re-rendered form.
		if back.String() != text {
			t.Fatalf("round-trip drift: %q → %q", text, back.String())
		}
		if s != nil {
			if len(back.Delays) != len(s.Delays) || len(back.Partitions) != len(s.Partitions) ||
				len(back.Crashes) != len(s.Crashes) || back.Seed != s.Seed || back.Reorder != s.Reorder {
				t.Fatalf("round-trip lost rules: %q → %+v", text, back)
			}
		}
	}
	for _, bad := range []string{
		"seed=x", "delay=0->1:r0-4", "delay=0>1:r0-4:fixed(1)", "crash=2:r0-4",
		"partition=[1:r0-4", "wat=1", "delay=0->1:r0-4:gauss(1,2)", "delay=0->1:0-4:fixed(1)",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted garbage", bad)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	for name, s := range map[string]*Schedule{
		"edge-oob":       {Delays: []DelayRule{{From: 5, To: 0, Dist: Dist{Kind: DistFixed, Min: 1}}}},
		"bad-dist":       {Delays: []DelayRule{{From: 0, To: 1, Dist: Dist{Kind: DistKind(9), Min: 1}}}},
		"neg-min":        {Delays: []DelayRule{{From: 0, To: 1, Dist: Dist{Kind: DistUniform, Min: -1, Max: 2}}}},
		"empty-isolated": {Partitions: []PartitionRule{{Start: 0, Heal: 2}}},
		"full-isolated":  {Partitions: []PartitionRule{{Isolated: []int{0, 1, 2, 3}, Start: 0, Heal: 2}}},
		"dup-isolated":   {Partitions: []PartitionRule{{Isolated: []int{1, 1}, Start: 0, Heal: 2}}},
		"inverted":       {Partitions: []PartitionRule{{Isolated: []int{1}, Start: 3, Heal: 3}}},
		"crash-oob":      {Crashes: []CrashRule{{Player: -1, Start: 0, Recover: 1}}},
		"crash-empty":    {Crashes: []CrashRule{{Player: 0, Start: 2, Recover: 2}}},
	} {
		if err := s.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted %v", name, s)
		}
	}
	ok := &Schedule{
		Seed:       1,
		Delays:     []DelayRule{{From: Wildcard, To: Wildcard, Start: 0, Dist: Dist{Kind: DistUniform, Min: 0, Max: 3}}},
		Partitions: []PartitionRule{{Isolated: []int{0, 2}, Start: 1, Heal: 4}},
		Crashes:    []CrashRule{{Player: 3, Start: 0, Recover: 9}},
	}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("Validate rejected a good schedule: %v", err)
	}
	if err := (*Schedule)(nil).Validate(4); err != nil {
		t.Fatalf("nil schedule must validate: %v", err)
	}
}

func TestScheduleDisturbedAndMaxDelay(t *testing.T) {
	s := &Schedule{
		Delays: []DelayRule{
			{From: 1, To: Wildcard, Dist: Dist{Kind: DistUniform, Min: 1, Max: 4}},
			{From: 2, To: 0, Dist: Dist{Kind: DistFixed, Min: 6}},
		},
		Partitions: []PartitionRule{{Isolated: []int{3}, Start: 0, Heal: 2}},
		Crashes:    []CrashRule{{Player: 0, Start: 1, Recover: 2}},
	}
	if got := s.Disturbed(5); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Disturbed = %v, want [0 1 2 3]", got)
	}
	if got := s.MaxDelay(); got != 6 {
		t.Fatalf("MaxDelay = %d, want 6", got)
	}
	wild := &Schedule{Delays: []DelayRule{{From: Wildcard, To: Wildcard, Dist: Dist{Kind: DistFixed, Min: 1}}}}
	if got := wild.Disturbed(3); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("wildcard Disturbed = %v, want everyone", got)
	}
	if got := (*Schedule)(nil).Disturbed(4); got != nil {
		t.Fatalf("nil Disturbed = %v", got)
	}
}

func TestScheduleWithoutRule(t *testing.T) {
	s := &Schedule{
		Seed:       3,
		Reorder:    true,
		Delays:     []DelayRule{{From: 0, To: 1, Dist: Dist{Kind: DistFixed, Min: 1}}},
		Partitions: []PartitionRule{{Isolated: []int{1}, Start: 0, Heal: 2}},
		Crashes:    []CrashRule{{Player: 2, Start: 0, Recover: 1}},
	}
	if s.RuleCount() != 4 {
		t.Fatalf("RuleCount = %d, want 4", s.RuleCount())
	}
	for i := 0; i < s.RuleCount(); i++ {
		c := s.WithoutRule(i)
		if c.RuleCount() != 3 {
			t.Fatalf("WithoutRule(%d).RuleCount = %d, want 3", i, c.RuleCount())
		}
	}
	// Removal must not alias the original.
	c := s.WithoutRule(0)
	if len(s.Delays) != 1 {
		t.Fatal("WithoutRule mutated the original")
	}
	c.Partitions[0].Isolated[0] = 99
	if s.Partitions[0].Isolated[0] != 1 {
		t.Fatal("WithoutRule shares Isolated backing array with the original")
	}
}

func TestSampleScheduleRespectsVictims(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		victims := []int{1, 4}
		s := SampleSchedule(seed, 7, victims)
		if err := s.Validate(7); err != nil {
			t.Fatalf("seed %d: sampled schedule invalid: %v", seed, err)
		}
		allowed := map[int]bool{1: true, 4: true}
		for _, d := range s.Disturbed(7) {
			if !allowed[d] {
				t.Fatalf("seed %d: schedule disturbs %d outside victims %v: %s", seed, d, victims, s)
			}
		}
		if !s.Reorder {
			t.Fatalf("seed %d: sampled schedule must always reorder", seed)
		}
	}
	// No victims → reorder-only schedule, still valid, disturbing nobody.
	s := SampleSchedule(11, 4, nil)
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	if d := s.Disturbed(4); len(d) != 0 {
		t.Fatalf("victimless schedule disturbs %v", d)
	}
}

func TestScheduleSelfLoopUntouched(t *testing.T) {
	// A player sending to itself is intra-process traffic: crash windows and
	// wildcard delays must leave it alone.
	s := &Schedule{
		Seed:    2,
		Delays:  []DelayRule{{From: Wildcard, To: Wildcard, Start: 0, Dist: Dist{Kind: DistFixed, Min: 3}}},
		Crashes: []CrashRule{{Player: 0, Start: 0, Recover: 10}},
	}
	nw := New(2, WithSchedule(s))
	res := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			nd.Send(0, []byte("self"))
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			return len(msgs), nil
		},
		func(nd *Node) (interface{}, error) {
			_, err := nd.EndRound()
			return nil, err
		},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	if got := res[0].Value.(int); got != 1 {
		t.Fatalf("self-delivery under crash+delay = %d messages, want 1", got)
	}
}
