// Package baseline implements the from-scratch comparators the paper
// measures itself against in §1.4 and §3.1:
//
//   - CCDVSS: the cut-and-choose VSS of Chaum–Crépeau–Damgård [9], which
//     needs κ polynomial interpolations for soundness error 2^−κ (vs. one
//     interpolation for the paper's coin-checked VSS);
//   - FeldmanVSS: the discrete-log VSS of Feldman [12], with t
//     exponentiations per party over a 1024-bit prime field;
//   - FromScratchCoin: generating each shared coin from scratch (every
//     player deals a contribution, every dealing is cut-and-choose
//     verified, the survivors' contributions are summed), the cost the
//     D-PRBG's amortization is measured against in experiment E10.
//
// All three run over the same simulated network and metrics as the paper's
// protocols, so measured ratios isolate algorithmic differences.
package baseline

import (
	"fmt"
	"io"

	"repro/internal/bw"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// CCDConfig parameterizes the cut-and-choose VSS.
type CCDConfig struct {
	// Field is GF(2^k).
	Field gf2k.Field
	// N, T: players and fault bound, N ≥ 3T+1.
	N, T int
	// Kappa is the number of masking polynomials; soundness error is 2^−κ.
	// To match the paper's VSS at security k, κ = k.
	Kappa int
	// Counters records costs when non-nil.
	Counters *metrics.Counters
}

// Validate checks parameters.
func (c CCDConfig) Validate() error {
	if c.N < 3*c.T+1 {
		return fmt.Errorf("baseline: need n ≥ 3t+1, got n=%d t=%d", c.N, c.T)
	}
	if c.Kappa < 1 {
		return fmt.Errorf("baseline: kappa must be ≥ 1, got %d", c.Kappa)
	}
	return nil
}

// CCDVSS runs one dealer's cut-and-choose verifiable sharing of `secret`
// (only read at the dealer) and returns this player's verdict plus its
// share of f. Protocol (per [9], adapted to our synchronous simulator):
//
//	round 1: dealer sends each player its shares of f and of κ random
//	         masking polynomials g_1..g_κ;
//	round 2: every player broadcasts one random challenge bit per mask;
//	         the XOR of all players' bits forms the public challenges
//	         b_1..b_κ (unpredictable to the dealer as long as one honest
//	         player's bits are random);
//	round 3: for each j, every player broadcasts its share of g_j (if
//	         b_j = 0) or f+g_j (if b_j = 1); everyone checks each opened
//	         polynomial has degree ≤ t via one interpolation per mask —
//	         κ interpolations total, the cost the paper contrasts with its
//	         single-interpolation Batch-VSS.
//
// All honest players return the same verdict.
func CCDVSS(nd *simnet.Node, cfg CCDConfig, dealer int, secret gf2k.Element, rnd io.Reader) (bool, gf2k.Element, error) {
	if err := cfg.Validate(); err != nil {
		return false, 0, err
	}
	f := cfg.Field
	n, t, kappa := cfg.N, cfg.T, cfg.Kappa
	me := nd.Index()

	// Round 1: dealing.
	if me == dealer {
		polys := make([]poly.Poly, kappa+1)
		var err error
		polys[0], err = poly.Random(f, t, secret, rnd)
		if err != nil {
			return false, 0, err
		}
		for j := 1; j <= kappa; j++ {
			mask, err := f.Rand(rnd)
			if err != nil {
				return false, 0, err
			}
			polys[j], err = poly.Random(f, t, mask, rnd)
			if err != nil {
				return false, 0, err
			}
		}
		for i := 0; i < n; i++ {
			if i == me {
				continue
			}
			id, err := f.ElementFromID(i + 1)
			if err != nil {
				return false, 0, err
			}
			buf := make([]byte, 0, (kappa+1)*f.ByteLen())
			for _, p := range polys {
				buf = f.AppendElement(buf, poly.Eval(f, p, id))
			}
			nd.Send(i, buf)
		}
		// Dealer keeps its own shares; it still participates in the round.
		if _, err := nd.EndRound(); err != nil {
			return false, 0, err
		}
		ownID, err := f.ElementFromID(me + 1)
		if err != nil {
			return false, 0, err
		}
		own := make([]gf2k.Element, kappa+1)
		for j := range polys {
			own[j] = poly.Eval(f, polys[j], ownID)
		}
		return ccdVerify(nd, cfg, own, rnd)
	}

	msgs, err := nd.EndRound()
	if err != nil {
		return false, 0, err
	}
	var shares []gf2k.Element
	if payload, ok := simnet.FirstFromEach(msgs)[dealer]; ok {
		if s, rest, err := f.ReadElements(payload, kappa+1); err == nil && len(rest) == 0 {
			shares = s
		}
	}
	if shares == nil {
		shares = make([]gf2k.Element, kappa+1) // contribute zeros; reject likely
	}
	return ccdVerify(nd, cfg, shares, rnd)
}

// ccdVerify runs rounds 2–3 given this player's shares [f, g_1..g_κ].
func ccdVerify(nd *simnet.Node, cfg CCDConfig, shares []gf2k.Element, rnd io.Reader) (bool, gf2k.Element, error) {
	f := cfg.Field
	n, t, kappa := cfg.N, cfg.T, cfg.Kappa

	// Round 2: joint challenge bits.
	myBits := make([]byte, (kappa+7)/8)
	if _, err := io.ReadFull(rnd, myBits); err != nil {
		return false, 0, err
	}
	nd.Broadcast(myBits)
	msgs, err := nd.EndRound()
	if err != nil {
		return false, 0, err
	}
	challenge := make([]byte, (kappa+7)/8)
	for _, payload := range simnet.FirstFromEach(msgs) {
		if len(payload) != len(challenge) {
			continue
		}
		for i := range challenge {
			challenge[i] ^= payload[i]
		}
	}
	bit := func(j int) bool { return challenge[j/8]>>(j%8)&1 == 1 }

	// Round 3: open g_j or f+g_j.
	buf := make([]byte, 0, kappa*f.ByteLen())
	for j := 1; j <= kappa; j++ {
		v := shares[j]
		if bit(j - 1) {
			v = f.Add(v, shares[0])
		}
		buf = f.AppendElement(buf, v)
	}
	nd.Broadcast(buf)
	msgs, err = nd.EndRound()
	if err != nil {
		return false, 0, err
	}

	opened := make(map[int][]gf2k.Element, n)
	for from, payload := range simnet.FirstFromEach(msgs) {
		if vals, rest, err := f.ReadElements(payload, kappa); err == nil && len(rest) == 0 {
			opened[from] = vals
		}
	}

	// Check each opened polynomial has degree ≤ t (one interpolation per
	// mask, tolerating the ≤ t faulty contributions).
	for j := 0; j < kappa; j++ {
		var xs, ys []gf2k.Element
		for from := 0; from < n; from++ {
			vals, ok := opened[from]
			if !ok {
				continue
			}
			id, err := f.ElementFromID(from + 1)
			if err != nil {
				continue
			}
			xs = append(xs, id)
			ys = append(ys, vals[j])
		}
		missing := n - len(xs)
		if missing > t {
			return false, 0, nil
		}
		budget := t - missing
		if _, err := bw.Decode(f, xs, ys, t, budget, cfg.Counters); err != nil {
			return false, 0, nil
		}
	}
	return true, shares[0], nil
}
