// Package bitgen implements protocol Bit-Gen (Fig. 4): dealing M sealed
// secrets over point-to-point channels only, with batch verification against
// a single exposed coin. Coin-Gen (internal/coingen) runs n instances — one
// per dealer — simultaneously, reusing one challenge coin for all of them
// ("using the same coin r for all invocations", Fig. 5 step 3; Theorem 2
// notes the n polynomial interpolations this saves).
//
// As with internal/vss, every dealer additionally deals one random masking
// polynomial g and the announced value is γ_i = g(i) + Σ_j r^j·f_j(i), so
// publishing γ reveals nothing about the sealed secrets. (Fig. 4's extended
// abstract elides the mask; without it the γ's would disclose one linear
// combination of the dealer's coins.)
//
// There is no broadcast channel here, so players can disagree about which
// dealings succeeded; each player only reaches the local verdict of Fig. 4
// step 5 — output (F, S) if a degree-≤t polynomial agrees with at least n−t
// of the received γ's, and (⊥, S) otherwise. Reconciling the local verdicts
// is Coin-Gen's job.
package bitgen

import (
	"fmt"
	"io"

	"repro/internal/bw"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// Config holds the parameters of an n-dealer Bit-Gen batch.
type Config struct {
	// Field is GF(2^k).
	Field gf2k.Field
	// N is the player count, T the fault bound, M the secrets per dealer.
	N, T, M int
	// Counters, when non-nil, records costs.
	Counters *metrics.Counters
	// Pool, when non-nil, fans the per-dealer pure compute — share
	// evaluation in DealAll, the n γ combinations, the n Berlekamp–Welch
	// decodes of ExchangeGammas — out across idle cores. Verdicts and
	// transcripts are identical at every width.
	Pool *parallel.Pool
}

// Validate checks structural preconditions. Bit-Gen itself needs n ≥ 3t+1
// for the Berlekamp–Welch step; Coin-Gen imposes the paper's stricter
// n ≥ 6t+1 on top.
func (c Config) Validate() error {
	if c.N < 3*c.T+1 {
		return fmt.Errorf("bitgen: need n ≥ 3t+1, got n=%d t=%d", c.N, c.T)
	}
	if c.T < 0 || c.M < 1 {
		return fmt.Errorf("bitgen: invalid t=%d or M=%d", c.T, c.M)
	}
	return nil
}

// Shares is one player's received share state across all n dealings.
type Shares struct {
	// Alpha[j][h] is this player's share of dealer j's secret h; the row is
	// nil when dealer j's dealing never arrived or was malformed.
	Alpha [][]gf2k.Element
	// Mask[j] is this player's share of dealer j's masking polynomial.
	Mask []gf2k.Element
	// Received[j] reports whether dealer j's dealing arrived intact.
	Received []bool
	// OwnPolys holds this player's own dealt polynomials (mask last).
	OwnPolys []poly.Poly
}

// DealAll performs Fig. 4 step 1 for all n dealers at once: this player
// draws M random sealed secrets plus a mask, evaluates them at every
// player's id, and sends each player one message with its M+1 shares.
// Consumes one round.
func DealAll(nd *simnet.Node, cfg Config, rnd io.Reader) (*Shares, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nd.N() != cfg.N {
		return nil, fmt.Errorf("bitgen: network size %d != configured %d", nd.N(), cfg.N)
	}
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "bitgen/deal")
	defer func() { sp.End(nd.Round()) }()
	f := cfg.Field

	polys := make([]poly.Poly, cfg.M+1)
	for j := 0; j <= cfg.M; j++ {
		secret, err := f.Rand(rnd)
		if err != nil {
			return nil, err
		}
		p, err := poly.Random(f, cfg.T, secret, rnd)
		if err != nil {
			return nil, err
		}
		polys[j] = p
	}

	sh := &Shares{
		Alpha:    make([][]gf2k.Element, cfg.N),
		Mask:     make([]gf2k.Element, cfg.N),
		Received: make([]bool, cfg.N),
		OwnPolys: polys,
	}

	// Evaluate all n share vectors first — (M+1)·n pure Horner evaluations
	// fanned out per recipient — then send on the node goroutine in index
	// order so the traffic schedule is width-invariant.
	ids := make([]gf2k.Element, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id, err := f.ElementFromID(i + 1)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	bufs := parallel.Map(cfg.Pool, cfg.N, func(i int) []byte {
		if i == nd.Index() {
			return nil // own shares are kept below, not serialized
		}
		buf := make([]byte, 0, (cfg.M+1)*f.ByteLen())
		for _, p := range polys {
			buf = f.AppendElement(buf, poly.Eval(f, p, ids[i]))
		}
		return buf
	})
	for i := 0; i < cfg.N; i++ {
		if i == nd.Index() {
			row := make([]gf2k.Element, cfg.M)
			for h := 0; h < cfg.M; h++ {
				row[h] = poly.Eval(f, polys[h], ids[i])
			}
			sh.Alpha[i] = row
			sh.Mask[i] = poly.Eval(f, polys[cfg.M], ids[i])
			sh.Received[i] = true
			continue
		}
		nd.Send(i, bufs[i])
	}

	msgs, err := nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("bitgen: deal round: %w", err)
	}
	for j, payload := range simnet.FirstFromEach(msgs) {
		if j == nd.Index() {
			continue
		}
		if len(payload) != (cfg.M+1)*f.ByteLen() {
			continue
		}
		row, rest, err := f.ReadElements(payload, cfg.M)
		if err != nil {
			continue
		}
		mask, _, err := f.ReadElement(rest)
		if err != nil {
			continue
		}
		sh.Alpha[j] = row
		sh.Mask[j] = mask
		sh.Received[j] = true
	}
	return sh, nil
}

// Gamma computes this player's announcement for dealer j under challenge r:
// γ = g(i) + Σ_{h=1..M} r^h·α_h in Horner form (Fig. 4 step 3). The second
// return is false when dealer j's dealing never arrived.
func (sh *Shares) Gamma(f gf2k.Field, j int, r gf2k.Element) (gf2k.Element, bool) {
	if !sh.Received[j] {
		return 0, false
	}
	var acc gf2k.Element
	row := sh.Alpha[j]
	for h := len(row) - 1; h >= 0; h-- {
		acc = f.Mul(f.Add(acc, row[h]), r)
	}
	return f.Add(acc, sh.Mask[j]), true
}

// Gammas computes this player's announcements for all n dealers under
// challenge r — n independent M-term Horner combinations, fanned out across
// the pool (nil runs inline). ok[j] is false where dealer j's dealing never
// arrived. This is the γ half of one player's intra-round compute; the
// parallel-speedup benchmark drives it directly.
func (sh *Shares) Gammas(f gf2k.Field, r gf2k.Element, pl *parallel.Pool) (gammas []gf2k.Element, ok []bool) {
	n := len(sh.Received)
	gammas = make([]gf2k.Element, n)
	ok = make([]bool, n)
	pl.ForEach(n, func(j int) {
		gammas[j], ok[j] = sh.Gamma(f, j, r)
	})
	return gammas, ok
}

// Output is the local verdict for one dealer's Bit-Gen instance
// (Fig. 4 step 5).
type Output struct {
	// OK reports whether a polynomial F with deg ≤ t matched ≥ n−t γ's.
	OK bool
	// F is the matched polynomial (the masked batch combination), valid
	// only when OK.
	F poly.Poly
}

// View is one player's complete local view after the γ exchange.
type View struct {
	// Challenge is the shared coin r used for the batch checks.
	Challenge gf2k.Element
	// Outputs[j] is the local verdict for dealer j.
	Outputs []Output
	// GammaOf[k][j] is player k's announced γ for dealer j as received
	// here; Has[k][j] reports presence.
	GammaOf [][]gf2k.Element
	Has     [][]bool
}

// ExchangeGammas performs Fig. 4 steps 3–5 for all n instances at once:
// sends this player's γ vector to everyone (one message of n entries),
// collects everyone else's, and Berlekamp–Welch-decodes each dealer's
// instance. Consumes one round.
func ExchangeGammas(nd *simnet.Node, cfg Config, sh *Shares, r gf2k.Element) (*View, error) {
	f := cfg.Field
	n := cfg.N
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "bitgen/gamma")
	defer func() { sp.End(nd.Round()) }()

	myGamma, myHas := sh.Gammas(f, r, cfg.Pool)
	buf := make([]byte, 0, n*(1+f.ByteLen()))
	for j := 0; j < n; j++ {
		if myHas[j] {
			g := myGamma[j]
			buf = append(buf, 0)
			buf = f.AppendElement(buf, g)
		} else {
			buf = append(buf, 1)
			buf = append(buf, make([]byte, f.ByteLen())...)
		}
	}
	nd.SendAll(buf)
	msgs, err := nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("bitgen: gamma round: %w", err)
	}

	v := &View{
		Challenge: r,
		Outputs:   make([]Output, n),
		GammaOf:   make([][]gf2k.Element, n),
		Has:       make([][]bool, n),
	}
	for k := 0; k < n; k++ {
		v.GammaOf[k] = make([]gf2k.Element, n)
		v.Has[k] = make([]bool, n)
	}
	v.GammaOf[nd.Index()] = myGamma
	v.Has[nd.Index()] = myHas

	entry := 1 + f.ByteLen()
	for k, payload := range simnet.FirstFromEach(msgs) {
		if k == nd.Index() || len(payload) != n*entry {
			continue
		}
		for j := 0; j < n; j++ {
			rec := payload[j*entry : (j+1)*entry]
			if rec[0] != 0 {
				continue
			}
			g, _, err := f.ReadElement(rec[1:])
			if err != nil {
				continue
			}
			v.GammaOf[k][j] = g
			v.Has[k][j] = true
		}
	}

	// All n per-dealer decodes interpolate at (a subset of) the IDs 1..n;
	// computing the IDs once and keeping the point order fixed lets every
	// decode — across dealers AND across Coin-Gen rounds — share one cached
	// interpolation domain inside bw.Decode.
	ids := make([]gf2k.Element, n)
	for k := 0; k < n; k++ {
		id, err := f.ElementFromID(k + 1)
		if err != nil {
			return nil, err
		}
		ids[k] = id
	}
	// The n per-dealer decodes are independent pure compute — the dominant
	// term of a player's round work — so they fan out across the pool.
	// Each task writes only Outputs[j]; the tracer calls happen afterwards
	// on the node goroutine in dealer index order, keeping the transcript
	// byte-identical at every width.
	cfg.Pool.ForEach(n, func(j int) {
		v.Outputs[j] = v.Decode(cfg, ids, j)
	})
	for j := 0; j < n; j++ {
		if !v.Outputs[j].OK {
			// Local verdict only (no broadcast channel here): dealer j's
			// instance failed Fig. 4 step 5 in this player's view.
			nd.Tracer().DealerDisqualified(nd.Index(), j, nd.Round())
		}
	}
	return v, nil
}

// Decode applies Fig. 4 step 5 to dealer j: find F with deg ≤ t agreeing
// with at least n−t of the announced γ's. ids[k] must be the field element
// of player k+1 (as produced by gf2k.Field.ElementFromID), in index order.
// Fault-free cost: one interpolation over the cached t+1-prefix domain plus
// n·(t+1) multiplications of agreement checking. It is exported — rather
// than folded into ExchangeGammas — so benchmarks can drive one player's
// decode workload on a fabricated view without a network.
//
// Decode is safe to call concurrently for distinct j; it never uses
// cfg.Pool itself (the fan-out happens one level up, across dealers).
func (v *View) Decode(cfg Config, ids []gf2k.Element, j int) Output {
	f := cfg.Field
	var xs, ys []gf2k.Element
	for k := 0; k < cfg.N; k++ {
		if !v.Has[k][j] {
			continue
		}
		xs = append(xs, ids[k])
		ys = append(ys, v.GammaOf[k][j])
	}
	// Agreement with ≥ n−t points means at most len−(n−t) disagreements.
	budget := len(xs) - (cfg.N - cfg.T)
	if budget < 0 {
		return Output{}
	}
	res, err := bw.Decode(f, xs, ys, cfg.T, budget, cfg.Counters)
	if err != nil {
		return Output{}
	}
	return Output{OK: true, F: res.Poly}
}

// Edge reports the directed graph edge j→k of Fig. 5 step 4 in this view:
// dealer j's instance decoded and player k's announced γ for j lies on F_j.
func (v *View) Edge(f gf2k.Field, j, k int) bool {
	if !v.Outputs[j].OK || !v.Has[k][j] {
		return false
	}
	id, err := f.ElementFromID(k + 1)
	if err != nil {
		return false
	}
	return poly.Eval(f, v.Outputs[j].F, id) == v.GammaOf[k][j]
}
