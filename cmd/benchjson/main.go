// Command benchjson runs the repository's benchmarks and records the
// results as a JSON document, so successive PRs can diff machine-readable
// baselines (BENCH_<date>.json at the repo root) instead of eyeballing
// `go test -bench` output.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_2026-08-05.json
//	go run ./cmd/benchjson -bench 'Interpolate' -benchtime 100x -out /dev/stdout
//
// With -merge, results are folded into an existing -out document instead of
// replacing it: same-name entries are overwritten, new ones appended. This
// lets a targeted run (e.g. the serving-path BeaconDrawThroughput series)
// refresh its series without re-running every benchmark:
//
//	go run ./cmd/benchjson -bench 'BeaconDrawThroughput' -pkgs ./internal/beacon \
//	    -benchtime 2000x -merge -out BENCH_2026-08-05.json
//
// The raw benchmark output is teed to stderr while it is parsed, so the
// command is a drop-in replacement for `make bench`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line: name, iteration count, and the measured
// metrics keyed by unit (ns/op, B/op, allocs/op, and any custom ReportMetric
// units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the file format: enough context to interpret the numbers
// (host, Go version, benchtime) plus the results.
type Document struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime,omitempty"`
	Command   string   `json:"command"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "", "passed to go test -benchtime (e.g. 1s, 100x)")
		pkgs      = flag.String("pkgs", "./...", "package pattern to benchmark")
		out       = flag.String("out", "", "output JSON file (default stdout)")
		merge     = flag.Bool("merge", false, "merge results by name into an existing -out file instead of replacing it")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", *pkgs}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	results, perr := parseBench(io.TeeReader(pipe, os.Stderr))
	if err := cmd.Wait(); err != nil {
		log.Fatalf("go test -bench: %v", err)
	}
	if perr != nil {
		log.Fatalf("parse benchmark output: %v", perr)
	}

	doc := Document{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
		Command:   "go " + strings.Join(args, " "),
		Results:   results,
	}
	if *merge && *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old Document
			if err := json.Unmarshal(prev, &old); err != nil {
				log.Fatalf("merge into %s: %v", *out, err)
			}
			doc.Results = mergeResults(old.Results, results)
			doc.Command = old.Command + " ; " + doc.Command
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d results written to %s (%d from this run)\n",
		len(doc.Results), *out, len(results))
}

// mergeResults overlays fresh results onto an existing series: entries with
// the same benchmark name are replaced in place, new names are appended, and
// untouched old entries survive.
func mergeResults(old, fresh []Result) []Result {
	idx := make(map[string]int, len(old))
	out := append([]Result(nil), old...)
	for i, r := range out {
		idx[r.Name] = i
	}
	for _, r := range fresh {
		if i, ok := idx[r.Name]; ok {
			out[i] = r
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// parseBench extracts benchmark lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
//
// from go test output. Value/unit pairs after the iteration count become
// Metrics entries; non-benchmark lines are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: some note" lines
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	return out, sc.Err()
}
