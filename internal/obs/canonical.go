package obs

import "sort"

// CanonicalOrder returns a copy of the event stream in a scheduler-
// independent order with renumbered sequence and span identifiers.
//
// The Tracer assigns Seq and span IDs in global emission order, which
// interleaves concurrent players nondeterministically — two runs of the
// same seeded protocol emit the same per-player event sequences but a
// different global shuffle of them. CanonicalOrder undoes the shuffle:
// events are stably sorted by (round, player, original Seq) — network-level
// events (player −1) ordered after the players of the same round — then Seq
// is renumbered 1..len and span/parent IDs are remapped in first-appearance
// order. Because each player's Round is non-decreasing and the stable sort
// preserves its per-player emission order within a round, the result is a
// pure function of the players' local histories. Two runs of a
// deterministic protocol therefore canonicalize to identical streams —
// the invariant the conformance suite's golden-transcript test pins.
//
// Cost snapshots are preserved as-is; traces meant for byte comparison
// should come from a tracer without counters attached (obs.New(nil, sink)),
// since counter diffs measure shared state across concurrent players.
func CanonicalOrder(events []Event) []Event {
	out := append([]Event(nil), events...)
	playerKey := func(p int) int {
		if p < 0 {
			return int(^uint(0) >> 1) // network-level events sort last in their round
		}
		return p
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Round != out[b].Round {
			return out[a].Round < out[b].Round
		}
		if pa, pb := playerKey(out[a].Player), playerKey(out[b].Player); pa != pb {
			return pa < pb
		}
		return out[a].Seq < out[b].Seq
	})
	spanID := make(map[uint64]uint64)
	var nextSpan uint64
	remap := func(id uint64) uint64 {
		if id == 0 {
			return 0
		}
		if v, ok := spanID[id]; ok {
			return v
		}
		nextSpan++
		spanID[id] = nextSpan
		return nextSpan
	}
	for i := range out {
		out[i].Seq = uint64(i + 1)
		// A span's begin event precedes any reference to it in canonical
		// order (same player, earlier or equal round), so remapping in
		// scan order assigns IDs by first appearance.
		out[i].Span = remap(out[i].Span)
		out[i].Parent = remap(out[i].Parent)
	}
	return out
}
