package conformance

import (
	"testing"

	"repro/internal/gf2k"
)

// TestSuite is the seeded adversarial sweep: every scenario runs its
// protocol under its attack and asserts the paper's properties on the
// honest outputs. A failing entry reproduces from the subtest name. The
// matrix and dispatcher live in matrix.go (exported, so the schedule
// harness and the fuzz driver share them).
func TestSuite(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			if _, err := RunScenario(sc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSuiteDeterministic replays a cross-section of scenarios (one per
// protocol, including message-level interception) and requires bitwise
// identical honest outputs — the reproducibility contract behind quoting a
// (seed, config) pair in a bug report.
func TestSuiteDeterministic(t *testing.T) {
	cases := []Scenario{
		{Protocol: "vss", Attack: "inconsistent-dealer-overwhelming", N: 7, T: 2, M: 1, Seed: 11},
		{Protocol: "batch-vss", Attack: "garbage-verifier", N: 7, T: 2, M: 4, Seed: 12},
		{Protocol: "gradecast", Attack: "grade-split-half", N: 7, T: 2, Seed: 13},
		{Protocol: "ba", Attack: "vote-equivocator", Variant: "mixed", N: 6, T: 1, Seed: 14},
		{Protocol: "coingen", Attack: "deal-corrupt", N: 7, T: 1, M: 2, Seed: 15},
	}
	for _, sc := range cases {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			first, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if first != second {
				t.Fatalf("outputs differ across identical runs:\n run 1: %s\n run 2: %s", first, second)
			}
		})
	}
}

// TestCoinUnpredictability drives the honest Coin-Gen scenario and then
// shows, for every generated coin, that the view of a t-member coalition
// admitted both openings until Coin-Expose: their shares interpolate to a
// valid degree-t completion for the real value and for its complement.
func TestCoinUnpredictability(t *testing.T) {
	for _, nt := range [][2]int{{7, 1}, {13, 2}} {
		sc := Scenario{Protocol: "coingen", Attack: "honest", N: nt[0], T: nt[1], M: 3, Seed: 21}
		t.Run(sc.String(), func(t *testing.T) {
			o, err := RunCoinGen(sc)
			if err != nil {
				t.Fatal(err)
			}
			if err := o.Check(); err != nil {
				t.Fatal(err)
			}
			// The hypothetical coalition: the last t players (honest here —
			// unpredictability is about what ANY t-subset's view determines).
			coalition := o.Honest[len(o.Honest)-sc.T:]
			ref := o.Players[o.Honest[0]]
			for h, exposed := range ref.Coins {
				shares := make([]gf2k.Element, len(coalition))
				for c, id := range coalition {
					shares[c] = o.Players[id].Res.Batch.Shares[h]
				}
				if err := UnpredictabilityWitness(o.Env.field, sc.T, coalition, shares, exposed); err != nil {
					t.Fatalf("coin %d: %v", h, err)
				}
			}
		})
	}
}
