package beacon

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/gf2k"
	"repro/internal/simnet"
)

// armedDaemon builds a daemon armed with a next-generation roster.
func armedDaemon(t *testing.T, pc, next *simnet.PeerConfig, dir string, self int, seed int64) *Daemon {
	t.Helper()
	d, err := NewDaemon(DaemonConfig{
		Peers:          pc,
		Self:           self,
		StateDir:       dir,
		Rand:           rand.New(rand.NewSource(seed + int64(self)*1009)),
		RoundTimeout:   2 * time.Second,
		DialBackoffMax: 200 * time.Millisecond,
		JoinTimeout:    20 * time.Second,
		ReshareNext:    next,
		Logf:           func(f string, a ...interface{}) { t.Logf("player %d: "+f, append([]interface{}{self}, a...)...) },
	})
	if err != nil {
		t.Fatalf("player %d: NewDaemon (armed): %v", self, err)
	}
	return d
}

// runArmedCluster runs every daemon armed for a handover; each must exit
// with ErrReshareCutover, and all must agree on the cutover position.
// Returns that position.
func runArmedCluster(t *testing.T, pc, next *simnet.PeerConfig, dirs []string, seed int64) int {
	t.Helper()
	n := pc.N()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		d := armedDaemon(t, pc, next, dirs[i], i, seed)
		wg.Add(1)
		go func(i int, d *Daemon) {
			defer wg.Done()
			errs[i] = d.Run(context.Background())
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrReshareCutover) {
			t.Fatalf("armed player %d: got %v, want ErrReshareCutover", i, err)
		}
	}
	cut := -1
	for i := 0; i < n; i++ {
		meta, err := LoadMeta(dirs[i], i)
		if err != nil {
			t.Fatalf("player %d meta: %v", i, err)
		}
		j, err := LoadReshareJournal(dirs[i])
		if err != nil || j == nil {
			t.Fatalf("player %d journal after cutover: %v %v", i, j, err)
		}
		if meta.LogLen != j.Cutover {
			t.Fatalf("player %d paused at %d but journaled cutover %d", i, meta.LogLen, j.Cutover)
		}
		if cut == -1 {
			cut = j.Cutover
		} else if j.Cutover != cut {
			t.Fatalf("player %d cutover %d != player 0's %d", i, j.Cutover, cut)
		}
	}
	return cut
}

// reshareParticipant describes one RunReshare invocation.
type reshareParticipant struct {
	oldSelf, newSelf int
	dir              string
	stale            bool
}

// runCeremony executes RunReshare concurrently for every participant and
// checks all agree on cutover and cheater list. Returns the shared result.
func runCeremony(t *testing.T, old, next *simnet.PeerConfig, parts []reshareParticipant, seed int64) *ReshareResult {
	t.Helper()
	results := make([]*ReshareResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p reshareParticipant) {
			defer wg.Done()
			results[i], errs[i] = RunReshare(context.Background(), ReshareConfig{
				Old: old, Next: next,
				OldSelf: p.oldSelf, NewSelf: p.newSelf,
				StateDir: p.dir, Stale: p.stale,
				Rand:         rand.New(rand.NewSource(seed + int64(i)*7919)),
				RoundTimeout: 2 * time.Second,
				JoinTimeout:  20 * time.Second,
				MaxAttempts:  1,
				Logf: func(f string, a ...interface{}) {
					t.Logf("participant (%d→%d): "+f, append([]interface{}{p.oldSelf, p.newSelf}, a...)...)
				},
			})
		}(i, p)
	}
	wg.Wait()
	var ref *ReshareResult
	for i, err := range errs {
		if err != nil {
			t.Fatalf("participant %d (%d→%d): %v", i, parts[i].oldSelf, parts[i].newSelf, err)
		}
		r := results[i]
		if ref == nil {
			ref = r
			continue
		}
		if r.Cutover != ref.Cutover || r.Generation != ref.Generation || r.Coins != ref.Coins {
			t.Fatalf("participant %d result %+v != %+v", i, r, ref)
		}
		if fmt.Sprint(r.Cheaters) != fmt.Sprint(ref.Cheaters) {
			t.Fatalf("participant %d cheaters %v != %v", i, r.Cheaters, ref.Cheaters)
		}
	}
	for _, p := range parts {
		if j, err := LoadReshareJournal(p.dir); err != nil || j != nil {
			t.Fatalf("journal not cleared in %s: %v %v", p.dir, j, err)
		}
	}
	return ref
}

func loadValues(t *testing.T, dir string, player int) []gf2k.Element {
	t.Helper()
	vals, err := LoadCoinLog(CoinLogFile(dir, player))
	if err != nil {
		t.Fatalf("load log %s player %d: %v", dir, player, err)
	}
	return vals
}

func makeStateDirs(t *testing.T, base, prefix string, n int) []string {
	t.Helper()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("%s%d", prefix, i))
		if err := os.MkdirAll(dirs[i], 0o700); err != nil {
			t.Fatal(err)
		}
	}
	return dirs
}

// TestDaemonReshareHandover is the acceptance e2e: a (7,1) committee hands
// its beacon to a disjoint-majority (9,1) committee — 2 members stay under
// new indices, 5 leave, 7 join — via the armed-cutover choreography and
// the dealer-free ceremony. The new committee's public stream must
// byte-match what the old committee would have produced from the same
// tail, which a twin cluster (same deal, never reshared) pins down.
// DealCluster runs exactly once per cluster, at bootstrap.
func TestDaemonReshareHandover(t *testing.T) {
	const n, seedCoins, dealSeed = 7, 48, 99
	const firstLeg = 12 // plain coins before the operator arms the reshare
	base := t.TempDir()

	// Twin cluster A: identical deal, no reshare, run far enough to cover
	// the comparison window. (Exposure is deterministic in the dealt
	// stores, so same deal seed ⇒ same stream.)
	pcA := testPeerConfig(t, n, 1, seedCoins, 6, seedCoins)
	dirsA := makeStateDirs(t, base, "a", n)
	cerA := filepath.Join(base, "dealA")
	if err := DealCluster(pcA, cerA, rand.New(rand.NewSource(dealSeed))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, cerA, dirsA)
	runCluster(t, pcA, dirsA, 40, 1)
	valsA := loadValues(t, dirsA[0], 0)

	// Cluster B: same deal, first leg plain.
	pcB := testPeerConfig(t, n, 1, seedCoins, 6, seedCoins)
	dirsB := makeStateDirs(t, base, "b", n)
	cerB := filepath.Join(base, "dealB")
	if err := DealCluster(pcB, cerB, rand.New(rand.NewSource(dealSeed))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, cerB, dirsB)
	runCluster(t, pcB, dirsB, firstLeg, 1)

	// Next-generation roster: old members 5 and 6 stay (as new indices 0
	// and 1), everyone else leaves, seven fresh members join.
	next := &simnet.PeerConfig{
		Cluster:    "test-g1",
		Secret:     pcB.Secret,
		T:          1,
		K:          32,
		Batch:      seedCoins,
		Threshold:  6,
		SeedCoins:  seedCoins,
		Generation: 1,
	}
	next.Peers = append(next.Peers,
		simnet.Peer{ID: 0, Addr: pcB.Peers[5].Addr},
		simnet.Peer{ID: 1, Addr: pcB.Peers[6].Addr},
	)
	for j := 2; j < 9; j++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addr := ln.Addr().String()
		ln.Close()
		next.Peers = append(next.Peers, simnet.Peer{ID: j, Addr: addr})
	}
	if err := next.Validate(); err != nil {
		t.Fatalf("next config invalid: %v", err)
	}

	// Second leg: restart armed. The daemons negotiate a cutover a few
	// coins ahead, pause there together, and exit for the ceremony.
	cut := runArmedCluster(t, pcB, next, dirsB, 2)
	if cut < firstLeg {
		t.Fatalf("cutover %d is before the restart position %d", cut, firstLeg)
	}

	// The ceremony: all 7 old members (5 leaving, 2 staying) plus 7
	// joiners.
	jdirs := makeStateDirs(t, base, "j", 9)
	parts := []reshareParticipant{
		{0, -1, dirsB[0], false}, {1, -1, dirsB[1], false}, {2, -1, dirsB[2], false},
		{3, -1, dirsB[3], false}, {4, -1, dirsB[4], false},
		{5, 0, dirsB[5], false}, {6, 1, dirsB[6], false},
	}
	for j := 2; j < 9; j++ {
		parts = append(parts, reshareParticipant{-1, j, jdirs[j], false})
	}
	res := runCeremony(t, pcB, next, parts, 1234)
	if res.Cutover != cut {
		t.Fatalf("ceremony cutover %d != negotiated %d", res.Cutover, cut)
	}
	if len(res.Cheaters) != 0 {
		t.Fatalf("honest handover branded cheaters %v", res.Cheaters)
	}
	if res.Generation != 1 {
		t.Fatalf("generation = %d, want 1", res.Generation)
	}
	// The staying members' old-identity files are gone; leaving members'
	// stores are destroyed (toxic waste), their public logs kept.
	for _, f := range []string{storeFile(dirsB[5], 5), metaFile(dirsB[5], 5), CoinLogFile(dirsB[5], 5)} {
		if _, err := os.Stat(f); !os.IsNotExist(err) {
			t.Fatalf("old-identity file %s survived the handover", f)
		}
	}
	if _, err := os.Stat(storeFile(dirsB[0], 0)); !os.IsNotExist(err) {
		t.Fatal("leaving member 0 kept its store after the handover")
	}
	if _, err := os.Stat(CoinLogFile(dirsB[0], 0)); err != nil {
		t.Fatalf("leaving member 0 lost its public log: %v", err)
	}

	// Third leg: the NEW committee serves generation 1 — 2 stayers + 7
	// joiners, n=9 — and continues the exact stream. Emit target chosen so
	// neither cluster refills (refill coins are freshly dealt and would
	// legitimately diverge between the twins).
	newDirs := []string{dirsB[5], dirsB[6]}
	newDirs = append(newDirs, jdirs[2:9]...)
	runCluster(t, next, newDirs, 38, 3)

	valsB := loadValues(t, newDirs[0], 0)
	if len(valsB) != 38 {
		t.Fatalf("new committee log has %d coins, want 38", len(valsB))
	}
	for i := 0; i < cut; i++ {
		if valsB[i] != valsA[i] {
			t.Fatalf("pre-cutover coin %d: %#x != twin's %#x", i, valsB[i], valsA[i])
		}
	}
	// The ceremony consumed two tail coins (challenge + mask), so the new
	// committee's coin cut+i is the seed coin the old committee would have
	// exposed as cut+2+i.
	for i := cut; i < len(valsB); i++ {
		if want := valsA[i+2]; valsB[i] != want {
			t.Fatalf("post-cutover coin %d: %#x, want twin's coin %d = %#x", i, valsB[i], i+2, want)
		}
	}
	// Every new member agrees, and their generation stuck.
	ref := readLogFile(t, newDirs[0], 0)
	for j := 1; j < 9; j++ {
		if log := readLogFile(t, newDirs[j], j); log != ref {
			t.Fatalf("new member %d log differs", j)
		}
		meta, err := LoadMeta(newDirs[j], j)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Generation != 1 {
			t.Fatalf("new member %d generation %d, want 1", j, meta.Generation)
		}
	}
}

// TestDaemonProactiveRefresh keeps the roster and re-randomizes every
// share in place: same stream before and after, generation bumped, and a
// second RunReshare invocation after success is a harmless no-op (the
// crash-after-write recovery path).
func TestDaemonProactiveRefresh(t *testing.T) {
	const n, seedCoins = 7, 48
	base := t.TempDir()
	pc := testPeerConfig(t, n, 1, seedCoins, 6, seedCoins)
	dirs := makeStateDirs(t, base, "p", n)
	ceremony := filepath.Join(base, "deal")
	if err := DealCluster(pc, ceremony, rand.New(rand.NewSource(17))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, ceremony, dirs)

	runCluster(t, pc, dirs, 10, 5)

	next := &simnet.PeerConfig{}
	*next = *pc
	next.Generation = 1

	cut := runArmedCluster(t, pc, next, dirs, 6)
	before := loadValues(t, dirs[0], 0) // the full pre-refresh stream [0, cut)
	oldStore, err := os.ReadFile(storeFile(dirs[0], 0))
	if err != nil {
		t.Fatal(err)
	}

	parts := make([]reshareParticipant, n)
	for i := range parts {
		parts[i] = reshareParticipant{i, i, dirs[i], false}
	}
	res := runCeremony(t, pc, next, parts, 4321)
	if len(res.Cheaters) != 0 {
		t.Fatalf("honest refresh branded cheaters %v", res.Cheaters)
	}
	newStore, err := os.ReadFile(storeFile(dirs[0], 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(oldStore) == string(newStore) {
		t.Fatal("refresh left player 0's share file unchanged")
	}

	// Idempotent re-run: crash-after-write recovery just clears up.
	again, err := RunReshare(context.Background(), ReshareConfig{
		Old: pc, Next: next, OldSelf: 0, NewSelf: 0, StateDir: dirs[0],
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil || !again.Resumed {
		t.Fatalf("re-run after success: %+v, %v (want Resumed)", again, err)
	}

	runCluster(t, next, dirs, 25, 7)
	after := loadValues(t, dirs[0], 0)
	if len(after) != 25 {
		t.Fatalf("log has %d coins, want 25", len(after))
	}
	for i, v := range before[:cut] {
		if after[i] != v {
			t.Fatalf("refresh changed public coin %d: %#x != %#x", i, after[i], v)
		}
	}
	ref := readLogFile(t, dirs[0], 0)
	for i := 1; i < n; i++ {
		if log := readLogFile(t, dirs[i], i); log != ref {
			t.Fatalf("player %d log differs after refresh", i)
		}
	}
}

// TestDaemonStaleMemberRecoversViaRefresh is the ErrEpochMismatch escape
// hatch e2e: one member's store is stale (it missed a refill), so it joins
// the refresh ceremony receive-only — branded a cheater by the committee
// but re-armed with fresh shares — and serves generation 1 like everyone
// else.
func TestDaemonStaleMemberRecoversViaRefresh(t *testing.T) {
	const n, seedCoins, stale = 7, 48, 3
	base := t.TempDir()
	pc := testPeerConfig(t, n, 1, seedCoins, 6, seedCoins)
	dirs := makeStateDirs(t, base, "p", n)
	ceremony := filepath.Join(base, "deal")
	if err := DealCluster(pc, ceremony, rand.New(rand.NewSource(23))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, ceremony, dirs)

	runCluster(t, pc, dirs, 8, 9)

	next := &simnet.PeerConfig{}
	*next = *pc
	next.Generation = 1
	cut := runArmedCluster(t, pc, next, dirs, 10)

	parts := make([]reshareParticipant, n)
	for i := range parts {
		parts[i] = reshareParticipant{i, i, dirs[i], i == stale}
	}
	res := runCeremony(t, pc, next, parts, 5555)
	if len(res.Cheaters) != 1 || res.Cheaters[0] != stale {
		t.Fatalf("cheaters = %v, want [%d] (the stale abstainer)", res.Cheaters, stale)
	}
	if res.Cutover != cut {
		t.Fatalf("ceremony cutover %d != negotiated %d", res.Cutover, cut)
	}

	// The recovered member serves the new generation alongside the rest.
	runCluster(t, next, dirs, 20, 11)
	ref := readLogFile(t, dirs[0], 0)
	if got := countLines(ref); got != 20 {
		t.Fatalf("log has %d entries, want 20", got)
	}
	for i := 1; i < n; i++ {
		if log := readLogFile(t, dirs[i], i); log != ref {
			t.Fatalf("player %d log differs after stale recovery", i)
		}
	}
	meta, err := LoadMeta(dirs[stale], stale)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 {
		t.Fatalf("recovered member generation %d, want 1", meta.Generation)
	}
}

// TestNewDaemonGenerationFence: a daemon pointed at a roster file whose
// generation does not match its on-disk state must fail loudly at startup.
func TestNewDaemonGenerationFence(t *testing.T) {
	pc := testPeerConfig(t, 7, 1, 24, 6, 24)
	dir := t.TempDir()
	if err := DealCluster(pc, dir, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	wrong := &simnet.PeerConfig{}
	*wrong = *pc
	wrong.Generation = 1
	_, err := NewDaemon(DaemonConfig{Peers: wrong, Self: 0, StateDir: dir, Rand: rand.New(rand.NewSource(1))})
	if err == nil {
		t.Fatal("NewDaemon accepted generation-mismatched state")
	}
}
