package obs

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

// traceFor records a tiny per-daemon trace: origin stamped, one phase span
// and a coin event per round.
func traceFor(origin, rounds int) []Event {
	ring := NewRing(0)
	tr := New(nil, ring)
	tr.SetOrigin(origin)
	tr.SetEpoch(1)
	for r := 0; r < rounds; r++ {
		sp := tr.Start(origin, r, KindPhase, "emit")
		tr.CoinExposed(origin, r, uint64(100*origin+r), r)
		sp.End(r + 1)
	}
	return ring.Events()
}

// TestTracerStampsOriginAndEpoch pins that SetOrigin/SetEpoch mark every
// subsequent event and that the stamps survive a JSONL round trip.
func TestTracerStampsOriginAndEpoch(t *testing.T) {
	var buf bytes.Buffer
	ring := NewRing(0)
	jsonl := NewJSONL(&buf)
	tr := New(nil, Tee(ring, jsonl))
	tr.SetOrigin(3)
	tr.SetEpoch(2)
	sp := tr.Start(3, 5, KindPhase, "emit")
	sp.End(6)
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, e := range ring.Events() {
		if e.Origin != 3 || e.Epoch != 2 {
			t.Fatalf("event %+v missing origin/epoch stamp", e)
		}
	}
	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, ring.Events()) {
		t.Fatalf("JSONL round trip lost correlation keys:\ngot  %+v\nwant %+v", parsed, ring.Events())
	}
}

func TestMergeTracesOrdersAndRemaps(t *testing.T) {
	streams := map[int][]Event{
		0: traceFor(0, 3),
		2: traceFor(2, 3),
		5: traceFor(5, 2),
	}
	merged := MergeTraces(streams)
	want := 0
	for _, s := range streams {
		want += len(s)
	}
	if len(merged) != want {
		t.Fatalf("merged %d events, want %d", len(merged), want)
	}
	// Global Seq renumbered 1..n.
	for i, e := range merged {
		if e.Seq != uint64(i+1) {
			t.Fatalf("merged[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	// Canonical (Epoch, Round, Origin) order.
	for i := 1; i < len(merged); i++ {
		a, b := merged[i-1], merged[i]
		ka := [3]int{a.Epoch, a.Round, a.Origin}
		kb := [3]int{b.Epoch, b.Round, b.Origin}
		for j := 0; j < 3; j++ {
			if ka[j] < kb[j] {
				break
			}
			if ka[j] > kb[j] {
				t.Fatalf("merged[%d..%d] out of order: %v then %v", i-1, i, ka, kb)
			}
		}
	}
	// Per-origin span ids (which collide across streams: every tracer
	// numbers from 1) must be distinct after the merge.
	type spanKey struct {
		origin int
		span   uint64
	}
	seen := map[uint64]spanKey{}
	for _, e := range merged {
		if e.Type != EvSpanBegin {
			continue
		}
		if prev, dup := seen[e.Span]; dup {
			t.Fatalf("span id %d assigned to both %v and origin %d", e.Span, prev, e.Origin)
		}
		seen[e.Span] = spanKey{e.Origin, e.Span}
	}
	// Each round's span must appear for every origin that was live then.
	perRound := map[int]map[int]bool{}
	for _, e := range merged {
		if e.Type != EvSpanBegin {
			continue
		}
		if perRound[e.Round] == nil {
			perRound[e.Round] = map[int]bool{}
		}
		perRound[e.Round][e.Origin] = true
	}
	for r := 0; r < 2; r++ {
		for _, o := range []int{0, 2, 5} {
			if !perRound[r][o] {
				t.Fatalf("round %d missing span from origin %d", r, o)
			}
		}
	}
	// Merging is deterministic: same inputs, same output.
	if again := MergeTraces(streams); !reflect.DeepEqual(again, merged) {
		t.Fatal("MergeTraces is not deterministic")
	}
}

func TestMergeTracesOverridesStampedOrigin(t *testing.T) {
	// Stream recorded without SetOrigin (all Origin 0) merged under key 4:
	// the map key wins.
	raw := traceFor(0, 1)
	merged := MergeTraces(map[int][]Event{4: raw})
	for _, e := range merged {
		if e.Origin != 4 {
			t.Fatalf("event %+v should carry merge-key origin 4", e)
		}
	}
}

func TestMergeJSONL(t *testing.T) {
	encode := func(evs []Event) io.Reader {
		var buf bytes.Buffer
		j := NewJSONL(&buf)
		for _, e := range evs {
			j.Emit(e)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	s0, s1 := traceFor(0, 2), traceFor(1, 2)
	merged, err := MergeJSONL(map[int]io.Reader{0: encode(s0), 1: encode(s1)})
	if err != nil {
		t.Fatal(err)
	}
	want := MergeTraces(map[int][]Event{0: s0, 1: s1})
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("MergeJSONL != MergeTraces:\ngot  %+v\nwant %+v", merged, want)
	}
	// A torn tail in one stream is tolerated (the daemon was SIGKILLed).
	var torn bytes.Buffer
	j := NewJSONL(&torn)
	for _, e := range s1 {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	torn.WriteString(`{"seq":999,"type":"rou`) // no trailing newline
	merged2, err := MergeJSONL(map[int]io.Reader{0: encode(s0), 1: &torn})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged2, want) {
		t.Fatal("torn tail should be dropped, leaving the merge unchanged")
	}
}

// TestParseJSONLTornTail is the regression test for the torn-tail
// hardening: a final line without '\n' must be dropped, not half-parsed —
// even when the torn prefix happens to be valid JSON.
func TestParseJSONLTornTail(t *testing.T) {
	whole := `{"seq":1,"type":"round","player":-1,"round":0}` + "\n"
	tornValid := `{"seq":2,"type":"round","player":-1,"round":1}` // valid JSON, no newline
	events, err := ParseJSONL(strings.NewReader(whole + tornValid))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Seq != 1 {
		t.Fatalf("got %d events (%+v), want only the terminated line", len(events), events)
	}
	tornGarbage := `{"seq":2,"ty`
	events, err = ParseJSONL(strings.NewReader(whole + tornGarbage))
	if err != nil || len(events) != 1 {
		t.Fatalf("torn garbage tail: events=%d err=%v, want 1 event no error", len(events), err)
	}
	// A terminated malformed line is still a hard error.
	if _, err := ParseJSONL(strings.NewReader(whole + tornGarbage + "\n")); err == nil {
		t.Fatal("terminated malformed line must still error")
	}
	// CRLF terminators are tolerated.
	events, err = ParseJSONL(strings.NewReader(strings.ReplaceAll(whole, "\n", "\r\n")))
	if err != nil || len(events) != 1 {
		t.Fatalf("CRLF: events=%d err=%v", len(events), err)
	}
}

func TestTimelineInterleavesOrigins(t *testing.T) {
	merged := MergeTraces(map[int][]Event{
		1: traceFor(1, 2),
		2: traceFor(2, 2),
	})
	var buf bytes.Buffer
	Timeline(&buf, merged)
	out := buf.String()
	for _, want := range []string{"[n1 p1]", "[n2 p2]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Single-origin streams keep the compact label.
	buf.Reset()
	Timeline(&buf, traceFor(1, 1))
	if strings.Contains(buf.String(), "[n1") {
		t.Fatalf("single-origin timeline should not carry node labels:\n%s", buf.String())
	}
	// Multi-epoch streams carry the epoch in round headers.
	e0, e1 := traceFor(1, 1), traceFor(1, 1)
	for i := range e1 {
		e1[i].Epoch = 2
	}
	buf.Reset()
	Timeline(&buf, append(e0, e1...))
	if !strings.Contains(buf.String(), "epoch 1 round 0") || !strings.Contains(buf.String(), "epoch 2 round 0") {
		t.Fatalf("multi-epoch timeline missing epoch headers:\n%s", buf.String())
	}
}

func TestDurationSink(t *testing.T) {
	type obsv struct {
		name string
		kind SpanKind
		d    time.Duration
	}
	var got []obsv
	ds := NewDurationSink(func(name string, kind SpanKind, d time.Duration) {
		got = append(got, obsv{name, kind, d})
	})
	now := time.Unix(0, 0)
	ds.now = func() time.Time { return now }
	ds.Emit(Event{Type: EvSpanBegin, Span: 1, Kind: KindPhase, Name: "emit"})
	now = now.Add(40 * time.Millisecond)
	ds.Emit(Event{Type: EvSpanBegin, Span: 2, Kind: KindProtocol, Name: "refill"})
	now = now.Add(10 * time.Millisecond)
	ds.Emit(Event{Type: EvSpanEnd, Span: 2, Kind: KindProtocol, Name: "refill"})
	now = now.Add(50 * time.Millisecond)
	ds.Emit(Event{Type: EvSpanEnd, Span: 1, Kind: KindPhase, Name: "emit"})
	// End without a begin: ignored.
	ds.Emit(Event{Type: EvSpanEnd, Span: 99, Name: "ghost"})
	want := []obsv{
		{"refill", KindProtocol, 10 * time.Millisecond},
		{"emit", KindPhase, 100 * time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("durations = %+v, want %+v", got, want)
	}
}
