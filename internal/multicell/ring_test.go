package multicell

import (
	"fmt"
	"testing"
)

// TestRingStability is the consistent-hashing contract: removing one cell
// remaps ONLY the keys that cell owned — every other key keeps its cell,
// so tenants keep their contiguous streams across topology changes. A
// naive `hash(key) % M` router fails this for ~ (M-1)/M of all keys.
func TestRingStability(t *testing.T) {
	const keys = 10_000
	cells := []int{0, 1, 2, 3}
	before := NewRing(cells, 0)
	after := NewRing([]int{0, 1, 3}, 0) // cell 2 removed

	moved, owned := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		b, a := before.Lookup(key), after.Lookup(key)
		if b == 2 {
			owned++
			if a == 2 {
				t.Fatalf("key %q still maps to removed cell 2", key)
			}
			continue
		}
		if a != b {
			moved++
			if moved <= 5 {
				t.Errorf("key %q moved %d → %d though cell %d survives", key, b, a, b)
			}
		}
	}
	if moved > 0 {
		t.Fatalf("%d/%d keys whose cell survived were remapped", moved, keys)
	}
	// Sanity: the removed cell actually owned a meaningful share.
	if owned < keys/10 {
		t.Fatalf("cell 2 owned only %d/%d keys — virtual nodes are badly unbalanced", owned, keys)
	}
}

// TestRingAddStability is the dual: adding a cell only steals keys, never
// shuffles keys between pre-existing cells.
func TestRingAddStability(t *testing.T) {
	const keys = 10_000
	before := NewRing([]int{0, 1, 2}, 0)
	after := NewRing([]int{0, 1, 2, 3}, 0)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		b, a := before.Lookup(key), after.Lookup(key)
		if a != b && a != 3 {
			t.Fatalf("key %q moved %d → %d; only moves onto the new cell 3 are allowed", key, b, a)
		}
	}
}

// TestRingBalance: with DefaultReplicas virtual nodes, no cell's key share
// may be pathologically small or large.
func TestRingBalance(t *testing.T) {
	const keys = 40_000
	cells := []int{0, 1, 2, 3}
	r := NewRing(cells, 0)
	counts := make(map[int]int)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	want := keys / len(cells)
	for _, c := range cells {
		if counts[c] < want/3 || counts[c] > want*3 {
			t.Fatalf("cell %d owns %d of %d keys (fair share %d) — ring badly unbalanced: %v", c, counts[c], keys, want, counts)
		}
	}
}

// TestRingSuccessors: the shed chain starts at the primary, covers every
// cell exactly once, and is deterministic per key.
func TestRingSuccessors(t *testing.T) {
	cells := []int{0, 1, 2, 3, 4}
	r := NewRing(cells, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		succ := r.Successors(key)
		if len(succ) != len(cells) {
			t.Fatalf("key %q: successor chain %v misses cells", key, succ)
		}
		if succ[0] != r.Lookup(key) {
			t.Fatalf("key %q: chain starts at %d, Lookup says %d", key, succ[0], r.Lookup(key))
		}
		seen := make(map[int]bool)
		for _, c := range succ {
			if seen[c] {
				t.Fatalf("key %q: cell %d repeats in chain %v", key, c, succ)
			}
			seen[c] = true
		}
		again := r.Successors(key)
		for j := range succ {
			if succ[j] != again[j] {
				t.Fatalf("key %q: successor chain not deterministic: %v vs %v", key, succ, again)
			}
		}
	}
}
