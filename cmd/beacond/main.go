// Command beacond serves shared randomness over HTTP from an in-process
// D-PRBG cluster — the deployable face of internal/beacon.
//
// On first start it seeds the cluster with a one-time trusted-dealer batch
// (the paper's only trusted step); on SIGTERM/SIGINT it shuts down
// gracefully and persists every player's sealed store under -data, and a
// restart resumes from those files without the dealer ever being consulted
// again (§1.2's "the new seed is stored until the next execution of the
// application").
//
// Usage:
//
//	beacond -addr :8433 -n 7 -t 1 -k 32 -data /var/lib/beacond
//
// Endpoints:
//
//	GET /v1/coin        one shared coin (an element of GF(2^k))
//	GET /v1/bits?n=128  n shared random bits, hex-encoded LSB-first
//	GET /v1/modulo?m=6  a shared value in [1, m] (the paper's leader draw)
//	GET /v1/healthz     liveness plus a stats summary
//	GET /debug/vars     expvar metrics, including the beacon Stats snapshot
//
// Overload responses use 429 (queue full or rate-limited); a clean
// shutdown answers in-flight requests before persisting.
package main

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/beacon"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// config is the validated flag set of one invocation.
type config struct {
	addr         string
	n, t, k      int
	batch        int
	threshold    int
	highWater    int
	seedCoins    int
	queue        int
	rate         float64
	burst        int
	data         string
	insecureRand bool
	rngSeed      int64
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("beacond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8433", "HTTP listen address")
	fs.IntVar(&c.n, "n", 7, "number of players (n ≥ 6t+1)")
	fs.IntVar(&c.t, "t", 1, "Byzantine fault bound")
	fs.IntVar(&c.k, "k", 32, "coin field GF(2^k), 2 ≤ k ≤ 64")
	fs.IntVar(&c.batch, "batch", 96, "Coin-Gen batch size M")
	fs.IntVar(&c.threshold, "threshold", core.DefaultThreshold, "blocking refill threshold")
	fs.IntVar(&c.highWater, "highwater", 64, "proactive refill high-water mark (0 disables the pipeline)")
	fs.IntVar(&c.seedCoins, "seed-coins", 0, "one-time trusted-dealer seed size (default: batch)")
	fs.IntVar(&c.queue, "queue", 256, "request queue depth (backpressure bound)")
	fs.Float64Var(&c.rate, "rate", 0, "token-bucket rate limit in requests/s (0 disables)")
	fs.IntVar(&c.burst, "burst", 0, "token-bucket burst (default 1 when -rate is set)")
	fs.StringVar(&c.data, "data", "", "state directory for persisted stores (empty: no persistence)")
	fs.BoolVar(&c.insecureRand, "insecure-rand", false, "use seeded math/rand instead of crypto/rand (reproducible demos ONLY)")
	fs.Int64Var(&c.rngSeed, "rng-seed", 1, "seed for -insecure-rand")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("beacond: unexpected arguments %v", fs.Args())
	}
	return &c, nil
}

func (c *config) beaconConfig(ctr *metrics.Counters) (beacon.Config, error) {
	field, err := gf2k.New(c.k)
	if err != nil {
		return beacon.Config{}, err
	}
	cfg := beacon.Config{
		Core: core.Config{
			Field:     field,
			N:         c.n,
			T:         c.t,
			BatchSize: c.batch,
			Threshold: c.threshold,
			HighWater: c.highWater,
		},
		SeedCoins:  c.seedCoins,
		QueueDepth: c.queue,
		Rate:       c.rate,
		Burst:      c.burst,
		Counters:   ctr,
	}
	if c.insecureRand {
		var salt atomic.Int64
		seed := c.rngSeed
		cfg.Rand = func(i int) io.Reader {
			return rand.New(rand.NewSource(seed + int64(i)*1009 + salt.Add(1)*1_000_003))
		}
	} else {
		cfg.Rand = func(int) io.Reader { return cryptorand.Reader }
	}
	return cfg, cfg.Validate()
}

// liveService lets the expvar callback — registered once per process, while
// tests start several servers — always reflect the current service.
var liveService atomic.Pointer[beacon.Service]

var publishOnce = func() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			expvar.Publish("beacon", expvar.Func(func() any {
				if s := liveService.Load(); s != nil {
					return s.Stats()
				}
				return nil
			}))
		}
	}
}()

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	c, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	ctr := &metrics.Counters{}
	cfg, err := c.beaconConfig(ctr)
	if err != nil {
		return err
	}

	var svc *beacon.Service
	switch {
	case c.data != "" && beacon.HaveStores(c.data):
		stores, err := beacon.LoadStores(c.data, c.n)
		if err != nil {
			return err
		}
		if svc, err = beacon.Resume(cfg, stores); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: resumed %d players from %s (%d coins; trusted dealer not consulted)\n",
			c.n, c.data, svc.Stats().Remaining)
	default:
		if svc, err = beacon.New(cfg); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: fresh start, one-time trusted-dealer seed of %d coins\n",
			svc.Stats().Remaining)
	}
	liveService.Store(svc)
	publishOnce()

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newMux(svc, c.k)}
	fmt.Fprintf(stdout, "beacond: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "beacond: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "beacond: http shutdown: %v\n", err)
	}
	if err := svc.Close(shutCtx); err != nil {
		return fmt.Errorf("beacond: close service: %w", err)
	}
	if c.data != "" {
		if err := svc.Persist(c.data); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: persisted %d player stores to %s (%d coins)\n",
			c.n, c.data, svc.Stats().Remaining)
	}
	st := svc.Stats()
	fmt.Fprintf(stdout, "beacond: served %d draws (%d coins), %d refills (%d pipelined, %d blocking), %d blocked draws\n",
		st.Draws, st.CoinsDelivered, st.Refills, st.PipelinedRefills, st.BlockingRefills, st.BlockedDraws)
	return nil
}

func newMux(svc *beacon.Service, k int) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/coin", func(w http.ResponseWriter, r *http.Request) {
		e, err := svc.Draw(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"coin": fmt.Sprintf("0x%0*x", (k+3)/4, uint64(e)), "k": k})
	})
	mux.HandleFunc("GET /v1/bits", func(w http.ResponseWriter, r *http.Request) {
		var n int
		if _, err := fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n); err != nil {
			http.Error(w, "beacond: missing or malformed ?n= bit count", http.StatusBadRequest)
			return
		}
		bits, err := svc.DrawBits(r.Context(), n)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"bits": hex.EncodeToString(bits), "n": n})
	})
	mux.HandleFunc("GET /v1/modulo", func(w http.ResponseWriter, r *http.Request) {
		var m int
		if _, err := fmt.Sscanf(r.URL.Query().Get("m"), "%d", &m); err != nil {
			http.Error(w, "beacond: missing or malformed ?m= modulus", http.StatusBadRequest)
			return
		}
		v, err := svc.DrawMod(r.Context(), m)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"value": v, "m": m})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		writeJSON(w, map[string]any{
			"status":    "ok",
			"remaining": st.Remaining,
			"queue":     st.QueueDepth,
			"refilling": st.RefillInFlight,
			"resumed":   st.Resumed,
		})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// writeErr maps service errors onto HTTP status codes: overload conditions
// are retryable 429s, validation failures 400s, shutdown 503.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, beacon.ErrOverloaded), errors.Is(err, beacon.ErrRateLimited):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, beacon.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), 499) // client closed request
	default:
		var status = http.StatusInternalServerError
		if isValidation(err) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
	}
}

// isValidation distinguishes argument errors (bad bit counts, bad moduli)
// from internal protocol failures.
func isValidation(err error) bool {
	s := err.Error()
	return strings.Contains(s, "outside") || strings.Contains(s, "invalid modulus")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
