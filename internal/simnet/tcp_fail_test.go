package simnet

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
)

// TestTCPDialRefused pins the dial-stage failure mode: when a peer's
// listener is gone before the mesh is complete, dialAll reports which edge
// failed and the already-opened sockets are released by close.
func TestTCPDialRefused(t *testing.T) {
	tr := &tcpTransport{n: 3}
	if err := tr.listenAll(); err != nil {
		t.Fatal(err)
	}
	defer tr.close()
	// Node 1 disappears before anyone dials it.
	if err := tr.lns[1].Close(); err != nil {
		t.Fatal(err)
	}
	err := tr.dialAll()
	if err == nil {
		t.Fatal("dialAll succeeded with a closed peer listener")
	}
	if !strings.Contains(err.Error(), "dial 0→1") {
		t.Fatalf("error does not name the failing edge: %v", err)
	}
}

// TestTCPMidRoundPeerDisconnect kills one player's outgoing sockets while a
// multi-round protocol is in flight. The severed player must fail its next
// EndRound with a send error, and — because Run halts it — the surviving
// players must keep exchanging messages to completion rather than deadlock
// on the round barrier.
func TestTCPMidRoundPeerDisconnect(t *testing.T) {
	const n, rounds, cutAfter = 3, 6, 2
	nw, err := NewTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	fns := make([]PlayerFunc, n)
	for i := range fns {
		i := i
		fns[i] = func(nd *Node) (interface{}, error) {
			got := 0
			for r := 0; r < rounds; r++ {
				if i == 0 && r == cutAfter {
					for _, c := range nw.tcp.conns[0] {
						if c != nil {
							c.Close()
						}
					}
				}
				nd.SendAll([]byte{byte(0x50 + i), byte(r)})
				msgs, err := nd.EndRound()
				if err != nil {
					return got, err
				}
				got += len(msgs)
			}
			return got, nil
		}
	}
	results := Run(nw, fns)

	if results[0].Err == nil {
		t.Fatal("player 0 completed despite severed sockets")
	}
	if !strings.Contains(results[0].Err.Error(), "simnet: send to") &&
		!strings.Contains(results[0].Err.Error(), "simnet: done marker to") {
		t.Fatalf("player 0 failed with an unrelated error: %v", results[0].Err)
	}
	for i := 1; i < n; i++ {
		if results[i].Err != nil {
			t.Fatalf("surviving player %d failed: %v", i, results[i].Err)
		}
		// Survivors hear everyone while player 0 lives and each other
		// afterwards; either way they complete all rounds with traffic.
		if got := results[i].Value.(int); got < rounds*(n-2) {
			t.Fatalf("surviving player %d delivered only %d messages over %d rounds", i, got, rounds)
		}
	}
}

// TestReadFrameRejectsOversizedLength checks the framing guard: a length
// field beyond the 16 MiB cap must be rejected before any allocation.
func TestReadFrameRejectsOversizedLength(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		var hdr [9]byte
		hdr[0] = frameData
		binary.LittleEndian.PutUint32(hdr[5:], 1<<24+1)
		client.Write(hdr[:])
	}()
	_, _, _, err := readFrame(server)
	if err == nil || !strings.Contains(err.Error(), "oversized frame") {
		t.Fatalf("readFrame error = %v, want oversized-frame rejection", err)
	}
}

// TestReadFrameTruncatedPayload checks that a frame whose connection dies
// mid-payload surfaces the underlying read error instead of short data.
func TestReadFrameTruncatedPayload(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		var hdr [9]byte
		hdr[0] = frameData
		binary.LittleEndian.PutUint32(hdr[5:], 64)
		client.Write(hdr[:])
		client.Write([]byte{1, 2, 3}) // 3 of 64 promised bytes
		client.Close()
	}()
	_, _, _, err := readFrame(server)
	if err == nil {
		t.Fatal("readFrame succeeded on truncated payload")
	}
}

// TestReadHelloRejectsNonHello checks the handshake guard: the first frame
// on an inbound connection must be a hello, not protocol data.
func TestReadHelloRejectsNonHello(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go writeFrame(client, frameData, 0, []byte{0xAA})
	_, err := readHello(server)
	if err == nil || !strings.Contains(err.Error(), "expected hello") {
		t.Fatalf("readHello error = %v, want hello rejection", err)
	}
}
