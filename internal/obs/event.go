// Package obs is the repository's observability layer: a lightweight,
// allocation-conscious tracer producing hierarchical spans (run → protocol →
// phase → round) and typed protocol events, each annotated with the network
// round it happened in and — for spans — the metrics.Counters diff observed
// between span entry and exit.
//
// The paper states every result as a cost claim (field operations, messages,
// rounds per sealed coin); obs exists so those costs can be attributed to
// the protocol phase that incurred them instead of being reported as one
// whole-run diff. The simnet substrate emits round-boundary and delivery
// events, each protocol module marks its paper-figure phases, and sinks
// turn the stream into a JSONL trace, an in-memory ring, or a per-round
// timeline for humans.
//
// The zero-cost path is a nil *Tracer: every method is nil-safe and returns
// immediately without locking or allocating, so protocol code can call the
// tracer unconditionally.
package obs

import (
	"fmt"

	"repro/internal/metrics"
)

// EventType enumerates the typed protocol events.
type EventType uint8

const (
	// EvSpanBegin opens a span; Span/Parent/Kind/Name identify it.
	EvSpanBegin EventType = iota + 1
	// EvSpanEnd closes a span; Cost carries the counter diff since begin.
	EvSpanEnd
	// EvRound is a network round boundary; Count is messages delivered,
	// Bytes their total payload size. Player is -1 (network-level).
	EvRound
	// EvSend is a staged unicast: From → To, Bytes payload size.
	EvSend
	// EvBroadcast is a staged ideal broadcast: From, Bytes payload size.
	EvBroadcast
	// EvDeliver is one message delivered at a round boundary: From → To.
	EvDeliver
	// EvDealerBad marks Player's local verdict that dealer From is
	// disqualified (failed verification or never dealt).
	EvDealerBad
	// EvClique reports the clique Player found; Count is its size.
	EvClique
	// EvLeader reports a leader draw; Value is the 0-based leader index,
	// Count the 1-based attempt number.
	EvLeader
	// EvDecision is a Byzantine-agreement output; Value is the decided bit.
	EvDecision
	// EvCoinSealed reports a freshly assembled batch of sealed coins;
	// Count is the batch size.
	EvCoinSealed
	// EvCoinExposed reports one revealed coin; Count is the coin index
	// within its batch, Value the revealed field element.
	EvCoinExposed
)

var eventTypeNames = map[EventType]string{
	EvSpanBegin:   "span-begin",
	EvSpanEnd:     "span-end",
	EvRound:       "round",
	EvSend:        "send",
	EvBroadcast:   "broadcast",
	EvDeliver:     "deliver",
	EvDealerBad:   "dealer-disqualified",
	EvClique:      "clique-found",
	EvLeader:      "leader-elected",
	EvDecision:    "ba-decision",
	EvCoinSealed:  "coin-sealed",
	EvCoinExposed: "coin-exposed",
}

var eventTypeValues = func() map[string]EventType {
	m := make(map[string]EventType, len(eventTypeNames))
	for k, v := range eventTypeNames {
		m[v] = k
	}
	return m
}()

// String returns the stable wire name of the event type.
func (t EventType) String() string {
	if s, ok := eventTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// MarshalText renders the type as its wire name (used by encoding/json).
func (t EventType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses a wire name back into the type.
func (t *EventType) UnmarshalText(b []byte) error {
	v, ok := eventTypeValues[string(b)]
	if !ok {
		return fmt.Errorf("obs: unknown event type %q", b)
	}
	*t = v
	return nil
}

// SpanKind is the level of a span in the run → protocol → phase → round
// hierarchy.
type SpanKind uint8

const (
	// KindRun is a whole protocol execution from one player's view.
	KindRun SpanKind = iota + 1
	// KindProtocol is one protocol invocation (Coin-Gen, VSS, BA, …).
	KindProtocol
	// KindPhase is a paper-figure phase within a protocol (dealing, γ
	// exchange, grade-cast, leader selection, exposure, …).
	KindPhase
	// KindRound is a single-network-round sub-span; rarely used directly —
	// EvRound events already delimit rounds.
	KindRound
)

var spanKindNames = map[SpanKind]string{
	KindRun:      "run",
	KindProtocol: "protocol",
	KindPhase:    "phase",
	KindRound:    "round",
}

var spanKindValues = func() map[string]SpanKind {
	m := make(map[string]SpanKind, len(spanKindNames))
	for k, v := range spanKindNames {
		m[v] = k
	}
	return m
}()

// String returns the stable wire name of the span kind.
func (k SpanKind) String() string {
	if s, ok := spanKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText renders the kind as its wire name (used by encoding/json).
func (k SpanKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a wire name back into the kind.
func (k *SpanKind) UnmarshalText(b []byte) error {
	v, ok := spanKindValues[string(b)]
	if !ok {
		return fmt.Errorf("obs: unknown span kind %q", b)
	}
	*k = v
	return nil
}

// Event is one trace record. A single struct covers every event type; the
// Type field determines which of the optional fields are meaningful (see the
// EventType constants). Fields at their zero value are omitted from JSON, so
// a JSONL export round-trips to the identical event sequence.
type Event struct {
	// Seq is the global emission order, assigned by the Tracer; strictly
	// increasing across all players.
	Seq uint64 `json:"seq"`
	// Type selects the event's meaning.
	Type EventType `json:"type"`
	// Player is the 0-based player observing the event, or -1 for
	// network-level events (round boundaries, deliveries).
	Player int `json:"player"`
	// Round is the observing player's (or network's) completed-round count
	// when the event was emitted.
	Round int `json:"round"`

	// Origin is the id of the process (player daemon) whose tracer emitted
	// the event — the cross-process correlation key. Per-daemon tracers
	// stamp it via Tracer.SetOrigin; MergeTraces re-stamps it when fusing
	// per-daemon files so colliding local ids cannot be confused.
	// Single-process traces leave it 0 (omitted from JSON).
	Origin int `json:"origin,omitempty"`
	// Epoch is the beacon epoch (refill generation) the emitting process
	// was in, stamped via Tracer.SetEpoch. Together with Round it forms the
	// cluster-wide correlation key: epochs only advance at round-aligned
	// refill boundaries, so (Epoch, Round) totally orders a cluster run.
	Epoch int `json:"epoch,omitempty"`

	// Span and Parent identify span begin/end records.
	Span   uint64   `json:"span,omitempty"`
	Parent uint64   `json:"parent,omitempty"`
	Kind   SpanKind `json:"kind,omitempty"`
	Name   string   `json:"name,omitempty"`

	// From/To are message endpoints (EvSend, EvDeliver, EvBroadcast,
	// EvDealerBad). To is -1 for broadcasts.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Bytes is a payload size.
	Bytes int64 `json:"bytes,omitempty"`
	// Count and Value carry type-specific integers (see EventType docs).
	Count int64  `json:"count,omitempty"`
	Value uint64 `json:"value,omitempty"`

	// Cost is the metrics.Counters diff observed across a span
	// (EvSpanEnd only, and only when the tracer has counters attached).
	Cost *metrics.Snapshot `json:"cost,omitempty"`
}
