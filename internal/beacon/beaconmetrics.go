package beacon

// Prometheus instrumentation for the serving layer. Two bundles mirror the
// two deployments: ServiceMetrics for the single-process Service (draw
// latency, queue pressure, refill pipeline), DaemonMetrics for the
// per-player Daemon (emission latency, join/refill progress). Both follow
// the package-wide disabled-path convention: a nil bundle — or one built
// from a nil registry — adds nothing to the hot path beyond a nil check,
// which the AllocsPerRun tests pin.

import (
	"time"

	"repro/internal/obs/prom"
)

// ServiceMetrics declares the Service metric families on a registry.
// Attach via Config.Metrics; the gauge families (queue depth, store
// remaining, refill in-flight) are registered as scrape-time GaugeFuncs
// when the Service starts.
type ServiceMetrics struct {
	reg *prom.Registry

	// DrawLatency is beacon_draw_latency_seconds: wall-clock time a
	// successful draw spent from enqueue to response, including any
	// exposure rounds and blocking refills it waited on.
	DrawLatency *prom.Histogram
	// Draws is beacon_draws_total; Coins is beacon_coins_delivered_total.
	Draws *prom.Counter
	Coins *prom.Counter
	// Blocked is beacon_blocked_draws_total: requests that had to wait on a
	// Coin-Gen (the pipeline fell behind demand).
	Blocked *prom.Counter
	// Rejected is beacon_rejected_total{reason}: overloaded | rate-limited.
	Rejected *prom.CounterVec
	// Refills is beacon_refills_total{kind}; RefillDuration is
	// beacon_refill_duration_seconds{kind}: kind is pipelined (ran on the
	// dedicated refill network, ahead of demand) or blocking (stalled the
	// serving network).
	Refills        *prom.CounterVec
	RefillDuration *prom.HistogramVec
}

// NewServiceMetrics registers the Service families on r (nil r → disabled).
func NewServiceMetrics(r *prom.Registry) *ServiceMetrics {
	return &ServiceMetrics{
		reg:         r,
		DrawLatency: r.Histogram("beacon_draw_latency_seconds", "Latency of successful draws, enqueue to response.", nil),
		Draws:       r.Counter("beacon_draws_total", "Draw requests served."),
		Coins:       r.Counter("beacon_coins_delivered_total", "Coins handed out across all draws."),
		Blocked:     r.Counter("beacon_blocked_draws_total", "Draws that waited on a Coin-Gen round."),
		Rejected:    r.CounterVec("beacon_rejected_total", "Draws rejected before reaching the queue (overloaded, rate-limited).", "reason"),
		Refills:     r.CounterVec("beacon_refills_total", "Absorbed Coin-Gen batches by kind (pipelined, blocking).", "kind"),
		RefillDuration: r.HistogramVec("beacon_refill_duration_seconds", "Coin-Gen wall-clock duration by kind (pipelined, blocking).",
			prom.ExpBuckets(0.005, 2, 14), "kind"),
	}
}

// registerGauges installs the scrape-time gauges for a running service.
func (m *ServiceMetrics) registerGauges(s *Service) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.GaugeFunc("beacon_queue_depth", "Draw requests waiting in the bounded queue.",
		func() float64 { return float64(len(s.reqs)) })
	m.reg.GaugeFunc("beacon_store_remaining", "Sealed coins left in the store.",
		func() float64 { return float64(s.remaining.Load()) })
	m.reg.GaugeFunc("beacon_refill_in_flight", "1 while a pipelined Coin-Gen is running.",
		func() float64 {
			if s.inFlight.Load() {
				return 1
			}
			return 0
		})
}

// rejected counts one pre-queue rejection (nil-safe).
func (m *ServiceMetrics) rejected(reason string) {
	if m == nil {
		return
	}
	m.Rejected.With(reason).Inc()
}

// refill counts one absorbed batch of the given kind (nil-safe).
func (m *ServiceMetrics) refill(kind string) {
	if m == nil {
		return
	}
	m.Refills.With(kind).Inc()
}

// observeDraw records one served draw (nil-safe).
func (m *ServiceMetrics) observeDraw(t0 time.Time, need int) {
	if m == nil {
		return
	}
	m.DrawLatency.Observe(time.Since(t0).Seconds())
	m.Draws.Inc()
	m.Coins.Add(int64(need))
}

// blocked counts nreqs draws that hit the slow path (nil-safe).
func (m *ServiceMetrics) blocked(nreqs int) {
	if m == nil {
		return
	}
	m.Blocked.Add(int64(nreqs))
}

// observeRefill records one Coin-Gen's wall-clock duration (nil-safe).
func (m *ServiceMetrics) observeRefill(kind string, seconds float64) {
	if m == nil {
		return
	}
	m.RefillDuration.With(kind).Observe(seconds)
}

// DaemonMetrics declares the Daemon metric families on a registry. Attach
// via DaemonConfig.Metrics; the position gauges (round, log length, epoch,
// store remaining, joined, refilling) are registered as scrape-time
// GaugeFuncs reading the daemon's state mirror.
type DaemonMetrics struct {
	reg *prom.Registry

	// EmitLatency is beacond_emit_latency_seconds: wall-clock time of one
	// emission iteration (a Coin-Expose round, plus an inline refill when
	// one triggered — the long-tail bucket).
	EmitLatency *prom.Histogram
	// Coins is beacond_coins_total: coins appended to the public log.
	Coins *prom.Counter
	// Refills is beacond_refills_total; RefillDuration is
	// beacond_refill_duration_seconds (inline blocking Coin-Gens).
	Refills        *prom.Counter
	RefillDuration *prom.Histogram
	// JoinAttempts is beacond_join_attempts_total: choreography retries
	// before the daemon entered the cluster (1 = clean first try).
	JoinAttempts *prom.Counter
	// ReshareAttempts is beacond_reshare_attempts_total{result}: ceremony
	// attempts by outcome (ok, failed). ReshareDuration is
	// beacond_reshare_duration_seconds: wall-clock time per attempt.
	ReshareAttempts *prom.CounterVec
	ReshareDuration *prom.Histogram
}

// NewDaemonMetrics registers the Daemon families on r (nil r → disabled).
func NewDaemonMetrics(r *prom.Registry) *DaemonMetrics {
	return &DaemonMetrics{
		reg:         r,
		EmitLatency: r.Histogram("beacond_emit_latency_seconds", "Duration of one emission iteration (exposure, plus inline refill when triggered).", nil),
		Coins:       r.Counter("beacond_coins_total", "Coins appended to the public log."),
		Refills:     r.Counter("beacond_refills_total", "Inline blocking Coin-Gens completed."),
		RefillDuration: r.Histogram("beacond_refill_duration_seconds", "Wall-clock duration of inline Coin-Gens.",
			prom.ExpBuckets(0.005, 2, 14)),
		JoinAttempts:    r.Counter("beacond_join_attempts_total", "Join choreography attempts (1 = clean first try)."),
		ReshareAttempts: r.CounterVec("beacond_reshare_attempts_total", "Resharing ceremony attempts by outcome (ok, failed).", "result"),
		ReshareDuration: r.Histogram("beacond_reshare_duration_seconds", "Wall-clock duration of one resharing ceremony attempt.",
			prom.ExpBuckets(0.005, 2, 14)),
	}
}

// observeReshare records one ceremony attempt (nil-safe).
func (m *DaemonMetrics) observeReshare(seconds float64, ok bool) {
	if m == nil {
		return
	}
	result := "failed"
	if ok {
		result = "ok"
	}
	m.ReshareAttempts.With(result).Inc()
	m.ReshareDuration.Observe(seconds)
}

// joinAttempt counts one pass through the join choreography (nil-safe).
func (m *DaemonMetrics) joinAttempt() {
	if m == nil {
		return
	}
	m.JoinAttempts.Inc()
}

// observeEmit records one emission iteration; when the iteration absorbed
// batches it is also an inline refill and feeds those series (nil-safe).
func (m *DaemonMetrics) observeEmit(seconds float64, batches int) {
	if m == nil {
		return
	}
	m.EmitLatency.Observe(seconds)
	m.Coins.Inc()
	if batches > 0 {
		m.Refills.Add(int64(batches))
		m.RefillDuration.Observe(seconds)
	}
}

// registerGauges installs the scrape-time position gauges for a daemon.
func (m *DaemonMetrics) registerGauges(d *Daemon) {
	if m == nil || m.reg == nil {
		return
	}
	snap := func(f func(daemonState) float64) func() float64 {
		return func() float64 {
			d.mu.Lock()
			st := d.state
			d.mu.Unlock()
			return f(st)
		}
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	m.reg.GaugeFunc("beacond_round", "Completed-round count of the local node.",
		snap(func(st daemonState) float64 { return float64(st.Round) }))
	m.reg.GaugeFunc("beacond_log_len", "Coins in the public log.",
		snap(func(st daemonState) float64 { return float64(st.LogLen) }))
	m.reg.GaugeFunc("beacond_epoch", "Refill epoch (batches absorbed since the ceremony).",
		snap(func(st daemonState) float64 { return float64(st.Epoch) }))
	m.reg.GaugeFunc("beacond_store_remaining", "Sealed coins left in the store.",
		snap(func(st daemonState) float64 { return float64(st.Remaining) }))
	m.reg.GaugeFunc("beacond_joined", "1 once the daemon has joined the cluster.",
		snap(func(st daemonState) float64 { return b2f(st.Started) }))
	m.reg.GaugeFunc("beacond_refilling", "1 while an inline Coin-Gen is running.",
		snap(func(st daemonState) float64 { return b2f(st.Refilling) }))
	m.reg.GaugeFunc("beacond_generation", "Committee generation (0 = dealt, +1 per reshare).",
		snap(func(st daemonState) float64 { return float64(st.Generation) }))
}
