// Package metrics provides lightweight atomic counters used throughout the
// repository to account for the cost measures the paper states its results
// in: field operations (additions, multiplications, inversions), polynomial
// interpolations, network messages, bytes, and rounds.
//
// Counters are cheap enough to leave enabled permanently; experiments take a
// Snapshot before and after a protocol run and report the Diff.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters aggregates every cost measure tracked by the library. The zero
// value is ready to use. All methods are safe for concurrent use.
type Counters struct {
	fieldAdds      atomic.Int64
	fieldMuls      atomic.Int64
	fieldInvs      atomic.Int64
	interpolations atomic.Int64
	messages       atomic.Int64
	bytes          atomic.Int64
	broadcasts     atomic.Int64
	rounds         atomic.Int64
	domainHits     atomic.Int64
	domainMisses   atomic.Int64
	parallelTasks  atomic.Int64
	parallelWidth  atomic.Int64
}

// AddFieldAdds records n field additions.
func (c *Counters) AddFieldAdds(n int64) { c.fieldAdds.Add(n) }

// AddFieldMuls records n field multiplications.
func (c *Counters) AddFieldMuls(n int64) { c.fieldMuls.Add(n) }

// AddFieldInvs records n field inversions.
func (c *Counters) AddFieldInvs(n int64) { c.fieldInvs.Add(n) }

// AddInterpolations records n polynomial interpolations.
func (c *Counters) AddInterpolations(n int64) { c.interpolations.Add(n) }

// AddMessages records n point-to-point messages.
func (c *Counters) AddMessages(n int64) { c.messages.Add(n) }

// AddBytes records n bytes of communication.
func (c *Counters) AddBytes(n int64) { c.bytes.Add(n) }

// AddBroadcasts records n uses of the ideal broadcast facility.
func (c *Counters) AddBroadcasts(n int64) { c.broadcasts.Add(n) }

// AddRounds records n synchronous communication rounds.
func (c *Counters) AddRounds(n int64) { c.rounds.Add(n) }

// AddDomainHits records n interpolation-domain cache hits (a precomputed
// poly.Domain was reused instead of rebuilt).
func (c *Counters) AddDomainHits(n int64) { c.domainHits.Add(n) }

// AddDomainMisses records n interpolation-domain cache misses (a fresh
// poly.Domain had to be precomputed).
func (c *Counters) AddDomainMisses(n int64) { c.domainMisses.Add(n) }

// AddParallelTasks records n tasks fanned out through a parallel.Pool of
// width > 1 (the serial fast path is not counted).
func (c *Counters) AddParallelTasks(n int64) { c.parallelTasks.Add(n) }

// AddParallelWidth records n extra worker goroutines engaged by a
// parallel.Pool fan-out. Zero added per fan-out means the pool degraded to
// serial execution (no capacity token was free); a positive total proves
// off-goroutine compute actually happened.
func (c *Counters) AddParallelWidth(n int64) { c.parallelWidth.Add(n) }

// Snapshot is an immutable copy of counter values at one instant.
type Snapshot struct {
	FieldAdds      int64
	FieldMuls      int64
	FieldInvs      int64
	Interpolations int64
	Messages       int64
	Bytes          int64
	Broadcasts     int64
	Rounds         int64
	DomainHits     int64
	DomainMisses   int64
	ParallelTasks  int64
	ParallelWidth  int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		FieldAdds:      c.fieldAdds.Load(),
		FieldMuls:      c.fieldMuls.Load(),
		FieldInvs:      c.fieldInvs.Load(),
		Interpolations: c.interpolations.Load(),
		Messages:       c.messages.Load(),
		Bytes:          c.bytes.Load(),
		Broadcasts:     c.broadcasts.Load(),
		Rounds:         c.rounds.Load(),
		DomainHits:     c.domainHits.Load(),
		DomainMisses:   c.domainMisses.Load(),
		ParallelTasks:  c.parallelTasks.Load(),
		ParallelWidth:  c.parallelWidth.Load(),
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.fieldAdds.Store(0)
	c.fieldMuls.Store(0)
	c.fieldInvs.Store(0)
	c.interpolations.Store(0)
	c.messages.Store(0)
	c.bytes.Store(0)
	c.broadcasts.Store(0)
	c.rounds.Store(0)
	c.domainHits.Store(0)
	c.domainMisses.Store(0)
	c.parallelTasks.Store(0)
	c.parallelWidth.Store(0)
}

// Diff returns the per-measure difference new−old.
func Diff(old, new Snapshot) Snapshot {
	return Snapshot{
		FieldAdds:      new.FieldAdds - old.FieldAdds,
		FieldMuls:      new.FieldMuls - old.FieldMuls,
		FieldInvs:      new.FieldInvs - old.FieldInvs,
		Interpolations: new.Interpolations - old.Interpolations,
		Messages:       new.Messages - old.Messages,
		Bytes:          new.Bytes - old.Bytes,
		Broadcasts:     new.Broadcasts - old.Broadcasts,
		Rounds:         new.Rounds - old.Rounds,
		DomainHits:     new.DomainHits - old.DomainHits,
		DomainMisses:   new.DomainMisses - old.DomainMisses,
		ParallelTasks:  new.ParallelTasks - old.ParallelTasks,
		ParallelWidth:  new.ParallelWidth - old.ParallelWidth,
	}
}

// Add returns the member-wise sum s+o, for aggregating per-phase or
// per-run snapshots into a combined cost.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		FieldAdds:      s.FieldAdds + o.FieldAdds,
		FieldMuls:      s.FieldMuls + o.FieldMuls,
		FieldInvs:      s.FieldInvs + o.FieldInvs,
		Interpolations: s.Interpolations + o.Interpolations,
		Messages:       s.Messages + o.Messages,
		Bytes:          s.Bytes + o.Bytes,
		Broadcasts:     s.Broadcasts + o.Broadcasts,
		Rounds:         s.Rounds + o.Rounds,
		DomainHits:     s.DomainHits + o.DomainHits,
		DomainMisses:   s.DomainMisses + o.DomainMisses,
		ParallelTasks:  s.ParallelTasks + o.ParallelTasks,
		ParallelWidth:  s.ParallelWidth + o.ParallelWidth,
	}
}

// PerUnit divides every measure by units, rounding toward zero. It reports
// amortized costs; units must be positive.
func (s Snapshot) PerUnit(units int64) Snapshot {
	if units <= 0 {
		panic("metrics: PerUnit requires positive units")
	}
	return Snapshot{
		FieldAdds:      s.FieldAdds / units,
		FieldMuls:      s.FieldMuls / units,
		FieldInvs:      s.FieldInvs / units,
		Interpolations: s.Interpolations / units,
		Messages:       s.Messages / units,
		Bytes:          s.Bytes / units,
		Broadcasts:     s.Broadcasts / units,
		Rounds:         s.Rounds / units,
		DomainHits:     s.DomainHits / units,
		DomainMisses:   s.DomainMisses / units,
		ParallelTasks:  s.ParallelTasks / units,
		ParallelWidth:  s.ParallelWidth / units,
	}
}

// String renders the snapshot as a single human-readable line.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"adds=%d muls=%d invs=%d interp=%d msgs=%d bytes=%d bcasts=%d rounds=%d dhit=%d dmiss=%d ptasks=%d pwidth=%d",
		s.FieldAdds, s.FieldMuls, s.FieldInvs, s.Interpolations,
		s.Messages, s.Bytes, s.Broadcasts, s.Rounds, s.DomainHits, s.DomainMisses,
		s.ParallelTasks, s.ParallelWidth)
}
