package main

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/bitgen"
	"repro/internal/coin"
	"repro/internal/coingen"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// runE5 — Lemma 6 + Corollary 2: Bit-Gen communication. The paper counts
// nMk + 2n²k bits total for one dealer's M secrets; with all n dealers in
// parallel that is n²Mk + 2n³k... our measured layout: one deal message per
// (dealer, player) pair of (M+1) elements plus one γ-vector message per
// player pair of n(1+⌈k/8⌉) bytes.
func runE5() {
	k := 32
	field := gf2k.MustNew(k)
	elem := field.ByteLen()
	fmt.Printf("GF(2^%d), all n dealers in parallel (as Coin-Gen runs it)\n\n", k)
	fmt.Printf("%4s %4s %6s | %12s %14s %14s | %12s\n",
		"n", "t", "M", "bytes", "bytes/dealer", "per-bit bytes", "predicted")
	for _, tc := range []struct{ n, t, m int }{
		{7, 1, 4}, {7, 1, 16}, {7, 1, 64}, {13, 2, 16}, {19, 3, 16},
	} {
		var ctr metrics.Counters
		cfg := bitgen.Config{Field: field, N: tc.n, T: tc.t, M: tc.m, Counters: &ctr}
		nw := simnet.New(tc.n, simnet.WithCounters(&ctr))
		fns := make([]simnet.PlayerFunc, tc.n)
		for i := 0; i < tc.n; i++ {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(i + tc.n)))
				sh, err := bitgen.DealAll(nd, cfg, rnd)
				if err != nil {
					return nil, err
				}
				return bitgen.ExchangeGammas(nd, cfg, sh, 0x1234)
			}
		}
		for i, r := range simnet.Run(nw, fns) {
			if r.Err != nil {
				panic(fmt.Sprintf("player %d: %v", i, r.Err))
			}
		}
		s := ctr.Snapshot()
		// Predicted: deal n(n−1)(M+1)·elem + γ n(n−1)·n·(1+elem).
		pred := tc.n * (tc.n - 1) * ((tc.m+1)*elem + tc.n*(1+elem))
		bits := tc.n * tc.m * k // sealed bits produced (M k-ary coins per dealer)
		fmt.Printf("%4d %4d %6d | %12d %14.0f %14.2f | %12d\n",
			tc.n, tc.t, tc.m, s.Bytes,
			float64(s.Bytes)/float64(tc.n),
			float64(s.Bytes)/float64(bits),
			pred)
	}
	fmt.Println("\nmeasured bytes match the wire-format prediction exactly; per sealed")
	fmt.Println("bit the cost falls as M grows (Cor 2: amortized n + O(1) per bit).")
}

// coinGenRun executes one Coin-Gen with the given number of crashed players
// and returns (attempts, clique size, seed consumed, unanimous).
func coinGenRun(n, t, m, seedCoins int, crashed map[int]bool, seed int64, ctr *metrics.Counters) (int, int, int, bool) {
	field := gf2k.MustNew(32)
	if ctr != nil {
		field = field.WithCounters(ctr)
	}
	rng := rand.New(rand.NewSource(seed))
	seeds, _, err := coin.DealTrusted(field, n, t, seedCoins, rng)
	if err != nil {
		panic(err)
	}
	var opts []simnet.Option
	if ctr != nil {
		opts = append(opts, simnet.WithCounters(ctr))
	}
	nw := simnet.New(n, opts...)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		if crashed[i] {
			fns[i] = adversary.Crash()
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			cfg := coingen.Config{Field: field, N: n, T: t, M: m, Seed: seeds[i], Counters: ctr}
			rnd := rand.New(rand.NewSource(seed + int64(i)))
			res, err := coingen.Run(nd, cfg, rnd)
			if err != nil {
				return nil, err
			}
			coins := make([]gf2k.Element, 0, m)
			for res.Batch.Remaining() > 0 {
				c, err := res.Batch.Expose(nd)
				if err != nil {
					return nil, err
				}
				coins = append(coins, c)
			}
			return struct {
				Res   *coingen.Result
				Coins []gf2k.Element
			}{res, coins}, nil
		}
	}
	results := simnet.Run(nw, fns)
	type outT = struct {
		Res   *coingen.Result
		Coins []gf2k.Element
	}
	var ref *outT
	unanimous := true
	attempts, cliqueSize, consumed := 0, 0, 0
	for i, r := range results {
		if crashed[i] {
			continue
		}
		if r.Err != nil {
			panic(fmt.Sprintf("player %d: %v", i, r.Err))
		}
		o := r.Value.(outT)
		if ref == nil {
			ref = &o
			attempts = o.Res.Attempts
			cliqueSize = len(o.Res.Clique)
			consumed = o.Res.SeedConsumed
			continue
		}
		for h := range ref.Coins {
			if o.Coins[h] != ref.Coins[h] {
				unanimous = false
			}
		}
	}
	return attempts, cliqueSize, consumed, unanimous
}

// runE6 — Lemma 7: the agreed clique has ≥ n−2t members and is identical at
// every honest player; coins reconstruct unanimously even with t crashed
// players.
func runE6() {
	fmt.Printf("Coin-Gen with t crashed players, 20 trials per configuration\n\n")
	fmt.Printf("%4s %4s | %12s %10s %12s %10s\n", "n", "t", "min clique", "bound", "unanimous", "verdict")
	for _, tc := range []struct{ n, t int }{{7, 1}, {13, 2}, {19, 3}} {
		minClique := tc.n
		allUnanimous := true
		for trial := 0; trial < 20; trial++ {
			crashed := map[int]bool{}
			for c := 0; c < tc.t; c++ {
				crashed[(trial+c*3)%tc.n] = true
			}
			_, cs, _, unan := coinGenRun(tc.n, tc.t, 2, 10, crashed, int64(trial*97+tc.n), nil)
			if cs < minClique {
				minClique = cs
			}
			allUnanimous = allUnanimous && unan
		}
		bound := tc.n - 2*tc.t
		verdict := "PASS"
		if minClique < bound || !allUnanimous {
			verdict = "FAIL"
		}
		fmt.Printf("%4d %4d | %12d %10d %12v %10s\n", tc.n, tc.t, minClique, bound, allUnanimous, verdict)
	}
}

// runE7 — Lemma 8: Coin-Gen re-runs BA only when the drawn leader is
// faulty; the iteration count is geometric with success ≥ 1 − t/n.
func runE7() {
	n, t := 7, 1
	fmt.Printf("n=%d, t=%d, one crashed player (always fails as leader), 200 trials\n\n", n, t)
	hist := map[int]int{}
	total := 0
	for trial := 0; trial < 200; trial++ {
		crashed := map[int]bool{trial % n: true}
		attempts, _, _, _ := coinGenRun(n, t, 1, 12, crashed, int64(trial*131), nil)
		hist[attempts]++
		total += attempts
	}
	fmt.Printf("%10s %10s %14s %14s\n", "attempts", "runs", "measured", "geometric")
	for a := 1; a <= 5; a++ {
		p := float64(hist[a]) / 200
		pred := (float64(t) / float64(n))
		geo := (1 - pred)
		for i := 1; i < a; i++ {
			geo *= pred
		}
		fmt.Printf("%10d %10d %13.1f%% %13.1f%%\n", a, hist[a], p*100, geo*100)
	}
	mean := float64(total) / 200
	fmt.Printf("\nmean attempts: %.3f (expectation ≤ 1/(1−t/n) = %.3f) — %s\n",
		mean, 1/(1-float64(t)/float64(n)), pass(mean <= 1.3/(1-float64(t)/float64(n))))
}

// runE8 — Theorem 2 + Corollary 3: amortized per-coin cost of Coin-Gen
// falls toward the M-independent floor as the batch grows.
func runE8() {
	fmt.Printf("Coin-Gen total cost vs batch size (n=7, t=1, k=32, all honest)\n\n")
	fmt.Printf("%6s | %12s %14s %14s %14s\n", "M", "bytes", "bytes/coin", "msgs/coin", "interp/coin")
	for _, m := range []int{4, 16, 64, 256, 1024} {
		var ctr metrics.Counters
		_, _, _, unan := coinGenRun(7, 1, m, 8, nil, int64(m), &ctr)
		if !unan {
			fmt.Printf("%6d  UNANIMITY FAILURE\n", m)
			continue
		}
		s := ctr.Snapshot()
		fmt.Printf("%6d | %12d %14.1f %14.2f %14.3f\n",
			m, s.Bytes,
			float64(s.Bytes)/float64(m),
			float64(s.Messages)/float64(m),
			float64(s.Interpolations)/float64(m))
	}
	fmt.Println("\nper-coin cost approaches the floor set by dealing (n²k bits) plus the")
	fmt.Println("per-coin exposure interpolation, which Cor 3 notes 'can not be")
	fmt.Println("amortized'. Fixed costs (grade-cast, clique, BA) vanish with M.")
}

func pass(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
