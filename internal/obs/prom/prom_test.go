package prom

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", got)
	}
	g.SetInt(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestVecChildrenAreCachedAndShared(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hits_total", "Hits.", "peer")
	a1 := v.With("1")
	a2 := v.With("1")
	if a1 != a2 {
		t.Fatal("With should return the same child for the same labels")
	}
	a1.Inc()
	if a2.Value() != 1 {
		t.Fatal("children with identical labels must share state")
	}
	// Re-registering the same family returns the same children.
	v2 := r.CounterVec("hits_total", "Hits.", "peer")
	if v2.With("1") != a1 {
		t.Fatal("re-registered family must share children")
	}
}

func TestReRegisterShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	r.Gauge("m", "")
}

// TestHistogramBucketBoundaries pins the le-inclusive semantics: an
// observation exactly on a bucket's upper bound lands in that bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.1, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// buckets: ≤1 gets {0.5, 1}; ≤2 adds {1.0000001, 2}; ≤5 adds {5}; +Inf adds {5.1, 100}
	want := []uint64{2, 4, 5, 7}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 5 + 5.1 + 100
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
}

func TestHistogramBelowFirstAndNegative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2})
	h.Observe(-3)
	h.Observe(0)
	cum, _, _ := h.snapshot()
	if cum[0] != 2 {
		t.Fatalf("cum[0] = %d, want 2 (values below first bound land in it)", cum[0])
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.HistogramVec("h", "", []float64{0.25, 0.5, 0.75}, "w")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := h.With("x")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				child.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	// Scrape concurrently with observation; only checks it doesn't race/panic.
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	child := h.With("x")
	cum, count, _ := child.snapshot()
	if count != workers*per {
		t.Fatalf("hist count = %d, want %d", count, workers*per)
	}
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf cum = %d, want %d", cum[len(cum)-1], count)
	}
}

// TestGoldenExposition pins the exact text-exposition output.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("beacon_draws_total", "Total coin draws served.")
	c.Add(42)
	lag := r.GaugeVec("simnet_peer_watermark_lag", "Rounds behind the lead peer.", "peer")
	lag.With("1").Set(0)
	lag.With("2").Set(3)
	h := r.Histogram("beacon_draw_latency_seconds", "Draw latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(2)
	r.GaugeFunc("beacond_round", "Current round.", func() float64 { return 17 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP beacon_draws_total Total coin draws served.
# TYPE beacon_draws_total counter
beacon_draws_total 42
# HELP simnet_peer_watermark_lag Rounds behind the lead peer.
# TYPE simnet_peer_watermark_lag gauge
simnet_peer_watermark_lag{peer="1"} 0
simnet_peer_watermark_lag{peer="2"} 3
# HELP beacon_draw_latency_seconds Draw latency.
# TYPE beacon_draw_latency_seconds histogram
beacon_draw_latency_seconds_bucket{le="0.001"} 1
beacon_draw_latency_seconds_bucket{le="0.01"} 2
beacon_draw_latency_seconds_bucket{le="+Inf"} 3
beacon_draw_latency_seconds_sum 2.0055
beacon_draw_latency_seconds_count 3
# HELP beacond_round Current round.
# TYPE beacond_round gauge
beacond_round 17
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	samples, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := Value(samples, "x_total"); !ok || v != 1 {
		t.Fatalf("x_total = %v, %v", v, ok)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("a_total", "", "p", "q").With(`we"ird`, `ba\ck`).Add(9)
	r.Gauge("g", "").Set(-2.25)
	h := r.Histogram("h", "", []float64{0.5})
	h.Observe(0.1)
	h.Observe(0.9)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\nexposition:\n%s", err, sb.String())
	}
	if v, ok := Value(samples, "a_total", "p", `we"ird`, "q", `ba\ck`); !ok || v != 9 {
		t.Fatalf("a_total = %v, %v", v, ok)
	}
	if v, ok := Value(samples, "g"); !ok || v != -2.25 {
		t.Fatalf("g = %v, %v", v, ok)
	}
	if v, ok := Value(samples, "h_bucket", "le", "+Inf"); !ok || v != 2 {
		t.Fatalf("h +Inf bucket = %v, %v", v, ok)
	}
	if v, ok := Value(samples, "h_count"); !ok || v != 2 {
		t.Fatalf("h_count = %v, %v", v, ok)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		`m{a="x" 3` + "\n",
		`m{a=x} 3` + "\n",
		"m notanumber\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.1, 0.2, 0.4, 0.8})
	// 100 observations uniform in [0, 0.4): 25 per ≤0.1/≤0.2 band...
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 250) // 0 .. 0.396
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	p50 := Quantile(samples, "lat", 0.5)
	if p50 < 0.15 || p50 > 0.25 {
		t.Fatalf("p50 = %v, want ≈0.2", p50)
	}
	p99 := Quantile(samples, "lat", 0.99)
	if p99 < 0.3 || p99 > 0.4 {
		t.Fatalf("p99 = %v, want ≈0.4", p99)
	}
	if !math.IsNaN(Quantile(samples, "absent", 0.5)) {
		t.Fatal("Quantile of absent histogram should be NaN")
	}
}

// TestNilSafety: every handle and the registry itself must be no-ops when
// nil — this is the disabled path protocol code relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := r.Gauge("b", "")
	g.Set(1)
	g.Add(1)
	g.SetInt(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := r.Histogram("c", "", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	r.GaugeFunc("d", "", func() float64 { return 1 })
	var cv *CounterVec
	cv.With("x").Inc()
	var gv *GaugeVec
	gv.With("x").Set(1)
	var hv *HistogramVec
	hv.With("x").Observe(1)
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("nil registry handler status = %d", resp.StatusCode)
	}
}

// TestZeroAllocDisabledPath pins the nil path at zero allocations — the
// draw hot path must not pay for metrics it doesn't emit.
func TestZeroAllocDisabledPath(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.1)
	}); n != 0 {
		t.Fatalf("nil handles allocated %v per op", n)
	}
}

// TestZeroAllocLivePath pins the enabled hot path too: Observe/Inc/Set on
// resolved handles must not allocate.
func TestZeroAllocLivePath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DefBuckets)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.004)
	}); n != 0 {
		t.Fatalf("live handles allocated %v per op", n)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	e := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(e[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, e[i], want[i])
		}
	}
	l := LinearBuckets(1, 2, 3)
	if l[0] != 1 || l[1] != 3 || l[2] != 5 {
		t.Fatalf("LinearBuckets = %v", l)
	}
}

func TestEmptyFamilyOmitted(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("never_used_total", "x", "l") // no children created
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("family with no children leaked into exposition:\n%s", sb.String())
	}
}
