package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"reflect"

	"repro/internal/coin"
	"repro/internal/coingen"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// runE15 — Thm 2 phase breakdown: one traced Coin-Gen run, with every cost
// measure attributed to the paper-figure phase that incurred it. The same
// trace is exported as JSONL and parsed back to demonstrate the round-trip
// property the obs layer guarantees.
func runE15() {
	n, t, m := 7, 1, 16
	field := gf2k.MustNew(32)
	var ctr metrics.Counters
	field = field.WithCounters(&ctr)

	ring := obs.NewRing(0)
	var traceBuf bytes.Buffer
	jsonl := obs.NewJSONL(&traceBuf)
	tracer := obs.New(&ctr, ring, jsonl)

	rng := rand.New(rand.NewSource(151))
	seeds, _, err := coin.DealTrusted(field, n, t, 10, rng)
	if err != nil {
		panic(err)
	}
	nw := simnet.New(n, simnet.WithCounters(&ctr), simnet.WithTracer(tracer))
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			cfg := coingen.Config{Field: field, N: n, T: t, M: m, Seed: seeds[i], Counters: &ctr}
			rnd := rand.New(rand.NewSource(151 + int64(i)))
			res, err := coingen.Run(nd, cfg, rnd)
			if err != nil {
				return nil, err
			}
			for res.Batch.Remaining() > 0 {
				if _, err := res.Batch.Expose(nd); err != nil {
					return nil, err
				}
			}
			return res, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			panic(fmt.Sprintf("player %d: %v", i, r.Err))
		}
	}
	if err := jsonl.Flush(); err != nil {
		panic(err)
	}
	events := ring.Events()

	fmt.Printf("one Coin-Gen run, n=%d t=%d M=%d, GF(2^32), all honest; every\n", n, t, m)
	fmt.Printf("span below is player 0's view. Counters are process-global and the\n")
	fmt.Printf("lockstep keeps all players in the same phase, so each span carries\n")
	fmt.Printf("the TOTAL cost of its phase across all %d players; rounds are exact.\n\n", n)

	fmt.Printf("full span hierarchy:\n\n")
	obs.WritePhaseTable(os.Stdout, obs.PhaseSummary(events, 0))

	fmt.Printf("\npaper-figure phases (aggregated leaf spans):\n\n")
	agg := obs.AggregatePhases(events, 0, map[string]string{
		"bitgen/deal":    "Batch-VSS deal (Fig 4 step 1)",
		"bitgen/gamma":   "challenge verification (Fig 4 steps 3-5)",
		"coingen/clique": "consistency graph + clique (Fig 5 steps 4-5)",
		"gradecast":      "Grade-Cast (Fig 3)",
		"ba/phase-king":  "Byzantine agreement (Fig 5 step 10)",
		"coin-expose":    "Coin-Expose (Fig 6)",
	})
	obs.WritePhaseTable(os.Stdout, agg)

	// Round-trip check: the JSONL export must parse back into the identical
	// event sequence the ring recorded.
	parsed, err := obs.ParseJSONL(&traceBuf)
	if err != nil {
		panic(fmt.Sprintf("JSONL parse: %v", err))
	}
	fmt.Printf("\nJSONL round-trip: %d events exported, %d parsed back, identical: %s\n",
		len(events), len(parsed), pass(reflect.DeepEqual(events, parsed)))

	fmt.Println("\nthe fixed costs (deal, verification, grade-cast, BA) dominate this")
	fmt.Println("small batch; Coin-Expose is the only per-coin term (Cor 3), and the")
	fmt.Println("rounds column reproduces the paper's round budget: 1 deal + 1 expose +")
	fmt.Println("1 gamma + 3 grade-cast + (1 leader + 2(t+1) BA) per attempt + M expose.")
}
