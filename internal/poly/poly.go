// Package poly implements univariate polynomial arithmetic over GF(2^k):
// Horner evaluation, Lagrange interpolation (full coefficients and
// value-at-zero), random polynomial sampling and degree checks. These are the
// "basic steps" of the paper's protocols (§2: "In some parts we consider the
// interpolation of a polynomial as a basic step").
//
// Two interpolation paths exist. The package-level Interpolate,
// InterpolateAt0 and FitsDegree recompute the Lagrange denominators — n
// field inversions — on every call; they are the reference implementation
// and the right choice for one-off point sets. The Domain type precomputes
// the Lagrange basis for a fixed point set once (a single Montgomery batch
// inversion) and then serves every later call with zero inversions;
// DomainFor adds a process-wide keyed cache. The protocol hot path
// (internal/bw, and through it vss, bitgen, coingen, coin) interpolates
// over the fixed player IDs 1..n every round and uses the cached path.
//
// Every function documents its cost in the units internal/metrics tracks:
// field multiplications/additions/inversions and "interpolations" (the
// paper's basic-step unit).
package poly

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/gf2k"
	"repro/internal/metrics"
)

// Poly is a polynomial over GF(2^k); Poly[i] is the coefficient of x^i.
// Trailing zero coefficients are permitted; Degree ignores them.
type Poly []gf2k.Element

// ErrDuplicatePoint is returned when interpolation points share an x value.
var ErrDuplicatePoint = errors.New("poly: duplicate interpolation point")

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Clone returns a copy of p.
func (p Poly) Clone() Poly {
	out := make(Poly, len(p))
	copy(out, p)
	return out
}

// Eval returns p(x) by Horner's rule. Cost: deg(p) multiplications and
// additions.
func Eval(f gf2k.Field, p Poly, x gf2k.Element) gf2k.Element {
	var acc gf2k.Element
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}

// EvalMany evaluates p at each of the given points. Cost: len(xs)·deg(p)
// multiplications and additions.
func EvalMany(f gf2k.Field, p Poly, xs []gf2k.Element) []gf2k.Element {
	out := make([]gf2k.Element, len(xs))
	for i, x := range xs {
		out[i] = Eval(f, p, x)
	}
	return out
}

// Random returns a uniformly random polynomial of degree at most deg with
// p(0) = secret, sampled from r. This is a Shamir sharing polynomial.
// Cost: deg field-element reads from r; no field operations.
func Random(f gf2k.Field, deg int, secret gf2k.Element, r io.Reader) (Poly, error) {
	if deg < 0 {
		return nil, fmt.Errorf("poly: negative degree %d", deg)
	}
	p := make(Poly, deg+1)
	p[0] = secret
	for i := 1; i <= deg; i++ {
		c, err := f.Rand(r)
		if err != nil {
			return nil, err
		}
		p[i] = c
	}
	return p, nil
}

// Add returns p+q.
func Add(f gf2k.Field, p, q Poly) Poly {
	n := max(len(p), len(q))
	out := make(Poly, n)
	for i := range out {
		var a, b gf2k.Element
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		out[i] = f.Add(a, b)
	}
	return out
}

// ScalarMul returns c·p.
func ScalarMul(f gf2k.Field, c gf2k.Element, p Poly) Poly {
	out := make(Poly, len(p))
	for i := range p {
		out[i] = f.Mul(c, p[i])
	}
	return out
}

// Mul returns p·q (schoolbook; both inputs are short in this codebase).
func Mul(f gf2k.Field, p, q Poly) Poly {
	if p.Degree() < 0 || q.Degree() < 0 {
		return Poly{}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] = f.Add(out[i+j], f.Mul(a, b))
		}
	}
	return out
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through the points (xs[i], ys[i]). The xs must be pairwise distinct.
//
// If counters are attached to the field, the call is additionally recorded
// as one "interpolation" — the unit in which the paper counts the dominant
// protocol cost.
//
// Cost: O(n²) multiplications/additions and n inversions, n = len(xs). For
// repeated interpolation over one point set, Domain.Interpolate performs
// the same O(n²) multiplications but NO per-call inversions.
func Interpolate(f gf2k.Field, xs, ys []gf2k.Element, ctr *metrics.Counters) (Poly, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("poly: interpolate: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return Poly{}, nil
	}
	if ctr != nil {
		ctr.AddInterpolations(1)
	}
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] == xs[j] {
				return nil, fmt.Errorf("%w: x=%#x", ErrDuplicatePoint, xs[i])
			}
		}
	}
	// Master polynomial N(x) = Π (x + x_i); char 2, so x − x_i = x + x_i.
	master := Poly{1}
	for _, x := range xs {
		master = Mul(f, master, Poly{x, 1})
	}
	out := make(Poly, len(xs))
	for i := range xs {
		// L_i(x) = N(x)/(x + x_i), scaled so L_i(x_i) = 1, times y_i.
		li := synthDiv(f, master, xs[i])
		denom := Eval(f, li, xs[i])
		scale := f.Div(ys[i], denom)
		for j := range li {
			out[j] = f.Add(out[j], f.Mul(scale, li[j]))
		}
	}
	return out, nil
}

// InterpolateAt0 returns the value at zero of the unique degree-<len(xs)
// polynomial through the points, using Lagrange weights directly (cheaper
// than recovering all coefficients when only the secret is needed).
//
// Cost: O(n²) multiplications and n inversions, n = len(xs). For repeated
// reconstruction over one point set, Domain.InterpolateAt0 costs n
// multiplications and no inversions per call.
func InterpolateAt0(f gf2k.Field, xs, ys []gf2k.Element, ctr *metrics.Counters) (gf2k.Element, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("poly: interpolateAt0: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, errors.New("poly: interpolateAt0: no points")
	}
	if ctr != nil {
		ctr.AddInterpolations(1)
	}
	var acc gf2k.Element
	for i := range xs {
		num, den := gf2k.Element(1), gf2k.Element(1)
		for j := range xs {
			if j == i {
				continue
			}
			if xs[i] == xs[j] {
				return 0, fmt.Errorf("%w: x=%#x", ErrDuplicatePoint, xs[i])
			}
			num = f.Mul(num, xs[j])               // (0 + x_j)
			den = f.Mul(den, f.Add(xs[i], xs[j])) // (x_i + x_j)
		}
		acc = f.Add(acc, f.Mul(ys[i], f.Div(num, den)))
	}
	return acc, nil
}

// FitsDegree reports whether the points (xs, ys) all lie on a polynomial of
// degree ≤ maxDeg. It interpolates through the first maxDeg+1 points and
// checks the remainder — the paper's §3.1 "basic solution" to degree
// checking. Cost: one Interpolate over maxDeg+1 points (including its
// maxDeg+1 inversions; Domain.FitsDegree avoids them) plus
// (len(xs)−maxDeg−1)·(maxDeg+1) multiplications of checking.
func FitsDegree(f gf2k.Field, xs, ys []gf2k.Element, maxDeg int, ctr *metrics.Counters) (bool, error) {
	if len(xs) != len(ys) {
		return false, fmt.Errorf("poly: fitsDegree: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) <= maxDeg+1 {
		return true, nil
	}
	p, err := Interpolate(f, xs[:maxDeg+1], ys[:maxDeg+1], ctr)
	if err != nil {
		return false, err
	}
	for i := maxDeg + 1; i < len(xs); i++ {
		if Eval(f, p, xs[i]) != ys[i] {
			return false, nil
		}
	}
	return true, nil
}

// synthDiv divides p by (x + root), assuming the division is exact
// (root is a root of p's factorization as used by Interpolate).
func synthDiv(f gf2k.Field, p Poly, root gf2k.Element) Poly {
	out := make(Poly, len(p)-1)
	carry := gf2k.Element(0)
	for i := len(p) - 1; i >= 1; i-- {
		carry = f.Add(p[i], f.Mul(carry, root))
		out[i-1] = carry
	}
	return out
}
