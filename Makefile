# Developer entry points. `make check` is the gate every PR must pass:
# build, vet, and the full test suite with the race detector on (the simnet
# lockstep runs one goroutine per player, so -race exercises real
# cross-goroutine traffic, including the shared interpolation-domain cache).

GO ?= go

.PHONY: check build vet test race bench experiments

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments -exp all
