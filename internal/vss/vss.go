// Package vss implements the paper's §3 protocols in the broadcast-channel
// model with n ≥ 3t+1: Protocol VSS (Fig. 2, single secret) and Protocol
// Batch-VSS (Fig. 3, M secrets verified with one coin and one
// interpolation).
//
// A verification ceremony has three phases, each in lockstep across players:
//
//  1. Deal — the dealer distributes, point-to-point, each player's shares of
//     the M secret polynomials plus one random masking polynomial g
//     (Fig. 2 step 1). One round.
//  2. A fresh shared coin r is exposed (Fig. 2/3 step "r ←
//     Coin-Expose(k-ary-coin)"). The coin must be sealed until after the
//     dealing: a dealer who knew r in advance could cheat (Lemma 1's 1/p
//     bound is exactly the chance of guessing the needed coefficient).
//  3. Verify — every player broadcasts δ_i = γ_i + Σ_j r^j·α_ij (Horner
//     form, Fig. 3 step 2) and accepts iff some polynomial of degree ≤ t
//     agrees with at least n−t of the broadcast values. Decisions are
//     unanimous because they are a deterministic function of broadcasts.
//
// The masking share γ keeps the secrets perfectly hidden even though δ is
// published: δ reveals only the masked combination. Fig. 2 includes the
// mask explicitly; the extended abstract's Fig. 3 elides it, and we carry it
// in the batch case too so that Batch-VSS's "maintaining the values secret"
// requirement holds verbatim (one extra polynomial, amortized away).
//
// Soundness matches Lemma 1 / Lemma 3: a dealer whose sharing does not have
// degree ≤ t passes with probability at most 1/p (single) or M/p (batch)
// over the choice of r.
//
// # Cost
//
// Per ceremony and player, independent of M: one polynomial interpolation
// (inside bw.Decode's fast path, over a cached poly.Domain — zero field
// inversions in steady state), O(M) multiplications for the Horner
// combination δ, and the coin-exposure interpolation. This is the
// amortization Lemma 4 claims: the M-secret batch costs what a single
// verification costs, plus O(M) cheap multiply-adds. internal/metrics
// counts all of it (field ops, interpolations, domain cache hits/misses,
// messages, bytes, rounds).
package vss

import (
	"fmt"
	"io"

	"repro/internal/bw"
	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// Config carries the common parameters of a VSS ceremony.
type Config struct {
	// Field is GF(2^k).
	Field gf2k.Field
	// N is the number of players; T the fault bound. N ≥ 3T+1.
	N, T int
	// Coins supplies the sealed challenge coins.
	Coins coin.Source
	// Counters, when non-nil, records protocol costs.
	Counters *metrics.Counters
	// Pool, when non-nil, fans the pure-compute inner loops (per-player
	// share evaluation in Deal, the Horner combination, the Berlekamp–Welch
	// scans) out across idle cores. Verdicts and transcripts are identical
	// at every width; a nil pool runs everything inline.
	Pool *parallel.Pool
}

// Validate checks the resilience precondition n ≥ 3t+1.
func (c Config) Validate() error {
	if c.N < 3*c.T+1 {
		return fmt.Errorf("vss: need n ≥ 3t+1, got n=%d t=%d", c.N, c.T)
	}
	if c.T < 0 {
		return fmt.Errorf("vss: negative fault bound %d", c.T)
	}
	return nil
}

// Instance is one player's state for a dealt batch of secrets awaiting
// verification or reconstruction.
type Instance struct {
	cfg    Config
	dealer int
	// Shares[j] is this player's share α_i of secret j (0-based), 0 ≤ j < M.
	Shares []gf2k.Element
	// MaskShare is the share γ_i of the dealer's masking polynomial g.
	MaskShare gf2k.Element
	// Polys holds the dealer's polynomials (mask last); nil at non-dealers.
	Polys []poly.Poly

	// received reports whether this player actually obtained well-formed
	// shares from the dealer. Players without shares broadcast a complaint
	// during Verify instead of a δ value; more than t complaints reject the
	// dealer (otherwise a totally silent dealer would be "verified" by the
	// all-zero combination).
	received bool
}

// M returns the number of secrets in the batch.
func (inst *Instance) M() int { return len(inst.Shares) }

// NewInstance assembles an Instance from externally obtained shares. It is
// the hook for adversarial harnesses (a cheating dealer fabricates share
// vectors without going through Deal) and for protocols that perform their
// own dealing round.
func NewInstance(cfg Config, dealer int, shares []gf2k.Element, maskShare gf2k.Element) *Instance {
	return &Instance{cfg: cfg, dealer: dealer, Shares: shares, MaskShare: maskShare, received: true}
}

// Deal distributes M secrets from the dealer: the dealer draws a random
// degree-≤t polynomial per secret plus a random masking polynomial, and
// sends each player its evaluation points in one message. Every player
// (dealer included) must call Deal in the same round; non-dealers pass
// secrets = nil. Consumes one round.
func Deal(nd *simnet.Node, cfg Config, dealer int, secrets []gf2k.Element, rnd io.Reader) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "vss/deal")
	defer func() { sp.End(nd.Round()) }()
	if nd.N() != cfg.N {
		return nil, fmt.Errorf("vss: network size %d != configured %d", nd.N(), cfg.N)
	}
	if dealer < 0 || dealer >= cfg.N {
		return nil, fmt.Errorf("vss: invalid dealer %d", dealer)
	}
	inst := &Instance{cfg: cfg, dealer: dealer}

	if nd.Index() == dealer {
		m := len(secrets)
		polys := make([]poly.Poly, m+1)
		for j, s := range secrets {
			p, err := poly.Random(cfg.Field, cfg.T, s, rnd)
			if err != nil {
				return nil, err
			}
			polys[j] = p
		}
		maskSecret, err := cfg.Field.Rand(rnd)
		if err != nil {
			return nil, err
		}
		mask, err := poly.Random(cfg.Field, cfg.T, maskSecret, rnd)
		if err != nil {
			return nil, err
		}
		polys[m] = mask
		inst.Polys = polys

		// Evaluate every player's share vector first — (m+1)·n pure Horner
		// evaluations, fanned out per player — then send on the node
		// goroutine in index order so the traffic schedule is identical at
		// every pool width.
		ids := make([]gf2k.Element, cfg.N)
		for i := 0; i < cfg.N; i++ {
			id, err := cfg.Field.ElementFromID(i + 1)
			if err != nil {
				return nil, err
			}
			ids[i] = id
		}
		bufs := parallel.Map(cfg.Pool, cfg.N, func(i int) []byte {
			buf := make([]byte, 0, (m+1)*cfg.Field.ByteLen())
			for _, p := range polys {
				buf = cfg.Field.AppendElement(buf, poly.Eval(cfg.Field, p, ids[i]))
			}
			return buf
		})
		for i := 0; i < cfg.N; i++ {
			if i == dealer {
				// Keep own shares locally.
				inst.Shares = make([]gf2k.Element, m)
				for j := 0; j < m; j++ {
					inst.Shares[j] = poly.Eval(cfg.Field, polys[j], ids[i])
				}
				inst.MaskShare = poly.Eval(cfg.Field, mask, ids[i])
				inst.received = true
				continue
			}
			nd.Send(i, bufs[i])
		}
	}

	msgs, err := nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("vss: deal round: %w", err)
	}
	if nd.Index() != dealer {
		payload, ok := simnet.FirstFromEach(msgs)[dealer]
		if ok {
			elemSize := cfg.Field.ByteLen()
			if len(payload) >= elemSize && len(payload)%elemSize == 0 {
				count := len(payload)/elemSize - 1
				shares, rest, err := cfg.Field.ReadElements(payload, count)
				if err == nil {
					maskShare, _, err2 := cfg.Field.ReadElement(rest)
					if err2 == nil {
						inst.Shares = shares
						inst.MaskShare = maskShare
						inst.received = true
					}
				}
			}
		}
		// A silent or malformed dealer leaves received=false; Verify will
		// broadcast a complaint on this player's behalf.
	}
	return inst, nil
}

// Verify runs the batch degree check: expose a fresh coin r, broadcast the
// masked Horner combination δ_i, and accept iff a polynomial of degree ≤ t
// agrees with ≥ n−t of the broadcasts. Consumes the coin-expose rounds plus
// one broadcast round. All honest players return the same verdict.
//
// Cost per player: M+1 multiplications for δ, then one Berlekamp–Welch
// decode — a single interpolation (cached domain, zero inversions in
// steady state) when all broadcasts are consistent, plus a Gaussian
// elimination only when some are not.
func (inst *Instance) Verify(nd *simnet.Node) (bool, error) {
	cfg := inst.cfg
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "vss/verify")
	defer func() { sp.End(nd.Round()) }()
	r, err := cfg.Coins.Expose(nd)
	if err != nil {
		return false, fmt.Errorf("vss: expose challenge: %w", err)
	}
	return inst.verifyWithChallenge(nd, r)
}

// verifyWithChallenge is Verify with an explicit challenge, used by Bit-Gen
// style callers that reuse one coin across many instances and by tests.
func (inst *Instance) verifyWithChallenge(nd *simnet.Node, r gf2k.Element) (bool, error) {
	cfg := inst.cfg
	if inst.received {
		delta := inst.combination(r)
		nd.Broadcast(append([]byte{WireDelta}, cfg.Field.AppendElement(nil, delta)...))
	} else {
		nd.Broadcast([]byte{WireComplaint})
	}
	msgs, err := nd.EndRound()
	if err != nil {
		return false, fmt.Errorf("vss: broadcast round: %w", err)
	}

	// Tally broadcasts. Anything that is not a well-formed δ — an explicit
	// complaint, a malformed message, or silence — counts as a complaint;
	// only faulty players (or victims of a faulty dealer) produce them.
	// Players are scanned in index order so the interpolation point
	// sequence is deterministic: every round with the same respondent set
	// reuses the same cached poly.Domain inside bw.Decode.
	first := simnet.FirstFromEach(msgs)
	var xs, ys []gf2k.Element
	for from := 0; from < cfg.N; from++ {
		payload, ok := first[from]
		if !ok || len(payload) == 0 || payload[0] != WireDelta {
			continue
		}
		v, rest, err := cfg.Field.ReadElement(payload[1:])
		if err != nil || len(rest) != 0 {
			continue
		}
		id, err := cfg.Field.ElementFromID(from + 1)
		if err != nil {
			continue
		}
		xs = append(xs, id)
		ys = append(ys, v)
	}
	complaints := cfg.N - len(xs)
	if complaints > cfg.T {
		// More than t players claim not to hold shares: the dealer must be
		// faulty (an honest dealer reaches all n−t honest players).
		nd.Tracer().DealerDisqualified(nd.Index(), inst.dealer, nd.Round())
		return false, nil
	}
	// Up to t faulty players total; `complaints` of them are already
	// accounted for, so at most t−complaints broadcast δ values can lie.
	budget := cfg.T - complaints
	_, err = bw.DecodeWith(cfg.Field, xs, ys, cfg.T, budget, cfg.Counters, cfg.Pool)
	if err != nil {
		nd.Tracer().DealerDisqualified(nd.Index(), inst.dealer, nd.Round())
		return false, nil // includes bw.ErrNoCodeword: reject
	}
	return true, nil
}

// Wire flags for the verification broadcast, exported so adversarial
// harnesses (internal/adversary, internal/conformance) can speak — and
// deliberately abuse — the protocol's wire format.
const (
	// WireDelta prefixes a well-formed δ broadcast: the flag byte followed
	// by exactly one field element.
	WireDelta = 0x00
	// WireComplaint is the share-less complaint broadcast ("I never
	// received shares from the dealer").
	WireComplaint = 0x01
)

// combChunk is the fixed number of shares one partial-Horner task covers.
// The chunked algorithm is selected by M alone — never by pool width — so
// the field-op count (and every cost-annotated span) is identical whether
// the chunks run serially or fan out.
const combChunk = 64

// combination computes δ_i = γ_i + Σ_{j=1..M} r^j·α_i,j in Horner form
// (Fig. 3 step 2). Missing shares (silent dealer) contribute zero. Large
// batches split into fixed-size chunks: each chunk computes its partial
// Horner sum S_c = Σ α_{lo+k}·r^k independently, and the partials combine
// as one outer Horner pass over r^combChunk in chunk order.
func (inst *Instance) combination(r gf2k.Element) gf2k.Element {
	f := inst.cfg.Field
	m := len(inst.Shares)
	chunks := parallel.Chunks(m, combChunk)
	if chunks <= 1 {
		var acc gf2k.Element
		for j := m - 1; j >= 0; j-- {
			acc = f.Mul(f.Add(acc, inst.Shares[j]), r)
		}
		return f.Add(acc, inst.MaskShare)
	}
	partial := make([]gf2k.Element, chunks)
	inst.cfg.Pool.ForEach(chunks, func(c int) {
		lo, hi := c*combChunk, (c+1)*combChunk
		if hi > m {
			hi = m
		}
		var s gf2k.Element
		for j := hi - 1; j >= lo; j-- {
			s = f.Add(f.Mul(s, r), inst.Shares[j])
		}
		partial[c] = s
	})
	// rStride = r^combChunk advances the outer Horner pass one chunk.
	rStride := gf2k.Element(1)
	for i := 0; i < combChunk; i++ {
		rStride = f.Mul(rStride, r)
	}
	var s gf2k.Element
	for c := chunks - 1; c >= 0; c-- {
		s = f.Add(f.Mul(s, rStride), partial[c])
	}
	// δ − γ = r·S with S = Σ_j α_j·r^j.
	return f.Add(f.Mul(s, r), inst.MaskShare)
}

// Reconstruct publicly opens secret j: every player broadcasts its share and
// decodes the value at zero through Berlekamp–Welch. Consumes one round.
// Fault-free cost per player: one interpolation over the cached t+1-point
// domain plus n·(t+1) multiplications of agreement checking.
func (inst *Instance) Reconstruct(nd *simnet.Node, j int) (gf2k.Element, error) {
	cfg := inst.cfg
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "vss/reconstruct")
	defer func() { sp.End(nd.Round()) }()
	var my gf2k.Element
	if j >= 0 && j < len(inst.Shares) {
		my = inst.Shares[j]
	} else if len(inst.Shares) > 0 {
		return 0, fmt.Errorf("vss: secret index %d out of range", j)
	}
	nd.Broadcast(cfg.Field.AppendElement(nil, my))
	msgs, err := nd.EndRound()
	if err != nil {
		return 0, fmt.Errorf("vss: reconstruct round: %w", err)
	}
	// Index-order scan, as in verifyWithChallenge: deterministic point
	// order keeps bw.Decode on one cached interpolation domain.
	first := simnet.FirstFromEach(msgs)
	var xs, ys []gf2k.Element
	for from := 0; from < cfg.N; from++ {
		payload, ok := first[from]
		if !ok {
			continue
		}
		v, rest, err := cfg.Field.ReadElement(payload)
		if err != nil || len(rest) != 0 {
			continue
		}
		id, err := cfg.Field.ElementFromID(from + 1)
		if err != nil {
			continue
		}
		xs = append(xs, id)
		ys = append(ys, v)
	}
	maxErr := (len(xs) - cfg.T - 1) / 2
	if maxErr > cfg.T {
		maxErr = cfg.T
	}
	if maxErr < 0 {
		maxErr = 0
	}
	res, err := bw.DecodeWith(cfg.Field, xs, ys, cfg.T, maxErr, cfg.Counters, cfg.Pool)
	if err != nil {
		return 0, fmt.Errorf("vss: reconstruct secret %d: %w", j, err)
	}
	return poly.Eval(cfg.Field, res.Poly, 0), nil
}
