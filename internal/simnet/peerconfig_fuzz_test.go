package simnet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// plainValue reports whether a parsed string survives naive re-rendering
// into the YAML subset: no comment or quote characters and no edge
// whitespace (both would need quoting rules the renderer below doesn't
// implement).
func plainValue(s string) bool {
	return !strings.ContainsAny(s, "#'\"\t") && s == strings.TrimSpace(s)
}

// renderPeerConfig writes a parsed config back into the peers.yaml subset.
// Only used for round-tripping plain configs inside the fuzz target.
func renderPeerConfig(cfg *PeerConfig) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "cluster: %s\n", cfg.Cluster)
	fmt.Fprintf(&b, "secret: %x\n", cfg.Secret)
	fmt.Fprintf(&b, "t: %d\nk: %d\nbatch: %d\nthreshold: %d\nseedcoins: %d\ngeneration: %d\n",
		cfg.T, cfg.K, cfg.Batch, cfg.Threshold, cfg.SeedCoins, cfg.Generation)
	fmt.Fprintf(&b, "peers:\n")
	for _, p := range cfg.Peers {
		fmt.Fprintf(&b, "  - id: %d\n    addr: %s\n", p.ID, p.Addr)
		if p.Listen != "" {
			fmt.Fprintf(&b, "    listen: %s\n", p.Listen)
		}
		if p.HTTP != "" {
			fmt.Fprintf(&b, "    http: %s\n", p.HTTP)
		}
	}
	return b.Bytes()
}

// FuzzParsePeerConfig: the operator-facing peers.yaml parser must never
// panic, and every config it accepts must be fully validated — roster
// sorted with ids covering 0..n-1, usable listen addresses, a decoded
// secret of at least 16 bytes, a deterministic digest, and an idempotent
// Validate. Plain accepted configs must additionally survive a
// render → re-parse round trip with an identical handshake digest.
func FuzzParsePeerConfig(f *testing.F) {
	sec := "secret: " + strings.Repeat("61", 32) + "\n"
	roster := "peers:\n  - id: 0\n    addr: 127.0.0.1:9400\n  - id: 1\n    addr: 127.0.0.1:9401\n"
	f.Add([]byte("# demo cluster\ncluster: demo\n" + sec +
		"t: 1\nk: 32\nbatch: 96\nthreshold: 6\nseedcoins: 24\n" +
		"peers:\n  - id: 1\n    addr: 127.0.0.1:9401\n" +
		"  - id: 0\n    addr: 127.0.0.1:9400\n    listen: 0.0.0.0:9400\n    http: 127.0.0.1:8433\n"))
	f.Add([]byte(sec + roster))
	f.Add([]byte(sec + "cluster: 'quoted name'\n" + roster))
	f.Add([]byte(sec + "t: 1\nt: 2\n" + roster))
	f.Add([]byte("secret: zz\n" + roster))
	f.Add([]byte("peers:\n\t- id: 0\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParsePeerConfig(data)
		if err != nil {
			return
		}
		n := cfg.N()
		if n != len(cfg.Peers) || n == 0 {
			t.Fatalf("accepted config with N()=%d over %d peers", n, len(cfg.Peers))
		}
		for i, p := range cfg.Peers {
			if p.ID != i {
				t.Fatalf("roster not sorted to cover 0..n-1: slot %d holds id %d", i, p.ID)
			}
			if p.Addr == "" || cfg.ListenAddr(i) == "" {
				t.Fatalf("peer %d accepted without a usable address: %+v", i, p)
			}
		}
		if len(cfg.Secret) < 16 {
			t.Fatalf("accepted %d-byte secret, parser promises ≥ 16", len(cfg.Secret))
		}
		d1 := cfg.Digest()
		if d2 := cfg.Digest(); d2 != d1 {
			t.Fatal("digest not deterministic")
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted config fails re-validation: %v", err)
		}
		if d3 := cfg.Digest(); d3 != d1 {
			t.Fatal("re-validation changed the handshake digest")
		}

		plain := plainValue(cfg.Cluster)
		for _, p := range cfg.Peers {
			plain = plain && plainValue(p.Addr) && plainValue(p.Listen) && plainValue(p.HTTP)
		}
		if !plain {
			return
		}
		re, err := ParsePeerConfig(renderPeerConfig(cfg))
		if err != nil {
			t.Fatalf("rendered config rejected: %v\n%s", err, renderPeerConfig(cfg))
		}
		if re.Digest() != d1 {
			t.Fatalf("render round trip changed the handshake digest:\n%s", renderPeerConfig(cfg))
		}
		if !bytes.Equal(re.Secret, cfg.Secret) || re.N() != n {
			t.Fatal("render round trip lost the secret or the roster size")
		}
		for i := range cfg.Peers {
			if re.Peers[i] != cfg.Peers[i] {
				t.Fatalf("render round trip changed peer %d: %+v vs %+v", i, re.Peers[i], cfg.Peers[i])
			}
		}
	})
}
