package baseline

import "math"

// Analytic cost models for the §1.4 "History and comparisons" discussion.
// The paper compares its amortized D-PRBG costs against the published
// asymptotics of earlier shared-coin protocols; those systems predate
// practical implementation (and [14]'s constants make it "not amenable to
// practical settings"), so — per the substitution rule — we reproduce the
// comparison analytically, instantiating each paper's stated asymptotic
// formula at concrete (n, t, k). Constants are set to 1, so the numbers
// are order-of-magnitude indicators, exactly as the paper uses them.

// CoinCost is a per-coin cost estimate: total basic operations across all
// players and total network messages.
type CoinCost struct {
	// Name identifies the protocol.
	Name string
	// Ops is the per-player computation per coin (basic operations).
	Ops float64
	// Msgs is the network messages per coin.
	Msgs float64
	// Resilience describes the fault bound.
	Resilience string
	// Assumptions lists extra requirements.
	Assumptions string
}

// LiteratureCoinCosts instantiates the §1.4 comparison at (n, k):
//
//   - Feldman–Micali [14]: O(n⁴ log² n) computation per player, O(n⁵)
//     messages, per coin generated, t < n/3, "non-negligible probability
//     that not all players will see the coin".
//   - Dwork–Shmoys–Stockmeyer [11]: constant expected time but only
//     n/log n faults and not all players see the coin; we model its
//     per-coin message cost as O(n²) (all-to-all rounds).
//   - Beaver–So [2]: majority resilience but relies on the intractability
//     of factoring; per-coin cost dominated by modular exponentiations,
//     modeled as O(k³) bit operations per player (k-bit modulus), with
//     generation "limited to a pre-set size".
//   - This paper (Cor 3): amortized O(n log k) operations and n + O(n⁴/M)
//     messages per coin.
func LiteratureCoinCosts(n, k, m int) []CoinCost {
	fn := float64(n)
	fk := float64(k)
	fm := float64(m)
	logn := math.Log2(fn)
	logk := math.Log2(fk)
	return []CoinCost{
		{
			Name:        "Feldman-Micali [14]",
			Ops:         math.Pow(fn, 5) * logn * logn, // O(n⁴log²n) per player × n
			Msgs:        math.Pow(fn, 5),
			Resilience:  "t < n/3",
			Assumptions: "coin not always seen by all",
		},
		{
			Name:        "Dwork-Shmoys-Stockmeyer [11]",
			Ops:         fn * fn,
			Msgs:        fn * fn,
			Resilience:  "t < n/log n",
			Assumptions: "coin not seen by all players",
		},
		{
			Name:        "Beaver-So [2]",
			Ops:         fn * fk * fk * fk, // k-bit modular exponentiations × n players
			Msgs:        fn * fn,
			Resilience:  "t < n/2",
			Assumptions: "factoring hardness; pre-set size",
		},
		{
			Name:        "D-PRBG (this paper)",
			Ops:         fn * fn * logk, // Cor 3: O(n² log k) amortized per coin
			Msgs:        fn + math.Pow(fn, 4)/fm,
			Resilience:  "t < n/6",
			Assumptions: "O(1) seed coins (bootstrapped)",
		},
	}
}
