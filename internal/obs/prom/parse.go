package prom

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one time-series sample from a text exposition: a metric name,
// its label set, and the value. Histogram expositions decompose into
// name_bucket{le=...}, name_sum and name_count samples.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseText parses a Prometheus text exposition (version 0.0.4) into its
// samples, in document order. Comment (#) and blank lines are skipped. It
// accepts the subset of the format WriteText emits — which is also the
// subset every real scraper emits — and rejects structurally broken lines,
// so the multiproc soak can use it to assert each daemon's /metrics output
// is well-formed.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return Sample{}, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return Sample{}, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return Sample{}, fmt.Errorf("malformed sample line %q", line)
		}
		s.Name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if s.Name == "" {
		return Sample{}, fmt.Errorf("missing metric name in %q", line)
	}
	// rest is "value" or "value timestamp"; ignore the timestamp.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Sample{}, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return Sample{}, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string, into map[string]string) error {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, ",") // trailing comma is legal in the format
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		rest := strings.TrimSpace(s[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		// Find the closing quote, honouring backslash escapes.
		i, esc := 1, false
		for ; i < len(rest); i++ {
			if esc {
				esc = false
				continue
			}
			switch rest[i] {
			case '\\':
				esc = true
			case '"':
				goto closed
			}
		}
		return fmt.Errorf("unterminated label value for %q", name)
	closed:
		val, err := strconv.Unquote(rest[:i+1])
		if err != nil {
			return fmt.Errorf("bad label value for %q: %w", name, err)
		}
		into[name] = val
		s = strings.TrimSpace(rest[i+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// Find returns the samples with the given metric name, in document order.
func Find(samples []Sample, name string) []Sample {
	var out []Sample
	for _, s := range samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the value of the first sample matching name and all given
// label constraints (alternating key, value), and whether one was found.
func Value(samples []Sample, name string, kv ...string) (float64, bool) {
	if len(kv)%2 != 0 {
		panic("prom: Value wants alternating label key/value pairs")
	}
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for i := 0; i < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of a histogram from its
// _bucket samples for the metric base name, using linear interpolation
// within the winning bucket — the same estimate Prometheus's histogram_quantile
// gives. Extra label constraints (alternating key, value) select one child.
// Returns NaN when the histogram is absent or empty.
func Quantile(samples []Sample, name string, q float64, kv ...string) float64 {
	type bkt struct {
		le  float64
		cum float64
	}
	var bkts []bkt
next:
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue next
			}
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		bkts = append(bkts, bkt{le: le, cum: s.Value})
	}
	if len(bkts) == 0 {
		return math.NaN()
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	total := bkts[len(bkts)-1].cum
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	for i, b := range bkts {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				// Open-ended bucket: report the highest finite bound.
				if i > 0 {
					return bkts[i-1].le
				}
				return math.NaN()
			}
			lower, below := 0.0, 0.0
			if i > 0 {
				lower, below = bkts[i-1].le, bkts[i-1].cum
			}
			if b.cum == below {
				return b.le
			}
			return lower + (b.le-lower)*(rank-below)/(b.cum-below)
		}
	}
	return bkts[len(bkts)-1].le
}
