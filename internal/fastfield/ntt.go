package fastfield

import (
	"fmt"
	"math/bits"
)

// ntt performs number-theoretic transforms over Z_q — the paper's "discrete
// Fourier transforms" used "to do the multiplication, modulo some
// irreducible polynomial, in O(l log l) operations over Z_q" (§2).
type ntt struct {
	z       *zq
	size    int      // power of two dividing q−1
	root    uint32   // primitive size-th root of unity
	rootInv uint32   // root^{-1}
	sizeInv uint32   // size^{-1} mod q
	rev     []int    // bit-reversal permutation
	pows    []uint32 // root^i for i < size (forward twiddles)
	powsInv []uint32 // rootInv^i
}

func newNTT(z *zq, size int) (*ntt, error) {
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("fastfield: NTT size %d is not a power of two", size)
	}
	if uint64(z.q-1)%uint64(size) != 0 {
		return nil, fmt.Errorf("fastfield: %d does not divide q−1 = %d", size, z.q-1)
	}
	g, err := z.generator()
	if err != nil {
		return nil, err
	}
	root := z.expDirect(g, uint64(z.q-1)/uint64(size))
	n := &ntt{
		z:       z,
		size:    size,
		root:    root,
		rootInv: z.inv(root),
		sizeInv: z.inv(uint32(size % int(z.q))),
		rev:     make([]int, size),
		pows:    make([]uint32, size),
		powsInv: make([]uint32, size),
	}
	shift := 64 - bits.Len64(uint64(size-1))
	if size == 1 {
		shift = 64
	}
	for i := 0; i < size; i++ {
		n.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	p, pi := uint32(1), uint32(1)
	for i := 0; i < size; i++ {
		n.pows[i] = p
		n.powsInv[i] = pi
		p = z.mul(p, root)
		pi = z.mul(pi, n.rootInv)
	}
	return n, nil
}

// transform runs an in-place iterative Cooley–Tukey NTT on a (len = size).
func (n *ntt) transform(a []uint32, inverse bool) {
	z := n.z
	size := n.size
	for i := 0; i < size; i++ {
		if j := n.rev[i]; j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	pows := n.pows
	if inverse {
		pows = n.powsInv
	}
	for length := 2; length <= size; length <<= 1 {
		step := size / length
		half := length / 2
		for start := 0; start < size; start += length {
			for i := 0; i < half; i++ {
				w := pows[i*step]
				u := a[start+i]
				v := z.mul(a[start+i+half], w)
				a[start+i] = z.add(u, v)
				a[start+i+half] = z.sub(u, v)
			}
		}
	}
	if inverse {
		for i := range a {
			a[i] = z.mul(a[i], n.sizeInv)
		}
	}
}

// mulPoly multiplies polynomials a and b (coefficient slices over Z_q) via
// the NTT; deg a + deg b must be < size.
func (n *ntt) mulPoly(a, b []uint32) []uint32 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if len(a)+len(b)-1 > n.size {
		panic(fmt.Sprintf("fastfield: product degree %d exceeds NTT size %d", len(a)+len(b)-2, n.size))
	}
	fa := make([]uint32, n.size)
	fb := make([]uint32, n.size)
	copy(fa, a)
	copy(fb, b)
	n.transform(fa, false)
	n.transform(fb, false)
	for i := range fa {
		fa[i] = n.z.mul(fa[i], fb[i])
	}
	n.transform(fa, true)
	return fa[:len(a)+len(b)-1]
}
