// Command quickstart demonstrates the D-PRBG end to end: seven players
// (one may be Byzantine), a one-time 8-coin trusted seed, and a stream of
// shared coins that refills itself via Coin-Gen whenever it runs low —
// the paper's Fig. 1 bootstrap.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	useTCP := flag.Bool("tcp", false, "run every protocol message over real TCP loopback sockets")
	flag.Parse()
	if err := run(*useTCP); err != nil {
		log.Fatal(err)
	}
}

func run(useTCP bool) error {
	const (
		n         = 7  // players
		t         = 1  // tolerated Byzantine faults (n ≥ 6t+1)
		k         = 32 // coin field GF(2^k)
		seedCoins = 8  // one-time trusted-dealer seed
		want      = 40 // coins the "application" will consume
	)

	field, err := repro.NewField(k)
	if err != nil {
		return err
	}
	cfg := repro.Config{Field: field, N: n, T: t, BatchSize: 16}

	// One-time trusted setup (the paper: "the services of a trusted dealer
	// would be used only once, and for a small number of coins").
	gens, err := repro.SetupTrusted(cfg, seedCoins, rand.Reader)
	if err != nil {
		return err
	}

	var nw *repro.Network
	if useTCP {
		var err error
		nw, err = repro.NewNetworkTCP(n)
		if err != nil {
			return err
		}
		defer nw.Close()
		fmt.Println("transport: TCP loopback (real sockets)")
	} else {
		nw = repro.NewNetwork(n)
	}
	fns := make([]repro.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *repro.Node) (interface{}, error) {
			coins := make([]repro.Element, 0, want)
			for len(coins) < want {
				c, err := gens[i].Next(nd, rand.Reader)
				if err != nil {
					return nil, err
				}
				coins = append(coins, c)
			}
			return coins, nil
		}
	}
	results := repro.Run(nw, fns)

	ref := results[0].Value.([]repro.Element)
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("player %d: %w", i, r.Err)
		}
		for h, c := range r.Value.([]repro.Element) {
			if c != ref[h] {
				return fmt.Errorf("unanimity violated at player %d coin %d", i, h)
			}
		}
	}

	fmt.Printf("all %d players saw the same %d shared coins\n", n, want)
	fmt.Printf("first coins: %08x %08x %08x %08x ...\n", ref[0], ref[1], ref[2], ref[3])
	st := gens[0].Stats()
	fmt.Printf("bootstrap stats: %d coins delivered, %d Coin-Gen refills, "+
		"%d seed coins spent internally, %d leader attempts total\n",
		st.CoinsDelivered, st.Batches, st.SeedSpent, st.Attempts)
	fmt.Printf("sealed coins still in stock: %d\n", gens[0].Remaining())
	return nil
}
