// Package reshare implements dealer-free epoch resharing: the current
// ("old") committee hands the sealed tail of its coin store to a new
// committee — a different roster, a different (n', t'), or the same roster
// taking fresh shares (proactive refresh) — without re-consulting the
// trusted dealer, extending the paper's §1.2 "the dealer is used only once"
// bootstrap story to committee churn.
//
// # Protocol
//
// The old committee holds, for each sealed coin h, Shamir shares s_i = F_h(x_i)
// of a degree-≤t polynomial with F_h(0) = coin_h. Resharing runs over a
// combined network of old ∪ new players, in three lockstep rounds plus a
// local verdict:
//
//  1. Sub-deal — every old member o deals a degree-≤t' sub-sharing of each
//     of its tail shares: fresh random polynomials g_{o,h} with
//     g_{o,h}(0) = s_o^(h), one evaluation g_{o,h}(y_j) per new member j,
//     plus a sub-sharing μ_o of its share of a sacrificial mask coin. One
//     point-to-point column per (o, j) pair.
//  2. Challenge — a fresh sealed coin r is exposed (old members transmit
//     shares; everyone Berlekamp–Welch decodes). The coin is sealed until
//     after the dealing, so a sub-dealer cannot tailor its columns to r —
//     the same one-coin-per-batch soundness as Batch-VSS (Lemma 3): a
//     sub-dealer whose columns hide any wrong value survives with
//     probability ≤ m/p over r.
//  3. Combine — every new member j broadcasts, per sub-dealer o, the masked
//     Horner combination w_{o,j} = μ_o(y_j) + Σ_{h=1..m} r^h·g_{o,h}(y_j)
//     (or a complaint when o's column never arrived well-formed).
//
// The verdict is a deterministic function of the broadcasts, so all honest
// players reach it unanimously, exactly like the vss verdicts the
// conformance suite pins down. For each sub-dealer o the broadcast values
// {(y_j, w_{o,j})} are decoded at degree ≤ t' (wrong-degree or equivocal
// dealing ⇒ no codeword ⇒ cheater; more than t' complaints ⇒ silent
// cheater), giving W_o and the public opening u_o = W_o(0). Since
// u_o = G(x_o) + Σ r^h·F_h(x_o) with G the mask coin's degree-≤t
// polynomial, honest openings lie on a degree-≤t polynomial in the OLD id
// space: decoding {(x_o, u_o)} at degree ≤ t identifies every surviving
// sub-dealer whose columns hide wrong share values (off the decoded
// polynomial ⇒ cheater). The mask keeps the opening one-time-pad blind —
// u_o reveals a combination masked by the never-exposed sacrificial coin —
// so resharing consumes exactly two coins from the tail: the challenge
// (publicly exposed, spent) and the mask (never exposed, spent).
//
// New shares come from any agreed quorum Q of t+1 surviving sub-dealers:
// s'_j(h) = Σ_{o∈Q} λ_o·g_{o,h}(y_j) interpolates the new degree-≤t'
// polynomial F'_h = Σ_{o∈Q} λ_o·g_{o,h} with F'_h(0) = Σ λ_o·s_o^(h) =
// F_h(0) — the coin values are preserved bit-for-bit while every share is
// fresh, which is both the membership-change and the proactive-security
// property ("old shares discarded" is the caller's job: drop the old
// store). A new member whose own column from some o ∈ Q disagrees with the
// decoded W_o (a victim of a surviving-but-inconsistent dealer) marks its
// batch Silent, the same self-check posture as a Coin-Gen participant that
// failed its clique check: it keeps decoding exposures but never transmits.
//
// # Resilience
//
// With ≤ t Byzantine old members and ≤ t' Byzantine new members, honest
// new players always terminate with consistent shares of the original coin
// values (whp m/p per cheating sub-dealer). The new reconstruction set is
// the whole new committee, so exposures tolerate t' lies plus the silent
// victims a surviving inconsistent dealer can create (at most t' of them,
// by the decode budget). Identifying honest dealers as cheaters is
// impossible when n' ≥ 4t'+1 (the beacon's n' ≥ 6t'+1 always qualifies);
// at the 3t'+1 floor, t' Byzantine new members can at worst abort the
// attempt, never corrupt it.
package reshare

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/bw"
	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// Config describes one resharing ceremony over the combined network. The
// combined network has len(NewOf) nodes: nodes 0..OldN-1 are the old
// committee in roster order, and every node (old or pure-new) that is also
// a member of the new committee carries its new index in NewOf.
type Config struct {
	// Field is the coin field GF(2^k), shared by both committees.
	Field gf2k.Field
	// OldN, OldT describe the old committee; nodes 0..OldN-1.
	OldN, OldT int
	// NewN, NewT describe the new committee.
	NewN, NewT int
	// NewOf maps a combined-network node index to its new-committee index,
	// -1 for old members that are leaving. Every new index 0..NewN-1 must
	// appear exactly once, and nodes ≥ OldN (pure joiners) must carry one.
	NewOf []int
	// Attempt numbers the retry: attempt a consumes the tail's coins
	// 2a (challenge) and 2a+1 (mask) and reshares the rest. A failed
	// attempt may have exposed its challenge publicly, so re-running with
	// the same attempt number would let a cheating sub-dealer deal against
	// a known challenge; every retry must use a fresh attempt number.
	Attempt int
	// Generation is stamped on the produced store (the old store's
	// generation + 1; the caller tracks it alongside its roster config).
	Generation int
	// Counters optionally records protocol costs.
	Counters *metrics.Counters
	// Pool optionally fans the compute-bound inner loops across idle cores.
	Pool *parallel.Pool
}

// CombinedN returns the size of the combined old ∪ new network.
func (c Config) CombinedN() int { return len(c.NewOf) }

// Validate checks the ceremony shape.
func (c Config) Validate() error {
	if c.Field.K() == 0 {
		return fmt.Errorf("reshare: config has no field")
	}
	if c.OldT < 0 || c.OldN < 3*c.OldT+1 {
		return fmt.Errorf("reshare: old committee needs n ≥ 3t+1, got n=%d t=%d", c.OldN, c.OldT)
	}
	if c.NewT < 0 || c.NewN < 3*c.NewT+1 {
		return fmt.Errorf("reshare: new committee needs n' ≥ 3t'+1, got n'=%d t'=%d", c.NewN, c.NewT)
	}
	if len(c.NewOf) < c.OldN {
		return fmt.Errorf("reshare: combined network of %d nodes cannot hold the %d-player old committee", len(c.NewOf), c.OldN)
	}
	if c.Attempt < 0 || c.Generation < 0 {
		return fmt.Errorf("reshare: negative attempt %d or generation %d", c.Attempt, c.Generation)
	}
	seen := make([]bool, c.NewN)
	for node, j := range c.NewOf {
		if j == -1 {
			if node >= c.OldN {
				return fmt.Errorf("reshare: node %d is neither an old nor a new member", node)
			}
			continue
		}
		if j < 0 || j >= c.NewN {
			return fmt.Errorf("reshare: node %d carries new index %d outside [0,%d)", node, j, c.NewN)
		}
		if seen[j] {
			return fmt.Errorf("reshare: new index %d assigned twice", j)
		}
		seen[j] = true
	}
	for j, ok := range seen {
		if !ok {
			return fmt.Errorf("reshare: new index %d assigned to no node", j)
		}
	}
	return nil
}

// Result is one player's outcome of a resharing ceremony.
type Result struct {
	// Store holds the new committee's reshared tail: one batch, fresh
	// degree-≤t' shares of the surviving coins, reconstruction set = the
	// whole new committee, universe bound to n' and the configured
	// generation stamped. nil for old members that are leaving.
	Store *coin.Store
	// Coins is the number of coins the new store holds (the old tail minus
	// the challenge and mask the ceremony consumed).
	Coins int
	// Cheaters lists the old-committee members identified as faulty
	// sub-dealers, sorted. Deterministic in the round-3 broadcasts, so all
	// honest players report the same list.
	Cheaters []int
	// Quorum lists the t+1 sub-dealers whose columns the new shares were
	// assembled from (same determinism).
	Quorum []int
	// Challenge is the exposed challenge coin (spent; diagnostic only).
	Challenge gf2k.Element
	// Silent reports that this player is a new member that could not
	// derive valid shares — a victim of a surviving inconsistent
	// sub-dealer — and its batch is marked Silent: it decodes exposures
	// but never transmits.
	Silent bool
}

// subDealerState is the per-sub-dealer column a new member accumulated in
// round 1.
type subDealerState struct {
	mask  gf2k.Element
	subs  []gf2k.Element
	valid bool // well-formed and of the agreed length
}

// Run executes one player's side of the ceremony on the combined network.
// Old members (node index < cfg.OldN) pass their store; its unexposed tail
// — in FIFO exposure order, identically at every honest old member — funds
// the reshare. Pure joiners pass old == nil; an OLD member passing nil
// declares itself stale (its store missed a refill and cannot fund the
// ceremony) and participates receive-only, like a Silent member. The old
// store is only read; discarding it after a successful ceremony is the
// caller's responsibility (and, for proactive security, duty).
//
// Consumes exactly three network rounds.
func Run(nd *simnet.Node, cfg Config, old *coin.Store, rnd io.Reader) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nd.N() != cfg.CombinedN() {
		return nil, fmt.Errorf("reshare: network size %d != combined committee size %d", nd.N(), cfg.CombinedN())
	}
	f := cfg.Field
	self := nd.Index()
	isOld := self < cfg.OldN
	newIdx := cfg.NewOf[self]
	if !isOld && old != nil {
		return nil, fmt.Errorf("reshare: joiner %d must not pass a store", self)
	}

	sp := nd.Tracer().Start(self, nd.Round(), obs.KindPhase, "reshare")
	defer func() { sp.End(nd.Round()) }()

	// Old members slice their tail: coin 2a is this attempt's challenge,
	// 2a+1 the mask, the rest is reshared.
	var challengeShare, maskShare gf2k.Element
	var tail []gf2k.Element
	silentOld := false
	m := -1
	if isOld && old == nil {
		// A stale old member (it missed a refill while down, so its shares
		// no longer match the cluster's batches) participates without a
		// store: it abstains from sub-dealing and the challenge — exactly
		// like a Silent member — but still collects columns and assembles
		// fresh shares when it carries a new index. The verdict will brand
		// it a non-dealing cheater, which is the honest external view; it
		// costs one of the ≤ t tolerated sub-dealer faults.
		silentOld = true
	}
	if isOld && old != nil {
		shares, silent, err := tailShares(old, cfg.OldT)
		if err != nil {
			return nil, err
		}
		skip := 2 * (cfg.Attempt + 1)
		if len(shares) < skip+1 {
			return nil, fmt.Errorf("reshare: attempt %d needs %d tail coins, store holds %d", cfg.Attempt, skip+1, len(shares))
		}
		challengeShare, maskShare = shares[skip-2], shares[skip-1]
		tail = shares[skip:]
		silentOld = silent
		m = len(tail)
	}

	// Round 1 — sub-deal. Each participating old member draws one fresh
	// degree-≤t' polynomial per tail coin (plus the mask) and sends every
	// new member its evaluation column.
	var ownColumn []byte
	if isOld && !silentOld {
		polys := make([]poly.Poly, m+1)
		secrets := append([]gf2k.Element{maskShare}, tail...)
		for i, s := range secrets {
			p, err := poly.Random(f, cfg.NewT, s, rnd)
			if err != nil {
				return nil, err
			}
			polys[i] = p
		}
		yids, err := newIDs(f, cfg.NewN)
		if err != nil {
			return nil, err
		}
		// Evaluate all columns first (pure compute, fanned out), then send
		// on the node goroutine in index order so the traffic schedule is
		// identical at every pool width (the vss.Deal idiom).
		bufs := parallel.Map(cfg.Pool, nd.N(), func(node int) []byte {
			j := cfg.NewOf[node]
			if j < 0 {
				return nil
			}
			y := yids[j]
			col := make([]gf2k.Element, m)
			for h := range col {
				col[h] = poly.Eval(f, polys[h+1], y)
			}
			return encodeSubShares(f, poly.Eval(f, polys[0], y), col)
		})
		for node := 0; node < nd.N(); node++ {
			if bufs[node] == nil {
				continue
			}
			if node == self {
				ownColumn = bufs[node] // the dealer keeps its own column locally
				continue
			}
			nd.Send(node, bufs[node])
		}
	}
	msgs, err := nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("reshare: sub-deal round: %w", err)
	}

	// Collect columns; a new member derives the tail length from the
	// majority column length (honest sub-dealers, at least 2t+1 of the
	// ≥ 3t+1 senders, agree on it — old members additionally know it from
	// their own store).
	cols := make([]subDealerState, cfg.OldN)
	if newIdx >= 0 {
		first := simnet.FirstFromEach(msgs)
		for o := 0; o < cfg.OldN; o++ {
			payload := first[o]
			if o == self {
				payload = ownColumn
			}
			if payload == nil {
				continue
			}
			mask, subs, ok := parseSubShares(f, payload)
			if !ok {
				continue
			}
			cols[o] = subDealerState{mask: mask, subs: subs, valid: true}
		}
		if m < 0 {
			m = majorityLength(cols)
		}
		for o := range cols {
			if cols[o].valid && len(cols[o].subs) != m {
				cols[o] = subDealerState{}
			}
		}
	}
	if m < 1 {
		return nil, fmt.Errorf("reshare: no tail to reshare (m=%d)", m)
	}

	// Round 2 — challenge. Every participating old member transmits its
	// share of the challenge coin; everyone decodes. Sealed until after the
	// dealing, so no sub-dealer could tailor its columns to r.
	if isOld && !silentOld {
		nd.SendAll(encodeChallenge(f, challengeShare))
	}
	msgs, err = nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("reshare: challenge round: %w", err)
	}
	r, err := decodeChallenge(nd, cfg, msgs, challengeShare, isOld && !silentOld)
	if err != nil {
		return nil, err
	}

	// Round 3 — combine. Every new member broadcasts its per-sub-dealer
	// masked Horner combinations; old-only members stay quiet.
	if newIdx >= 0 {
		w := make([]gf2k.Element, cfg.OldN)
		present := make([]bool, cfg.OldN)
		for o := range cols {
			if !cols[o].valid {
				continue
			}
			var acc gf2k.Element
			for h := m - 1; h >= 0; h-- {
				acc = f.Mul(f.Add(acc, cols[o].subs[h]), r)
			}
			w[o] = f.Add(acc, cols[o].mask)
			present[o] = true
		}
		nd.Broadcast(encodeCombination(f, w, present))
	}
	msgs, err = nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("reshare: combine round: %w", err)
	}

	// Verdict — deterministic in the broadcasts, hence unanimous across
	// honest players (old and new alike must agree on success and on the
	// cheater list for the cutover to be consistent).
	verdict, err := judge(nd, cfg, msgs)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Coins:     m,
		Cheaters:  verdict.cheaters,
		Quorum:    verdict.quorum,
		Challenge: r,
	}
	if newIdx < 0 {
		return res, nil
	}

	// Assembly — interpolate this member's new share of every coin at 0
	// across the quorum columns: s'_j(h) = Σ_{o∈Q} λ_o·g_{o,h}(y_j). A
	// member whose own column from a quorum dealer is missing or disagrees
	// with the decoded W_o was victimized by a surviving cheater: it keeps
	// zero shares and marks its batch Silent (the Coin-Gen self-check
	// posture — decode everything, transmit nothing).
	ySelf, err := f.ElementFromID(newIdx + 1)
	if err != nil {
		return nil, err
	}
	silentSelf := false
	xsQ := make([]gf2k.Element, len(verdict.quorum))
	for qi, o := range verdict.quorum {
		xsQ[qi], err = f.ElementFromID(o + 1)
		if err != nil {
			return nil, err
		}
		if !cols[o].valid {
			silentSelf = true
			continue
		}
		var acc gf2k.Element
		for h := m - 1; h >= 0; h-- {
			acc = f.Mul(f.Add(acc, cols[o].subs[h]), r)
		}
		if f.Add(acc, cols[o].mask) != poly.Eval(f, verdict.w[o], ySelf) {
			silentSelf = true
		}
	}
	shares := make([]gf2k.Element, m)
	if !silentSelf {
		dom, err := poly.DomainFor(f, xsQ, cfg.Counters)
		if err != nil {
			return nil, err
		}
		ys := make([]gf2k.Element, len(verdict.quorum))
		for h := 0; h < m; h++ {
			for qi, o := range verdict.quorum {
				ys[qi] = cols[o].subs[h]
			}
			shares[h], err = dom.InterpolateAt0(ys, cfg.Counters)
			if err != nil {
				return nil, err
			}
		}
	}
	sAll := make([]int, cfg.NewN)
	for j := range sAll {
		sAll[j] = j
	}
	batch := &coin.Batch{
		Field:    f,
		T:        cfg.NewT,
		S:        sAll,
		Shares:   shares,
		Silent:   silentSelf,
		Counters: cfg.Counters,
		Pool:     cfg.Pool,
	}
	st := &coin.Store{Generation: cfg.Generation}
	if err := st.Add(batch); err != nil {
		return nil, err
	}
	if err := st.RebindUniverse(cfg.NewN); err != nil {
		return nil, err
	}
	res.Store = st
	res.Silent = silentSelf
	return res, nil
}

// majorityLength returns the most frequent column length among the
// well-formed columns (ties to the smaller length, for determinism).
func majorityLength(cols []subDealerState) int {
	counts := map[int]int{}
	for _, c := range cols {
		if c.valid {
			counts[len(c.subs)]++
		}
	}
	best, bestCount := -1, 0
	for l, c := range counts {
		if c > bestCount || (c == bestCount && (best == -1 || l < best)) {
			best, bestCount = l, c
		}
	}
	return best
}

// decodeChallenge reconstructs the challenge coin from the round-2 shares.
// Shares are accepted from any old-committee node (non-members of the
// historical reconstruction set simply never transmit); the adaptive
// Berlekamp–Welch budget covers silent-plus-lying faults exactly as
// Coin-Expose does.
func decodeChallenge(nd *simnet.Node, cfg Config, msgs []simnet.Message, own gf2k.Element, sent bool) (gf2k.Element, error) {
	f := cfg.Field
	first := simnet.FirstFromEach(msgs)
	var xs, ys []gf2k.Element
	for o := 0; o < cfg.OldN; o++ {
		var share gf2k.Element
		if o == nd.Index() {
			if !sent {
				continue
			}
			share = own
		} else {
			payload, ok := first[o]
			if !ok {
				continue
			}
			s, ok := parseChallenge(f, payload)
			if !ok {
				continue
			}
			share = s
		}
		id, err := f.ElementFromID(o + 1)
		if err != nil {
			return 0, err
		}
		xs = append(xs, id)
		ys = append(ys, share)
	}
	maxErr := (len(xs) - cfg.OldT - 1) / 2
	if maxErr > cfg.OldT {
		maxErr = cfg.OldT
	}
	if maxErr < 0 {
		maxErr = 0
	}
	res, err := bw.DecodeWith(f, xs, ys, cfg.OldT, maxErr, cfg.Counters, cfg.Pool)
	if err != nil {
		return 0, fmt.Errorf("reshare: challenge expose: %w", err)
	}
	return poly.Eval(f, res.Poly, 0), nil
}

// verdictState is the public outcome every honest player derives from the
// round-3 broadcasts.
type verdictState struct {
	// w[o] is the decoded combination polynomial W_o (nil for cheaters).
	w []poly.Poly
	// cheaters and quorum as exported on Result.
	cheaters []int
	quorum   []int
}

// judge runs the public verdict: decode each sub-dealer's combination
// polynomial from the new members' broadcasts, open u_o = W_o(0), and
// cross-check the openings against a degree-≤t polynomial in the old id
// space. Everything is a deterministic function of the broadcast transcript.
func judge(nd *simnet.Node, cfg Config, msgs []simnet.Message) (*verdictState, error) {
	f := cfg.Field
	first := simnet.FirstFromEach(msgs)

	// Parse each new member's combination row, scanned in node-index order
	// so interpolation point sequences (and their cached domains) are
	// deterministic.
	type row struct {
		w       []gf2k.Element
		present []bool
	}
	rows := make(map[int]row, cfg.NewN) // keyed by new index
	var yNodes []int                    // new indices in node order
	for node := 0; node < cfg.CombinedN(); node++ {
		j := cfg.NewOf[node]
		if j < 0 {
			continue
		}
		yNodes = append(yNodes, j)
		payload, ok := first[node]
		if !ok {
			continue
		}
		w, present, ok := parseCombination(f, cfg.OldN, payload)
		if !ok {
			continue
		}
		rows[j] = row{w: w, present: present}
	}
	yids, err := newIDs(f, cfg.NewN)
	if err != nil {
		return nil, err
	}

	v := &verdictState{w: make([]poly.Poly, cfg.OldN)}
	us := make([]gf2k.Element, cfg.OldN)
	alive := make([]bool, cfg.OldN)
	for o := 0; o < cfg.OldN; o++ {
		var xs, ys []gf2k.Element
		complaints := 0
		for _, j := range yNodes {
			rw, ok := rows[j]
			if !ok || !rw.present[o] {
				complaints++
				continue
			}
			xs = append(xs, yids[j])
			ys = append(ys, rw.w[o])
		}
		if complaints > cfg.NewT {
			// A silent (or mostly silent) sub-dealer: an honest dealer
			// reaches every honest new member, so > t' complaints convict.
			v.cheaters = append(v.cheaters, o)
			continue
		}
		budget := (len(xs) - cfg.NewT - 1) / 2
		if budget > cfg.NewT {
			budget = cfg.NewT
		}
		if budget < 0 {
			budget = 0
		}
		res, err := bw.DecodeWith(f, xs, ys, cfg.NewT, budget, cfg.Counters, cfg.Pool)
		if err != nil {
			// No degree-≤t' codeword: wrong-degree or equivocal dealing.
			v.cheaters = append(v.cheaters, o)
			continue
		}
		v.w[o] = res.Poly
		us[o] = poly.Eval(f, res.Poly, 0)
		alive[o] = true
	}

	// Cross-check: honest openings lie on G + Σ r^h·F_h, degree ≤ t in the
	// old id space. Survivors off the decoded polynomial dealt wrong share
	// values (caught with probability 1 − m/p over the challenge).
	var xs, ys []gf2k.Element
	var aliveIdx []int
	for o := 0; o < cfg.OldN; o++ {
		if !alive[o] {
			continue
		}
		id, err := f.ElementFromID(o + 1)
		if err != nil {
			return nil, err
		}
		xs = append(xs, id)
		ys = append(ys, us[o])
		aliveIdx = append(aliveIdx, o)
	}
	budget := (len(xs) - cfg.OldT - 1) / 2
	if budget > cfg.OldT {
		budget = cfg.OldT
	}
	if budget < 0 {
		budget = 0
	}
	res, err := bw.DecodeWith(f, xs, ys, cfg.OldT, budget, cfg.Counters, cfg.Pool)
	if err != nil {
		return nil, fmt.Errorf("reshare: opened combinations exceed the fault bound (t=%d): %w", cfg.OldT, err)
	}
	for i, o := range aliveIdx {
		if poly.Eval(f, res.Poly, xs[i]) != ys[i] {
			v.w[o] = nil
			v.cheaters = append(v.cheaters, o)
			continue
		}
		if len(v.quorum) < cfg.OldT+1 {
			v.quorum = append(v.quorum, o)
		}
	}
	if len(v.quorum) < cfg.OldT+1 {
		return nil, fmt.Errorf("reshare: only %d of the required %d sub-dealers survived the verdict", len(v.quorum), cfg.OldT+1)
	}
	sort.Ints(v.cheaters)
	for _, o := range v.cheaters {
		nd.Tracer().DealerDisqualified(nd.Index(), o, nd.Round())
	}
	return v, nil
}

// newIDs returns the new-committee evaluation points y_j = id(j+1).
func newIDs(f gf2k.Field, n int) ([]gf2k.Element, error) {
	out := make([]gf2k.Element, n)
	for j := range out {
		id, err := f.ElementFromID(j + 1)
		if err != nil {
			return nil, err
		}
		out[j] = id
	}
	return out, nil
}

// tailShares collects this old member's unexposed shares in FIFO exposure
// order — the same order every honest member's structurally identical store
// drains — and reports whether any contributing batch is Silent (a member
// without valid shares abstains from sub-dealing entirely; it would only
// burn the verdict's error budget).
func tailShares(st *coin.Store, t int) ([]gf2k.Element, bool, error) {
	var shares []gf2k.Element
	silent := false
	for _, b := range st.Batches() {
		if b.Remaining() == 0 {
			continue
		}
		if b.T != t {
			return nil, false, fmt.Errorf("reshare: store batch has t=%d, config says %d", b.T, t)
		}
		shares = append(shares, b.Shares[b.Cursor():]...)
		if b.Silent {
			silent = true
		}
	}
	return shares, silent, nil
}
