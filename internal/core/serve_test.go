package core

import (
	"math/rand"
	"testing"

	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/simnet"
)

// exposeSome runs one lockstep session in which every generator draws
// `count` coins (refilling as needed) and returns player 0's stream after
// checking unanimity.
func exposeSome(t *testing.T, gens []*Generator, count int, rndBase int64) []gf2k.Element {
	t.Helper()
	n := len(gens)
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(rndBase + int64(i)*1000))
			out := make([]gf2k.Element, 0, count)
			for len(out) < count {
				c, err := gens[i].Next(nd, rnd)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		}
	}
	results := simnet.Run(nw, fns)
	ref := results[0].Value.([]gf2k.Element)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		for h, v := range r.Value.([]gf2k.Element) {
			if v != ref[h] {
				t.Fatalf("unanimity violated at player %d coin %d", i, h)
			}
		}
	}
	return ref
}

// TestPersistedStreamByteIdentical is the examples/persistence round trip
// as an assertion: session 1 consumes part of the seed and serializes each
// player's store; session 2 must produce the exact same coin stream whether
// it resumes from the live in-memory stores or from the decoded bytes —
// including across a Coin-Gen refill funded by the restored seed.
func TestPersistedStreamByteIdentical(t *testing.T) {
	cfg := defaultConfig(7, 1)
	cfg.BatchSize = 16
	rng := rand.New(rand.NewSource(77))
	gens, err := SetupTrusted(cfg, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	exposeSome(t, gens, 4, 500) // session 1: the "application" uses 4 coins

	// Persist every player's store, byte-for-byte, before either branch
	// mutates anything.
	enc := make([][]byte, cfg.N)
	for i, g := range gens {
		if enc[i], err = g.Store().MarshalBinary(); err != nil {
			t.Fatalf("marshal player %d: %v", i, err)
		}
	}

	// Branch A: continue from the live stores. 20 coins crosses a refill
	// (8 left in the seed, threshold 6).
	live := exposeSome(t, gens, 20, 900)
	if gens[0].Stats().Batches == 0 {
		t.Fatal("branch A never refilled; the test must cross a Coin-Gen")
	}

	// Branch B: fresh generators from the serialized bytes, identical
	// per-player randomness.
	restored := make([]*Generator, cfg.N)
	for i := range restored {
		st, err := coin.UnmarshalStore(enc[i])
		if err != nil {
			t.Fatalf("unmarshal player %d: %v", i, err)
		}
		if restored[i], err = NewFromStore(cfg, st); err != nil {
			t.Fatalf("restore player %d: %v", i, err)
		}
	}
	resumed := exposeSome(t, restored, 20, 900)

	for h := range live {
		if live[h] != resumed[h] {
			t.Fatalf("coin %d differs after restore: %#x vs %#x", h, live[h], resumed[h])
		}
	}

	// Re-marshal identity: a store that did nothing but marshal/unmarshal
	// must round-trip to the same bytes.
	st, err := coin.UnmarshalStore(enc[0])
	if err != nil {
		t.Fatal(err)
	}
	again, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(enc[0]) {
		t.Fatal("store encoding is not a fixed point of unmarshal∘marshal")
	}
}

// TestMintDetachAbsorb exercises the out-of-band refill path the beacon
// uses: detach a seed from each store, mint a batch on a separate network,
// absorb leftovers plus the mint, and verify exposures stay unanimous and
// the accounting adds up.
func TestMintDetachAbsorb(t *testing.T) {
	cfg := defaultConfig(7, 1)
	cfg.BatchSize = 8
	rng := rand.New(rand.NewSource(13))
	gens, err := SetupTrusted(cfg, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gens[0].DetachSeed(1); err == nil {
		t.Error("DetachSeed(1) accepted; cannot fund a refill")
	}
	if _, err := gens[0].DetachSeed(8); err == nil {
		t.Error("DetachSeed leaving less than the threshold accepted")
	}

	seeds := make([]*coin.Store, cfg.N)
	for i, g := range gens {
		if seeds[i], err = g.DetachSeed(4); err != nil {
			t.Fatalf("detach player %d: %v", i, err)
		}
		if g.Remaining() != 8 {
			t.Fatalf("player %d left with %d coins after detaching 4 of 12", i, g.Remaining())
		}
	}

	nw := simnet.New(cfg.N)
	fns := make([]simnet.PlayerFunc, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return Mint(cfg, nd, seeds[i], rand.New(rand.NewSource(int64(i)+400)))
		}
	}
	results := simnet.Run(nw, fns)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("mint player %d: %v", i, r.Err)
		}
		res := r.Value.(*MintResult)
		if res.SeedConsumed < 2 {
			t.Fatalf("mint consumed %d seed coins, expected ≥ 2", res.SeedConsumed)
		}
		// Absorb in the beacon's order: leftover seed first, then the mint.
		for _, b := range seeds[i].Batches() {
			if b.Remaining() == 0 {
				continue
			}
			if err := gens[i].AbsorbBatch(b); err != nil {
				t.Fatalf("absorb leftovers player %d: %v", i, err)
			}
		}
		if err := gens[i].Absorb(res); err != nil {
			t.Fatalf("absorb mint player %d: %v", i, err)
		}
	}
	want := gens[0].Remaining()
	if want <= 8 {
		t.Fatalf("absorbing an 8-coin mint left only %d coins", want)
	}
	st := gens[0].Stats()
	if st.Batches != 1 || st.SeedSpent == 0 {
		t.Fatalf("refill accounting off: %+v", st)
	}
	exposeSome(t, gens, want-cfg.Threshold, 4242) // drain to the threshold, all unanimous
}

// TestNeedsRefillHighWater checks the proactive trigger the beacon polls.
func TestNeedsRefillHighWater(t *testing.T) {
	cfg := defaultConfig(7, 1)
	cfg.HighWater = 10
	rng := rand.New(rand.NewSource(5))
	gens, err := SetupTrusted(cfg, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gens[0].NeedsRefill() {
		t.Fatal("NeedsRefill true with the store above the high-water mark")
	}
	exposeSome(t, gens, 3, 600) // 12 → 9, below HighWater but above Threshold
	if !gens[0].NeedsRefill() {
		t.Fatal("NeedsRefill false below the high-water mark")
	}

	// Without a high-water mark the trigger degrades to the threshold.
	cfg2 := defaultConfig(7, 1)
	gens2, err := SetupTrusted(cfg2, 12, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	exposeSome(t, gens2, 3, 700)
	if gens2[0].NeedsRefill() {
		t.Fatal("NeedsRefill true above the threshold with HighWater disabled")
	}
}
