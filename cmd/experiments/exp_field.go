package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fastfield"
	"repro/internal/gf2big"
	"repro/internal/gf2k"
)

// runE9 — §2's implementation remark: "when k is small, working over
// GF(2^k) with the naive O(k²) multiplication is faster than working over
// our special field with the O(k log k) multiplication, because of the
// sizes of the constants involved."
//
// Four multiplication paths are timed:
//   - gf2k: single-word GF(2^k), k ≤ 64 (carry-less shift/add);
//   - gf2big: multi-word GF(2^k) with naive O(k²) multiplication;
//   - fastfield naive: GF(q^l) with schoolbook O(l²) coefficient products;
//   - fastfield NTT: the paper's special field, O(l log l).
func runE9() {
	const iters = 20000
	fmt.Printf("%6s | %12s %12s %12s %12s\n", "k", "gf2k", "gf2big", "ff-naive", "ff-NTT")
	fmt.Printf("%6s | %12s %12s %12s %12s\n", "", "(ns/mul)", "(ns/mul)", "(ns/mul)", "(ns/mul)")
	for _, k := range []int{16, 32, 64, 128, 256, 1024, 4096, 8192} {
		row := fmt.Sprintf("%6d |", k)

		if k <= 64 {
			f := gf2k.MustNew(k)
			rng := rand.New(rand.NewSource(1))
			a, _ := f.Rand(rng)
			b, _ := f.Rand(rng)
			start := time.Now()
			for i := 0; i < iters; i++ {
				a = f.Mul(a, b) | 1
			}
			row += fmt.Sprintf(" %12.1f", float64(time.Since(start).Nanoseconds())/iters)
		} else {
			row += fmt.Sprintf(" %12s", "-")
		}

		{
			f, err := gf2big.New(k)
			if err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(2))
			a, _ := f.Rand(rng)
			b, _ := f.Rand(rng)
			n := iters
			if k >= 4096 {
				n = iters / 100
			}
			start := time.Now()
			for i := 0; i < n; i++ {
				a = f.Mul(a, b)
			}
			row += fmt.Sprintf(" %12.1f", float64(time.Since(start).Nanoseconds())/float64(n))
		}

		{
			f, err := fastfield.New(k)
			if err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(3))
			a, _ := f.Rand(rng)
			b, _ := f.Rand(rng)
			n := iters
			if k >= 4096 {
				n = iters / 100
			}
			start := time.Now()
			for i := 0; i < n; i++ {
				a = f.MulNaive(a, b)
			}
			naive := float64(time.Since(start).Nanoseconds()) / float64(n)
			start = time.Now()
			for i := 0; i < n; i++ {
				a = f.Mul(a, b)
			}
			nttNs := float64(time.Since(start).Nanoseconds()) / float64(n)
			row += fmt.Sprintf(" %12.1f %12.1f", naive, nttNs)
		}
		fmt.Println(row)
	}
	fmt.Println("\nexpected shape: at small k the naive single-word GF(2^k) wins by a wide")
	fmt.Println("margin (the paper's caveat); as k grows the O(k²) paths blow up")
	fmt.Println("quadratically while the NTT field grows quasi-linearly — the crossover")
	fmt.Println("against gf2big appears in the hundreds-to-thousands of bits.")
}
