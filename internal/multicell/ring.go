package multicell

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over cell indices: every cell owns
// `replicas` pseudo-random points on a 64-bit circle, and a key is routed
// to the cell owning the first point at or after the key's hash. The
// property that matters for a beacon front end is stability: adding or
// removing one cell remaps only the keys that hashed to the segments that
// cell owned — every other tenant keeps drawing from the same cell, so its
// view of "its" coin stream stays contiguous across topology changes.
// (TestRingStability pins this.)
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	cell int
}

// DefaultReplicas is the per-cell virtual-node count: 64 points per cell
// keeps the largest/smallest ownership ratio within ~2× for small M, which
// is plenty for cells that are themselves load-shedding.
const DefaultReplicas = 64

// NewRing builds a ring over the given cell indices. Cells may be any
// (possibly sparse) index set — the router rebuilds the ring without a
// down cell to test stability, and an operator topology may skip indices.
func NewRing(cells []int, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{points: make([]ringPoint, 0, len(cells)*replicas)}
	for _, c := range cells {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("cell-%d-rep-%d", c, v)), cell: c})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].cell < r.points[j].cell
	})
	return r
}

// Lookup returns the cell owning key's hash point.
func (r *Ring) Lookup(key string) int {
	return r.points[r.search(hash64(key))].cell
}

// Successors returns every distinct cell in ring order starting at key's
// point: the first entry is Lookup(key), the rest are the shed order — the
// cells a router tries next when the primary is saturated. The order is a
// pure function of the key, so every draw for one tenant sheds along the
// same path and lands on the same secondary while the primary is degraded.
func (r *Ring) Successors(key string) []int {
	start := r.search(hash64(key))
	out := make([]int, 0, 4)
	seen := make(map[int]bool, 4)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.cell] {
			seen[p.cell] = true
			out = append(out, p.cell)
		}
	}
	return out
}

// search returns the index of the first point at or after h (wrapping).
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hash64 is FNV-1a with a splitmix64 finalizer. FNV keeps it stable
// across processes and Go versions, so a tenant keeps its cell assignment
// over gateway restarts (maphash would not); the finalizer avalanches the
// low-entropy "cell-i-rep-v" vnode strings, whose raw FNV values cluster
// enough to skew cell ownership 5× (TestRingBalance caught this).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
