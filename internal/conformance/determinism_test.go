package conformance

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// goldenTranscript runs the honest Coin-Gen scenario once and returns its
// full obs trace as canonicalised JSONL. The tracer is built with obs.New(nil,
// ...) — no cost counters — so events carry no scheduler-dependent snapshots,
// and obs.CanonicalOrder removes the remaining schedule artefacts (global Seq
// and span-ID assignment order).
func goldenTranscript(t *testing.T, sc Scenario) []byte {
	t.Helper()
	o, err := RunCoinGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	for _, e := range obs.CanonicalOrder(o.Env.ring.Events()) {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if o.Env.ring.Dropped() != 0 {
		t.Fatalf("trace ring dropped %d events; raise the ring capacity", o.Env.ring.Dropped())
	}
	return buf.Bytes()
}

// TestGoldenTranscriptDeterminism pins the reproducibility contract at the
// trace level: two fixed-seed Coin-Gen runs must emit byte-identical JSONL
// transcripts after canonical ordering, even though goroutine scheduling
// differs between runs. This is what makes `(seed, config)` in a bug report
// sufficient to replay a failure message-for-message.
func TestGoldenTranscriptDeterminism(t *testing.T) {
	sc := Scenario{Protocol: "coingen", Attack: "honest", N: 7, T: 1, M: 2, Seed: 31}
	first := goldenTranscript(t, sc)
	second := goldenTranscript(t, sc)
	if len(first) == 0 {
		t.Fatal("transcript is empty — tracer not wired into the network")
	}
	if !bytes.Equal(first, second) {
		line := 0
		a, b := bytes.Split(first, []byte("\n")), bytes.Split(second, []byte("\n"))
		for i := 0; i < len(a) && i < len(b); i++ {
			if !bytes.Equal(a[i], b[i]) {
				line = i
				break
			}
		}
		t.Fatalf("transcripts differ at line %d:\n run 1: %s\n run 2: %s", line+1, a[line], b[line])
	}
	// The canonical transcript must survive a parse round-trip, so archived
	// goldens stay loadable.
	events, err := obs.ParseJSONL(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("round-trip lost all events")
	}
}

// TestGoldenTranscriptUnderAttack extends the same guarantee to a run with
// message-level fault injection: the interceptor is seeded, so even the
// tampered byte streams replay identically.
func TestGoldenTranscriptUnderAttack(t *testing.T) {
	sc := Scenario{Protocol: "coingen", Attack: "deal-corrupt", N: 7, T: 1, M: 2, Seed: 32}
	first := goldenTranscript(t, sc)
	second := goldenTranscript(t, sc)
	if !bytes.Equal(first, second) {
		t.Fatal("attacked transcripts differ across identical (seed, config) runs")
	}
}
