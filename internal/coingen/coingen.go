// Package coingen implements protocol Coin-Gen (Fig. 5): the generation of
// a batch of M sealed shared coins over point-to-point channels, tolerating
// t Byzantine players with n ≥ 6t+1.
//
// The flow follows the paper step by step:
//
//  1. Every player, as dealer, initiates Bit-Gen (Fig. 4 step 1): one round.
//  2. One sealed coin r is exposed from the seed; the same r is reused as
//     the batch-check challenge for all n Bit-Gen invocations (saving n
//     polynomial interpolations, as Theorem 2 remarks).
//  3. All players exchange their γ vectors and locally decode every
//     invocation (Fig. 4 steps 3–5): one round.
//  4. Each player builds the directed consistency graph G′ (edge j→k iff
//     F_j decoded and player k's γ lies on F_j) and its undirected core G.
//  5. Each player finds a clique of size ≥ n−2t (Gavril approximation).
//  6. Each player grade-casts its clique together with the decoded F
//     polynomials of the clique members: three rounds.
//  7. A sealed coin selects a leader l; every player checks the paper's
//     three conditions on l's grade-cast (confidence 2; |C_l| ≥ n−2t;
//     at least 3t+1 members of C_l whose announced γ's satisfy every F_k,
//     k ∈ C_l) and feeds the verdict into Byzantine agreement.
//  8. If BA decides 1, the batch is assembled from C_l; otherwise a new
//     leader is drawn and BA re-run (constant expected iterations, Lemma 8).
//
// # Batch assembly
//
// Coin h of the batch is Σ_{j∈C_l} f_{j,h}(0) — the sum of the sealed
// contributions of every clique member. (Fig. 6 sums over a fixed 3t+1
// subset S of the clique; summing over the entire agreed clique needs no
// extra agreement on which subset to use and only adds contributors, which
// strengthens unpredictability. At least 3t+1 members are honest, so the
// guarantee of Lemma 7(3) is preserved.) A player transmits during later
// exposures only if it passes the objective self-check — its own announced
// γ for every k ∈ C_l equals F_k(own id) under the agreed F's — which by
// batch soundness (Lemma 5) implies whp that its shares lie on the common
// polynomials f_{k,h}; honest self-checked transmitters therefore agree on
// every coin polynomial, and there are at least 2t+1 of them.
package coingen

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/ba"
	"repro/internal/bitgen"
	"repro/internal/clique"
	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/gradecast"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// ErrTooManyAttempts is returned when leader selection failed MaxAttempts
// times; with honest-majority leaders the probability decays exponentially.
var ErrTooManyAttempts = errors.New("coingen: leader selection exceeded attempt budget")

// Config parameterizes one Coin-Gen execution.
type Config struct {
	// Field is GF(2^k).
	Field gf2k.Field
	// N is the player count; T the fault bound. The paper's §4 regime
	// requires N ≥ 6T+1.
	N, T int
	// M is the number of sealed coins the batch produces.
	M int
	// Seed supplies the sealed coins Coin-Gen itself consumes (the batch
	// challenge plus one coin per leader attempt).
	Seed coin.Source
	// Agreement is the BA protocol for Fig. 5 step 10. Defaults to
	// ba.PhaseKing{T}.
	Agreement ba.Protocol
	// MaxAttempts bounds leader-selection iterations (default 8·N).
	MaxAttempts int
	// Counters, when non-nil, records costs.
	Counters *metrics.Counters
	// Pool, when non-nil, fans the pure-compute phases — Bit-Gen dealing
	// and decoding, the n² consistency-graph evaluations, the condition-iii
	// checks, the batch share sums — out across idle cores, and is handed
	// to the assembled coin.Batch for its exposure decodes. Verdicts and
	// transcripts are identical at every width.
	Pool *parallel.Pool
}

// Validate checks the paper's resilience requirement.
func (c Config) Validate() error {
	if c.N < 6*c.T+1 {
		return fmt.Errorf("coingen: need n ≥ 6t+1, got n=%d t=%d", c.N, c.T)
	}
	if c.M < 1 {
		return fmt.Errorf("coingen: batch size M must be ≥ 1, got %d", c.M)
	}
	if c.Seed == nil {
		return errors.New("coingen: nil seed coin source")
	}
	return nil
}

// Result is one player's outcome of a successful Coin-Gen run.
type Result struct {
	// Batch holds the M new sealed coins (identical structure at every
	// honest player).
	Batch *coin.Batch
	// Clique is the agreed set C_l of contributing dealers, sorted.
	Clique []int
	// Attempts is the number of leader-selection iterations used.
	Attempts int
	// SeedConsumed counts the sealed coins Coin-Gen spent (1 challenge +
	// 1 per attempt).
	SeedConsumed int
}

// Run executes Coin-Gen. Every honest player must call Run in the same
// round with identical Config (up to the per-player Seed handle) and a
// private randomness source.
func Run(nd *simnet.Node, cfg Config, rnd io.Reader) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nd.N() != cfg.N {
		return nil, fmt.Errorf("coingen: network size %d != configured %d", nd.N(), cfg.N)
	}
	agreement := cfg.Agreement
	if agreement == nil {
		agreement = ba.PhaseKing{T: cfg.T}
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 8 * cfg.N
	}
	tr := nd.Tracer()
	sp := tr.Start(nd.Index(), nd.Round(), obs.KindProtocol, "coingen")
	defer func() { sp.End(nd.Round()) }()

	bcfg := bitgen.Config{Field: cfg.Field, N: cfg.N, T: cfg.T, M: cfg.M, Counters: cfg.Counters, Pool: cfg.Pool}

	// Steps 1–3: deal, expose the shared challenge, exchange γ's.
	sh, err := bitgen.DealAll(nd, bcfg, rnd)
	if err != nil {
		return nil, err
	}
	seedUsed := 0
	r, err := cfg.Seed.Expose(nd)
	if err != nil {
		return nil, fmt.Errorf("coingen: expose challenge: %w", err)
	}
	seedUsed++
	view, err := bitgen.ExchangeGammas(nd, bcfg, sh, r)
	if err != nil {
		return nil, err
	}

	// Steps 4–5: consistency graph and clique (local computation, no
	// rounds; the span isolates its field-op cost).
	cliqueSpan := tr.Start(nd.Index(), nd.Round(), obs.KindPhase, "coingen/clique")
	g, err := ConsistencyGraph(cfg, view)
	if err != nil {
		return nil, err
	}
	myClique := clique.ApproxClique(g)
	tr.CliqueFound(nd.Index(), len(myClique), nd.Round())
	cliqueSpan.End(nd.Round())

	// Step 7: grade-cast (clique, F's).
	payload, err := encodeCliqueMsg(cfg, myClique, view)
	if err != nil {
		return nil, err
	}
	casts, err := gradecast.RunAll(nd, cfg.T, payload)
	if err != nil {
		return nil, err
	}

	// Steps 9–11: leader selection and agreement, repeated until accepted.
	agreeSpan := tr.Start(nd.Index(), nd.Round(), obs.KindPhase, "coingen/agree")
	defer func() { agreeSpan.End(nd.Round()) }()
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		leader1, err := cfg.Seed.ExposeMod(nd, cfg.N)
		if err != nil {
			return nil, fmt.Errorf("coingen: expose leader coin: %w", err)
		}
		seedUsed++
		leader := leader1 - 1 // 0-based index
		tr.LeaderElected(nd.Index(), leader, attempt, nd.Round())

		input := byte(0)
		var cand *cliqueMsg
		if casts[leader].Confidence >= 1 {
			cand, _ = decodeCliqueMsg(cfg, casts[leader].Value)
		}
		if casts[leader].Confidence == 2 && cand != nil && conditionIII(cfg, view, cand) >= 3*cfg.T+1 {
			input = 1
		}

		decision, err := agreement.Run(nd, input)
		if err != nil {
			return nil, err
		}
		if decision != 1 {
			continue
		}
		// Agreement on 1 implies ≥1 honest player verified all conditions,
		// so every honest player holds the value with confidence ≥ 1.
		if cand == nil {
			return nil, errors.New("coingen: BA accepted a leader whose grade-cast this player cannot decode (resilience assumption violated)")
		}
		batch := assembleBatch(cfg, sh, cand, nd.Index(), r)
		tr.CoinSealed(nd.Index(), cfg.M, nd.Round())
		return &Result{
			Batch:        batch,
			Clique:       cand.members,
			Attempts:     attempt,
			SeedConsumed: seedUsed,
		}, nil
	}
	return nil, ErrTooManyAttempts
}

// ConsistencyGraph builds the undirected core G of Fig. 5 step 4 from one
// player's view: vertices are dealers, with an edge {j,k} iff both directed
// consistency relations hold (F_j decoded and γ_k lies on it, and vice
// versa). The n² polynomial evaluations — the quadratic term of a player's
// round work — fan out per dealer row across cfg.Pool; each task writes
// only its own row of the directed relation, and the edges are then added
// in (j,k) index order on the calling goroutine. Exported so benchmarks can
// drive one player's graph workload on a fabricated view.
func ConsistencyGraph(cfg Config, view *bitgen.View) (*clique.Graph, error) {
	f := cfg.Field
	n := cfg.N
	ids := make([]gf2k.Element, n)
	for k := 0; k < n; k++ {
		id, err := f.ElementFromID(k + 1)
		if err != nil {
			return nil, err
		}
		ids[k] = id
	}
	directed := make([][]bool, n)
	cfg.Pool.ForEach(n, func(j int) {
		row := make([]bool, n)
		if view.Outputs[j].OK {
			for k := 0; k < n; k++ {
				row[k] = view.Has[k][j] &&
					poly.Eval(f, view.Outputs[j].F, ids[k]) == view.GammaOf[k][j]
			}
		}
		directed[j] = row
	})
	g := clique.NewGraph(n)
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			if directed[j][k] && directed[k][j] {
				g.AddEdge(j, k)
			}
		}
	}
	return g, nil
}

// conditionIII counts the members j of the candidate clique whose announced
// γ's (in this player's view) satisfy every F_k of the candidate, k ∈ C_l —
// Fig. 5 step 10 condition iii. Cost: at most |C_l|² degree-t Horner
// evaluations, i.e. O(|C_l|²·t) multiplications; the member's field id is
// computed once per member, not once per (member, dealer) pair. The
// per-member checks are independent and fan out across cfg.Pool; each task
// writes only its member's slot and the tally runs in member order.
func conditionIII(cfg Config, view *bitgen.View, cand *cliqueMsg) int {
	f := cfg.Field
	pass := make([]bool, len(cand.members))
	cfg.Pool.ForEach(len(cand.members), func(mi int) {
		j := cand.members[mi]
		id, err := f.ElementFromID(j + 1)
		if err != nil {
			return
		}
		for idx, k := range cand.members {
			if !view.Has[j][k] {
				return
			}
			if poly.Eval(f, cand.polys[idx], id) != view.GammaOf[j][k] {
				return
			}
		}
		pass[mi] = true
	})
	count := 0
	for _, ok := range pass {
		if ok {
			count++
		}
	}
	return count
}

// assembleBatch builds this player's handle on the new sealed coins: the
// combined share of coin h is Σ_{j∈C_l} α_i[j][h], and the player marks
// itself silent unless it passes the objective self-check against the
// agreed F's.
// sumChunk is the fixed number of coin indexes one share-summing task
// covers; constant (never width-dependent) so the add schedule is identical
// at every parallelism level.
const sumChunk = 64

func assembleBatch(cfg Config, sh *bitgen.Shares, cand *cliqueMsg, self int, r gf2k.Element) *coin.Batch {
	f := cfg.Field
	shares := make([]gf2k.Element, cfg.M)
	complete := true
	for _, j := range cand.members {
		if !sh.Received[j] {
			complete = false
		}
	}
	// Coin h's combined share Σ_{j∈C_l} α_i[j][h] touches every member row
	// at one column; distinct h are independent, so the M columns fan out
	// in fixed-size chunks.
	chunks := parallel.Chunks(cfg.M, sumChunk)
	cfg.Pool.ForEach(chunks, func(c int) {
		lo, hi := c*sumChunk, (c+1)*sumChunk
		if hi > cfg.M {
			hi = cfg.M
		}
		for _, j := range cand.members {
			if !sh.Received[j] {
				continue
			}
			row := sh.Alpha[j]
			for h := lo; h < hi; h++ {
				shares[h] = f.Add(shares[h], row[h])
			}
		}
	})
	return &coin.Batch{
		Field:    cfg.Field,
		T:        cfg.T,
		S:        append([]int(nil), cand.members...),
		Shares:   shares,
		Silent:   !complete || !selfCheck(cfg, sh, cand, self, r),
		Counters: cfg.Counters,
		Pool:     cfg.Pool,
	}
}

// selfCheck verifies that this player's own announced γ for every clique
// member k equals F_k(own id) under the agreed polynomials. Passing implies
// (whp, Lemma 5) that the player's shares lie on the common coin
// polynomials, making it a safe transmitter for Coin-Expose.
func selfCheck(cfg Config, sh *bitgen.Shares, cand *cliqueMsg, self int, r gf2k.Element) bool {
	f := cfg.Field
	id, err := f.ElementFromID(self + 1)
	if err != nil {
		return false
	}
	for idx, k := range cand.members {
		gamma, ok := sh.Gamma(f, k, r)
		if !ok {
			return false
		}
		if poly.Eval(f, cand.polys[idx], id) != gamma {
			return false
		}
	}
	return true
}
