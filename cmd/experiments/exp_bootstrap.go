package main

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/rba"
	"repro/internal/simnet"
)

// runE12 — Fig. 1: bootstrap self-sufficiency. A tiny one-time seed
// sustains an effectively endless stream; each refill regenerates more
// than it consumes.
func runE12() {
	const (
		n, t      = 7, 1
		k         = 32
		seedCoins = 8
		deliver   = 500
	)
	field := gf2k.MustNew(k)
	var ctr metrics.Counters
	cfg := core.Config{Field: field, N: n, T: t, BatchSize: 16, Counters: &ctr}
	rng := rand.New(rand.NewSource(12))
	gens, err := core.SetupTrusted(cfg, seedCoins, rng)
	if err != nil {
		panic(err)
	}
	nw := simnet.New(n, simnet.WithCounters(&ctr))
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i)))
			coins := make([]gf2k.Element, 0, deliver)
			for len(coins) < deliver {
				c, err := gens[i].Next(nd, rnd)
				if err != nil {
					return nil, err
				}
				coins = append(coins, c)
			}
			return coins, nil
		}
	}
	results := simnet.Run(nw, fns)
	ref := results[0].Value.([]gf2k.Element)
	violations := 0
	for i, r := range results {
		if r.Err != nil {
			panic(fmt.Sprintf("player %d: %v", i, r.Err))
		}
		for h, c := range r.Value.([]gf2k.Element) {
			if c != ref[h] {
				violations++
			}
		}
	}
	st := gens[0].Stats()
	ones := 0
	seen := make(map[gf2k.Element]bool)
	dups := 0
	for _, c := range ref {
		ones += int(c & 1)
		if seen[c] {
			dups++
		}
		seen[c] = true
	}
	s := ctr.Snapshot()
	fmt.Printf("initial seed:            %d coins (one-time trusted dealer)\n", seedCoins)
	fmt.Printf("coins delivered:         %d\n", st.CoinsDelivered)
	fmt.Printf("Coin-Gen refills:        %d (avg %.2f seed coins consumed each)\n",
		st.Batches, float64(st.SeedSpent)/float64(st.Batches))
	fmt.Printf("leader attempts total:   %d (%.3f per refill)\n", st.Attempts,
		float64(st.Attempts)/float64(st.Batches))
	fmt.Printf("unanimity violations:    %d (bound: Mn·2^-k ≈ %.1e per batch)\n",
		violations, float64(16*n)/float64(uint64(1)<<k))
	fmt.Printf("coin bit balance:        %d/%d ones; duplicate coins: %d\n", ones, deliver, dups)
	fmt.Printf("amortized per coin:      %.0f bytes, %.1f msgs, %.2f rounds\n",
		float64(s.Bytes)/deliver, float64(s.Messages)/deliver, float64(s.Rounds)/deliver)
	fmt.Printf("\n%s: the generator is self-sufficient after the one-time seed.\n",
		pass(violations == 0 && dups == 0))
}

// runE13 — §1.2: pro-active security. The corrupted set moves between
// batches (crash flavour here; the Byzantine-dealer flavour is
// examples/proactive); the system keeps producing unanimous coins.
func runE13() {
	const (
		n, t = 13, 2
		k    = 32
	)
	field := gf2k.MustNew(k)
	cfg := core.Config{Field: field, N: n, T: t, BatchSize: 12, Counters: nil}
	rng := rand.New(rand.NewSource(13))
	gens, err := core.SetupTrusted(cfg, 8, rng)
	if err != nil {
		panic(err)
	}

	phases := []map[int]bool{
		{2: true},
		{2: true, 9: true},
		{2: true, 9: true}, // set fixed "for a constant number of rounds"
	}
	fmt.Printf("n=%d, t=%d; faulty set per phase: %v %v %v\n\n",
		n, t, sortedKeys(phases[0]), sortedKeys(phases[1]), sortedKeys(phases[2]))
	for p, crashed := range phases {
		nw := simnet.New(n)
		fns := make([]simnet.PlayerFunc, n)
		for i := 0; i < n; i++ {
			if crashed[i] {
				fns[i] = adversary.Crash()
				continue
			}
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(p*100 + i)))
				out := make([]gf2k.Element, 0, 8)
				for len(out) < 8 {
					c, err := gens[i].Next(nd, rnd)
					if err != nil {
						return nil, err
					}
					out = append(out, c)
				}
				return out, nil
			}
		}
		results := simnet.Run(nw, fns)
		var ref []gf2k.Element
		ok := true
		for i, r := range results {
			if crashed[i] {
				continue
			}
			if r.Err != nil {
				panic(fmt.Sprintf("phase %d player %d: %v", p, i, r.Err))
			}
			coins := r.Value.([]gf2k.Element)
			if ref == nil {
				ref = coins
				continue
			}
			for h := range ref {
				if coins[h] != ref[h] {
					ok = false
				}
			}
		}
		fmt.Printf("phase %d: 8 coins, unanimous among survivors: %s\n", p+1, pass(ok))
	}
	fmt.Println("\nno long-lived secret exists — every batch is freshly dealt — so the")
	fmt.Println("moving intruder gains nothing from corrupting different players over time.")
}

// runE14 — the application: randomized BA fed by the D-PRBG, with split
// inputs and Byzantine noise.
func runE14() {
	const (
		n, t   = 13, 2
		k      = 32
		phases = 16
	)
	field := gf2k.MustNew(k)
	rng := rand.New(rand.NewSource(14))
	batches, _, err := coin.DealTrusted(field, n, t, phases+2, rng)
	if err != nil {
		panic(err)
	}
	inputs := make([]byte, n)
	for i := range inputs {
		if i >= n/2 {
			inputs[i] = 1
		}
	}
	byz := map[int]bool{3: true, 10: true}
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		if byz[i] {
			fns[i] = adversary.GarbageSpammer(int64(i), 3*phases, 8)
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return rba.Run(nd, rba.Config{N: n, T: t, Phases: phases, Coins: batches[i]}, inputs[i])
		}
	}
	results := simnet.Run(nw, fns)
	counts := map[byte]int{}
	for i, r := range results {
		if byz[i] {
			continue
		}
		if r.Err != nil {
			panic(fmt.Sprintf("player %d: %v", i, r.Err))
		}
		counts[r.Value.(byte)]++
	}
	fmt.Printf("n=%d, t=%d, split inputs (%d zeros / %d ones), %d Byzantine spammers\n",
		n, t, n/2, n-n/2, len(byz))
	fmt.Printf("decisions: %v — agreement: %s\n", counts, pass(len(counts) == 1))
	fmt.Printf("shared coins consumed: %d (one per phase; residual disagreement ≤ 2^-%d)\n",
		phases, phases)
}
