package simnet

// Peer configuration for the multi-process deployment: one YAML file,
// identical at every daemon, describing the whole cluster — the player
// roster with its network addresses, the shared channel-authentication
// secret, and the protocol parameters every player must agree on. The
// transport layer folds everything except the secret into a digest that the
// handshake pins, so two daemons reading different configs refuse to talk
// instead of desyncing rounds later.
//
// The parser accepts a small, strict YAML subset — scalars, one list of
// mappings, comments — so the repository needs no external dependency:
//
//	cluster: demo              # optional label
//	secret: 6d6f6f6e…          # hex, ≥ 16 bytes; see docs/OPERATIONS.md
//	t: 1                       # fault bound
//	k: 32                      # coin field GF(2^k)
//	batch: 96                  # Coin-Gen batch size M
//	threshold: 6               # blocking refill threshold
//	seedcoins: 24              # one-time trusted-dealer seed size
//	generation: 0              # committee generation (bumped by reshares)
//	peers:
//	  - id: 0
//	    addr: 127.0.0.1:9400
//	  - id: 1
//	    addr: 10.0.0.2:9400
//	    listen: 0.0.0.0:9400   # optional local bind override (NAT)
//	    http: 10.0.0.2:8433    # optional observability address (beaconctl)
//
// Unknown keys, tab indentation, duplicate keys and malformed scalars are
// errors: an operator typo must fail loudly at startup, not as a protocol
// divergence an hour in.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Peer is one row of the cluster roster.
type Peer struct {
	// ID is the 0-based player index; the roster must cover 0..n-1 exactly.
	ID int
	// Addr is the TCP address the other players dial to reach this peer.
	Addr string
	// Listen optionally overrides the local bind address (e.g. 0.0.0.0:port
	// behind NAT). Empty means listen on Addr. Listen is deployment-local
	// and excluded from the config digest.
	Listen string
	// HTTP is the peer's observability address (beacond -addr): where
	// /metrics, /v1/healthz and /debug/trace are served. It is consumed by
	// operator tooling (cmd/beaconctl), never by the transport, and — like
	// Listen — is excluded from the digest so adding it to a running
	// cluster's config does not force a re-ceremony.
	HTTP string
}

// PeerConfig is the parsed peers.yaml: the cluster roster, the shared
// authentication secret, and the protocol parameters the daemons must agree
// on. The transport consumes Peers and Secret; the serving layer
// (internal/beacon) consumes the protocol parameters — they live here so a
// single file, digest-checked at every handshake, fixes them cluster-wide.
type PeerConfig struct {
	// Cluster is an optional human-readable label, folded into the digest.
	Cluster string
	// Secret is the shared channel-authentication key (decoded from hex).
	// It keys the handshake HMAC and never crosses the wire or enters the
	// digest.
	Secret []byte
	// Peers is the roster, sorted by ID after Validate.
	Peers []Peer

	// T is the Byzantine fault bound; K the coin field GF(2^k); Batch the
	// Coin-Gen batch size M; Threshold the blocking refill trigger;
	// SeedCoins the one-time trusted-dealer seed size. The transport does
	// not interpret them beyond the digest; internal/beacon validates them
	// against core.Config. Zero values take the daemon's defaults.
	T, K, Batch, Threshold, SeedCoins int

	// Generation is the committee generation: 0 for the roster the trusted
	// dealer seeded, bumped by one for each dealer-free reshare
	// (internal/reshare) that hands the seed to a new roster or refreshes
	// it in place. It is folded into the config digest, so a
	// generation-g mesh and a generation-g+1 mesh for the *same* roster
	// refuse to interconnect: during a handoff the old and new committees
	// are distinct clusters, and after an in-place refresh a stale daemon
	// still running the old generation's config cannot rejoin and desync.
	Generation int
}

// N returns the cluster size.
func (c *PeerConfig) N() int { return len(c.Peers) }

// ListenAddr returns the bind address for player id: the Listen override
// when set, the dial address otherwise.
func (c *PeerConfig) ListenAddr(id int) string {
	if c.Peers[id].Listen != "" {
		return c.Peers[id].Listen
	}
	return c.Peers[id].Addr
}

// Validate checks the roster shape: a non-empty secret of at least 16
// bytes, ids covering 0..n-1 exactly, and non-empty, pairwise-distinct dial
// addresses. Protocol parameters are range-checked where a violation could
// never be valid (negative values); full validation against core.Config
// happens in the serving layer.
func (c *PeerConfig) Validate() error {
	if len(c.Secret) < 16 {
		return fmt.Errorf("simnet: peer config secret must be ≥ 16 bytes of hex, got %d", len(c.Secret))
	}
	if len(c.Peers) == 0 {
		return fmt.Errorf("simnet: peer config lists no peers")
	}
	n := len(c.Peers)
	byID := make([]*Peer, n)
	addrs := make(map[string]int, n)
	for i := range c.Peers {
		p := &c.Peers[i]
		if p.ID < 0 || p.ID >= n {
			return fmt.Errorf("simnet: peer id %d outside [0,%d) — ids must cover 0..n-1 exactly", p.ID, n)
		}
		if byID[p.ID] != nil {
			return fmt.Errorf("simnet: duplicate peer id %d", p.ID)
		}
		byID[p.ID] = p
		if p.Addr == "" {
			return fmt.Errorf("simnet: peer %d has no addr", p.ID)
		}
		if prev, dup := addrs[p.Addr]; dup {
			return fmt.Errorf("simnet: peers %d and %d share addr %s", prev, p.ID, p.Addr)
		}
		addrs[p.Addr] = p.ID
	}
	sorted := make([]Peer, n)
	for i, p := range byID {
		sorted[i] = *p
	}
	c.Peers = sorted
	for _, v := range []struct {
		name string
		val  int
	}{{"t", c.T}, {"k", c.K}, {"batch", c.Batch}, {"threshold", c.Threshold}, {"seedcoins", c.SeedCoins}, {"generation", c.Generation}} {
		if v.val < 0 {
			return fmt.Errorf("simnet: peer config %s must not be negative, got %d", v.name, v.val)
		}
	}
	return nil
}

// Digest returns the canonical SHA-256 of everything both sides of a
// handshake must agree on: the cluster label, the protocol parameters and
// the roster (ids and dial addresses). The secret and the node-local Listen
// overrides are excluded. Both HELLO and the handshake MACs carry this
// digest, so a config mismatch is detected before any protocol traffic.
func (c *PeerConfig) Digest() [32]byte {
	var b strings.Builder
	fmt.Fprintf(&b, "dprbg-peers-v1\ncluster=%s\nt=%d k=%d batch=%d threshold=%d seedcoins=%d\n",
		c.Cluster, c.T, c.K, c.Batch, c.Threshold, c.SeedCoins)
	// Generation 0 contributes nothing, so a config that has never been
	// reshared keeps the digest it had before the field existed — adding
	// resharing support to a live cluster does not force a re-ceremony —
	// and an explicit `generation: 0` digests the same as an absent key.
	if c.Generation > 0 {
		fmt.Fprintf(&b, "generation=%d\n", c.Generation)
	}
	for _, p := range c.Peers {
		fmt.Fprintf(&b, "peer %d %s\n", p.ID, p.Addr)
	}
	return sha256.Sum256([]byte(b.String()))
}

// LoadPeerConfig reads and parses a peers.yaml file and validates it.
func LoadPeerConfig(path string) (*PeerConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("simnet: peer config: %w", err)
	}
	cfg, err := ParsePeerConfig(data)
	if err != nil {
		return nil, fmt.Errorf("simnet: peer config %s: %w", path, err)
	}
	return cfg, nil
}

// ParsePeerConfig parses the YAML subset documented on the package file and
// validates the result. Errors carry the 1-based line number.
func ParsePeerConfig(data []byte) (*PeerConfig, error) {
	cfg := &PeerConfig{}
	seen := map[string]bool{}
	inPeers := false
	itemIndent := -1
	var cur *Peer

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		lineno := ln + 1
		line, err := stripComment(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.Contains(line, "\t") {
			return nil, fmt.Errorf("line %d: tab indentation is not supported; use spaces", lineno)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		body := strings.TrimSpace(line)

		if indent == 0 {
			inPeers = false
			cur = nil
			key, val, err := splitKV(body)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineno, err)
			}
			if seen[key] {
				return nil, fmt.Errorf("line %d: duplicate key %q", lineno, key)
			}
			seen[key] = true
			switch key {
			case "cluster":
				cfg.Cluster = val
			case "secret":
				sec, err := hex.DecodeString(val)
				if err != nil {
					return nil, fmt.Errorf("line %d: secret is not valid hex: %v", lineno, err)
				}
				cfg.Secret = sec
			case "t", "k", "batch", "threshold", "seedcoins", "generation":
				iv, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("line %d: %s wants an integer, got %q", lineno, key, val)
				}
				switch key {
				case "t":
					cfg.T = iv
				case "k":
					cfg.K = iv
				case "batch":
					cfg.Batch = iv
				case "threshold":
					cfg.Threshold = iv
				case "seedcoins":
					cfg.SeedCoins = iv
				case "generation":
					cfg.Generation = iv
				}
			case "peers":
				if val != "" {
					return nil, fmt.Errorf("line %d: peers must introduce a list, not a scalar", lineno)
				}
				inPeers = true
				itemIndent = -1
			default:
				return nil, fmt.Errorf("line %d: unknown key %q", lineno, key)
			}
			continue
		}

		// Indented content is only valid inside the peers list.
		if !inPeers {
			return nil, fmt.Errorf("line %d: unexpected indented line outside peers", lineno)
		}
		if strings.HasPrefix(body, "- ") || body == "-" {
			if itemIndent == -1 {
				itemIndent = indent
			} else if indent != itemIndent {
				return nil, fmt.Errorf("line %d: inconsistent list indentation", lineno)
			}
			cfg.Peers = append(cfg.Peers, Peer{ID: -1})
			cur = &cfg.Peers[len(cfg.Peers)-1]
			body = strings.TrimSpace(strings.TrimPrefix(body, "-"))
			if body == "" {
				continue
			}
		} else if cur == nil {
			return nil, fmt.Errorf("line %d: peer fields before any - item", lineno)
		}
		key, val, err := splitKV(body)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		switch key {
		case "id":
			iv, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("line %d: peer id wants an integer, got %q", lineno, val)
			}
			cur.ID = iv
		case "addr":
			cur.Addr = val
		case "listen":
			cur.Listen = val
		case "http":
			cur.HTTP = val
		default:
			return nil, fmt.Errorf("line %d: unknown peer key %q", lineno, key)
		}
	}
	for i := range cfg.Peers {
		if cfg.Peers[i].ID == -1 {
			return nil, fmt.Errorf("peer entry %d has no id", i)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// splitKV splits "key: value" (value may be empty, quoted with ' or ").
func splitKV(s string) (key, val string, err error) {
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", fmt.Errorf("expected key: value, got %q", s)
	}
	key = strings.TrimSpace(s[:i])
	val = strings.TrimSpace(s[i+1:])
	if key == "" {
		return "", "", fmt.Errorf("empty key in %q", s)
	}
	if len(val) >= 2 {
		if (val[0] == '\'' && val[len(val)-1] == '\'') || (val[0] == '"' && val[len(val)-1] == '"') {
			val = val[1 : len(val)-1]
		}
	}
	return key, val, nil
}

// stripComment removes a trailing # comment that is not inside quotes. A
// quote left open at end of line is an error.
func stripComment(line string) (string, error) {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#':
			if i == 0 || line[i-1] == ' ' {
				return line[:i], nil
			}
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("unterminated %c-quote", quote)
	}
	return line, nil
}
