// Package clique provides the clique-approximation step of Coin-Gen
// (Fig. 5 step 6). The consistency graph G always contains a clique of the
// ≥ n−t honest players; the paper invokes "the protocol of Gabril
// ([15], p. 134)" to find a clique of size at least n−2t. The standard
// Gavril argument: take a maximal matching in the complement graph; each
// matching edge covers at least one vertex outside the hidden clique, so
// the uncovered vertices are pairwise adjacent in G and at least n−2t of
// them remain.
//
// The algorithm is deterministic (edges scanned in index order), so every
// honest player computes the same clique from the same graph.
package clique

import "fmt"

// Graph is a simple undirected graph on vertices 0..n−1.
type Graph struct {
	n   int
	adj [][]bool
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("clique: negative vertex count %d", n))
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {a, b}. Self-loops are ignored.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// HasEdge reports whether {a, b} is an edge.
func (g *Graph) HasEdge(a, b int) bool { return a != b && g.adj[a][b] }

// IsClique reports whether the given vertices are pairwise adjacent.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// ApproxClique returns a clique via Gavril's maximal-matching argument: if G
// contains a clique of size n−t, the result has size at least n−2t. The
// returned vertices are sorted. The computation is deterministic.
func ApproxClique(g *Graph) []int {
	covered := make([]bool, g.n)
	// Greedy maximal matching in the complement graph, scanning pairs in
	// lexicographic order.
	for a := 0; a < g.n; a++ {
		if covered[a] {
			continue
		}
		for b := a + 1; b < g.n; b++ {
			if covered[b] || g.HasEdge(a, b) {
				continue
			}
			// {a, b} is a complement edge; add it to the matching.
			covered[a] = true
			covered[b] = true
			break
		}
	}
	var out []int
	for v := 0; v < g.n; v++ {
		if !covered[v] {
			out = append(out, v)
		}
	}
	return out
}
