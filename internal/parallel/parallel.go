// Package parallel is the intra-round compute engine: a bounded worker
// pool that fans pure per-index computation out across cores while keeping
// every protocol guarantee the simnet substrate relies on.
//
// The protocols' wall-clock bottleneck at realistic sizes is per-player
// round work that is embarrassingly parallel across dealers, players, or
// coins — per-dealer Berlekamp–Welch decodes in Bit-Gen (Fig. 4 step 5),
// the n² consistency-graph evaluations of Coin-Gen (Fig. 5 step 4), the
// M-term challenge combinations of Batch-VSS (Fig. 3 step 2). A Pool lets
// one node goroutine borrow idle cores for exactly those loops.
//
// # Determinism rules
//
// The simnet model is one goroutine per node advancing in lockstep, and the
// conformance suite pins byte-identical canonical transcripts across runs.
// The pool preserves both invariants by construction:
//
//   - Tasks are pure compute. No simnet send/receive, no obs tracer call,
//     and no protocol-state mutation happens inside a task; workers only
//     read shared immutable inputs and write their own index's slot.
//   - Results are collected in index order. ForEach(n, fn) runs fn(i) for
//     every i in [0, n) exactly once and returns only when all are done;
//     callers then consume the output slots in 0..n−1 order on the node
//     goroutine, so downstream traffic and trace events are identical at
//     every width.
//   - Work splitting never depends on the width. Callers that chunk a loop
//     (e.g. the Horner combinations) chunk by a fixed size, so the field-op
//     count — and with it every metrics-bearing span — is width-invariant.
//
// # Degradation
//
// A nil *Pool, width 1, or a single task all take a zero-allocation inline
// path: the loop runs on the caller's goroutine with no channel, no
// goroutine, and no atomic traffic. Pools forked from one root share its
// capacity tokens, so the per-node pools of a beacon deployment compete
// fairly for the same cores instead of oversubscribing them; when no token
// is free the caller simply runs its loop serially — parallelism is an
// opportunistic speed-up, never a correctness dependency.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Pool bounds the number of goroutines a fan-out may engage. The zero of
// *Pool (nil) is valid and serial; construct wider pools with New. A Pool
// is immutable after construction and safe for concurrent use from any
// number of goroutines — concurrent ForEach calls share the capacity
// tokens.
type Pool struct {
	width int
	// sem holds the shareable worker tokens: width−1 of them, because the
	// calling goroutine always participates as worker zero. Forked pools
	// alias the same channel, which is what makes the capacity global.
	sem chan struct{}
	ctr *metrics.Counters
}

// New returns a pool of the given width (the maximum number of goroutines,
// caller included, one fan-out may use). Width ≤ 0 selects
// runtime.GOMAXPROCS(0); width 1 returns a pool that always runs inline.
func New(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	p := &Pool{width: width}
	if width > 1 {
		p.sem = make(chan struct{}, width-1)
		for i := 0; i < width-1; i++ {
			p.sem <- struct{}{}
		}
	}
	return p
}

// WithCounters returns a copy of the pool that records ParallelTasks and
// ParallelWidth in c. Forks made from the copy inherit the sink.
func (p *Pool) WithCounters(c *metrics.Counters) *Pool {
	if p == nil {
		return nil
	}
	cp := *p
	cp.ctr = c
	return &cp
}

// Fork returns a new handle on the pool sharing its capacity tokens: the
// forks' combined concurrency never exceeds the root's width. A beacon
// deployment gives every node goroutine its own fork, so concurrent draws
// and a background refill compete for — rather than multiply — the
// configured core budget. Forking a nil or serial pool returns it
// unchanged.
func (p *Pool) Fork() *Pool {
	if p == nil || p.sem == nil {
		return p
	}
	cp := *p
	return &cp
}

// Width reports the configured width; a nil pool has width 1.
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// workerPanic carries a worker's recovered panic value to the calling
// goroutine, preserving the original value while marking the crossing.
type workerPanic struct{ val any }

func (w workerPanic) String() string {
	return fmt.Sprintf("parallel: worker panic: %v", w.val)
}

// ForEach runs fn(i) exactly once for every i in [0, n) and returns when
// all calls have finished. Up to Width() goroutines (the caller plus
// borrowed workers) execute concurrently; the assignment of indices to
// goroutines is unspecified, so fn must be safe to run concurrently with
// itself and must confine its writes to per-index state. If any fn panics,
// ForEach re-panics the first recovered value on the calling goroutine
// after all workers have stopped.
//
// The serial path — nil pool, width 1, n ≤ 1, or no free capacity token —
// performs no allocation and launches no goroutine.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.sem == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Borrow up to min(width, n) − 1 extra workers, without blocking: a
	// busy pool degrades to inline execution rather than queueing, because
	// the caller's round cannot proceed until this loop finishes anyway.
	want := p.width - 1
	if n-1 < want {
		want = n - 1
	}
	extra := 0
	for extra < want {
		select {
		case <-p.sem:
			extra++
		default:
			want = extra // no token free; run with what we have
		}
	}
	if p.ctr != nil {
		p.ctr.AddParallelTasks(int64(n))
		p.ctr.AddParallelWidth(int64(extra))
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[workerPanic]
	)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				wp := &workerPanic{val: r}
				panicked.CompareAndSwap(nil, wp)
				// Drain the remaining indices so sibling workers exit
				// promptly instead of running tasks whose results will be
				// discarded by the re-panic.
				next.Store(int64(n))
			}
		}()
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the caller is always worker zero
	wg.Wait()
	for i := 0; i < extra; i++ {
		p.sem <- struct{}{} // return the borrowed tokens
	}
	if wp := panicked.Load(); wp != nil {
		panic(wp.val)
	}
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the results
// in index order. It is ForEach with the output slice managed for the
// caller; the same concurrency and determinism rules apply.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// Chunks returns the number of fixed-size chunks needed to cover n items —
// the width-independent work-splitting helper for loops with sequential
// dependencies (Horner combinations, share sums). Splitting by a constant
// chunk size, never by pool width, keeps the operation count — and with it
// every cost-annotated trace span — identical across widths.
func Chunks(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}
