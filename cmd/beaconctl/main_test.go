package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/prom"
)

// fakeDaemon is an httptest stand-in for one beacond -player process: it
// serves the same three observability endpoints beaconctl scrapes.
type fakeDaemon struct {
	id         int
	round      int
	logLen     int
	epoch      int
	generation int
	remaining  int
	joined     bool
	refilling  bool
	armed      bool
	cutover    int
	peers      []bool
	demotions  int
	trace      []obs.Event

	lastTraceQuery string // recorded ?n= forwarding
}

func (f *fakeDaemon) serve(t *testing.T) *httptest.Server {
	t.Helper()
	reg := prom.NewRegistry()
	emit := reg.Histogram("beacond_emit_latency_seconds",
		"time to emit one coin", prom.ExpBuckets(0.001, 2, 10))
	for i := 0; i < 8; i++ {
		emit.Observe(0.002)
	}
	emit.Observe(0.5)
	if f.demotions > 0 {
		dem := reg.CounterVec("simnet_peer_demotions_total", "demotions", "peer")
		dem.With("1").Add(int64(f.demotions))
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"player":     f.id,
			"joined":     f.joined,
			"round":      f.round,
			"log":        f.logLen,
			"epoch":      f.epoch,
			"generation": f.generation,
			"remaining":  f.remaining,
			"refilling":  f.refilling,
			"peers":      f.peers,
			"armed":      f.armed,
			"cutover":    f.cutover,
		})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		f.lastTraceQuery = r.URL.RawQuery
		w.Header().Set("Content-Type", "application/x-ndjson")
		j := obs.NewJSONL(w)
		for _, e := range f.trace {
			j.Emit(e)
		}
		j.Flush()
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// writeCtlPeersYAML writes a minimal valid peers.yaml whose http: fields
// point at the given observability addresses ("" omits the field).
func writeCtlPeersYAML(t *testing.T, httpAddrs []string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("cluster: ctltest\nsecret: 000102030405060708090a0b0c0d0e0f\npeers:\n")
	for i, h := range httpAddrs {
		fmt.Fprintf(&b, "  - id: %d\n    addr: 127.0.0.1:%d\n", i, 9400+i)
		if h != "" {
			fmt.Fprintf(&b, "    http: %s\n", h)
		}
	}
	path := filepath.Join(t.TempDir(), "peers.yaml")
	if err := os.WriteFile(path, []byte(b.String()), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func hostOf(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestStatusTable drives beaconctl status against a 3-player cluster where
// player 0 leads, player 1 trails beyond the -lag threshold, and player 2
// is dead (SIGKILL stand-in): the table must flag exactly those states.
func TestStatusTable(t *testing.T) {
	lead := (&fakeDaemon{id: 0, round: 40, logLen: 40, epoch: 2, generation: 1, remaining: 17,
		joined: true, armed: true, cutover: 43, peers: []bool{true, true, false}}).serve(t)
	straggler := (&fakeDaemon{id: 1, round: 35, logLen: 35, epoch: 2, generation: 1, remaining: 22,
		joined: true, refilling: true, demotions: 1, cutover: -1, peers: []bool{true, true, false}}).serve(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := hostOf(dead)
	dead.Close() // connection refused from now on

	cfg := writeCtlPeersYAML(t, []string{hostOf(lead), hostOf(straggler), deadAddr})

	var out, errBuf bytes.Buffer
	if err := run([]string{"status", "-config", cfg, "-lag", "3"}, &out, &errBuf); err != nil {
		t.Fatalf("status: %v", err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 { // header + 3 rows + summary
		t.Fatalf("want 5 output lines, got %d:\n%s", len(lines), got)
	}
	row := func(id int) string { return lines[1+id] }

	if !strings.Contains(lines[0], "GEN") {
		t.Errorf("header missing GEN column: %q", lines[0])
	}
	if strings.Contains(row(0), "STRAGGLER") || strings.Contains(row(0), "DOWN") {
		t.Errorf("lead row flagged: %q", row(0))
	}
	if !strings.Contains(row(0), "emit") {
		t.Errorf("lead row missing emit latency quantiles: %q", row(0))
	}
	if !strings.Contains(row(0), "2/3") {
		t.Errorf("lead row missing peers 2/3: %q", row(0))
	}
	if !strings.Contains(row(0), "reshare@43") {
		t.Errorf("armed lead not flagged with its committed cutover: %q", row(0))
	}
	if !strings.Contains(row(1), "STRAGGLER") {
		t.Errorf("straggler (lag 5 > 3) not flagged: %q", row(1))
	}
	for _, want := range []string{"refilling", "demoted-peers=1"} {
		if !strings.Contains(row(1), want) {
			t.Errorf("straggler row missing %q: %q", want, row(1))
		}
	}
	if !strings.Contains(row(2), "DOWN") {
		t.Errorf("dead daemon not flagged DOWN: %q", row(2))
	}
	if !strings.Contains(lines[4], "lead round 40") || !strings.Contains(lines[4], "1/3 players healthy") {
		t.Errorf("bad summary line: %q", lines[4])
	}
}

// TestStatusLagWithinThreshold checks the same cluster reads healthy once
// the straggler is within -lag rounds of the lead.
func TestStatusLagWithinThreshold(t *testing.T) {
	a := (&fakeDaemon{id: 0, round: 40, joined: true, peers: []bool{true, true}}).serve(t)
	b := (&fakeDaemon{id: 1, round: 38, joined: true, peers: []bool{true, true}}).serve(t)
	cfg := writeCtlPeersYAML(t, []string{hostOf(a), hostOf(b)})

	var out, errBuf bytes.Buffer
	if err := run([]string{"status", "-config", cfg, "-lag", "3"}, &out, &errBuf); err != nil {
		t.Fatalf("status: %v", err)
	}
	got := out.String()
	if strings.Contains(got, "STRAGGLER") || strings.Contains(got, "DOWN") {
		t.Errorf("healthy cluster flagged:\n%s", got)
	}
	if !strings.Contains(got, "2/2 players healthy") {
		t.Errorf("missing healthy summary:\n%s", got)
	}
}

// traceFor fabricates a tiny per-daemon trace: one round boundary plus one
// coin-sealed event per round. Origin is left 0 — MergeJSONL stamps it from
// the map key, exactly as it does for real per-daemon files.
func traceFor(player int, rounds ...int) []obs.Event {
	var evs []obs.Event
	seq := uint64(1)
	for _, r := range rounds {
		evs = append(evs,
			obs.Event{Seq: seq, Type: obs.EvRound, Player: -1, Round: r, Count: 3},
			obs.Event{Seq: seq + 1, Type: obs.EvCoinSealed, Player: player, Round: r, Count: 1},
		)
		seq += 2
	}
	return evs
}

// TestTimelineMergesAcrossDaemons fetches two daemons' flight recorders,
// merges them, and checks the rendered timeline interleaves both origins.
func TestTimelineMergesAcrossDaemons(t *testing.T) {
	d0 := &fakeDaemon{id: 0, joined: true, trace: traceFor(0, 1, 2)}
	d1 := &fakeDaemon{id: 1, joined: true, trace: traceFor(1, 1, 2)}
	s0, s1 := d0.serve(t), d1.serve(t)
	cfg := writeCtlPeersYAML(t, []string{hostOf(s0), hostOf(s1)})

	var out, errBuf bytes.Buffer
	if err := run([]string{"timeline", "-config", cfg, "-n", "128"}, &out, &errBuf); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "8 events from 2 daemons") {
		t.Errorf("bad event accounting:\n%s", got)
	}
	// Multi-origin traces prefix every line with the emitting node.
	for _, want := range []string{"[n0 ", "[n1 "} {
		if !strings.Contains(got, want) {
			t.Errorf("timeline missing origin label %q:\n%s", want, got)
		}
	}
	if d0.lastTraceQuery != "n=128" {
		t.Errorf("-n not forwarded to /debug/trace: query %q", d0.lastTraceQuery)
	}
}

// TestTimelineMergedJSONLOutput exercises -o: the merged file must parse
// back as JSONL in canonical (epoch, round, origin) order with both
// origins stamped from the roster ids.
func TestTimelineMergedJSONLOutput(t *testing.T) {
	s0 := (&fakeDaemon{id: 0, joined: true, trace: traceFor(0, 1, 2)}).serve(t)
	s1 := (&fakeDaemon{id: 1, joined: true, trace: traceFor(1, 1, 2)}).serve(t)
	cfg := writeCtlPeersYAML(t, []string{hostOf(s0), hostOf(s1)})
	outPath := filepath.Join(t.TempDir(), "merged.jsonl")

	var out, errBuf bytes.Buffer
	if err := run([]string{"timeline", "-config", cfg, "-o", outPath}, &out, &errBuf); err != nil {
		t.Fatalf("timeline -o: %v", err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ParseJSONL(f)
	if err != nil {
		t.Fatalf("merged file does not parse: %v", err)
	}
	if len(events) != 8 {
		t.Fatalf("want 8 merged events, got %d", len(events))
	}
	origins := map[int]int{}
	for i, e := range events {
		origins[e.Origin]++
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: want renumbered seq %d, got %d", i, i+1, e.Seq)
		}
		if i > 0 {
			prev := events[i-1]
			if e.Round < prev.Round {
				t.Errorf("event %d: round order violated (%d after %d)", i, e.Round, prev.Round)
			}
			if e.Round == prev.Round && e.Origin < prev.Origin {
				t.Errorf("event %d: origin order violated within round %d", i, e.Round)
			}
		}
	}
	if origins[0] != 4 || origins[1] != 4 {
		t.Errorf("want 4 events per origin, got %v", origins)
	}
}

// TestTimelineSurvivesDeadDaemon merges around an unreachable daemon
// instead of failing — the operator wants the partial cluster view during
// an outage, not an error.
func TestTimelineSurvivesDeadDaemon(t *testing.T) {
	s0 := (&fakeDaemon{id: 0, joined: true, trace: traceFor(0, 1)}).serve(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := hostOf(dead)
	dead.Close()
	cfg := writeCtlPeersYAML(t, []string{hostOf(s0), deadAddr})

	var out, errBuf bytes.Buffer
	if err := run([]string{"timeline", "-config", cfg}, &out, &errBuf); err != nil {
		t.Fatalf("timeline with dead daemon: %v", err)
	}
	if !strings.Contains(out.String(), "2 events from 1 daemons") {
		t.Errorf("bad partial-merge accounting:\n%s", out.String())
	}
	if !strings.Contains(errBuf.String(), "player 1 unreachable") {
		t.Errorf("missing unreachable warning on stderr: %q", errBuf.String())
	}
}

// gatewayMetrics are two canned beacongw /metrics expositions: the second
// snapshot advances cell 0's routed and shed counters by 50 and 5 over the
// sampling window while cell 1 sits down and idle.
var gatewayMetrics = [2]string{
	`beacon_cell_depth{cell="0"} 60
beacon_cell_depth{cell="1"} 12
beacon_cell_refill_lag{cell="0"} 4
beacon_cell_refill_lag{cell="1"} 52
beacon_cell_queue_depth{cell="0"} 2
beacon_cell_queue_depth{cell="1"} 0
beacon_cell_refill_in_flight{cell="0"} 1
beacon_cell_refill_in_flight{cell="1"} 0
beacon_cell_down{cell="0"} 0
beacon_cell_down{cell="1"} 1
multicell_routed_draws_total{cell="0",route="hash"} 30
multicell_routed_draws_total{cell="0",route="rr"} 20
multicell_shed_total{cell="0"} 1
multicell_streams_active 3
multicell_rejected_total{reason="ratelimit"} 7
multicell_rejected_total{reason="saturated"} 2
`,
	`beacon_cell_depth{cell="0"} 60
beacon_cell_depth{cell="1"} 12
beacon_cell_refill_lag{cell="0"} 4
beacon_cell_refill_lag{cell="1"} 52
beacon_cell_queue_depth{cell="0"} 2
beacon_cell_queue_depth{cell="1"} 0
beacon_cell_refill_in_flight{cell="0"} 1
beacon_cell_refill_in_flight{cell="1"} 0
beacon_cell_down{cell="0"} 0
beacon_cell_down{cell="1"} 1
multicell_routed_draws_total{cell="0",route="hash"} 60
multicell_routed_draws_total{cell="0",route="rr"} 40
multicell_shed_total{cell="0"} 6
multicell_streams_active 3
multicell_rejected_total{reason="ratelimit"} 7
multicell_rejected_total{reason="saturated"} 2
`,
}

// TestCellsTable drives beaconctl cells against a fake gateway serving the
// two canned snapshots: DRAWS/S and SHED/S must come from the counter
// deltas over the window, gauges from the second snapshot, and the down
// cell must be flagged.
func TestCellsTable(t *testing.T) {
	var scrapes int
	gw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		i := scrapes
		if i > 1 {
			i = 1
		}
		scrapes++
		fmt.Fprint(w, gatewayMetrics[i])
	}))
	t.Cleanup(gw.Close)

	var out, errBuf bytes.Buffer
	if err := run([]string{"cells", "-gw", hostOf(gw), "-interval", "100ms"}, &out, &errBuf); err != nil {
		t.Fatalf("cells: %v", err)
	}
	if scrapes != 2 {
		t.Fatalf("want exactly 2 scrapes, got %d", scrapes)
	}
	got := out.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 { // header + 2 cells + cluster footer
		t.Fatalf("want 4 output lines, got %d:\n%s", len(lines), got)
	}
	for _, col := range []string{"CELL", "DEPTH", "LAG", "QUEUE", "REFILL", "DRAWS/S", "SHED/S"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("header missing %s column: %q", col, lines[0])
		}
	}
	// Cell 0: 50 routed draws over the 100ms window = 500.0/s; 5 shed = 50.0/s.
	for _, want := range []string{"60", "4", "2", "yes", "500.0", "50.0"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("cell 0 row missing %q: %q", want, lines[1])
		}
	}
	if strings.Contains(lines[1], "DOWN") {
		t.Errorf("healthy cell 0 flagged DOWN: %q", lines[1])
	}
	if !strings.Contains(lines[2], "DOWN") {
		t.Errorf("dead cell 1 not flagged DOWN: %q", lines[2])
	}
	if !strings.Contains(lines[2], "0.0") {
		t.Errorf("idle cell 1 should show a zero rate: %q", lines[2])
	}
	for _, want := range []string{"500.0 draws/s", "2 cells", "3 live streams", "9 draws rejected"} {
		if !strings.Contains(lines[3], want) {
			t.Errorf("footer missing %q: %q", want, lines[3])
		}
	}
}

// TestCellsRejectsNonGateway points cells at a daemon-style /metrics with
// no beacon_cell_* series: it must error instead of printing an empty table.
func TestCellsRejectsNonGateway(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "beacond_emit_latency_seconds_count 8\n")
	}))
	t.Cleanup(srv.Close)

	var out, errBuf bytes.Buffer
	err := run([]string{"cells", "-gw", hostOf(srv), "-interval", "1ms"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "beacon_cell_") {
		t.Fatalf("want no-cells error, got %v", err)
	}
}

// TestCLIErrors covers argument validation: missing subcommand, unknown
// subcommand, and a missing -config all fail with usage guidance.
func TestCLIErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"status"},
		{"timeline"},
		{"cells"},
	} {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("run(%v): want error, got nil", args)
		}
	}
	if err := run([]string{"help"}, &out, &errBuf); err != nil {
		t.Errorf("help: %v", err)
	}
	if !strings.Contains(out.String(), "beaconctl") {
		t.Errorf("help printed nothing useful: %q", out.String())
	}
}
