package fastfield

import (
	"math"
	"math/rand"
	"testing"
)

func randElem(f *Field, rng *rand.Rand) Element {
	e := make(Element, f.L())
	for i := range e {
		e[i] = uint32(rng.Intn(int(f.Q())))
	}
	return e
}

func testFields(t testing.TB) []*Field {
	t.Helper()
	var out []*Field
	for _, k := range []int{16, 64, 256} {
		f, err := New(k)
		if err != nil {
			t.Fatalf("New(%d): %v", k, err)
		}
		out = append(out, f)
	}
	return out
}

func TestNewMeetsSecurityParameter(t *testing.T) {
	for _, k := range []int{8, 16, 64, 128, 512} {
		f, err := New(k)
		if err != nil {
			t.Fatalf("New(%d): %v", k, err)
		}
		if f.Bits() < float64(k) {
			t.Errorf("k=%d: field has only %.1f bits", k, f.Bits())
		}
		// The paper wants q = O(l): check q stays within a small factor.
		if float64(f.Q()) > 64*float64(f.L())+64 {
			t.Errorf("k=%d: q=%d not O(l) for l=%d", k, f.Q(), f.L())
		}
	}
	if _, err := New(1); err == nil {
		t.Error("New(1) accepted")
	}
}

func TestNewWithParamsValidation(t *testing.T) {
	if _, err := NewWithParams(15, 4); err == nil {
		t.Error("composite q accepted")
	}
	if _, err := NewWithParams(97, 1); err == nil {
		t.Error("l=1 accepted")
	}
	if _, err := NewWithParams(5, 8); err == nil {
		t.Error("q < 2l+1 accepted")
	}
	if _, err := NewWithParams(7, 4); err == nil {
		t.Error("q without NTT roots accepted") // 8 ∤ 6
	}
}

func TestModulusIrreducible(t *testing.T) {
	for _, f := range testFields(t) {
		if !f.isIrreducible(f.h) {
			t.Errorf("q=%d l=%d: modulus fails Ben-Or test", f.Q(), f.L())
		}
		if polyDeg(f.h) != f.L() || f.h[f.L()] != 1 {
			t.Errorf("modulus not monic of degree l")
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, f := range testFields(t) {
		rng := rand.New(rand.NewSource(int64(f.L())))
		for trial := 0; trial < 50; trial++ {
			a, b, c := randElem(f, rng), randElem(f, rng), randElem(f, rng)
			if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
				t.Fatalf("q=%d l=%d: commutativity fails", f.Q(), f.L())
			}
			if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
				t.Fatalf("q=%d l=%d: associativity fails", f.Q(), f.L())
			}
			if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
				t.Fatalf("q=%d l=%d: distributivity fails", f.Q(), f.L())
			}
			if !f.Equal(f.Mul(a, f.One()), a) {
				t.Fatalf("q=%d l=%d: identity fails", f.Q(), f.L())
			}
			if !f.IsZero(f.Mul(a, f.Zero())) {
				t.Fatalf("q=%d l=%d: absorbing zero fails", f.Q(), f.L())
			}
			if !f.IsZero(f.Sub(a, a)) {
				t.Fatalf("q=%d l=%d: a−a ≠ 0", f.Q(), f.L())
			}
		}
	}
}

func TestMulMatchesNaive(t *testing.T) {
	// The NTT/Barrett path must agree with schoolbook on random inputs.
	for _, f := range testFields(t) {
		rng := rand.New(rand.NewSource(int64(f.Q())))
		for trial := 0; trial < 100; trial++ {
			a, b := randElem(f, rng), randElem(f, rng)
			fast := f.Mul(a, b)
			slow := f.MulNaive(a, b)
			if !f.Equal(fast, slow) {
				t.Fatalf("q=%d l=%d trial %d: NTT %v != naive %v", f.Q(), f.L(), trial, fast, slow)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for _, f := range testFields(t) {
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 30; trial++ {
			a := randElem(f, rng)
			if f.IsZero(a) {
				continue
			}
			if got := f.Mul(a, f.Inv(a)); !f.Equal(got, f.One()) {
				t.Fatalf("q=%d l=%d: a·Inv(a) = %v", f.Q(), f.L(), got)
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f.Inv(f.Zero())
}

func TestExpOrder(t *testing.T) {
	// Lagrange: a^(q^l − 1) = 1 for a ≠ 0 — checked in a small field where
	// q^l fits comfortably.
	f, err := NewWithParams(17, 2) // GF(17²): order 288
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	order := uint64(17*17 - 1)
	for trial := 0; trial < 20; trial++ {
		a := randElem(f, rng)
		if f.IsZero(a) {
			continue
		}
		if !f.Equal(f.Exp(a, order), f.One()) {
			t.Fatalf("a^%d != 1 for a=%v", order, a)
		}
	}
}

func TestRand(t *testing.T) {
	f, err := New(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		e, err := f.Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Valid(e) {
			t.Fatalf("invalid random element %v", e)
		}
		key := ""
		for _, c := range e {
			key += string(rune(c)) + ","
		}
		seen[key] = true
	}
	if len(seen) < 45 {
		t.Errorf("only %d/50 distinct random elements", len(seen))
	}
}

func TestNTTRoundTrip(t *testing.T) {
	z := newZq(97) // 97−1 = 96 = 2^5·3: supports size-32 NTT
	tr, err := newNTT(z, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	a := make([]uint32, 32)
	for i := range a {
		a[i] = uint32(rng.Intn(97))
	}
	b := append([]uint32(nil), a...)
	tr.transform(b, false)
	tr.transform(b, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("NTT round trip failed at %d: %d != %d", i, b[i], a[i])
		}
	}
}

func TestNTTMulPolyMatchesSchoolbook(t *testing.T) {
	z := newZq(97)
	tr, err := newNTT(z, 32)
	if err != nil {
		t.Fatal(err)
	}
	f := &Field{z: z, l: 16}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		la, lb := 1+rng.Intn(16), 1+rng.Intn(16)
		a := make([]uint32, la)
		b := make([]uint32, lb)
		for i := range a {
			a[i] = uint32(rng.Intn(97))
		}
		for i := range b {
			b[i] = uint32(rng.Intn(97))
		}
		got := tr.mulPoly(a, b)
		want := f.polyMulSchool(a, b)
		if polyDeg(got) != polyDeg(want) {
			t.Fatalf("degree mismatch: %d vs %d", polyDeg(got), polyDeg(want))
		}
		for i := 0; i <= polyDeg(want); i++ {
			if got[i] != want[i] {
				t.Fatalf("trial %d coeff %d: %d != %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestZqTableMatchesDirect(t *testing.T) {
	z := newZq(257) // tabled
	for a := uint32(0); a < 257; a += 13 {
		for b := uint32(0); b < 257; b += 7 {
			if z.mul(a, b) != uint32(uint64(a)*uint64(b)%257) {
				t.Fatalf("table mul wrong at %d,%d", a, b)
			}
		}
	}
	for a := uint32(1); a < 257; a++ {
		if z.mul(a, z.inv(a)) != 1 {
			t.Fatalf("inv wrong at %d", a)
		}
	}
}

func TestGenerator(t *testing.T) {
	z := newZq(97)
	g, err := z.generator()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	x := uint32(1)
	for i := 0; i < 96; i++ {
		seen[x] = true
		x = z.mul(x, g)
	}
	if len(seen) != 96 {
		t.Fatalf("generator %d has order %d, want 96", g, len(seen))
	}
}

func TestPolyDivMod(t *testing.T) {
	f := &Field{z: newZq(97), l: 8}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		a := make([]uint32, 1+rng.Intn(12))
		b := make([]uint32, 1+rng.Intn(6))
		for i := range a {
			a[i] = uint32(rng.Intn(97))
		}
		for i := range b {
			b[i] = uint32(rng.Intn(97))
		}
		if polyDeg(b) < 0 {
			continue
		}
		q, r := f.polyDivMod(a, b)
		recon := f.polySub(a, f.polySub(a, f.polyAddTest(f.polyMulSchool(q, b), r)))
		// recon should equal a: check a == q*b + r directly.
		qb := f.polyMulSchool(q, b)
		sum := f.polyAddTest(qb, r)
		if polyDeg(f.polySub(a, sum)) >= 0 {
			t.Fatalf("trial %d: a != q·b + r", trial)
		}
		if polyDeg(r) >= polyDeg(b) {
			t.Fatalf("trial %d: deg r ≥ deg b", trial)
		}
		_ = recon
	}
}

// polyAddTest is a test helper (addition is only needed here).
func (f *Field) polyAddTest(a, b []uint32) []uint32 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]uint32, n)
	for i := range out {
		var x, y uint32
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = f.z.add(x, y)
	}
	return out
}

func TestBitsComputation(t *testing.T) {
	f, err := NewWithParams(17, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * math.Log2(17)
	if math.Abs(f.Bits()-want) > 1e-9 {
		t.Errorf("Bits = %v, want %v", f.Bits(), want)
	}
}

func BenchmarkMulNTT(b *testing.B) {
	for _, k := range []int{64, 256, 1024, 4096} {
		f, err := New(k)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		x, y := randElem(f, rng), randElem(f, rng)
		b.Run(benchK(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x = f.Mul(x, y)
			}
		})
	}
}

func BenchmarkMulNaivePoly(b *testing.B) {
	for _, k := range []int{64, 256, 1024, 4096} {
		f, err := New(k)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		x, y := randElem(f, rng), randElem(f, rng)
		b.Run(benchK(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x = f.MulNaive(x, y)
			}
		})
	}
}

func benchK(k int) string {
	switch {
	case k < 100:
		return "k=00" + itoa(k)
	case k < 1000:
		return "k=0" + itoa(k)
	default:
		return "k=" + itoa(k)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}
