// Package multicell is the horizontal-scale serving layer: M independent
// beacon cells behind one router. The paper's Coin-Gen pipeline is
// inherently sequential — one beacon.Service is one coin stream, and its
// throughput is capped by a single protocol executive no matter how fast
// the hot path gets — so the way to serve "millions of clients" (ROADMAP)
// is sideways: run many full Services, each with its own simnet network,
// its own store and its own domain-separated dealer seed, sharing no
// protocol state whatsoever. Each cell's stream stays byte-reproducible on
// its own (TestCellStreamsMatchSingleCellReference pins cell i of an
// M-cell cluster against a standalone Service with the same seed), and the
// cluster's aggregate throughput scales with cell count because the cells
// never synchronize.
//
// The router in front implements the serving policy:
//
//   - Draw routing: a tenant key is consistent-hashed onto a cell (Ring),
//     so one tenant observes one cell's contiguous stream; anonymous draws
//     round-robin across healthy cells.
//   - Degrade: when a cell's refill pipeline falls behind (store depth
//     below the point where a draw would have to wait), the router sheds
//     the draw to the next healthy cell in ring order; when a cell's queue
//     is full it does the same; when every live cell is saturated the draw
//     fails with ErrSaturated, which front ends map to 429 + Retry-After.
//     A cell that fails terminally (closed or protocol-dead) is marked
//     down and routed around.
//   - Tenancy: per-tenant token-bucket rate limits (ErrRateLimited) and
//     live-stream quotas (ErrStreamQuota), enforced before routing so an
//     abusive tenant is rejected without touching any cell.
//
// Batched draws (DrawN) return the serving cell and the sequence number of
// the first coin in that cell's stream, so every response names a
// verifiable position: (cell, seq, value) can be checked against the
// cell's public stream after the fact. Streams (Stream) push coins the
// same way, one callback per coin.
//
// cmd/beacongw is the HTTP face of this package; docs/OPERATIONS.md §9 is
// the operator runbook.
package multicell

import (
	"context"
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/beacon"
	"repro/internal/core"
	"repro/internal/gf2k"
)

var (
	// ErrSaturated is returned when every live cell rejected the draw with
	// a full queue — the cluster-wide backpressure signal (HTTP 429).
	ErrSaturated = errors.New("multicell: all cells saturated")
	// ErrAllCellsDown is returned when no cell is serving at all (503).
	ErrAllCellsDown = errors.New("multicell: no live cells")
	// ErrRateLimited is returned when the tenant's token bucket is empty.
	ErrRateLimited = errors.New("multicell: tenant rate limit exceeded")
	// ErrStreamQuota is returned when the tenant is at its live-stream cap.
	ErrStreamQuota = errors.New("multicell: tenant stream quota exhausted")
	// ErrClosed is returned after Close has begun.
	ErrClosed = errors.New("multicell: cluster closed")
)

// Config parameterizes a Cluster.
type Config struct {
	// Cells is the number of independent beacon cells (M ≥ 1).
	Cells int
	// Cell is the per-cell beacon configuration template. Rand and Metrics
	// must be left nil (see CellRand; cell metrics are exported with a cell
	// label by the cluster), and Rate must be 0 — rate limiting is
	// per-tenant at the router, not per-cell. HighWater must be large
	// enough that a loaded cell never falls back to a blocking refill
	// (HighWater ≥ Threshold + SeedReserve + MaxBatch): blocking refills
	// consume a different randomness stream than pipelined ones, which
	// would break the per-cell stream-reproducibility guarantee.
	Cell beacon.Config
	// CellRand supplies the domain-separated randomness for cell `cell`,
	// player `player`: both the one-time dealer seed and every refill.
	// Distinct cells MUST receive computationally independent streams —
	// that is the whole cross-cell isolation argument. Nil defaults to
	// crypto/rand (trivially independent); deterministic deployments and
	// tests must key their generators by (cell, player, call#).
	CellRand func(cell, player int) io.Reader
	// TenantRate and TenantBurst configure each tenant's token bucket in
	// draws per second. TenantRate == 0 disables per-tenant limiting.
	TenantRate  float64
	TenantBurst int
	// MaxStreamsPerTenant caps concurrent Stream calls per tenant.
	// Defaults to 4; negative disables the quota.
	MaxStreamsPerTenant int
	// MaxTenants bounds the tenant table (attacker-invented keys must not
	// grow memory without limit); past it, new tenants share one overflow
	// bucket. Defaults to 8192.
	MaxTenants int
	// Replicas is the consistent-hash virtual-node count per cell
	// (DefaultReplicas when 0).
	Replicas int
	// StreamInterval paces Stream pushes (0 = as fast as draws allow).
	StreamInterval time.Duration
	// Metrics, when non-nil, exports the cluster's Prometheus families
	// (beacon_cell_* gauges, routed-draw counters — see NewMetrics).
	Metrics *Metrics

	// now is the injectable clock for rate-limiter tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxStreamsPerTenant == 0 {
		c.MaxStreamsPerTenant = 4
	}
	if c.MaxStreamsPerTenant < 0 {
		c.MaxStreamsPerTenant = 0 // quota disabled
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 8192
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Validate checks the configuration, including the stream-reproducibility
// invariant on the cell template (see Config.Cell).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Cells < 1 {
		return fmt.Errorf("multicell: need at least one cell, got %d", c.Cells)
	}
	if c.Cell.Rand != nil {
		return errors.New("multicell: set Config.CellRand, not Cell.Rand — per-cell randomness must be domain-separated by cell index")
	}
	if c.Cell.Metrics != nil {
		return errors.New("multicell: leave Cell.Metrics nil; the cluster exports per-cell families with a cell label")
	}
	if c.Cell.Rate != 0 {
		return errors.New("multicell: leave Cell.Rate 0; rate limiting is per-tenant at the router")
	}
	threshold := c.Cell.Core.Threshold
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	reserve := c.Cell.SeedReserve
	if reserve == 0 {
		reserve = threshold
	}
	maxBatch := c.Cell.MaxBatch
	if maxBatch == 0 {
		maxBatch = 32
	}
	if c.Cell.Core.HighWater < threshold+reserve+maxBatch {
		return fmt.Errorf("multicell: Cell.Core.HighWater %d < Threshold+SeedReserve+MaxBatch = %d — a loaded cell could fall back to a blocking refill, breaking per-cell stream reproducibility",
			c.Cell.Core.HighWater, threshold+reserve+maxBatch)
	}
	if c.TenantRate < 0 {
		return fmt.Errorf("multicell: negative tenant rate %v", c.TenantRate)
	}
	return nil
}

// Coin is one routed coin: the cell that served it, the coin's sequence
// number in that cell's stream, and its value.
type Coin struct {
	Cell int
	Seq  int64
	Val  gf2k.Element
}

// Batch is one routed batched draw: n contiguous coins of one cell's
// stream starting at Seq.
type Batch struct {
	Cell int
	Seq  int64
	Vals []gf2k.Element
}

// cellCounters is one cell's routing accounting (mirrored to Prometheus
// when Config.Metrics is set; always kept here so CellStats works bare).
type cellCounters struct {
	hash, rr, shed atomic.Int64 // draws served, by how they arrived
	shedAway       atomic.Int64 // draws this cell was primary for but lost
}

// Cluster is a running multi-cell beacon. Create with New; all exported
// methods are safe for concurrent use.
type Cluster struct {
	cfg      Config
	lowWater int // a draw leaving less than this behind would wait on a refill
	cells    []*beacon.Service
	ring     *Ring
	rr       atomic.Uint64
	tenants  *tenantTable
	down     []atomic.Bool
	routed   []cellCounters
	closed   atomic.Bool

	rateLimited   atomic.Int64
	saturated     atomic.Int64
	streamQuota   atomic.Int64
	streamsActive atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// New starts M cells, each a full beacon.Service on its own network with
// its own domain-separated dealer seed, and the router in front of them.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cellRand := cfg.CellRand
	if cellRand == nil {
		cellRand = func(int, int) io.Reader { return cryptorand.Reader }
	}
	threshold := cfg.Cell.Core.Threshold
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	reserve := cfg.Cell.SeedReserve
	if reserve == 0 {
		reserve = threshold
	}
	cl := &Cluster{
		cfg:      cfg,
		lowWater: threshold + reserve,
		cells:    make([]*beacon.Service, cfg.Cells),
		tenants:  newTenantTable(cfg.TenantRate, cfg.TenantBurst, cfg.MaxStreamsPerTenant, cfg.MaxTenants, cfg.now),
		down:     make([]atomic.Bool, cfg.Cells),
		routed:   make([]cellCounters, cfg.Cells),
	}
	ids := make([]int, cfg.Cells)
	for i := range ids {
		ids[i] = i
	}
	cl.ring = NewRing(ids, cfg.Replicas)
	for i := 0; i < cfg.Cells; i++ {
		i := i
		c := cfg.Cell
		c.Rand = func(player int) io.Reader { return cellRand(i, player) }
		svc, err := beacon.New(c)
		if err != nil {
			// Unwind the cells already started so no goroutines leak.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for j := 0; j < i; j++ {
				cl.cells[j].Close(ctx) //nolint:errcheck // best-effort unwind
			}
			return nil, fmt.Errorf("multicell: start cell %d: %w", i, err)
		}
		cl.cells[i] = svc
	}
	cfg.Metrics.registerGauges(cl)
	return cl, nil
}

// Cells returns the configured cell count.
func (cl *Cluster) Cells() int { return len(cl.cells) }

// Draw routes one coin for the tenant ("" = anonymous, round-robin).
func (cl *Cluster) Draw(ctx context.Context, tenant string) (Coin, error) {
	b, err := cl.DrawN(ctx, tenant, 1)
	if err != nil {
		return Coin{}, err
	}
	return Coin{Cell: b.Cell, Seq: b.Seq, Val: b.Vals[0]}, nil
}

// DrawN routes one batched draw of n coins for the tenant. All n coins
// come from one cell, contiguous in its stream from the returned Seq.
func (cl *Cluster) DrawN(ctx context.Context, tenant string, n int) (Batch, error) {
	if cl.closed.Load() {
		return Batch{}, ErrClosed
	}
	// Validate here, not in the cell: a cell's DrawN error for a bad n
	// would otherwise read as a terminal cell failure and poison routing.
	if n < 1 || n > beacon.MaxDrawBatch {
		return Batch{}, fmt.Errorf("multicell: batch size %d outside [1,%d]", n, beacon.MaxDrawBatch)
	}
	if !cl.tenants.allow(tenant) {
		cl.rateLimited.Add(1)
		cl.cfg.Metrics.rejected("rate-limited")
		return Batch{}, ErrRateLimited
	}
	return cl.drawRouted(ctx, tenant, n)
}

// drawRouted is the routing core, past tenancy checks (Stream pushes come
// here directly: stream admission is governed by the quota and pacing, not
// the per-draw bucket).
func (cl *Cluster) drawRouted(ctx context.Context, tenant string, n int) (Batch, error) {
	order, route := cl.routeOrder(tenant)
	// Pass 0 skips cells whose refill has fallen behind (the draw would
	// wait on a Coin-Gen round — shed to a deeper cell instead); pass 1
	// accepts waiting, because when every live cell lags, a slow coin
	// beats no coin. Queue-full (ErrOverloaded) and terminal errors shed
	// to the next cell in ring order on both passes.
	for pass := 0; pass < 2; pass++ {
		for i, c := range order {
			if cl.down[c].Load() {
				continue
			}
			if pass == 0 && cl.lagging(c, n) {
				continue
			}
			vals, seq, err := cl.cells[c].DrawN(ctx, n)
			switch {
			case err == nil:
				r := route
				if i > 0 {
					r = routeShed
					cl.routed[order[0]].shedAway.Add(1)
					cl.cfg.Metrics.shed(order[0])
				}
				cl.count(c, r)
				return Batch{Cell: c, Seq: seq, Vals: vals}, nil
			case errors.Is(err, beacon.ErrOverloaded):
				continue
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				return Batch{}, err
			default:
				// ErrClosed or a terminal protocol error: the cell is gone.
				cl.markDown(c)
				continue
			}
		}
	}
	// Nothing served: every cell is either down or rejected with a full
	// queue (pass 1 waits on lagging cells rather than erroring).
	for _, c := range order {
		if !cl.down[c].Load() {
			cl.saturated.Add(1)
			cl.cfg.Metrics.rejected("saturated")
			return Batch{}, ErrSaturated
		}
	}
	cl.cfg.Metrics.rejected("down")
	return Batch{}, ErrAllCellsDown
}

const (
	routeHash = "hash"
	routeRR   = "rr"
	routeShed = "shed"
)

// routeOrder returns the cells to try, in order, and how the primary was
// chosen. Tenants get their consistent-hash successor chain; anonymous
// draws start round-robin and continue in index order.
func (cl *Cluster) routeOrder(tenant string) ([]int, string) {
	if tenant != "" {
		return cl.ring.Successors(tenant), routeHash
	}
	start := int(cl.rr.Add(1)-1) % len(cl.cells)
	order := make([]int, len(cl.cells))
	for i := range order {
		order[i] = (start + i) % len(cl.cells)
	}
	return order, routeRR
}

// lagging reports whether a draw of n coins on cell c would have to wait
// on a Coin-Gen round: its refill pipeline has fallen behind demand.
func (cl *Cluster) lagging(c, n int) bool {
	return cl.cells[c].Stats().Remaining < n+cl.lowWater
}

// markDown retires a terminally failed cell from routing.
func (cl *Cluster) markDown(c int) {
	if !cl.down[c].Swap(true) {
		cl.cfg.Metrics.cellDown(c)
	}
}

// count attributes one served draw (and its coins) to a cell.
func (cl *Cluster) count(c int, route string) {
	switch route {
	case routeHash:
		cl.routed[c].hash.Add(1)
	case routeRR:
		cl.routed[c].rr.Add(1)
	default:
		cl.routed[c].shed.Add(1)
	}
	cl.cfg.Metrics.routedDraw(c, route)
}

// Stream pushes coins to deliver, one per callback, until ctx is done, max
// coins have been pushed (max ≤ 0 = unbounded), or deliver returns an
// error. The tenant's stream quota is claimed for the duration; pushes are
// paced by Config.StreamInterval. Each pushed coin names its (cell, seq)
// position like any routed draw.
func (cl *Cluster) Stream(ctx context.Context, tenant string, max int, deliver func(Coin) error) error {
	if cl.closed.Load() {
		return ErrClosed
	}
	release, ok := cl.tenants.acquireStream(tenant)
	if !ok {
		cl.streamQuota.Add(1)
		cl.cfg.Metrics.rejected("stream-quota")
		return ErrStreamQuota
	}
	defer release()
	cl.streamsActive.Add(1)
	defer cl.streamsActive.Add(-1)
	var tick *time.Ticker
	if cl.cfg.StreamInterval > 0 {
		tick = time.NewTicker(cl.cfg.StreamInterval)
		defer tick.Stop()
	}
	for i := 0; max <= 0 || i < max; i++ {
		b, err := cl.drawRouted(ctx, tenant, 1)
		if err != nil {
			return err
		}
		if err := deliver(Coin{Cell: b.Cell, Seq: b.Seq, Val: b.Vals[0]}); err != nil {
			return err
		}
		if tick != nil {
			select {
			case <-tick.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// CellStats is the router's view of one cell.
type CellStats struct {
	Cell           int   `json:"cell"`
	Down           bool  `json:"down"`
	Remaining      int   `json:"remaining"`
	QueueDepth     int   `json:"queue"`
	RefillInFlight bool  `json:"refilling"`
	RefillLag      int   `json:"refill_lag"` // coins below the high-water mark
	Draws          int64 `json:"draws"`
	Coins          int64 `json:"coins"`
	BlockedDraws   int64 `json:"blocked_draws"`
	Refills        int64 `json:"refills"`
	RoutedHash     int64 `json:"routed_hash"`
	RoutedRR       int64 `json:"routed_rr"`
	RoutedShed     int64 `json:"routed_shed"` // draws served here after shedding from elsewhere
	ShedAway       int64 `json:"shed_away"`   // draws this cell was primary for but lost
}

// CellStats snapshots every cell.
func (cl *Cluster) CellStats() []CellStats {
	out := make([]CellStats, len(cl.cells))
	for i, svc := range cl.cells {
		st := svc.Stats()
		lag := cl.cfg.Cell.Core.HighWater - st.Remaining
		if lag < 0 {
			lag = 0
		}
		out[i] = CellStats{
			Cell:           i,
			Down:           cl.down[i].Load(),
			Remaining:      st.Remaining,
			QueueDepth:     st.QueueDepth,
			RefillInFlight: st.RefillInFlight,
			RefillLag:      lag,
			Draws:          st.Draws,
			Coins:          st.CoinsDelivered,
			BlockedDraws:   st.BlockedDraws,
			Refills:        st.Refills,
			RoutedHash:     cl.routed[i].hash.Load(),
			RoutedRR:       cl.routed[i].rr.Load(),
			RoutedShed:     cl.routed[i].shed.Load(),
			ShedAway:       cl.routed[i].shedAway.Load(),
		}
	}
	return out
}

// RouterStats is the cluster-wide rejection and stream accounting.
type RouterStats struct {
	RateLimited   int64 `json:"rate_limited"`
	Saturated     int64 `json:"saturated"`
	StreamQuota   int64 `json:"stream_quota"`
	StreamsActive int64 `json:"streams_active"`
	CellsDown     int   `json:"cells_down"`
}

// RouterStats snapshots the router's own counters.
func (cl *Cluster) RouterStats() RouterStats {
	st := RouterStats{
		RateLimited:   cl.rateLimited.Load(),
		Saturated:     cl.saturated.Load(),
		StreamQuota:   cl.streamQuota.Load(),
		StreamsActive: cl.streamsActive.Load(),
	}
	for i := range cl.down {
		if cl.down[i].Load() {
			st.CellsDown++
		}
	}
	return st
}

// CloseCell shuts one cell down (draining its queue); the router marks it
// down immediately and routes around it. Used by operators to retire a
// cell and by the degrade tests to kill one mid-load.
func (cl *Cluster) CloseCell(ctx context.Context, cell int) error {
	if cell < 0 || cell >= len(cl.cells) {
		return fmt.Errorf("multicell: no cell %d", cell)
	}
	cl.markDown(cell)
	return cl.cells[cell].Close(ctx)
}

// Close shuts every cell down gracefully.
func (cl *Cluster) Close(ctx context.Context) error {
	cl.closeOnce.Do(func() {
		cl.closed.Store(true)
		var wg sync.WaitGroup
		errs := make([]error, len(cl.cells))
		for i, svc := range cl.cells {
			wg.Add(1)
			go func(i int, svc *beacon.Service) {
				defer wg.Done()
				if err := svc.Close(ctx); err != nil {
					errs[i] = fmt.Errorf("multicell: close cell %d: %w", i, err)
				}
			}(i, svc)
		}
		wg.Wait()
		cl.closeErr = errors.Join(errs...)
	})
	return cl.closeErr
}
