// Package schedules is the schedule-exploration conformance harness: it
// re-runs the conformance matrix under K sampled hostile-network schedules
// per scenario (seeded delivery jitter, partitions with timed heals,
// crash/recover windows, within-round reordering) and asserts that the
// paper's guarantees survive at every undisturbed honest player.
//
// Reproduction contract: every run is a pure function of the pair
// (scenario, schedule-seed). A failing case prints that pair plus the full
// schedule rule list; feeding the same pair back through Run — or pasting
// the schedule string through simnet.ParseSchedule into RunWith — replays
// the identical execution, byte for byte. Failures are then greedily shrunk
// to a 1-minimal rule set (every further single-rule removal passes), which
// is what a human debugs.
//
// Fault-budget soundness: schedule disturbance is charged against the same
// budget t as code corruption (see simnet.Schedule.Disturbed), so victims
// are sampled only from the complement of the scenario's corrupt ∪ pinned
// actors and capped at t − |corrupt|. A scenario whose attack already
// spends the whole budget gets reorder-only schedules — still a real
// adversary (delivery order within a round is worst-case), still asserted.
package schedules

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"

	"repro/internal/conformance"
	"repro/internal/simnet"
)

// KEnv names the environment variable overriding the number of hostile
// schedules sampled per scenario. CI sets it to a small value on the
// PR-gated run and a large one nightly.
const KEnv = "SCHEDULE_K"

// DefaultK is the per-scenario schedule count when KEnv is unset.
const DefaultK = 5

// K returns the per-scenario schedule count: KEnv when set to a
// non-negative integer, DefaultK otherwise.
func K() int {
	if v := os.Getenv(KEnv); v != "" {
		if k, err := strconv.Atoi(v); err == nil && k >= 0 {
			return k
		}
	}
	return DefaultK
}

// ScheduleSeed derives the k-th schedule seed for a scenario. The scenario's
// printed name (schedule-free) is folded in so scenarios sharing a Seed
// still explore distinct schedules, and the result is reproducible from the
// (scenario, k) pair alone.
func ScheduleSeed(sc conformance.Scenario, k int) int64 {
	sc.Schedule = nil
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for _, c := range sc.String() {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h += uint64(k+1) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h &^ (1 << 63))
}

// Victims picks the players the schedule derived from schedSeed may
// disturb: a seeded sample from the scenario's non-corrupt, non-pinned
// players, capped at the spare fault budget t − |corrupt|.
func Victims(sc conformance.Scenario, schedSeed int64) []int {
	corrupt, pinned := conformance.ScenarioActors(sc)
	spare := sc.T - len(corrupt)
	if spare <= 0 {
		return nil
	}
	off := map[int]bool{}
	for _, i := range corrupt {
		off[i] = true
	}
	for _, i := range pinned {
		off[i] = true
	}
	cands := make([]int, 0, sc.N)
	for i := 0; i < sc.N; i++ {
		if !off[i] {
			cands = append(cands, i)
		}
	}
	rng := rand.New(rand.NewSource(schedSeed ^ 0x76c71ca7))
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > spare {
		cands = cands[:spare]
	}
	sort.Ints(cands)
	return cands
}

// Sample builds the hostile schedule a scenario runs under for a given
// schedule seed. Pure: same (scenario, schedSeed) → same schedule.
func Sample(sc conformance.Scenario, schedSeed int64) *simnet.Schedule {
	return simnet.SampleSchedule(schedSeed, sc.N, Victims(sc, schedSeed))
}

// Run executes the scenario under the schedule derived from schedSeed and
// returns the honest-output fingerprint. This is the harness entry point:
// Run(sc, seed) is the whole reproduction recipe for a printed failure.
func Run(sc conformance.Scenario, schedSeed int64) (string, error) {
	return RunWith(sc, Sample(sc, schedSeed))
}

// RunWith executes the scenario under an explicit schedule — used by the
// shrinker and for replaying a pasted schedule string.
func RunWith(sc conformance.Scenario, s *simnet.Schedule) (string, error) {
	sc.Schedule = s
	return conformance.RunScenario(sc)
}

// Repro formats the reproduction line attached to every harness failure:
// the (scenario, schedule-seed) pair plus the expanded schedule, in the
// exact serialization simnet.ParseSchedule accepts.
func Repro(sc conformance.Scenario, schedSeed int64) string {
	s := Sample(sc, schedSeed)
	sc.Schedule = nil
	return fmt.Sprintf("repro: scenario={%s} scheduleSeed=%d schedule=%q", sc, schedSeed, s)
}

// Shrink greedily minimizes a failing schedule: while any single rule can
// be removed with the scenario still failing, remove it. The result is
// 1-minimal — removing any one remaining rule makes the scenario pass — and
// still reproduces a failure via RunWith. Returns nil when the scenario
// does not fail under s in the first place.
//
// Cost: O(rules²) scenario runs in the worst case; sampled schedules carry
// at most a handful of rules and a run is milliseconds, so shrinking is
// cheap enough to do on every failure.
func Shrink(sc conformance.Scenario, s *simnet.Schedule) *simnet.Schedule {
	fails := func(c *simnet.Schedule) bool {
		_, err := RunWith(sc, c)
		return err != nil
	}
	if s == nil || !fails(s) {
		return nil
	}
	cur := s.Clone()
	for i := 0; i < cur.RuleCount(); {
		c := cur.WithoutRule(i)
		if fails(c) {
			cur = c // rule i was irrelevant to the failure; index i now names the next rule
		} else {
			i++
		}
	}
	return cur
}
