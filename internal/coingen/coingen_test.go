package coingen

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ba"
	"repro/internal/bitgen"
	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/gradecast"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// fixture builds a network plus seed batches for a Coin-Gen run.
type fixture struct {
	cfg   Config
	f     gf2k.Field
	nw    *simnet.Network
	seeds []*coin.Batch
}

func newFixture(t testing.TB, n, tf, m, seedCoins int, seed int64) *fixture {
	t.Helper()
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(seed))
	seeds, _, err := coin.DealTrusted(f, n, tf, seedCoins, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		cfg:   Config{Field: f, N: n, T: tf, M: m},
		f:     f,
		nw:    simnet.New(n),
		seeds: seeds,
	}
}

func (fx *fixture) honest(i int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := fx.cfg
		cfg.Seed = fx.seeds[nd.Index()]
		rnd := rand.New(rand.NewSource(seed + int64(i)))
		return Run(nd, cfg, rnd)
	}
}

// exposeAllAfter runs Coin-Gen then exposes every generated coin.
func (fx *fixture) honestThenExpose(i int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := fx.cfg
		cfg.Seed = fx.seeds[nd.Index()]
		rnd := rand.New(rand.NewSource(seed + int64(i)))
		res, err := Run(nd, cfg, rnd)
		if err != nil {
			return nil, err
		}
		coins := make([]gf2k.Element, 0, cfg.M)
		for res.Batch.Remaining() > 0 {
			c, err := res.Batch.Expose(nd)
			if err != nil {
				return nil, err
			}
			coins = append(coins, c)
		}
		return struct {
			Res   *Result
			Coins []gf2k.Element
		}{res, coins}, nil
	}
}

func TestAllHonestGeneratesUnanimousCoins(t *testing.T) {
	for _, tc := range []struct{ n, tf, m int }{{7, 1, 4}, {13, 2, 8}} {
		fx := newFixture(t, tc.n, tc.tf, tc.m, 6, int64(tc.n))
		fns := make([]simnet.PlayerFunc, tc.n)
		for i := range fns {
			fns[i] = fx.honestThenExpose(i, 100)
		}
		results := simnet.Run(fx.nw, fns)
		type outT = struct {
			Res   *Result
			Coins []gf2k.Element
		}
		ref := results[0].Value.(outT)
		if len(ref.Coins) != tc.m {
			t.Fatalf("generated %d coins, want %d", len(ref.Coins), tc.m)
		}
		if ref.Res.Attempts != 1 {
			t.Errorf("all-honest run took %d attempts, want 1", ref.Res.Attempts)
		}
		if ref.Res.SeedConsumed != 2 {
			t.Errorf("all-honest run consumed %d seed coins, want 2", ref.Res.SeedConsumed)
		}
		if len(ref.Res.Clique) != tc.n {
			t.Errorf("all-honest clique size %d, want %d", len(ref.Res.Clique), tc.n)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("player %d: %v", i, r.Err)
			}
			o := r.Value.(outT)
			for h := range ref.Coins {
				if o.Coins[h] != ref.Coins[h] {
					t.Fatalf("player %d coin %d: %#x != %#x (unanimity violated)", i, h, o.Coins[h], ref.Coins[h])
				}
			}
			for c := range ref.Res.Clique {
				if o.Res.Clique[c] != ref.Res.Clique[c] {
					t.Fatalf("player %d: clique differs", i)
				}
			}
		}
	}
}

// badDealerPlayer deals a wrong-degree sharing but is otherwise honest.
func (fx *fixture) badDealer(i int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := fx.cfg
		cfg.Seed = fx.seeds[nd.Index()]
		rnd := rand.New(rand.NewSource(seed + int64(i)))
		return nil, badDealOnce(nd, cfg, rnd)
	}
}

// badDealOnce participates in one full Coin-Gen as a wrong-degree dealer
// while staying in lockstep with the honest players, so the same player can
// rejoin honestly in a later batch (the paper's mobile-adversary setting).
func badDealOnce(nd *simnet.Node, cfg Config, rnd *rand.Rand) error {
	{
		f := cfg.Field

		// Fig. 4 step 1 with degree t+1 polynomials (invalid dealing).
		polys := make([]poly.Poly, cfg.M+1)
		for j := range polys {
			p, err := poly.Random(f, cfg.T+1, gf2k.Element(rnd.Uint32()), rnd)
			if err != nil {
				return err
			}
			if p[cfg.T+1] == 0 {
				p[cfg.T+1] = 1
			}
			polys[j] = p
		}
		sh := &bitgen.Shares{
			Alpha:    make([][]gf2k.Element, cfg.N),
			Mask:     make([]gf2k.Element, cfg.N),
			Received: make([]bool, cfg.N),
			OwnPolys: polys,
		}
		for p := 0; p < cfg.N; p++ {
			id, _ := f.ElementFromID(p + 1)
			if p == nd.Index() {
				row := make([]gf2k.Element, cfg.M)
				for h := 0; h < cfg.M; h++ {
					row[h] = poly.Eval(f, polys[h], id)
				}
				sh.Alpha[p], sh.Mask[p], sh.Received[p] = row, poly.Eval(f, polys[cfg.M], id), true
				continue
			}
			buf := make([]byte, 0, (cfg.M+1)*f.ByteLen())
			for _, pp := range polys {
				buf = f.AppendElement(buf, poly.Eval(f, pp, id))
			}
			nd.Send(p, buf)
		}
		if _, err := nd.EndRound(); err != nil {
			return err
		}
		// Continue the protocol honestly from here.
		r, err := cfg.Seed.Expose(nd)
		if err != nil {
			return err
		}
		bcfg := bitgen.Config{Field: f, N: cfg.N, T: cfg.T, M: cfg.M}
		view, err := bitgen.ExchangeGammas(nd, bcfg, sh, r)
		if err != nil {
			return err
		}
		_ = view
		// Grade-cast garbage and follow the leader loop silently.
		if _, err := gradecast.RunAll(nd, cfg.T, []byte{0xff}); err != nil {
			return err
		}
		for {
			if _, err := cfg.Seed.ExposeMod(nd, cfg.N); err != nil {
				return err
			}
			dec, err := (ba.PhaseKing{T: cfg.T}).Run(nd, 0)
			if err != nil {
				return err
			}
			if dec == 1 {
				return nil
			}
		}
	}
}

func TestByzantineDealerExcludedFromClique(t *testing.T) {
	n, tf, m := 7, 1, 3
	fx := newFixture(t, n, tf, m, 8, 3)
	fns := make([]simnet.PlayerFunc, n)
	fns[2] = fx.badDealer(2, 900)
	for i := range fns {
		if i == 2 {
			continue
		}
		fns[i] = fx.honestThenExpose(i, 300)
	}
	results := simnet.Run(fx.nw, fns)
	type outT = struct {
		Res   *Result
		Coins []gf2k.Element
	}
	var ref *outT
	for i, r := range results {
		if i == 2 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		o := r.Value.(outT)
		for _, member := range o.Res.Clique {
			if member == 2 {
				t.Fatalf("player %d: bad dealer 2 ended up in agreed clique", i)
			}
		}
		if len(o.Res.Clique) < n-2*tf {
			t.Fatalf("player %d: clique %d < n−2t", i, len(o.Res.Clique))
		}
		if ref == nil {
			ref = &o
			continue
		}
		for h := range ref.Coins {
			if o.Coins[h] != ref.Coins[h] {
				t.Fatalf("player %d coin %d differs (unanimity violated)", i, h)
			}
		}
	}
}

// grieferPlayer participates correctly through the γ exchange (so it stays
// in the clique) but grade-casts garbage and votes 0 in every BA, forcing
// retries whenever it is chosen leader.
func (fx *fixture) griefer(i int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := fx.cfg
		cfg.Seed = fx.seeds[nd.Index()]
		rnd := rand.New(rand.NewSource(seed + int64(i)))
		bcfg := bitgen.Config{Field: cfg.Field, N: cfg.N, T: cfg.T, M: cfg.M}
		sh, err := bitgen.DealAll(nd, bcfg, rnd)
		if err != nil {
			return nil, err
		}
		r, err := cfg.Seed.Expose(nd)
		if err != nil {
			return nil, err
		}
		if _, err := bitgen.ExchangeGammas(nd, bcfg, sh, r); err != nil {
			return nil, err
		}
		if _, err := gradecast.RunAll(nd, cfg.T, nil); err != nil { // garbage cast
			return nil, err
		}
		for {
			if _, err := cfg.Seed.ExposeMod(nd, cfg.N); err != nil {
				return nil, err
			}
			dec, err := (ba.PhaseKing{T: cfg.T}).Run(nd, 0)
			if err != nil {
				return nil, err
			}
			if dec == 1 {
				return nil, nil
			}
		}
	}
}

func TestFaultyLeaderForcesRetry(t *testing.T) {
	// Lemma 8: the protocol re-iterates only when the drawn leader is
	// faulty; it must terminate once an honest leader is drawn, and the
	// coins must still be unanimous.
	n, tf, m := 7, 1, 2
	sawRetry := false
	for trial := 0; trial < 8; trial++ {
		fx := newFixture(t, n, tf, m, 12, int64(40+trial))
		fns := make([]simnet.PlayerFunc, n)
		fns[4] = fx.griefer(4, int64(trial)*7)
		for i := range fns {
			if i == 4 {
				continue
			}
			fns[i] = fx.honestThenExpose(i, int64(trial)*11)
		}
		results := simnet.Run(fx.nw, fns)
		type outT = struct {
			Res   *Result
			Coins []gf2k.Element
		}
		var ref *outT
		for i, r := range results {
			if i == 4 {
				continue
			}
			if r.Err != nil {
				t.Fatalf("trial %d player %d: %v", trial, i, r.Err)
			}
			o := r.Value.(outT)
			if o.Res.Attempts > 1 {
				sawRetry = true
			}
			if ref == nil {
				ref = &o
				continue
			}
			if o.Res.Attempts != ref.Res.Attempts {
				t.Fatalf("trial %d: players disagree on attempt count", trial)
			}
			for h := range ref.Coins {
				if o.Coins[h] != ref.Coins[h] {
					t.Fatalf("trial %d: coin %d differs", trial, h)
				}
			}
		}
	}
	if !sawRetry {
		t.Error("griefer was never drawn as leader across 8 trials; expected at least one retry")
	}
}

func TestCliquePropertiesLemma7(t *testing.T) {
	// Lemma 7: |U| ≥ n−2t; identical across honest players; and the batch
	// reconstruction works (property 3 exercised by the exposures in the
	// other tests).
	n, tf, m := 13, 2, 2
	fx := newFixture(t, n, tf, m, 8, 5)
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		fns[i] = fx.honest(i, 500)
	}
	results := simnet.Run(fx.nw, fns)
	ref := results[0].Value.(*Result)
	if len(ref.Clique) < n-2*tf {
		t.Fatalf("clique %d < n−2t = %d", len(ref.Clique), n-2*tf)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		res := r.Value.(*Result)
		if len(res.Clique) != len(ref.Clique) {
			t.Fatalf("player %d: clique size differs", i)
		}
		for c := range ref.Clique {
			if res.Clique[c] != ref.Clique[c] {
				t.Fatalf("player %d: clique member %d differs", i, c)
			}
		}
		if res.Batch.Remaining() != m {
			t.Fatalf("player %d: batch has %d coins, want %d", i, res.Batch.Remaining(), m)
		}
	}
}

func TestSeedExhaustionSurfaces(t *testing.T) {
	n, tf := 7, 1
	fx := newFixture(t, n, tf, 2, 1, 9) // only 1 seed coin: not enough
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		fns[i] = fx.honest(i, 700)
	}
	for i, r := range simnet.Run(fx.nw, fns) {
		if !errors.Is(r.Err, coin.ErrExhausted) {
			t.Fatalf("player %d: err = %v, want ErrExhausted", i, r.Err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	f := gf2k.MustNew(16)
	src := &coin.Store{}
	bad := []Config{
		{Field: f, N: 6, T: 1, M: 1, Seed: src}, // n < 6t+1
		{Field: f, N: 7, T: 1, M: 0, Seed: src}, // M < 1
		{Field: f, N: 7, T: 1, M: 1, Seed: nil}, // nil seed
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := (Config{Field: f, N: 7, T: 1, M: 1, Seed: src}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCliqueMsgRoundTrip(t *testing.T) {
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 1, M: 1}
	// Build a fake view with decoded outputs for members {0,2,3,5,6}.
	view := &bitgen.View{Outputs: make([]bitgen.Output, 7)}
	members := []int{0, 2, 3, 5, 6}
	for _, j := range members {
		view.Outputs[j] = bitgen.Output{OK: true, F: poly.Poly{gf2k.Element(j + 1), 7}}
	}
	enc, err := encodeCliqueMsg(cfg, members, view)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeCliqueMsg(cfg, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.members) != len(members) {
		t.Fatalf("decoded %d members", len(dec.members))
	}
	for i, j := range members {
		if dec.members[i] != j {
			t.Fatalf("member %d: got %d want %d", i, dec.members[i], j)
		}
		if dec.polys[i][0] != gf2k.Element(j+1) || dec.polys[i][1] != 7 {
			t.Fatalf("member %d: wrong polynomial", i)
		}
	}
}

func TestCliqueMsgRejectsMalformed(t *testing.T) {
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 1, M: 1}
	view := &bitgen.View{Outputs: make([]bitgen.Output, 7)}
	for j := 0; j < 7; j++ {
		view.Outputs[j] = bitgen.Output{OK: true, F: poly.Poly{1}}
	}
	good, err := encodeCliqueMsg(cfg, []int{0, 1, 2, 3, 4}, view)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)-1],
		"tiny clique":    mustEncode(t, cfg, []int{0, 1}, view),
		"trailing bytes": append(append([]byte{}, good...), 0xff),
	}
	for name, b := range cases {
		if _, err := decodeCliqueMsg(cfg, b); err == nil {
			t.Errorf("%s: malformed clique message accepted", name)
		}
	}
	// Unsorted / duplicate members.
	bad := append([]byte{}, good...)
	bad[2], bad[3] = 6, 0 // first member index becomes 6 > later members
	if _, err := decodeCliqueMsg(cfg, bad); err == nil {
		t.Error("unsorted members accepted")
	}
}

func mustEncode(t *testing.T, cfg Config, members []int, view *bitgen.View) []byte {
	t.Helper()
	b, err := encodeCliqueMsg(cfg, members, view)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGeneratedCoinsLookRandom(t *testing.T) {
	// Coins across several runs should not repeat (GF(2^32) collisions are
	// vanishingly unlikely) and bits should not be constant.
	if testing.Short() {
		t.Skip("multiple protocol runs")
	}
	n, tf, m := 7, 1, 8
	seen := make(map[gf2k.Element]bool)
	ones := 0
	for trial := 0; trial < 5; trial++ {
		fx := newFixture(t, n, tf, m, 6, int64(1000+trial))
		fns := make([]simnet.PlayerFunc, n)
		for i := range fns {
			fns[i] = fx.honestThenExpose(i, int64(trial)*37)
		}
		results := simnet.Run(fx.nw, fns)
		o := results[0].Value.(struct {
			Res   *Result
			Coins []gf2k.Element
		})
		for _, c := range o.Coins {
			if seen[c] {
				t.Fatalf("coin %#x repeated across runs", c)
			}
			seen[c] = true
			ones += int(c & 1)
		}
	}
	if ones == 0 || ones == 40 {
		t.Errorf("coin low bits constant (%d/40 ones)", ones)
	}
}

func TestByzantineRotationAcrossBatches(t *testing.T) {
	// E13 (Byzantine flavour): player 2 is a wrong-degree dealer during the
	// first batch and honest during the second; player 5 is honest first
	// and a wrong-degree dealer second. Both batches must succeed with
	// unanimous coins, and the recovered player must be back inside the
	// second agreed clique.
	n, tf, m := 7, 1, 2
	fx := newFixture(t, n, tf, m, 16, 71)
	type twoRuns struct {
		Cliques [2][]int
		Coins   [2][]gf2k.Element
	}
	mk := func(i int, badPhase int) simnet.PlayerFunc {
		return func(nd *simnet.Node) (interface{}, error) {
			cfg := fx.cfg
			cfg.Seed = fx.seeds[nd.Index()]
			out := twoRuns{}
			for phase := 0; phase < 2; phase++ {
				rnd := rand.New(rand.NewSource(int64(i*100 + phase)))
				if phase == badPhase {
					if err := badDealOnce(nd, cfg, rnd); err != nil {
						return nil, err
					}
					// A bad dealer gets no batch; stay in lockstep with the
					// honest players' exposures below by decoding passively:
					// it cannot (it lacks the batch), so it just keeps pace
					// through empty rounds.
					for c := 0; c < m; c++ {
						if _, err := nd.EndRound(); err != nil {
							return nil, err
						}
					}
					continue
				}
				res, err := Run(nd, cfg, rnd)
				if err != nil {
					return nil, err
				}
				out.Cliques[phase] = res.Clique
				for res.Batch.Remaining() > 0 {
					cn, err := res.Batch.Expose(nd)
					if err != nil {
						return nil, err
					}
					out.Coins[phase] = append(out.Coins[phase], cn)
				}
			}
			return out, nil
		}
	}
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		switch i {
		case 2:
			fns[i] = mk(i, 0)
		case 5:
			fns[i] = mk(i, 1)
		default:
			fns[i] = mk(i, -1)
		}
	}
	results := simnet.Run(fx.nw, fns)
	ref := results[0].Value.(twoRuns)
	inClique := func(c []int, v int) bool {
		for _, x := range c {
			if x == v {
				return true
			}
		}
		return false
	}
	if inClique(ref.Cliques[0], 2) {
		t.Error("phase 1: bad dealer 2 in clique")
	}
	if !inClique(ref.Cliques[1], 2) {
		t.Error("phase 2: recovered player 2 missing from clique")
	}
	if inClique(ref.Cliques[1], 5) {
		t.Error("phase 2: bad dealer 5 in clique")
	}
	for i, r := range results {
		if i == 2 || i == 5 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		o := r.Value.(twoRuns)
		for phase := 0; phase < 2; phase++ {
			for h := range ref.Coins[phase] {
				if o.Coins[phase][h] != ref.Coins[phase][h] {
					t.Fatalf("player %d phase %d coin %d differs", i, phase, h)
				}
			}
		}
	}
}

// forgingLeader participates honestly through the γ exchange (so it stays
// in the clique and can be drawn as leader) but grade-casts a syntactically
// VALID clique message whose polynomials are forged. Honest players must
// evaluate condition iii against their own γ views, reject it as leader,
// and retry until an honest leader is drawn.
func (fx *fixture) forgingLeader(i int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := fx.cfg
		cfg.Seed = fx.seeds[nd.Index()]
		rnd := rand.New(rand.NewSource(seed + int64(i)))
		bcfg := bitgen.Config{Field: cfg.Field, N: cfg.N, T: cfg.T, M: cfg.M}
		sh, err := bitgen.DealAll(nd, bcfg, rnd)
		if err != nil {
			return nil, err
		}
		r, err := cfg.Seed.Expose(nd)
		if err != nil {
			return nil, err
		}
		view, err := bitgen.ExchangeGammas(nd, bcfg, sh, r)
		if err != nil {
			return nil, err
		}
		// Forge: well-formed clique of all n members, random polynomials.
		forged := &bitgen.View{Outputs: make([]bitgen.Output, cfg.N)}
		members := make([]int, cfg.N)
		for j := 0; j < cfg.N; j++ {
			members[j] = j
			p, err := poly.Random(cfg.Field, cfg.T, gf2k.Element(rnd.Uint32()), rnd)
			if err != nil {
				return nil, err
			}
			forged.Outputs[j] = bitgen.Output{OK: true, F: p}
		}
		payload, err := encodeCliqueMsg(cfg, members, forged)
		if err != nil {
			return nil, err
		}
		if _, err := gradecast.RunAll(nd, cfg.T, payload); err != nil {
			return nil, err
		}
		_ = view
		for {
			if _, err := cfg.Seed.ExposeMod(nd, cfg.N); err != nil {
				return nil, err
			}
			dec, err := (ba.PhaseKing{T: cfg.T}).Run(nd, 1) // votes for itself
			if err != nil {
				return nil, err
			}
			if dec == 1 {
				return nil, nil
			}
		}
	}
}

func TestForgedCliqueMessageRejectedAsLeader(t *testing.T) {
	// Across trials the forger is drawn as leader at least once; whenever
	// it is, honest players must push the decision to 0 (condition iii
	// fails in every honest view) and the final coins stay unanimous.
	n, tf, m := 7, 1, 2
	sawForgerRetry := false
	for trial := 0; trial < 10; trial++ {
		fx := newFixture(t, n, tf, m, 14, int64(900+trial))
		fns := make([]simnet.PlayerFunc, n)
		fns[3] = fx.forgingLeader(3, int64(trial)*19)
		for i := range fns {
			if i == 3 {
				continue
			}
			fns[i] = fx.honestThenExpose(i, int64(trial)*23)
		}
		results := simnet.Run(fx.nw, fns)
		type outT = struct {
			Res   *Result
			Coins []gf2k.Element
		}
		var ref *outT
		for i, r := range results {
			if i == 3 {
				continue
			}
			if r.Err != nil {
				t.Fatalf("trial %d player %d: %v", trial, i, r.Err)
			}
			o := r.Value.(outT)
			if o.Res.Attempts > 1 {
				sawForgerRetry = true
			}
			for _, member := range o.Res.Clique {
				_ = member // forger may legitimately be in the clique (it dealt honestly)
			}
			if ref == nil {
				ref = &o
				continue
			}
			for h := range ref.Coins {
				if o.Coins[h] != ref.Coins[h] {
					t.Fatalf("trial %d: coin %d differs at player %d", trial, h, i)
				}
			}
		}
	}
	if !sawForgerRetry {
		t.Error("forger never drawn as leader in 10 trials; test needs more trials")
	}
}

func TestLargeNetworkStress(t *testing.T) {
	// n=25, t=4 (n = 6t+1): the largest configuration in the E2/E8 sweeps,
	// with t crashed players and a forging grade-caster, exposing a full
	// batch. Gated because 25 players × many rounds is comparatively slow.
	if testing.Short() {
		t.Skip("stress test")
	}
	n, tf, m := 25, 4, 4
	fx := newFixture(t, n, tf, m, 16, 2027)
	fns := make([]simnet.PlayerFunc, n)
	crashed := map[int]bool{3: true, 11: true, 19: true}
	for i := range fns {
		if crashed[i] {
			fns[i] = func(nd *simnet.Node) (interface{}, error) { return nil, nil }
			continue
		}
		if i == 7 {
			fns[i] = fx.forgingLeader(i, 99)
			continue
		}
		fns[i] = fx.honestThenExpose(i, 111)
	}
	results := simnet.Run(fx.nw, fns)
	type outT = struct {
		Res   *Result
		Coins []gf2k.Element
	}
	var ref *outT
	for i, r := range results {
		if crashed[i] || i == 7 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		o := r.Value.(outT)
		if len(o.Res.Clique) < n-2*tf {
			t.Fatalf("clique %d < n−2t = %d", len(o.Res.Clique), n-2*tf)
		}
		if ref == nil {
			ref = &o
			continue
		}
		for h := range ref.Coins {
			if o.Coins[h] != ref.Coins[h] {
				t.Fatalf("player %d coin %d differs", i, h)
			}
		}
	}
}

// inconsistentDealer deals syntactically valid, correct-degree polynomials
// but sends DIFFERENT polynomial evaluations to different halves of the
// network (two parallel sharings). Honest players' γ announcements then
// disagree, so the dealer cannot sit in the agreed clique together with
// honest players from both halves — yet the batch must still come out
// unanimous.
func (fx *fixture) inconsistentDealer(i int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := fx.cfg
		cfg.Seed = fx.seeds[nd.Index()]
		f := cfg.Field
		rnd := rand.New(rand.NewSource(seed + int64(i)))
		mk := func() ([]poly.Poly, error) {
			ps := make([]poly.Poly, cfg.M+1)
			for j := range ps {
				p, err := poly.Random(f, cfg.T, gf2k.Element(rnd.Uint32()), rnd)
				if err != nil {
					return nil, err
				}
				ps[j] = p
			}
			return ps, nil
		}
		polysA, err := mk()
		if err != nil {
			return nil, err
		}
		polysB, err := mk()
		if err != nil {
			return nil, err
		}
		sh := &bitgen.Shares{
			Alpha:    make([][]gf2k.Element, cfg.N),
			Mask:     make([]gf2k.Element, cfg.N),
			Received: make([]bool, cfg.N),
			OwnPolys: polysA,
		}
		for p := 0; p < cfg.N; p++ {
			id, err := f.ElementFromID(p + 1)
			if err != nil {
				return nil, err
			}
			polys := polysA
			if p%2 == 1 {
				polys = polysB
			}
			if p == nd.Index() {
				row := make([]gf2k.Element, cfg.M)
				for h := 0; h < cfg.M; h++ {
					row[h] = poly.Eval(f, polys[h], id)
				}
				sh.Alpha[p], sh.Mask[p], sh.Received[p] = row, poly.Eval(f, polys[cfg.M], id), true
				continue
			}
			buf := make([]byte, 0, (cfg.M+1)*f.ByteLen())
			for _, pp := range polys {
				buf = f.AppendElement(buf, poly.Eval(f, pp, id))
			}
			nd.Send(p, buf)
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		r, err := cfg.Seed.Expose(nd)
		if err != nil {
			return nil, err
		}
		bcfg := bitgen.Config{Field: f, N: cfg.N, T: cfg.T, M: cfg.M}
		if _, err := bitgen.ExchangeGammas(nd, bcfg, sh, r); err != nil {
			return nil, err
		}
		if _, err := gradecast.RunAll(nd, cfg.T, nil); err != nil {
			return nil, err
		}
		for {
			if _, err := cfg.Seed.ExposeMod(nd, cfg.N); err != nil {
				return nil, err
			}
			dec, err := (ba.PhaseKing{T: cfg.T}).Run(nd, 0)
			if err != nil {
				return nil, err
			}
			if dec == 1 {
				return nil, nil
			}
		}
	}
}

func TestInconsistentSharesDealerHandled(t *testing.T) {
	n, tf, m := 7, 1, 2
	for trial := 0; trial < 4; trial++ {
		fx := newFixture(t, n, tf, m, 12, int64(3000+trial))
		fns := make([]simnet.PlayerFunc, n)
		fns[4] = fx.inconsistentDealer(4, int64(trial)*43)
		for i := range fns {
			if i == 4 {
				continue
			}
			fns[i] = fx.honestThenExpose(i, int64(trial)*47)
		}
		results := simnet.Run(fx.nw, fns)
		type outT = struct {
			Res   *Result
			Coins []gf2k.Element
		}
		var ref *outT
		for i, r := range results {
			if i == 4 {
				continue
			}
			if r.Err != nil {
				t.Fatalf("trial %d player %d: %v", trial, i, r.Err)
			}
			o := r.Value.(outT)
			if len(o.Res.Clique) < n-2*tf {
				t.Fatalf("trial %d: clique %d < n−2t", trial, len(o.Res.Clique))
			}
			if ref == nil {
				ref = &o
				continue
			}
			for h := range ref.Coins {
				if o.Coins[h] != ref.Coins[h] {
					t.Fatalf("trial %d: coin %d differs at player %d", trial, h, i)
				}
			}
		}
	}
}

func TestRoundAccountingExact(t *testing.T) {
	// One all-honest Coin-Gen plus M exposures consumes exactly
	// 1 (deal) + 1 (challenge expose) + 1 (γ) + 3 (grade-cast)
	// + attempts·(1 leader expose + 2(t+1) BA) + M (exposures) rounds.
	n, tf, m := 7, 1, 3
	fx := newFixture(t, n, tf, m, 6, 77)
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			cfg := fx.cfg
			cfg.Seed = fx.seeds[nd.Index()]
			rnd := rand.New(rand.NewSource(int64(i)))
			res, err := Run(nd, cfg, rnd)
			if err != nil {
				return nil, err
			}
			for res.Batch.Remaining() > 0 {
				if _, err := res.Batch.Expose(nd); err != nil {
					return nil, err
				}
			}
			want := 6 + res.Attempts*(1+2*(cfg.T+1)) + m
			if nd.Round() != want {
				return nil, fmt.Errorf("consumed %d rounds, want %d (attempts=%d)", nd.Round(), want, res.Attempts)
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(fx.nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
}
