package coin

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf2k"
)

// dealOne returns player 0's batch of `coins` sealed coins over GF(2^k).
func dealOne(t *testing.T, k, n, coins int, seed int64) *Batch {
	t.Helper()
	f := gf2k.MustNew(k)
	batches, _, err := DealTrusted(f, n, 1, coins, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return batches[0]
}

// TestStoreAddRejectsMismatches: a store must refuse structurally
// incompatible batches — different field, different reconstruction degree,
// or share indices outside the bound player-id universe — instead of
// silently desyncing future exposures.
func TestStoreAddRejectsMismatches(t *testing.T) {
	base := dealOne(t, 32, 7, 2, 1)
	st := &Store{Universe: 7}
	if err := st.Add(base); err != nil {
		t.Fatalf("compatible batch rejected: %v", err)
	}
	if err := st.Add(nil); err == nil {
		t.Error("nil batch accepted")
	}
	if err := st.Add(dealOne(t, 16, 7, 2, 2)); err == nil {
		t.Error("batch over a different field accepted")
	}
	// Same field, different T.
	f := gf2k.MustNew(32)
	b2, _, err := DealTrusted(f, 13, 2, 2, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(b2[0]); err == nil {
		t.Error("batch with mismatched T accepted")
	}
	// Reconstruction set outside the universe: t=3 puts S = {0..9}, which a
	// 7-player deployment cannot expose.
	big, _, err := DealTrusted(f, 13, 3, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	fresh := &Store{Universe: 7}
	if err := fresh.Add(big[0]); err == nil {
		t.Error("batch with player indices ≥ Universe accepted")
	}
}

// TestStoreBindUniverse: binding after the fact re-validates resident
// batches, the path taken by restored stores.
func TestStoreBindUniverse(t *testing.T) {
	f := gf2k.MustNew(32)
	// t=3 ⇒ S = {0..9}: too wide for a 7-player universe.
	batches, _, err := DealTrusted(f, 13, 3, 2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{}
	if err := st.Add(batches[0]); err != nil { // unbound store takes anything well-formed
		t.Fatal(err)
	}
	if err := st.BindUniverse(7); err == nil {
		t.Error("BindUniverse(7) accepted a batch naming player 9")
	}
	if err := st.BindUniverse(13); err != nil {
		t.Errorf("BindUniverse(13): %v", err)
	}
	if err := st.BindUniverse(0); err == nil {
		t.Error("BindUniverse(0) accepted")
	}
}

// TestBatchSplit: splitting carves the newest coins into a new batch and
// leaves the rest (and the cursor) behind.
func TestBatchSplit(t *testing.T) {
	b := dealOne(t, 32, 7, 6, 7)
	if _, err := b.Split(0); err == nil {
		t.Error("Split(0) accepted")
	}
	if _, err := b.Split(7); err == nil {
		t.Error("Split beyond Remaining accepted")
	}
	tail, err := b.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 4 || tail.Remaining() != 2 {
		t.Fatalf("split 6 into %d + %d, want 4 + 2", b.Remaining(), tail.Remaining())
	}
	if tail.Field.K() != b.Field.K() || tail.T != b.T {
		t.Fatal("split batch lost its field or degree")
	}
}

// TestStoreDetachTail: the detached store holds exactly the newest coins;
// FIFO order within it is preserved; bounds are enforced.
func TestStoreDetachTail(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(8))
	b1, _, err := DealTrusted(f, 7, 1, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := DealTrusted(f, 7, 1, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{}
	if err := st.Add(b1[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(b2[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.DetachTail(6); err == nil {
		t.Error("DetachTail of the whole store accepted")
	}
	// 4 newest = all of b2 (3) + the newest coin of b1: crosses a batch
	// boundary.
	tail, err := st.DetachTail(4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remaining() != 2 || tail.Remaining() != 4 {
		t.Fatalf("detach left %d + %d, want 2 + 4", st.Remaining(), tail.Remaining())
	}
	if got := len(tail.Batches()); got != 2 {
		t.Fatalf("detached tail spans %d batches, want 2", got)
	}
}

// TestStoreMarshalRoundTrip: multi-batch stores with partially exposed
// batches survive the wire format byte-for-byte.
func TestStoreMarshalRoundTrip(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(9))
	st := &Store{}
	for s := 0; s < 3; s++ {
		bs, _, err := DealTrusted(f, 7, 1, 2+s, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(bs[0]); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalStore(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Remaining() != st.Remaining() || len(got.Batches()) != len(st.Batches()) {
		t.Fatalf("restored store has %d coins in %d batches, want %d in %d",
			got.Remaining(), len(got.Batches()), st.Remaining(), len(st.Batches()))
	}
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, enc) {
		t.Fatal("store encoding is not stable across a round trip")
	}
}

// TestUnmarshalStoreRejectsMalformed covers truncation, bad magic,
// trailing garbage, and structurally incompatible member batches.
func TestUnmarshalStoreRejectsMalformed(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(10))
	st := &Store{}
	bs, _, err := DealTrusted(f, 7, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(bs[0]); err != nil {
		t.Fatal(err)
	}
	enc, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("NOTDPRBG"), enc[8:]...),
		"truncated":    enc[:len(enc)-3],
		"trailing":     append(append([]byte{}, enc...), 0xff),
		"batch magic":  bytes.Replace(enc, []byte(batchMagic), []byte("XXXXXXXX"), 1),
		"count too hi": append(append([]byte{}, enc[:len(storeMagicV2)+8]...), 0xff, 0xff, 0xff, 0x7f),
	}
	for name, data := range cases {
		if _, err := UnmarshalStore(data); err == nil {
			t.Errorf("%s: malformed store encoding accepted", name)
		}
	}
	// A file whose batches disagree structurally must fail Add's checks.
	b16, _, err := DealTrusted(gf2k.MustNew(16), 7, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	e16, err := b16[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mixed := &Store{}
	if err := mixed.Add(bs[0]); err != nil {
		t.Fatal(err)
	}
	menc, err := mixed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Forge a two-batch file: the valid GF(2^32) batch followed by a
	// GF(2^16) batch. The v2 header (universe + generation) is kept as-is.
	forged := append([]byte{}, menc[:len(storeMagicV2)+8]...)
	forged = append(forged, 2, 0, 0, 0)
	body := menc[len(storeMagicV2)+12:]
	forged = append(forged, body...)
	forged = append(forged, byte(len(e16)), byte(len(e16)>>8), byte(len(e16)>>16), byte(len(e16)>>24))
	forged = append(forged, e16...)
	if _, err := UnmarshalStore(forged); err == nil {
		t.Error("store mixing fields accepted")
	}
}

// TestDiscardFastForward: Discard must advance the cursor exactly as that
// many Exposes would — across batch boundaries, popping drained batches —
// so a rejoining player's next transmitted share index matches the cluster.
func TestDiscardFastForward(t *testing.T) {
	st := &Store{Universe: 7}
	if err := st.Add(dealOne(t, 32, 7, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(dealOne(t, 32, 7, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Discard(5); err != nil {
		t.Fatal(err)
	}
	if got := st.Remaining(); got != 2 {
		t.Fatalf("Remaining after Discard(5) = %d, want 2", got)
	}
	// The front batch is fully drained; the survivor's cursor sits at 2.
	if bs := st.Batches(); len(bs) != 1 || bs[0].Cursor() != 2 {
		t.Fatalf("post-discard batches = %d, front cursor = %d; want 1 batch at cursor 2",
			len(bs), bs[0].Cursor())
	}
	if err := st.Discard(3); err == nil {
		t.Error("Discard beyond Remaining accepted")
	}
	if err := st.Discard(-1); err == nil {
		t.Error("negative Discard accepted")
	}
	if err := st.Discard(2); err != nil {
		t.Fatal(err)
	}
	if st.Remaining() != 0 {
		t.Fatalf("Remaining after draining = %d, want 0", st.Remaining())
	}
}

// TestBatchDiscardMatchesExposeCursor: Batch.Discard(k) leaves the batch at
// the same cursor as k sequential Exposes would, so the share transmitted
// next is the one the rest of the cluster expects.
func TestBatchDiscardMatchesExposeCursor(t *testing.T) {
	b := dealOne(t, 32, 7, 6, 9)
	if err := b.Discard(4); err != nil {
		t.Fatal(err)
	}
	if b.Cursor() != 4 || b.Remaining() != 2 {
		t.Fatalf("cursor %d remaining %d after Discard(4), want 4 and 2", b.Cursor(), b.Remaining())
	}
	if err := b.Discard(0); err != nil {
		t.Fatalf("Discard(0) should be a no-op: %v", err)
	}
	if err := b.Discard(3); err == nil {
		t.Error("Discard past the end accepted")
	}
}
