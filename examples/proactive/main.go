// Command proactive demonstrates the paper's pro-active setting (§1.2):
// "one of the motivations and applications of our work is pro-active
// security..., which deals with settings where intruders are allowed to
// move over time." Thirteen players (t = 2) generate coin batches while the
// corrupted players CHANGE between batches: a wrong-degree dealer in batch
// 1 recovers and participates honestly in batch 2, while a previously
// honest player turns Byzantine. Because every batch is dealt from fresh
// polynomials, no long-lived secret exists for the moving intruder to
// collect.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/bitgen"
	"repro/internal/coin"
	"repro/internal/coingen"
	"repro/internal/gradecast"
	"repro/internal/poly"

	"repro/internal/ba"
)

const (
	n = 13
	t = 2
	k = 32
	m = 6 // coins per batch
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	field := repro.MustNewField(k)
	rng := rand.New(rand.NewSource(2026))
	seeds, _, err := coin.DealTrusted(field, n, t, 16, rng)
	if err != nil {
		return err
	}
	cfg := coingen.Config{Field: field, N: n, T: t, M: m}

	// Corruption schedule: batch 0 → players {2, 9} bad; batch 1 → {5, 9}
	// bad (2 recovered, 5 newly corrupted, 9 still bad). At most t = 2
	// concurrent faults, but three distinct players are corrupted over the
	// run — impossible to tolerate for schemes that fix the faulty set.
	badIn := [2]map[int]bool{
		{2: true, 9: true},
		{5: true, 9: true},
	}

	nw := repro.NewNetwork(n)
	fns := make([]repro.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *repro.Node) (interface{}, error) {
			pcfg := cfg
			pcfg.Seed = seeds[i]
			var out [2][]repro.Element
			var cliques [2][]int
			for batch := 0; batch < 2; batch++ {
				rnd := rand.New(rand.NewSource(int64(1000*batch + i)))
				if badIn[batch][i] {
					if err := badDealOnce(nd, pcfg, rnd); err != nil {
						return nil, err
					}
					for c := 0; c < m; c++ { // keep pace during exposures
						if _, err := nd.EndRound(); err != nil {
							return nil, err
						}
					}
					continue
				}
				res, err := coingen.Run(nd, pcfg, rnd)
				if err != nil {
					return nil, err
				}
				cliques[batch] = res.Clique
				for res.Batch.Remaining() > 0 {
					c, err := res.Batch.Expose(nd)
					if err != nil {
						return nil, err
					}
					out[batch] = append(out[batch], c)
				}
			}
			return struct {
				Coins   [2][]repro.Element
				Cliques [2][]int
			}{out, cliques}, nil
		}
	}
	results := repro.Run(nw, fns)

	type outT = struct {
		Coins   [2][]repro.Element
		Cliques [2][]int
	}
	// Player 0 is honest in both batches; use it as reference.
	ref := results[0].Value.(outT)
	for batch := 0; batch < 2; batch++ {
		fmt.Printf("batch %d (corrupted: %v)\n", batch+1, keys(badIn[batch]))
		fmt.Printf("  agreed clique: %v\n", ref.Cliques[batch])
		fmt.Printf("  coins: ")
		for _, c := range ref.Coins[batch] {
			fmt.Printf("%08x ", c)
		}
		fmt.Println()
		for i, r := range results {
			if badIn[batch][i] {
				continue
			}
			if r.Err != nil {
				return fmt.Errorf("player %d: %w", i, r.Err)
			}
			o := r.Value.(outT)
			for h := range ref.Coins[batch] {
				if o.Coins[batch][h] != ref.Coins[batch][h] {
					return fmt.Errorf("unanimity violated: batch %d coin %d player %d", batch, h, i)
				}
			}
		}
	}
	if contains(ref.Cliques[0], 2) || contains(ref.Cliques[1], 5) {
		return fmt.Errorf("a corrupted dealer slipped into the clique")
	}
	if !contains(ref.Cliques[1], 2) {
		return fmt.Errorf("recovered player 2 missing from batch-2 clique")
	}
	fmt.Println("\nthe intruder moved (2 → 5) and the generator kept going:")
	fmt.Println("  batch 1 excluded dealer 2; batch 2 re-admitted it and excluded dealer 5")
	return nil
}

// badDealOnce participates in one Coin-Gen as a wrong-degree dealer while
// staying in lockstep, so the same player can rejoin honestly later.
func badDealOnce(nd *repro.Node, cfg coingen.Config, rnd *rand.Rand) error {
	f := cfg.Field
	polys := make([]poly.Poly, cfg.M+1)
	for j := range polys {
		p, err := poly.Random(f, cfg.T+1, repro.Element(rnd.Uint32()), rnd)
		if err != nil {
			return err
		}
		if p[cfg.T+1] == 0 {
			p[cfg.T+1] = 1
		}
		polys[j] = p
	}
	sh := &bitgen.Shares{
		Alpha:    make([][]repro.Element, cfg.N),
		Mask:     make([]repro.Element, cfg.N),
		Received: make([]bool, cfg.N),
		OwnPolys: polys,
	}
	for p := 0; p < cfg.N; p++ {
		id, err := f.ElementFromID(p + 1)
		if err != nil {
			return err
		}
		if p == nd.Index() {
			row := make([]repro.Element, cfg.M)
			for h := 0; h < cfg.M; h++ {
				row[h] = poly.Eval(f, polys[h], id)
			}
			sh.Alpha[p], sh.Mask[p], sh.Received[p] = row, poly.Eval(f, polys[cfg.M], id), true
			continue
		}
		buf := make([]byte, 0, (cfg.M+1)*f.ByteLen())
		for _, pp := range polys {
			buf = f.AppendElement(buf, poly.Eval(f, pp, id))
		}
		nd.Send(p, buf)
	}
	if _, err := nd.EndRound(); err != nil {
		return err
	}
	r, err := cfg.Seed.Expose(nd)
	if err != nil {
		return err
	}
	bcfg := bitgen.Config{Field: f, N: cfg.N, T: cfg.T, M: cfg.M}
	if _, err := bitgen.ExchangeGammas(nd, bcfg, sh, r); err != nil {
		return err
	}
	if _, err := gradecast.RunAll(nd, cfg.T, []byte{0xff}); err != nil {
		return err
	}
	for {
		if _, err := cfg.Seed.ExposeMod(nd, cfg.N); err != nil {
			return err
		}
		dec, err := (ba.PhaseKing{T: cfg.T}).Run(nd, 0)
		if err != nil {
			return err
		}
		if dec == 1 {
			return nil
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func keys(m map[int]bool) []int {
	var out []int
	for v := range m {
		out = append(out, v)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
