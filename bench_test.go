package repro

// One benchmark per experiment table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). Benchmarks report wall-clock per protocol execution plus
// amortized communication as custom metrics, so `go test -bench=. -benchmem`
// regenerates the performance side of every experiment; cmd/experiments
// regenerates the correctness/soundness side.

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bitgen"
	"repro/internal/coin"
	"repro/internal/coingen"
	"repro/internal/core"
	"repro/internal/fastfield"
	"repro/internal/gf2big"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/rba"
	"repro/internal/simnet"
	"repro/internal/vss"
)

// --- E2/E4: VSS and Batch-VSS ----------------------------------------------

func benchVSSCeremony(b *testing.B, n, t, m int) {
	field := gf2k.MustNew(32)
	var ctr metrics.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		batches, _, err := coin.DealTrusted(field, n, t, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		nw := simnet.New(n, simnet.WithCounters(&ctr))
		fns := make([]simnet.PlayerFunc, n)
		for p := 0; p < n; p++ {
			p := p
			fns[p] = func(nd *simnet.Node) (interface{}, error) {
				cfg := vss.Config{Field: field, N: n, T: t, Coins: batches[p]}
				var rnd *rand.Rand
				var secrets []gf2k.Element
				if p == 0 {
					rnd = rand.New(rand.NewSource(int64(i)))
					secrets = make([]gf2k.Element, m)
					for j := range secrets {
						secrets[j] = gf2k.Element(j + 1)
					}
				}
				inst, err := vss.Deal(nd, cfg, 0, secrets, rnd)
				if err != nil {
					return nil, err
				}
				ok, err := inst.Verify(nd)
				if err != nil || !ok {
					return nil, fmt.Errorf("verify: %v %v", ok, err)
				}
				return nil, nil
			}
		}
		for p, r := range simnet.Run(nw, fns) {
			if r.Err != nil {
				b.Fatalf("player %d: %v", p, r.Err)
			}
		}
	}
	b.StopTimer()
	s := ctr.Snapshot()
	b.ReportMetric(float64(s.Bytes)/float64(b.N)/float64(m), "bytes/secret")
	b.ReportMetric(float64(s.Messages)/float64(b.N)/float64(m), "msgs/secret")
}

func BenchmarkE2VSSSingle(b *testing.B) {
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {13, 4}} {
		b.Run(fmt.Sprintf("n=%d", tc.n), func(b *testing.B) {
			benchVSSCeremony(b, tc.n, tc.t, 1)
		})
	}
}

func BenchmarkE4BatchVSS(b *testing.B) {
	for _, m := range []int{1, 16, 256, 1024} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			benchVSSCeremony(b, 7, 2, m)
		})
	}
}

// --- Interpolation domains (poly.Domain) -------------------------------------

// BenchmarkInterpolateUncached and BenchmarkInterpolateCached compare the
// plain Lagrange path (n inversions per call) against the precomputed
// poly.Domain path (one batch inversion at construction, zero per call).
// Both report invs/op measured with metrics.Counters — the unit the PR's
// acceptance criterion is stated in — alongside wall clock.
func BenchmarkInterpolateUncached(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ctr metrics.Counters
			field := gf2k.MustNew(32).WithCounters(&ctr)
			xs, ys := interpPoints(b, field, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := poly.InterpolateAt0(field, xs, ys, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ctr.Snapshot().FieldInvs)/float64(b.N), "invs/op")
		})
	}
}

func BenchmarkInterpolateCached(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ctr metrics.Counters
			field := gf2k.MustNew(32).WithCounters(&ctr)
			xs, ys := interpPoints(b, field, n)
			dom, err := poly.DomainFor(field, xs, &ctr)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dom.InterpolateAt0(ys, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ctr.Snapshot().FieldInvs)/float64(b.N), "invs/op")
		})
	}
}

func interpPoints(b *testing.B, field gf2k.Field, n int) (xs, ys []gf2k.Element) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	xs = make([]gf2k.Element, n)
	for i := range xs {
		id, err := field.ElementFromID(i + 1)
		if err != nil {
			b.Fatal(err)
		}
		xs[i] = id
	}
	p, err := poly.Random(field, n-1, 0x1234, rng)
	if err != nil {
		b.Fatal(err)
	}
	return xs, poly.EvalMany(field, p, xs)
}

// BenchmarkBatchVSSScale runs the full Batch-VSS ceremony at n ∈ {16,32,64}
// (M=64 secrets), reporting amortized inversions per secret and the domain
// cache hit rate — the end-to-end view of the same amortization.
func BenchmarkBatchVSSScale(b *testing.B) {
	for _, tc := range []struct{ n, t int }{{16, 5}, {32, 10}, {64, 21}} {
		b.Run(fmt.Sprintf("n=%d", tc.n), func(b *testing.B) {
			const m = 64
			var ctr metrics.Counters
			field := gf2k.MustNew(32).WithCounters(&ctr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				batches, _, err := coin.DealTrusted(field, tc.n, tc.t, 1, rng)
				if err != nil {
					b.Fatal(err)
				}
				nw := simnet.New(tc.n)
				fns := make([]simnet.PlayerFunc, tc.n)
				for p := 0; p < tc.n; p++ {
					p := p
					fns[p] = func(nd *simnet.Node) (interface{}, error) {
						cfg := vss.Config{Field: field, N: tc.n, T: tc.t, Coins: batches[p], Counters: &ctr}
						var rnd *rand.Rand
						var secrets []gf2k.Element
						if p == 0 {
							rnd = rand.New(rand.NewSource(int64(i)))
							secrets = make([]gf2k.Element, m)
							for j := range secrets {
								secrets[j] = gf2k.Element(j + 1)
							}
						}
						inst, err := vss.Deal(nd, cfg, 0, secrets, rnd)
						if err != nil {
							return nil, err
						}
						ok, err := inst.Verify(nd)
						if err != nil || !ok {
							return nil, fmt.Errorf("verify: %v %v", ok, err)
						}
						return nil, nil
					}
				}
				for p, r := range simnet.Run(nw, fns) {
					if r.Err != nil {
						b.Fatalf("player %d: %v", p, r.Err)
					}
				}
			}
			b.StopTimer()
			s := ctr.Snapshot()
			b.ReportMetric(float64(s.FieldInvs)/float64(b.N)/float64(m), "invs/secret")
			if total := s.DomainHits + s.DomainMisses; total > 0 {
				b.ReportMetric(float64(s.DomainHits)/float64(total), "domain-hit-rate")
			}
		})
	}
}

// --- E5: Bit-Gen -------------------------------------------------------------

func BenchmarkE5BitGen(b *testing.B) {
	for _, m := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			n, t := 7, 1
			field := gf2k.MustNew(32)
			cfg := bitgen.Config{Field: field, N: n, T: t, M: m}
			for i := 0; i < b.N; i++ {
				nw := simnet.New(n)
				fns := make([]simnet.PlayerFunc, n)
				for p := 0; p < n; p++ {
					p := p
					fns[p] = func(nd *simnet.Node) (interface{}, error) {
						rnd := rand.New(rand.NewSource(int64(i*100 + p)))
						sh, err := bitgen.DealAll(nd, cfg, rnd)
						if err != nil {
							return nil, err
						}
						return bitgen.ExchangeGammas(nd, cfg, sh, 0x5555)
					}
				}
				for p, r := range simnet.Run(nw, fns) {
					if r.Err != nil {
						b.Fatalf("player %d: %v", p, r.Err)
					}
				}
			}
		})
	}
}

// --- E8: Coin-Gen ------------------------------------------------------------

func BenchmarkE8CoinGen(b *testing.B) {
	for _, m := range []int{4, 64, 256} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			n, t := 7, 1
			field := gf2k.MustNew(32)
			var ctr metrics.Counters
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				seeds, _, err := coin.DealTrusted(field, n, t, 8, rng)
				if err != nil {
					b.Fatal(err)
				}
				nw := simnet.New(n, simnet.WithCounters(&ctr))
				fns := make([]simnet.PlayerFunc, n)
				for p := 0; p < n; p++ {
					p := p
					fns[p] = func(nd *simnet.Node) (interface{}, error) {
						cfg := coingen.Config{Field: field, N: n, T: t, M: m, Seed: seeds[p]}
						rnd := rand.New(rand.NewSource(int64(i*100 + p)))
						return coingen.Run(nd, cfg, rnd)
					}
				}
				for p, r := range simnet.Run(nw, fns) {
					if r.Err != nil {
						b.Fatalf("player %d: %v", p, r.Err)
					}
				}
			}
			b.StopTimer()
			s := ctr.Snapshot()
			b.ReportMetric(float64(s.Bytes)/float64(b.N)/float64(m), "bytes/coin")
		})
	}
}

// --- E9: field multiplication crossover --------------------------------------

func BenchmarkE9FieldMulGF2k(b *testing.B) {
	for _, k := range []int{16, 32, 64} {
		f := gf2k.MustNew(k)
		rng := rand.New(rand.NewSource(1))
		x, _ := f.Rand(rng)
		y, _ := f.Rand(rng)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x = f.Mul(x, y) | 1
			}
		})
	}
}

func BenchmarkE9FieldMulGF2Big(b *testing.B) {
	for _, k := range []int{64, 256, 1024, 4096} {
		f, err := gf2big.New(k)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		x, _ := f.Rand(rng)
		y, _ := f.Rand(rng)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x = f.Mul(x, y)
			}
		})
		_ = x
	}
}

func BenchmarkE9FieldMulFastNTT(b *testing.B) {
	for _, k := range []int{64, 256, 1024, 4096} {
		f, err := fastfield.New(k)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		x, _ := f.Rand(rng)
		y, _ := f.Rand(rng)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x = f.Mul(x, y)
			}
		})
		_ = x
	}
}

// --- E10: D-PRBG vs from-scratch ----------------------------------------------

func BenchmarkE10DPRBGPerCoin(b *testing.B) {
	n, t := 7, 1
	field := gf2k.MustNew(32)
	var ctr metrics.Counters
	cfg := core.Config{Field: field, N: n, T: t, BatchSize: 32}
	rng := rand.New(rand.NewSource(1))
	gens, err := core.SetupTrusted(cfg, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	nw := simnet.New(n, simnet.WithCounters(&ctr))
	b.ResetTimer()
	fns := make([]simnet.PlayerFunc, n)
	for p := 0; p < n; p++ {
		p := p
		fns[p] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < b.N; i++ {
				if _, err := gens[p].Next(nd, rnd); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
	}
	for p, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			b.Fatalf("player %d: %v", p, r.Err)
		}
	}
	b.StopTimer()
	s := ctr.Snapshot()
	b.ReportMetric(float64(s.Bytes)/float64(b.N), "bytes/coin")
	b.ReportMetric(float64(s.Messages)/float64(b.N), "msgs/coin")
}

func BenchmarkE10FromScratchPerCoin(b *testing.B) {
	n, t := 7, 1
	field := gf2k.MustNew(32)
	var ctr metrics.Counters
	cfg := baseline.FromScratchConfig{Field: field, N: n, T: t, Kappa: 16}
	nw := simnet.New(n, simnet.WithCounters(&ctr))
	b.ResetTimer()
	fns := make([]simnet.PlayerFunc, n)
	for p := 0; p < n; p++ {
		p := p
		fns[p] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < b.N; i++ {
				if _, err := baseline.FromScratchCoin(nd, cfg, rnd); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
	}
	for p, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			b.Fatalf("player %d: %v", p, r.Err)
		}
	}
	b.StopTimer()
	s := ctr.Snapshot()
	b.ReportMetric(float64(s.Bytes)/float64(b.N), "bytes/coin")
	b.ReportMetric(float64(s.Messages)/float64(b.N), "msgs/coin")
}

// --- E11: VSS comparison -------------------------------------------------------

func BenchmarkE11OursVSS(b *testing.B)    { benchVSSCeremony(b, 7, 2, 1) }
func BenchmarkE11CCDVSS(b *testing.B)     { benchCCD(b, 32) }
func BenchmarkE11FeldmanVSS(b *testing.B) { benchFeldman(b) }

func benchCCD(b *testing.B, kappa int) {
	n, t := 7, 2
	field := gf2k.MustNew(32)
	cfg := baseline.CCDConfig{Field: field, N: n, T: t, Kappa: kappa}
	for i := 0; i < b.N; i++ {
		nw := simnet.New(n)
		fns := make([]simnet.PlayerFunc, n)
		for p := 0; p < n; p++ {
			p := p
			fns[p] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(i*100 + p)))
				ok, _, err := baseline.CCDVSS(nd, cfg, 0, 7, rnd)
				if err != nil || !ok {
					return nil, fmt.Errorf("ccd: %v %v", ok, err)
				}
				return nil, nil
			}
		}
		for p, r := range simnet.Run(nw, fns) {
			if r.Err != nil {
				b.Fatalf("player %d: %v", p, r.Err)
			}
		}
	}
}

func benchFeldman(b *testing.B) {
	grp, err := baseline.NewFeldmanGroup()
	if err != nil {
		b.Fatal(err)
	}
	n, t := 7, 2
	cfg := baseline.FeldmanConfig{Group: grp, N: n, T: t}
	for i := 0; i < b.N; i++ {
		nw := simnet.New(n)
		fns := make([]simnet.PlayerFunc, n)
		for p := 0; p < n; p++ {
			p := p
			fns[p] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(i*100 + p)))
				ok, _, err := baseline.FeldmanVSS(nd, cfg, 0, big.NewInt(99), rnd)
				if err != nil || !ok {
					return nil, fmt.Errorf("feldman: %v %v", ok, err)
				}
				return nil, nil
			}
		}
		for p, r := range simnet.Run(nw, fns) {
			if r.Err != nil {
				b.Fatalf("player %d: %v", p, r.Err)
			}
		}
	}
}

// --- E14: randomized BA --------------------------------------------------------

func BenchmarkE14RandomizedBA(b *testing.B) {
	n, t, phases := 6, 1, 8
	field := gf2k.MustNew(32)
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		batches, _, err := coin.DealTrusted(field, n, t, phases+1, rng)
		if err != nil {
			b.Fatal(err)
		}
		nw := simnet.New(n)
		fns := make([]simnet.PlayerFunc, n)
		for p := 0; p < n; p++ {
			p := p
			fns[p] = func(nd *simnet.Node) (interface{}, error) {
				return rba.Run(nd, rba.Config{N: n, T: t, Phases: phases, Coins: batches[p]}, byte(p%2))
			}
		}
		for p, r := range simnet.Run(nw, fns) {
			if r.Err != nil {
				b.Fatalf("player %d: %v", p, r.Err)
			}
		}
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------------

// BenchmarkAblationBatchVsLoop compares verifying M secrets with one
// Batch-VSS ceremony against M single-secret ceremonies — the paper's core
// amortization claim in one number.
func BenchmarkAblationBatchVsLoop(b *testing.B) {
	const m = 64
	b.Run("batch", func(b *testing.B) { benchVSSCeremony(b, 7, 2, m) })
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < m; j++ {
				benchOneVSS(b, 7, 2, int64(i*1000+j))
			}
		}
	})
}

func benchOneVSS(b *testing.B, n, t int, seed int64) {
	field := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(seed))
	batches, _, err := coin.DealTrusted(field, n, t, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for p := 0; p < n; p++ {
		p := p
		fns[p] = func(nd *simnet.Node) (interface{}, error) {
			cfg := vss.Config{Field: field, N: n, T: t, Coins: batches[p]}
			var rnd *rand.Rand
			var secrets []gf2k.Element
			if p == 0 {
				rnd = rand.New(rand.NewSource(seed))
				secrets = []gf2k.Element{42}
			}
			inst, err := vss.Deal(nd, cfg, 0, secrets, rnd)
			if err != nil {
				return nil, err
			}
			ok, err := inst.Verify(nd)
			if err != nil || !ok {
				return nil, fmt.Errorf("verify: %v %v", ok, err)
			}
			return nil, nil
		}
	}
	for p, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			b.Fatalf("player %d: %v", p, r.Err)
		}
	}
}

// BenchmarkAblationNTTvsNaiveFastfield isolates the O(l log l) vs O(l²)
// reduction inside the special field.
func BenchmarkAblationNTTvsNaiveFastfield(b *testing.B) {
	f, err := fastfield.New(1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, _ := f.Rand(rng)
	y, _ := f.Rand(rng)
	b.Run("ntt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x = f.Mul(x, y)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x = f.MulNaive(x, y)
		}
	})
	_ = x
}

// BenchmarkAblationChallengeReuse quantifies the saving from Coin-Gen's
// reuse of ONE exposed coin as the batch-check challenge for all n Bit-Gen
// invocations (Fig. 5 step 3; "n polynomial interpolations have been saved
// by using the same coin for all the invocations", Theorem 2). The variants
// run the full dealing + γ exchange preceded by 1 vs n coin exposures.
func BenchmarkAblationChallengeReuse(b *testing.B) {
	n, t, m := 7, 1, 8
	field := gf2k.MustNew(32)
	run := func(b *testing.B, exposures int) {
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i + 1)))
			seeds, _, err := coin.DealTrusted(field, n, t, exposures, rng)
			if err != nil {
				b.Fatal(err)
			}
			cfg := bitgen.Config{Field: field, N: n, T: t, M: m}
			nw := simnet.New(n)
			fns := make([]simnet.PlayerFunc, n)
			for p := 0; p < n; p++ {
				p := p
				fns[p] = func(nd *simnet.Node) (interface{}, error) {
					rnd := rand.New(rand.NewSource(int64(i*100 + p)))
					sh, err := bitgen.DealAll(nd, cfg, rnd)
					if err != nil {
						return nil, err
					}
					var r gf2k.Element
					for e := 0; e < exposures; e++ {
						r, err = seeds[p].Expose(nd)
						if err != nil {
							return nil, err
						}
					}
					return bitgen.ExchangeGammas(nd, cfg, sh, r)
				}
			}
			for p, r := range simnet.Run(nw, fns) {
				if r.Err != nil {
					b.Fatalf("player %d: %v", p, r.Err)
				}
			}
		}
	}
	b.Run("shared-challenge", func(b *testing.B) { run(b, 1) })
	b.Run("per-dealer-challenge", func(b *testing.B) { run(b, n) })
}

// --- Parallel intra-round compute (internal/parallel) ------------------------

// BenchmarkCoinGenParallel measures ONE player's intra-round pure compute at
// n=64 — the work internal/parallel fans out — at increasing pool widths.
// A whole-cluster benchmark cannot show this speedup: at n=64 the simnet's
// 64 player goroutines already saturate every core, so the dealer-level
// parallelism inside one node is only visible on an isolated workload. The
// workload is exactly the per-round hot path of Coin-Gen steps 3–4: the n
// M-term γ Horner combinations, the n per-dealer Berlekamp–Welch decodes,
// and the n² consistency-graph evaluations, on a fabricated honest view.
//
// GOMAXPROCS is pinned to the pool width per sub-benchmark, so width=8 vs
// width=1 is a true 8-core-vs-serial wall-clock comparison on capable
// hardware (single-core machines show parity, not speedup). Verdicts are
// asserted identical at every width.
func BenchmarkCoinGenParallel(b *testing.B) {
	const (
		n = 64
		t = 10 // 6t+1 = 61 ≤ 64: the paper's Coin-Gen regime
		m = 64
	)
	field := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(99))
	r, err := field.Rand(rng)
	if err != nil {
		b.Fatal(err)
	}

	ids := make([]gf2k.Element, n)
	for i := 0; i < n; i++ {
		id, err := field.ElementFromID(i + 1)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}

	// Fabricate player 0's post-deal state for an all-honest run: every
	// dealer j dealt M random degree-≤t polynomials plus a mask.
	sh := &bitgen.Shares{
		Alpha:    make([][]gf2k.Element, n),
		Mask:     make([]gf2k.Element, n),
		Received: make([]bool, n),
	}
	// combined[j] = g_j + Σ_h r^{h+1}·f_{j,h} is dealer j's masked batch
	// polynomial F_j; γ_{k,j} = F_j(id_k) fills the exchanged-γ matrix.
	combined := make([]poly.Poly, n)
	for j := 0; j < n; j++ {
		comb := make(poly.Poly, t+1)
		row := make([]gf2k.Element, m)
		rPow := r
		for h := 0; h <= m; h++ {
			secret, err := field.Rand(rng)
			if err != nil {
				b.Fatal(err)
			}
			p, err := poly.Random(field, t, secret, rng)
			if err != nil {
				b.Fatal(err)
			}
			if h == m { // the mask polynomial g_j
				for c := range comb {
					comb[c] = field.Add(comb[c], p[c])
				}
				sh.Mask[j] = poly.Eval(field, p, ids[0])
				break
			}
			for c := range comb {
				comb[c] = field.Add(comb[c], field.Mul(rPow, p[c]))
			}
			rPow = field.Mul(rPow, r)
			row[h] = poly.Eval(field, p, ids[0])
		}
		combined[j] = comb
		sh.Alpha[j] = row
		sh.Received[j] = true
	}
	view := &bitgen.View{
		Challenge: r,
		Outputs:   make([]bitgen.Output, n),
		GammaOf:   make([][]gf2k.Element, n),
		Has:       make([][]bool, n),
	}
	for k := 0; k < n; k++ {
		view.GammaOf[k] = make([]gf2k.Element, n)
		view.Has[k] = make([]bool, n)
		for j := 0; j < n; j++ {
			view.GammaOf[k][j] = poly.Eval(field, combined[j], ids[k])
			view.Has[k][j] = true
		}
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, width := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("n=%d/width=%d", n, width), func(b *testing.B) {
			runtime.GOMAXPROCS(width)
			defer runtime.GOMAXPROCS(prevProcs)
			var pool *parallel.Pool
			if width > 1 {
				pool = parallel.New(width)
			}
			bcfg := bitgen.Config{Field: field, N: n, T: t, M: m}
			ccfg := coingen.Config{Field: field, N: n, T: t, M: m, Pool: pool}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gammas, _ := sh.Gammas(field, r, pool)
				if gammas[0] != view.GammaOf[0][0] {
					b.Fatal("fabricated shares disagree with fabricated view")
				}
				pool.ForEach(n, func(j int) {
					view.Outputs[j] = view.Decode(bcfg, ids, j)
				})
				g, err := coingen.ConsistencyGraph(ccfg, view)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if !view.Outputs[j].OK {
						b.Fatalf("width=%d: dealer %d failed to decode on honest data", width, j)
					}
					if j > 0 && !g.HasEdge(0, j) {
						b.Fatalf("width=%d: edge {0,%d} missing from an all-honest graph", width, j)
					}
				}
			}
		})
	}
}
