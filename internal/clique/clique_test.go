package clique

import (
	"math/rand"
	"testing"
)

func TestApproxCliqueCompleteGraph(t *testing.T) {
	g := NewGraph(7)
	for a := 0; a < 7; a++ {
		for b := a + 1; b < 7; b++ {
			g.AddEdge(a, b)
		}
	}
	c := ApproxClique(g)
	if len(c) != 7 {
		t.Fatalf("complete graph: clique size %d, want 7", len(c))
	}
	if !g.IsClique(c) {
		t.Fatal("result is not a clique")
	}
}

func TestApproxCliqueEmptyGraph(t *testing.T) {
	g := NewGraph(6)
	c := ApproxClique(g)
	// Complement is complete: perfect matching covers everyone.
	if len(c) > 1 {
		t.Fatalf("empty graph: got clique of %d", len(c))
	}
	if !g.IsClique(c) {
		t.Fatal("result is not a clique")
	}
}

func TestApproxCliqueGuarantee(t *testing.T) {
	// Plant a clique of n−t honest vertices; faulty vertices connect
	// adversarially. The result must be a clique of size ≥ n−2t.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		tf := 1 + rng.Intn(4)
		n := 6*tf + 1
		honest := rng.Perm(n)[:n-tf]
		isHonest := make([]bool, n)
		for _, v := range honest {
			isHonest[v] = true
		}
		g := NewGraph(n)
		for i := 0; i < len(honest); i++ {
			for j := i + 1; j < len(honest); j++ {
				g.AddEdge(honest[i], honest[j])
			}
		}
		// Faulty vertices gain random edges (to anyone).
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if (!isHonest[a] || !isHonest[b]) && rng.Intn(2) == 0 {
					g.AddEdge(a, b)
				}
			}
		}
		c := ApproxClique(g)
		if len(c) < n-2*tf {
			t.Fatalf("trial %d (n=%d t=%d): clique size %d < %d", trial, n, tf, len(c), n-2*tf)
		}
		if !g.IsClique(c) {
			t.Fatalf("trial %d: result is not a clique", trial)
		}
	}
}

func TestApproxCliqueDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph(9)
		edges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {2, 5}, {5, 6}, {7, 8}, {0, 5}, {1, 5}, {2, 0}}
		for _, e := range edges {
			g.AddEdge(e[0], e[1])
		}
		return g
	}
	a := ApproxClique(build())
	b := ApproxClique(build())
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic members")
		}
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(1, 1)
	if g.HasEdge(1, 1) {
		t.Fatal("self-loop recorded")
	}
}

func TestIsClique(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	if !g.IsClique([]int{0, 1, 2}) {
		t.Error("triangle not recognized")
	}
	if g.IsClique([]int{0, 1, 3}) {
		t.Error("non-clique accepted")
	}
	if !g.IsClique(nil) || !g.IsClique([]int{2}) {
		t.Error("trivial cliques rejected")
	}
}
