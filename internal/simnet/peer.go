package simnet

// Peer transport: the multi-process deployment of the synchronous network.
// Where tcp.go keeps all n players in one process and one barrier, this file
// gives each daemon exactly ONE live node — its own player — and stretches
// the round barrier across processes:
//
//   - Every daemon dials every other peer (full mesh, two simplex
//     connections per pair) and authenticates each connection with the
//     handshake in handshake.go before any protocol byte flows.
//   - Data, broadcast and done frames are round-stamped. A per-peer
//     *watermark* records the highest round each peer has declared complete
//     (its done markers, or the status frame it sends on (re)connect).
//   - EndRound(r) flushes this player's round-r traffic, then waits until
//     watermark[j] ≥ r for every peer j in the *required set*. Peers that
//     miss the round deadline are demoted out of the required set (the
//     barrier stops waiting for them — a crashed daemon must not stall the
//     beacon); a demoted peer that reconnects and announces a current
//     watermark is promoted back in.
//   - Frames for future rounds (a peer may legitimately run one round ahead,
//     or far ahead of a daemon that is still catching up) are buffered in a
//     round-keyed staging area; frames for already-committed rounds are
//     dropped. Delivery order within a round is (sender, sender's emission
//     order), so every daemon that receives the same frames delivers them in
//     the same order.
//
// Two departures from the in-process transports, both inherent to real
// distribution, are worth knowing:
//
//   - Broadcast is fan-out, not an ideal facility. A *corrupt* sender could
//     equivocate across its point-to-point copies; the non-equivocation that
//     Network.Broadcast guarantees in-process holds here only for honest
//     senders. The §4 protocols the beacon runs do not assume the ideal
//     facility, so this is a documentation caveat, not a soundness hole.
//   - Delivery is not perfectly symmetric at a demoted/rejoining peer's
//     boundary rounds: one daemon may include a share another missed. The
//     Coin-Expose decoder tolerates exactly this (the Berlekamp–Welch error
//     budget adapts to the shares received), which is why demotion is safe
//     for up to t simultaneously missing players.
//
// A connection also carries an application query side-channel (STATE /
// log-fetch requests for rejoin catch-up, see internal/beacon): a daemon
// writes framePeerQuery on its outgoing connection and the peer answers
// with framePeerReply on the same connection, outside the round machinery.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrNotStarted is returned by EndRound on a peer network before StartAt.
var ErrNotStarted = errors.New("simnet: peer network not started (call StartAt)")

// ErrPeerClosed is the base error after Close tears the peer network down.
var ErrPeerClosed = errors.New("simnet: peer network closed")

// maxFutureWindow bounds how far ahead of the newest known round a frame may
// be staged; anything further is dropped as garbage. One round of real
// traffic is small, so the window is generous.
const maxFutureWindow = 1024

// QueryHandler answers application queries from authenticated peers, outside
// the round machinery. It runs on the peer's inbound reader goroutine, so it
// must be quick and must not call into the Node round API. A nil return is
// sent as an empty reply.
type QueryHandler func(from int, req []byte) []byte

// peerOptions collects the peer-mode tunables, all settable through the
// regular Option mechanism (in-memory and tcp networks ignore them).
type peerOptions struct {
	roundTimeout time.Duration
	writeTimeout time.Duration
	backoffMin   time.Duration
	backoffMax   time.Duration
	scheduleUnit time.Duration
	queryHandler QueryHandler
	metrics      *PeerMetrics
}

// WithRoundTimeout sets how long a peer-mode EndRound waits for lagging
// required peers before demoting them and committing the round without them
// (default 10s). Too low risks demoting healthy peers on scheduling jitter;
// too high stalls the beacon that long when a daemon crashes.
func WithRoundTimeout(d time.Duration) Option {
	return func(nw *Network) { nw.peerOpts.roundTimeout = d }
}

// WithWriteTimeout sets the per-frame socket write deadline in peer mode
// (default 5s). A blocked write marks the connection broken and hands it to
// the redial loop rather than stalling the round.
func WithWriteTimeout(d time.Duration) Option {
	return func(nw *Network) { nw.peerOpts.writeTimeout = d }
}

// WithDialBackoff sets the bounds of the exponential redial backoff in peer
// mode (defaults 100ms and 3s). Redialing never gives up until Close.
func WithDialBackoff(min, max time.Duration) Option {
	return func(nw *Network) {
		nw.peerOpts.backoffMin = min
		nw.peerOpts.backoffMax = max
	}
}

// WithQueryHandler installs the application query handler (see QueryHandler)
// answering framePeerQuery requests in peer mode.
func WithQueryHandler(h QueryHandler) Option {
	return func(nw *Network) { nw.peerOpts.queryHandler = h }
}

// WithScheduleUnit sets, for peer networks under a hostile Schedule, the
// wall-clock length of one schedule delay round (default 50ms): a done
// frame delayed d rounds by a DelayRule is held d×unit before it advances
// the local watermark. The in-process transports, which enact delays as
// round shifts, ignore it.
func WithScheduleUnit(d time.Duration) Option {
	return func(nw *Network) { nw.peerOpts.scheduleUnit = d }
}

// peerNet is the per-daemon transport state behind a peer-mode Network.
type peerNet struct {
	nw     *Network
	cfg    *PeerConfig
	self   int
	digest [32]byte
	opts   peerOptions

	ln   net.Listener
	out  []*peerConn      // outgoing authenticated connections, nil at self
	inst *peerInstruments // prom instrumentation, nil when disabled

	// epoch is this daemon's beacon epoch + 1 (0 = never set), stamped on
	// every done/status frame so peers can track cluster epoch positions.
	epoch atomic.Int64

	mu        sync.Mutex
	cond      *sync.Cond
	round     int // committed barriers == local node's current round
	started   bool
	closed    bool
	closeErr  error
	watermark []int             // highest round each peer declared complete; -1 unseen
	required  []bool            // peers the barrier waits for
	peerEpoch []int             // epoch each peer last announced; -1 unseen
	staged    map[int][]Message // round → staged messages (remote + self copies)
	seq       uint64

	inMu   sync.Mutex
	inConn []net.Conn // live inbound connection per peer id (duplicate guard)

	qMu      sync.Mutex
	qSeq     uint64
	qPending map[uint64]qWaiter

	done chan struct{}
	wg   sync.WaitGroup
}

// qWaiter is one in-flight Query: the peer it was addressed to and the
// channel its reply is delivered on. Binding the waiter to the target peer
// is what makes query ids unforgeable across peers: ids are sequential and
// predictable, so a Byzantine peer could otherwise pre-send replies on its
// OWN connection that answer queries addressed to honest peers — defeating
// the t+1 cross-check the rejoin log backfill relies on.
type qWaiter struct {
	to int
	ch chan []byte
}

// peerConn is one outgoing connection slot, owned by its dialLoop goroutine.
type peerConn struct {
	pn *peerNet
	to int

	mu      sync.Mutex
	conn    net.Conn // nil while disconnected
	flushed int      // last round whose done marker we wrote on any conn
}

// NewPeer creates the peer-mode network for player `self` of the cluster in
// cfg: it starts listening on cfg.ListenAddr(self), begins dialing every
// other peer (retrying forever with bounded backoff), and returns
// immediately. Only Node(self) may be driven; the other Node handles exist
// solely so protocol code sees the usual n-player index space. Call
// WaitPeers to block until the mesh is up, StartAt to open the round
// machinery, and Close to tear everything down.
//
// NewPeer does not retain or mutate cfg: it validates and uses a private
// copy, so one parsed config may safely back several NewPeer calls (as the
// in-process cluster tests do).
func NewPeer(cfg *PeerConfig, self int, opts ...Option) (*Network, error) {
	clone := *cfg
	clone.Peers = append([]Peer(nil), cfg.Peers...)
	clone.Secret = append([]byte(nil), cfg.Secret...)
	cfg = &clone
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if self < 0 || self >= cfg.N() {
		return nil, fmt.Errorf("simnet: player %d outside cluster of %d", self, cfg.N())
	}
	nw := New(cfg.N(), opts...)
	if nw.peerOpts.roundTimeout <= 0 {
		nw.peerOpts.roundTimeout = 10 * time.Second
	}
	if nw.peerOpts.writeTimeout <= 0 {
		nw.peerOpts.writeTimeout = 5 * time.Second
	}
	if nw.peerOpts.backoffMin <= 0 {
		nw.peerOpts.backoffMin = 100 * time.Millisecond
	}
	if nw.peerOpts.backoffMax < nw.peerOpts.backoffMin {
		nw.peerOpts.backoffMax = 3 * time.Second
	}
	if nw.peerOpts.scheduleUnit <= 0 {
		nw.peerOpts.scheduleUnit = 50 * time.Millisecond
	}

	pn := &peerNet{
		nw:        nw,
		cfg:       cfg,
		self:      self,
		digest:    cfg.Digest(),
		opts:      nw.peerOpts,
		watermark: make([]int, cfg.N()),
		required:  make([]bool, cfg.N()),
		peerEpoch: make([]int, cfg.N()),
		staged:    make(map[int][]Message),
		inConn:    make([]net.Conn, cfg.N()),
		qPending:  make(map[uint64]qWaiter),
		done:      make(chan struct{}),
	}
	pn.inst = newPeerInstruments(nw.peerOpts.metrics, cfg.N())
	pn.cond = sync.NewCond(&pn.mu)
	for i := range pn.watermark {
		pn.watermark[i] = -1
		pn.peerEpoch[i] = -1
		pn.required[i] = i != self
	}

	ln, err := net.Listen("tcp", cfg.ListenAddr(self))
	if err != nil {
		return nil, fmt.Errorf("simnet: peer %d listen %s: %w", self, cfg.ListenAddr(self), err)
	}
	pn.ln = ln
	nw.pn = pn

	pn.wg.Add(1)
	go pn.acceptLoop()

	pn.out = make([]*peerConn, cfg.N())
	for j := 0; j < cfg.N(); j++ {
		if j == self {
			continue
		}
		pc := &peerConn{pn: pn, to: j, flushed: -1}
		pn.out[j] = pc
		pn.wg.Add(1)
		go pc.dialLoop()
	}
	return nw, nil
}

// ---------------------------------------------------------------------------
// Outgoing side: dial, authenticate, redial on breakage.

// dialLoop owns the connection to one peer: dial with exponential backoff,
// run the handshake, announce our flush watermark with a status frame, then
// sit in replyRead until the connection breaks and go around again. It exits
// only at Close.
func (pc *peerConn) dialLoop() {
	pn := pc.pn
	defer pn.wg.Done()
	backoff := pn.opts.backoffMin
	for {
		select {
		case <-pn.done:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", pn.cfg.Peers[pc.to].Addr, pn.opts.writeTimeout)
		if err != nil {
			pn.inst.handshake('d')
		} else {
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			err = dialHandshake(conn, pn.cfg.Secret, pn.self, pc.to, pn.digest)
			if err != nil {
				pn.inst.handshake('r')
				conn.Close()
			} else {
				pn.inst.handshake('o')
				conn.SetDeadline(time.Time{})
			}
		}
		if err != nil {
			pn.inst.setBackoff(pc.to, backoff.Seconds())
			select {
			case <-pn.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > pn.opts.backoffMax {
				backoff = pn.opts.backoffMax
			}
			continue
		}
		backoff = pn.opts.backoffMin
		pn.inst.setBackoff(pc.to, 0)
		pn.inst.connect(pc.to)
		pn.inst.setConnected(pc.to, true)

		pc.mu.Lock()
		pc.conn = conn
		flushed := pc.flushed
		pc.mu.Unlock()
		pn.mu.Lock()
		pn.cond.Broadcast() // wake WaitPeers
		started := pn.started
		pn.mu.Unlock()
		// Announce how far we have flushed so the peer can (re)admit us to
		// its required set at the right round. Before StartAt this is -1,
		// which is deliberately never promoting.
		if started || flushed >= 0 {
			pc.write(framePeerStatus, flushed, pn.epochPayload())
		}

		pc.replyRead(conn) // blocks until the connection dies
		pc.clear(conn)
		pn.inst.setConnected(pc.to, false)
	}
}

// replyRead drains the peer's replies off our outgoing connection (the only
// frames an accepter sends after the handshake) and routes them to waiting
// Query calls. A reply only settles the pending query if that query was
// addressed to THIS peer (see qWaiter); a reply claiming another peer's id
// is a forgery attempt and drops the connection. Returning means the
// connection is broken.
func (pc *peerConn) replyRead(conn net.Conn) {
	pn := pc.pn
	for {
		typ, _, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if typ != framePeerReply || len(payload) < 8 {
			return // protocol violation: drop the connection, redial
		}
		id := binary.LittleEndian.Uint64(payload[:8])
		pn.qMu.Lock()
		w, ok := pn.qPending[id]
		if ok && w.to == pc.to {
			delete(pn.qPending, id)
		}
		pn.qMu.Unlock()
		switch {
		case ok && w.to == pc.to:
			w.ch <- payload[8:]
		case ok:
			return // reply to a query addressed to a different peer: forged
		default:
			// Unknown id: a legitimately late reply whose Query already
			// timed out and cancelled. Ignore it.
		}
	}
}

// write sends one frame on the peer's current connection under a write
// deadline. On any failure the connection is closed and cleared so the
// dialLoop redials; the error is returned for callers that care (the round
// flush does not — a peer missing our traffic is the demotion machinery's
// problem, not the barrier's).
func (pc *peerConn) write(typ byte, arg int, payload []byte) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		return fmt.Errorf("simnet: peer %d not connected", pc.to)
	}
	pc.conn.SetWriteDeadline(time.Now().Add(pc.pn.opts.writeTimeout))
	if err := writeFrame(pc.conn, typ, arg, payload); err != nil {
		pc.conn.Close()
		pc.conn = nil
		return err
	}
	pc.conn.SetWriteDeadline(time.Time{})
	return nil
}

// clear drops the given connection if it is still current (a write failure
// may have cleared it already).
func (pc *peerConn) clear(conn net.Conn) {
	pc.mu.Lock()
	if pc.conn == conn {
		pc.conn = nil
	}
	pc.mu.Unlock()
	conn.Close()
}

// connected reports whether the outgoing connection is currently up.
func (pc *peerConn) connected() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.conn != nil
}

// ---------------------------------------------------------------------------
// Inbound side: accept, authenticate, ingest round traffic and queries.

// acceptLoop admits inbound connections until the listener closes.
func (pn *peerNet) acceptLoop() {
	defer pn.wg.Done()
	for {
		conn, err := pn.ln.Accept()
		if err != nil {
			return
		}
		pn.wg.Add(1)
		go pn.handleInbound(conn)
	}
}

// handleInbound authenticates one inbound connection, enforces the one-live-
// connection-per-player rule, and runs the frame ingest loop until the
// connection dies. The slot a connection holds is released when its reader
// exits, so a crashed peer's replacement connection is admitted as soon as
// the kernel reports the old socket dead.
func (pn *peerNet) handleInbound(conn net.Conn) {
	defer pn.wg.Done()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	from, err := acceptHandshake(conn, pn.cfg.Secret, pn.self, pn.digest)
	if err != nil || from == pn.self || from < 0 || from >= pn.cfg.N() {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})

	pn.inMu.Lock()
	if pn.inConn[from] != nil {
		pn.inMu.Unlock()
		rejectPeer(conn, rejectDuplicate,
			fmt.Sprintf("player %d already has a live connection (duplicate -player index, or a stale half-open socket)", from))
		conn.Close()
		return
	}
	pn.inConn[from] = conn
	pn.inMu.Unlock()
	pn.mu.Lock()
	pn.cond.Broadcast() // WaitPeers counts inbound bindings too
	pn.mu.Unlock()

	pn.ingest(from, conn)

	pn.inMu.Lock()
	if pn.inConn[from] == conn {
		pn.inConn[from] = nil
	}
	pn.inMu.Unlock()
	conn.Close()
}

// inboundBound reports whether a live authenticated inbound connection from
// peer j is currently bound.
func (pn *peerNet) inboundBound(j int) bool {
	pn.inMu.Lock()
	defer pn.inMu.Unlock()
	return pn.inConn[j] != nil
}

// ingest is the inbound frame loop for one authenticated peer: round traffic
// into the staging area, done/status frames into the watermark, queries to
// the application handler.
func (pn *peerNet) ingest(from int, conn net.Conn) {
	var wmu sync.Mutex // serializes reply writes on this connection
	for {
		typ, arg, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case frameData, frameBroadcast:
			// Hostile-schedule enactment, wire side: a crash or partition
			// window covering (round, from→self) eats the frame, exactly as
			// if the link were down.
			if en := pn.nw.eng; en != nil && en.edgeDead(arg, from, pn.self) {
				continue
			}
			kind := Unicast
			if typ == frameBroadcast {
				kind = Broadcast
			}
			pn.stageRemote(from, arg, kind, payload)
		case frameDone:
			// Done/status frames optionally carry the sender's beacon epoch
			// as a 4-byte little-endian payload (absent from older senders
			// and daemons that never call SetEpoch; readers before this
			// field existed ignored the payload entirely, so the wire
			// version is unchanged).
			epoch := -1
			if len(payload) >= 4 {
				epoch = int(binary.LittleEndian.Uint32(payload))
			}
			// Hostile-schedule enactment, barrier side: a dead edge eats the
			// watermark advance (driving the demotion machinery, which is
			// the peer-mode model of a crash/partition), and a delay rule
			// holds it for d×unit of wall clock — the peer's whole round
			// arrives late, like a slow link. The hold runs on this reader
			// goroutine, so later frames from the same peer queue behind it,
			// preserving per-edge FIFO.
			if en := pn.nw.eng; en != nil {
				if en.edgeDead(arg, from, pn.self) {
					continue
				}
				if d := en.delayRounds(arg, from, pn.self); d > 0 {
					t := time.NewTimer(time.Duration(d) * pn.opts.scheduleUnit)
					select {
					case <-t.C:
					case <-pn.done:
						t.Stop()
						return
					}
				}
			}
			pn.advanceWatermark(from, arg, epoch)
		case framePeerStatus:
			// Status frames are the (re)join choreography, not round
			// traffic: the schedule engine leaves them alone so a demoted
			// peer's recovery path stays intact under any schedule.
			epoch := -1
			if len(payload) >= 4 {
				epoch = int(binary.LittleEndian.Uint32(payload))
			}
			pn.advanceWatermark(from, arg, epoch)
		case framePeerQuery:
			if len(payload) < 8 {
				return
			}
			id := payload[:8]
			var resp []byte
			if h := pn.opts.queryHandler; h != nil {
				resp = h(from, payload[8:])
			}
			pn.wg.Add(1)
			go func(id, resp []byte) {
				// Replies go out on their own goroutine: the reader must
				// keep draining round traffic even if the querier is slow
				// to read.
				defer pn.wg.Done()
				wmu.Lock()
				defer wmu.Unlock()
				conn.SetWriteDeadline(time.Now().Add(pn.opts.writeTimeout))
				_ = writeFrame(conn, framePeerReply, 0, append(append([]byte{}, id...), resp...))
				conn.SetWriteDeadline(time.Time{})
			}(append([]byte{}, id...), resp)
		default:
			return // protocol violation: drop the connection
		}
	}
}

// stageRemote buffers one round-stamped message from an authenticated peer.
// Stale frames (round already committed) are dropped; so are frames
// implausibly far in the future of anything we have heard of.
func (pn *peerNet) stageRemote(from, round int, kind Kind, payload []byte) {
	pn.mu.Lock()
	defer pn.mu.Unlock()
	horizon := pn.round
	for _, w := range pn.watermark {
		if w > horizon {
			horizon = w
		}
	}
	if round < pn.round || round > horizon+maxFutureWindow {
		return
	}
	pn.staged[round] = append(pn.staged[round], Message{
		From:    from,
		Kind:    kind,
		Payload: payload,
		seq:     pn.seq,
	})
	pn.seq++
	pn.cond.Broadcast()
}

// advanceWatermark records that `from` has declared rounds ≤ r complete, and
// promotes the peer back into the required set when its declared position is
// current (it has completed our previous round, so it will be sending
// traffic for the round our barrier is waiting on).
//
// Once the round machinery is started, the accepted watermark is clamped to
// maxFutureWindow past the local committed round: an honest peer can only be
// a round or two ahead (the barrier holds it back), so the clamp never binds
// for honest traffic, while a misbehaving peer declaring round 2^31 would
// otherwise inflate stageRemote's horizon and let far-future frames pile up
// unboundedly in the staged map. Before StartAt no clamp applies — a
// rejoining daemon's pn.round is still 0 while the cluster may legitimately
// be thousands of rounds ahead, and that unclamped window only lasts for
// the (bounded) join choreography.
func (pn *peerNet) advanceWatermark(from, r, epoch int) {
	pn.mu.Lock()
	defer pn.mu.Unlock()
	if pn.started {
		if limit := pn.round + maxFutureWindow; r > limit {
			r = limit
		}
	}
	if r > pn.watermark[from] {
		pn.watermark[from] = r
		pn.inst.setWatermark(from, r)
	}
	if epoch > pn.peerEpoch[from] {
		pn.peerEpoch[from] = epoch
		pn.inst.setEpoch(from, epoch)
	}
	if from != pn.self && pn.watermark[from] >= pn.round-1 && pn.watermark[from] >= 0 {
		pn.required[from] = true
	}
	pn.cond.Broadcast()
}

// epochPayload renders the current beacon epoch as a done/status frame
// payload, or nil when SetEpoch was never called (keeping those frames
// byte-identical to the pre-epoch wire format).
func (pn *peerNet) epochPayload() []byte {
	e := pn.epoch.Load()
	if e == 0 {
		return nil
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(e-1))
	return b[:]
}

// ---------------------------------------------------------------------------
// Round machinery.

// StartAt opens the round machinery at round r: round 0 for a cluster-wide
// cold start, or the agreed rejoin round for a daemon re-entering a running
// cluster (see internal/beacon's catch-up choreography for how r is
// chosen). It purges any traffic staged for rounds before r and announces
// the position to every connected peer. StartAt does not wait for
// connections — use WaitPeers first.
func (nw *Network) StartAt(r int) error {
	pn := nw.pn
	if pn == nil {
		return errors.New("simnet: StartAt on a non-peer network")
	}
	if r < 0 {
		return fmt.Errorf("simnet: StartAt round %d", r)
	}
	pn.mu.Lock()
	if pn.closed {
		pn.mu.Unlock()
		return pn.closeErr
	}
	if pn.started {
		pn.mu.Unlock()
		return errors.New("simnet: StartAt called twice")
	}
	pn.started = true
	pn.round = r
	for round := range pn.staged {
		if round < r {
			delete(pn.staged, round)
		}
	}
	pn.mu.Unlock()
	nw.nodes[pn.self].round = r

	for _, pc := range pn.out {
		if pc == nil {
			continue
		}
		pc.mu.Lock()
		pc.flushed = r - 1
		pc.mu.Unlock()
		pc.write(framePeerStatus, r-1, pn.epochPayload())
	}
	return nil
}

// endRound is the peer-mode implementation of Node.EndRound: flush this
// round's traffic to every peer, wait for the distributed barrier, commit.
func (pn *peerNet) endRound(nd *Node) ([]Message, error) {
	if nd.idx != pn.self {
		return nil, fmt.Errorf("simnet: node %d is not local to this daemon (player %d)", nd.idx, pn.self)
	}
	if nd.halted {
		return nil, &HaltedError{Player: nd.idx, Round: nd.round}
	}
	pn.mu.Lock()
	started, closed, closeErr := pn.started, pn.closed, pn.closeErr
	pn.mu.Unlock()
	if closed {
		return nil, closeErr
	}
	if !started {
		return nil, ErrNotStarted
	}
	r := nd.round
	var t0 time.Time
	if pn.inst != nil {
		t0 = time.Now()
	}

	// Flush outside the lock: socket writes may block on deadlines, and the
	// inbound readers need the lock to keep staging. Per-peer write errors
	// are swallowed — the failed connection is already handed to its
	// dialLoop, and the peer's own barrier will demote us if we stay gone.
	for _, s := range nd.outbox {
		switch {
		case s.to == nd.idx:
			// self-delivery staged below
		case s.to >= 0:
			pn.out[s.to].write(frameData, r, s.msg.Payload)
		default: // broadcast fan-out; self copy staged below
			for _, pc := range pn.out {
				if pc == nil {
					continue
				}
				pc.write(frameBroadcast, r, s.msg.Payload)
			}
		}
	}
	for _, pc := range pn.out {
		if pc == nil {
			continue
		}
		pc.mu.Lock()
		pc.flushed = r
		pc.mu.Unlock()
		pc.write(frameDone, r, pn.epochPayload())
	}

	pn.mu.Lock()
	// Stage our own copies (self-sends and our broadcast echo) in emission
	// order, like stageLocalTCP does.
	for _, s := range nd.outbox {
		if s.to == nd.idx || s.to < 0 {
			m := s.msg
			m.seq = pn.seq
			pn.seq++
			pn.staged[r] = append(pn.staged[r], m)
		}
	}
	nd.outbox = nd.outbox[:0]

	// Distributed barrier: wait for every required peer's watermark to reach
	// r, or for the round timeout, whichever first. Under a hostile
	// Schedule the timeout is stretched by the schedule's worst-case
	// delivery delay: a jittered honest peer can legitimately be
	// MaxDelay×unit late (its done frame is held exactly that long, see
	// ingest), and "slow under jitter" must not demote like "gone" does.
	grace := pn.opts.roundTimeout
	if pn.nw.eng != nil {
		grace += time.Duration(pn.nw.sched.MaxDelay()) * pn.opts.scheduleUnit
	}
	expired := false
	timer := time.AfterFunc(grace, func() {
		pn.mu.Lock()
		expired = true
		pn.cond.Broadcast()
		pn.mu.Unlock()
	})
	for !pn.closed && !expired && !pn.barrierMetLocked(r) {
		pn.cond.Wait()
	}
	timer.Stop()
	if pn.closed {
		err := pn.closeErr
		pn.mu.Unlock()
		return nil, err
	}
	if expired {
		for j := range pn.required {
			if pn.required[j] && pn.watermark[j] < r {
				pn.required[j] = false
				pn.inst.demoted(j)
				// A zero-length span marks the demotion on the obs timeline.
				pn.nw.tracer.Start(pn.self, r, obs.KindPhase, fmt.Sprintf("peer-demoted-%d", j)).End(r)
			}
		}
	}
	msgs := pn.commitLocked(r)
	pn.mu.Unlock()

	if pn.inst != nil {
		pn.inst.observeRound(time.Since(t0).Seconds())
	}
	nd.round++
	return msgs, nil
}

// barrierMetLocked reports whether every required peer has declared round r
// complete. Caller holds pn.mu.
func (pn *peerNet) barrierMetLocked(r int) bool {
	for j, req := range pn.required {
		if req && pn.watermark[j] < r {
			return false
		}
	}
	return true
}

// commitLocked seals round r: sort the staged messages into the canonical
// (sender, emission-order) delivery order, advance the round, release the
// staging slot. Caller holds pn.mu.
func (pn *peerNet) commitLocked(r int) []Message {
	msgs := pn.staged[r]
	delete(pn.staged, r)
	sort.Slice(msgs, func(a, b int) bool {
		if msgs[a].From != msgs[b].From {
			return msgs[a].From < msgs[b].From
		}
		return msgs[a].seq < msgs[b].seq
	})
	if pn.nw.eng != nil {
		msgs = pn.nw.eng.reorder(r, pn.self, msgs)
	}
	pn.round = r + 1
	if pn.inst != nil {
		lead := r
		for _, w := range pn.watermark {
			if w > lead {
				lead = w
			}
		}
		pn.inst.updateLags(pn.self, lead, pn.watermark)
	}
	if pn.nw.ctr != nil {
		pn.nw.ctr.AddRounds(1)
	}
	if pn.nw.tracer != nil {
		delivered := 0
		var totalBytes int64
		for _, m := range msgs {
			pn.nw.tracer.Deliver(m.From, pn.self, len(m.Payload), r)
			delivered++
			totalBytes += int64(len(m.Payload))
		}
		pn.nw.tracer.RoundBoundary(r, delivered, totalBytes)
	}
	pn.cond.Broadcast()
	return msgs
}

// ---------------------------------------------------------------------------
// Daemon-facing helpers.

// WaitPeers blocks until at least `min` peers are connected in BOTH
// directions (our authenticated dial to them is live, and their dial to us
// is bound), or the timeout elapses (returning an error naming the peers
// still missing). Requiring the inbound direction matters for joining: a
// peer's round traffic reaches us only over its own outgoing connection, so
// counting only our dials would let a joiner pick a start round whose
// shares can never arrive. min is capped at n−1. Use n−1 before a cold
// start (the bootstrap round needs the full mesh) and a quorum before a
// rejoin.
func (nw *Network) WaitPeers(min int, timeout time.Duration) error {
	pn := nw.pn
	if pn == nil {
		return errors.New("simnet: WaitPeers on a non-peer network")
	}
	if min > pn.cfg.N()-1 {
		min = pn.cfg.N() - 1
	}
	expired := false
	timer := time.AfterFunc(timeout, func() {
		pn.mu.Lock()
		expired = true
		pn.cond.Broadcast()
		pn.mu.Unlock()
	})
	defer timer.Stop()
	pn.mu.Lock()
	defer pn.mu.Unlock()
	for {
		if pn.closed {
			return pn.closeErr
		}
		up := 0
		var missing []int
		for j, pc := range pn.out {
			if pc == nil {
				continue
			}
			if pc.connected() && pn.inboundBound(j) {
				up++
			} else {
				missing = append(missing, j)
			}
		}
		if up >= min {
			return nil
		}
		if expired {
			return fmt.Errorf("simnet: player %d: only %d/%d peers connected after %v (missing %v)",
				pn.self, up, min, timeout, missing)
		}
		pn.cond.Wait()
	}
}

// PeerConnected reports which outgoing peer connections are currently live
// (the self slot is always false).
func (nw *Network) PeerConnected() []bool {
	out := make([]bool, nw.n)
	if nw.pn == nil {
		return out
	}
	for j, pc := range nw.pn.out {
		if pc != nil {
			out[j] = pc.connected()
		}
	}
	return out
}

// PeerWatermark returns the highest round peer j has declared complete, or
// -1 if it has never been heard from.
func (nw *Network) PeerWatermark(j int) int {
	if nw.pn == nil {
		return -1
	}
	nw.pn.mu.Lock()
	defer nw.pn.mu.Unlock()
	return nw.pn.watermark[j]
}

// SetEpoch records this daemon's beacon epoch. Peer mode stamps it on every
// subsequent done/status frame (as an optional 4-byte payload older readers
// ignore), so peers can correlate round positions with refill generations;
// PeerEpoch reads back what each peer announced. The other transports
// ignore it.
func (nw *Network) SetEpoch(epoch int) {
	if nw.pn == nil || epoch < 0 {
		return
	}
	nw.pn.epoch.Store(int64(epoch) + 1)
}

// PeerEpoch returns the beacon epoch peer j last announced on a done/status
// frame, or -1 if it never announced one.
func (nw *Network) PeerEpoch(j int) int {
	if nw.pn == nil {
		return -1
	}
	nw.pn.mu.Lock()
	defer nw.pn.mu.Unlock()
	return nw.pn.peerEpoch[j]
}

// Query sends an application request to peer `to` over the authenticated
// connection and waits for its reply, outside the round machinery. It is the
// rejoin catch-up channel (STATE and log-fetch requests, see
// internal/beacon). Safe to call before StartAt; fails fast when the peer is
// not connected.
func (nw *Network) Query(to int, req []byte, timeout time.Duration) ([]byte, error) {
	pn := nw.pn
	if pn == nil {
		return nil, errors.New("simnet: Query on a non-peer network")
	}
	if to < 0 || to >= pn.cfg.N() || to == pn.self {
		return nil, fmt.Errorf("simnet: Query to invalid peer %d", to)
	}
	pn.qMu.Lock()
	id := pn.qSeq
	pn.qSeq++
	ch := make(chan []byte, 1)
	pn.qPending[id] = qWaiter{to: to, ch: ch}
	pn.qMu.Unlock()
	cancel := func() {
		pn.qMu.Lock()
		delete(pn.qPending, id)
		pn.qMu.Unlock()
	}

	var q0 time.Time
	if pn.inst != nil {
		q0 = time.Now()
	}
	payload := make([]byte, 8, 8+len(req))
	binary.LittleEndian.PutUint64(payload, id)
	payload = append(payload, req...)
	if err := pn.out[to].write(framePeerQuery, 0, payload); err != nil {
		cancel()
		return nil, err
	}
	select {
	case resp := <-ch:
		if pn.inst != nil {
			pn.inst.observeQuery(to, time.Since(q0).Seconds())
		}
		return resp, nil
	case <-time.After(timeout):
		cancel()
		return nil, fmt.Errorf("simnet: query to peer %d timed out after %v", to, timeout)
	case <-pn.done:
		cancel()
		return nil, ErrPeerClosed
	}
}

// close tears the peer network down: listener, all connections, all loops.
func (pn *peerNet) close() {
	pn.mu.Lock()
	if pn.closed {
		pn.mu.Unlock()
		return
	}
	pn.closed = true
	pn.closeErr = ErrPeerClosed
	pn.cond.Broadcast()
	pn.mu.Unlock()

	close(pn.done)
	pn.ln.Close()
	for _, pc := range pn.out {
		if pc == nil {
			continue
		}
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
	pn.inMu.Lock()
	for i, c := range pn.inConn {
		if c != nil {
			c.Close()
			pn.inConn[i] = nil
		}
	}
	pn.inMu.Unlock()
	pn.wg.Wait()
}
