// Package ba provides deterministic binary Byzantine agreement. Coin-Gen
// (Fig. 5, step 10) says "Run any BA protocol"; the paper assumes
// deterministic BA "for simplicity" (§1.2) and so do we. The implementation
// is a two-round-per-phase phase-king protocol with t+1 phases.
//
// # Resilience
//
// Validity (all honest players start with b ⇒ all decide b) holds for
// n ≥ 4t+1: if every honest player holds b, each receives ≥ n−t values b,
// so mult ≥ n−t and the value persists through every phase.
//
// Agreement holds for n ≥ 5t+1: consider the first phase with an honest
// king. If some honest player keeps its majority value b (mult ≥ n−t), then
// ≥ n−2t honest players held b at the start of the phase, so every player —
// the king included — counts ≥ n−2t values of b against at most
// (n − (n−2t)) + t = 3t values of anything else; since n ≥ 5t+1 gives
// n−2t ≥ 3t+1 > 3t, every honest keeper's majority and the king's broadcast
// value are all b, and after the phase every honest player holds b, which
// then persists by the validity argument. Two honest players can never keep
// different values in one phase because their ≥ n−t supporting sets would
// overlap in ≥ n−3t ≥ 2t+1 > t players, forcing an honest player to have
// sent both values.
//
// Coin-Gen runs in the paper's n ≥ 6t+1 regime, which satisfies both bounds
// with slack. Any other agreement protocol can be plugged in through the
// Protocol interface.
package ba

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Protocol is a binary Byzantine agreement protocol. Run must be invoked by
// every honest player in the same round with its input bit (0 or 1) and
// returns the agreed bit.
type Protocol interface {
	// Run executes the agreement; it must consume the same number of rounds
	// at every honest player.
	Run(nd *simnet.Node, input byte) (byte, error)
	// Rounds returns the exact number of network rounds one execution takes.
	Rounds() int
}

// PhaseKing is the deterministic phase-king protocol with t+1 phases of two
// rounds each. See the package comment for its resilience bounds.
type PhaseKing struct {
	// T is the maximum number of faulty players tolerated.
	T int
}

var _ Protocol = PhaseKing{}

// MinPlayers returns the network size required for both validity and
// agreement, 5t+1 (see package comment).
func MinPlayers(t int) int { return 5*t + 1 }

// Rounds returns 2(t+1): two rounds per phase.
func (p PhaseKing) Rounds() int { return 2 * (p.T + 1) }

// Run executes the protocol. input must be 0 or 1.
func (p PhaseKing) Run(nd *simnet.Node, input byte) (byte, error) {
	n := nd.N()
	if n < MinPlayers(p.T) {
		return 0, fmt.Errorf("ba: phase-king needs n ≥ %d for t=%d, have %d", MinPlayers(p.T), p.T, n)
	}
	if input > 1 {
		return 0, fmt.Errorf("ba: input must be 0 or 1, got %d", input)
	}
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "ba/phase-king")
	defer func() { sp.End(nd.Round()) }()
	v := input
	for phase := 0; phase <= p.T; phase++ {
		// Round A: universal exchange.
		nd.SendAll([]byte{v})
		msgs, err := nd.EndRound()
		if err != nil {
			return 0, fmt.Errorf("ba: phase %d round A: %w", phase, err)
		}
		count := [2]int{}
		count[v]++ // own value
		for _, payload := range simnet.FirstFromEach(msgs) {
			if len(payload) == 1 && payload[0] <= 1 {
				count[payload[0]]++
			}
		}
		maj := byte(0)
		if count[1] > count[0] {
			maj = 1
		}
		mult := count[maj]

		// Round B: the king (player index == phase) announces its majority.
		if nd.Index() == phase {
			nd.SendAll([]byte{maj})
		}
		msgs, err = nd.EndRound()
		if err != nil {
			return 0, fmt.Errorf("ba: phase %d round B: %w", phase, err)
		}
		kingVal := byte(0)
		if nd.Index() == phase {
			kingVal = maj
		} else if payload, ok := simnet.FirstFromEach(msgs)[phase]; ok {
			if len(payload) == 1 && payload[0] <= 1 {
				kingVal = payload[0]
			}
		}

		if mult >= n-p.T {
			v = maj
		} else {
			v = kingVal
		}
	}
	nd.Tracer().Decision(nd.Index(), v, nd.Round())
	return v, nil
}
