package main

import (
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// runE10 — §1.4: the headline comparison. Amortized per-coin cost of the
// bootstrapped D-PRBG against generating every coin from scratch.
func runE10() {
	const (
		n, t  = 7, 1
		k     = 32
		coins = 64
	)
	base := gf2k.MustNew(k)

	// D-PRBG: consume `coins` coins, counting everything including refills.
	var dctr metrics.Counters
	field := base.WithCounters(&dctr)
	cfg := core.Config{Field: field, N: n, T: t, BatchSize: 32, Counters: &dctr}
	rng := rand.New(rand.NewSource(1))
	gens, err := core.SetupTrusted(cfg, 8, rng)
	if err != nil {
		panic(err)
	}
	nw := simnet.New(n, simnet.WithCounters(&dctr))
	fns := make([]simnet.PlayerFunc, n)
	dStart := time.Now()
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i) + 10))
			for c := 0; c < coins; c++ {
				if _, err := gens[i].Next(nd, rnd); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			panic(fmt.Sprintf("player %d: %v", i, r.Err))
		}
	}
	dElapsed := time.Since(dStart)
	d := dctr.Snapshot()

	// From scratch: `coins` independent FromScratchCoin runs (κ = 16 for a
	// far WEAKER soundness guarantee than the D-PRBG's 2^-32 — generous to
	// the baseline) on one long-lived network.
	var sctr metrics.Counters
	scfg := baseline.FromScratchConfig{Field: base.WithCounters(&sctr), N: n, T: t, Kappa: 16, Counters: &sctr}
	nw2 := simnet.New(n, simnet.WithCounters(&sctr))
	fns2 := make([]simnet.PlayerFunc, n)
	sStart := time.Now()
	for i := 0; i < n; i++ {
		i := i
		fns2[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i) + 99))
			for c := 0; c < coins; c++ {
				if _, err := baseline.FromScratchCoin(nd, scfg, rnd); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(nw2, fns2) {
		if r.Err != nil {
			panic(fmt.Sprintf("player %d: %v", i, r.Err))
		}
	}
	sElapsed := time.Since(sStart)
	s := sctr.Snapshot()

	fmt.Printf("n=%d, t=%d, k=%d, %d coins delivered (both systems)\n\n", n, t, k, coins)
	fmt.Printf("%-22s %16s %16s %10s\n", "per coin", "D-PRBG", "from-scratch", "ratio")
	row := func(name string, a, b float64) {
		fmt.Printf("%-22s %16.1f %16.1f %9.1fx\n", name, a, b, b/a)
	}
	row("bytes", float64(d.Bytes)/coins, float64(s.Bytes)/coins)
	row("messages", float64(d.Messages)/coins, float64(s.Messages)/coins)
	row("rounds", float64(d.Rounds)/coins, float64(s.Rounds)/coins)
	row("interpolations", float64(d.Interpolations)/coins, float64(s.Interpolations)/coins)
	row("field mults", float64(d.FieldMuls)/coins, float64(s.FieldMuls)/coins)
	row("wall-clock µs", float64(dElapsed.Microseconds())/coins, float64(sElapsed.Microseconds())/coins)
	fmt.Println("\nthe D-PRBG also needs NO broadcast channel (the from-scratch baseline")
	fmt.Println("assumes one) and achieves error 2^-32 vs the baseline's 2^-16.")

	// §1.4 literature comparison, instantiated analytically (those systems
	// predate practical implementation; constants set to 1).
	fmt.Printf("\n§1.4 analytic comparison at n=16, k=64, M=256 (per coin, totals):\n\n")
	fmt.Printf("%-30s %14s %14s %12s  %s\n", "protocol", "ops", "msgs", "resilience", "assumptions")
	for _, c := range baseline.LiteratureCoinCosts(16, 64, 256) {
		fmt.Printf("%-30s %14.3g %14.3g %12s  %s\n", c.Name, c.Ops, c.Msgs, c.Resilience, c.Assumptions)
	}
}

// runE11 — §3.1/§1.4: single-secret VSS comparison — the paper's
// coin-challenged VSS vs the cut-and-choose VSS of [9] vs Feldman [12].
func runE11() {
	const (
		n, t  = 7, 2
		k     = 32
		runs  = 10
		kappa = k // CCD at the same soundness level 2^-k
	)
	field := gf2k.MustNew(k)

	// Ours.
	var octr metrics.Counters
	oStart := time.Now()
	for r := 0; r < runs; r++ {
		if !vssCeremony(field, n, t, 1, int64(r+1), 0, &octr) {
			panic("our VSS rejected an honest dealer")
		}
	}
	oElapsed := time.Since(oStart)
	o := octr.Snapshot()

	// CCD cut-and-choose.
	var cctr metrics.Counters
	cStart := time.Now()
	for r := 0; r < runs; r++ {
		ccfg := baseline.CCDConfig{Field: field.WithCounters(&cctr), N: n, T: t, Kappa: kappa, Counters: &cctr}
		nw := simnet.New(n, simnet.WithCounters(&cctr))
		fns := make([]simnet.PlayerFunc, n)
		for i := 0; i < n; i++ {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(r*100 + i)))
				ok, _, err := baseline.CCDVSS(nd, ccfg, 0, 0x42, rnd)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("CCD rejected honest dealer")
				}
				return nil, nil
			}
		}
		for i, res := range simnet.Run(nw, fns) {
			if res.Err != nil {
				panic(fmt.Sprintf("player %d: %v", i, res.Err))
			}
		}
	}
	cElapsed := time.Since(cStart)
	c := cctr.Snapshot()

	// Feldman.
	grp, err := baseline.NewFeldmanGroup()
	if err != nil {
		panic(err)
	}
	var fctr metrics.Counters
	fStart := time.Now()
	for r := 0; r < runs; r++ {
		fcfg := baseline.FeldmanConfig{Group: grp, N: n, T: t, Counters: &fctr}
		nw := simnet.New(n, simnet.WithCounters(&fctr))
		fns := make([]simnet.PlayerFunc, n)
		for i := 0; i < n; i++ {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(r*100 + i)))
				ok, _, err := baseline.FeldmanVSS(nd, fcfg, 0, big.NewInt(777), rnd)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("Feldman rejected honest dealer")
				}
				return nil, nil
			}
		}
		for i, res := range simnet.Run(nw, fns) {
			if res.Err != nil {
				panic(fmt.Sprintf("player %d: %v", i, res.Err))
			}
		}
	}
	fElapsed := time.Since(fStart)
	fsnap := fctr.Snapshot()

	fmt.Printf("single-secret VSS, n=%d, t=%d, soundness: ours/CCD 2^-%d, Feldman computational\n\n", n, t, k)
	fmt.Printf("%-24s %14s %14s %14s\n", "per ceremony", "this paper", "CCD [9]", "Feldman [12]")
	fmt.Printf("%-24s %14.0f %14.0f %14.0f\n", "bytes",
		float64(o.Bytes)/runs, float64(c.Bytes)/runs, float64(fsnap.Bytes)/runs)
	fmt.Printf("%-24s %14.1f %14.1f %14.1f\n", "interpolations/player",
		float64(o.Interpolations)/runs/n, float64(c.Interpolations)/runs/n, 0.0)
	fmt.Printf("%-24s %14.0f %14.0f %14.0f\n", "wall-clock µs",
		float64(oElapsed.Microseconds())/runs, float64(cElapsed.Microseconds())/runs,
		float64(fElapsed.Microseconds())/runs)
	fmt.Println("\nthe coin-challenged VSS does 1 interpolation where CCD does κ; Feldman")
	fmt.Println("avoids interpolation but pays t+1 1024-bit exponentiations per player")
	fmt.Println("(and rests on the discrete-log assumption, which the paper avoids).")
	_ = coin.ErrExhausted
}
