package bitgen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// runBitGen executes DealAll + ExchangeGammas for all players with a common
// challenge; faulty players run the given functions instead.
func runBitGen(t *testing.T, cfg Config, r gf2k.Element, seed int64, faulty map[int]simnet.PlayerFunc) []simnet.PlayerResult {
	t.Helper()
	nw := simnet.New(cfg.N)
	fns := make([]simnet.PlayerFunc, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if f, ok := faulty[i]; ok {
			fns[i] = f
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(seed + int64(i)))
			sh, err := DealAll(nd, cfg, rnd)
			if err != nil {
				return nil, err
			}
			v, err := ExchangeGammas(nd, cfg, sh, r)
			if err != nil {
				return nil, err
			}
			return struct {
				Sh *Shares
				V  *View
			}{sh, v}, nil
		}
	}
	return simnet.Run(nw, fns)
}

type runOut struct {
	Sh *Shares
	V  *View
}

func out(t *testing.T, r simnet.PlayerResult) runOut {
	t.Helper()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	v := r.Value.(struct {
		Sh *Shares
		V  *View
	})
	return runOut{v.Sh, v.V}
}

func TestAllHonestAllInstancesOK(t *testing.T) {
	for _, tc := range []struct{ n, tf, m int }{{4, 1, 1}, {7, 2, 4}, {13, 2, 16}} {
		cfg := Config{Field: gf2k.MustNew(32), N: tc.n, T: tc.tf, M: tc.m}
		results := runBitGen(t, cfg, 0x1234567, int64(tc.n), nil)
		for i, r := range results {
			o := out(t, r)
			for j := 0; j < tc.n; j++ {
				if !o.V.Outputs[j].OK {
					t.Fatalf("n=%d player %d: dealer %d not OK", tc.n, i, j)
				}
				if o.V.Outputs[j].F.Degree() > tc.tf {
					t.Fatalf("player %d dealer %d: F degree %d > t", i, j, o.V.Outputs[j].F.Degree())
				}
			}
		}
	}
}

func TestFAgreesAcrossPlayers(t *testing.T) {
	// Any two honest players that decode dealer j must get the same F_j.
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 2, M: 3}
	results := runBitGen(t, cfg, 0x99, 7, nil)
	ref := out(t, results[0])
	for i := 1; i < cfg.N; i++ {
		o := out(t, results[i])
		for j := 0; j < cfg.N; j++ {
			fa, fb := ref.V.Outputs[j].F, o.V.Outputs[j].F
			if fa.Degree() != fb.Degree() {
				t.Fatalf("player %d dealer %d: degree mismatch", i, j)
			}
			for c := 0; c <= fa.Degree(); c++ {
				if fa[c] != fb[c] {
					t.Fatalf("player %d dealer %d: F differs", i, j)
				}
			}
		}
	}
}

func TestGammaMatchesPolynomialCombination(t *testing.T) {
	// F_j must equal g_j + Σ r^h f_{j,h} — check against dealer's own polys.
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 2, M: 4}
	r := gf2k.Element(0xabcdef)
	results := runBitGen(t, cfg, r, 11, nil)
	f := cfg.Field
	for j := 0; j < cfg.N; j++ {
		oj := out(t, results[j])
		want := oj.Sh.OwnPolys[cfg.M] // mask
		scale := r
		for h := 0; h < cfg.M; h++ {
			want = poly.Add(f, want, poly.ScalarMul(f, scale, oj.Sh.OwnPolys[h]))
			scale = f.Mul(scale, r)
		}
		got := out(t, results[0]).V.Outputs[j].F
		for _, x := range []gf2k.Element{1, 2, 77, 0x5555} {
			if poly.Eval(f, got, x) != poly.Eval(f, want, x) {
				t.Fatalf("dealer %d: F != masked combination", j)
			}
		}
	}
}

func TestCheatingDealerFlaggedLocally(t *testing.T) {
	// Dealer 0 deals a degree-(t+1) sharing; honest players' verdict for
	// instance 0 must be ⊥ (whp in GF(2^32)).
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 2, M: 2}
	r := gf2k.Element(0x31337)
	bad := func(nd *simnet.Node) (interface{}, error) {
		f := cfg.Field
		rnd := rand.New(rand.NewSource(404))
		polys := make([]poly.Poly, cfg.M+1)
		for j := range polys {
			p, err := poly.Random(f, cfg.T+1, gf2k.Element(rnd.Uint32()), rnd)
			if err != nil {
				return nil, err
			}
			if p[cfg.T+1] == 0 {
				p[cfg.T+1] = 1
			}
			polys[j] = p
		}
		sh := &Shares{
			Alpha:    make([][]gf2k.Element, cfg.N),
			Mask:     make([]gf2k.Element, cfg.N),
			Received: make([]bool, cfg.N),
			OwnPolys: polys,
		}
		for i := 0; i < cfg.N; i++ {
			id, _ := f.ElementFromID(i + 1)
			if i == nd.Index() {
				row := make([]gf2k.Element, cfg.M)
				for h := 0; h < cfg.M; h++ {
					row[h] = poly.Eval(f, polys[h], id)
				}
				sh.Alpha[i], sh.Mask[i], sh.Received[i] = row, poly.Eval(f, polys[cfg.M], id), true
				continue
			}
			buf := make([]byte, 0, (cfg.M+1)*f.ByteLen())
			for _, p := range polys {
				buf = f.AppendElement(buf, poly.Eval(f, p, id))
			}
			nd.Send(i, buf)
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		// Read nothing; participate honestly in the γ exchange.
		v, err := ExchangeGammas(nd, cfg, sh, r)
		return struct {
			Sh *Shares
			V  *View
		}{sh, v}, err
	}
	results := runBitGen(t, cfg, r, 21, map[int]simnet.PlayerFunc{0: bad})
	for i := 1; i < cfg.N; i++ {
		o := out(t, results[i])
		if o.V.Outputs[0].OK {
			t.Fatalf("player %d accepted a degree-%d dealing from dealer 0", i, cfg.T+1)
		}
		for j := 1; j < cfg.N; j++ {
			if !o.V.Outputs[j].OK {
				t.Fatalf("player %d: honest dealer %d rejected", i, j)
			}
		}
	}
}

func TestSilentDealerFlagged(t *testing.T) {
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 2, M: 2}
	r := gf2k.Element(5)
	silent := func(nd *simnet.Node) (interface{}, error) {
		for rr := 0; rr < 2; rr++ {
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
		}
		return struct {
			Sh *Shares
			V  *View
		}{nil, nil}, nil
	}
	results := runBitGen(t, cfg, r, 31, map[int]simnet.PlayerFunc{4: silent})
	for i := 0; i < cfg.N; i++ {
		if i == 4 {
			continue
		}
		o := out(t, results[i])
		if o.V.Outputs[4].OK {
			t.Fatalf("player %d accepted silent dealer 4", i)
		}
	}
}

func TestEdgesHonestComplete(t *testing.T) {
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 2, M: 2}
	results := runBitGen(t, cfg, 0x77, 41, nil)
	for i, r := range results {
		o := out(t, r)
		for j := 0; j < cfg.N; j++ {
			for k := 0; k < cfg.N; k++ {
				if !o.V.Edge(cfg.Field, j, k) {
					t.Fatalf("player %d: missing edge %d→%d in all-honest run", i, j, k)
				}
			}
		}
	}
}

func TestEquivocatingGammaBreaksEdgeLocally(t *testing.T) {
	// Player 3 sends correct γ vectors to half the players and corrupted
	// ones to the rest: edge j→3 must differ per receiver but honest
	// instances must still decode everywhere.
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 2, M: 2}
	r := gf2k.Element(0x4242)
	equivocate := func(nd *simnet.Node) (interface{}, error) {
		rnd := rand.New(rand.NewSource(51))
		sh, err := DealAll(nd, cfg, rnd)
		if err != nil {
			return nil, err
		}
		f := cfg.Field
		buf := make([]byte, 0, cfg.N*(1+f.ByteLen()))
		for j := 0; j < cfg.N; j++ {
			g, _ := sh.Gamma(f, j, r)
			buf = append(buf, 0)
			buf = f.AppendElement(buf, g)
		}
		for i := 0; i < cfg.N; i++ {
			if i == nd.Index() {
				continue
			}
			if i%2 == 0 {
				nd.Send(i, buf)
			} else {
				bad := append([]byte(nil), buf...)
				bad[1] ^= 0xff // corrupt γ for dealer 0
				nd.Send(i, bad)
			}
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return struct {
			Sh *Shares
			V  *View
		}{sh, nil}, nil
	}
	results := runBitGen(t, cfg, r, 61, map[int]simnet.PlayerFunc{3: equivocate})
	for i := 0; i < cfg.N; i++ {
		if i == 3 {
			continue
		}
		o := out(t, results[i])
		for j := 0; j < cfg.N; j++ {
			if !o.V.Outputs[j].OK {
				t.Fatalf("player %d: dealer %d should decode (only γ equivocation happened)", i, j)
			}
		}
		wantEdge := i%2 == 0
		if got := o.V.Edge(cfg.Field, 0, 3); got != wantEdge {
			t.Fatalf("player %d: edge 0→3 = %v, want %v", i, got, wantEdge)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	f := gf2k.MustNew(16)
	bad := []Config{
		{Field: f, N: 6, T: 2, M: 1},
		{Field: f, N: 7, T: -1, M: 1},
		{Field: f, N: 7, T: 2, M: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := (Config{Field: f, N: 7, T: 2, M: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDealAllRoundCount(t *testing.T) {
	cfg := Config{Field: gf2k.MustNew(16), N: 4, T: 1, M: 2}
	nw := simnet.New(4)
	fns := make([]simnet.PlayerFunc, 4)
	for i := range fns {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i)))
			sh, err := DealAll(nd, cfg, rnd)
			if err != nil {
				return nil, err
			}
			if nd.Round() != 1 {
				return nil, fmt.Errorf("deal consumed %d rounds", nd.Round())
			}
			if _, err := ExchangeGammas(nd, cfg, sh, 3); err != nil {
				return nil, err
			}
			if nd.Round() != 2 {
				return nil, fmt.Errorf("exchange consumed %d total rounds", nd.Round())
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
}
