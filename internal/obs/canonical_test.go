package obs

import (
	"reflect"
	"testing"
)

// TestCanonicalOrderUndoesScheduleShuffle builds two interleavings of the
// same per-player histories — as two schedules of the same run would emit
// them — and checks they canonicalize to the identical stream.
func TestCanonicalOrderUndoesScheduleShuffle(t *testing.T) {
	// Player 0: a span over rounds 0-1 containing a send.
	// Player 1: a send in round 0, a span begin/end in round 1.
	// Network: one round boundary per round.
	emit := func(order []int) []Event {
		// Per-source event lists; span IDs mimic global assignment order by
		// giving the two runs different raw IDs.
		p0 := []Event{
			{Type: EvSpanBegin, Player: 0, Round: 0, Kind: KindPhase, Name: "deal"},
			{Type: EvSend, Player: 0, Round: 0, From: 0, To: 1, Bytes: 4},
			{Type: EvSpanEnd, Player: 0, Round: 1},
		}
		p1 := []Event{
			{Type: EvSend, Player: 1, Round: 0, From: 1, To: 0, Bytes: 4},
			{Type: EvSpanBegin, Player: 1, Round: 1, Kind: KindPhase, Name: "verify"},
			{Type: EvSpanEnd, Player: 1, Round: 1},
		}
		net := []Event{
			{Type: EvRound, Player: -1, Round: 0, Count: 2},
			{Type: EvRound, Player: -1, Round: 1, Count: 0},
		}
		// Assign span IDs in interleaving order, the way the Tracer would.
		var stream []Event
		var nextSpan uint64
		idx := map[int]int{}
		open := map[int]uint64{}
		sources := map[int][]Event{0: p0, 1: p1, -1: net}
		for _, src := range order {
			e := sources[src][idx[src]]
			idx[src]++
			switch e.Type {
			case EvSpanBegin:
				nextSpan++
				open[e.Player] = nextSpan
				e.Span = nextSpan
			case EvSpanEnd:
				e.Span = open[e.Player]
			}
			stream = append(stream, e)
			stream[len(stream)-1].Seq = uint64(len(stream))
		}
		return stream
	}
	// Two schedules: player 0 first vs player 1 first (round events at the
	// boundaries in both).
	a := emit([]int{0, 0, 1, -1, 0, 1, 1, -1})
	b := emit([]int{1, 0, 0, -1, 1, 1, 0, -1})
	ca, cb := CanonicalOrder(a), CanonicalOrder(b)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("canonical streams differ:\n%+v\nvs\n%+v", ca, cb)
	}
	// Canonical order is round-major, players before network events.
	wantOrder := []struct {
		round, player int
	}{{0, 0}, {0, 0}, {0, 1}, {0, -1}, {1, 0}, {1, 1}, {1, 1}, {1, -1}}
	for i, w := range wantOrder {
		if ca[i].Round != w.round || ca[i].Player != w.player {
			t.Fatalf("canonical[%d] = round %d player %d, want round %d player %d",
				i, ca[i].Round, ca[i].Player, w.round, w.player)
		}
	}
	// Seq renumbered densely; span IDs remapped by first appearance.
	for i, e := range ca {
		if e.Seq != uint64(i+1) {
			t.Fatalf("canonical[%d].Seq = %d", i, e.Seq)
		}
	}
	if ca[0].Span != 1 {
		t.Fatalf("first span not renumbered to 1: %d", ca[0].Span)
	}
}

// TestCanonicalOrderPreservesInput pins that the input slice is not
// modified.
func TestCanonicalOrderPreservesInput(t *testing.T) {
	in := []Event{
		{Seq: 9, Type: EvSend, Player: 1, Round: 0},
		{Seq: 10, Type: EvSend, Player: 0, Round: 0},
	}
	orig := append([]Event(nil), in...)
	_ = CanonicalOrder(in)
	if !reflect.DeepEqual(in, orig) {
		t.Fatalf("input mutated: %+v", in)
	}
}
