package rba

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/simnet"
)

func runRBA(t *testing.T, n, tf, phases int, inputs []byte, seed int64, faulty map[int]simnet.PlayerFunc) []simnet.PlayerResult {
	t.Helper()
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(seed))
	batches, _, err := coin.DealTrusted(f, n, tf, phases+2, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		if fb, ok := faulty[i]; ok {
			fns[i] = fb
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			cfg := Config{N: n, T: tf, Phases: phases, Coins: batches[i]}
			return Run(nd, cfg, inputs[i])
		}
	}
	return simnet.Run(nw, fns)
}

func checkAgreed(t *testing.T, results []simnet.PlayerResult, faulty map[int]simnet.PlayerFunc) byte {
	t.Helper()
	decided := byte(0xff)
	for i, r := range results {
		if _, bad := faulty[i]; bad {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		v := r.Value.(byte)
		if decided == 0xff {
			decided = v
		} else if v != decided {
			t.Fatalf("agreement violated: player %d has %d, others %d", i, v, decided)
		}
	}
	return decided
}

func TestValidity(t *testing.T) {
	for _, b := range []byte{0, 1} {
		inputs := make([]byte, 6)
		for i := range inputs {
			inputs[i] = b
		}
		results := runRBA(t, 6, 1, 10, inputs, int64(b)+1, nil)
		if got := checkAgreed(t, results, nil); got != b {
			t.Fatalf("validity: decided %d, want %d", got, b)
		}
	}
}

func TestMixedInputsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		inputs := make([]byte, 6)
		for i := range inputs {
			inputs[i] = byte(rng.Intn(2))
		}
		results := runRBA(t, 6, 1, 16, inputs, int64(trial)*3+5, nil)
		checkAgreed(t, results, nil)
	}
}

func TestWithByzantineFaults(t *testing.T) {
	// n=11, t=2: two garbage-spamming players must not break agreement or
	// validity (all honest inputs = 1).
	n, tf := 11, 2
	for trial := 0; trial < 5; trial++ {
		inputs := make([]byte, n)
		for i := range inputs {
			inputs[i] = 1
		}
		faulty := map[int]simnet.PlayerFunc{
			1: adversary.GarbageSpammer(int64(trial), 1000, 8),
			7: adversary.SilentFor(100, nil),
		}
		results := runRBA(t, n, tf, 12, inputs, int64(trial)*13+1, faulty)
		if got := checkAgreed(t, results, faulty); got != 1 {
			t.Fatalf("trial %d: decided %d despite unanimous honest 1", trial, got)
		}
	}
}

func TestCrashFaults(t *testing.T) {
	n, tf := 11, 2
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		inputs := make([]byte, n)
		for i := range inputs {
			inputs[i] = byte(rng.Intn(2))
		}
		faulty := map[int]simnet.PlayerFunc{
			0: adversary.Crash(),
			5: adversary.CrashAfter(4),
		}
		results := runRBA(t, n, tf, 12, inputs, int64(trial)*17+3, faulty)
		checkAgreed(t, results, faulty)
	}
}

func TestValidation(t *testing.T) {
	if err := (Config{N: 5, T: 1, Coins: &coin.Store{}}).Validate(); err == nil {
		t.Error("n=5,t=1 accepted (needs 6)")
	}
	if err := (Config{N: 6, T: 1}).Validate(); err == nil {
		t.Error("nil coin source accepted")
	}
	// Bad input bit surfaces as error.
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	batches, _, err := coin.DealTrusted(f, 6, 1, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(6)
	fns := make([]simnet.PlayerFunc, 6)
	for i := range fns {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := Run(nd, Config{N: 6, T: 1, Phases: 2, Coins: batches[i]}, 5); err == nil {
				return nil, nil
			}
			return "rejected", nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Value != "rejected" {
			t.Fatalf("player %d: input 5 accepted", i)
		}
	}
}

func TestCoinConsumptionIsLockstep(t *testing.T) {
	// After an RBA run every player's coin cursor must be identical, so a
	// following protocol can keep using the same source.
	n, tf, phases := 6, 1, 8
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(21))
	batches, _, err := coin.DealTrusted(f, n, tf, phases+4, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			cfg := Config{N: n, T: tf, Phases: phases, Coins: batches[i]}
			if _, err := Run(nd, cfg, byte(i%2)); err != nil {
				return nil, err
			}
			return batches[i].Cursor(), nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.(int) != phases {
			t.Fatalf("player %d consumed %v coins, want %d", i, r.Value, phases)
		}
	}
}
