package beacon

import (
	"context"
	"sort"
	"testing"
	"time"
)

// benchDraw measures the serving path end to end — queue, executive sweep,
// lockstep exposure, refills — and reports the p99 draw latency alongside
// the default ns/op. The pipelined/blocking pair quantifies the headline
// claim of the subsystem: ahead-of-demand refills take Coin-Gen off the
// draw path, collapsing the latency tail.
func benchDraw(b *testing.B, highWater int) {
	cfg := testConfig(b, 96, 8, highWater)
	cfg.QueueDepth = 1024
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer mustClose(b, s)
	ctx := context.Background()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := s.Draw(ctx); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/draw")
	st := s.Stats()
	b.ReportMetric(float64(st.Refills), "refills")
	b.ReportMetric(float64(st.BlockedDraws), "blocked-draws")
}

func BenchmarkBeaconDrawThroughput(b *testing.B) {
	b.Run("pipelined", func(b *testing.B) { benchDraw(b, 72) })
	b.Run("blocking", func(b *testing.B) { benchDraw(b, 0) })
}
