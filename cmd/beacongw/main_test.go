package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/multicell"
	"repro/internal/obs/prom"
)

// testServer boots a small in-process cluster behind the real mux.
func testServer(t *testing.T, mod func(*config)) (*httptest.Server, *multicell.Cluster) {
	t.Helper()
	c := &config{
		cells: 2, n: 7, t: 1, k: 16,
		batch: 96, threshold: 8, highWater: 64, queue: 256,
		maxStreams:   2,
		insecureRand: true, rngSeed: 7,
	}
	if mod != nil {
		mod(c)
	}
	reg := prom.NewRegistry()
	mets := multicell.NewMetrics(reg)
	cfg, err := c.clusterConfig(mets)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := multicell.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(cl, mets, reg, c.k))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := cl.Close(ctx); err != nil {
			t.Errorf("close cluster: %v", err)
		}
	})
	return srv, cl
}

func getJSON(t *testing.T, url string, hdr map[string]string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestCoinEndpoint(t *testing.T) {
	srv, _ := testServer(t, nil)
	var got struct {
		Cell int    `json:"cell"`
		Seq  int64  `json:"seq"`
		Coin string `json:"coin"`
		K    int    `json:"k"`
	}
	resp := getJSON(t, srv.URL+"/v1/coin", map[string]string{"X-Tenant": "alice"}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(got.Coin, "0x") || got.K != 16 {
		t.Fatalf("malformed coin payload: %+v", got)
	}
	// A tenant's successive coins stay on one cell with advancing seqs.
	var second struct {
		Cell int   `json:"cell"`
		Seq  int64 `json:"seq"`
	}
	getJSON(t, srv.URL+"/v1/coin", map[string]string{"X-Tenant": "alice"}, &second)
	if second.Cell != got.Cell {
		t.Fatalf("tenant moved cells %d → %d with both healthy", got.Cell, second.Cell)
	}
	if second.Seq <= got.Seq {
		t.Fatalf("seq did not advance: %d then %d", got.Seq, second.Seq)
	}
}

func TestCoinsBatchEndpoint(t *testing.T) {
	srv, _ := testServer(t, nil)
	var got struct {
		Cell  int      `json:"cell"`
		Seq   int64    `json:"seq"`
		Coins []string `json:"coins"`
	}
	resp := getJSON(t, srv.URL+"/v1/coins?n=8&tenant=bob", nil, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Coins) != 8 {
		t.Fatalf("batch of %d coins, want 8", len(got.Coins))
	}
	for _, resp := range []*http.Response{
		getJSON(t, srv.URL+"/v1/coins", nil, nil),
		getJSON(t, srv.URL+"/v1/coins?n=0", nil, nil),
		getJSON(t, srv.URL+"/v1/coins?n=100000", nil, nil),
	} {
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad ?n= answered %d, want 400", resp.StatusCode)
		}
	}
}

func TestStreamSSE(t *testing.T) {
	srv, _ := testServer(t, nil)
	resp, err := http.Get(srv.URL + "/v1/stream?n=5&tenant=carol")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var seqs []int64
	cell := -1
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var coin struct {
			Cell int    `json:"cell"`
			Seq  int64  `json:"seq"`
			Coin string `json:"coin"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &coin); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if cell == -1 {
			cell = coin.Cell
		} else if coin.Cell != cell {
			t.Fatalf("stream moved cells %d → %d", cell, coin.Cell)
		}
		seqs = append(seqs, coin.Seq)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 5 {
		t.Fatalf("stream delivered %d coins, want 5", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("per-cell seqs not increasing: %v", seqs)
		}
	}
}

// TestStreamQuotaRejected: past the per-tenant cap, /v1/stream answers 429
// before any event is sent.
func TestStreamQuotaRejected(t *testing.T) {
	srv, _ := testServer(t, func(c *config) { c.maxStreams = 1 })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/stream?tenant=dave", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read one event so the stream is definitely admitted.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	second, err := http.Get(srv.URL + "/v1/stream?tenant=dave&n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream answered %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestRateLimit429(t *testing.T) {
	srv, _ := testServer(t, func(c *config) { c.tenantRate = 0.001; c.tenantBurst = 2 })
	hdr := map[string]string{"X-Tenant": "greedy"}
	for i := 0; i < 2; i++ {
		if resp := getJSON(t, srv.URL+"/v1/coin", hdr, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("draw %d within burst answered %d", i, resp.StatusCode)
		}
	}
	resp := getJSON(t, srv.URL+"/v1/coin", hdr, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget draw answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant is unaffected.
	if resp := getJSON(t, srv.URL+"/v1/coin", map[string]string{"X-Tenant": "modest"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("isolated tenant answered %d", resp.StatusCode)
	}
}

func TestCellsAndHealthz(t *testing.T) {
	srv, cl := testServer(t, nil)
	getJSON(t, srv.URL+"/v1/coin", nil, nil)
	var cells struct {
		Cells  []multicell.CellStats `json:"cells"`
		Router multicell.RouterStats `json:"router"`
	}
	if resp := getJSON(t, srv.URL+"/v1/cells", nil, &cells); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cells status %d", resp.StatusCode)
	}
	if len(cells.Cells) != 2 {
		t.Fatalf("%d cells reported, want 2", len(cells.Cells))
	}
	var health struct {
		Status    string `json:"status"`
		CellsDown int    `json:"cells_down"`
	}
	getJSON(t, srv.URL+"/v1/healthz", nil, &health)
	if health.Status != "ok" {
		t.Fatalf("healthz %+v", health)
	}
	// Kill a cell: healthz degrades but still answers 200.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := cl.CloseCell(ctx, 0); err != nil {
		t.Fatal(err)
	}
	resp := getJSON(t, srv.URL+"/v1/healthz", nil, &health)
	if resp.StatusCode != http.StatusOK || health.Status != "degraded" || health.CellsDown != 1 {
		t.Fatalf("degraded healthz: status %d, %+v", resp.StatusCode, health)
	}
	// Draws still succeed on the survivor.
	if resp := getJSON(t, srv.URL+"/v1/coin", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("draw with one cell down answered %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint: the scrape carries the per-cell gauge families,
// refreshed at scrape time (depth present for every cell without any
// explicit Refresh call in between).
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t, nil)
	getJSON(t, srv.URL+"/v1/coin", map[string]string{"X-Tenant": "alice"}, nil)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	body := sb.String()
	for _, want := range []string{
		`beacon_cell_depth{cell="0"}`,
		`beacon_cell_depth{cell="1"}`,
		`beacon_cell_refill_lag{cell="0"}`,
		`multicell_routed_draws_total{cell=`,
		"multicell_cells 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestParseFlagsRejectsArgs(t *testing.T) {
	if _, err := parseFlags([]string{"stray"}, &strings.Builder{}); err == nil {
		t.Fatal("stray argument accepted")
	}
	if _, err := parseFlags([]string{"-cells", "3"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
