package baseline

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/poly"
	"repro/internal/simnet"
)

func TestCCDVSSHonestDealerAccepted(t *testing.T) {
	f := gf2k.MustNew(32)
	for _, tc := range []struct{ n, tf, kappa int }{{4, 1, 8}, {7, 2, 16}} {
		cfg := CCDConfig{Field: f, N: tc.n, T: tc.tf, Kappa: tc.kappa}
		nw := simnet.New(tc.n)
		fns := make([]simnet.PlayerFunc, tc.n)
		for i := range fns {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(i + 1)))
				var secret gf2k.Element = 0x1234
				ok, share, err := CCDVSS(nd, cfg, 0, secret, rnd)
				if err != nil {
					return nil, err
				}
				return struct {
					OK    bool
					Share gf2k.Element
				}{ok, share}, nil
			}
		}
		results := simnet.Run(nw, fns)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("n=%d player %d: %v", tc.n, i, r.Err)
			}
			o := r.Value.(struct {
				OK    bool
				Share gf2k.Element
			})
			if !o.OK {
				t.Fatalf("n=%d player %d rejected honest dealer", tc.n, i)
			}
		}
		// Shares reconstruct the secret.
		ids := make([]int, tc.tf+1)
		shares := make([]gf2k.Element, tc.tf+1)
		for i := range ids {
			ids[i] = i + 1
			shares[i] = results[i].Value.(struct {
				OK    bool
				Share gf2k.Element
			}).Share
		}
		xs := make([]gf2k.Element, len(ids))
		for i, id := range ids {
			xs[i] = gf2k.Element(id)
		}
		got, err := poly.InterpolateAt0(f, xs, shares, nil)
		if err != nil || got != 0x1234 {
			t.Fatalf("reconstructed %#x err=%v, want 0x1234", got, err)
		}
	}
}

func TestCCDVSSCheatingDealerRejectedMostly(t *testing.T) {
	// A dealer sharing a degree-(t+1) f must be caught except with
	// probability ~2^−κ. With κ=16 rejection is essentially certain.
	f := gf2k.MustNew(32)
	n, tf, kappa := 4, 1, 16
	cfg := CCDConfig{Field: f, N: n, T: tf, Kappa: kappa}
	for trial := 0; trial < 3; trial++ {
		nw := simnet.New(n)
		fns := make([]simnet.PlayerFunc, n)
		fns[0] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(trial) * 7))
			ff := cfg.Field
			// Bad f (degree t+1), honest masks.
			polys := make([]poly.Poly, kappa+1)
			var err error
			polys[0], err = poly.Random(ff, tf+1, 9, rnd)
			if err != nil {
				return nil, err
			}
			if polys[0][tf+1] == 0 {
				polys[0][tf+1] = 1
			}
			for j := 1; j <= kappa; j++ {
				polys[j], err = poly.Random(ff, tf, gf2k.Element(rnd.Uint32()), rnd)
				if err != nil {
					return nil, err
				}
			}
			for i := 1; i < n; i++ {
				id, _ := ff.ElementFromID(i + 1)
				buf := make([]byte, 0, (kappa+1)*ff.ByteLen())
				for _, p := range polys {
					buf = ff.AppendElement(buf, poly.Eval(ff, p, id))
				}
				nd.Send(i, buf)
			}
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
			ownID, _ := ff.ElementFromID(1)
			own := make([]gf2k.Element, kappa+1)
			for j := range polys {
				own[j] = poly.Eval(ff, polys[j], ownID)
			}
			ok, _, err := ccdVerify(nd, cfg, own, rnd)
			return struct {
				OK    bool
				Share gf2k.Element
			}{ok, 0}, err
		}
		for i := 1; i < n; i++ {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(trial*100 + i)))
				ok, share, err := CCDVSS(nd, cfg, 0, 0, rnd)
				if err != nil {
					return nil, err
				}
				return struct {
					OK    bool
					Share gf2k.Element
				}{ok, share}, nil
			}
		}
		results := simnet.Run(nw, fns)
		for i := 1; i < n; i++ {
			if results[i].Err != nil {
				t.Fatalf("player %d: %v", i, results[i].Err)
			}
			o := results[i].Value.(struct {
				OK    bool
				Share gf2k.Element
			})
			if o.OK {
				t.Fatalf("trial %d: player %d accepted a degree-%d dealing", trial, i, tf+1)
			}
		}
	}
}

func TestFeldmanVSSHonest(t *testing.T) {
	grp, err := NewFeldmanGroup()
	if err != nil {
		t.Fatal(err)
	}
	cfg := FeldmanConfig{Group: grp, N: 4, T: 1}
	nw := simnet.New(4)
	fns := make([]simnet.PlayerFunc, 4)
	for i := range fns {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i + 10)))
			ok, share, err := FeldmanVSS(nd, cfg, 0, big.NewInt(424242), rnd)
			if err != nil {
				return nil, err
			}
			if share == nil {
				return nil, nil
			}
			return ok, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value != true {
			t.Fatalf("player %d rejected honest Feldman dealer", i)
		}
	}
}

func TestFeldmanVSSWrongShareDetected(t *testing.T) {
	// Dealer sends player 2 a corrupted share: player 2 must complain, but
	// with only one complaint the sharing is still accepted (≤ t).
	grp, err := NewFeldmanGroup()
	if err != nil {
		t.Fatal(err)
	}
	cfg := FeldmanConfig{Group: grp, N: 4, T: 1}
	nw := simnet.New(4)
	fns := make([]simnet.PlayerFunc, 4)
	fns[0] = func(nd *simnet.Node) (interface{}, error) {
		rnd := rand.New(rand.NewSource(3))
		// Honest commitments/shares, then corrupt player 2's share.
		coeffs := []*big.Int{big.NewInt(5), big.NewInt(7)}
		var commitBuf []byte
		for _, c := range coeffs {
			commitBuf = appendBig(commitBuf, new(big.Int).Exp(grp.G, c, grp.P))
		}
		nd.Broadcast(commitBuf)
		for i := 1; i < 4; i++ {
			share := evalPoly(coeffs, int64(i+1), grp.Q)
			if i == 2 {
				share = new(big.Int).Add(share, big.NewInt(1))
			}
			nd.Send(i, appendBig(nil, share))
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		nd.Broadcast([]byte{0})
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		_ = rnd
		return true, nil
	}
	verdicts := make([]bool, 4)
	for i := 1; i < 4; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			ok, _, err := FeldmanVSS(nd, cfg, 0, nil, nil)
			verdicts[i] = ok
			return ok, err
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	// One complaint ≤ t: accepted overall (the complaining player's share
	// would be publicly resolved in a full protocol).
	for i := 1; i < 4; i++ {
		if !verdicts[i] {
			t.Fatalf("player %d rejected with a single complaint", i)
		}
	}
}

func TestFromScratchCoinUnanimous(t *testing.T) {
	f := gf2k.MustNew(32)
	for _, tc := range []struct{ n, tf int }{{4, 1}, {7, 2}} {
		cfg := FromScratchConfig{Field: f, N: tc.n, T: tc.tf, Kappa: 8}
		nw := simnet.New(tc.n)
		fns := make([]simnet.PlayerFunc, tc.n)
		for i := range fns {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(i*31 + tc.n)))
				return FromScratchCoin(nd, cfg, rnd)
			}
		}
		results := simnet.Run(nw, fns)
		ref := results[0].Value.(gf2k.Element)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("n=%d player %d: %v", tc.n, i, r.Err)
			}
			if r.Value.(gf2k.Element) != ref {
				t.Fatalf("n=%d: coin differs at player %d", tc.n, i)
			}
		}
	}
}

func TestFromScratchCoinWithCrashedPlayer(t *testing.T) {
	f := gf2k.MustNew(32)
	n, tf := 7, 2
	cfg := FromScratchConfig{Field: f, N: n, T: tf, Kappa: 8}
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	fns[3] = func(nd *simnet.Node) (interface{}, error) { return gf2k.Element(0), nil }
	for i := range fns {
		if i == 3 {
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i * 17)))
			return FromScratchCoin(nd, cfg, rnd)
		}
	}
	results := simnet.Run(nw, fns)
	var ref *gf2k.Element
	for i, r := range results {
		if i == 3 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		v := r.Value.(gf2k.Element)
		if ref == nil {
			ref = &v
			continue
		}
		if v != *ref {
			t.Fatalf("player %d: coin differs", i)
		}
	}
}

func TestFromScratchCoinsDiffer(t *testing.T) {
	// Different runs give different coins (randomness sanity).
	f := gf2k.MustNew(32)
	cfg := FromScratchConfig{Field: f, N: 4, T: 1, Kappa: 4}
	seen := make(map[gf2k.Element]bool)
	for trial := 0; trial < 4; trial++ {
		nw := simnet.New(4)
		fns := make([]simnet.PlayerFunc, 4)
		for i := range fns {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(trial*1000 + i)))
				return FromScratchCoin(nd, cfg, rnd)
			}
		}
		results := simnet.Run(nw, fns)
		c := results[0].Value.(gf2k.Element)
		if seen[c] {
			t.Fatalf("coin repeated across independent runs")
		}
		seen[c] = true
	}
}

func TestConfigValidation(t *testing.T) {
	f := gf2k.MustNew(16)
	if err := (CCDConfig{Field: f, N: 3, T: 1, Kappa: 4}).Validate(); err == nil {
		t.Error("CCD n<3t+1 accepted")
	}
	if err := (CCDConfig{Field: f, N: 4, T: 1, Kappa: 0}).Validate(); err == nil {
		t.Error("CCD kappa=0 accepted")
	}
	nw := simnet.New(3)
	fns := make([]simnet.PlayerFunc, 3)
	for i := range fns {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := FromScratchCoin(nd, FromScratchConfig{Field: f, N: 3, T: 1, Kappa: 1}, rand.New(rand.NewSource(1))); err == nil {
				return nil, nil
			}
			return "rejected", nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Value != "rejected" {
			t.Fatalf("player %d: undersized network accepted", i)
		}
	}
}

func TestLiteratureCoinCosts(t *testing.T) {
	costs := LiteratureCoinCosts(16, 64, 256)
	if len(costs) != 4 {
		t.Fatalf("got %d rows", len(costs))
	}
	byName := map[string]CoinCost{}
	for _, c := range costs {
		if c.Ops <= 0 || c.Msgs <= 0 || c.Name == "" {
			t.Fatalf("degenerate row %+v", c)
		}
		byName[c.Name] = c
	}
	ours := byName["D-PRBG (this paper)"]
	fm := byName["Feldman-Micali [14]"]
	if ours.Ops >= fm.Ops || ours.Msgs >= fm.Msgs {
		t.Errorf("model does not reproduce the paper's ordering: ours %+v vs FM %+v", ours, fm)
	}
	// As M grows, our per-coin messages approach n.
	big := LiteratureCoinCosts(16, 64, 1<<20)
	for _, c := range big {
		if c.Name == "D-PRBG (this paper)" && c.Msgs > 17 {
			t.Errorf("per-coin messages should approach n for huge M, got %.1f", c.Msgs)
		}
	}
}
