package conformance

import (
	"fmt"
	"testing"

	"repro/internal/gf2k"
)

// vssAttacks is every VSS/Batch-VSS attack the suite sweeps; gradecast,
// ba and coingen attacks below likewise. The "honest" entry is the control
// run that pins the attack-free baseline.
var vssAttacks = []string{
	"honest",
	"wrong-degree-dealer",
	"equivocal-dealer",
	"silent-dealer",
	"inconsistent-dealer-tolerated",
	"inconsistent-dealer-overwhelming",
	"false-complainer",
	"delta-liar",
	"garbage-verifier",
	"crash-verifier",
}

var gradecastAttacks = []string{
	"honest",
	"grade-split-half",
	"grade-split-one",
	"echo-liar",
	"silent-sender",
	"crash-sender",
}

var baAttacks = []string{"honest", "griefer-king", "vote-equivocator", "crash"}

var coingenAttacks = []string{
	"honest",
	"crash",
	"silent",
	"wrong-degree-dealer",
	"deal-corrupt",
	"gamma-equivocate",
	"coin-share-liar",
}

// suiteScenarios is the full {attack × protocol × (n,t)} sweep. Every entry
// reproduces from its printed name alone: `go test -run 'TestSuite/<name>'`.
func suiteScenarios() []Scenario {
	var scs []Scenario
	// VSS at n = 3t+1 (the tight bound) for two fault levels; Batch-VSS is
	// the same ceremony with M > 1.
	for _, nt := range [][2]int{{4, 1}, {7, 2}} {
		for _, a := range vssAttacks {
			scs = append(scs,
				Scenario{Protocol: "vss", Attack: a, N: nt[0], T: nt[1], M: 1, Seed: 1},
				Scenario{Protocol: "batch-vss", Attack: a, N: nt[0], T: nt[1], M: 4, Seed: 2},
			)
		}
		for _, a := range gradecastAttacks {
			scs = append(scs, Scenario{Protocol: "gradecast", Attack: a, N: nt[0], T: nt[1], Seed: 3})
		}
	}
	// Phase-king BA needs n ≥ 5t+1.
	for _, nt := range [][2]int{{6, 1}, {11, 2}} {
		for _, a := range baAttacks {
			for _, v := range []string{"ones", "zeros", "mixed"} {
				scs = append(scs, Scenario{Protocol: "ba", Attack: a, Variant: v, N: nt[0], T: nt[1], Seed: 4})
			}
		}
	}
	// Coin-Gen needs n ≥ 6t+1.
	for _, nt := range [][2]int{{7, 1}, {13, 2}} {
		for _, a := range coingenAttacks {
			scs = append(scs, Scenario{Protocol: "coingen", Attack: a, N: nt[0], T: nt[1], M: 3, Seed: 5})
		}
	}
	return scs
}

// runScenario dispatches one scenario to its runner and Check, returning a
// fingerprint of the honest outputs (used by the determinism test).
func runScenario(sc Scenario) (string, error) {
	switch sc.Protocol {
	case "vss", "batch-vss":
		o, err := RunVSS(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			fp += fmt.Sprintf("%d:%v:%x;", i, o.Players[i].Verdict, o.Players[i].Secrets)
		}
		return fp, nil
	case "gradecast":
		o, err := RunGradeCast(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			for d, got := range o.Outputs[i] {
				fp += fmt.Sprintf("%d/%d:%x/%d;", i, d, got.Value, got.Confidence)
			}
		}
		return fp, nil
	case "ba":
		o, err := RunBA(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			fp += fmt.Sprintf("%d:%d;", i, o.Decisions[i])
		}
		return fp, nil
	case "coingen":
		o, err := RunCoinGen(sc)
		if err != nil {
			return "", err
		}
		if err := o.Check(); err != nil {
			return "", err
		}
		fp := ""
		for _, i := range o.Honest {
			p := o.Players[i]
			fp += fmt.Sprintf("%d:a%d,c%v,x%x;", i, p.Res.Attempts, p.Res.Clique, p.Coins)
		}
		return fp, nil
	}
	return "", fmt.Errorf("conformance: unknown protocol %q", sc.Protocol)
}

// TestSuite is the seeded adversarial sweep: every scenario runs its
// protocol under its attack and asserts the paper's properties on the
// honest outputs. A failing entry reproduces from the subtest name.
func TestSuite(t *testing.T) {
	for _, sc := range suiteScenarios() {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			if _, err := runScenario(sc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSuiteDeterministic replays a cross-section of scenarios (one per
// protocol, including message-level interception) and requires bitwise
// identical honest outputs — the reproducibility contract behind quoting a
// (seed, config) pair in a bug report.
func TestSuiteDeterministic(t *testing.T) {
	cases := []Scenario{
		{Protocol: "vss", Attack: "inconsistent-dealer-overwhelming", N: 7, T: 2, M: 1, Seed: 11},
		{Protocol: "batch-vss", Attack: "garbage-verifier", N: 7, T: 2, M: 4, Seed: 12},
		{Protocol: "gradecast", Attack: "grade-split-half", N: 7, T: 2, Seed: 13},
		{Protocol: "ba", Attack: "vote-equivocator", Variant: "mixed", N: 6, T: 1, Seed: 14},
		{Protocol: "coingen", Attack: "deal-corrupt", N: 7, T: 1, M: 2, Seed: 15},
	}
	for _, sc := range cases {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			first, err := runScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := runScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if first != second {
				t.Fatalf("outputs differ across identical runs:\n run 1: %s\n run 2: %s", first, second)
			}
		})
	}
}

// TestCoinUnpredictability drives the honest Coin-Gen scenario and then
// shows, for every generated coin, that the view of a t-member coalition
// admitted both openings until Coin-Expose: their shares interpolate to a
// valid degree-t completion for the real value and for its complement.
func TestCoinUnpredictability(t *testing.T) {
	for _, nt := range [][2]int{{7, 1}, {13, 2}} {
		sc := Scenario{Protocol: "coingen", Attack: "honest", N: nt[0], T: nt[1], M: 3, Seed: 21}
		t.Run(sc.String(), func(t *testing.T) {
			o, err := RunCoinGen(sc)
			if err != nil {
				t.Fatal(err)
			}
			if err := o.Check(); err != nil {
				t.Fatal(err)
			}
			// The hypothetical coalition: the last t players (honest here —
			// unpredictability is about what ANY t-subset's view determines).
			coalition := o.Honest[len(o.Honest)-sc.T:]
			ref := o.Players[o.Honest[0]]
			for h, exposed := range ref.Coins {
				shares := make([]gf2k.Element, len(coalition))
				for c, id := range coalition {
					shares[c] = o.Players[id].Res.Batch.Shares[h]
				}
				if err := UnpredictabilityWitness(o.Env.field, sc.T, coalition, shares, exposed); err != nil {
					t.Fatalf("coin %d: %v", h, err)
				}
			}
		})
	}
}
