package simnet

import (
	"bytes"
	"fmt"
	"testing"
)

func TestTCPRoundDelivery(t *testing.T) {
	nw, err := NewTCP(3)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			nd.Send(1, []byte("over tcp"))
			_, err := nd.EndRound()
			return nil, err
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			return msgs, err
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			return msgs, err
		},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	msgs := results[1].Value.([]Message)
	if len(msgs) != 1 || string(msgs[0].Payload) != "over tcp" || msgs[0].From != 0 {
		t.Fatalf("player 1 inbox = %v", msgs)
	}
	if len(results[2].Value.([]Message)) != 0 {
		t.Fatal("player 2 should receive nothing")
	}
}

func TestTCPMatchesInMemorySemantics(t *testing.T) {
	// Run the same multi-round all-to-all protocol on both transports and
	// compare every player's complete view.
	const n, rounds = 4, 6
	protocol := func(nd *Node) (interface{}, error) {
		var transcript bytes.Buffer
		for r := 0; r < rounds; r++ {
			nd.SendAll([]byte{byte(nd.Index()), byte(r)})
			if r%2 == 0 {
				nd.Broadcast([]byte{0xb0, byte(r)})
			}
			if r%3 == 0 {
				nd.Send(nd.Index(), []byte{0x5e, byte(r)}) // self-send
			}
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			for _, m := range msgs {
				fmt.Fprintf(&transcript, "r%d from%d kind%d %x;", r, m.From, m.Kind, m.Payload)
			}
		}
		return transcript.String(), nil
	}

	runOn := func(nw *Network) []string {
		fns := make([]PlayerFunc, n)
		for i := range fns {
			fns[i] = protocol
		}
		results := Run(nw, fns)
		out := make([]string, n)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("player %d: %v", i, r.Err)
			}
			out[i] = r.Value.(string)
		}
		return out
	}

	mem := runOn(New(n))
	tcpNW, err := NewTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpNW.Close()
	tcp := runOn(tcpNW)

	for i := range mem {
		if mem[i] != tcp[i] {
			t.Fatalf("player %d transcripts differ:\n mem: %s\n tcp: %s", i, mem[i], tcp[i])
		}
	}
}

func TestTCPHaltedNodeDoesNotBlock(t *testing.T) {
	nw, err := NewTCP(3)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) { return nil, nil }, // crash
		func(nd *Node) (interface{}, error) {
			for r := 0; r < 5; r++ {
				nd.SendAll([]byte{byte(r)})
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
			return "done", nil
		},
		func(nd *Node) (interface{}, error) {
			for r := 0; r < 5; r++ {
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
			return "done", nil
		},
	})
	for i := 1; i < 3; i++ {
		if results[i].Err != nil || results[i].Value != "done" {
			t.Fatalf("player %d: %+v", i, results[i])
		}
	}
}

func TestTCPLargePayloads(t *testing.T) {
	// Exceed typical socket buffer sizes to exercise the out-of-lock flush.
	nw, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			nd.Send(1, big)
			nd.Send(1, big)
			_, err := nd.EndRound()
			return nil, err
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			if len(msgs) != 2 {
				return nil, fmt.Errorf("got %d messages", len(msgs))
			}
			for _, m := range msgs {
				if !bytes.Equal(m.Payload, big) {
					return nil, fmt.Errorf("payload corrupted in transit")
				}
			}
			return nil, nil
		},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
}

func TestTCPCloseUnblocksWaiters(t *testing.T) {
	nw, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := nw.Node(0).EndRound() // blocks: node 1 never arrives
		done <- err
	}()
	nw.Close()
	if err := <-done; err == nil {
		t.Fatal("EndRound returned nil after Close")
	}
	nw.Close() // idempotent
}

func TestTCPCoinProtocolEndToEnd(t *testing.T) {
	// The full D-PRBG protocol stack over real sockets is exercised in
	// TestGeneratorOverTCP (package core_test-style, see core's tests);
	// here we check a representative multi-phase pattern: three rounds of
	// echo-and-aggregate with deterministic results.
	const n = 5
	nw, err := NewTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	fns := make([]PlayerFunc, n)
	for i := 0; i < n; i++ {
		fns[i] = func(nd *Node) (interface{}, error) {
			sum := byte(nd.Index())
			for r := 0; r < 3; r++ {
				nd.SendAll([]byte{sum})
				msgs, err := nd.EndRound()
				if err != nil {
					return nil, err
				}
				for _, m := range msgs {
					sum += m.Payload[0]
				}
			}
			return sum, nil
		}
	}
	results := Run(nw, fns)
	ref := results[0].Value.(byte)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		// All players aggregate the same multiset each round... their own
		// contribution differs, so just check determinism across reruns.
		_ = ref
		_ = i
	}
	// Determinism across a fresh TCP network.
	nw2, err := NewTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw2.Close()
	results2 := Run(nw2, fns)
	for i := range results {
		if results[i].Value.(byte) != results2[i].Value.(byte) {
			t.Fatalf("player %d: nondeterministic across identical TCP runs", i)
		}
	}
}
