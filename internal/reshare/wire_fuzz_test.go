package reshare

import (
	"bytes"
	"testing"

	"repro/internal/gf2k"
)

// FuzzParseReshareWire: the three reshare wire parsers consume bytes sent
// by potentially Byzantine peers, so they must never panic, and every
// payload they accept must re-encode byte-identically (canonicality — a
// malleable encoding would let an attacker ship two byte-distinct messages
// that honest players judge as one).
func FuzzParseReshareWire(f *testing.F) {
	fld := gf2k.MustNew(32)
	col := encodeSubShares(fld, 7, []gf2k.Element{1, 2, 3})
	f.Add(uint8(3), col)
	f.Add(uint8(3), encodeChallenge(fld, 42))
	f.Add(uint8(3), encodeCombination(fld, []gf2k.Element{9, 0, 11}, []bool{true, false, true}))
	f.Add(uint8(0), []byte{WireCombination})
	f.Add(uint8(1), []byte{WireSubShares, 1, 2})
	f.Add(uint8(255), col[:len(col)-1])

	f.Fuzz(func(t *testing.T, oldN uint8, data []byte) {
		if mask, subs, ok := parseSubShares(fld, data); ok {
			re := encodeSubShares(fld, mask, subs)
			if !bytes.Equal(re, data) {
				t.Fatalf("sub-shares not canonical:\n in %x\nout %x", data, re)
			}
		}
		if v, ok := parseChallenge(fld, data); ok {
			if !bytes.Equal(encodeChallenge(fld, v), data) {
				t.Fatalf("challenge not canonical: %x", data)
			}
		}
		n := int(oldN%64) + 1
		if w, present, ok := parseCombination(fld, n, data); ok {
			if len(w) != n || len(present) != n {
				t.Fatalf("combination covers %d/%d of %d dealers", len(w), len(present), n)
			}
			for o, p := range present {
				if !p && w[o] != 0 {
					t.Fatalf("complaint slot %d carries value %#x", o, w[o])
				}
			}
			if !bytes.Equal(encodeCombination(fld, w, present), data) {
				t.Fatalf("combination not canonical: %x", data)
			}
		}
	})
}
