package simnet

// Hostile-network schedule engine. A Schedule turns the benign lockstep
// network into an adversarially scheduled one while keeping every run a
// pure function of its seeds: per-edge delivery delays (fixed / uniform /
// heavy-tail jitter), network partitions with timed heals, crash windows
// with recovery, and within-round delivery reordering.
//
// The schedule is applied at the same staging/commit seam where the
// Interceptor lives, AFTER interception, so lockstep semantics are
// preserved where the protocol requires them (players still advance round
// by round; EndRound never blocks on a delayed message) and relaxed only
// where the paper's model permits (which messages a player sees at a given
// boundary, and in what order). Concretely, per transport:
//
//   - In-memory and TCP (lockstep barriers): a delay of d rounds on a
//     message staged in round r defers its delivery to the boundary of
//     round r+d. A partition defers messages crossing the cut to the heal
//     round; a crash window drops every message into or out of the crashed
//     player while it is down. Reordering permutes the cross-sender merge
//     order of each recipient's boundary delivery while preserving each
//     sender's emission order (the network may interleave senders
//     arbitrarily, but each point-to-point channel stays FIFO).
//   - Peer transport (real-time barrier): delays are enacted in wall-clock
//     on the round barrier itself — a peer's done frame for round r is held
//     for d × unit before it advances the local watermark, so the jittered
//     peer's whole round arrives late, exactly like a slow link. Crash and
//     partition windows drop that edge's data and done frames while
//     active, which (deliberately) drives the demotion/promotion machinery.
//     Within-round reordering applies at the local commit as above.
//
// Every random choice — jitter samples and reorder ranks — is a pure
// function of (Schedule.Seed, round, edge, copy index) via a splitmix-style
// hash, never of goroutine scheduling, so the same schedule replays
// byte-identically on any transport and survives -race interleavings.
//
// A Schedule is serializable (String / ParseSchedule round-trip exactly)
// so a failing run can be quoted in a bug report, and shrinkable (the
// conformance harness greedily removes Rules() entries) so the quoted
// schedule is minimal.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// DistKind selects a delay distribution shape.
type DistKind int

const (
	// DistFixed delays every matching message by exactly Min rounds.
	DistFixed DistKind = iota + 1
	// DistUniform delays by a uniform sample from [Min, Max].
	DistUniform
	// DistHeavyTail delays by Min plus a geometric(1/2) tail capped at Max:
	// most messages are nearly on time, a few straggle badly — the classic
	// long-tail link.
	DistHeavyTail
)

func (k DistKind) String() string {
	switch k {
	case DistFixed:
		return "fixed"
	case DistUniform:
		return "uniform"
	case DistHeavyTail:
		return "heavytail"
	}
	return fmt.Sprintf("dist(%d)", int(k))
}

// Dist is a delay distribution in whole rounds.
type Dist struct {
	Kind     DistKind
	Min, Max int
}

// sample draws from the distribution using a uniform 64-bit hash value.
func (d Dist) sample(u uint64) int {
	switch d.Kind {
	case DistFixed:
		return d.Min
	case DistUniform:
		if d.Max <= d.Min {
			return d.Min
		}
		return d.Min + int(u%uint64(d.Max-d.Min+1))
	case DistHeavyTail:
		// Count leading ones of the hash: P(tail ≥ k) = 2^-k.
		tail := 0
		for u&1 == 1 && d.Min+tail < d.Max {
			tail++
			u >>= 1
		}
		return d.Min + tail
	}
	return 0
}

// max returns the largest delay the distribution can produce.
func (d Dist) max() int {
	if d.Kind == DistFixed {
		return d.Min
	}
	if d.Max > d.Min {
		return d.Max
	}
	return d.Min
}

// Wildcard matches any player index in a DelayRule endpoint.
const Wildcard = -1

// openEnd marks a rule window with no upper round bound.
const openEnd = 1 << 30

// DelayRule jitters one edge (or a wildcard family of edges) during a
// round window. The delay charge is on the SOURCE: delaying From's traffic
// models From being slow/silent toward its recipients, which the paper's
// fault budget covers when From is counted faulty — see (*Schedule).Disturbed.
type DelayRule struct {
	// From, To name the edge; Wildcard (-1) matches every player.
	From, To int
	// Start, End bound the active window [Start, End) in staging rounds;
	// End ≤ 0 means open-ended.
	Start, End int
	// Dist is the per-message delay distribution, in rounds.
	Dist Dist
}

// PartitionRule splits the network during [Start, Heal): messages crossing
// the cut between Isolated and the rest are queued and delivered at the
// boundary of round Heal (in the lockstep transports) or dropped while the
// window is active (peer transport, where the demotion machinery models
// the outage).
type PartitionRule struct {
	// Isolated is one side of the cut — by convention the minority side,
	// and the side charged to the fault budget.
	Isolated []int
	// Start, Heal bound the partition window [Start, Heal).
	Start, Heal int
}

// CrashRule takes player Player off the network during [Start, Recover):
// every message from or to the player staged in the window is dropped. The
// player's goroutine keeps running protocol code (this is a network-level
// crash — the process is unreachable, not stopped), so after Recover its
// traffic flows again.
type CrashRule struct {
	Player         int
	Start, Recover int
}

// Schedule is a deterministic, serializable hostile-network schedule.
// The zero value (and nil) is the benign schedule: installing it changes
// nothing, byte for byte.
type Schedule struct {
	// Seed drives every sampled choice (jitter, reorder ranks). Two runs of
	// the same protocol seed under the same Schedule are identical.
	Seed int64
	// Reorder permutes the cross-sender merge order of every boundary
	// delivery (per-sender FIFO order is preserved).
	Reorder bool

	Delays     []DelayRule
	Partitions []PartitionRule
	Crashes    []CrashRule
}

// IsZero reports whether the schedule has no effect (nil or no active
// behaviors); the network skips engine installation entirely for such
// schedules, keeping the benign fast path byte-identical.
func (s *Schedule) IsZero() bool {
	return s == nil || (!s.Reorder && len(s.Delays) == 0 && len(s.Partitions) == 0 && len(s.Crashes) == 0)
}

// Validate checks the schedule against a network of n players.
func (s *Schedule) Validate(n int) error {
	if s == nil {
		return nil
	}
	for i, d := range s.Delays {
		if (d.From != Wildcard && (d.From < 0 || d.From >= n)) || (d.To != Wildcard && (d.To < 0 || d.To >= n)) {
			return fmt.Errorf("simnet: delay rule %d: edge %d->%d outside [0,%d)", i, d.From, d.To, n)
		}
		if d.Start < 0 {
			return fmt.Errorf("simnet: delay rule %d: negative start round %d", i, d.Start)
		}
		switch d.Dist.Kind {
		case DistFixed, DistUniform, DistHeavyTail:
		default:
			return fmt.Errorf("simnet: delay rule %d: unknown distribution kind %d", i, int(d.Dist.Kind))
		}
		if d.Dist.Min < 0 || d.Dist.max() < d.Dist.Min {
			return fmt.Errorf("simnet: delay rule %d: bad distribution bounds [%d,%d]", i, d.Dist.Min, d.Dist.Max)
		}
	}
	for i, p := range s.Partitions {
		if len(p.Isolated) == 0 || len(p.Isolated) >= n {
			return fmt.Errorf("simnet: partition rule %d: isolated side must be a proper non-empty subset", i)
		}
		seen := map[int]bool{}
		for _, pl := range p.Isolated {
			if pl < 0 || pl >= n {
				return fmt.Errorf("simnet: partition rule %d: player %d outside [0,%d)", i, pl, n)
			}
			if seen[pl] {
				return fmt.Errorf("simnet: partition rule %d: duplicate player %d", i, pl)
			}
			seen[pl] = true
		}
		if p.Start < 0 || p.Heal <= p.Start {
			return fmt.Errorf("simnet: partition rule %d: bad window [%d,%d)", i, p.Start, p.Heal)
		}
	}
	for i, c := range s.Crashes {
		if c.Player < 0 || c.Player >= n {
			return fmt.Errorf("simnet: crash rule %d: player %d outside [0,%d)", i, c.Player, n)
		}
		if c.Start < 0 || c.Recover <= c.Start {
			return fmt.Errorf("simnet: crash rule %d: bad window [%d,%d)", i, c.Start, c.Recover)
		}
	}
	return nil
}

// MaxDelay returns the largest per-message delay (in rounds) any delay
// rule can produce. The peer transport derives its round-timeout grace
// from this: an honest peer under jitter can legitimately be MaxDelay
// units late, and must not be demoted for it.
func (s *Schedule) MaxDelay() int {
	if s == nil {
		return 0
	}
	m := 0
	for _, d := range s.Delays {
		if v := d.Dist.max(); v > m {
			m = v
		}
	}
	return m
}

// Disturbed returns the sorted set of players whose own outputs the
// schedule may damage — the players a property checker must exempt, and
// the players charged against the paper's fault budget t:
//
//   - a crashed player (its view and its visibility are both cut);
//   - every player on the Isolated side of a partition (traffic into the
//     minority side is queued past its usefulness);
//   - the From endpoint of every delay rule (delaying a source models that
//     source being slow/silent toward its recipients — the receivers'
//     guarantees survive because a slow source is charged as one of the
//     ≤ t tolerated faults, but the source's own round structure as seen
//     by others is no longer trustworthy). A wildcard From disturbs
//     every player.
//
// Receivers of delayed traffic are NOT disturbed: the paper's protocols
// tolerate up to t faulty-looking senders by construction, which is
// exactly what a delayed edge makes its source look like.
func (s *Schedule) Disturbed(n int) []int {
	if s == nil {
		return nil
	}
	set := map[int]bool{}
	for _, c := range s.Crashes {
		set[c.Player] = true
	}
	for _, p := range s.Partitions {
		for _, pl := range p.Isolated {
			set[pl] = true
		}
	}
	for _, d := range s.Delays {
		if d.From == Wildcard {
			for i := 0; i < n; i++ {
				set[i] = true
			}
			break
		}
		set[d.From] = true
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// RuleCount returns the number of removable rules (delay + partition +
// crash rules, plus the reorder flag) — the search space of the
// conformance shrinker.
func (s *Schedule) RuleCount() int {
	if s == nil {
		return 0
	}
	n := len(s.Delays) + len(s.Partitions) + len(s.Crashes)
	if s.Reorder {
		n++
	}
	return n
}

// WithoutRule returns a deep copy of the schedule with removable rule i
// (in RuleCount order: delays, partitions, crashes, reorder flag) deleted.
func (s *Schedule) WithoutRule(i int) *Schedule {
	c := s.Clone()
	switch {
	case i < len(c.Delays):
		c.Delays = append(c.Delays[:i], c.Delays[i+1:]...)
	case i < len(c.Delays)+len(c.Partitions):
		i -= len(c.Delays)
		c.Partitions = append(c.Partitions[:i], c.Partitions[i+1:]...)
	case i < len(c.Delays)+len(c.Partitions)+len(c.Crashes):
		i -= len(c.Delays) + len(c.Partitions)
		c.Crashes = append(c.Crashes[:i], c.Crashes[i+1:]...)
	default:
		c.Reorder = false
	}
	return c
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	if s == nil {
		return nil
	}
	c := &Schedule{Seed: s.Seed, Reorder: s.Reorder}
	c.Delays = append([]DelayRule(nil), s.Delays...)
	c.Crashes = append([]CrashRule(nil), s.Crashes...)
	c.Partitions = make([]PartitionRule, len(s.Partitions))
	for i, p := range s.Partitions {
		c.Partitions[i] = PartitionRule{Isolated: append([]int(nil), p.Isolated...), Start: p.Start, Heal: p.Heal}
	}
	return c
}

// ---------------------------------------------------------------------------
// Serialization: one line, semicolon-separated, exact round-trip.

func fmtEndpoint(p int) string {
	if p == Wildcard {
		return "*"
	}
	return strconv.Itoa(p)
}

func fmtWindow(start, end int) string {
	if end <= 0 || end >= openEnd {
		return fmt.Sprintf("r%d-", start)
	}
	return fmt.Sprintf("r%d-%d", start, end)
}

// String renders the schedule in the compact form ParseSchedule accepts:
//
//	seed=7;reorder;delay=3->*:r0-:uniform(1,3);partition=[1 4]:r2-6;crash=p2:r0-4
func (s *Schedule) String() string {
	if s == nil {
		return "benign"
	}
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	if s.Reorder {
		parts = append(parts, "reorder")
	}
	for _, d := range s.Delays {
		dist := ""
		switch d.Dist.Kind {
		case DistFixed:
			dist = fmt.Sprintf("fixed(%d)", d.Dist.Min)
		default:
			dist = fmt.Sprintf("%s(%d,%d)", d.Dist.Kind, d.Dist.Min, d.Dist.Max)
		}
		parts = append(parts, fmt.Sprintf("delay=%s->%s:%s:%s",
			fmtEndpoint(d.From), fmtEndpoint(d.To), fmtWindow(d.Start, d.End), dist))
	}
	for _, p := range s.Partitions {
		ids := make([]string, len(p.Isolated))
		for i, pl := range p.Isolated {
			ids[i] = strconv.Itoa(pl)
		}
		parts = append(parts, fmt.Sprintf("partition=[%s]:%s", strings.Join(ids, " "), fmtWindow(p.Start, p.Heal)))
	}
	for _, c := range s.Crashes {
		parts = append(parts, fmt.Sprintf("crash=p%d:%s", c.Player, fmtWindow(c.Start, c.Recover)))
	}
	return strings.Join(parts, ";")
}

func parseEndpoint(s string) (int, error) {
	if s == "*" {
		return Wildcard, nil
	}
	return strconv.Atoi(s)
}

func parseWindow(s string) (start, end int, err error) {
	if !strings.HasPrefix(s, "r") {
		return 0, 0, fmt.Errorf("window %q must start with r", s)
	}
	lo, hi, ok := strings.Cut(s[1:], "-")
	if !ok {
		return 0, 0, fmt.Errorf("window %q wants rSTART-END", s)
	}
	if start, err = strconv.Atoi(lo); err != nil {
		return 0, 0, fmt.Errorf("window %q: %v", s, err)
	}
	if hi == "" {
		return start, openEnd, nil
	}
	if end, err = strconv.Atoi(hi); err != nil {
		return 0, 0, fmt.Errorf("window %q: %v", s, err)
	}
	return start, end, nil
}

func parseDist(s string) (Dist, error) {
	name, rest, ok := strings.Cut(s, "(")
	if !ok || !strings.HasSuffix(rest, ")") {
		return Dist{}, fmt.Errorf("distribution %q wants kind(args)", s)
	}
	args := strings.Split(strings.TrimSuffix(rest, ")"), ",")
	var d Dist
	switch name {
	case "fixed":
		if len(args) != 1 {
			return Dist{}, fmt.Errorf("fixed wants one argument, got %q", s)
		}
		v, err := strconv.Atoi(strings.TrimSpace(args[0]))
		if err != nil {
			return Dist{}, err
		}
		return Dist{Kind: DistFixed, Min: v}, nil
	case "uniform":
		d.Kind = DistUniform
	case "heavytail":
		d.Kind = DistHeavyTail
	default:
		return Dist{}, fmt.Errorf("unknown distribution %q", name)
	}
	if len(args) != 2 {
		return Dist{}, fmt.Errorf("%s wants two arguments, got %q", name, s)
	}
	var err error
	if d.Min, err = strconv.Atoi(strings.TrimSpace(args[0])); err != nil {
		return Dist{}, err
	}
	if d.Max, err = strconv.Atoi(strings.TrimSpace(args[1])); err != nil {
		return Dist{}, err
	}
	return d, nil
}

// ParseSchedule parses the String form back into a Schedule. "benign" (and
// the empty string) parse to nil.
func ParseSchedule(s string) (*Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "benign" {
		return nil, nil
	}
	out := &Schedule{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "reorder" {
			out.Reorder = true
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("simnet: schedule element %q wants key=value", part)
		}
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("simnet: schedule seed %q: %v", val, err)
			}
			out.Seed = v
		case "delay":
			f := strings.SplitN(val, ":", 3)
			if len(f) != 3 {
				return nil, fmt.Errorf("simnet: delay %q wants edge:window:dist", val)
			}
			from, to, ok := strings.Cut(f[0], "->")
			if !ok {
				return nil, fmt.Errorf("simnet: delay edge %q wants from->to", f[0])
			}
			var r DelayRule
			var err error
			if r.From, err = parseEndpoint(from); err != nil {
				return nil, fmt.Errorf("simnet: delay from %q: %v", from, err)
			}
			if r.To, err = parseEndpoint(to); err != nil {
				return nil, fmt.Errorf("simnet: delay to %q: %v", to, err)
			}
			if r.Start, r.End, err = parseWindow(f[1]); err != nil {
				return nil, fmt.Errorf("simnet: delay: %v", err)
			}
			if r.Dist, err = parseDist(f[2]); err != nil {
				return nil, fmt.Errorf("simnet: delay: %v", err)
			}
			out.Delays = append(out.Delays, r)
		case "partition":
			body, window, ok := strings.Cut(val, "]:")
			if !ok || !strings.HasPrefix(body, "[") {
				return nil, fmt.Errorf("simnet: partition %q wants [ids]:window", val)
			}
			var r PartitionRule
			for _, id := range strings.Fields(strings.TrimPrefix(body, "[")) {
				v, err := strconv.Atoi(id)
				if err != nil {
					return nil, fmt.Errorf("simnet: partition player %q: %v", id, err)
				}
				r.Isolated = append(r.Isolated, v)
			}
			var err error
			if r.Start, r.Heal, err = parseWindow(window); err != nil {
				return nil, fmt.Errorf("simnet: partition: %v", err)
			}
			out.Partitions = append(out.Partitions, r)
		case "crash":
			player, window, ok := strings.Cut(val, ":")
			if !ok || !strings.HasPrefix(player, "p") {
				return nil, fmt.Errorf("simnet: crash %q wants pID:window", val)
			}
			var r CrashRule
			var err error
			if r.Player, err = strconv.Atoi(strings.TrimPrefix(player, "p")); err != nil {
				return nil, fmt.Errorf("simnet: crash player %q: %v", player, err)
			}
			if r.Start, r.Recover, err = parseWindow(window); err != nil {
				return nil, fmt.Errorf("simnet: crash: %v", err)
			}
			out.Crashes = append(out.Crashes, r)
		default:
			return nil, fmt.Errorf("simnet: unknown schedule element %q", key)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Deterministic hashing: every sampled choice is a pure function of
// (seed, round, edge, copy), independent of goroutine scheduling.

// mix is a splitmix64 finalizer round.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashFor combines the schedule seed with a message/edge coordinate.
func hashFor(seed int64, round, from, to, copyIdx int) uint64 {
	h := mix(uint64(seed))
	h = mix(h ^ uint64(round)<<1 ^ 0xd1)
	h = mix(h ^ uint64(from)<<1 ^ 0xf2)
	h = mix(h ^ uint64(to)<<1 ^ 0x3b)
	h = mix(h ^ uint64(copyIdx)<<1 ^ 0x87)
	return h
}

// windowHas reports whether round r lies in [start, end) with end ≤ 0 (or
// openEnd) meaning open.
func windowHas(r, start, end int) bool {
	if r < start {
		return false
	}
	return end <= 0 || end >= openEnd || r < end
}

// schedEngine is the per-network runtime of one Schedule. All methods are
// called with the owning network's lock held (lockstep transports) or from
// a single reader goroutine per edge (peer transport), so the only shared
// state is the immutable schedule plus the partition membership cache.
type schedEngine struct {
	s *Schedule
	n int
	// iso[i] caches, per partition rule, whether player i is isolated.
	iso [][]bool
}

// newSchedEngine builds the runtime, or returns nil for a zero schedule.
func newSchedEngine(s *Schedule, n int) *schedEngine {
	if s.IsZero() {
		return nil
	}
	en := &schedEngine{s: s, n: n}
	en.iso = make([][]bool, len(s.Partitions))
	for pi, p := range s.Partitions {
		en.iso[pi] = make([]bool, n)
		for _, pl := range p.Isolated {
			en.iso[pi][pl] = true
		}
	}
	return en
}

// fate decides what happens to the copyIdx-th copy staged on edge from→to
// in round r: drop, or deliver at boundary deliverAt ≥ r. The self-loop
// edge never crosses the network (a network-crashed player still talks to
// itself), so the schedule leaves it alone — which also keeps the
// in-memory enactment coherent with the peer transport, where self-copies
// are staged locally and never see the wire.
func (en *schedEngine) fate(r, from, to, copyIdx int) (deliverAt int, drop bool) {
	if from == to {
		return r, false
	}
	s := en.s
	for _, c := range s.Crashes {
		if c.Player != from && c.Player != to {
			continue
		}
		if windowHas(r, c.Start, c.Recover) {
			return 0, true
		}
	}
	deliverAt = r
	for pi, p := range s.Partitions {
		if windowHas(r, p.Start, p.Heal) && en.iso[pi][from] != en.iso[pi][to] && p.Heal > deliverAt {
			deliverAt = p.Heal
		}
	}
	for _, d := range s.Delays {
		if d.From != Wildcard && d.From != from {
			continue
		}
		if d.To != Wildcard && d.To != to {
			continue
		}
		if !windowHas(r, d.Start, d.End) {
			continue
		}
		deliverAt += d.Dist.sample(hashFor(s.Seed, r, from, to, copyIdx))
		break // first matching delay rule wins
	}
	return deliverAt, false
}

// edgeDead reports whether a crash or partition window kills edge from→to
// at round r outright (the peer transport's enactment of those rules).
func (en *schedEngine) edgeDead(r, from, to int) bool {
	for _, c := range en.s.Crashes {
		if (c.Player == from || c.Player == to) && windowHas(r, c.Start, c.Recover) {
			return true
		}
	}
	for pi, p := range en.s.Partitions {
		if windowHas(r, p.Start, p.Heal) && en.iso[pi][from] != en.iso[pi][to] {
			return true
		}
	}
	return false
}

// delayRounds samples the wall-clock hold (in round units) the peer
// transport applies to from's round-r done frame arriving at to.
func (en *schedEngine) delayRounds(r, from, to int) int {
	s := en.s
	for _, d := range s.Delays {
		if d.From != Wildcard && d.From != from {
			continue
		}
		if d.To != Wildcard && d.To != to {
			continue
		}
		if !windowHas(r, d.Start, d.End) {
			continue
		}
		return d.Dist.sample(hashFor(s.Seed, r, from, to, 0))
	}
	return 0
}

// reorder block-permutes msgs (already in canonical (From, seq) order) by
// a per-(round, recipient) pseudorandom sender rank, preserving each
// sender's internal order. The permutation is a pure function of
// (seed, round, to).
func (en *schedEngine) reorder(round, to int, msgs []Message) []Message {
	if !en.s.Reorder || len(msgs) < 2 {
		return msgs
	}
	rank := func(from int) uint64 { return hashFor(en.s.Seed, round, from, to, 1<<20) }
	sort.SliceStable(msgs, func(a, b int) bool {
		ra, rb := rank(msgs[a].From), rank(msgs[b].From)
		if ra != rb {
			return ra < rb
		}
		return msgs[a].From < msgs[b].From // hash-collision tiebreak, still deterministic
	})
	return msgs
}

// ---------------------------------------------------------------------------
// Budget-aware sampling: hostile schedules the paper's guarantees must
// survive.

// SampleSchedule derives a random hostile schedule for an n-player network
// from a schedule seed. Disturbance is confined to the `victims` set — the
// players the caller can afford to charge against the fault budget
// (typically t − |corrupt| honest players, excluding any whose exact
// outcome the caller's assertions pin). With no victims the schedule
// still exercises within-round reordering, which every protocol must
// tolerate without any budget charge. The result always satisfies
// Disturbed(n) ⊆ victims and Validate(n).
func SampleSchedule(seed int64, n int, victims []int) *Schedule {
	rng := rand.New(rand.NewSource(seed ^ 0x5eedface))
	s := &Schedule{Seed: seed, Reorder: true}
	// Protocol runs in this repo finish within a few dozen rounds; windows
	// beyond that would sample to no-ops, so keep the action early.
	const horizon = 48
	window := func(minLen, maxLen int) (int, int) {
		start := rng.Intn(horizon)
		length := minLen + rng.Intn(maxLen-minLen+1)
		return start, start + length
	}
	for _, v := range victims {
		// Every victim gets at least one disturbance; which kind is a
		// seeded choice.
		kinds := 1 + rng.Intn(2)
		for k := 0; k < kinds; k++ {
			switch rng.Intn(3) {
			case 0: // outgoing jitter toward everyone
				dist := Dist{Kind: DistKind(1 + rng.Intn(3)), Min: 1 + rng.Intn(2)}
				dist.Max = dist.Min + rng.Intn(3)
				if dist.Kind == DistFixed {
					dist.Max = 0
				}
				start, end := window(4, 24)
				s.Delays = append(s.Delays, DelayRule{From: v, To: Wildcard, Start: start, End: end, Dist: dist})
			case 1: // crash with recovery
				start, end := window(2, 8)
				s.Crashes = append(s.Crashes, CrashRule{Player: v, Start: start, Recover: end})
			case 2: // jitter toward a single random recipient
				to := rng.Intn(n)
				if to == v {
					to = (to + 1) % n
				}
				dist := Dist{Kind: DistUniform, Min: 1, Max: 2 + rng.Intn(3)}
				start, end := window(6, 32)
				s.Delays = append(s.Delays, DelayRule{From: v, To: to, Start: start, End: end, Dist: dist})
			}
		}
	}
	// One partition isolating a random non-empty victim subset, sometimes.
	if len(victims) > 0 && rng.Intn(2) == 0 {
		iso := append([]int(nil), victims...)
		rng.Shuffle(len(iso), func(i, j int) { iso[i], iso[j] = iso[j], iso[i] })
		iso = iso[:1+rng.Intn(len(iso))]
		sort.Ints(iso)
		start, heal := window(2, 6)
		s.Partitions = append(s.Partitions, PartitionRule{Isolated: iso, Start: start, Heal: heal})
	}
	return s
}
