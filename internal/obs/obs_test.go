package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// TestSpanNestingConcurrent drives one tracer from many per-player
// goroutines (the simnet shape) and checks the invariants the rest of the
// repo relies on: per-player spans nest properly (parent = enclosing span),
// begin/end pair up, and Seq is strictly increasing and gap-free across
// players. Run under -race this also proves the locking is sound.
func TestSpanNestingConcurrent(t *testing.T) {
	const players = 8
	const reps = 50
	ring := NewRing(players * reps * 8)
	tr := New(nil, ring)

	var wg sync.WaitGroup
	for p := 0; p < players; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				run := tr.Start(p, rep, KindRun, "run")
				proto := tr.Start(p, rep, KindProtocol, "proto")
				phase := tr.Start(p, rep, KindPhase, "phase")
				tr.Send(p, (p+1)%players, 16, rep)
				phase.End(rep)
				proto.End(rep)
				run.End(rep)
			}
		}(p)
	}
	wg.Wait()

	events := ring.Events()
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; size the buffer up", ring.Dropped())
	}
	// Seq strictly increasing and gap-free in emission order.
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	// Per player: reconstruct the stack and check nesting and pairing.
	type frame struct {
		id   uint64
		name string
	}
	stacks := make(map[int][]frame)
	begun := map[uint64]Event{}
	ended := map[uint64]bool{}
	for _, e := range events {
		switch e.Type {
		case EvSpanBegin:
			st := stacks[e.Player]
			wantParent := uint64(0)
			if len(st) > 0 {
				wantParent = st[len(st)-1].id
			}
			if e.Parent != wantParent {
				t.Fatalf("player %d span %q has parent %d, want %d", e.Player, e.Name, e.Parent, wantParent)
			}
			stacks[e.Player] = append(st, frame{e.Span, e.Name})
			begun[e.Span] = e
		case EvSpanEnd:
			st := stacks[e.Player]
			if len(st) == 0 || st[len(st)-1].id != e.Span {
				t.Fatalf("player %d ended span %d out of order (stack %v)", e.Player, e.Span, st)
			}
			stacks[e.Player] = st[:len(st)-1]
			if ended[e.Span] {
				t.Fatalf("span %d ended twice", e.Span)
			}
			ended[e.Span] = true
			b := begun[e.Span]
			if b.Name != e.Name || b.Kind != e.Kind {
				t.Fatalf("span %d end (%s,%s) does not match begin (%s,%s)",
					e.Span, e.Name, e.Kind, b.Name, b.Kind)
			}
		}
	}
	for p, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("player %d left spans open: %v", p, st)
		}
	}
	if len(begun) != players*reps*3 {
		t.Fatalf("saw %d spans, want %d", len(begun), players*reps*3)
	}
	for id := range begun {
		if !ended[id] {
			t.Fatalf("span %d never ended", id)
		}
	}
}

// TestLeakedSpanDoesNotCorruptHierarchy checks the defensive pop: ending an
// outer span while an inner one leaked (error path) clears both, so the
// next root span has no parent.
func TestLeakedSpanDoesNotCorruptHierarchy(t *testing.T) {
	ring := NewRing(16)
	tr := New(nil, ring)
	outer := tr.Start(0, 0, KindProtocol, "outer")
	_ = tr.Start(0, 0, KindPhase, "leaked") // never ended
	outer.End(1)
	next := tr.Start(0, 1, KindProtocol, "next")
	next.End(2)

	events := ring.Events()
	var got Event
	for _, e := range events {
		if e.Type == EvSpanBegin && e.Name == "next" {
			got = e
		}
	}
	if got.Parent != 0 {
		t.Fatalf("span after leak has parent %d, want 0 (root)", got.Parent)
	}
}

// TestJSONLRoundTrip pins the acceptance property: exporting a trace as
// JSONL and parsing it back yields the identical event sequence, including
// counter-diff payloads, -1 player/to markers, and every event type.
func TestJSONLRoundTrip(t *testing.T) {
	var ctr metrics.Counters
	ring := NewRing(0)
	var buf bytes.Buffer
	jsonl := NewJSONL(&buf)
	tr := New(&ctr, ring, jsonl)

	sp := tr.Start(0, 0, KindProtocol, "coingen")
	ctr.AddFieldMuls(7)
	ctr.AddMessages(3)
	ctr.AddBytes(120)
	inner := tr.Start(0, 0, KindPhase, "bitgen/deal")
	ctr.AddInterpolations(2)
	inner.End(1)
	tr.Send(0, 3, 64, 1)
	tr.Broadcast(2, 32, 1)
	tr.Deliver(0, 3, 64, 1)
	tr.RoundBoundary(1, 4, 256)
	tr.DealerDisqualified(4, 1, 2)
	tr.CliqueFound(0, 5, 2)
	tr.LeaderElected(0, 6, 1, 3)
	tr.Decision(0, 1, 4)
	tr.CoinSealed(0, 16, 4)
	tr.CoinExposed(0, 3, 0xdeadbeef, 5)
	sp.End(5)

	if err := jsonl.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want := ring.Events()
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParseJSONLBadLine checks malformed input is rejected with a line
// number instead of silently dropped.
func TestParseJSONLBadLine(t *testing.T) {
	input := `{"seq":1,"type":"round","player":-1,"round":0}` + "\n" + `{"seq":2,"type":"not-a-type","player":0,"round":0}` + "\n"
	_, err := ParseJSONL(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want parse error naming line 2", err)
	}
}

// TestNopTracerZeroAlloc is the zero-cost-path guarantee: with tracing
// disabled (nil *Tracer, the simnet default) every tracer call must be
// allocation-free so the protocol hot path is unaffected.
func TestNopTracerZeroAlloc(t *testing.T) {
	var tr *Tracer // the nop tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(3, 7, KindPhase, "vss/verify")
		tr.Send(0, 1, 64, 7)
		tr.Broadcast(0, 64, 7)
		tr.Deliver(0, 1, 64, 7)
		tr.RoundBoundary(7, 10, 640)
		tr.DealerDisqualified(0, 1, 7)
		tr.CliqueFound(0, 5, 7)
		tr.LeaderElected(0, 2, 1, 7)
		tr.Decision(0, 1, 7)
		tr.CoinSealed(0, 8, 7)
		tr.CoinExposed(0, 0, 42, 7)
		sp.End(8)
	})
	if allocs != 0 {
		t.Fatalf("nop tracer allocates %.1f per op, want 0", allocs)
	}
}

// TestRingEviction checks the flight-recorder semantics: oldest events are
// dropped first and the drop count is reported.
func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 7; i++ {
		r.Emit(Event{Seq: uint64(i), Type: EvRound, Player: -1})
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+4) {
			t.Fatalf("event %d has seq %d, want %d (oldest-first)", i, e.Seq, i+4)
		}
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
}

// TestPhaseSummaryAndAggregate checks span extraction (depth, rounds, cost)
// and the no-double-count aggregation used for the paper-phase table.
func TestPhaseSummaryAndAggregate(t *testing.T) {
	var ctr metrics.Counters
	ring := NewRing(0)
	tr := New(&ctr, ring)

	outer := tr.Start(0, 0, KindProtocol, "coingen")
	deal := tr.Start(0, 0, KindPhase, "bitgen/deal")
	ctr.AddMessages(6)
	ctr.AddRounds(1)
	deal.End(1)
	gc := tr.Start(0, 1, KindPhase, "gradecast")
	ctr.AddMessages(18)
	ctr.AddRounds(3)
	gc.End(4)
	outer.End(4)
	// A second exposure-style root span with the same name as nothing above.
	exp := tr.Start(0, 4, KindPhase, "coin-expose")
	ctr.AddMessages(6)
	ctr.AddRounds(1)
	exp.End(5)
	// Another player's span must not leak into player 0's summary.
	other := tr.Start(1, 0, KindPhase, "gradecast")
	other.End(4)

	rows := PhaseSummary(ring.Events(), 0)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	if rows[0].Name != "coingen" || rows[0].Depth != 0 || rows[0].Rounds() != 4 {
		t.Fatalf("bad outer row: %+v", rows[0])
	}
	if rows[1].Name != "bitgen/deal" || rows[1].Depth != 1 || rows[1].Cost.Messages != 6 || rows[1].Rounds() != 1 {
		t.Fatalf("bad deal row: %+v", rows[1])
	}
	if rows[2].Name != "gradecast" || rows[2].Cost.Rounds != 3 {
		t.Fatalf("bad gradecast row: %+v", rows[2])
	}
	if rows[3].Name != "coin-expose" || rows[3].Depth != 0 {
		t.Fatalf("bad expose row: %+v", rows[3])
	}

	agg := AggregatePhases(ring.Events(), 0, map[string]string{
		"bitgen/deal": "Batch-VSS deal",
		"gradecast":   "Grade-Cast",
		"coin-expose": "Coin-Expose",
	})
	if len(agg) != 3 {
		t.Fatalf("got %d aggregated rows, want 3: %+v", len(agg), agg)
	}
	if agg[0].Name != "Batch-VSS deal" || agg[0].Cost.Messages != 6 {
		t.Fatalf("bad aggregate: %+v", agg[0])
	}
	if agg[1].Name != "Grade-Cast" || agg[1].Cost.Messages != 18 {
		t.Fatalf("bad aggregate: %+v", agg[1])
	}

	var table strings.Builder
	WritePhaseTable(&table, rows)
	for _, want := range []string{"coingen", "  bitgen/deal", "gradecast", "field-ops"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("phase table missing %q:\n%s", want, table.String())
		}
	}
}

// TestTimelineRenders smoke-tests the per-round renderer.
func TestTimelineRenders(t *testing.T) {
	ring := NewRing(0)
	tr := New(nil, ring)
	sp := tr.Start(0, 0, KindPhase, "vss/deal")
	tr.Send(0, 1, 64, 0)
	tr.Deliver(0, 1, 64, 0)
	tr.RoundBoundary(0, 1, 64)
	sp.End(1)
	tr.CoinExposed(2, 0, 0x2a, 1)

	var buf strings.Builder
	Timeline(&buf, ring.Events())
	out := buf.String()
	for _, want := range []string{
		"round 0: 1 sent (+0 bcast), 1 delivered, 64 B",
		"[p0] ▶ phase vss/deal",
		"[p2] coin 0 exposed = 0x2a",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// TestEventTypeNamesComplete guards the wire-name tables against new enum
// values being added without names (which would break JSONL round-trips).
func TestEventTypeNamesComplete(t *testing.T) {
	for ty := EvSpanBegin; ty <= EvCoinExposed; ty++ {
		if strings.HasPrefix(ty.String(), "event(") {
			t.Fatalf("EventType %d has no wire name", ty)
		}
		var back EventType
		if err := back.UnmarshalText([]byte(ty.String())); err != nil || back != ty {
			t.Fatalf("EventType %d does not round-trip: %v", ty, err)
		}
	}
	for k := KindRun; k <= KindRound; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("SpanKind %d has no wire name", k)
		}
	}
}
