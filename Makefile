# Developer entry points. `make check` is the gate every PR must pass:
# gofmt, build, vet, and the full test suite with the race detector on (the
# simnet lockstep runs one goroutine per player and the parallel compute
# pools fan out inside them, so -race exercises real cross-goroutine
# traffic, including the shared interpolation-domain cache and per-index
# result slots).

GO ?= go

.PHONY: check build vet test race bench experiments fmt-check

check: fmt-check build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench records a machine-readable baseline (see cmd/benchjson); raw
# output still streams to the terminal while it runs.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_$(shell date +%Y-%m-%d).json

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

experiments:
	$(GO) run ./cmd/experiments -exp all
