// Package gf2big implements GF(2^k) for arbitrary k (beyond the uint64
// fields of internal/gf2k) with the naive O(k²) multiplication the paper's
// §2 discusses: "naive multiplication in a field of size 2^k takes O(k²)
// steps". It is the comparison baseline for experiment E9, which locates
// the crossover between this representation and the special NTT field of
// internal/fastfield.
//
// Elements are little-endian []uint64 words. The reduction modulus is a
// sparse irreducible trinomial x^k + x^a + 1 or pentanomial
// x^k + x^a + x^b + x^c + 1, found by search and verified with Rabin's
// irreducibility test (a small-degree-factor screen keeps the search fast).
package gf2big

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Element is a binary polynomial of degree < k in little-endian uint64
// words. Treat as immutable; operations return fresh slices.
type Element []uint64

// Field is GF(2^k) with a sparse reduction modulus.
type Field struct {
	k     int
	words int
	// taps are the exponents of the modulus besides k, descending, ending
	// in 0: {a, 0} for a trinomial, {a, b, c, 0} for a pentanomial.
	taps []int
}

// New constructs GF(2^k), searching for a sparse irreducible modulus.
// k must be ≥ 2. Construction cost grows with k (a Rabin verification is
// O(k²/w) per candidate surviving the screen); cache the Field.
func New(k int) (*Field, error) {
	if k < 2 {
		return nil, fmt.Errorf("gf2big: k must be ≥ 2, got %d", k)
	}
	f := &Field{k: k, words: (k + 63) / 64}
	taps, err := f.findSparseIrreducible()
	if err != nil {
		return nil, err
	}
	f.taps = taps
	return f, nil
}

// K returns the extension degree.
func (f *Field) K() int { return f.k }

// Taps returns the modulus exponents besides k (descending, ending in 0).
func (f *Field) Taps() []int { return append([]int(nil), f.taps...) }

// Zero returns the zero element.
func (f *Field) Zero() Element { return make(Element, f.words) }

// One returns the identity.
func (f *Field) One() Element {
	e := make(Element, f.words)
	e[0] = 1
	return e
}

// Equal reports a == b.
func (f *Field) Equal(a, b Element) bool {
	for i := 0; i < f.words; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether e is zero.
func (f *Field) IsZero(e Element) bool {
	for _, w := range e {
		if w != 0 {
			return false
		}
	}
	return true
}

// Add returns a+b (XOR).
func (f *Field) Add(a, b Element) Element {
	out := make(Element, f.words)
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Mul returns a·b by naive carry-less multiplication (O(k²/w) word
// operations) followed by sparse reduction.
func (f *Field) Mul(a, b Element) Element {
	prod := make([]uint64, 2*f.words)
	for i, w := range b {
		if w == 0 {
			continue
		}
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			xorShifted(prod, a, i*64+j)
		}
	}
	f.reduce(prod)
	out := make(Element, f.words)
	copy(out, prod[:f.words])
	return out
}

// Sqr returns a² — linear time: bit spreading plus sparse reduction.
func (f *Field) Sqr(a Element) Element {
	prod := make([]uint64, 2*f.words)
	for i, w := range a {
		lo := spreadBits(uint32(w))
		hi := spreadBits(uint32(w >> 32))
		prod[2*i] = lo
		prod[2*i+1] = hi
	}
	f.reduce(prod)
	out := make(Element, f.words)
	copy(out, prod[:f.words])
	return out
}

// Inv returns a^{-1} = a^(2^k−2) (square-and-multiply; O(k) multiplications,
// so O(k³/w) — fine off the hot path). Panics on zero.
func (f *Field) Inv(a Element) Element {
	if f.IsZero(a) {
		panic("gf2big: inverse of zero")
	}
	result := f.One()
	sq := a
	for i := 1; i < f.k; i++ {
		sq = f.Sqr(sq)
		result = f.Mul(result, sq)
	}
	return result
}

// Rand returns a uniform random element from r.
func (f *Field) Rand(r io.Reader) (Element, error) {
	buf := make([]byte, f.words*8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("gf2big: read randomness: %w", err)
	}
	out := make(Element, f.words)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	f.maskTop(out)
	return out, nil
}

// maskTop clears bits ≥ k in the top word.
func (f *Field) maskTop(e Element) {
	if r := f.k % 64; r != 0 {
		e[f.words-1] &= (uint64(1) << r) - 1
	}
}

// reduce folds v (length ≥ words, degree ≤ 2k−2) modulo
// x^k + Σ x^tap in place, one top bit at a time (O(k·taps) bit operations).
func (f *Field) reduce(v []uint64) {
	for wi := len(v) - 1; wi >= 0; wi-- {
		for v[wi] != 0 {
			d := wi*64 + 63 - bits.LeadingZeros64(v[wi])
			if d < f.k {
				return
			}
			shift := d - f.k
			v[wi] &^= uint64(1) << (d % 64)
			for _, t := range f.taps {
				p := shift + t
				v[p/64] ^= uint64(1) << (p % 64)
			}
			// The tap at position k−... may set bits in the current word
			// again below d; the inner loop re-scans v[wi].
		}
	}
}

// xorShifted XORs src << shift into dst. Leading zero words of src are
// skipped, so dst only needs capacity for the actual shifted degree.
func xorShifted(dst []uint64, src []uint64, shift int) {
	top := len(src) - 1
	for top >= 0 && src[top] == 0 {
		top--
	}
	if top < 0 {
		return
	}
	wordShift, bitShift := shift/64, shift%64
	if bitShift == 0 {
		for i := 0; i <= top; i++ {
			dst[i+wordShift] ^= src[i]
		}
		return
	}
	var carry uint64
	for i := 0; i <= top; i++ {
		dst[i+wordShift] ^= src[i]<<bitShift | carry
		carry = src[i] >> (64 - bitShift)
	}
	if carry != 0 {
		dst[top+1+wordShift] ^= carry
	}
}

// spreadBits interleaves zeros between the bits of w (squaring helper).
func spreadBits(w uint32) uint64 {
	x := uint64(w)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// deg returns the degree of v, or −1 if zero.
func deg(v []uint64) int {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] != 0 {
			return i*64 + 63 - bits.LeadingZeros64(v[i])
		}
	}
	return -1
}
