package reshare

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// dealOldCommittee seeds an old committee of n players with `count` coins
// from the trusted dealer, each player's batch wrapped in a universe-bound
// store — the state a running beacon holds when a reshare starts.
func dealOldCommittee(t *testing.T, f gf2k.Field, n, tt, count int) ([]*coin.Store, []gf2k.Element) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	batches, values, err := coin.DealTrusted(f, n, tt, count, rng)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*coin.Store, n)
	for i, b := range batches {
		st := &coin.Store{}
		if err := st.Add(b); err != nil {
			t.Fatal(err)
		}
		if err := st.BindUniverse(n); err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	return stores, values
}

// runReshare executes one ceremony over the combined network. stores[i] is
// nil for pure joiners; faulty overrides node i's player function.
func runReshare(t *testing.T, cfg Config, stores []*coin.Store, faulty map[int]simnet.PlayerFunc) []simnet.PlayerResult {
	t.Helper()
	nw := simnet.New(cfg.CombinedN())
	fns := make([]simnet.PlayerFunc, cfg.CombinedN())
	for i := range fns {
		if fn, ok := faulty[i]; ok {
			fns[i] = fn
			continue
		}
		st := stores[i]
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return Run(nd, cfg, st, rng)
		}
	}
	return simnet.Run(nw, fns)
}

// exposeNewCommittee runs the reshared stores on a fresh new-committee
// network and returns each member's exposed coin sequence.
func exposeNewCommittee(t *testing.T, cfg Config, results []simnet.PlayerResult, count int) [][]gf2k.Element {
	t.Helper()
	byNew := make([]*coin.Store, cfg.NewN)
	for node, j := range cfg.NewOf {
		if j < 0 {
			continue
		}
		res, ok := results[node].Value.(*Result)
		if !ok || res.Store == nil {
			t.Fatalf("new member (node %d, new index %d) produced no store", node, j)
		}
		byNew[j] = res.Store
	}
	nw := simnet.New(cfg.NewN)
	fns := make([]simnet.PlayerFunc, cfg.NewN)
	for j := range fns {
		st := byNew[j]
		fns[j] = func(nd *simnet.Node) (interface{}, error) {
			var out []gf2k.Element
			for c := 0; c < count; c++ {
				e, err := st.Expose(nd)
				if err != nil {
					return nil, err
				}
				out = append(out, e)
			}
			return out, nil
		}
	}
	rs := simnet.Run(nw, fns)
	out := make([][]gf2k.Element, cfg.NewN)
	for j, r := range rs {
		if r.Err != nil {
			t.Fatalf("new member %d expose: %v", j, r.Err)
		}
		out[j] = r.Value.([]gf2k.Element)
	}
	return out
}

// requireVerdictUnanimity asserts every honest player reported the same
// cheater list, quorum and challenge, and returns that shared verdict.
func requireVerdictUnanimity(t *testing.T, results []simnet.PlayerResult, honest []int) *Result {
	t.Helper()
	var ref *Result
	for _, i := range honest {
		if results[i].Err != nil {
			t.Fatalf("honest node %d: %v", i, results[i].Err)
		}
		res := results[i].Value.(*Result)
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Cheaters, ref.Cheaters) {
			t.Fatalf("node %d cheaters %v != %v", i, res.Cheaters, ref.Cheaters)
		}
		if !reflect.DeepEqual(res.Quorum, ref.Quorum) {
			t.Fatalf("node %d quorum %v != %v", i, res.Quorum, ref.Quorum)
		}
		if res.Challenge != ref.Challenge {
			t.Fatalf("node %d challenge %#x != %#x", i, res.Challenge, ref.Challenge)
		}
		if res.Coins != ref.Coins {
			t.Fatalf("node %d coins %d != %d", i, res.Coins, ref.Coins)
		}
	}
	return ref
}

func TestConfigValidate(t *testing.T) {
	f := gf2k.MustNew(32)
	good := Config{Field: f, OldN: 7, OldT: 1, NewN: 9, NewT: 1,
		NewOf: []int{0, 1, -1, -1, -1, -1, -1, 2, 3, 4, 5, 6, 7, 8}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"no field":         func(c *Config) { c.Field = gf2k.Field{} },
		"old n < 3t+1":     func(c *Config) { c.OldT = 3 },
		"new n < 3t+1":     func(c *Config) { c.NewT = 3 },
		"negative attempt": func(c *Config) { c.Attempt = -1 },
		"short NewOf":      func(c *Config) { c.NewOf = c.NewOf[:5] },
		"joiner without new index": func(c *Config) {
			c.NewOf = append(append([]int{}, c.NewOf...), -1)
		},
		"new index twice": func(c *Config) {
			c.NewOf = append([]int{}, c.NewOf...)
			c.NewOf[1] = 0
		},
		"new index out of range": func(c *Config) {
			c.NewOf = append([]int{}, c.NewOf...)
			c.NewOf[1] = 9
		},
	} {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestMembershipChangePreservesCoins is the headline e2e: a (7,1) committee
// reshapes to a disjoint-majority (9,1) committee mid-stream. The new
// committee's exposed coins must byte-match the stream the old committee
// would have produced from the same tail, with no dealer involved.
func TestMembershipChangePreservesCoins(t *testing.T) {
	f := gf2k.MustNew(32)
	const count = 10
	stores, values := dealOldCommittee(t, f, 7, 1, count)

	// The old committee exposes three coins before the reshare, so the
	// ceremony must respect the FIFO cursor, not just fresh stores.
	{
		nw := simnet.New(7)
		fns := make([]simnet.PlayerFunc, 7)
		for i := range fns {
			st := stores[i]
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				for c := 0; c < 3; c++ {
					e, err := st.Expose(nd)
					if err != nil {
						return nil, err
					}
					if e != values[c] {
						t.Errorf("pre-reshare coin %d mismatch", c)
					}
				}
				return nil, nil
			}
		}
		for i, r := range simnet.Run(nw, fns) {
			if r.Err != nil {
				t.Fatalf("pre-reshare expose, player %d: %v", i, r.Err)
			}
		}
	}

	// Nodes 0 and 1 stay on; nodes 2..6 leave; nodes 7..13 join. The new
	// majority is disjoint from the old committee.
	cfg := Config{
		Field: f, OldN: 7, OldT: 1, NewN: 9, NewT: 1,
		NewOf:      []int{0, 1, -1, -1, -1, -1, -1, 2, 3, 4, 5, 6, 7, 8},
		Generation: 1,
	}
	combined := make([]*coin.Store, cfg.CombinedN())
	copy(combined, stores)
	results := runReshare(t, cfg, combined, nil)

	honest := make([]int, cfg.CombinedN())
	for i := range honest {
		honest[i] = i
	}
	ref := requireVerdictUnanimity(t, results, honest)
	if len(ref.Cheaters) != 0 {
		t.Fatalf("honest run convicted %v", ref.Cheaters)
	}
	if len(ref.Quorum) != cfg.OldT+1 {
		t.Fatalf("quorum %v, want %d sub-dealers", ref.Quorum, cfg.OldT+1)
	}
	// Attempt 0 consumes tail coins 3 (challenge) and 4 (mask).
	if ref.Challenge != values[3] {
		t.Fatalf("challenge %#x, want coin 3 = %#x", ref.Challenge, values[3])
	}
	wantCoins := count - 3 - 2
	if ref.Coins != wantCoins {
		t.Fatalf("reshared %d coins, want %d", ref.Coins, wantCoins)
	}
	for node, j := range cfg.NewOf {
		res := results[node].Value.(*Result)
		if j < 0 {
			if res.Store != nil {
				t.Fatalf("leaving node %d got a store", node)
			}
			continue
		}
		if res.Silent {
			t.Fatalf("honest new member %d marked Silent", j)
		}
		if res.Store.Generation != 1 || res.Store.Universe != cfg.NewN {
			t.Fatalf("new member %d store generation=%d universe=%d", j,
				res.Store.Generation, res.Store.Universe)
		}
	}

	exposed := exposeNewCommittee(t, cfg, results, wantCoins)
	for j, got := range exposed {
		for c := 0; c < wantCoins; c++ {
			if got[c] != values[5+c] {
				t.Fatalf("new member %d coin %d: %#x, want %#x (old stream)",
					j, c, got[c], values[5+c])
			}
		}
	}
}

// TestProactiveRefreshSameRoster keeps the roster fixed and checks that the
// ceremony re-randomizes every share while preserving every coin value.
func TestProactiveRefreshSameRoster(t *testing.T) {
	f := gf2k.MustNew(32)
	const count = 6
	stores, values := dealOldCommittee(t, f, 7, 1, count)
	oldShares := make([][]gf2k.Element, 7)
	for i, st := range stores {
		b := st.Batches()[0]
		oldShares[i] = append([]gf2k.Element{}, b.Shares...)
	}

	cfg := Config{
		Field: f, OldN: 7, OldT: 1, NewN: 7, NewT: 1,
		NewOf:      []int{0, 1, 2, 3, 4, 5, 6},
		Generation: 1,
	}
	results := runReshare(t, cfg, stores, nil)
	honest := []int{0, 1, 2, 3, 4, 5, 6}
	ref := requireVerdictUnanimity(t, results, honest)
	if len(ref.Cheaters) != 0 {
		t.Fatalf("refresh convicted %v", ref.Cheaters)
	}

	// Every share must change (proactive security: leaking t old shares
	// plus t new shares must reveal nothing).
	for i := range honest {
		res := results[i].Value.(*Result)
		fresh := res.Store.Batches()[0].Shares
		for h, s := range fresh {
			if s == oldShares[i][2+h] {
				t.Fatalf("player %d share of coin %d not refreshed", i, h)
			}
		}
	}

	exposed := exposeNewCommittee(t, cfg, results, count-2)
	for j, got := range exposed {
		for c := range got {
			if got[c] != values[2+c] {
				t.Fatalf("refreshed member %d coin %d mismatch", j, c)
			}
		}
	}
}

// TestReshareAttemptOffsets pins the retry rule: attempt a consumes tail
// coins 2a and 2a+1, so a retried ceremony never reuses a challenge that a
// failed attempt may already have exposed publicly.
func TestReshareAttemptOffsets(t *testing.T) {
	f := gf2k.MustNew(32)
	const count = 8
	stores, values := dealOldCommittee(t, f, 7, 1, count)
	cfg := Config{
		Field: f, OldN: 7, OldT: 1, NewN: 7, NewT: 1,
		NewOf:      []int{0, 1, 2, 3, 4, 5, 6},
		Attempt:    1,
		Generation: 1,
	}
	results := runReshare(t, cfg, stores, nil)
	ref := requireVerdictUnanimity(t, results, []int{0, 1, 2, 3, 4, 5, 6})
	if ref.Challenge != values[2] {
		t.Fatalf("attempt 1 challenge %#x, want coin 2 = %#x", ref.Challenge, values[2])
	}
	if ref.Coins != count-4 {
		t.Fatalf("attempt 1 reshared %d coins, want %d", ref.Coins, count-4)
	}
	exposed := exposeNewCommittee(t, cfg, results, count-4)
	for j, got := range exposed {
		for c := range got {
			if got[c] != values[4+c] {
				t.Fatalf("member %d coin %d mismatch after attempt-1 reshare", j, c)
			}
		}
	}
}

// byzMode selects a sub-dealer corruption for the adversarial tests below.
type byzMode int

const (
	// byzSilent never sub-deals and never transmits.
	byzSilent byzMode = iota
	// byzWrongDegree sub-deals with degree-(t'+1) polynomials.
	byzWrongDegree
	// byzEquivocal deals one polynomial set to half the new committee and a
	// different set to the other half.
	byzEquivocal
	// byzEquivocalOne deals honestly except to a single victim, staying
	// under the decode budget: the dealer survives, the victim self-checks.
	byzEquivocalOne
	// byzWrongValue sub-deals well-formed degree-t' sharings of s+1 instead
	// of its true share s — only the cross-check can catch it.
	byzWrongValue
	// byzWrongLength pads every column with extra bogus coins.
	byzWrongLength
)

// byzantineSubDealer is a corrupted old-committee member (old-only: it
// leaves the committee) speaking the reshare wire formats directly.
func byzantineSubDealer(cfg Config, st *coin.Store, mode byzMode, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		f := cfg.Field
		rng := rand.New(rand.NewSource(seed))
		shares, _, err := tailShares(st, cfg.OldT)
		if err != nil {
			return nil, err
		}
		challengeShare, maskShare := shares[0], shares[1]
		tail := shares[2:]
		m := len(tail)

		if mode != byzSilent {
			deg := cfg.NewT
			if mode == byzWrongDegree {
				deg = cfg.NewT + 1
			}
			secrets := append([]gf2k.Element{maskShare}, tail...)
			if mode == byzWrongValue {
				for i := 1; i < len(secrets); i++ {
					secrets[i] = f.Add(secrets[i], 1)
				}
			}
			deal := func() ([]poly.Poly, error) {
				ps := make([]poly.Poly, len(secrets))
				for i, s := range secrets {
					p, err := poly.Random(f, deg, s, rng)
					if err != nil {
						return nil, err
					}
					ps[i] = p
				}
				return ps, nil
			}
			polys, err := deal()
			if err != nil {
				return nil, err
			}
			alt, err := deal() // second, inconsistent dealing for equivocation
			if err != nil {
				return nil, err
			}
			for node := 0; node < nd.N(); node++ {
				j := cfg.NewOf[node]
				if j < 0 || node == nd.Index() {
					continue
				}
				use := polys
				if (mode == byzEquivocal && j%2 == 1) || (mode == byzEquivocalOne && j == cfg.NewN-1) {
					use = alt
				}
				y, err := f.ElementFromID(j + 1)
				if err != nil {
					return nil, err
				}
				col := make([]gf2k.Element, m)
				for h := range col {
					col[h] = poly.Eval(f, use[h+1], y)
				}
				if mode == byzWrongLength {
					col = append(col, 1, 2, 3)
				}
				nd.Send(node, encodeSubShares(f, poly.Eval(f, use[0], y), col))
			}
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		if mode != byzSilent {
			nd.SendAll(encodeChallenge(f, challengeShare))
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		// Round 3: old-only members broadcast nothing.
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return nil, nil
	}
}

// TestAdversarialSubDealers drives each corruption through a full
// membership change to a disjoint (9,2) committee: every honest player must
// convict exactly the corrupted dealers, and the new committee's coins must
// still byte-match the old stream.
func TestAdversarialSubDealers(t *testing.T) {
	f := gf2k.MustNew(32)
	const count = 7
	// Old (7,2) hands off to a fully disjoint new (9,2): nodes 0..6 all
	// leave, nodes 7..15 join.
	newOf := []int{-1, -1, -1, -1, -1, -1, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	base := Config{Field: f, OldN: 7, OldT: 2, NewN: 9, NewT: 2, NewOf: newOf, Generation: 1}

	for name, tc := range map[string]struct {
		modes        map[int]byzMode // corrupted old node → mode
		wantCheaters []int
	}{
		"silent":           {map[int]byzMode{3: byzSilent}, []int{3}},
		"wrong degree":     {map[int]byzMode{0: byzWrongDegree}, []int{0}},
		"equivocal":        {map[int]byzMode{5: byzEquivocal}, []int{5}},
		"wrong value":      {map[int]byzMode{2: byzWrongValue}, []int{2}},
		"wrong length":     {map[int]byzMode{6: byzWrongLength}, []int{6}},
		"two cheaters":     {map[int]byzMode{1: byzWrongDegree, 4: byzSilent}, []int{1, 4}},
		"degree and value": {map[int]byzMode{0: byzWrongValue, 6: byzWrongDegree}, []int{0, 6}},
	} {
		t.Run(name, func(t *testing.T) {
			stores, values := dealOldCommittee(t, f, 7, 2, count)
			combined := make([]*coin.Store, base.CombinedN())
			copy(combined, stores)
			faulty := map[int]simnet.PlayerFunc{}
			for node, mode := range tc.modes {
				faulty[node] = byzantineSubDealer(base, stores[node], mode, int64(90+node))
			}
			results := runReshare(t, base, combined, faulty)

			var honest []int
			for i := 0; i < base.CombinedN(); i++ {
				if _, bad := tc.modes[i]; !bad {
					honest = append(honest, i)
				}
			}
			ref := requireVerdictUnanimity(t, results, honest)
			if !reflect.DeepEqual(ref.Cheaters, tc.wantCheaters) {
				t.Fatalf("cheaters %v, want %v", ref.Cheaters, tc.wantCheaters)
			}
			for _, o := range ref.Quorum {
				for _, c := range tc.wantCheaters {
					if o == c {
						t.Fatalf("convicted dealer %d in quorum %v", o, ref.Quorum)
					}
				}
			}
			for node, j := range base.NewOf {
				if j < 0 {
					continue
				}
				if results[node].Value.(*Result).Silent {
					t.Fatalf("honest new member %d marked Silent", j)
				}
			}
			exposed := exposeNewCommittee(t, base, results, count-2)
			for j, got := range exposed {
				for c := range got {
					if got[c] != values[2+c] {
						t.Fatalf("member %d coin %d: %#x, want %#x despite %s dealer",
							j, c, got[c], values[2+c], name)
					}
				}
			}
		})
	}
}

// TestEquivocalSurvivorVictimGoesSilent: an equivocal dealer that cheats
// only a single new member stays inside the decode budget and survives the
// verdict — but the victim's self-check catches the mismatch, so it joins
// the new committee Silent and the exposure stream stays correct.
func TestEquivocalSurvivorVictimGoesSilent(t *testing.T) {
	f := gf2k.MustNew(32)
	const count = 7
	stores, values := dealOldCommittee(t, f, 7, 2, count)
	newOf := []int{-1, -1, -1, -1, -1, -1, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	cfg := Config{Field: f, OldN: 7, OldT: 2, NewN: 9, NewT: 2, NewOf: newOf, Generation: 1}
	combined := make([]*coin.Store, cfg.CombinedN())
	copy(combined, stores)
	// Dealer 0 equivocates against exactly new member 8 (node 15).
	faulty := map[int]simnet.PlayerFunc{
		0: byzantineSubDealer(cfg, stores[0], byzEquivocalOne, 91),
	}
	results := runReshare(t, cfg, combined, faulty)

	honest := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	ref := requireVerdictUnanimity(t, results, honest)
	victim := results[15].Value.(*Result)
	inQuorum := false
	for _, o := range ref.Quorum {
		if o == 0 {
			inQuorum = true
		}
	}
	if !inQuorum {
		// The single-victim dealer survives the budgeted decode; if the
		// verdict ever rejects it this test needs a new corruption shape.
		t.Fatalf("single-victim equivocal dealer not in quorum %v (cheaters %v)", ref.Quorum, ref.Cheaters)
	}
	if !victim.Silent {
		t.Fatal("victim of surviving equivocal dealer did not self-check into Silent")
	}
	if !victim.Store.Batches()[0].Silent {
		t.Fatal("victim's batch not marked Silent")
	}
	for _, j := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		if results[7+j].Value.(*Result).Silent {
			t.Fatalf("non-victim member %d marked Silent", j)
		}
	}
	// With the victim abstaining, the remaining eight transmitters still
	// carry every exposure — and the victim itself still decodes them.
	exposed := exposeNewCommittee(t, cfg, results, count-2)
	for j, got := range exposed {
		for c := range got {
			if got[c] != values[2+c] {
				t.Fatalf("member %d coin %d mismatch with Silent victim", j, c)
			}
		}
	}
}

// TestReshareStoreMarshalRoundTrip: the store a ceremony produces must
// survive the beacon's persistence path with its universe and generation.
func TestReshareStoreMarshalRoundTrip(t *testing.T) {
	f := gf2k.MustNew(32)
	stores, _ := dealOldCommittee(t, f, 7, 1, 6)
	cfg := Config{
		Field: f, OldN: 7, OldT: 1, NewN: 7, NewT: 1,
		NewOf:      []int{0, 1, 2, 3, 4, 5, 6},
		Generation: 3,
	}
	results := runReshare(t, cfg, stores, nil)
	st := results[0].Value.(*Result).Store
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	re, err := coin.UnmarshalStore(blob)
	if err != nil {
		t.Fatal(err)
	}
	if re.Universe != 7 || re.Generation != 3 {
		t.Fatalf("round trip lost identity: universe=%d generation=%d", re.Universe, re.Generation)
	}
	if re.Remaining() != st.Remaining() {
		t.Fatalf("round trip lost coins: %d != %d", re.Remaining(), st.Remaining())
	}
}

// TestStaleMemberRecovery: an old member that lost its store currency (it
// missed a refill while down — the beacon's ErrEpochMismatch state) passes
// a nil store and participates receive-only. The others brand it a silent
// cheater, the ceremony still succeeds, and the stale member walks away
// with fresh working shares — this IS the recovery path for a daemon that
// can no longer rejoin its cluster.
func TestStaleMemberRecovery(t *testing.T) {
	f := gf2k.MustNew(32)
	const count, stale = 12, 3
	stores, values := dealOldCommittee(t, f, 7, 1, count)
	stores[stale] = nil // its real store is useless; it declares itself stale
	cfg := Config{
		Field: f, OldN: 7, OldT: 1, NewN: 7, NewT: 1,
		NewOf:      []int{0, 1, 2, 3, 4, 5, 6},
		Generation: 1,
	}
	results := runReshare(t, cfg, stores, nil)
	honest := []int{0, 1, 2, 4, 5, 6}
	ref := requireVerdictUnanimity(t, results, honest)
	if len(ref.Cheaters) != 1 || ref.Cheaters[0] != stale {
		t.Fatalf("cheaters = %v, want [%d] (the stale member abstains)", ref.Cheaters, stale)
	}
	// The stale member reached the same verdict and received a store.
	if results[stale].Err != nil {
		t.Fatalf("stale member: %v", results[stale].Err)
	}
	staleRes := results[stale].Value.(*Result)
	if !reflect.DeepEqual(staleRes.Cheaters, ref.Cheaters) || staleRes.Store == nil {
		t.Fatalf("stale member verdict/store mismatch: cheaters %v, store %v",
			staleRes.Cheaters, staleRes.Store != nil)
	}
	// Its fresh shares work: the whole new committee — stale member
	// included — exposes the preserved coin values.
	wantCoins := count - 2
	if ref.Coins != wantCoins {
		t.Fatalf("coins = %d, want %d", ref.Coins, wantCoins)
	}
	streams := exposeNewCommittee(t, cfg, results, wantCoins)
	for j, stream := range streams {
		for c, v := range stream {
			if want := values[2+c]; v != want {
				t.Fatalf("member %d coin %d = %#x, want %#x", j, c, v, want)
			}
		}
	}
}
