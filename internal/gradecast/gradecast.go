// Package gradecast implements Grade-Cast, the "three level-outcome
// primitive" of Feldman–Micali used by Coin-Gen (Fig. 5, step 7): the dealer
// distributes a value, everybody echoes, and this is followed by another
// round of echoes. Each player outputs a value and a confidence in {0,1,2};
// confidence 2 means every honest player saw the same value with confidence
// at least 1.
//
// Guarantees for n ≥ 3t+1:
//
//  1. Honest dealer: every honest player outputs (v, 2).
//  2. If any honest player outputs (v, 2), every honest player outputs
//     (v, conf ≥ 1).
//  3. Any two honest players with confidence ≥ 1 hold the same value.
//
// Coin-Gen needs all n players to grade-cast simultaneously; RunAll
// multiplexes n instances over the same three rounds so the round count
// stays constant.
package gradecast

import (
	"bytes"
	"fmt"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Output is one player's view of one grade-cast instance.
type Output struct {
	// Value is the grade-casted value; nil when Confidence is 0.
	Value []byte
	// Confidence is 0, 1 or 2.
	Confidence int
}

// MinPlayers returns the minimum network size tolerating t faults.
func MinPlayers(t int) int { return 3*t + 1 }

// RunAll executes n simultaneous grade-cast instances, one per player:
// player i is the dealer of instance i and deals myValue. It consumes
// exactly three rounds and returns the outputs indexed by dealer.
func RunAll(nd *simnet.Node, t int, myValue []byte) ([]Output, error) {
	n := nd.N()
	if n < MinPlayers(t) {
		return nil, fmt.Errorf("gradecast: need n ≥ %d for t=%d, have %d", MinPlayers(t), t, n)
	}
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "gradecast")
	defer func() { sp.End(nd.Round()) }()

	// Round 1: every dealer distributes its value.
	nd.SendAll(myValue)
	msgs, err := nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("gradecast round 1: %w", err)
	}
	received := make([][]byte, n) // received[d] = dealer d's value as seen here
	received[nd.Index()] = myValue
	for d, payload := range simnet.FirstFromEach(msgs) {
		received[d] = payload
	}

	// Round 2: echo every dealer's value.
	nd.SendAll(encodeInstanceValues(received))
	msgs, err = nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("gradecast round 2: %w", err)
	}
	// echoes[d] collects, per echoing player, the echoed value of dealer d.
	echoes := collectInstanceValues(n, msgs)
	echoes.add(nd.Index(), received) // count own echo

	// Round 3: per instance, re-echo a value supported by ≥ n−t echoes.
	support := make([][]byte, n)
	for d := 0; d < n; d++ {
		if v, cnt := plurality(echoes.byInstance[d]); cnt >= n-t {
			support[d] = v
		}
	}
	nd.SendAll(encodeInstanceValues(support))
	msgs, err = nd.EndRound()
	if err != nil {
		return nil, fmt.Errorf("gradecast round 3: %w", err)
	}
	finals := collectInstanceValues(n, msgs)
	finals.add(nd.Index(), support)

	out := make([]Output, n)
	for d := 0; d < n; d++ {
		v, cnt := plurality(finals.byInstance[d])
		switch {
		case cnt >= n-t:
			out[d] = Output{Value: v, Confidence: 2}
		case cnt >= t+1:
			out[d] = Output{Value: v, Confidence: 1}
		default:
			out[d] = Output{}
		}
	}
	return out, nil
}

// Run executes a single grade-cast with the given dealer. Non-dealers pass
// value = nil. It consumes exactly three rounds.
func Run(nd *simnet.Node, t, dealer int, value []byte) (Output, error) {
	n := nd.N()
	if n < MinPlayers(t) {
		return Output{}, fmt.Errorf("gradecast: need n ≥ %d for t=%d, have %d", MinPlayers(t), t, n)
	}
	if dealer < 0 || dealer >= n {
		return Output{}, fmt.Errorf("gradecast: invalid dealer %d", dealer)
	}
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "gradecast")
	defer func() { sp.End(nd.Round()) }()

	// Round 1.
	if nd.Index() == dealer {
		nd.SendAll(value)
	}
	msgs, err := nd.EndRound()
	if err != nil {
		return Output{}, fmt.Errorf("gradecast round 1: %w", err)
	}
	var got []byte
	if nd.Index() == dealer {
		got = value
	} else if p, ok := simnet.FirstFromEach(msgs)[dealer]; ok {
		got = p
	}

	// Round 2: echo.
	if got != nil {
		nd.SendAll(got)
	}
	msgs, err = nd.EndRound()
	if err != nil {
		return Output{}, fmt.Errorf("gradecast round 2: %w", err)
	}
	echoes := valuesFrom(msgs)
	if got != nil {
		echoes = append(echoes, got)
	}

	// Round 3.
	var sup []byte
	if v, cnt := plurality(echoes); cnt >= n-t {
		sup = v
	}
	if sup != nil {
		nd.SendAll(sup)
	}
	msgs, err = nd.EndRound()
	if err != nil {
		return Output{}, fmt.Errorf("gradecast round 3: %w", err)
	}
	finals := valuesFrom(msgs)
	if sup != nil {
		finals = append(finals, sup)
	}
	v, cnt := plurality(finals)
	switch {
	case cnt >= n-t:
		return Output{Value: v, Confidence: 2}, nil
	case cnt >= t+1:
		return Output{Value: v, Confidence: 1}, nil
	default:
		return Output{}, nil
	}
}

func valuesFrom(msgs []simnet.Message) [][]byte {
	first := simnet.FirstFromEach(msgs)
	out := make([][]byte, 0, len(first))
	for _, p := range first {
		out = append(out, p)
	}
	return out
}

// plurality returns the most frequent byte string (nil entries skipped) and
// its count. Ties break toward the lexicographically smallest value so all
// honest players resolve them identically.
func plurality(vals [][]byte) ([]byte, int) {
	counts := make(map[string]int, len(vals))
	for _, v := range vals {
		if v == nil {
			continue
		}
		counts[string(v)]++
	}
	var best string
	bestCnt := 0
	for v, c := range counts {
		if c > bestCnt || (c == bestCnt && v < best) {
			best, bestCnt = v, c
		}
	}
	if bestCnt == 0 {
		return nil, 0
	}
	return []byte(best), bestCnt
}

// instanceValues accumulates, per instance, the value contributed by each
// distinct player (at most one per player).
type instanceValues struct {
	byInstance [][][]byte
	seen       []map[int]bool
}

func collectInstanceValues(n int, msgs []simnet.Message) *instanceValues {
	iv := &instanceValues{
		byInstance: make([][][]byte, n),
		seen:       make([]map[int]bool, n),
	}
	for i := range iv.seen {
		iv.seen[i] = make(map[int]bool)
	}
	for from, payload := range simnet.FirstFromEach(msgs) {
		vals, err := decodeInstanceValues(n, payload)
		if err != nil {
			continue // malformed message from a faulty player
		}
		iv.add(from, vals)
	}
	return iv
}

func (iv *instanceValues) add(from int, vals [][]byte) {
	for d, v := range vals {
		if v == nil || iv.seen[d][from] {
			continue
		}
		iv.seen[d][from] = true
		iv.byInstance[d] = append(iv.byInstance[d], v)
	}
}

// encodeInstanceValues frames per-instance values as a sequence of
// (uint16 instance, uint32 length, bytes) records; nil entries are omitted.
func encodeInstanceValues(vals [][]byte) []byte {
	var buf bytes.Buffer
	for d, v := range vals {
		if v == nil {
			continue
		}
		buf.WriteByte(byte(d))
		buf.WriteByte(byte(d >> 8))
		l := len(v)
		buf.WriteByte(byte(l))
		buf.WriteByte(byte(l >> 8))
		buf.WriteByte(byte(l >> 16))
		buf.WriteByte(byte(l >> 24))
		buf.Write(v)
	}
	return buf.Bytes()
}

// decodeInstanceValues parses a frame, rejecting instances ≥ n, duplicate
// instances and truncated records.
func decodeInstanceValues(n int, b []byte) ([][]byte, error) {
	out := make([][]byte, n)
	for len(b) > 0 {
		if len(b) < 6 {
			return nil, fmt.Errorf("gradecast: truncated record header")
		}
		d := int(b[0]) | int(b[1])<<8
		l := int(b[2]) | int(b[3])<<8 | int(b[4])<<16 | int(b[5])<<24
		b = b[6:]
		if d >= n || l < 0 || l > len(b) {
			return nil, fmt.Errorf("gradecast: bad record (instance %d, len %d)", d, l)
		}
		if out[d] != nil {
			return nil, fmt.Errorf("gradecast: duplicate instance %d", d)
		}
		v := b[:l]
		if len(v) == 0 {
			v = []byte{} // distinguish "present, empty" from "absent"
		}
		out[d] = v
		b = b[l:]
	}
	return out, nil
}
