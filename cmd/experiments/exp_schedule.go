package main

import (
	"fmt"

	"repro/internal/conformance"
	"repro/internal/conformance/schedules"
	"repro/internal/simnet"
)

// runE16 — hostile-network conformance: Coin-Gen's verdict and termination
// must be unperturbed by anything the schedule engine can do within the
// fault budget. One honest player (the budget at t=1) is disturbed four
// ways — benign control, delivery jitter, a partition with a timed heal,
// and a crash/recover window — and the paper's properties (clique
// agreement, structural agreement, coin unanimity) are re-asserted at the
// undisturbed players. Each row prints its (scenario-seed, schedule) repro;
// the sampled rows at the bottom additionally print the schedule seed, the
// exact pair the schedules harness and the nightly fuzzer report.
func runE16() {
	sc := conformance.Scenario{Protocol: "coingen", Attack: "honest", N: 7, T: 1, M: 3, Seed: 5}
	const victim = 5

	conditions := []struct {
		name  string
		sched *simnet.Schedule
	}{
		{"benign", nil},
		{"jitter", &simnet.Schedule{Seed: 16, Reorder: true, Delays: []simnet.DelayRule{
			{From: victim, To: simnet.Wildcard, Start: 0, End: 48,
				Dist: simnet.Dist{Kind: simnet.DistUniform, Min: 1, Max: 3}},
		}}},
		{"partition+heal", &simnet.Schedule{Seed: 16, Reorder: true, Partitions: []simnet.PartitionRule{
			{Isolated: []int{victim}, Start: 2, Heal: 6},
		}}},
		{"crash-recover", &simnet.Schedule{Seed: 16, Reorder: true, Crashes: []simnet.CrashRule{
			{Player: victim, Start: 1, Recover: 4},
		}}},
	}

	fmt.Printf("Coin-Gen n=%d t=%d m=%d seed=%d under hostile schedules (victim: player %d)\n\n", sc.N, sc.T, sc.M, sc.Seed, victim)
	fmt.Printf("| condition | verdict | attempts | seed coins | clique | disturbed | schedule |\n")
	fmt.Printf("|---|---|---|---|---|---|---|\n")
	row := func(name string, s *simnet.Schedule) {
		run := sc
		run.Schedule = s
		o, err := conformance.RunCoinGen(run)
		if err == nil {
			err = o.Check()
		}
		if err != nil {
			fmt.Printf("| %s | FAIL | — | — | — | %v | %q |\n", name, s.Disturbed(sc.N), s)
			fmt.Printf("\nFAILURE detail: %v\n", err)
			return
		}
		ref := o.Players[o.Honest[0]]
		fmt.Printf("| %s | PASS | %d | %d | %v | %v | %q |\n",
			name, ref.Res.Attempts, ref.Res.SeedConsumed, ref.Res.Clique, s.Disturbed(sc.N), s)
	}
	for _, c := range conditions {
		row(c.name, c.sched)
	}
	// The harness pathway: sampled schedules, reproducible from the printed
	// (scenario, schedule-seed) pair alone — `schedules.Run(sc, schedSeed)`.
	for k := 0; k < 3; k++ {
		schedSeed := schedules.ScheduleSeed(sc, k)
		row(fmt.Sprintf("sampled schedSeed=%d", schedSeed), schedules.Sample(sc, schedSeed))
	}
	fmt.Printf("\nEvery condition must keep the identical attempt count, seed\n")
	fmt.Printf("consumption, clique and opened coins at the undisturbed players:\n")
	fmt.Printf("the synchronous protocol either absorbs a within-budget fault or\n")
	fmt.Printf("charges its source, never both-ways. Verdicts above are asserted by\n")
	fmt.Printf("the same Check the conformance suite gates on.\n")
}
