package gf2k

import (
	"fmt"
	"math/bits"
)

// findIrreducibleTaps returns the low-order coefficients (everything below
// the x^k term) of the lexicographically smallest irreducible binary
// polynomial of degree k, verified with Rabin's irreducibility test:
//
//	f of degree k is irreducible over GF(2) iff
//	  x^(2^k) ≡ x (mod f), and
//	  gcd(x^(2^(k/p)) − x mod f, f) = 1 for every prime p dividing k.
func findIrreducibleTaps(k int) (uint64, error) {
	if k < 2 || k > 64 {
		return 0, fmt.Errorf("gf2k: degree out of range: %d", k)
	}
	limit := uint64(1) << uint(min(k, 63))
	// The constant term must be 1 (otherwise x divides f).
	for taps := uint64(1); taps < limit; taps += 2 {
		if isIrreducible(k, taps) {
			return taps, nil
		}
	}
	return 0, fmt.Errorf("gf2k: no irreducible polynomial of degree %d found", k)
}

// isIrreducible applies Rabin's test to f = x^k + taps.
func isIrreducible(k int, taps uint64) bool {
	// x^(2^k) mod f must equal x.
	if frobenius(k, taps, k) != 2 {
		return false
	}
	for _, p := range primeDivisors(k) {
		h := frobenius(k, taps, k/p) ^ 2 // x^(2^(k/p)) − x mod f
		if polyGCDWithModulus(k, taps, h) != 1 {
			return false
		}
	}
	return true
}

// frobenius returns x^(2^j) mod f, computed by squaring x (the element with
// bit 1 set) j times modulo f = x^k + taps.
func frobenius(k int, taps uint64, j int) uint64 {
	v := uint64(2) // the polynomial x
	for i := 0; i < j; i++ {
		hi, lo := clmul64(v, v)
		v = reduce128(hi, lo, k, taps)
	}
	return v
}

// reduce128 reduces the 128-bit polynomial (hi, lo) modulo x^k + taps.
func reduce128(hi, lo uint64, k int, taps uint64) uint64 {
	var mhi, mlo uint64
	if k == 64 {
		mhi, mlo = 1, taps
	} else {
		mhi, mlo = 0, taps|(uint64(1)<<k)
	}
	for {
		d := deg128(hi, lo)
		if d < k {
			return lo
		}
		shi, slo := shl128(mhi, mlo, d-k)
		hi ^= shi
		lo ^= slo
	}
}

// polyGCDWithModulus computes gcd(f, h) where f = x^k + taps (degree k,
// possibly overflowing a uint64 for k = 64) and h has degree < k.
// The result is a polynomial of degree < k, returned in a uint64; the gcd is
// 1 exactly when the returned value is 1.
func polyGCDWithModulus(k int, taps uint64, h uint64) uint64 {
	if h == 0 {
		// gcd(f, 0) = f, which has degree k ≥ 2 ≠ 1; report a non-unit.
		return 0
	}
	// First step of Euclid: r = f mod h, bringing both operands below
	// degree k so the rest runs in uint64.
	a := polyModF(k, taps, h) // f mod h
	b := h
	// Invariant: gcd(a, b) = gcd(f, h); loop on plain binary polynomials.
	for a != 0 {
		a, b = polyMod(b, a), a
	}
	return b
}

// polyModF reduces f = x^k + taps modulo h (h ≠ 0, deg h < k).
func polyModF(k int, taps uint64, h uint64) uint64 {
	dh := 63 - bits.LeadingZeros64(h)
	// Fold the x^k term first: x^k mod h by shifting h up repeatedly.
	hi, lo := uint64(0), taps
	if k < 64 {
		lo |= uint64(1) << k
	} else {
		hi = 1
	}
	for {
		d := deg128(hi, lo)
		if d < dh {
			return lo
		}
		shi, slo := shl128(0, h, d-dh)
		hi ^= shi
		lo ^= slo
	}
}

// polyMod returns a mod b for binary polynomials in uint64, b ≠ 0.
func polyMod(a, b uint64) uint64 {
	db := 63 - bits.LeadingZeros64(b)
	for {
		if a == 0 {
			return 0
		}
		da := 63 - bits.LeadingZeros64(a)
		if da < db {
			return a
		}
		a ^= b << (da - db)
	}
}

// primeDivisors returns the distinct prime divisors of n ≥ 2 in increasing
// order.
func primeDivisors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}
