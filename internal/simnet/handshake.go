package simnet

// The peer handshake: every TCP connection between daemons is bound to a
// player identity before a single protocol byte flows. The paper assumes
// private authenticated channels (§2); over a real network that guarantee
// has to be manufactured, and this handshake supplies the authenticated
// half with a versioned HMAC challenge–response keyed by the cluster secret
// from peers.yaml:
//
//	dialer  → HELLO   {version, fromID, toID, configDigest, nonceA}
//	accepter→ WELCOME {version, selfID, nonceB,
//	                   macB = HMAC(secret, "srv"‖nonceA‖nonceB‖selfID‖fromID‖digest)}
//	dialer  → AUTH    {macA = HMAC(secret, "cli"‖nonceA‖nonceB‖fromID‖selfID‖digest)}
//
// Both MACs cover both nonces, both identities and the config digest, so a
// connection only binds when the two processes share the secret, agree on
// the peer config byte-for-byte (minus node-local fields), speak the same
// wire version, and each believes the other is who the roster says. The
// accepter additionally rejects a second live connection claiming an
// already-bound player id (REJECT frame, ErrDuplicatePlayer at the dialer).
//
// Confidentiality is NOT provided: frames travel in the clear. Deploy the
// daemons on a trusted network segment or under an encrypting overlay
// (WireGuard, stunnel); see docs/OPERATIONS.md "Security model".

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
)

// peerWireVersion is the peer-transport wire version. Bump it whenever the
// frame layout or handshake changes incompatibly; mismatched daemons then
// fail their handshake with ErrBadVersion instead of desyncing mid-round.
const peerWireVersion = 1

// Peer-mode frame types. They share the 9-byte [type:1][arg:4][len:4] frame
// header with the single-process TCP test transport (tcp.go) but use a
// disjoint type range so a stray cross-wiring of the two is caught
// immediately.
const (
	framePeerHello byte = iota + 16
	framePeerWelcome
	framePeerAuth
	framePeerReject
	framePeerStatus
	framePeerQuery
	framePeerReply
)

// Handshake failure modes, matchable with errors.Is. Each names the exact
// operator mistake that produces it.
var (
	// ErrBadVersion: the two daemons run incompatible builds.
	ErrBadVersion = errors.New("simnet: peer wire version mismatch")
	// ErrIdentityMismatch: the dialer reached a listener that is not the
	// player the roster maps that address to (or a MAC failed, meaning the
	// remote does not hold the cluster secret for the claimed identity).
	ErrIdentityMismatch = errors.New("simnet: peer identity mismatch")
	// ErrConfigMismatch: the two daemons loaded different peer configs.
	ErrConfigMismatch = errors.New("simnet: peer config digest mismatch")
	// ErrDuplicatePlayer: a live connection for this player id already
	// exists at the accepter — two daemons are running with the same
	// -player index.
	ErrDuplicatePlayer = errors.New("simnet: duplicate player id")
)

var helloMagic = []byte("DPRBGp")

const (
	nonceLen = 16
	macLen   = sha256.Size
)

// helloPayload: magic(6) ‖ version(1) ‖ toID(4) ‖ digest(32) ‖ nonceA(16).
const helloLen = 6 + 1 + 4 + 32 + nonceLen

// welcomePayload: version(1) ‖ nonceB(16) ‖ macB(32).
const welcomeLen = 1 + nonceLen + macLen

// hsMAC computes the handshake MAC for one direction. `role` domain-
// separates the two directions so a reflected MAC never verifies.
func hsMAC(secret []byte, role string, nonceA, nonceB []byte, senderID, receiverID int, digest [32]byte) []byte {
	m := hmac.New(sha256.New, secret)
	m.Write([]byte(role))
	m.Write(nonceA)
	m.Write(nonceB)
	var ids [8]byte
	binary.LittleEndian.PutUint32(ids[0:], uint32(senderID))
	binary.LittleEndian.PutUint32(ids[4:], uint32(receiverID))
	m.Write(ids[:])
	m.Write(digest[:])
	return m.Sum(nil)
}

// dialHandshake runs the dialer side, proving we are `self` and verifying
// the accepter is `to`. The caller is responsible for connection deadlines.
func dialHandshake(conn net.Conn, secret []byte, self, to int, digest [32]byte) error {
	nonceA := make([]byte, nonceLen)
	if _, err := rand.Read(nonceA); err != nil {
		return fmt.Errorf("simnet: handshake nonce: %w", err)
	}
	hello := make([]byte, 0, helloLen)
	hello = append(hello, helloMagic...)
	hello = append(hello, peerWireVersion)
	var to4 [4]byte
	binary.LittleEndian.PutUint32(to4[:], uint32(to))
	hello = append(hello, to4[:]...)
	hello = append(hello, digest[:]...)
	hello = append(hello, nonceA...)
	if err := writeFrame(conn, framePeerHello, self, hello); err != nil {
		return fmt.Errorf("simnet: handshake hello: %w", err)
	}

	typ, arg, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("simnet: handshake welcome: %w", err)
	}
	if typ == framePeerReject {
		return rejectError(arg, string(payload))
	}
	if typ != framePeerWelcome || len(payload) != welcomeLen {
		return fmt.Errorf("%w: unexpected frame %d during welcome", ErrIdentityMismatch, typ)
	}
	if payload[0] != peerWireVersion {
		return fmt.Errorf("%w: we speak v%d, peer %d speaks v%d", ErrBadVersion, peerWireVersion, arg, payload[0])
	}
	if arg != to {
		return fmt.Errorf("%w: dialed player %d but player %d answered", ErrIdentityMismatch, to, arg)
	}
	nonceB := payload[1 : 1+nonceLen]
	macB := payload[1+nonceLen:]
	want := hsMAC(secret, "srv", nonceA, nonceB, to, self, digest)
	if !hmac.Equal(macB, want) {
		return fmt.Errorf("%w: player %d failed to prove identity (wrong secret or config?)", ErrIdentityMismatch, to)
	}
	macA := hsMAC(secret, "cli", nonceA, nonceB, self, to, digest)
	if err := writeFrame(conn, framePeerAuth, self, macA); err != nil {
		return fmt.Errorf("simnet: handshake auth: %w", err)
	}
	return nil
}

// acceptHandshake runs the accepter side, returning the authenticated
// player id of the dialer. The caller is responsible for deadlines and for
// the duplicate-identity policy (this function only binds one connection).
func acceptHandshake(conn net.Conn, secret []byte, self int, digest [32]byte) (int, error) {
	typ, from, payload, err := readFrame(conn)
	if err != nil {
		return -1, fmt.Errorf("simnet: handshake hello: %w", err)
	}
	if typ != framePeerHello || len(payload) != helloLen {
		return -1, fmt.Errorf("%w: first frame must be a peer hello, got type %d", ErrIdentityMismatch, typ)
	}
	p := payload
	if string(p[:6]) != string(helloMagic) {
		return -1, fmt.Errorf("%w: bad hello magic", ErrIdentityMismatch)
	}
	if p[6] != peerWireVersion {
		err := fmt.Errorf("%w: we speak v%d, dialer %d speaks v%d", ErrBadVersion, peerWireVersion, from, p[6])
		rejectPeer(conn, rejectVersion, err.Error())
		return -1, err
	}
	toID := int(binary.LittleEndian.Uint32(p[7:11]))
	if toID != self {
		err := fmt.Errorf("%w: dialer %d thinks this address is player %d, we are player %d",
			ErrIdentityMismatch, from, toID, self)
		rejectPeer(conn, rejectIdentity, err.Error())
		return -1, err
	}
	var theirDigest [32]byte
	copy(theirDigest[:], p[11:43])
	if theirDigest != digest {
		err := fmt.Errorf("%w: dialer %d loaded a different peers.yaml", ErrConfigMismatch, from)
		rejectPeer(conn, rejectConfig, err.Error())
		return -1, err
	}
	nonceA := p[43:]

	nonceB := make([]byte, nonceLen)
	if _, err := rand.Read(nonceB); err != nil {
		return -1, fmt.Errorf("simnet: handshake nonce: %w", err)
	}
	welcome := make([]byte, 0, welcomeLen)
	welcome = append(welcome, peerWireVersion)
	welcome = append(welcome, nonceB...)
	welcome = append(welcome, hsMAC(secret, "srv", nonceA, nonceB, self, from, digest)...)
	if err := writeFrame(conn, framePeerWelcome, self, welcome); err != nil {
		return -1, fmt.Errorf("simnet: handshake welcome: %w", err)
	}

	typ, authFrom, mac, err := readFrame(conn)
	if err != nil {
		return -1, fmt.Errorf("simnet: handshake auth: %w", err)
	}
	if typ != framePeerAuth || authFrom != from || len(mac) != macLen {
		return -1, fmt.Errorf("%w: malformed auth frame from dialer %d", ErrIdentityMismatch, from)
	}
	want := hsMAC(secret, "cli", nonceA, nonceB, from, self, digest)
	if !hmac.Equal(mac, want) {
		err := fmt.Errorf("%w: dialer claiming id %d failed to prove it (wrong secret?)", ErrIdentityMismatch, from)
		rejectPeer(conn, rejectIdentity, err.Error())
		return -1, err
	}
	return from, nil
}

// Reject codes carried in a REJECT frame's arg, mapped back onto the typed
// handshake errors at the dialer.
const (
	rejectVersion = iota + 1
	rejectIdentity
	rejectConfig
	rejectDuplicate
)

// rejectPeer best-effort notifies the dialer why it is being dropped.
func rejectPeer(conn net.Conn, code int, reason string) {
	_ = writeFrame(conn, framePeerReject, code, []byte(reason))
}

// rejectError turns a received REJECT frame into the matching typed error.
func rejectError(code int, reason string) error {
	base := ErrIdentityMismatch
	switch code {
	case rejectVersion:
		base = ErrBadVersion
	case rejectConfig:
		base = ErrConfigMismatch
	case rejectDuplicate:
		base = ErrDuplicatePlayer
	}
	return fmt.Errorf("%w: rejected by peer: %s", base, reason)
}
