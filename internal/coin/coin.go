// Package coin implements sealed shared coins and protocol Coin-Expose
// (Fig. 6). A sealed k-ary coin is a value in GF(2^k) jointly held by the
// players: a designated reconstruction set S (|S| ≥ 3t+1) holds Shamir-style
// shares of a degree-≤t polynomial F, and the coin is F(0). Nobody learns
// the coin before Expose, and no t players can bias it.
//
// Coins come from two places: the trusted-dealer initial seed
// (DealTrusted, the paper's Rabin-style setup used "only once, and for a
// small number of coins", §1.2) and batches produced by Coin-Gen
// (internal/coingen), which share this Batch representation.
package coin

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/bw"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// ErrExhausted is returned when a batch has no unexposed coins left.
var ErrExhausted = errors.New("coin: batch exhausted")

// Source yields sealed shared coins, exposed in lockstep: every honest
// player calls Expose in the same network round and obtains the same
// element. Implementations may consume network rounds.
type Source interface {
	// Expose reveals the next sealed coin.
	Expose(nd *simnet.Node) (gf2k.Element, error)
	// ExposeBit reveals the next coin reduced to one bit (F(0) mod 2).
	ExposeBit(nd *simnet.Node) (byte, error)
	// ExposeMod reveals the next coin reduced mod m into [1, m].
	ExposeMod(nd *simnet.Node, m int) (int, error)
	// Remaining reports how many sealed coins are left.
	Remaining() int
}

// Batch is one player's local state for a batch of sealed coins. All honest
// players hold structurally identical batches (same S, same length, same
// cursor); shares differ per player.
type Batch struct {
	// Field is the coin field GF(2^k).
	Field gf2k.Field
	// T is the fault bound the batch tolerates.
	T int
	// S lists the 0-based indices of the reconstruction set, sorted.
	// Only shares sent by members of S count during exposure.
	S []int
	// Shares[h] is this player's combined share of coin h: the value at
	// x = own-id of the degree-≤T polynomial whose value at 0 is coin h.
	// Players outside S may hold shares too (they simply do not transmit).
	Shares []gf2k.Element
	// Silent marks a player that holds no valid combined shares (e.g. a
	// Coin-Gen participant that failed its self-check because a faulty
	// dealer in the agreed clique gave it bad shares). A silent player
	// still participates in exposure rounds and decodes coins, but never
	// transmits a share — transmitting a known-bad share would consume the
	// Berlekamp–Welch error budget reserved for Byzantine players.
	Silent bool
	// Counters optionally records exposure costs.
	Counters *metrics.Counters
	// Pool, when non-nil, fans the exposure reconstruction (the
	// Berlekamp–Welch scan over |S| shares) out across idle cores. Like
	// Counters it is runtime-only state: never serialized, re-attached
	// after UnmarshalBatch by the owner.
	Pool *parallel.Pool

	next int
	// sids caches the field elements of the members of S. It is built
	// lazily on first exposure (and after UnmarshalBatch, which leaves it
	// nil) and never serialized.
	sids []gf2k.Element
}

var _ Source = (*Batch)(nil)

// Remaining returns the number of unexposed coins left in the batch.
func (b *Batch) Remaining() int { return len(b.Shares) - b.next }

// Cursor returns the index of the next coin to be exposed.
func (b *Batch) Cursor() int { return b.next }

// maxErrors is the decoding budget: ⌊(|S|−T−1)/2⌋ capped at T faulty members.
func (b *Batch) maxErrors() int {
	e := (len(b.S) - b.T - 1) / 2
	if e > b.T {
		e = b.T
	}
	return e
}

// Validate checks the structural invariants needed for exposure to succeed
// against t faulty players.
func (b *Batch) Validate() error {
	if len(b.S) < b.T+2*b.maxErrors()+1 || b.maxErrors() < b.T {
		return fmt.Errorf("coin: reconstruction set of %d cannot tolerate %d faults", len(b.S), b.T)
	}
	for _, idx := range b.S {
		if idx < 0 {
			return fmt.Errorf("coin: negative player index %d in S", idx)
		}
	}
	return nil
}

// Split removes the last `count` unexposed coins from the batch into a new
// batch with the same field, fault bound, reconstruction set and silence
// flag, and a fresh cursor at 0. The receiver keeps the older coins (and
// its cursor); the two halves share the backing share array but cover
// disjoint index ranges. All honest players splitting their structurally
// identical batches with the same count obtain structurally identical
// halves, so a split tail can fund an out-of-band Coin-Gen while the head
// keeps serving exposures.
func (b *Batch) Split(count int) (*Batch, error) {
	if count < 1 || count > b.Remaining() {
		return nil, fmt.Errorf("coin: cannot split %d of %d remaining coins", count, b.Remaining())
	}
	cut := len(b.Shares) - count
	nb := &Batch{
		Field:    b.Field,
		T:        b.T,
		S:        b.S,
		Shares:   b.Shares[cut:],
		Silent:   b.Silent,
		Counters: b.Counters,
		Pool:     b.Pool,
	}
	b.Shares = b.Shares[:cut]
	return nb, nil
}

// Discard advances the exposure cursor past the next `count` unexposed
// coins without consuming a network round or learning their values — the
// catch-up primitive for a player rejoining a running cluster: the coins it
// missed were already opened publicly by the others, so it skips its local
// shares to realign its cursor with theirs (and recovers the public values
// out of band). The discarded shares remain in memory but will never be
// transmitted.
func (b *Batch) Discard(count int) error {
	if count < 0 || count > b.Remaining() {
		return fmt.Errorf("coin: cannot discard %d of %d remaining coins", count, b.Remaining())
	}
	b.next += count
	return nil
}

// Expose reveals the next sealed coin (Fig. 6): members of S send their
// combined share β_i to everyone, and every player interpolates a polynomial
// through the received shares with the Berlekamp–Welch decoder, outputting
// F(0). Consumes exactly one network round.
func (b *Batch) Expose(nd *simnet.Node) (gf2k.Element, error) {
	if b.Remaining() == 0 {
		return 0, ErrExhausted
	}
	h := b.next
	b.next++
	return b.exposeIndex(nd, h)
}

// ExposeAt reveals the coin with index h without touching the sequential
// cursor — the "random access" to the generated bits the paper highlights
// in §1.4 ("As in [2], our scheme also provides 'random access' to the
// bits"). Every honest player must call ExposeAt with the same h in the
// same round. Re-exposing an index yields the same coin; callers are
// responsible for not treating a revealed coin as fresh randomness twice.
func (b *Batch) ExposeAt(nd *simnet.Node, h int) (gf2k.Element, error) {
	if h < 0 || h >= len(b.Shares) {
		return 0, fmt.Errorf("coin: index %d out of range [0,%d)", h, len(b.Shares))
	}
	return b.exposeIndex(nd, h)
}

// exposeIndex runs the Fig. 6 exposure for one share index. Every exposure
// interpolates at (a subset of) the fixed member IDs of S, in S-order, so
// bw.Decode's cached interpolation domain is shared by all coins of the
// batch and by consecutive batches with the same S: the steady-state cost
// of one exposure is a single inversion-free interpolation.
func (b *Batch) exposeIndex(nd *simnet.Node, h int) (gf2k.Element, error) {
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindPhase, "coin-expose")
	defer func() { sp.End(nd.Round()) }()
	if len(b.sids) != len(b.S) {
		b.sids = make([]gf2k.Element, len(b.S))
		for i, idx := range b.S {
			id, err := b.Field.ElementFromID(idx + 1)
			if err != nil {
				return 0, err
			}
			b.sids[i] = id
		}
	}

	inS := false
	for _, idx := range b.S {
		if idx == nd.Index() {
			inS = true
			break
		}
	}
	if inS && b.Silent {
		inS = false
	}
	if inS {
		nd.SendAll(b.Field.AppendElement(nil, b.Shares[h]))
	}
	msgs, err := nd.EndRound()
	if err != nil {
		return 0, fmt.Errorf("coin: expose round: %w", err)
	}

	first := simnet.FirstFromEach(msgs)
	var xs, ys []gf2k.Element
	for i, idx := range b.S {
		var share gf2k.Element
		if idx == nd.Index() {
			if !inS {
				continue
			}
			share = b.Shares[h]
		} else {
			payload, ok := first[idx]
			if !ok {
				continue
			}
			s, rest, err := b.Field.ReadElement(payload)
			if err != nil || len(rest) != 0 {
				continue // malformed share from a faulty player
			}
			share = s
		}
		xs = append(xs, b.sids[i])
		ys = append(ys, share)
	}

	// The error budget adapts to the shares actually received: s silent
	// faulty members shrink the point list to |S|−s but also shrink the
	// number of possible lies to t−s, so ⌊(points−t−1)/2⌋ (capped at t)
	// always covers the remaining errors.
	maxErr := (len(xs) - b.T - 1) / 2
	if maxErr > b.T {
		maxErr = b.T
	}
	if maxErr < 0 {
		maxErr = 0
	}
	res, err := bw.DecodeWith(b.Field, xs, ys, b.T, maxErr, b.Counters, b.Pool)
	if err != nil {
		return 0, fmt.Errorf("coin: expose coin %d: %w", h, err)
	}
	value := poly.Eval(b.Field, res.Poly, 0)
	nd.Tracer().CoinExposed(nd.Index(), h, uint64(value), nd.Round())
	return value, nil
}

// ExposeBit reveals the next coin and reduces it to a single bit, the
// paper's binary coin (Fig. 6 step 3: "Set coin_h = F(0) mod 2").
func (b *Batch) ExposeBit(nd *simnet.Node) (byte, error) {
	e, err := b.Expose(nd)
	if err != nil {
		return 0, err
	}
	return byte(e & 1), nil
}

// ExposeMod reveals the next coin reduced mod m (1-based: result in [1, m]),
// as Coin-Gen's leader election uses it (Fig. 5 step 9: "l ← Coin-Expose
// mod n; if l = 0 then set l = n").
func (b *Batch) ExposeMod(nd *simnet.Node, m int) (int, error) {
	if m <= 0 {
		return 0, fmt.Errorf("coin: invalid modulus %d", m)
	}
	e, err := b.Expose(nd)
	if err != nil {
		return 0, err
	}
	l := int(uint64(e) % uint64(m))
	if l == 0 {
		l = m
	}
	return l, nil
}

// DealTrusted is the trusted-dealer seed setup ([17]-style): a dealer draws
// `count` random coins, shares each with a fresh random degree-t polynomial,
// and hands every player its shares. It returns one Batch per player plus
// (for tests and experiments only) the dealt coin values.
//
// The reconstruction set is the first 3t+1 players, matching Coin-Expose's
// "set S = {P_1, ..., P_{3t+1}} (wlog)".
func DealTrusted(f gf2k.Field, n, t, count int, rnd io.Reader) ([]*Batch, []gf2k.Element, error) {
	if n < 3*t+1 {
		return nil, nil, fmt.Errorf("coin: need n ≥ 3t+1, got n=%d t=%d", n, t)
	}
	if count < 0 {
		return nil, nil, fmt.Errorf("coin: negative coin count %d", count)
	}
	s := make([]int, 3*t+1)
	for i := range s {
		s[i] = i
	}
	batches := make([]*Batch, n)
	for i := range batches {
		batches[i] = &Batch{
			Field:  f,
			T:      t,
			S:      s,
			Shares: make([]gf2k.Element, count),
		}
	}
	values := make([]gf2k.Element, count)
	for h := 0; h < count; h++ {
		secret, err := f.Rand(rnd)
		if err != nil {
			return nil, nil, err
		}
		values[h] = secret
		p, err := poly.Random(f, t, secret, rnd)
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < n; i++ {
			id, err := f.ElementFromID(i + 1)
			if err != nil {
				return nil, nil, err
			}
			batches[i].Shares[h] = poly.Eval(f, p, id)
		}
	}
	return batches, values, nil
}
