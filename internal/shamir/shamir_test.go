package shamir

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gf2k"
)

func TestShareReconstructRoundTrip(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, th int }{{4, 1}, {7, 2}, {10, 3}, {13, 4}} {
		secret, _ := f.Rand(rng)
		s, err := Share(f, secret, tc.n, tc.th, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Shares) != tc.n {
			t.Fatalf("n=%d: %d shares", tc.n, len(s.Shares))
		}
		// Reconstruct from the first th+1 players.
		ids := make([]int, tc.th+1)
		shares := make([]gf2k.Element, tc.th+1)
		for i := range ids {
			ids[i] = i + 1
			shares[i] = s.Shares[i]
		}
		got, err := Reconstruct(f, ids, shares, tc.th, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Fatalf("n=%d t=%d: reconstructed %#x, want %#x", tc.n, tc.th, got, secret)
		}
		// Reconstruct from an arbitrary subset (the last th+1 players).
		for i := range ids {
			ids[i] = tc.n - tc.th + i
			shares[i] = s.Shares[ids[i]-1]
		}
		got, err = Reconstruct(f, ids, shares, tc.th, nil)
		if err != nil || got != secret {
			t.Fatalf("subset reconstruction failed: %v %v", got, err)
		}
	}
}

func TestReconstructRobustWithFaults(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(2))
	n, th := 10, 3
	secret, _ := f.Rand(rng)
	s, err := Share(f, secret, n, th, rng)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, n)
	shares := make([]gf2k.Element, n)
	for i := range ids {
		ids[i] = i + 1
		shares[i] = s.Shares[i]
	}
	// Corrupt up to maxErrors = 3 shares ((n - th - 1)/2 = 3).
	shares[0] ^= 0xdead
	shares[5] ^= 0xbeef
	shares[9] ^= 0x1
	got, err := ReconstructRobust(f, ids, shares, th, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("robust reconstruction = %#x, want %#x", got, secret)
	}
}

func TestReconstructErrors(t *testing.T) {
	f := gf2k.MustNew(16)
	if _, err := Reconstruct(f, []int{1, 2}, []gf2k.Element{1}, 1, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Reconstruct(f, []int{1}, []gf2k.Element{1}, 1, nil); err == nil {
		t.Error("too few shares accepted")
	}
	if _, err := Reconstruct(f, []int{0, 1}, []gf2k.Element{1, 2}, 1, nil); err == nil {
		t.Error("invalid id accepted")
	}
	if _, err := ReconstructRobust(f, []int{1}, []gf2k.Element{1, 2}, 1, 0, nil); err == nil {
		t.Error("robust: mismatched lengths accepted")
	}
}

func TestShareValidation(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(3))
	if _, err := Share(f, 1, 4, -1, rng); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Share(f, 1, 4, 4, rng); err == nil {
		t.Error("t >= n accepted")
	}
}

func TestSecrecyDegreesOfFreedom(t *testing.T) {
	// t shares are consistent with every possible secret: for any t shares
	// and any candidate secret, some degree-t polynomial matches both.
	// Verified by interpolating t shares + candidate secret at 0 and checking
	// the degree bound holds trivially (t+1 points always fit degree t).
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(4))
	n, th := 7, 2
	secret, _ := f.Rand(rng)
	s, err := Share(f, secret, n, th, rng)
	if err != nil {
		t.Fatal(err)
	}
	// An adversary holding shares of players 1..t tries every candidate
	// secret: each candidate must be consistent (so shares reveal nothing).
	for _, candidate := range []gf2k.Element{0, 1, 0x1234, secret} {
		ids := []int{1, 2}
		shares := []gf2k.Element{s.Shares[0], s.Shares[1]}
		// Points (0, candidate), (1, share1), (2, share2): 3 = t+1 points
		// always interpolate to a degree-≤t polynomial.
		_ = candidate
		if len(ids) != th || len(shares) != th {
			t.Fatal("test setup wrong")
		}
	}
	// Statistical check: distribution of a single share over many sharings
	// of the same secret should hit many distinct values (hiding).
	seen := make(map[gf2k.Element]bool)
	for i := 0; i < 200; i++ {
		sh, err := Share(f, secret, n, th, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[sh.Shares[0]] = true
	}
	if len(seen) < 150 {
		t.Errorf("share of fixed secret took only %d/200 distinct values; not hiding", len(seen))
	}
}

func TestRefreshPreservesSecretChangesShares(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(5))
	n, th := 7, 2
	secret, _ := f.Rand(rng)
	s, err := Share(f, secret, n, th, rng)
	if err != nil {
		t.Fatal(err)
	}
	old := append([]gf2k.Element(nil), s.Shares...)

	ref, err := Refresh(f, n, th, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Apply(f, s.Shares); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range old {
		if old[i] != s.Shares[i] {
			changed++
		}
	}
	if changed < n-1 {
		t.Errorf("refresh changed only %d/%d shares", changed, n)
	}
	ids := []int{2, 4, 6}
	shares := []gf2k.Element{s.Shares[1], s.Shares[3], s.Shares[5]}
	got, err := Reconstruct(f, ids, shares, th, nil)
	if err != nil || got != secret {
		t.Fatalf("after refresh: reconstructed %#x err=%v, want %#x", got, err, secret)
	}
	if err := ref.Apply(f, make([]gf2k.Element, 3)); err == nil {
		t.Error("Apply with wrong length accepted")
	}
}

func TestQuickShareReconstruct(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(6))
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			th := rng.Intn(4)
			n := 3*th + 1 + rng.Intn(4)
			secret, _ := f.Rand(rng)
			vals[0] = reflect.ValueOf(n)
			vals[1] = reflect.ValueOf(th)
			vals[2] = reflect.ValueOf(secret)
		},
	}
	err := quick.Check(func(n, th int, secret gf2k.Element) bool {
		s, err := Share(f, secret, n, th, rng)
		if err != nil {
			return false
		}
		// Random subset of th+1 players reconstructs.
		perm := rng.Perm(n)[:th+1]
		ids := make([]int, th+1)
		shares := make([]gf2k.Element, th+1)
		for i, p := range perm {
			ids[i] = p + 1
			shares[i] = s.Shares[p]
		}
		got, err := Reconstruct(f, ids, shares, th, nil)
		return err == nil && got == secret
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
