package beacon

import (
	"sync"
	"time"
)

// tokenBucket is a classic token-bucket rate limiter: capacity `burst`
// tokens, refilled continuously at `rate` tokens per second. allow spends
// one token if available.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	tb := &tokenBucket{
		rate:  rate,
		burst: float64(burst),
		now:   time.Now,
	}
	tb.tokens = tb.burst
	tb.last = tb.now()
	return tb
}

func (tb *tokenBucket) allow() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
