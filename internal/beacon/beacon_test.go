package beacon

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
)

var rndSalt atomic.Int64

// testRand returns a per-player deterministic randomness source. Each call
// for the same player yields a fresh stream (successive refills must not
// deal identical polynomials), which is why the salt counter is mixed in.
func testRand(base int64) func(int) io.Reader {
	return func(i int) io.Reader {
		return rand.New(rand.NewSource(base + int64(i)*1009 + rndSalt.Add(1)*1_000_003))
	}
}

func testConfig(tb testing.TB, batch, threshold, highWater int) Config {
	tb.Helper()
	f, err := gf2k.New(8)
	if err != nil {
		tb.Fatal(err)
	}
	return Config{
		Core: core.Config{
			Field: f, N: 7, T: 1,
			BatchSize: batch, Threshold: threshold, HighWater: highWater,
		},
		Rand: testRand(42),
	}
}

func mustClose(tb testing.TB, s *Service) {
	tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		tb.Fatalf("Close: %v", err)
	}
}

// TestDrawStream drains several batches' worth of coins through a pipelined
// service; every draw must succeed and the refill accounting must add up.
func TestDrawStream(t *testing.T) {
	s, err := New(testConfig(t, 24, 6, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	const draws = 60
	for i := 0; i < draws; i++ {
		if _, err := s.Draw(ctx); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.CoinsDelivered != draws || st.Draws != draws {
		t.Fatalf("stats report %d coins / %d draws, want %d/%d",
			st.CoinsDelivered, st.Draws, draws, draws)
	}
	if st.Refills < 2 {
		t.Fatalf("draining %d coins from a %d-coin seed took only %d refills", draws, 24, st.Refills)
	}
	if st.Remaining < s.cfg.Core.Threshold {
		t.Fatalf("store left with %d coins, below threshold %d", st.Remaining, s.cfg.Core.Threshold)
	}
}

// TestParallelismKnob drives a full service with the compute pool enabled.
// Correctness is checked by the executive itself — every sweep asserts
// cross-player unanimity, so a pool bug that desynced any player would fail
// the draw — and the counters must show the pool genuinely fanned out.
func TestParallelismKnob(t *testing.T) {
	var c metrics.Counters
	cfg := testConfig(t, 24, 6, 16)
	cfg.Parallelism = 4
	cfg.Counters = &c
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	if s.cfg.Core.Pool == nil {
		t.Fatal("Parallelism > 1 did not install a compute pool")
	}
	ctx := context.Background()
	const draws = 60 // forces several pipelined refills through the pool
	for i := 0; i < draws; i++ {
		if _, err := s.Draw(ctx); err != nil {
			t.Fatalf("draw %d with pool: %v", i, err)
		}
	}
	if st := s.Stats(); st.CoinsDelivered != draws {
		t.Fatalf("delivered %d coins, want %d", st.CoinsDelivered, draws)
	}
	if got := c.Snapshot().ParallelTasks; got == 0 {
		t.Fatal("ParallelTasks = 0: the pool was never engaged")
	}
}

// TestParallelismOffLeavesPoolNil pins the default: 0 and 1 mean fully
// serial, with no pool allocated at all.
func TestParallelismOffLeavesPoolNil(t *testing.T) {
	for _, p := range []int{0, 1} {
		cfg := testConfig(t, 24, 6, 0)
		cfg.Parallelism = p
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.cfg.Core.Pool != nil {
			mustClose(t, s)
			t.Fatalf("Parallelism=%d allocated a pool", p)
		}
		mustClose(t, s)
	}
}

// TestPipelinedNoBlocking is the in-package soak: paced clients drain three
// full batches while every refill runs ahead of demand — not one draw may
// wait on a Coin-Gen round.
func TestPipelinedNoBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := testConfig(t, 96, 8, 72)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	// Pace the drain so the high-water headroom (72−8 = 64 coins) buys the
	// out-of-band mint far more wall-clock time than a Coin-Gen needs.
	const draws = 3 * 96
	for i := 0; i < draws; i++ {
		if _, err := s.Draw(ctx); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s.Stats()
	if st.BlockedDraws != 0 {
		t.Fatalf("%d draws blocked on a Coin-Gen round; pipeline failed to stay ahead", st.BlockedDraws)
	}
	if st.BlockingRefills != 0 {
		t.Fatalf("%d blocking refills despite the pipeline", st.BlockingRefills)
	}
	if st.PipelinedRefills < 3 {
		t.Fatalf("only %d pipelined refills after draining %d coins", st.PipelinedRefills, draws)
	}
}

// TestBlockingFallback disables the high-water mark; refills must fall back
// to the blocking path on the serving network and still produce coins.
func TestBlockingFallback(t *testing.T) {
	s, err := New(testConfig(t, 24, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if _, err := s.Draw(ctx); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.BlockingRefills < 1 {
		t.Fatalf("no blocking refills with the pipeline disabled (refills=%d)", st.Refills)
	}
	if st.PipelinedRefills != 0 {
		t.Fatalf("%d pipelined refills with HighWater=0", st.PipelinedRefills)
	}
	if st.BlockedDraws == 0 {
		t.Fatal("blocking refills must account their stalled draws in BlockedDraws")
	}
}

// gatedReader blocks reads on the shared gate channel once armed — it
// freezes Coin-Gen's polynomial dealing at a deterministic point so tests
// can observe the service mid-refill. Unarmed (during trusted setup) it
// passes straight through; the reads counter reports how many reads have
// reached the gate.
type gatedReader struct {
	armed *atomic.Bool
	gate  <-chan struct{}
	reads *atomic.Int64
	r     io.Reader
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if g.armed.Load() {
		g.reads.Add(1)
		<-g.gate
	}
	return g.r.Read(p)
}

// TestBackpressure fills the bounded queue while the executive is pinned
// inside a blocking refill and checks the overflow request is rejected with
// ErrOverloaded — then releases the refill and checks the queued requests
// complete.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var armed atomic.Bool
	var reads atomic.Int64
	cfg := testConfig(t, 24, 6, 0)
	cfg.SeedCoins = 8
	cfg.QueueDepth = 1
	base := cfg.Rand
	cfg.Rand = func(i int) io.Reader {
		return &gatedReader{armed: &armed, gate: gate, reads: &reads, r: base(i)}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	// Exposing coins reads no randomness, so the first two draws run free
	// and drop the store to the threshold.
	for i := 0; i < 2; i++ {
		if _, err := s.Draw(ctx); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	armed.Store(true)
	// The third draw forces a blocking refill, which parks the workers on
	// the gated reader with the executive waiting on them. Once a worker
	// has reached the gate the executive is committed to the refill and
	// can no longer drain the queue.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.Draw(ctx) }() //nolint:errcheck
	waitFor(t, func() bool { return reads.Load() > 0 })
	// Queue capacity is 1: park one more request in the buffer…
	go func() { defer wg.Done(); s.Draw(ctx) }() //nolint:errcheck
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })
	// …and the next must bounce immediately.
	if _, err := s.Draw(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("draw on a full queue: err=%v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Overloaded != 1 {
		t.Fatalf("Overloaded=%d, want 1", st.Overloaded)
	}
	close(gate) // release the refill; the parked draws must now complete
	wg.Wait()
	if st := s.Stats(); st.CoinsDelivered != 4 {
		t.Fatalf("CoinsDelivered=%d after the gate opened, want 4", st.CoinsDelivered)
	}
}

func waitFor(tb testing.TB, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			tb.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRateLimiter checks the service-level token bucket: Burst requests
// pass, the next is rejected with ErrRateLimited.
func TestRateLimiter(t *testing.T) {
	cfg := testConfig(t, 24, 6, 0)
	cfg.Rate = 1e-6 // practically no refill during the test
	cfg.Burst = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := s.Draw(ctx); err != nil {
			t.Fatalf("draw %d within burst: %v", i, err)
		}
	}
	if _, err := s.Draw(ctx); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("draw beyond burst: err=%v, want ErrRateLimited", err)
	}
	if st := s.Stats(); st.RateLimited != 1 {
		t.Fatalf("RateLimited=%d, want 1", st.RateLimited)
	}
}

// TestTokenBucket unit-tests the limiter against a fake clock.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	tb := newTokenBucket(10, 2) // 10 tokens/s, burst 2
	tb.now = func() time.Time { return now }
	tb.tokens = tb.burst
	tb.last = now
	if !tb.allow() || !tb.allow() {
		t.Fatal("burst tokens rejected")
	}
	if tb.allow() {
		t.Fatal("empty bucket allowed a request")
	}
	now = now.Add(100 * time.Millisecond) // exactly one token refilled
	if !tb.allow() {
		t.Fatal("refilled token rejected")
	}
	if tb.allow() {
		t.Fatal("second request on one token allowed")
	}
	now = now.Add(time.Hour) // refill far beyond capacity
	if !tb.allow() || !tb.allow() {
		t.Fatal("bucket did not refill to burst")
	}
	if tb.allow() {
		t.Fatal("bucket exceeded burst capacity")
	}
}

// TestContextCancellation: a pre-cancelled context must abort the draw.
func TestContextCancellation(t *testing.T) {
	s, err := New(testConfig(t, 24, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Draw(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("draw with cancelled context: err=%v, want context.Canceled", err)
	}
}

// TestDrawBits checks packing: nbits random bits LSB-first, unused high
// bits zero, argument validation.
func TestDrawBits(t *testing.T) {
	s, err := New(testConfig(t, 24, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	out, err := s.DrawBits(ctx, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("20 bits packed into %d bytes, want 3", len(out))
	}
	if out[2]&0xF0 != 0 {
		t.Fatalf("unused high bits of last byte not zero: %#x", out[2])
	}
	for _, bad := range []int{0, -1, MaxDrawBits + 1} {
		if _, err := s.DrawBits(ctx, bad); err == nil {
			t.Fatalf("DrawBits(%d) accepted", bad)
		}
	}
}

// TestDrawMod checks the 1-based range and argument validation.
func TestDrawMod(t *testing.T) {
	s, err := New(testConfig(t, 64, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		l, err := s.DrawMod(ctx, 7)
		if err != nil {
			t.Fatal(err)
		}
		if l < 1 || l > 7 {
			t.Fatalf("DrawMod(7) = %d outside [1,7]", l)
		}
	}
	if _, err := s.DrawMod(ctx, 0); err == nil {
		t.Fatal("DrawMod(0) accepted")
	}
}

// TestPersistResume is the §1.2 restart story: shut the beacon down, write
// every player's store, load it back, and keep serving — the trusted dealer
// must never be involved again.
func TestPersistResume(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, 24, 6, 16)
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 30; i++ { // crosses at least one refill
		if _, err := s1.Draw(ctx); err != nil {
			t.Fatalf("session 1 draw %d: %v", i, err)
		}
	}
	if err := s1.Persist(dir); err == nil {
		t.Fatal("Persist on a live service accepted")
	}
	mustClose(t, s1)
	if err := s1.Persist(dir); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	left := s1.Stats().Remaining
	if !HaveStores(dir) {
		t.Fatal("HaveStores sees no stores after Persist")
	}
	if _, err := s1.Draw(ctx); !errors.Is(err, ErrClosed) {
		t.Fatal("draw after Close must report ErrClosed")
	}

	stores, err := LoadStores(dir, cfg.Core.N)
	if err != nil {
		t.Fatalf("LoadStores: %v", err)
	}
	s2, err := Resume(cfg, stores)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer mustClose(t, s2)
	if !s2.Resumed() || !s2.Stats().Resumed {
		t.Fatal("resumed service does not report Resumed")
	}
	if got := s2.Stats().Remaining; got != left {
		t.Fatalf("resumed store holds %d coins, persisted %d", got, left)
	}
	for i := 0; i < 30; i++ { // refills again, funded purely by the restored seed
		if _, err := s2.Draw(ctx); err != nil {
			t.Fatalf("session 2 draw %d: %v", i, err)
		}
	}
	if s2.Stats().Refills < 1 {
		t.Fatal("resumed service never refilled; not self-sufficient")
	}
}

// TestResumeValidation: mismatched store count must be rejected.
func TestResumeValidation(t *testing.T) {
	cfg := testConfig(t, 24, 6, 0)
	if _, err := Resume(cfg, nil); err == nil {
		t.Fatal("Resume with no stores accepted")
	}
}

// TestLoadStoresMissing: a fresh state directory distinguishes itself via
// os.ErrNotExist.
func TestLoadStoresMissing(t *testing.T) {
	dir := t.TempDir()
	if HaveStores(dir) {
		t.Fatal("HaveStores true for an empty directory")
	}
	if _, err := LoadStores(dir, 7); err == nil {
		t.Fatal("LoadStores on an empty directory accepted")
	}
}

// TestConfigValidate covers the service-level configuration checks.
func TestConfigValidate(t *testing.T) {
	valid := testConfig(t, 24, 6, 16)
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"valid", func(*Config) {}, true},
		{"zero field", func(c *Config) { c.Core.Field = gf2k.Field{} }, false},
		{"negative rate", func(c *Config) { c.Rate = -1 }, false},
		{"seed reserve too small", func(c *Config) { c.SeedReserve = 1 }, false},
		{"high water below threshold", func(c *Config) { c.Core.HighWater = 3 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestStatsCounters: with Counters attached, serving draws must account
// protocol traffic.
func TestStatsCounters(t *testing.T) {
	cfg := testConfig(t, 24, 6, 0)
	cfg.Counters = &metrics.Counters{}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	if _, err := s.Draw(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Counters.Messages == 0 {
		t.Fatal("no protocol messages accounted after a draw")
	}
}

// TestConcurrentDraws hammers the service from many goroutines; with a
// deep queue and no limiter every draw must succeed and deliver exactly
// one coin each.
func TestConcurrentDraws(t *testing.T) {
	cfg := testConfig(t, 48, 6, 32)
	cfg.QueueDepth = 128
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, s)
	const clients, each = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, clients*each)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.Draw(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent draw failed: %v", err)
	}
	if st := s.Stats(); st.CoinsDelivered != clients*each {
		t.Fatalf("CoinsDelivered=%d, want %d", st.CoinsDelivered, clients*each)
	}
}
