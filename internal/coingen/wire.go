package coingen

import (
	"fmt"
	"sort"

	"repro/internal/bitgen"
	"repro/internal/poly"
)

// cliqueMsg is the decoded content of a grade-cast from Fig. 5 step 7:
// the sender's clique and, for each member k, the sender's decoded batch
// polynomial F_k.
type cliqueMsg struct {
	// members is the clique C, sorted ascending, |C| ≥ n−2t.
	members []int
	// polys[i] is F of dealer members[i], with exactly t+1 coefficients.
	polys []poly.Poly
}

// encodeCliqueMsg serializes this player's clique and the corresponding
// decoded F polynomials. Format: [count u16] then per member
// [index u16][t+1 field elements].
func encodeCliqueMsg(cfg Config, members []int, view *bitgen.View) ([]byte, error) {
	f := cfg.Field
	buf := make([]byte, 0, 2+len(members)*(2+(cfg.T+1)*f.ByteLen()))
	buf = append(buf, byte(len(members)), byte(len(members)>>8))
	for _, j := range members {
		out := view.Outputs[j]
		if !out.OK {
			return nil, fmt.Errorf("coingen: clique member %d has no decoded polynomial", j)
		}
		buf = append(buf, byte(j), byte(j>>8))
		for c := 0; c <= cfg.T; c++ {
			var coeff = out.F
			if c < len(coeff) {
				buf = f.AppendElement(buf, coeff[c])
			} else {
				buf = f.AppendElement(buf, 0)
			}
		}
	}
	return buf, nil
}

// decodeCliqueMsg parses and validates a grade-cast clique message. It
// enforces Fig. 5 step 10 condition ii (|C_l| ≥ n−2t) along with structural
// sanity: indices in range, strictly sorted (hence unique), exact length.
func decodeCliqueMsg(cfg Config, b []byte) (*cliqueMsg, error) {
	f := cfg.Field
	if len(b) < 2 {
		return nil, fmt.Errorf("coingen: clique message too short")
	}
	count := int(b[0]) | int(b[1])<<8
	b = b[2:]
	if count < cfg.N-2*cfg.T {
		return nil, fmt.Errorf("coingen: clique of %d smaller than n−2t = %d", count, cfg.N-2*cfg.T)
	}
	if count > cfg.N {
		return nil, fmt.Errorf("coingen: clique of %d larger than n", count)
	}
	entry := 2 + (cfg.T+1)*f.ByteLen()
	if len(b) != count*entry {
		return nil, fmt.Errorf("coingen: clique message length %d, want %d", len(b), count*entry)
	}
	msg := &cliqueMsg{
		members: make([]int, 0, count),
		polys:   make([]poly.Poly, 0, count),
	}
	prev := -1
	for i := 0; i < count; i++ {
		rec := b[i*entry : (i+1)*entry]
		idx := int(rec[0]) | int(rec[1])<<8
		if idx <= prev || idx >= cfg.N {
			return nil, fmt.Errorf("coingen: clique member %d out of order or range", idx)
		}
		prev = idx
		coeffs, rest, err := f.ReadElements(rec[2:], cfg.T+1)
		if err != nil || len(rest) != 0 {
			return nil, fmt.Errorf("coingen: bad polynomial for member %d", idx)
		}
		msg.members = append(msg.members, idx)
		msg.polys = append(msg.polys, poly.Poly(coeffs))
	}
	if !sort.IntsAreSorted(msg.members) {
		return nil, fmt.Errorf("coingen: clique members not sorted")
	}
	return msg, nil
}
