// Package shamir implements Shamir secret sharing over GF(2^k) — the
// sharing substrate the paper builds on ("The most common way of achieving
// this is to employ the secret sharing scheme proposed by Shamir [18]", §1.3).
// The secret is the value of a degree-≤t polynomial at the origin and player
// i's share is the value at the field element i.
package shamir

import (
	"fmt"
	"io"

	"repro/internal/bw"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/poly"
)

// Sharing is the dealer-side result of sharing a secret among n players with
// threshold t: any t+1 shares reconstruct, any t reveal nothing.
type Sharing struct {
	// Poly is the sharing polynomial; Poly[0] is the secret.
	Poly poly.Poly
	// Shares[i] is the share of player i+1 (players are 1-based).
	Shares []gf2k.Element
}

// IDs returns the evaluation points 1..n used for n players.
func IDs(f gf2k.Field, n int) ([]gf2k.Element, error) {
	out := make([]gf2k.Element, n)
	for i := 0; i < n; i++ {
		id, err := f.ElementFromID(i + 1)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

// Share splits secret among n players with threshold t (degree-t polynomial)
// using randomness from r. Requires 0 ≤ t < n and n < 2^k.
// Cost: n·t multiplications and additions (one Horner evaluation per player).
func Share(f gf2k.Field, secret gf2k.Element, n, t int, r io.Reader) (Sharing, error) {
	if t < 0 || t >= n {
		return Sharing{}, fmt.Errorf("shamir: invalid threshold t=%d for n=%d", t, n)
	}
	xs, err := IDs(f, n)
	if err != nil {
		return Sharing{}, err
	}
	p, err := poly.Random(f, t, secret, r)
	if err != nil {
		return Sharing{}, err
	}
	return Sharing{Poly: p, Shares: poly.EvalMany(f, p, xs)}, nil
}

// Reconstruct recovers the secret from shares held by the given 1-based
// player ids, assuming all shares are correct. len(ids) must be ≥ t+1.
//
// Interpolation runs over a cached poly.Domain keyed by the first t+1 ids:
// the first reconstruction over a given quorum costs O(t²) multiplications
// plus ONE inversion to build the domain; every later reconstruction over
// the same quorum costs t+1 multiplications and zero inversions.
func Reconstruct(f gf2k.Field, ids []int, shares []gf2k.Element, t int, ctr *metrics.Counters) (gf2k.Element, error) {
	if len(ids) != len(shares) {
		return 0, fmt.Errorf("shamir: %d ids vs %d shares", len(ids), len(shares))
	}
	if len(ids) < t+1 {
		return 0, fmt.Errorf("shamir: need ≥ %d shares, have %d", t+1, len(ids))
	}
	xs := make([]gf2k.Element, t+1)
	for i := 0; i < t+1; i++ {
		x, err := f.ElementFromID(ids[i])
		if err != nil {
			return 0, err
		}
		xs[i] = x
	}
	dom, err := poly.DomainFor(f, xs, ctr)
	if err != nil {
		return 0, err
	}
	return dom.InterpolateAt0(shares[:t+1], ctr)
}

// ReconstructRobust recovers the secret even if up to maxErrors of the
// provided shares are wrong, via Berlekamp–Welch. Requires
// len(ids) ≥ t + 2·maxErrors + 1.
//
// The fault-free cost is one interpolation over bw.Decode's cached prefix
// domain (zero inversions in steady state) plus len(ids)·(t+1)
// multiplications of agreement checking; each actual error adds a Gaussian
// elimination of O((t+2e)³) multiplications.
func ReconstructRobust(f gf2k.Field, ids []int, shares []gf2k.Element, t, maxErrors int, ctr *metrics.Counters) (gf2k.Element, error) {
	if len(ids) != len(shares) {
		return 0, fmt.Errorf("shamir: %d ids vs %d shares", len(ids), len(shares))
	}
	xs := make([]gf2k.Element, len(ids))
	for i, id := range ids {
		x, err := f.ElementFromID(id)
		if err != nil {
			return 0, err
		}
		xs[i] = x
	}
	res, err := bw.Decode(f, xs, shares, t, maxErrors, ctr)
	if err != nil {
		return 0, fmt.Errorf("shamir: robust reconstruction: %w", err)
	}
	return poly.Eval(f, res.Poly, 0), nil
}

// Refresh produces a re-randomization of an existing sharing (proactive
// security, the paper's §1.2 motivation): a fresh degree-t sharing of ZERO
// whose shares are added to the players' existing shares. The secret is
// unchanged, but old and new share sets are statistically independent, so
// an adversary that collects t shares before a refresh and t different
// shares after it still learns nothing.
func Refresh(f gf2k.Field, n, t int, r io.Reader) (Sharing, error) {
	return Share(f, 0, n, t, r)
}

// Apply adds a refresh sharing to existing shares in place.
func (s Sharing) Apply(f gf2k.Field, shares []gf2k.Element) error {
	if len(shares) != len(s.Shares) {
		return fmt.Errorf("shamir: refresh for %d players applied to %d shares", len(s.Shares), len(shares))
	}
	for i := range shares {
		shares[i] = f.Add(shares[i], s.Shares[i])
	}
	return nil
}
