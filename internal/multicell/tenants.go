package multicell

import (
	"sync"
	"time"
)

// tenantTable owns the per-tenant serving state: a token-bucket rate
// limiter and a live-stream count per tenant key. Isolation is the point —
// one tenant exhausting its bucket or its stream quota must not affect any
// other tenant's draws (TestTenantIsolation pins this under -race).
//
// The table is bounded: tenant keys arrive from the network, so an
// attacker inventing fresh keys must not grow the map without limit. Past
// maxTenants distinct keys, new tenants share one overflow bucket (they
// are still rate-limited — collectively — and still count streams against
// the shared slot), which degrades the attacker, not the established
// tenants.
type tenantTable struct {
	mu         sync.Mutex
	rate       float64
	burst      int
	maxStreams int
	maxTenants int
	now        func() time.Time
	tenants    map[string]*tenantState
	overflow   *tenantState
}

type tenantState struct {
	bucket  *tokenBucket
	streams int
}

func newTenantTable(rate float64, burst, maxStreams, maxTenants int, now func() time.Time) *tenantTable {
	if rate > 0 && burst <= 0 {
		burst = 1
	}
	return &tenantTable{
		rate:       rate,
		burst:      burst,
		maxStreams: maxStreams,
		maxTenants: maxTenants,
		now:        now,
		tenants:    make(map[string]*tenantState),
	}
}

// state returns (creating on demand) the tenant's slot, or the shared
// overflow slot once the table is full. The caller holds no lock.
func (t *tenantTable) state(tenant string) *tenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.tenants[tenant]; ok {
		return st
	}
	if len(t.tenants) >= t.maxTenants {
		if t.overflow == nil {
			t.overflow = t.newState()
		}
		return t.overflow
	}
	st := t.newState()
	t.tenants[tenant] = st
	return st
}

func (t *tenantTable) newState() *tenantState {
	st := &tenantState{}
	if t.rate > 0 {
		st.bucket = newTokenBucket(t.rate, t.burst, t.now)
	}
	return st
}

// allow spends one rate-limit token for the tenant (always true when no
// rate is configured).
func (t *tenantTable) allow(tenant string) bool {
	st := t.state(tenant)
	if st.bucket == nil {
		return true
	}
	return st.bucket.allow()
}

// acquireStream claims one live-stream slot for the tenant; the returned
// release must be called exactly once when the stream ends. ok is false
// when the tenant is at its quota.
func (t *tenantTable) acquireStream(tenant string) (release func(), ok bool) {
	st := t.state(tenant)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.maxStreams > 0 && st.streams >= t.maxStreams {
		return nil, false
	}
	st.streams++
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			st.streams--
			t.mu.Unlock()
		})
	}, true
}

// tokenBucket is a classic token bucket: capacity `burst`, refilled
// continuously at `rate` tokens/second. (internal/beacon has a private
// twin guarding one Service's queue; this one guards a tenant across the
// whole cluster, in front of routing.)
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	tb := &tokenBucket{rate: rate, burst: float64(burst), now: now}
	tb.tokens = tb.burst
	tb.last = tb.now()
	return tb
}

func (tb *tokenBucket) allow() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
