package fastfield

// Setup-time polynomial helpers over Z_q (schoolbook; not on the hot path).

// findNTTPrime returns the smallest prime q ≡ 1 (mod size) with q ≥ minQ.
func findNTTPrime(size int, minQ uint32) (uint32, bool) {
	q := uint64(size) + 1
	for q < uint64(minQ) {
		q += uint64(size)
	}
	for ; q < 1<<31; q += uint64(size) {
		if isPrime(uint32(q)) {
			return uint32(q), true
		}
	}
	return 0, false
}

// polySub returns a−b (lengths may differ).
func (f *Field) polySub(a, b []uint32) []uint32 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]uint32, n)
	for i := range out {
		var x, y uint32
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = f.z.sub(x, y)
	}
	return out
}

// polyMulSchool returns a·b by schoolbook multiplication.
func (f *Field) polyMulSchool(a, b []uint32) []uint32 {
	a, b = trim(a), trim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]uint32, len(a)+len(b)-1)
	for i, x := range a {
		if x == 0 {
			continue
		}
		for j, y := range b {
			out[i+j] = f.z.add(out[i+j], f.z.mul(x, y))
		}
	}
	return out
}

// polyMulSchoolTrunc returns a·b mod x^prec.
func (f *Field) polyMulSchoolTrunc(a, b []uint32, prec int) []uint32 {
	out := make([]uint32, prec)
	for i, x := range a {
		if x == 0 || i >= prec {
			continue
		}
		for j, y := range b {
			if i+j >= prec {
				break
			}
			out[i+j] = f.z.add(out[i+j], f.z.mul(x, y))
		}
	}
	return out
}

// polyDivMod returns quotient and remainder of a ÷ b (b ≠ 0).
func (f *Field) polyDivMod(a, b []uint32) (quot, rem []uint32) {
	db := polyDeg(b)
	if db < 0 {
		panic("fastfield: division by zero polynomial")
	}
	rem = append([]uint32(nil), a...)
	da := polyDeg(rem)
	if da < db {
		return nil, rem
	}
	quot = make([]uint32, da-db+1)
	invLead := f.z.inv(b[db])
	for d := da; d >= db; d-- {
		if rem[d] == 0 {
			continue
		}
		c := f.z.mul(rem[d], invLead)
		quot[d-db] = c
		for j := 0; j <= db; j++ {
			rem[d-db+j] = f.z.sub(rem[d-db+j], f.z.mul(c, b[j]))
		}
	}
	return quot, rem[:db]
}

// polyMod returns a mod b.
func (f *Field) polyMod(a, b []uint32) []uint32 {
	_, rem := f.polyDivMod(a, b)
	return rem
}

// polyGCD returns the (non-normalized) gcd of a and b.
func (f *Field) polyGCD(a, b []uint32) []uint32 {
	a, b = trim(a), trim(b)
	for polyDeg(b) >= 0 {
		a, b = b, f.polyMod(a, b)
		b = trim(b)
	}
	return a
}

// polyMulMod returns a·b mod h.
func (f *Field) polyMulMod(a, b, h []uint32) []uint32 {
	return f.polyMod(f.polyMulSchool(a, b), h)
}

// polyPowMod returns a^e mod h.
func (f *Field) polyPowMod(a []uint32, e uint64, h []uint32) []uint32 {
	result := []uint32{1}
	base := f.polyMod(a, h)
	for e > 0 {
		if e&1 == 1 {
			result = f.polyMulMod(result, base, h)
		}
		base = f.polyMulMod(base, base, h)
		e >>= 1
	}
	return result
}
