package coin

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/simnet"
)

// runExposeAll has every player expose `count` coins from its batch and
// returns the exposed sequences; faulty players run the given functions.
func runExposeAll(t *testing.T, batches []*Batch, count int, faulty map[int]simnet.PlayerFunc) []simnet.PlayerResult {
	t.Helper()
	n := len(batches)
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		if f, ok := faulty[i]; ok {
			fns[i] = f
			continue
		}
		b := batches[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			var out []gf2k.Element
			for c := 0; c < count; c++ {
				e, err := b.Expose(nd)
				if err != nil {
					return nil, err
				}
				out = append(out, e)
			}
			return out, nil
		}
	}
	return simnet.Run(nw, fns)
}

func TestDealAndExposeUnanimity(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
		const count = 5
		batches, values, err := DealTrusted(f, tc.n, tc.t, count, rng)
		if err != nil {
			t.Fatal(err)
		}
		results := runExposeAll(t, batches, count, nil)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("n=%d player %d: %v", tc.n, i, r.Err)
			}
			got := r.Value.([]gf2k.Element)
			for h := range values {
				if got[h] != values[h] {
					t.Fatalf("n=%d player %d coin %d: %#x, want %#x", tc.n, i, h, got[h], values[h])
				}
			}
		}
	}
}

func TestExposeWithFaultyShareSenders(t *testing.T) {
	// t members of S send corrupted shares; Berlekamp–Welch absorbs them.
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(2))
	n, tf, count := 7, 2, 4
	batches, values, err := DealTrusted(f, n, tf, count, rng)
	if err != nil {
		t.Fatal(err)
	}
	lie := func(b *Batch) simnet.PlayerFunc {
		return func(nd *simnet.Node) (interface{}, error) {
			for c := 0; c < count; c++ {
				// Send a corrupted share instead of the real one.
				nd.SendAll(b.Field.AppendElement(nil, b.Shares[c]^0xdeadbeef))
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
			return []gf2k.Element(nil), nil
		}
	}
	faulty := map[int]simnet.PlayerFunc{0: lie(batches[0]), 3: lie(batches[3])}
	results := runExposeAll(t, batches, count, faulty)
	for i, r := range results {
		if _, bad := faulty[i]; bad {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for h := range values {
			if got[h] != values[h] {
				t.Fatalf("player %d coin %d: %#x, want %#x", i, h, got[h], values[h])
			}
		}
	}
}

func TestExposeWithSilentMembers(t *testing.T) {
	// t members of S stay silent; still t+2e+1-decodable since |S|=3t+1
	// leaves 2t+1 ≥ t+1 correct shares with zero errors... and the decoder
	// must cope with the shorter point list.
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(3))
	n, tf, count := 7, 2, 3
	batches, values, err := DealTrusted(f, n, tf, count, rng)
	if err != nil {
		t.Fatal(err)
	}
	silent := func(nd *simnet.Node) (interface{}, error) {
		for c := 0; c < count; c++ {
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
		}
		return []gf2k.Element(nil), nil
	}
	faulty := map[int]simnet.PlayerFunc{1: silent, 4: silent}
	results := runExposeAll(t, batches, count, faulty)
	for i, r := range results {
		if _, bad := faulty[i]; bad {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for h := range values {
			if got[h] != values[h] {
				t.Fatalf("player %d coin %d: wrong value", i, h)
			}
		}
	}
}

func TestExposeMalformedShares(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(4))
	n, tf, count := 7, 2, 2
	batches, values, err := DealTrusted(f, n, tf, count, rng)
	if err != nil {
		t.Fatal(err)
	}
	garbage := func(nd *simnet.Node) (interface{}, error) {
		for c := 0; c < count; c++ {
			nd.SendAll([]byte{0x1}) // too short to be an element
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
		}
		return []gf2k.Element(nil), nil
	}
	faulty := map[int]simnet.PlayerFunc{2: garbage}
	results := runExposeAll(t, batches, count, faulty)
	for i, r := range results {
		if _, bad := faulty[i]; bad {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for h := range values {
			if got[h] != values[h] {
				t.Fatalf("player %d coin %d: wrong value", i, h)
			}
		}
	}
}

func TestBatchExhaustion(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(5))
	batches, _, err := DealTrusted(f, 4, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(4)
	fns := make([]simnet.PlayerFunc, 4)
	for i := range fns {
		b := batches[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := b.Expose(nd); err != nil {
				return nil, err
			}
			if _, err := b.Expose(nd); !errors.Is(err, ErrExhausted) {
				return nil, errors.New("exhausted batch did not report ErrExhausted")
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	if batches[0].Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", batches[0].Remaining())
	}
}

func TestExposeBitAndMod(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(6))
	n := 4
	batches, values, err := DealTrusted(f, n, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		b := batches[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			bit, err := b.ExposeBit(nd)
			if err != nil {
				return nil, err
			}
			l, err := b.ExposeMod(nd, n)
			if err != nil {
				return nil, err
			}
			return [2]int{int(bit), l}, nil
		}
	}
	wantBit := int(values[0] & 1)
	wantL := int(uint64(values[1]) % uint64(n))
	if wantL == 0 {
		wantL = n
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([2]int)
		if got[0] != wantBit || got[1] != wantL {
			t.Fatalf("player %d: (bit,l) = %v, want (%d,%d)", i, got, wantBit, wantL)
		}
		if got[1] < 1 || got[1] > n {
			t.Fatalf("leader out of range: %d", got[1])
		}
	}
}

func TestDealTrustedValidation(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(7))
	if _, _, err := DealTrusted(f, 3, 1, 1, rng); err == nil {
		t.Error("n < 3t+1 accepted")
	}
	if _, _, err := DealTrusted(f, 4, 1, -1, rng); err == nil {
		t.Error("negative count accepted")
	}
}

func TestBatchValidate(t *testing.T) {
	f := gf2k.MustNew(16)
	good := &Batch{Field: f, T: 1, S: []int{0, 1, 2, 3}, Shares: make([]gf2k.Element, 1)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	small := &Batch{Field: f, T: 2, S: []int{0, 1, 2}, Shares: nil}
	if err := small.Validate(); err == nil {
		t.Error("undersized S accepted")
	}
	neg := &Batch{Field: f, T: 1, S: []int{-1, 1, 2, 3}}
	if err := neg.Validate(); err == nil {
		t.Error("negative index accepted")
	}
}

func TestStoreDrainsBatchesInOrder(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(8))
	n := 4
	b1, v1, err := DealTrusted(f, n, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	b2, v2, err := DealTrusted(f, n, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]gf2k.Element{}, v1...), v2...)

	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		st := &Store{}
		st.Add(b1[i])
		st.Add(b2[i])
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if st.Remaining() != 4 {
				return nil, errors.New("wrong Remaining")
			}
			var out []gf2k.Element
			for st.Remaining() > 0 {
				e, err := st.Expose(nd)
				if err != nil {
					return nil, err
				}
				out = append(out, e)
			}
			if _, err := st.Expose(nd); !errors.Is(err, ErrExhausted) {
				return nil, errors.New("empty store did not report ErrExhausted")
			}
			return out, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		if len(got) != len(want) {
			t.Fatalf("player %d: %d coins, want %d", i, len(got), len(want))
		}
		for h := range want {
			if got[h] != want[h] {
				t.Fatalf("player %d coin %d: %#x, want %#x", i, h, got[h], want[h])
			}
		}
	}
}

func TestCoinDistributionUniform(t *testing.T) {
	// Sanity: dealt coin bits are roughly balanced (statistical randomness
	// of the source, not a protocol property).
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(9))
	_, values, err := DealTrusted(f, 4, 1, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, v := range values {
		ones += int(v & 1)
	}
	if ones < 800 || ones > 1200 {
		t.Errorf("coin bit bias: %d/2000 ones", ones)
	}
}

func TestExposeAtRandomAccess(t *testing.T) {
	// §1.4: "our scheme also provides 'random access' to the bits" — coins
	// can be revealed in any agreed order, interleaved with sequential use,
	// and re-exposing an index yields the same value.
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(12))
	n := 4
	batches, values, err := DealTrusted(f, n, 1, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		b := batches[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			var out []gf2k.Element
			for _, h := range []int{5, 2, 5} { // out of order, with a repeat
				c, err := b.ExposeAt(nd, h)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			// Sequential cursor untouched: Expose still starts at coin 0.
			c, err := b.Expose(nd)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
			if _, err := b.ExposeAt(nd, 99); err == nil {
				return nil, errors.New("out-of-range index accepted")
			}
			return out, nil
		}
	}
	want := []gf2k.Element{values[5], values[2], values[5], values[0]}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("player %d access %d: %#x, want %#x", i, j, got[j], want[j])
			}
		}
	}
}
