package repro

import (
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as README shows it.
func TestFacadeEndToEnd(t *testing.T) {
	field, err := NewField(32)
	if err != nil {
		t.Fatal(err)
	}
	var ctr Counters
	cfg := Config{Field: field.WithCounters(&ctr), N: 7, T: 1, BatchSize: 16, Counters: &ctr}
	rng := rand.New(rand.NewSource(1))
	gens, err := SetupTrusted(cfg, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 7 {
		t.Fatalf("got %d generators", len(gens))
	}

	nw := NewNetwork(cfg.N, WithCounters(&ctr))
	fns := make([]PlayerFunc, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		fns[i] = func(nd *Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i + 100)))
			out := make([]Element, 0, 20)
			for len(out) < 20 {
				c, err := gens[i].Next(nd, rnd)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		}
	}
	results := Run(nw, fns)
	ref := results[0].Value.([]Element)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]Element)
		for h := range ref {
			if got[h] != ref[h] {
				t.Fatalf("player %d coin %d differs", i, h)
			}
		}
	}
	if ctr.Snapshot().Messages == 0 {
		t.Error("counters recorded nothing")
	}
	st := gens[0].Stats()
	if st.CoinsDelivered != 20 || st.Batches < 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMustNewFieldPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewField(1) did not panic")
		}
	}()
	MustNewField(1)
}
