package obs

import (
	"sync"

	"repro/internal/metrics"
)

// Tracer records spans and events into one or more sinks. A nil *Tracer is
// the nop tracer: every method (including Span methods obtained from it)
// returns immediately without locking or allocating, so call sites never
// need a nil check.
//
// A Tracer is safe for concurrent use; the simnet lockstep runs one
// goroutine per player and all of them share one Tracer. Emission order
// (Event.Seq) is the order in which the tracer's mutex was acquired, which
// for single-player sequences matches program order.
type Tracer struct {
	ctr *metrics.Counters

	mu       sync.Mutex
	sinks    []Sink
	seq      uint64
	nextSpan uint64
	// origin and epoch are stamped onto every emitted event (see
	// Event.Origin/Event.Epoch). Both default to 0: a single-process tracer
	// never sets them and its JSON output is unchanged.
	origin int
	epoch  int
	// stack[player] holds the ids of the player's currently open spans,
	// outermost first. New spans auto-parent to the top of the stack, so
	// protocol modules compose into a hierarchy without threading span
	// handles across package boundaries.
	stack map[int][]uint64
}

// New creates a Tracer writing to the given sinks. ctr, when non-nil, is
// snapshotted at span entry/exit so each span carries its own cost diff —
// phase-scoped attribution of the same counters experiments already diff
// whole-run. Passing no sinks yields a tracer that discards everything
// (useful only in tests; prefer a nil *Tracer for the true zero-cost path).
func New(ctr *metrics.Counters, sinks ...Sink) *Tracer {
	return &Tracer{ctr: ctr, sinks: sinks, stack: make(map[int][]uint64)}
}

// Enabled reports whether events will be recorded. It is the cheap guard
// for call sites that would otherwise do work just to build event fields.
func (t *Tracer) Enabled() bool { return t != nil }

// Counters returns the counters attached at construction (nil for the nop
// tracer).
func (t *Tracer) Counters() *metrics.Counters {
	if t == nil {
		return nil
	}
	return t.ctr
}

// SetOrigin stamps all subsequently emitted events with the given process
// id (the daemon's player id). Call it once at startup, before the first
// span; it exists so per-daemon traces are self-identifying when merged.
func (t *Tracer) SetOrigin(origin int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.origin = origin
	t.mu.Unlock()
}

// SetEpoch stamps all subsequently emitted events with the given beacon
// epoch. Daemons call it at join and after each refill, so every event
// carries the (epoch, round) correlation key.
func (t *Tracer) SetEpoch(epoch int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.epoch = epoch
	t.mu.Unlock()
}

// emitLocked assigns the sequence number, stamps the origin/epoch
// correlation keys, and fans the event out. Caller holds t.mu.
func (t *Tracer) emitLocked(e Event) {
	t.seq++
	e.Seq = t.seq
	e.Origin = t.origin
	e.Epoch = t.epoch
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Emit records a fully formed event, assigning its sequence number. Most
// call sites should prefer the typed helpers below.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitLocked(e)
	t.mu.Unlock()
}

// Span is an open trace span. The zero Span (and any span from a nil
// tracer) is a nop; End on it does nothing. Spans are values, not pointers,
// so opening one allocates nothing beyond the emitted event.
type Span struct {
	t      *Tracer
	id     uint64
	player int
	kind   SpanKind
	name   string
	entry  metrics.Snapshot
}

// Start opens a span for player at the given completed-round count. The
// span auto-parents to the player's innermost open span, building the
// run → protocol → phase hierarchy without explicit plumbing. player -1 is
// the network itself.
func (t *Tracer) Start(player, round int, kind SpanKind, name string) Span {
	if t == nil {
		return Span{}
	}
	var entry metrics.Snapshot
	if t.ctr != nil {
		entry = t.ctr.Snapshot()
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	st := t.stack[player]
	var parent uint64
	if len(st) > 0 {
		parent = st[len(st)-1]
	}
	t.stack[player] = append(st, id)
	t.emitLocked(Event{
		Type: EvSpanBegin, Player: player, Round: round,
		Span: id, Parent: parent, Kind: kind, Name: name,
	})
	t.mu.Unlock()
	return Span{t: t, id: id, player: player, kind: kind, name: name, entry: entry}
}

// ID returns the span's id (0 for the nop span).
func (s Span) ID() uint64 { return s.id }

// End closes the span at the given completed-round count, emitting the
// counter diff observed since Start. Ending a span pops it (and anything
// erroneously left open above it) off its player's stack, so a span leaked
// on an error path cannot corrupt the hierarchy for later spans.
func (s Span) End(round int) {
	if s.t == nil {
		return
	}
	t := s.t
	var cost *metrics.Snapshot
	if t.ctr != nil {
		d := metrics.Diff(s.entry, t.ctr.Snapshot())
		cost = &d
	}
	t.mu.Lock()
	st := t.stack[s.player]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == s.id {
			t.stack[s.player] = st[:i]
			break
		}
	}
	t.emitLocked(Event{
		Type: EvSpanEnd, Player: s.player, Round: round,
		Span: s.id, Kind: s.kind, Name: s.name, Cost: cost,
	})
	t.mu.Unlock()
}

// --- typed event helpers -----------------------------------------------------
//
// Each helper is nil-safe and mirrors one EventType. They exist so call
// sites stay one line and cannot mislabel fields.

// Send records a staged unicast from → to of size bytes during round.
func (t *Tracer) Send(from, to, bytes, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvSend, Player: from, Round: round, From: from, To: to, Bytes: int64(bytes)})
}

// Broadcast records a staged ideal broadcast by from of size bytes.
func (t *Tracer) Broadcast(from, bytes, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvBroadcast, Player: from, Round: round, From: from, To: -1, Bytes: int64(bytes)})
}

// Deliver records one message delivery at the boundary completing round.
func (t *Tracer) Deliver(from, to, bytes, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvDeliver, Player: -1, Round: round, From: from, To: to, Bytes: int64(bytes)})
}

// RoundBoundary records the boundary completing round: delivered messages
// carrying totalBytes of payload were released to their recipients.
func (t *Tracer) RoundBoundary(round, delivered int, totalBytes int64) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvRound, Player: -1, Round: round, Count: int64(delivered), Bytes: totalBytes})
}

// DealerDisqualified records player's local verdict that dealer failed
// verification (or never dealt).
func (t *Tracer) DealerDisqualified(player, dealer, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvDealerBad, Player: player, Round: round, From: dealer})
}

// CliqueFound records that player located a consistency-graph clique of
// the given size.
func (t *Tracer) CliqueFound(player, size, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvClique, Player: player, Round: round, Count: int64(size)})
}

// LeaderElected records a leader draw: attempt is 1-based, leader 0-based.
func (t *Tracer) LeaderElected(player, leader, attempt, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvLeader, Player: player, Round: round, Value: uint64(leader), Count: int64(attempt)})
}

// Decision records a Byzantine-agreement output bit.
func (t *Tracer) Decision(player int, decision byte, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvDecision, Player: player, Round: round, Value: uint64(decision)})
}

// CoinSealed records the assembly of a batch of count sealed coins.
func (t *Tracer) CoinSealed(player, count, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvCoinSealed, Player: player, Round: round, Count: int64(count)})
}

// CoinExposed records the revelation of coin index with the given value.
func (t *Tracer) CoinExposed(player, index int, value uint64, round int) {
	if t == nil {
		return
	}
	t.Emit(Event{Type: EvCoinExposed, Player: player, Round: round, Count: int64(index), Value: value})
}
