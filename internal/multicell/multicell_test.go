package multicell

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/beacon"
	"repro/internal/core"
	"repro/internal/gf2k"
)

// newCellRand returns a fresh domain-separated deterministic randomness
// factory: streams are keyed by (seed, cell, player, per-(cell,player)
// call count). The counter MUST be per (cell, player), not per cell: a
// refill asks every player for randomness and the players' calls are
// goroutine-ordered, so a shared per-cell counter would hand out seeds by
// arrival order and break reproducibility (-race surfaces this). Per pair,
// call k always means the same thing — k=1 the dealer seed, k=j+1 refill j
// — no matter how calls interleave across players or cells. Each factory
// instance owns its own counters, so a reference run built from a second
// instance with the same seed replays cell i's exact streams.
func newCellRand(seed int64, cells int) func(cell, player int) io.Reader {
	var mu sync.Mutex
	calls := make(map[[2]int]int64)
	return func(cell, player int) io.Reader {
		mu.Lock()
		calls[[2]int{cell, player}]++
		k := calls[[2]int{cell, player}]
		mu.Unlock()
		return rand.New(rand.NewSource(seed +
			int64(cell)*7_777_777 +
			int64(player)*1009 +
			k*1_000_003))
	}
}

// testClusterConfig is the shared small-field cluster: GF(2^8), n=7, t=1
// cells with a high-water mark deep enough that refills always pipeline.
func testClusterConfig(tb testing.TB, cells int) Config {
	tb.Helper()
	f, err := gf2k.New(8)
	if err != nil {
		tb.Fatal(err)
	}
	return Config{
		Cells: cells,
		Cell: beacon.Config{
			Core: core.Config{
				Field: f, N: 7, T: 1,
				BatchSize: 96, Threshold: 8, HighWater: 64,
			},
			QueueDepth: 1024,
		},
		CellRand: newCellRand(42, cells),
	}
}

func mustCloseCluster(tb testing.TB, cl *Cluster) {
	tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := cl.Close(ctx); err != nil {
		tb.Fatalf("Close: %v", err)
	}
}

// streamRecorder collects every routed coin by (cell, seq) and detects
// conflicting values for the same position.
type streamRecorder struct {
	mu    sync.Mutex
	cells map[int]map[int64]gf2k.Element
}

func newStreamRecorder() *streamRecorder {
	return &streamRecorder{cells: map[int]map[int64]gf2k.Element{}}
}

func (r *streamRecorder) record(tb testing.TB, b Batch) {
	tb.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.cells[b.Cell]
	if m == nil {
		m = map[int64]gf2k.Element{}
		r.cells[b.Cell] = m
	}
	for i, v := range b.Vals {
		seq := b.Seq + int64(i)
		if prev, ok := m[seq]; ok && prev != v {
			tb.Errorf("cell %d seq %d served twice with different values: %v then %v", b.Cell, seq, prev, v)
		}
		m[seq] = v
	}
}

// verifyAgainstReference replays cell `cell`'s stream on a standalone
// single-cell beacon.Service seeded identically and asserts every recorded
// (seq, value) matches — the "no cross-cell state leakage" conformance
// check: a multi-cell cluster's cell i must be byte-identical to a lone
// Service with cell i's seed, coin for coin.
func (r *streamRecorder) verifyAgainstReference(t *testing.T, cfg Config, cell int) {
	t.Helper()
	r.mu.Lock()
	got := r.cells[cell]
	r.mu.Unlock()
	if len(got) == 0 {
		return
	}
	var max int64 = -1
	for seq := range got {
		if seq > max {
			max = seq
		}
	}
	refRand := newCellRand(42, cfg.Cells)
	refCfg := cfg.Cell
	refCfg.Rand = func(player int) io.Reader { return refRand(cell, player) }
	ref, err := beacon.New(refCfg)
	if err != nil {
		t.Fatalf("reference service for cell %d: %v", cell, err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := ref.Close(ctx); err != nil {
			t.Fatalf("close reference: %v", err)
		}
	}()
	ctx := context.Background()
	stream := make([]gf2k.Element, 0, max+1)
	for int64(len(stream)) <= max {
		n := int(max) + 1 - len(stream)
		if n > beacon.MaxDrawBatch {
			n = beacon.MaxDrawBatch
		}
		vals, seq, err := ref.DrawN(ctx, n)
		if err != nil {
			t.Fatalf("reference draw: %v", err)
		}
		if seq != int64(len(stream)) {
			t.Fatalf("reference stream position %d, want %d", seq, len(stream))
		}
		stream = append(stream, vals...)
	}
	mismatches := 0
	for seq, v := range got {
		if stream[seq] != v {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("cell %d seq %d: cluster served %v, reference stream has %v", cell, seq, v, stream[seq])
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("cell %d: %d/%d coins diverge from the single-cell reference", cell, mismatches, len(got))
	}
}

// TestCellStreamsMatchSingleCellReference is the acceptance conformance
// test: hammer an M-cell cluster with concurrent mixed-tenant traffic
// (forcing several refills per cell), then replay every cell's recorded
// stream against a standalone Service with the same domain-separated seed.
// Any cross-cell state leakage — shared store, shared randomness, a coin
// served under the wrong cell label — shows up as a value mismatch.
func TestCellStreamsMatchSingleCellReference(t *testing.T) {
	const cells = 3
	cfg := testClusterConfig(t, cells)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := newStreamRecorder()
	ctx := context.Background()
	var wg sync.WaitGroup
	tenants := []string{"", "alice", "bob", "carol", "dave", ""}
	const drawsPerClient = 60
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < drawsPerClient; i++ {
				n := 1 + (g+i)%4
				b, err := cl.DrawN(ctx, tenants[g%len(tenants)], n)
				if err != nil {
					t.Errorf("client %d draw %d: %v", g, i, err)
					return
				}
				rec.record(t, b)
			}
		}(g)
	}
	wg.Wait()
	for _, st := range cl.CellStats() {
		if st.Down {
			t.Fatalf("cell %d marked down during a benign run", st.Cell)
		}
	}
	// Reproducibility precondition: every refill ran on the pipelined
	// path (blocking refills would consume the workers' private streams).
	for i, svc := range cl.cells {
		if br := svc.Stats().BlockingRefills; br != 0 {
			t.Fatalf("cell %d fell back to %d blocking refills; high-water mark is misconfigured for reproducibility", i, br)
		}
	}
	mustCloseCluster(t, cl)
	for cell := 0; cell < cells; cell++ {
		rec.verifyAgainstReference(t, cfg, cell)
	}
}

// TestDrawNContiguity pins the DrawN contract: one batch = contiguous
// sequence numbers on one cell, and a tenant's successive draws stay on
// its home cell while that cell is healthy.
func TestDrawNContiguity(t *testing.T) {
	cfg := testClusterConfig(t, 2)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustCloseCluster(t, cl)
	ctx := context.Background()
	home := -1
	next := int64(-1)
	for i := 0; i < 10; i++ {
		b, err := cl.DrawN(ctx, "tenant-x", 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Vals) != 5 {
			t.Fatalf("draw %d returned %d coins, want 5", i, len(b.Vals))
		}
		if home == -1 {
			home = b.Cell
		} else if b.Cell != home {
			t.Fatalf("tenant moved from healthy home cell %d to %d", home, b.Cell)
		}
		if next >= 0 && b.Seq != next {
			t.Fatalf("draw %d starts at seq %d, want %d (batches must be contiguous for a solo client)", i, b.Seq, next)
		}
		next = b.Seq + 5
	}
	if home != cl.ring.Lookup("tenant-x") {
		t.Fatalf("tenant served by cell %d, ring maps it to %d", home, cl.ring.Lookup("tenant-x"))
	}
}

// TestDrawNValidation: a bad batch size must be rejected at the router
// without poisoning any cell's health.
func TestDrawNValidation(t *testing.T) {
	cfg := testClusterConfig(t, 2)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustCloseCluster(t, cl)
	ctx := context.Background()
	for _, n := range []int{0, -1, beacon.MaxDrawBatch + 1} {
		if _, err := cl.DrawN(ctx, "t", n); err == nil {
			t.Fatalf("DrawN(%d) accepted", n)
		}
	}
	if st := cl.RouterStats(); st.CellsDown != 0 {
		t.Fatalf("validation errors marked %d cells down", st.CellsDown)
	}
	if _, err := cl.Draw(ctx, "t"); err != nil {
		t.Fatalf("draw after validation errors: %v", err)
	}
}

// TestConfigValidate covers the router-level configuration contract.
func TestConfigValidate(t *testing.T) {
	base := func(tb testing.TB) Config { return testClusterConfig(tb, 2) }
	cases := []struct {
		name string
		mod  func(*Config)
		ok   bool
	}{
		{"valid", func(*Config) {}, true},
		{"zero cells", func(c *Config) { c.Cells = 0 }, false},
		{"cell rand set directly", func(c *Config) { c.Cell.Rand = func(int) io.Reader { return rand.New(rand.NewSource(1)) } }, false},
		{"cell rate set", func(c *Config) { c.Cell.Rate = 10 }, false},
		{"shallow high water", func(c *Config) { c.Cell.Core.HighWater = 20 }, false},
		{"negative tenant rate", func(c *Config) { c.TenantRate = -1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base(t)
			tc.mod(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("config accepted")
			}
		})
	}
}

// TestCellDownDraining kills one cell under concurrent load. Every
// in-flight draw must either complete with a verifiable (cell, seq, value)
// position or fail with a documented overload error — never hang, never
// return a coin attributed to the wrong cell (the post-run reference
// replay would catch that), and once the router notices, every subsequent
// draw lands on the surviving cells.
func TestCellDownDraining(t *testing.T) {
	const cells = 2
	cfg := testClusterConfig(t, cells)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := newStreamRecorder()
	ctx := context.Background()
	victim := cl.ring.Lookup("tenant-a") // the cell tenant-a's draws home to

	var wg sync.WaitGroup
	var killed atomic.Bool
	var afterKillOnVictim atomic.Int64
	var served, degraded atomic.Int64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := []string{"tenant-a", "tenant-b", ""}[g%3]
			for i := 0; i < 50; i++ {
				b, err := cl.DrawN(ctx, tenant, 2)
				switch {
				case err == nil:
					served.Add(1)
					rec.record(t, b)
					if killed.Load() && b.Cell == victim {
						afterKillOnVictim.Add(1)
					}
				case errors.Is(err, ErrSaturated), errors.Is(err, beacon.ErrOverloaded), errors.Is(err, ErrAllCellsDown):
					degraded.Add(1)
				default:
					t.Errorf("client %d: unexpected error class: %v", g, err)
					return
				}
			}
		}(g)
	}
	// Let the load ramp, then kill the victim cell mid-flight.
	time.Sleep(20 * time.Millisecond)
	killCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := cl.CloseCell(killCtx, victim); err != nil {
		t.Fatalf("CloseCell: %v", err)
	}
	killed.Store(true)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no draw succeeded at all")
	}
	// Draws already in the victim's queue when CloseCell fired are drained
	// by the cell's graceful close — those may complete after the kill flag
	// flips, and the reference replay below proves each one is a genuine
	// position in the victim's stream. Anything beyond a queue's worth
	// would mean routing kept sending new draws to a down cell.
	if n := afterKillOnVictim.Load(); n > int64(cfg.Cell.QueueDepth) {
		t.Fatalf("%d draws served by the killed cell after CloseCell — more than could have been in-flight", n)
	}
	st := cl.RouterStats()
	if st.CellsDown != 1 {
		t.Fatalf("router reports %d cells down, want 1", st.CellsDown)
	}
	// Survivor must still serve, and tenant-a's draws must now shed there.
	b, err := cl.DrawN(ctx, "tenant-a", 1)
	if err != nil {
		t.Fatalf("draw after kill: %v", err)
	}
	if b.Cell == victim {
		t.Fatalf("draw after kill served by the dead cell %d", victim)
	}
	rec.record(t, b)
	mustCloseCluster(t, cl)
	// The decisive wrong-cell check: every recorded coin, including those
	// racing the kill, must sit at its exact position in its cell's
	// reference stream.
	for cell := 0; cell < cells; cell++ {
		rec.verifyAgainstReference(t, cfg, cell)
	}
}

// TestTenantIsolation runs a hostile tenant and a polite tenant
// concurrently under -race: the hostile tenant must exhaust its own token
// bucket, and only its own.
func TestTenantIsolation(t *testing.T) {
	cfg := testClusterConfig(t, 2)
	now := time.Now()
	cfg.now = func() time.Time { return now } // frozen clock: buckets never refill
	cfg.TenantRate = 1
	cfg.TenantBurst = 25
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustCloseCluster(t, cl)
	ctx := context.Background()

	var wg sync.WaitGroup
	var hostileOK, hostileLimited, politeFail atomic.Int64
	wg.Add(2)
	go func() { // hostile: 4× its budget
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_, err := cl.Draw(ctx, "hostile")
			switch {
			case err == nil:
				hostileOK.Add(1)
			case errors.Is(err, ErrRateLimited):
				hostileLimited.Add(1)
			default:
				t.Errorf("hostile: %v", err)
			}
		}
	}()
	go func() { // polite: exactly its budget, concurrently
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := cl.Draw(ctx, "polite"); err != nil {
				politeFail.Add(1)
				t.Errorf("polite draw %d rejected: %v", i, err)
			}
		}
	}()
	wg.Wait()
	if hostileOK.Load() != 25 || hostileLimited.Load() != 75 {
		t.Fatalf("hostile tenant: %d served / %d limited, want 25/75", hostileOK.Load(), hostileLimited.Load())
	}
	if politeFail.Load() != 0 {
		t.Fatalf("polite tenant saw %d rejections while hostile tenant was being limited", politeFail.Load())
	}
	if rl := cl.RouterStats().RateLimited; rl != 75 {
		t.Fatalf("router counted %d rate-limited draws, want 75", rl)
	}
}

// TestStreamQuota: a tenant at its stream cap is rejected; another tenant
// and the same tenant after release are admitted.
func TestStreamQuota(t *testing.T) {
	cfg := testClusterConfig(t, 2)
	cfg.MaxStreamsPerTenant = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustCloseCluster(t, cl)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		done <- cl.Stream(ctx, "alice", 0, func(Coin) error {
			if first {
				first = false
				close(started)
			}
			return nil
		})
	}()
	<-started
	if err := cl.Stream(ctx, "alice", 1, func(Coin) error { return nil }); !errors.Is(err, ErrStreamQuota) {
		t.Fatalf("second alice stream: %v, want ErrStreamQuota", err)
	}
	if err := cl.Stream(ctx, "bob", 3, func(Coin) error { return nil }); err != nil {
		t.Fatalf("bob's stream rejected while alice streams: %v", err)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("alice stream ended with %v, want context.Canceled", err)
	}
	if err := cl.Stream(context.Background(), "alice", 2, func(Coin) error { return nil }); err != nil {
		t.Fatalf("alice stream after release: %v", err)
	}
}

// TestStreamSequences: a bounded stream delivers coins with per-cell
// monotonically increasing sequence numbers, contiguous for a solo client.
func TestStreamSequences(t *testing.T) {
	cfg := testClusterConfig(t, 3)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustCloseCluster(t, cl)
	var coins []Coin
	if err := cl.Stream(context.Background(), "streamer", 12, func(c Coin) error {
		coins = append(coins, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(coins) != 12 {
		t.Fatalf("stream delivered %d coins, want 12", len(coins))
	}
	home := cl.ring.Lookup("streamer")
	for i, c := range coins {
		if c.Cell != home {
			t.Fatalf("coin %d from cell %d, want home cell %d", i, c.Cell, home)
		}
		if c.Seq != int64(i) {
			t.Fatalf("coin %d has seq %d, want %d", i, c.Seq, i)
		}
	}
	if got := cl.RouterStats().StreamsActive; got != 0 {
		t.Fatalf("streams active after completion: %d", got)
	}
}

// TestAllCellsDown: with every cell closed, draws fail with
// ErrAllCellsDown (the 503, not the retryable 429).
func TestAllCellsDown(t *testing.T) {
	cfg := testClusterConfig(t, 2)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := cl.CloseCell(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Draw(ctx, "t"); !errors.Is(err, ErrAllCellsDown) {
		t.Fatalf("draw with all cells down: %v, want ErrAllCellsDown", err)
	}
	mustCloseCluster(t, cl)
	if _, err := cl.Draw(ctx, "t"); !errors.Is(err, ErrClosed) {
		t.Fatalf("draw after Close: %v, want ErrClosed", err)
	}
}
