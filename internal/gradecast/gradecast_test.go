package gradecast

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simnet"
)

// runSingle drives a single-dealer grade-cast for all players; faulty maps a
// player index to alternative behaviour.
func runSingle(t *testing.T, n, tf, dealer int, value []byte, faulty map[int]simnet.PlayerFunc) []simnet.PlayerResult {
	t.Helper()
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		if f, ok := faulty[i]; ok {
			fns[i] = f
			continue
		}
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			var v []byte
			if nd.Index() == dealer {
				v = value
			}
			return Run(nd, tf, dealer, v)
		}
	}
	return simnet.Run(nw, fns)
}

func TestHonestDealerAllConfidence2(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
		results := runSingle(t, tc.n, tc.t, 0, []byte("hello"), nil)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("n=%d player %d: %v", tc.n, i, r.Err)
			}
			out := r.Value.(Output)
			if out.Confidence != 2 || string(out.Value) != "hello" {
				t.Fatalf("n=%d player %d: output %+v, want (hello, 2)", tc.n, i, out)
			}
		}
	}
}

// equivocatingDealer sends different values to each half of the players in
// round 1, echoes inconsistently in rounds 2 and 3.
func equivocatingDealer(tf int) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		n := nd.N()
		for i := 0; i < n; i++ {
			if i == nd.Index() {
				continue
			}
			nd.Send(i, []byte{byte(i % 2)})
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		// Round 2: echo garbage to half the players.
		for i := 0; i < n; i++ {
			if i == nd.Index() {
				continue
			}
			nd.Send(i, []byte{byte(i % 3)})
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		if _, err := nd.EndRound(); err != nil { // silent in round 3
			return nil, err
		}
		return Output{}, nil
	}
}

func TestEquivocatingDealerGradedAgreement(t *testing.T) {
	// Properties 2 and 3 must hold even when the dealer equivocates:
	// if anyone has confidence 2 all have ≥ 1, and all confident values agree.
	for trial := 0; trial < 5; trial++ {
		n, tf := 7, 2
		faulty := map[int]simnet.PlayerFunc{0: equivocatingDealer(tf)}
		results := runSingle(t, n, tf, 0, nil, faulty)
		checkGradedConsistency(t, results, map[int]bool{0: true})
	}
}

func checkGradedConsistency(t *testing.T, results []simnet.PlayerResult, faulty map[int]bool) {
	t.Helper()
	var confident [][]byte
	any2 := false
	all1 := true
	for i, r := range results {
		if faulty[i] {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		out := r.Value.(Output)
		if out.Confidence >= 1 {
			confident = append(confident, out.Value)
		} else {
			all1 = false
		}
		if out.Confidence == 2 {
			any2 = true
		}
	}
	for i := 1; i < len(confident); i++ {
		if !bytes.Equal(confident[i], confident[0]) {
			t.Fatalf("confident players disagree: %q vs %q", confident[0], confident[i])
		}
	}
	if any2 && !all1 {
		t.Fatal("a player has confidence 2 but another honest player has confidence 0")
	}
}

func TestSilentDealerConfidence0(t *testing.T) {
	n, tf := 7, 2
	faulty := map[int]simnet.PlayerFunc{
		3: func(nd *simnet.Node) (interface{}, error) {
			for r := 0; r < 3; r++ {
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
			return Output{}, nil
		},
	}
	results := runSingle(t, n, tf, 3, nil, faulty)
	for i, r := range results {
		if i == 3 {
			continue
		}
		out := r.Value.(Output)
		if out.Confidence != 0 {
			t.Fatalf("player %d: confidence %d for silent dealer, want 0", i, out.Confidence)
		}
	}
}

func TestRunAllHonest(t *testing.T) {
	n, tf := 7, 2
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return RunAll(nd, tf, []byte(fmt.Sprintf("value-%d", nd.Index())))
		}
	}
	results := simnet.Run(nw, fns)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		outs := r.Value.([]Output)
		if len(outs) != n {
			t.Fatalf("player %d: %d outputs", i, len(outs))
		}
		for d, out := range outs {
			want := fmt.Sprintf("value-%d", d)
			if out.Confidence != 2 || string(out.Value) != want {
				t.Fatalf("player %d instance %d: %+v, want (%s, 2)", i, d, out, want)
			}
		}
	}
}

func TestRunAllUsesThreeRounds(t *testing.T) {
	n, tf := 4, 1
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := RunAll(nd, tf, []byte{1}); err != nil {
				return nil, err
			}
			return nd.Round(), nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.(int) != 3 {
			t.Fatalf("player %d consumed %v rounds, want 3", i, r.Value)
		}
	}
}

func TestRunAllWithByzantineDealers(t *testing.T) {
	// t players equivocate across all instances; honest instances must still
	// come out with confidence 2, and the graded-consistency property must
	// hold per instance.
	n, tf := 10, 3
	for trial := 0; trial < 5; trial++ {
		nw := simnet.New(n)
		fns := make([]simnet.PlayerFunc, n)
		faulty := map[int]bool{1: true, 4: true, 8: true}
		for i := 0; i < n; i++ {
			if faulty[i] {
				rng := rand.New(rand.NewSource(int64(5 + trial*100 + i)))
				fns[i] = func(nd *simnet.Node) (interface{}, error) {
					// Random garbage in every round, different per receiver.
					for r := 0; r < 3; r++ {
						for j := 0; j < n; j++ {
							if j == nd.Index() {
								continue
							}
							junk := make([]byte, rng.Intn(20))
							rng.Read(junk)
							nd.Send(j, junk)
						}
						if _, err := nd.EndRound(); err != nil {
							return nil, err
						}
					}
					return []Output(nil), nil
				}
				continue
			}
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				return RunAll(nd, tf, []byte{byte(nd.Index()), 0xaa})
			}
		}
		results := simnet.Run(nw, fns)
		for d := 0; d < n; d++ {
			var confident [][]byte
			for i, r := range results {
				if faulty[i] {
					continue
				}
				if r.Err != nil {
					t.Fatalf("player %d: %v", i, r.Err)
				}
				out := r.Value.([]Output)[d]
				if !faulty[d] {
					want := []byte{byte(d), 0xaa}
					if out.Confidence != 2 || !bytes.Equal(out.Value, want) {
						t.Fatalf("honest dealer %d at player %d: %+v", d, i, out)
					}
				}
				if out.Confidence >= 1 {
					confident = append(confident, out.Value)
				}
			}
			for i := 1; i < len(confident); i++ {
				if !bytes.Equal(confident[i], confident[0]) {
					t.Fatalf("instance %d: confident values disagree", d)
				}
			}
		}
	}
}

func TestParameterValidation(t *testing.T) {
	nw := simnet.New(3) // too small for t=1 (needs 4)
	fns := make([]simnet.PlayerFunc, 3)
	for i := range fns {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := RunAll(nd, 1, []byte{1}); err == nil {
				return nil, fmt.Errorf("RunAll accepted n=3, t=1")
			}
			if _, err := Run(nd, 1, 0, nil); err == nil {
				return nil, fmt.Errorf("Run accepted n=3, t=1")
			}
			if _, err := Run(nd, 0, 7, nil); err == nil {
				return nil, fmt.Errorf("Run accepted out-of-range dealer")
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
}

func TestEncodeDecodeInstanceValues(t *testing.T) {
	vals := make([][]byte, 5)
	vals[0] = []byte("abc")
	vals[3] = []byte{}
	vals[4] = []byte{1, 2, 3, 4}
	enc := encodeInstanceValues(vals)
	dec, err := decodeInstanceValues(5, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if (vals[i] == nil) != (dec[i] == nil) {
			t.Fatalf("index %d: presence mismatch", i)
		}
		if !bytes.Equal(vals[i], dec[i]) {
			t.Fatalf("index %d: %v != %v", i, dec[i], vals[i])
		}
	}
}

func TestDecodeInstanceValuesRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{0x01},                            // truncated header
		{0x09, 0x00, 0x01, 0, 0, 0, 0xff}, // instance 9 ≥ n
		{0x01, 0x00, 0xff, 0, 0, 0},       // length longer than body
		append(encodeInstanceValues([][]byte{{1}}), encodeInstanceValues([][]byte{{2}})...), // duplicate instance
	}
	for i, c := range cases {
		if _, err := decodeInstanceValues(5, c); err == nil {
			t.Errorf("case %d: malformed frame accepted", i)
		}
	}
}

func TestPlurality(t *testing.T) {
	v, c := plurality([][]byte{[]byte("a"), []byte("b"), []byte("a"), nil})
	if string(v) != "a" || c != 2 {
		t.Errorf("plurality = %q,%d want a,2", v, c)
	}
	if v, c := plurality(nil); v != nil || c != 0 {
		t.Errorf("empty plurality = %q,%d", v, c)
	}
	// Deterministic tie-break: lexicographically smallest.
	v, _ = plurality([][]byte{[]byte("b"), []byte("a")})
	if string(v) != "a" {
		t.Errorf("tie-break = %q, want a", v)
	}
}
