// Package simnet simulates the paper's communication model (§2): a
// synchronous network of n players connected by private authenticated
// channels, with an optional ideal broadcast facility (assumed in §3,
// dropped in §4).
//
// Every player runs as a goroutine and advances in lockstep: messages staged
// with Send or Broadcast during round r are delivered, all at once, when
// every active player has called EndRound for round r. Per-run message,
// byte, broadcast and round counts are recorded in a metrics.Counters so
// experiments can verify the paper's communication complexity claims
// exactly rather than approximately.
//
// Byzantine players are ordinary goroutines running adversarial code; they
// may send arbitrary (including inconsistent) messages, stay silent, or halt
// (crash). The ideal Broadcast facility enforces non-equivocation by
// construction, matching the paper's broadcast-channel assumption. Message-
// level attacks by corrupted senders — tampering, dropping, duplicating or
// misdelivering staged traffic — are modelled by an Interceptor installed
// WithInterceptor, which rewrites each staged message at the round boundary
// without breaking lockstep delivery.
//
// Three transports present the same Node API:
//
//   - New: in-memory, all players in one process — the default for tests,
//     experiments and the single-process beacon.
//   - NewTCP: still one process, but every message crosses a real TCP
//     loopback connection; used to validate wire encodings and measure
//     transport overhead.
//   - NewPeer: the multi-process deployment — this process hosts exactly
//     one player, peers over authenticated TCP per a PeerConfig, and the
//     round barrier is stretched across processes with crash-tolerant
//     demotion/promotion (see peer.go and ARCHITECTURE.md §9).
//
// Interceptors apply to the two in-process transports (adversarial tests
// need a vantage point that sees all n players' traffic, which no single
// daemon has); WithRoundTimeout, WithWriteTimeout, WithDialBackoff and
// WithQueryHandler apply to peer networks only, and the remaining Options
// apply everywhere.
package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// ErrHalted is returned by EndRound after the node has halted. Returned
// errors wrap it with the node index and round; match with errors.Is.
var ErrHalted = errors.New("simnet: node has halted")

// ErrMaxRounds is the sentinel for a network that exceeded its round
// budget — almost always a deadlocked or diverging protocol under test.
// The error actually returned is a *RoundLimitError wrapping this sentinel
// with run context (round number, still-active players, staged traffic);
// match with errors.Is(err, ErrMaxRounds).
var ErrMaxRounds = errors.New("simnet: maximum round count exceeded")

// RoundLimitError reports a round-budget overflow with enough context to
// diagnose who stalled: the budget, the players that were still running
// protocol code when it blew (halted players have finished and cannot be
// the culprits), and how much traffic was pending delivery at the fatal
// boundary. It unwraps to ErrMaxRounds.
type RoundLimitError struct {
	// Limit is the configured round budget that was exceeded.
	Limit int
	// Active lists the 0-based indices of players that had not halted —
	// the suspects for a divergent or deadlocked protocol.
	Active []int
	// StagedMsgs and StagedBytes describe the traffic delivered at the
	// boundary that overflowed the budget (0/0 means the protocol was
	// spinning through empty rounds).
	StagedMsgs  int
	StagedBytes int64
}

// Error renders the diagnosis on one line.
func (e *RoundLimitError) Error() string {
	return fmt.Sprintf(
		"simnet: maximum round count exceeded: budget of %d rounds exhausted with players %v still active (%d msgs / %d bytes staged at the fatal boundary)",
		e.Limit, e.Active, e.StagedMsgs, e.StagedBytes)
}

// Unwrap makes errors.Is(err, ErrMaxRounds) hold.
func (e *RoundLimitError) Unwrap() error { return ErrMaxRounds }

// HaltedError reports EndRound being called on a node that already halted,
// identifying the node and its round. It unwraps to ErrHalted.
type HaltedError struct {
	// Player is the 0-based index of the halted node; Round its completed
	// round count when the call was made.
	Player, Round int
}

// Error renders the diagnosis on one line.
func (e *HaltedError) Error() string {
	return fmt.Sprintf("simnet: node %d has halted (round %d)", e.Player, e.Round)
}

// Unwrap makes errors.Is(err, ErrHalted) hold.
func (e *HaltedError) Unwrap() error { return ErrHalted }

// Kind distinguishes how a message was delivered.
type Kind int

const (
	// Unicast is a private point-to-point message.
	Unicast Kind = iota + 1
	// Broadcast was sent through the ideal broadcast facility and is
	// guaranteed identical at all receivers.
	Broadcast
)

// Message is one delivered message.
type Message struct {
	// From is the 0-based index of the sender.
	From int
	// Kind tells whether the message arrived by unicast or ideal broadcast.
	Kind Kind
	// Payload is the message body. Receivers must treat it as read-only.
	Payload []byte

	seq uint64 // global staging order, for deterministic delivery
}

// Deliverable is one staged message copy as presented to an Interceptor at
// the round boundary: the copy of From's message addressed to To.
type Deliverable struct {
	// Round is the 0-based round the message was staged in (the round the
	// boundary is completing).
	Round int
	// From is the sender. The channels are authenticated (§2), so an
	// interceptor cannot forge it: every copy it emits keeps this sender.
	From int
	// To is the recipient of this copy. Broadcast messages appear once per
	// recipient, so a per-copy rewrite of a Broadcast models a corrupted
	// sender equivocating *around* the ideal facility — the facility itself
	// stays non-equivocating for honest senders with no interceptor rule.
	To int
	// Kind records how the message was sent; like From, it is preserved on
	// every emitted copy.
	Kind Kind
	// Payload is the staged body. Copies of the same message share the
	// backing array, so interceptors must treat it as read-only and return
	// fresh slices for tampered copies.
	Payload []byte
}

// Pass returns the deliverable unchanged as a one-element slice — the
// identity result for interceptors that leave a message alone.
func (d Deliverable) Pass() []Deliverable { return []Deliverable{d} }

// Interceptor is the message-level adversary hook. At each round boundary
// the network presents every staged message copy, in deterministic order
// (recipient, then sender, then staging order), and delivers whatever the
// interceptor returns instead: an empty slice drops the copy, multiple
// results duplicate it, and a result with a different To misdelivers it
// (results addressed outside [0, n) are silently dropped). From and Kind are
// preserved regardless of what the interceptor sets them to. Lockstep
// semantics are unaffected: interception happens inside the boundary commit,
// so every player still observes the same round structure.
//
// Intercept is always called with the network lock held, from one goroutine
// at a time, so implementations may keep unguarded state (e.g. a seeded
// *rand.Rand) and stay deterministic.
type Interceptor interface {
	Intercept(d Deliverable) []Deliverable
}

// InterceptorFunc adapts a function to the Interceptor interface.
type InterceptorFunc func(d Deliverable) []Deliverable

// Intercept calls f.
func (f InterceptorFunc) Intercept(d Deliverable) []Deliverable { return f(d) }

// Network is a synchronous network of n nodes.
type Network struct {
	n         int
	maxRounds int
	ctr       *metrics.Counters
	tracer    *obs.Tracer
	icept     Interceptor
	sched     *Schedule
	eng       *schedEngine

	mu        sync.Mutex
	cond      *sync.Cond
	round     int
	arrived   int
	active    int
	seq       uint64
	staging   [][]Message         // staged for the next boundary, indexed by recipient
	deferred  map[int][][]Message // schedule-delayed traffic by delivery round, then recipient
	delivery  [][]Message         // delivered at the last boundary
	nodes     []*Node
	closedErr error

	// TCP transport state (nil for in-memory networks); see tcp.go.
	tcp     *tcpTransport
	tcpDone []int // per-sender done markers received for the current round

	// Multi-process peer transport state (nil outside daemon mode); see
	// peer.go. A peer-mode Network drives exactly one local node and
	// replaces the in-process barrier with the distributed watermark
	// barrier, so the shared-state fields above stay idle.
	pn       *peerNet
	peerOpts peerOptions
}

// Option configures a Network at construction. Options are shared across
// all three transports (New, NewTCP, NewPeer); each transport ignores the
// options that do not apply to it — see the package comment for which
// apply where.
type Option func(*Network)

// WithCounters attaches a metrics sink recording messages, bytes, broadcasts
// and rounds.
func WithCounters(c *metrics.Counters) Option {
	return func(nw *Network) { nw.ctr = c }
}

// WithMaxRounds overrides the default round budget (100000).
func WithMaxRounds(r int) Option {
	return func(nw *Network) { nw.maxRounds = r }
}

// WithTracer attaches an obs.Tracer: the network emits send, broadcast,
// delivery and round-boundary events, and protocol code reaches the same
// tracer through Node.Tracer to mark its phases. A nil tracer (the
// default) keeps the zero-cost path: no locking, no allocation.
func WithTracer(tr *obs.Tracer) Option {
	return func(nw *Network) { nw.tracer = tr }
}

// WithInterceptor installs a message-level adversary (see Interceptor). A
// nil interceptor (the default) keeps the honest fast path: the boundary
// commit performs no extra work and no extra allocation.
func WithInterceptor(ic Interceptor) Option {
	return func(nw *Network) { nw.icept = ic }
}

// WithSchedule installs a hostile-network Schedule (see schedule.go): seeded
// per-edge delivery delays, partitions with timed heals, crash/recover
// windows, and within-round delivery reordering. It applies to all three
// transports at the same staging/commit seam as the Interceptor, AFTER
// interception (the message adversary acts on staged traffic; the network
// adversary then decides when the result arrives). A nil or zero-valued
// schedule is the benign network, byte-identical to not passing the option
// at all. The schedule must Validate against the network size; New panics
// otherwise, since a silently clipped schedule would not reproduce.
func WithSchedule(s *Schedule) Option {
	return func(nw *Network) { nw.sched = s }
}

// New creates a network of n nodes, all active.
func New(n int, opts ...Option) *Network {
	if n < 1 {
		panic(fmt.Sprintf("simnet: invalid network size %d", n))
	}
	nw := &Network{
		n:         n,
		maxRounds: 100000,
		active:    n,
		staging:   make([][]Message, n),
		delivery:  make([][]Message, n),
	}
	nw.cond = sync.NewCond(&nw.mu)
	for _, o := range opts {
		o(nw)
	}
	if err := nw.sched.Validate(n); err != nil {
		panic(err.Error())
	}
	nw.eng = newSchedEngine(nw.sched, n)
	nw.nodes = make([]*Node, n)
	for i := range nw.nodes {
		nw.nodes[i] = &Node{nw: nw, idx: i}
	}
	return nw
}

// N returns the network size.
func (nw *Network) N() int { return nw.n }

// Node returns the handle for the node with 0-based index i.
func (nw *Network) Node(i int) *Node { return nw.nodes[i] }

// Round returns the number of completed rounds.
func (nw *Network) Round() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.round
}

// Tracer returns the attached obs.Tracer (nil when tracing is disabled).
func (nw *Network) Tracer() *obs.Tracer { return nw.tracer }

// activeIndicesLocked lists the nodes that have not halted. Caller holds
// nw.mu.
func (nw *Network) activeIndicesLocked() []int {
	out := make([]int, 0, nw.active)
	for i, nd := range nw.nodes {
		if !nd.halted {
			out = append(out, i)
		}
	}
	return out
}

// interceptStagingLocked rewrites the staged traffic through the installed
// Interceptor. Messages are presented in deterministic order — recipient,
// then (sender, staging order) — and the copies the interceptor returns are
// restaged with fresh sequence numbers in emission order, so a fixed seed
// reproduces the identical post-attack delivery. Caller holds nw.mu.
func (nw *Network) interceptStagingLocked() {
	out := make([][]Message, nw.n)
	for to := 0; to < nw.n; to++ {
		msgs := nw.staging[to]
		sort.Slice(msgs, func(a, b int) bool {
			if msgs[a].From != msgs[b].From {
				return msgs[a].From < msgs[b].From
			}
			return msgs[a].seq < msgs[b].seq
		})
		for _, m := range msgs {
			res := nw.icept.Intercept(Deliverable{
				Round:   nw.round,
				From:    m.From,
				To:      to,
				Kind:    m.Kind,
				Payload: m.Payload,
			})
			for _, d := range res {
				if d.To < 0 || d.To >= nw.n {
					continue // misdelivery off the network is a drop
				}
				out[d.To] = append(out[d.To], Message{
					From:    m.From, // authenticated channel: sender is not forgeable
					Kind:    m.Kind,
					Payload: d.Payload,
					seq:     nw.seq,
				})
				nw.seq++
			}
		}
	}
	nw.staging = out
}

// applyScheduleLocked runs the schedule engine over the staged traffic at
// the boundary of the current round: fresh messages are dropped (crash
// windows), deferred to a later boundary (delays, partitions), or kept;
// deferred traffic that has come due is merged back in. Copy indices — the
// per-edge occurrence numbers that key jitter samples — are assigned in
// canonical (From, seq) order so they are identical across transports and
// goroutine interleavings. Caller holds nw.mu.
func (nw *Network) applyScheduleLocked() {
	r := nw.round
	for to := 0; to < nw.n; to++ {
		msgs := nw.staging[to]
		if len(msgs) == 0 {
			continue
		}
		sort.Slice(msgs, func(a, b int) bool {
			if msgs[a].From != msgs[b].From {
				return msgs[a].From < msgs[b].From
			}
			return msgs[a].seq < msgs[b].seq
		})
		occ := make(map[int]int, nw.n)
		keep := msgs[:0]
		for _, m := range msgs {
			c := occ[m.From]
			occ[m.From] = c + 1
			at, drop := nw.eng.fate(r, m.From, to, c)
			if drop {
				continue
			}
			if at > r {
				if nw.deferred == nil {
					nw.deferred = make(map[int][][]Message)
				}
				slot := nw.deferred[at]
				if slot == nil {
					slot = make([][]Message, nw.n)
					nw.deferred[at] = slot
				}
				slot[to] = append(slot[to], m)
				continue
			}
			keep = append(keep, m)
		}
		nw.staging[to] = keep
	}
	// Deferred messages keep their original (older) sequence numbers, so
	// after the canonical sort below they deliver ahead of same-sender
	// fresh traffic — a delayed FIFO channel, not a shuffled one.
	if due, ok := nw.deferred[r]; ok {
		for to, msgs := range due {
			nw.staging[to] = append(nw.staging[to], msgs...)
		}
		delete(nw.deferred, r)
	}
}

// commitLocked delivers all staged messages and advances the round.
// Caller holds nw.mu.
func (nw *Network) commitLocked() {
	if nw.icept != nil {
		nw.interceptStagingLocked()
	}
	if nw.eng != nil {
		nw.applyScheduleLocked()
	}
	for i := range nw.staging {
		msgs := nw.staging[i]
		sort.Slice(msgs, func(a, b int) bool {
			if msgs[a].From != msgs[b].From {
				return msgs[a].From < msgs[b].From
			}
			return msgs[a].seq < msgs[b].seq
		})
		if nw.eng != nil {
			nw.staging[i] = nw.eng.reorder(nw.round, i, msgs)
		}
	}
	nw.delivery = nw.staging
	nw.staging = make([][]Message, nw.n)
	nw.round++
	nw.arrived = 0
	if nw.tcpDone != nil {
		for i := range nw.tcpDone {
			nw.tcpDone[i] = 0
		}
	}
	if nw.ctr != nil {
		nw.ctr.AddRounds(1)
	}
	if nw.tracer != nil {
		// Delivery and boundary events carry the index of the round the
		// messages were staged in (the just-completed round), matching the
		// Round field on the senders' EvSend events.
		completed := nw.round - 1
		delivered := 0
		var totalBytes int64
		for to, msgs := range nw.delivery {
			for _, m := range msgs {
				nw.tracer.Deliver(m.From, to, len(m.Payload), completed)
				delivered++
				totalBytes += int64(len(m.Payload))
			}
		}
		nw.tracer.RoundBoundary(completed, delivered, totalBytes)
	}
	if nw.round > nw.maxRounds && nw.closedErr == nil {
		staged, stagedBytes := 0, int64(0)
		for _, msgs := range nw.delivery {
			staged += len(msgs)
			for _, m := range msgs {
				stagedBytes += int64(len(m.Payload))
			}
		}
		nw.closedErr = &RoundLimitError{
			Limit:       nw.maxRounds,
			Active:      nw.activeIndicesLocked(),
			StagedMsgs:  staged,
			StagedBytes: stagedBytes,
		}
	}
	nw.cond.Broadcast()
}

// Node is one player's endpoint in the network. A Node must be used from a
// single goroutine.
type Node struct {
	nw     *Network
	idx    int
	round  int
	outbox []stagedMsg
	halted bool
}

type stagedMsg struct {
	to  int // -1 for broadcast
	msg Message
}

// Index returns the node's 0-based index. The paper's 1-based player id is
// Index()+1.
func (nd *Node) Index() int { return nd.idx }

// Tracer returns the network's obs.Tracer (nil when tracing is disabled).
// Protocol modules fetch it here to mark their phases, so configuring one
// WithTracer instruments the whole stack.
func (nd *Node) Tracer() *obs.Tracer { return nd.nw.tracer }

// N returns the network size.
func (nd *Node) N() int { return nd.nw.n }

// Round returns the node's current (0-based) round number.
func (nd *Node) Round() int { return nd.round }

// Send stages a private message to node `to` (0-based) for delivery at the
// next round boundary. Sending to self is allowed.
func (nd *Node) Send(to int, payload []byte) {
	if nd.halted {
		panic("simnet: Send after Halt")
	}
	if to < 0 || to >= nd.nw.n {
		panic(fmt.Sprintf("simnet: Send to invalid node %d", to))
	}
	nd.outbox = append(nd.outbox, stagedMsg{
		to:  to,
		msg: Message{From: nd.idx, Kind: Unicast, Payload: payload},
	})
	if nd.nw.ctr != nil {
		nd.nw.ctr.AddMessages(1)
		nd.nw.ctr.AddBytes(int64(len(payload)))
	}
	if nd.nw.tracer != nil {
		nd.nw.tracer.Send(nd.idx, to, len(payload), nd.round)
	}
}

// SendAll stages the same private message to every node except the sender.
// This is the paper's point-to-point substitute for announcing a value
// ("every time a player needs to announce a message, (s)he can only
// distribute it to each of the other players individually", §4).
func (nd *Node) SendAll(payload []byte) {
	for i := 0; i < nd.nw.n; i++ {
		if i == nd.idx {
			continue
		}
		nd.Send(i, payload)
	}
}

// Broadcast stages a message through the ideal broadcast facility: every
// node (including the sender) receives an identical copy, and equivocation
// is impossible by construction. Only §3 protocols, which assume a broadcast
// channel, may use this. Cost accounting charges n messages of the payload
// size, plus one broadcast invocation.
func (nd *Node) Broadcast(payload []byte) {
	if nd.halted {
		panic("simnet: Broadcast after Halt")
	}
	nd.outbox = append(nd.outbox, stagedMsg{
		to:  -1,
		msg: Message{From: nd.idx, Kind: Broadcast, Payload: payload},
	})
	if nd.nw.ctr != nil {
		nd.nw.ctr.AddBroadcasts(1)
		nd.nw.ctr.AddMessages(int64(nd.nw.n))
		nd.nw.ctr.AddBytes(int64(nd.nw.n) * int64(len(payload)))
	}
	if nd.nw.tracer != nil {
		nd.nw.tracer.Broadcast(nd.idx, len(payload), nd.round)
	}
}

// EndRound flushes this node's staged messages, waits for every other
// active node to end the round, and returns the messages delivered to this
// node, ordered by sender index (ties by send order).
func (nd *Node) EndRound() ([]Message, error) {
	nw := nd.nw
	if nw.pn != nil {
		return nw.pn.endRound(nd)
	}
	if nw.tcp != nil {
		// Socket writes happen outside the lock: the reader goroutines
		// need the lock to drain, and a full socket buffer must not
		// deadlock the barrier.
		if err := nw.tcpFlush(nd); err != nil {
			return nil, err
		}
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nd.halted {
		return nil, &HaltedError{Player: nd.idx, Round: nd.round}
	}
	if nw.closedErr != nil {
		return nil, nw.closedErr
	}
	if nw.tcp != nil {
		nw.stageLocalTCP(nd)
	} else {
		for _, s := range nd.outbox {
			s.msg.seq = nw.seq
			nw.seq++
			if s.to >= 0 {
				nw.staging[s.to] = append(nw.staging[s.to], s.msg)
			} else {
				for i := 0; i < nw.n; i++ {
					nw.staging[i] = append(nw.staging[i], s.msg)
				}
			}
		}
		nd.outbox = nd.outbox[:0]
	}

	myRound := nd.round
	nw.arrived++
	if nw.arrived == nw.active && nw.tcpReadyLocked() {
		nw.commitLocked()
	}
	for nw.round <= myRound && nw.closedErr == nil {
		nw.cond.Wait()
	}
	if nw.round <= myRound {
		return nil, nw.closedErr
	}
	nd.round++
	return nw.delivery[nd.idx], nil
}

// Halt removes the node from the network: it stops participating in round
// barriers and its pending messages are discarded. Halt is idempotent.
// A halted player models a crash fault (and is how the orchestrator retires
// players whose protocol function returned).
func (nd *Node) Halt() {
	nw := nd.nw
	if nw.pn != nil {
		// Peer mode has no shared barrier to release — the other players
		// live in other processes, and their barriers demote us once our
		// done markers stop arriving. Just retire the local node.
		nd.halted = true
		nd.outbox = nil
		return
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nd.halted {
		return
	}
	nd.halted = true
	nd.outbox = nil
	nw.active--
	if nw.active > 0 && nw.arrived == nw.active && nw.tcpReadyLocked() {
		nw.commitLocked()
	} else if nw.active == 0 {
		nw.cond.Broadcast()
	}
}

// tcpReadyLocked reports whether every active node's end-of-round markers
// for the current round have been processed (always true for in-memory
// networks). Caller holds nw.mu.
func (nw *Network) tcpReadyLocked() bool {
	if nw.tcp == nil {
		return true
	}
	for i, nd := range nw.nodes {
		if nd.halted {
			continue
		}
		if nw.tcpDone[i] < nw.n-1 {
			return false
		}
	}
	return true
}

// FirstFromEach indexes delivered messages by sender, keeping only the first
// message from each sender — the common shape for protocols where every
// player announces exactly one value per round.
func FirstFromEach(msgs []Message) map[int][]byte {
	out := make(map[int][]byte, len(msgs))
	for _, m := range msgs {
		if _, ok := out[m.From]; !ok {
			out[m.From] = m.Payload
		}
	}
	return out
}

// PlayerFunc is one player's protocol code. It may return a protocol output
// and an error; the orchestrator halts the player's node when it returns.
type PlayerFunc func(nd *Node) (interface{}, error)

// PlayerResult is the outcome of one player's run.
type PlayerResult struct {
	Value interface{}
	Err   error
}

// Run executes fns[i] on node i concurrently and waits for all to finish.
// len(fns) must equal the network size. Each node is halted when its
// function returns, so stragglers do not block the round barrier.
func Run(nw *Network, fns []PlayerFunc) []PlayerResult {
	if len(fns) != nw.n {
		panic(fmt.Sprintf("simnet: %d player funcs for %d nodes", len(fns), nw.n))
	}
	results := make([]PlayerResult, nw.n)
	var wg sync.WaitGroup
	for i := range fns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nd := nw.Node(i)
			defer nd.Halt()
			v, err := fns[i](nd)
			results[i] = PlayerResult{Value: v, Err: err}
		}(i)
	}
	wg.Wait()
	return results
}
