// Package bw implements the Berlekamp–Welch decoder referenced throughout
// the paper (§2: "Methods such as the Berlekamp-Welch decoder [5] can be used
// to implement this operation"; Figs. 4 and 6 use it to interpolate through
// share sets containing up to t values contributed by faulty players).
//
// Given n points of which at most e are in error, with n ≥ t + 2e + 1, Decode
// recovers the unique polynomial of degree ≤ t agreeing with at least n−e of
// the points, or reports that no such polynomial exists.
package bw

import (
	"errors"
	"fmt"

	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// ErrNoCodeword is returned when the points are not within maxErrors of any
// polynomial of the stated degree.
var ErrNoCodeword = errors.New("bw: no polynomial within error bound")

// Result is the output of a successful decode.
type Result struct {
	// Poly is the recovered polynomial of degree ≤ t.
	Poly poly.Poly
	// ErrorIndexes lists the positions i where ys[i] ≠ Poly(xs[i]),
	// in increasing order.
	ErrorIndexes []int
}

// Decode recovers the unique polynomial of degree ≤ degree that agrees with
// at least len(xs)−maxErrors of the points (xs[i], ys[i]). It requires
// len(xs) ≥ degree + 2·maxErrors + 1 and pairwise-distinct xs.
//
// The happy path (zero errors) is detected first with a single
// interpolation through the first degree+1 points, which keeps the cost at
// "one polynomial interpolation" in the fault-free runs the paper's
// amortized analysis assumes. That interpolation runs over a cached
// poly.Domain, so repeated decodes over the same point set — every round
// of Batch-VSS, Bit-Gen and Coin-Expose — pay no per-call inversions and
// no Lagrange setup.
func Decode(f gf2k.Field, xs, ys []gf2k.Element, degree, maxErrors int, ctr *metrics.Counters) (Result, error) {
	return DecodeWith(f, xs, ys, degree, maxErrors, ctr, nil)
}

// evalChunk is the fixed number of points one candidate-evaluation task
// covers. Chunking by a constant — never by pool width — keeps the task
// boundaries, and therefore the exact field-op schedule, identical at every
// parallelism level.
const evalChunk = 16

// DecodeWith is Decode with an optional parallel.Pool: the candidate-
// evaluation scan (testing the interpolant against all n points) and, on
// the error path, the Berlekamp–Welch matrix construction and elimination
// fan out across the pool's workers. A nil pool is the plain serial
// Decode. Results are identical at every width: each task writes only its
// own chunk/row and outputs are combined in index order.
func DecodeWith(f gf2k.Field, xs, ys []gf2k.Element, degree, maxErrors int, ctr *metrics.Counters, pl *parallel.Pool) (Result, error) {
	n := len(xs)
	if len(ys) != n {
		return Result{}, fmt.Errorf("bw: %d xs vs %d ys", n, len(ys))
	}
	if degree < 0 || maxErrors < 0 {
		return Result{}, fmt.Errorf("bw: negative degree (%d) or error bound (%d)", degree, maxErrors)
	}
	if n < degree+2*maxErrors+1 {
		return Result{}, fmt.Errorf("bw: need ≥ %d points for degree %d with %d errors, have %d",
			degree+2*maxErrors+1, degree, maxErrors, n)
	}

	// Fast path: interpolate through the first degree+1 points and test the
	// rest. Succeeds whenever there are no errors at all. The prefix domain
	// is cached across calls, so in steady state this performs zero field
	// inversions.
	dom, err := poly.DomainFor(f, xs[:degree+1], ctr)
	if err != nil {
		return Result{}, err
	}
	p, err := dom.Interpolate(ys[:degree+1], ctr)
	if err != nil {
		return Result{}, err
	}
	if idx := disagreements(f, p, xs, ys, pl); len(idx) == 0 {
		return Result{Poly: p}, nil
	}

	if maxErrors == 0 {
		return Result{}, ErrNoCodeword
	}

	p, err = solve(f, xs, ys, degree, maxErrors, ctr, pl)
	if err != nil {
		return Result{}, err
	}
	idx := disagreements(f, p, xs, ys, pl)
	if len(idx) > maxErrors {
		return Result{}, ErrNoCodeword
	}
	return Result{Poly: p, ErrorIndexes: idx}, nil
}

// solve runs the Berlekamp–Welch linear system at the full error bound e:
// find E(x) = x^e + Σ_{j<e} E_j x^j and Q(x) of degree ≤ degree+e with
// Q(x_i) = y_i·E(x_i) for all i, then return Q/E.
func solve(f gf2k.Field, xs, ys []gf2k.Element, degree, e int, ctr *metrics.Counters, pl *parallel.Pool) (poly.Poly, error) {
	n := len(xs)
	qLen := degree + e + 1 // unknown coefficients of Q
	unknowns := qLen + e   // plus the e non-leading coefficients of E

	// Build the augmented matrix: one row per point. Rows are independent,
	// so they fan out across the pool; each task touches only its own row.
	// Σ_j Q_j x^j  +  y·Σ_{j<e} E_j x^j  =  y·x^e.
	m := newMatrix(n, unknowns)
	pl.ForEach(n, func(i int) {
		xp := gf2k.Element(1)
		for j := 0; j < qLen; j++ {
			m.set(i, j, xp)
			if j < qLen-1 {
				xp = f.Mul(xp, xs[i])
			}
		}
		xp = gf2k.Element(1)
		for j := 0; j < e; j++ {
			m.set(i, qLen+j, f.Mul(ys[i], xp))
			xp = f.Mul(xp, xs[i])
		}
		// xp is now x^e.
		m.setRHS(i, f.Mul(ys[i], xp))
	})

	sol, ok := m.solve(f, pl)
	if !ok {
		return nil, ErrNoCodeword
	}
	if ctr != nil {
		// The linear solve replaces the plain interpolation; count it as one
		// interpolation-equivalent for the paper's cost accounting.
		ctr.AddInterpolations(1)
	}

	q := poly.Poly(sol[:qLen])
	ePoly := make(poly.Poly, e+1)
	copy(ePoly, sol[qLen:])
	ePoly[e] = 1 // monic

	quot, rem, err := polyDiv(f, q, ePoly)
	if err != nil {
		return nil, err
	}
	if rem.Degree() >= 0 {
		return nil, ErrNoCodeword
	}
	if quot.Degree() > degree {
		return nil, ErrNoCodeword
	}
	return quot, nil
}

// disagreements returns indices where p(xs[i]) != ys[i], in increasing
// order. With a pool, the scan fans out in fixed-size chunks; each task
// appends to its own chunk's list and the lists concatenate in chunk order,
// so the result (and the per-point field-op schedule) is width-invariant.
func disagreements(f gf2k.Field, p poly.Poly, xs, ys []gf2k.Element, pl *parallel.Pool) []int {
	n := len(xs)
	chunks := parallel.Chunks(n, evalChunk)
	if chunks <= 1 || pl.Width() == 1 {
		var idx []int
		for i := range xs {
			if poly.Eval(f, p, xs[i]) != ys[i] {
				idx = append(idx, i)
			}
		}
		return idx
	}
	perChunk := make([][]int, chunks)
	pl.ForEach(chunks, func(c int) {
		lo, hi := c*evalChunk, (c+1)*evalChunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if poly.Eval(f, p, xs[i]) != ys[i] {
				perChunk[c] = append(perChunk[c], i)
			}
		}
	})
	var idx []int
	for _, part := range perChunk {
		idx = append(idx, part...)
	}
	return idx
}

// polyDiv returns quotient and remainder of a ÷ b (b ≠ 0).
func polyDiv(f gf2k.Field, a, b poly.Poly) (quot, rem poly.Poly, err error) {
	db := b.Degree()
	if db < 0 {
		return nil, nil, errors.New("bw: division by zero polynomial")
	}
	rem = a.Clone()
	da := rem.Degree()
	if da < db {
		return poly.Poly{}, rem, nil
	}
	quot = make(poly.Poly, da-db+1)
	invLead := f.Inv(b[db])
	for d := da; d >= db; d-- {
		if rem[d] == 0 {
			continue
		}
		c := f.Mul(rem[d], invLead)
		quot[d-db] = c
		for j := 0; j <= db; j++ {
			rem[d-db+j] = f.Add(rem[d-db+j], f.Mul(c, b[j]))
		}
	}
	return quot, rem, nil
}

// matrix is a dense augmented matrix over GF(2^k).
type matrix struct {
	rows, cols int // cols excludes the RHS column
	a          [][]gf2k.Element
}

func newMatrix(rows, cols int) *matrix {
	a := make([][]gf2k.Element, rows)
	backing := make([]gf2k.Element, rows*(cols+1))
	for i := range a {
		a[i], backing = backing[:cols+1], backing[cols+1:]
	}
	return &matrix{rows: rows, cols: cols, a: a}
}

func (m *matrix) set(r, c int, v gf2k.Element) { m.a[r][c] = v }
func (m *matrix) setRHS(r int, v gf2k.Element) { m.a[r][m.cols] = v }

// solve performs Gaussian elimination and back-substitution, assigning zero
// to free variables. It returns false if the system is inconsistent. The
// per-pivot row eliminations are independent of each other and fan out
// across the pool; every width performs the identical field operations.
func (m *matrix) solve(f gf2k.Field, pl *parallel.Pool) ([]gf2k.Element, bool) {
	pivotCol := make([]int, 0, m.rows) // column of each pivot row
	row := 0
	for col := 0; col < m.cols && row < m.rows; col++ {
		// Find a pivot.
		pr := -1
		for r := row; r < m.rows; r++ {
			if m.a[r][col] != 0 {
				pr = r
				break
			}
		}
		if pr == -1 {
			continue
		}
		m.a[row], m.a[pr] = m.a[pr], m.a[row]
		inv := f.Inv(m.a[row][col])
		for c := col; c <= m.cols; c++ {
			m.a[row][c] = f.Mul(m.a[row][c], inv)
		}
		pivot := m.a[row]
		pl.ForEach(m.rows, func(r int) {
			if r == row || m.a[r][col] == 0 {
				return
			}
			factor := m.a[r][col]
			for c := col; c <= m.cols; c++ {
				m.a[r][c] = f.Add(m.a[r][c], f.Mul(factor, pivot[c]))
			}
		})
		pivotCol = append(pivotCol, col)
		row++
	}
	// Inconsistency: a zero row with nonzero RHS.
	for r := row; r < m.rows; r++ {
		if m.a[r][m.cols] != 0 {
			return nil, false
		}
	}
	sol := make([]gf2k.Element, m.cols)
	for r, c := range pivotCol {
		sol[c] = m.a[r][m.cols]
	}
	return sol, true
}
