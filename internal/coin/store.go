package coin

import (
	"repro/internal/gf2k"
	"repro/internal/simnet"
)

// Store is a per-player FIFO of coin batches. It is itself a Source,
// draining batches in order; every honest player must Add structurally
// identical batches in the same order for exposures to stay in lockstep.
// The bootstrap generator (internal/core) keeps one Store per player and
// refills it by running Coin-Gen whenever Remaining drops below its
// threshold (§1.2: "Once the number of remaining coins drops beneath a
// certain level, a new batch is generated").
type Store struct {
	batches []*Batch
}

var _ Source = (*Store)(nil)

// Add appends a batch to the store.
func (s *Store) Add(b *Batch) {
	s.batches = append(s.batches, b)
}

// Remaining returns the total number of unexposed coins across all batches.
func (s *Store) Remaining() int {
	total := 0
	for _, b := range s.batches {
		total += b.Remaining()
	}
	return total
}

// Expose reveals the next sealed coin from the oldest non-empty batch.
func (s *Store) Expose(nd *simnet.Node) (gf2k.Element, error) {
	for len(s.batches) > 0 && s.batches[0].Remaining() == 0 {
		s.batches = s.batches[1:]
	}
	if len(s.batches) == 0 {
		return 0, ErrExhausted
	}
	return s.batches[0].Expose(nd)
}

// ExposeBit reveals the next coin reduced to one bit.
func (s *Store) ExposeBit(nd *simnet.Node) (byte, error) {
	e, err := s.Expose(nd)
	if err != nil {
		return 0, err
	}
	return byte(e & 1), nil
}

// ExposeMod reveals the next coin reduced mod m into [1, m].
func (s *Store) ExposeMod(nd *simnet.Node, m int) (int, error) {
	for len(s.batches) > 0 && s.batches[0].Remaining() == 0 {
		s.batches = s.batches[1:]
	}
	if len(s.batches) == 0 {
		return 0, ErrExhausted
	}
	return s.batches[0].ExposeMod(nd, m)
}
