package obs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// genStream builds a synthetic per-daemon event stream: strictly increasing
// local Seq, events scattered across epochs and rounds (including replayed
// earlier rounds of later epochs, as a rejoining daemon's backfill emits),
// and locally numbered spans that collide across streams on purpose.
func genStream(rng *rand.Rand, origin, n int) []Event {
	types := []EventType{EvSpanBegin, EvSpanEnd, EvRound, EvSend, EvDeliver, EvCoinExposed, EvDecision}
	evs := make([]Event, n)
	for i := range evs {
		e := Event{
			Seq:    uint64(i + 1),
			Type:   types[rng.Intn(len(types))],
			Player: origin,
			Round:  rng.Intn(4),
			Epoch:  rng.Intn(3),
			Origin: rng.Intn(7), // deliberately wrong: MergeTraces must override
		}
		if e.Type == EvSpanBegin || e.Type == EvSpanEnd {
			e.Span = uint64(1 + rng.Intn(4))
			if rng.Intn(2) == 0 {
				e.Parent = uint64(1 + rng.Intn(4))
			}
			e.Kind, e.Name = KindPhase, "emit"
		}
		evs[i] = e
	}
	return evs
}

func genStreams(seed int64) map[int][]Event {
	rng := rand.New(rand.NewSource(seed))
	streams := map[int][]Event{}
	for _, origin := range []int{0, 2, 3, 6} {
		streams[origin] = genStream(rng, origin, 5+rng.Intn(20))
	}
	return streams
}

// canonJSONL renders a merged timeline to its canonical JSONL bytes — the
// representation the property tests compare, because it is what CI
// artifacts and operators actually diff.
func canonJSONL(t *testing.T, evs []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, e := range evs {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeTracesOrderInsensitive is the permutation property: the merged
// timeline is a pure function of the per-stream histories. Shuffling the
// order events arrive in — both the within-stream slice order (files read
// through racing readers) and the order streams are added to the map — must
// produce byte-identical canonical JSONL.
func TestMergeTracesOrderInsensitive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		streams := genStreams(seed)
		want := canonJSONL(t, MergeTraces(streams))
		rng := rand.New(rand.NewSource(seed ^ 0x0bf))
		for trial := 0; trial < 5; trial++ {
			shuffled := map[int][]Event{}
			for k, evs := range streams {
				p := append([]Event(nil), evs...)
				rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
				shuffled[k] = p
			}
			got := canonJSONL(t, MergeTraces(shuffled))
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d trial %d: merged JSONL depends on input order:\ngot  %s\nwant %s",
					seed, trial, got, want)
			}
		}
	}
}

// TestMergeTracesIdempotent is the no-op property: splitting a merged
// timeline back into per-origin streams and merging again changes nothing —
// re-merging is byte-identical, so pipelines may merge partial captures in
// stages without drift.
func TestMergeTracesIdempotent(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		merged := MergeTraces(genStreams(seed))
		split := map[int][]Event{}
		for _, e := range merged {
			split[e.Origin] = append(split[e.Origin], e)
		}
		again := MergeTraces(split)
		if !reflect.DeepEqual(again, merged) {
			t.Fatalf("seed %d: re-merge is not a no-op:\ngot  %+v\nwant %+v", seed, again, merged)
		}
		if !bytes.Equal(canonJSONL(t, again), canonJSONL(t, merged)) {
			t.Fatalf("seed %d: re-merged JSONL differs", seed)
		}
	}
}

// TestMergeTracesSeqAndSpanInvariants pins the normalization MergeTraces
// promises on top of ordering: global Seq renumbered 1..len with no gaps,
// every event stamped with its stream's authoritative origin, and span ids
// dense in first-appearance order.
func TestMergeTracesSeqAndSpanInvariants(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		streams := genStreams(seed)
		merged := MergeTraces(streams)
		total := 0
		for _, evs := range streams {
			total += len(evs)
		}
		if len(merged) != total {
			t.Fatalf("seed %d: merged %d events, want %d", seed, len(merged), total)
		}
		okOrigin := map[int]bool{}
		for k := range streams {
			okOrigin[k] = true
		}
		var maxSpan uint64
		seen := map[uint64]bool{}
		for i, e := range merged {
			if e.Seq != uint64(i+1) {
				t.Fatalf("seed %d: event %d has Seq %d, want dense renumbering", seed, i, e.Seq)
			}
			if !okOrigin[e.Origin] {
				t.Fatalf("seed %d: event %d kept bogus origin %d", seed, i, e.Origin)
			}
			for _, id := range []uint64{e.Span, e.Parent} {
				if id == 0 {
					continue
				}
				if !seen[id] {
					if id != maxSpan+1 {
						t.Fatalf("seed %d: span id %d appeared before %d", seed, id, maxSpan+1)
					}
					maxSpan, seen[id] = id, true
				}
			}
		}
	}
}
