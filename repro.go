// Package repro is a from-scratch implementation of "Distributed
// Pseudo-Random Bit Generators — A New Way to Speed-Up Shared Coin Tossing"
// (Bellare, Garay, Rabin; PODC 1996).
//
// The package re-exports the library's public surface:
//
//   - a Generator (the D-PRBG): a self-sustaining per-player stream of
//     sealed shared coins, bootstrapped from a one-time trusted-dealer seed
//     and refilled by the paper's Coin-Gen protocol whenever it runs low;
//   - the synchronous-network simulator the protocols run on (NewNetwork,
//     Run), modeling n players with private channels and up to t Byzantine
//     faults;
//   - the GF(2^k) coin field (NewField).
//
// Quick start (see examples/quickstart for the runnable version):
//
//	field, _ := repro.NewField(32)
//	cfg := repro.Config{Field: field, N: 7, T: 1, BatchSize: 16}
//	gens, _ := repro.SetupTrusted(cfg, 8, cryptorand.Reader)
//	nw := repro.NewNetwork(cfg.N)
//	repro.Run(nw, players...) // each player calls gens[i].Next(node, rnd)
//
// The lower-level protocol packages (internal/vss, internal/bitgen,
// internal/coingen, internal/coin, internal/rba, ...) mirror the paper's
// figures one-to-one; see DESIGN.md for the map.
package repro

import (
	"io"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Field is the coin field GF(2^k).
	Field = gf2k.Field
	// Element is a k-ary coin value.
	Element = gf2k.Element
	// Config parameterizes a D-PRBG deployment.
	Config = core.Config
	// Generator is one player's D-PRBG endpoint.
	Generator = core.Generator
	// Stats summarizes a generator's lifetime activity.
	Stats = core.Stats
	// Network is the synchronous network simulator.
	Network = simnet.Network
	// Node is one player's network endpoint.
	Node = simnet.Node
	// PlayerFunc is one player's protocol code.
	PlayerFunc = simnet.PlayerFunc
	// PlayerResult is the outcome of one player's run.
	PlayerResult = simnet.PlayerResult
	// Counters records protocol costs (field ops, messages, bytes, rounds).
	Counters = metrics.Counters
	// CoinSource yields sealed shared coins.
	CoinSource = coin.Source
	// CoinBatch is a batch of sealed shared coins.
	CoinBatch = coin.Batch
)

// NewField returns the coin field GF(2^k), 2 ≤ k ≤ 64.
func NewField(k int) (Field, error) { return gf2k.New(k) }

// MustNewField is NewField but panics on error.
func MustNewField(k int) Field { return gf2k.MustNew(k) }

// NewNetwork creates a synchronous network of n players (in-memory
// transport).
func NewNetwork(n int, opts ...simnet.Option) *Network { return simnet.New(n, opts...) }

// NewNetworkTCP creates a synchronous network whose messages travel over
// real TCP loopback connections. Call Close on the returned network when
// done.
func NewNetworkTCP(n int, opts ...simnet.Option) (*Network, error) {
	return simnet.NewTCP(n, opts...)
}

// WithCounters attaches a metrics sink to a network.
func WithCounters(c *Counters) simnet.Option { return simnet.WithCounters(c) }

// SetupTrusted bootstraps one Generator per player from a one-time trusted
// dealer holding seedCoins sealed coins (the paper's Rabin-style setup).
func SetupTrusted(cfg Config, seedCoins int, rnd io.Reader) ([]*Generator, error) {
	return core.SetupTrusted(cfg, seedCoins, rnd)
}

// Run executes one PlayerFunc per node concurrently and collects results.
func Run(nw *Network, fns []PlayerFunc) []PlayerResult { return simnet.Run(nw, fns) }
