package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/simnet"
)

func defaultConfig(n, t int) Config {
	return Config{
		Field:     gf2k.MustNew(32),
		N:         n,
		T:         t,
		BatchSize: 16,
	}
}

// drive runs fn for every player with its generator.
func drive(t *testing.T, cfg Config, seedCoins int, seed int64,
	fn func(nd *simnet.Node, g *Generator, rnd *rand.Rand) (interface{}, error),
	faulty map[int]simnet.PlayerFunc,
) []simnet.PlayerResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gens, err := SetupTrusted(cfg, seedCoins, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(cfg.N)
	fns := make([]simnet.PlayerFunc, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if f, ok := faulty[i]; ok {
			fns[i] = f
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return fn(nd, gens[i], rand.New(rand.NewSource(seed+int64(i)*1000)))
		}
	}
	return simnet.Run(nw, fns)
}

func TestBootstrapProducesUnanimousStream(t *testing.T) {
	// Consume far more coins than the initial seed holds: the generator
	// must refill itself repeatedly (Fig. 1 bootstrap) and every player
	// must see the identical stream.
	cfg := defaultConfig(7, 1)
	const want = 64 // seed is 8, so several refills are needed
	results := drive(t, cfg, 8, 1, func(nd *simnet.Node, g *Generator, rnd *rand.Rand) (interface{}, error) {
		coins := make([]gf2k.Element, 0, want)
		for len(coins) < want {
			c, err := g.Next(nd, rnd)
			if err != nil {
				return nil, err
			}
			coins = append(coins, c)
		}
		return struct {
			Coins []gf2k.Element
			St    Stats
		}{coins, g.Stats()}, nil
	}, nil)

	type outT = struct {
		Coins []gf2k.Element
		St    Stats
	}
	ref := results[0].Value.(outT)
	if ref.St.Batches < 3 {
		t.Errorf("only %d refills for %d coins from an 8-coin seed", ref.St.Batches, want)
	}
	if ref.St.CoinsDelivered != want {
		t.Errorf("delivered %d, want %d", ref.St.CoinsDelivered, want)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		o := r.Value.(outT)
		for h := range ref.Coins {
			if o.Coins[h] != ref.Coins[h] {
				t.Fatalf("player %d coin %d differs: unanimity violated", i, h)
			}
		}
		if o.St != ref.St {
			t.Fatalf("player %d stats %+v != %+v", i, o.St, ref.St)
		}
	}
	// Coins should look random: no duplicates in GF(2^32) (whp), bits mixed.
	seen := make(map[gf2k.Element]bool, want)
	ones := 0
	for _, c := range ref.Coins {
		if seen[c] {
			t.Fatalf("coin %#x repeated", c)
		}
		seen[c] = true
		ones += int(c & 1)
	}
	if ones < want/4 || ones > 3*want/4 {
		t.Errorf("coin bits look biased: %d/%d ones", ones, want)
	}
}

func TestSelfSufficiencyLongRun(t *testing.T) {
	// E12-style endurance: many batches back to back; the store never runs
	// dry because each refill regenerates more than it consumes.
	if testing.Short() {
		t.Skip("long run")
	}
	cfg := defaultConfig(7, 1)
	cfg.BatchSize = 8
	cfg.Threshold = 4
	const want = 150
	results := drive(t, cfg, 6, 2, func(nd *simnet.Node, g *Generator, rnd *rand.Rand) (interface{}, error) {
		for i := 0; i < want; i++ {
			if _, err := g.Next(nd, rnd); err != nil {
				return nil, err
			}
		}
		return g.Stats(), nil
	}, nil)
	ref := results[0].Value.(Stats)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	if ref.Batches < want/8 {
		t.Errorf("suspiciously few refills: %d", ref.Batches)
	}
	// Average seed spend per refill must be near 2 (1 challenge + ~1 leader
	// draw) in the all-honest case.
	if avg := float64(ref.SeedSpent) / float64(ref.Batches); avg > 2.5 {
		t.Errorf("average seed consumption per refill = %.2f, want ≈ 2", avg)
	}
}

func TestNextBitAndMod(t *testing.T) {
	cfg := defaultConfig(7, 1)
	results := drive(t, cfg, 8, 3, func(nd *simnet.Node, g *Generator, rnd *rand.Rand) (interface{}, error) {
		b, err := g.NextBit(nd, rnd)
		if err != nil {
			return nil, err
		}
		m, err := g.NextMod(nd, rnd, 7)
		if err != nil {
			return nil, err
		}
		if m < 1 || m > 7 {
			return nil, errors.New("NextMod out of range")
		}
		if _, err := g.NextMod(nd, rnd, 0); err == nil {
			return nil, errors.New("NextMod(0) accepted")
		}
		return [2]int{int(b), m}, nil
	}, nil)
	ref := results[0].Value.([2]int)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.([2]int) != ref {
			t.Fatalf("player %d: outputs differ", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	f := gf2k.MustNew(16)
	cases := []Config{
		{N: 7, T: 1, BatchSize: 8},                          // zero-value Field
		{Field: f, N: 6, T: 1, BatchSize: 8},                // n < 6t+1
		{Field: f, N: 7, T: 1, BatchSize: 0},                // batch < 1
		{Field: f, N: 7, T: 1, BatchSize: 8, Threshold: 1},  // threshold < 2
		{Field: f, N: 7, T: 1, BatchSize: 4, Threshold: 4},  // batch ≤ threshold
		{Field: f, N: 7, T: 1, BatchSize: 8, HighWater: 3},  // high water < threshold
		{Field: f, N: 7, T: 1, BatchSize: 16, HighWater: 2}, // high water < default threshold
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := (Config{Field: f, N: 7, T: 1, BatchSize: 8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSetupTrustedValidation(t *testing.T) {
	cfg := defaultConfig(7, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := SetupTrusted(cfg, 2, rng); err == nil {
		t.Error("seed below threshold accepted")
	}
	bad := cfg
	bad.N = 5
	if _, err := SetupTrusted(bad, 10, rng); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestNewFromBatch(t *testing.T) {
	cfg := defaultConfig(7, 1)
	rng := rand.New(rand.NewSource(4))
	batches, values, err := coin.DealTrusted(cfg.Field, cfg.N, cfg.T, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(cfg.N)
	fns := make([]simnet.PlayerFunc, cfg.N)
	for i := range fns {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			g, err := NewFromBatch(cfg, batches[i])
			if err != nil {
				return nil, err
			}
			return g.Next(nd, rand.New(rand.NewSource(int64(i))))
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.(gf2k.Element) != values[0] {
			t.Fatalf("player %d: wrong first coin", i)
		}
	}
	// Invalid batch rejected.
	if _, err := NewFromBatch(cfg, &coin.Batch{Field: cfg.Field, T: 2, S: []int{0, 1}}); err == nil {
		t.Error("invalid batch accepted")
	}
}

func TestProactiveRotation(t *testing.T) {
	// E13 (crash flavour): the faulty set moves over time. With n=13, t=2
	// the system tolerates two concurrent faults; player 2 crashes before
	// the first batch, player 9 crashes later. No long-lived secret exists
	// (each batch is freshly dealt), so the survivors keep producing
	// unanimous coins throughout. (Byzantine-then-recovered rotation is
	// exercised at the coingen layer, where a bad dealer stays in lockstep
	// and participates honestly in the following batch.)
	cfg := defaultConfig(13, 2)
	cfg.BatchSize = 12
	rng := rand.New(rand.NewSource(7))
	gens, err := SetupTrusted(cfg, 8, rng)
	if err != nil {
		t.Fatal(err)
	}

	crash := func(nd *simnet.Node) (interface{}, error) { return nil, nil }

	runPhase := func(crashed map[int]bool, seed int64) []gf2k.Element {
		t.Helper()
		nw := simnet.New(cfg.N)
		fns := make([]simnet.PlayerFunc, cfg.N)
		for i := 0; i < cfg.N; i++ {
			if crashed[i] {
				fns[i] = crash
				continue
			}
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(seed + int64(i)))
				out := make([]gf2k.Element, 0, 10)
				for j := 0; j < 10; j++ {
					c, err := gens[i].Next(nd, rnd)
					if err != nil {
						return nil, err
					}
					out = append(out, c)
				}
				return out, nil
			}
		}
		results := simnet.Run(nw, fns)
		var ref []gf2k.Element
		for i, r := range results {
			if crashed[i] {
				continue
			}
			if r.Err != nil {
				t.Fatalf("phase(crashed=%v) player %d: %v", crashed, i, r.Err)
			}
			coins := r.Value.([]gf2k.Element)
			if ref == nil {
				ref = coins
				continue
			}
			for h := range ref {
				if coins[h] != ref[h] {
					t.Fatalf("phase(crashed=%v): coin %d differs at player %d", crashed, h, i)
				}
			}
		}
		return ref
	}

	phase1 := runPhase(map[int]bool{2: true}, 100)
	phase2 := runPhase(map[int]bool{2: true, 9: true}, 200)
	if len(phase1) != 10 || len(phase2) != 10 {
		t.Fatal("phases incomplete")
	}
}

func TestSeedTooSmallForRefillErrors(t *testing.T) {
	// A hostile schedule: threshold 2 with a seed of 2 and bad luck could
	// exhaust mid-refill; configuration requires threshold ≥ 2 but a seed
	// equal to the threshold with a faulty leader marathon is still shown
	// to surface an error rather than hang. Simulate with a store that is
	// nearly dry by consuming first.
	cfg := defaultConfig(7, 1)
	cfg.BatchSize = 8
	cfg.Threshold = 2
	results := drive(t, cfg, 2, 11, func(nd *simnet.Node, g *Generator, rnd *rand.Rand) (interface{}, error) {
		// Remaining = 2 = threshold, so no refill; consume one.
		if _, err := g.Next(nd, rnd); err != nil {
			return nil, err
		}
		// Remaining = 1 < threshold: refill consumes challenge (leaving 0)
		// and then needs a leader coin → exhausted unless refill succeeded
		// within... challenge takes the last coin; leader draw fails.
		_, err := g.Next(nd, rnd)
		return nil, err
	}, nil)
	for i, r := range results {
		if !errors.Is(r.Err, coin.ErrExhausted) {
			t.Fatalf("player %d: err = %v, want ErrExhausted", i, r.Err)
		}
	}
}

func TestGeneratorOverTCP(t *testing.T) {
	// The complete protocol stack — trusted seed, Coin-Gen refills,
	// exposures — with every message crossing a real TCP loopback socket.
	cfg := defaultConfig(7, 1)
	cfg.BatchSize = 8
	rng := rand.New(rand.NewSource(31))
	gens, err := SetupTrusted(cfg, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.NewTCP(cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	const want = 20 // forces at least one refill over TCP
	fns := make([]simnet.PlayerFunc, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(i + 500)))
			out := make([]gf2k.Element, 0, want)
			for len(out) < want {
				c, err := gens[i].Next(nd, rnd)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		}
	}
	results := simnet.Run(nw, fns)
	ref := results[0].Value.([]gf2k.Element)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for h := range ref {
			if got[h] != ref[h] {
				t.Fatalf("player %d coin %d differs over TCP", i, h)
			}
		}
	}
	if gens[0].Stats().Batches < 1 {
		t.Error("expected at least one Coin-Gen refill over TCP")
	}
}

func TestDeterministicGoldenStream(t *testing.T) {
	// With seeded randomness the entire pipeline — dealing, challenges,
	// leader draws, exposures — is deterministic (simnet delivers in a
	// deterministic order), so two independent executions must produce
	// bit-identical coin streams. This guards against accidental
	// nondeterminism (map iteration, scheduling) leaking into protocol
	// results.
	run := func() []gf2k.Element {
		cfg := defaultConfig(7, 1)
		cfg.BatchSize = 8
		rng := rand.New(rand.NewSource(424242))
		gens, err := SetupTrusted(cfg, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := simnet.New(cfg.N)
		fns := make([]simnet.PlayerFunc, cfg.N)
		for i := 0; i < cfg.N; i++ {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				rnd := rand.New(rand.NewSource(int64(i) * 7))
				out := make([]gf2k.Element, 0, 12)
				for len(out) < 12 {
					c, err := gens[i].Next(nd, rnd)
					if err != nil {
						return nil, err
					}
					out = append(out, c)
				}
				return out, nil
			}
		}
		results := simnet.Run(nw, fns)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("player %d: %v", i, r.Err)
			}
		}
		return results[0].Value.([]gf2k.Element)
	}
	a, b := run(), run()
	for h := range a {
		if a[h] != b[h] {
			t.Fatalf("coin %d nondeterministic: %#x vs %#x", h, a[h], b[h])
		}
	}
}
