// Interpolation domains: precomputed Lagrange contexts for a fixed set of
// evaluation points.
//
// The paper's amortization claims (Batch-VSS, Fig. 3; Coin-Gen, Fig. 5) all
// interpolate over the SAME point set again and again — the player IDs
// 1..n (or a fixed prefix of them) — once per sharing, per dealer, per
// round. The plain Interpolate/InterpolateAt0 functions rebuild the
// Lagrange denominators and pay one field inversion per point on every
// call; a Domain pays that cost once (with a single Montgomery batch
// inversion) and then serves every later interpolation over the same
// points with zero inversions.
package poly

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/gf2k"
	"repro/internal/metrics"
)

// Domain is a precomputed interpolation context for a fixed (field, xs)
// pair. It caches the master polynomial N(x) = Π(x + x_i), the barycentric
// weights w_i = 1/Π_{j≠i}(x_i + x_j), and the normalized Lagrange basis
// polynomials L_i(x) = w_i·N(x)/(x + x_i), so that interpolating values
// over the same points costs no field inversions at all.
//
// Construction costs O(n²) multiplications and exactly ONE field inversion
// (gf2k.Field.BatchInv); every plain Interpolate call over the same points
// would pay n inversions. Domains are immutable after construction and safe
// for concurrent use.
type Domain struct {
	f  gf2k.Field
	xs []gf2k.Element
	// w[i] = 1/Π_{j≠i}(x_i + x_j): the barycentric weights.
	w []gf2k.Element
	// basis[i] holds the coefficients of L_i(x), with L_i(x_j) = δ_ij.
	basis []Poly
	// at0[i] = L_i(0) = basis[i][0]: the Lagrange-at-zero coefficients.
	at0 []gf2k.Element

	mu       sync.Mutex
	prefixes map[int]*Domain // lazily built sub-domains over xs[:m]
}

// NewDomain precomputes the interpolation context for the points xs, which
// must be nonempty and pairwise distinct (ErrDuplicatePoint otherwise).
// Field operations performed during construction are accounted to f's
// attached counters, like every other call in this package.
//
// Cost: O(n²) multiplications/additions + 1 inversion, n = len(xs).
func NewDomain(f gf2k.Field, xs []gf2k.Element) (*Domain, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("poly: domain over no points")
	}
	for i := range xs {
		for j := i + 1; j < n; j++ {
			if xs[i] == xs[j] {
				return nil, fmt.Errorf("%w: x=%#x", ErrDuplicatePoint, xs[i])
			}
		}
	}
	d := &Domain{f: f, xs: append([]gf2k.Element(nil), xs...)}

	// Master polynomial N(x) = Π (x + x_i); char 2, so x − x_i = x + x_i.
	master := Poly{1}
	for _, x := range d.xs {
		master = Mul(f, master, Poly{x, 1})
	}

	// Denominators Π_{j≠i}(x_i + x_j), inverted together with one
	// Montgomery batch inversion — the Domain's whole point.
	den := make([]gf2k.Element, n)
	for i := range d.xs {
		p := gf2k.Element(1)
		for j := range d.xs {
			if j != i {
				p = f.Mul(p, f.Add(d.xs[i], d.xs[j]))
			}
		}
		den[i] = p
	}
	w, err := f.BatchInv(den)
	if err != nil {
		// Unreachable: distinct xs make every denominator nonzero.
		return nil, fmt.Errorf("poly: domain weights: %v", err)
	}
	d.w = w

	d.basis = make([]Poly, n)
	d.at0 = make([]gf2k.Element, n)
	for i := range d.xs {
		d.basis[i] = ScalarMul(f, w[i], synthDiv(f, master, d.xs[i]))
		d.at0[i] = d.basis[i][0]
	}
	return d, nil
}

// Len returns the number of interpolation points.
func (d *Domain) Len() int { return len(d.xs) }

// Xs returns a copy of the domain's evaluation points, in order.
func (d *Domain) Xs() []gf2k.Element { return append([]gf2k.Element(nil), d.xs...) }

// Interpolate returns the unique polynomial of degree < n through the
// points (xs[i], ys[i]), like the package-level Interpolate but with the
// Lagrange basis already precomputed. Recorded as one "interpolation" in
// ctr, matching the plain function.
//
// Cost per call: n² multiplications, n² additions, ZERO inversions
// (vs n inversions for the plain Interpolate).
func (d *Domain) Interpolate(ys []gf2k.Element, ctr *metrics.Counters) (Poly, error) {
	n := len(d.xs)
	if len(ys) != n {
		return nil, fmt.Errorf("poly: domain interpolate: %d xs vs %d ys", n, len(ys))
	}
	if ctr != nil {
		ctr.AddInterpolations(1)
	}
	f := d.f
	out := make(Poly, n)
	for i, y := range ys {
		if y == 0 {
			continue
		}
		li := d.basis[i]
		for j := range li {
			out[j] = f.Add(out[j], f.Mul(y, li[j]))
		}
	}
	return out, nil
}

// InterpolateAt0 returns the value at zero of the unique degree-<n
// polynomial through the points — the secret, in Shamir terms. Recorded as
// one "interpolation" in ctr.
//
// Cost per call: n multiplications, n additions, ZERO inversions
// (vs n inversions for the plain InterpolateAt0).
func (d *Domain) InterpolateAt0(ys []gf2k.Element, ctr *metrics.Counters) (gf2k.Element, error) {
	n := len(d.xs)
	if len(ys) != n {
		return 0, fmt.Errorf("poly: domain interpolateAt0: %d xs vs %d ys", n, len(ys))
	}
	if ctr != nil {
		ctr.AddInterpolations(1)
	}
	f := d.f
	var acc gf2k.Element
	for i, y := range ys {
		acc = f.Add(acc, f.Mul(y, d.at0[i]))
	}
	return acc, nil
}

// EvalBasis returns the Lagrange basis values L_0(x), …, L_{n−1}(x), so
// that the interpolant through any ys is Σ_i ys[i]·L_i(x). When x is one of
// the domain points the result is the corresponding indicator vector.
//
// Cost per call: 3n multiplications, n additions, zero inversions, via
// prefix/suffix products of the factors (x + x_j).
func (d *Domain) EvalBasis(x gf2k.Element) []gf2k.Element {
	n := len(d.xs)
	f := d.f
	out := make([]gf2k.Element, n)
	// out[i] starts as prefix[i] = Π_{j<i}(x + x_j); a backward suffix scan
	// then multiplies in Π_{j>i}(x + x_j) and the weight w_i.
	acc := gf2k.Element(1)
	for i := range d.xs {
		out[i] = acc
		acc = f.Mul(acc, f.Add(x, d.xs[i]))
	}
	acc = 1
	for i := n - 1; i >= 0; i-- {
		out[i] = f.Mul(d.w[i], f.Mul(out[i], acc))
		acc = f.Mul(acc, f.Add(x, d.xs[i]))
	}
	return out
}

// FitsDegree reports whether the points (xs, ys) all lie on a polynomial of
// degree ≤ maxDeg: it interpolates through the first maxDeg+1 points (over
// a cached prefix sub-domain) and checks the remainder, the paper's §3.1
// "basic solution" to degree checking.
//
// Cost per call: (maxDeg+1)² multiplications for the interpolation plus
// (n−maxDeg−1)(maxDeg+1) for the checks; zero inversions after the prefix
// sub-domain is first built.
func (d *Domain) FitsDegree(ys []gf2k.Element, maxDeg int, ctr *metrics.Counters) (bool, error) {
	n := len(d.xs)
	if len(ys) != n {
		return false, fmt.Errorf("poly: domain fitsDegree: %d xs vs %d ys", n, len(ys))
	}
	if maxDeg < 0 {
		return false, fmt.Errorf("poly: domain fitsDegree: negative degree %d", maxDeg)
	}
	if n <= maxDeg+1 {
		return true, nil
	}
	sub, err := d.Prefix(maxDeg + 1)
	if err != nil {
		return false, err
	}
	p, err := sub.Interpolate(ys[:maxDeg+1], ctr)
	if err != nil {
		return false, err
	}
	for i := maxDeg + 1; i < n; i++ {
		if Eval(d.f, p, d.xs[i]) != ys[i] {
			return false, nil
		}
	}
	return true, nil
}

// Prefix returns the sub-domain over the first m points, building and
// memoizing it on first use. Berlekamp–Welch's fast path interpolates
// through exactly such a prefix, so the memo turns its per-call setup into
// a one-time cost too.
func (d *Domain) Prefix(m int) (*Domain, error) {
	n := len(d.xs)
	if m <= 0 || m > n {
		return nil, fmt.Errorf("poly: domain prefix %d out of range [1,%d]", m, n)
	}
	if m == n {
		return d, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if sub, ok := d.prefixes[m]; ok {
		return sub, nil
	}
	sub, err := NewDomain(d.f, d.xs[:m])
	if err != nil {
		return nil, err
	}
	if d.prefixes == nil {
		d.prefixes = make(map[int]*Domain)
	}
	d.prefixes[m] = sub
	return sub, nil
}

// --- keyed domain cache -----------------------------------------------------

// maxCachedDomains bounds the process-wide cache. Protocol runs use a
// handful of distinct point sets (the IDs 1..n and their prefixes, plus one
// set per observed fault pattern); the cap only matters if an adversary
// forces many distinct patterns, in which case extra domains are built on
// demand and dropped.
const maxCachedDomains = 1024

var (
	domainCache sync.Map // string key -> *Domain
	domainCount atomic.Int64
)

// DomainFor returns the cached Domain for (f, xs), constructing and caching
// it on first use. The cache key is the field (k and modulus), the field's
// attached counter identity, and the exact point sequence, so callers with
// different metrics sinks never share (and never mis-attribute) field-op
// accounting. ctr records the lookup as a domain hit or miss.
//
// This is the entry point the protocol hot path uses: Batch-VSS, Bit-Gen,
// Coin-Gen and Coin-Expose all interpolate over the player IDs 1..n (or a
// fixed prefix) every round, so after the first round every lookup is a
// hit and interpolation costs no inversions at all.
func DomainFor(f gf2k.Field, xs []gf2k.Element, ctr *metrics.Counters) (*Domain, error) {
	key := domainKey(f, xs)
	if v, ok := domainCache.Load(key); ok {
		if ctr != nil {
			ctr.AddDomainHits(1)
		}
		return v.(*Domain), nil
	}
	if ctr != nil {
		ctr.AddDomainMisses(1)
	}
	d, err := NewDomain(f, xs)
	if err != nil {
		return nil, err
	}
	if domainCount.Load() >= maxCachedDomains {
		return d, nil // cache full: hand out an uncached domain
	}
	if actual, loaded := domainCache.LoadOrStore(key, d); loaded {
		return actual.(*Domain), nil
	}
	domainCount.Add(1)
	return d, nil
}

// IDDomain returns the cached Domain over the player IDs 1..n — the point
// set every protocol in the paper evaluates and interpolates at.
func IDDomain(f gf2k.Field, n int, ctr *metrics.Counters) (*Domain, error) {
	xs := make([]gf2k.Element, n)
	for i := 0; i < n; i++ {
		id, err := f.ElementFromID(i + 1)
		if err != nil {
			return nil, err
		}
		xs[i] = id
	}
	return DomainFor(f, xs, ctr)
}

// domainKey serializes the cache identity of (f, xs).
func domainKey(f gf2k.Field, xs []gf2k.Element) string {
	buf := make([]byte, 0, 24+8*len(xs)+24)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.K()))
	buf = binary.LittleEndian.AppendUint64(buf, f.Modulus())
	buf = fmt.Appendf(buf, "%p", f.Counters())
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
	}
	return string(buf)
}
