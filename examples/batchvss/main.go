// Command batchvss demonstrates the paper's second contribution in
// isolation: Batch-VSS (§3, Fig. 3). A dealer shares M secrets with seven
// players; verification costs ONE shared coin and ONE interpolation per
// player regardless of M. The example verifies batches of growing size,
// prints the measured cost per secret, and shows the amortization curve of
// Corollary 1 ("the amortized computation required to verify a secret is
// 2k log k per player, and the amortized communication is O(1)").
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/coin"
	"repro/internal/metrics"
	"repro/internal/vss"
)

const (
	n = 7
	t = 2
	k = 32
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	field := repro.MustNewField(k)
	fmt.Printf("Batch-VSS amortization (n=%d, t=%d, GF(2^%d))\n\n", n, t, k)
	fmt.Printf("%8s  %14s  %14s  %16s\n", "M", "bytes/secret", "msgs/secret", "interp/player")

	for _, m := range []int{1, 4, 16, 64, 256} {
		var ctr metrics.Counters
		rng := rand.New(rand.NewSource(int64(m)))
		batches, _, err := coin.DealTrusted(field, n, t, 2, rng)
		if err != nil {
			return err
		}

		secrets := make([]repro.Element, m)
		for j := range secrets {
			s, err := field.Rand(rng)
			if err != nil {
				return err
			}
			secrets[j] = s
		}

		nw := repro.NewNetwork(n, repro.WithCounters(&ctr))
		fns := make([]repro.PlayerFunc, n)
		for i := 0; i < n; i++ {
			i := i
			fns[i] = func(nd *repro.Node) (interface{}, error) {
				cfg := vss.Config{Field: field, N: n, T: t, Coins: batches[i], Counters: &ctr}
				var rnd *rand.Rand
				var mySecrets []repro.Element
				if i == 0 {
					rnd = rand.New(rand.NewSource(int64(m) * 77))
					mySecrets = secrets
				}
				inst, err := vss.Deal(nd, cfg, 0, mySecrets, rnd)
				if err != nil {
					return nil, err
				}
				ok, err := inst.Verify(nd)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("honest dealer rejected")
				}
				return nil, nil
			}
		}
		for i, r := range repro.Run(nw, fns) {
			if r.Err != nil {
				return fmt.Errorf("M=%d player %d: %w", m, i, r.Err)
			}
		}
		s := ctr.Snapshot()
		fmt.Printf("%8d  %14.1f  %14.2f  %16.2f\n",
			m,
			float64(s.Bytes)/float64(m),
			float64(s.Messages)/float64(m),
			float64(s.Interpolations)/float64(n))
	}

	fmt.Println("\nbytes and messages per secret fall toward a constant as M grows,")
	fmt.Println("and each player performs a single verification interpolation per")
	fmt.Println("ceremony no matter how many secrets it covers (Lemma 4, Corollary 1).")
	return nil
}
