package poly

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/metrics"
)

// randomDistinctXs returns n pairwise-distinct field elements (possibly
// including zero — InterpolateAt0 must cope with a point at the origin).
func randomDistinctXs(t *testing.T, f gf2k.Field, n int, rng *rand.Rand) []gf2k.Element {
	t.Helper()
	seen := make(map[gf2k.Element]bool, n)
	xs := make([]gf2k.Element, 0, n)
	for len(xs) < n {
		x, err := f.Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		xs = append(xs, x)
	}
	return xs
}

// TestDomainMatchesUncached is the property test: for random polynomials
// over several GF(2^k) and n up to 64, the Domain methods must agree with
// the plain (reference) implementations exactly.
func TestDomainMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{8, 16, 32, 64} {
		f := gf2k.MustNew(k)
		for _, n := range []int{1, 2, 3, 7, 16, 33, 64} {
			xs := randomDistinctXs(t, f, n, rng)
			deg := rng.Intn(n)
			p, err := Random(f, deg, gf2k.Element(uint64(rng.Int63())&uint64(1<<k-1)), rng)
			if err != nil {
				t.Fatal(err)
			}
			ys := EvalMany(f, p, xs)

			d, err := NewDomain(f, xs)
			if err != nil {
				t.Fatalf("k=%d n=%d: NewDomain: %v", k, n, err)
			}

			want, err := Interpolate(f, xs, ys, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Interpolate(ys, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d n=%d: length %d vs %d", k, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d n=%d: coeff %d: %#x vs %#x", k, n, i, got[i], want[i])
				}
			}

			want0, err := InterpolateAt0(f, xs, ys, nil)
			if err != nil {
				t.Fatal(err)
			}
			got0, err := d.InterpolateAt0(ys, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got0 != want0 {
				t.Fatalf("k=%d n=%d: at0 %#x vs %#x", k, n, got0, want0)
			}

			for _, maxDeg := range []int{deg, deg - 1, n - 1} {
				if maxDeg < 0 {
					continue
				}
				wantFit, err := FitsDegree(f, xs, ys, maxDeg, nil)
				if err != nil {
					t.Fatal(err)
				}
				gotFit, err := d.FitsDegree(ys, maxDeg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if gotFit != wantFit {
					t.Fatalf("k=%d n=%d maxDeg=%d: fits %v vs %v", k, n, maxDeg, gotFit, wantFit)
				}
			}
		}
	}
}

// TestDomainEvalBasis checks the two defining properties of the Lagrange
// basis: indicator vectors at the domain points, and Σ ys[i]·L_i(x) equal to
// the interpolant's value everywhere else.
func TestDomainEvalBasis(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(11))
	xs := randomDistinctXs(t, f, 9, rng)
	d, err := NewDomain(f, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		basis := d.EvalBasis(x)
		for j, b := range basis {
			want := gf2k.Element(0)
			if j == i {
				want = 1
			}
			if b != want {
				t.Fatalf("L_%d(x_%d) = %#x, want %#x", j, i, b, want)
			}
		}
	}
	p, err := Random(f, 8, 0x5eed, rng)
	if err != nil {
		t.Fatal(err)
	}
	ys := EvalMany(f, p, xs)
	for trial := 0; trial < 32; trial++ {
		x, err := f.Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		basis := d.EvalBasis(x)
		var acc gf2k.Element
		for i := range ys {
			acc = f.Add(acc, f.Mul(ys[i], basis[i]))
		}
		if want := Eval(f, p, x); acc != want {
			t.Fatalf("basis combination at %#x = %#x, want %#x", x, acc, want)
		}
	}
}

func TestDomainErrors(t *testing.T) {
	f := gf2k.MustNew(16)

	if _, err := NewDomain(f, nil); err == nil {
		t.Fatal("NewDomain over no points should fail")
	}
	if _, err := NewDomain(f, []gf2k.Element{1, 2, 1}); !errors.Is(err, ErrDuplicatePoint) {
		t.Fatalf("duplicate xs: got %v, want ErrDuplicatePoint", err)
	}
	if _, err := DomainFor(f, []gf2k.Element{3, 3}, nil); !errors.Is(err, ErrDuplicatePoint) {
		t.Fatalf("DomainFor duplicate xs: got %v, want ErrDuplicatePoint", err)
	}

	d, err := NewDomain(f, []gf2k.Element{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Interpolate([]gf2k.Element{1, 2}, nil); err == nil {
		t.Fatal("Interpolate length mismatch should fail")
	}
	if _, err := d.InterpolateAt0([]gf2k.Element{1, 2, 3, 4}, nil); err == nil {
		t.Fatal("InterpolateAt0 length mismatch should fail")
	}
	if _, err := d.FitsDegree([]gf2k.Element{1}, 1, nil); err == nil {
		t.Fatal("FitsDegree length mismatch should fail")
	}
	if _, err := d.FitsDegree([]gf2k.Element{1, 2, 3}, -1, nil); err == nil {
		t.Fatal("FitsDegree negative degree should fail")
	}
	for _, m := range []int{0, -1, 4} {
		if _, err := d.Prefix(m); err == nil {
			t.Fatalf("Prefix(%d) should fail", m)
		}
	}
	if sub, err := d.Prefix(3); err != nil || sub != d {
		t.Fatalf("Prefix(len) should return the domain itself, got %v, %v", sub, err)
	}
}

// TestDomainForCache checks hit/miss accounting and identity of cached
// domains.
func TestDomainForCache(t *testing.T) {
	f := gf2k.MustNew(24)
	var ctr metrics.Counters
	xs := []gf2k.Element{0x11, 0x22, 0x33, 0x44}

	d1, err := DomainFor(f, xs, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DomainFor(f, xs, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("same (field, xs) should return the identical cached domain")
	}
	s := ctr.Snapshot()
	if s.DomainMisses < 1 || s.DomainHits < 1 {
		t.Fatalf("expected ≥1 miss and ≥1 hit, got %+v", s)
	}

	// A different point order is a different domain.
	perm := []gf2k.Element{0x22, 0x11, 0x33, 0x44}
	d3, err := DomainFor(f, perm, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different point order must not share a domain")
	}
}

// TestDomainCacheConcurrent hammers DomainFor from many goroutines; run
// under -race it checks the cache (and the Prefix memo) for data races.
func TestDomainCacheConcurrent(t *testing.T) {
	f := gf2k.MustNew(32)
	var ctr metrics.Counters
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				n := 2 + (g+iter)%7
				d, err := IDDomain(f, n, &ctr)
				if err != nil {
					t.Error(err)
					return
				}
				ys := make([]gf2k.Element, n)
				for i := range ys {
					ys[i] = gf2k.Element(g*100 + i + 1)
				}
				if _, err := d.InterpolateAt0(ys, &ctr); err != nil {
					t.Error(err)
					return
				}
				if _, err := d.Prefix(1 + iter%n); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := ctr.Snapshot()
	if s.DomainHits+s.DomainMisses != 16*50 {
		t.Fatalf("hit+miss = %d, want %d", s.DomainHits+s.DomainMisses, 16*50)
	}
}

// TestDomainInversionSavings is the PR's acceptance check: at n=32, the
// cached path must perform at least 2× fewer field inversions than the
// uncached path, measured with metrics.Counters (not wall clock).
func TestDomainInversionSavings(t *testing.T) {
	const n, rounds = 32, 8
	var ctr metrics.Counters
	f := gf2k.MustNew(32).WithCounters(&ctr)
	rng := rand.New(rand.NewSource(3))
	xs := randomDistinctXs(t, f, n, rng)
	p, err := Random(f, n-1, 0xabcd, rng)
	if err != nil {
		t.Fatal(err)
	}
	ys := EvalMany(f, p, xs)

	before := ctr.Snapshot()
	for i := 0; i < rounds; i++ {
		if _, err := InterpolateAt0(f, xs, ys, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := Interpolate(f, xs, ys, nil); err != nil {
			t.Fatal(err)
		}
	}
	uncached := metrics.Diff(before, ctr.Snapshot()).FieldInvs

	d, err := NewDomain(f, xs) // counted: the one-time batch inversion
	if err != nil {
		t.Fatal(err)
	}
	before = ctr.Snapshot()
	for i := 0; i < rounds; i++ {
		if _, err := d.InterpolateAt0(ys, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Interpolate(ys, nil); err != nil {
			t.Fatal(err)
		}
	}
	cached := metrics.Diff(before, ctr.Snapshot()).FieldInvs

	t.Logf("n=%d rounds=%d: uncached %d inversions, cached %d (construction: 1)", n, rounds, uncached, cached)
	if uncached < int64(2*n*rounds) {
		t.Fatalf("uncached path performed %d inversions, expected ≥ %d", uncached, 2*n*rounds)
	}
	if cached != 0 {
		t.Fatalf("cached path performed %d inversions per-call, expected 0", cached)
	}
	if 2*(cached+1) > uncached {
		t.Fatalf("acceptance: cached (%d+1 construction) not ≥2× fewer inversions than uncached (%d)", cached, uncached)
	}
}
