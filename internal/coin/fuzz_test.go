package coin

import (
	"math/rand"
	"testing"

	"repro/internal/gf2k"
)

// FuzzUnmarshalBatch: the batch decoder must never panic, and everything it
// accepts must survive a marshal/unmarshal round trip unchanged.
func FuzzUnmarshalBatch(f *testing.F) {
	field := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	batches, _, err := DealTrusted(field, 4, 1, 3, rng)
	if err != nil {
		f.Fatal(err)
	}
	good, err := batches[0].MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(batchMagic))
	f.Add(append([]byte{}, good[:len(good)-1]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBatch(data)
		if err != nil {
			return
		}
		re, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted batch fails to re-marshal: %v", err)
		}
		b2, err := UnmarshalBatch(re)
		if err != nil {
			t.Fatalf("re-marshalled batch rejected: %v", err)
		}
		if b2.T != b.T || b2.Silent != b.Silent || len(b2.S) != len(b.S) ||
			len(b2.Shares) != len(b.Shares) || b2.Cursor() != b.Cursor() {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzUnmarshalStore: the store decoder (the beacon's on-disk restart
// format) must never panic, and everything it accepts must re-marshal to a
// stable encoding — a v2 input is a fixed point byte-for-byte, a legacy v1
// input upgrades to v2 once and is a fixed point from then on.
func FuzzUnmarshalStore(f *testing.F) {
	field := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(2))
	st := &Store{}
	for s := 0; s < 2; s++ {
		batches, _, err := DealTrusted(field, 4, 1, 2, rng)
		if err != nil {
			f.Fatal(err)
		}
		if err := st.Add(batches[0]); err != nil {
			f.Fatal(err)
		}
	}
	good, err := st.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(storeMagicV2))
	f.Add([]byte(storeMagicV1))
	f.Add(append([]byte{}, good[:len(good)-1]...))
	// A legacy v1 framing of the same batches.
	v1 := append([]byte(storeMagicV1), good[len(storeMagicV2)+8:]...)
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalStore(data)
		if err != nil {
			return
		}
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted store fails to re-marshal: %v", err)
		}
		if len(data) >= len(storeMagicV2) && string(data[:len(storeMagicV2)]) == storeMagicV2 {
			if string(re) != string(data) {
				t.Fatal("accepted v2 store encoding is not canonical")
			}
			return
		}
		// v1 input: the upgrade must be a fixed point.
		s2, err := UnmarshalStore(re)
		if err != nil {
			t.Fatalf("upgraded v1 store rejected: %v", err)
		}
		re2, err := s2.MarshalBinary()
		if err != nil {
			t.Fatalf("upgraded v1 store fails to re-marshal: %v", err)
		}
		if string(re2) != string(re) {
			t.Fatal("v1 upgrade is not a fixed point")
		}
		if s2.Universe != 0 || s2.Generation != 0 || s2.Remaining() != s.Remaining() {
			t.Fatal("v1 decode changed semantics")
		}
	})
}
