// Command multiproc is the N-process soak harness for the per-player
// beacond daemons: it builds beacond, runs the dealer ceremony, launches
// one OS process per player, SIGKILLs a minority of them mid-batch,
// restarts the victims, and verifies that
//
//   - the survivors keep opening coins while the victims are down,
//   - the restarted daemons rejoin and every process exits cleanly, and
//   - all n public coin logs are byte-identical to each other AND to a
//     reference run of the same cluster that was never interrupted —
//     crash + recovery must be invisible in the beacon's output stream.
//
// Run it from the repository root:
//
//	go run ./examples/multiproc
//	go run ./examples/multiproc -n 7 -kill 1 -emit 50 -workdir soak-out -keep
//
// The CI multiproc job runs exactly this with -workdir so the per-daemon
// obs traces and stdout logs can be uploaded as artifacts when it fails.
// Parameters are tuned so the kill lands after the cluster's first refill:
// the victims' recovery therefore exercises store-snapshot reload, crash
// reconciliation against the coin log, AND the live rejoin catch-up.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

var (
	n        = flag.Int("n", 7, "cluster size (n ≥ 6t+1)")
	t        = flag.Int("t", 1, "fault bound; ⌊t⌋ daemons are killed")
	kill     = flag.Int("kill", 0, "how many daemons to SIGKILL (default t)")
	emit     = flag.Int("emit", 50, "coins per run; every daemon stops at this log length")
	killAt   = flag.Int("kill-at", 30, "SIGKILL the victims once their logs reach this many coins")
	interval = flag.Duration("interval", 75*time.Millisecond, "emission pacing (-emit-interval)")
	seed     = flag.Int64("seed", 7, "deterministic -rng-seed base for both runs")
	workdir  = flag.String("workdir", "", "working directory (default: a temp dir)")
	keep     = flag.Bool("keep", false, "keep the working directory on success")
	verbose  = flag.Bool("v", false, "stream daemon stdout to the console")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "soak: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	if *kill == 0 {
		*kill = *t
	}
	if *kill > *t {
		return fmt.Errorf("killing %d > t=%d daemons cannot work: the BW decoder tolerates at most t missing/faulty players", *kill, *t)
	}
	dir := *workdir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "beacond-soak-*"); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fmt.Printf("soak: workdir %s\n", dir)

	bin := filepath.Join(dir, "beacond")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/beacond").CombinedOutput(); err != nil {
		return fmt.Errorf("build beacond: %v\n%s", err, out)
	}

	// Leg 1: the interrupted run — kill ⌊t⌋ daemons mid-batch, restart them.
	soakDir := filepath.Join(dir, "soak")
	if err := runCluster(bin, soakDir, true); err != nil {
		return fmt.Errorf("interrupted run: %w (artifacts in %s)", err, dir)
	}
	// Leg 2: the reference run — same seeds, same cluster, no interruption.
	refDir := filepath.Join(dir, "reference")
	if err := runCluster(bin, refDir, false); err != nil {
		return fmt.Errorf("reference run: %w (artifacts in %s)", err, dir)
	}

	// Verdict: unanimity within the interrupted run, and byte-equality of
	// the interrupted stream against the uninterrupted reference.
	ref, err := os.ReadFile(coinLog(soakDir, 0))
	if err != nil {
		return err
	}
	if got := strings.Count(string(ref), "\n"); got != *emit {
		return fmt.Errorf("player 0 opened %d coins, want %d", got, *emit)
	}
	for i := 1; i < *n; i++ {
		b, err := os.ReadFile(coinLog(soakDir, i))
		if err != nil {
			return err
		}
		if string(b) != string(ref) {
			return fmt.Errorf("player %d's log differs from player 0's within the interrupted run (artifacts in %s)", i, dir)
		}
	}
	unref, err := os.ReadFile(coinLog(refDir, 0))
	if err != nil {
		return err
	}
	if string(unref) != string(ref) {
		return fmt.Errorf("interrupted run's stream differs from the uninterrupted reference (artifacts in %s)", dir)
	}

	fmt.Printf("soak: PASS — %d daemons, %d killed+restarted, %d coins, all logs byte-identical to the uninterrupted reference\n",
		*n, *kill, *emit)
	if !*keep && *workdir == "" {
		os.RemoveAll(dir)
	}
	return nil
}

func coinLog(dataDir string, player int) string {
	return filepath.Join(dataDir, "data", fmt.Sprintf("player-%03d.coins", player))
}

// runCluster performs one full cluster lifecycle under base: ceremony,
// launch, optional kill/restart, and a clean unanimous exit.
func runCluster(bin, base string, interrupt bool) error {
	dataDir := filepath.Join(base, "data")
	traceDir := filepath.Join(base, "traces")
	logDir := filepath.Join(base, "logs")
	for _, d := range []string{dataDir, traceDir, logDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	cfgPath := filepath.Join(base, "peers.yaml")
	if err := writePeersYAML(cfgPath); err != nil {
		return err
	}

	if out, err := exec.Command(bin, "-deal", "-config", cfgPath, "-data", dataDir,
		"-insecure-rand", "-rng-seed", fmt.Sprint(*seed)).CombinedOutput(); err != nil {
		return fmt.Errorf("ceremony: %v\n%s", err, out)
	}

	daemons := make([]*exec.Cmd, *n)
	launch := func(i int) error {
		cmd := exec.Command(bin,
			"-player", fmt.Sprint(i), "-config", cfgPath, "-data", dataDir,
			"-emit", fmt.Sprint(*emit), "-emit-interval", interval.String(),
			"-round-timeout", "2s", "-dial-backoff", "250ms",
			"-insecure-rand", "-rng-seed", fmt.Sprint(*seed),
			"-addr", "", "-trace", filepath.Join(traceDir, fmt.Sprintf("player-%d.jsonl", i)))
		logF, err := os.OpenFile(filepath.Join(logDir, fmt.Sprintf("player-%d.log", i)),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if *verbose {
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		} else {
			cmd.Stdout, cmd.Stderr = logF, logF
		}
		if err := cmd.Start(); err != nil {
			logF.Close()
			return err
		}
		daemons[i] = cmd
		return nil
	}
	for i := 0; i < *n; i++ {
		if err := launch(i); err != nil {
			return fmt.Errorf("launch player %d: %w", i, err)
		}
	}

	if interrupt {
		// Let the cluster work through its first refill, then SIGKILL the
		// victims mid-stream — no graceful persist, no socket shutdown.
		victims := make([]int, *kill)
		for v := range victims {
			victims[v] = 1 + v // player 0 stays up as the comparison anchor
		}
		for _, v := range victims {
			if err := waitLogLines(dataDir, v, *killAt, 60*time.Second); err != nil {
				return err
			}
		}
		for _, v := range victims {
			if err := daemons[v].Process.Kill(); err != nil {
				return fmt.Errorf("kill player %d: %w", v, err)
			}
			daemons[v].Wait()
			fmt.Printf("soak: killed player %d at ≥%d coins\n", v, *killAt)
		}
		// Survivors must demote the victims and keep the stream moving on
		// their own before we bring the victims back.
		if err := waitLogLines(dataDir, 0, *killAt+3, 60*time.Second); err != nil {
			return fmt.Errorf("survivors stalled after the kill: %w", err)
		}
		for _, v := range victims {
			if err := launch(v); err != nil {
				return fmt.Errorf("restart player %d: %w", v, err)
			}
			fmt.Printf("soak: restarted player %d\n", v)
		}
	}

	var firstErr error
	for i, cmd := range daemons {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("player %d exited: %w (see %s)", i, err,
				filepath.Join(logDir, fmt.Sprintf("player-%d.log", i)))
		}
	}
	return firstErr
}

// waitLogLines polls player i's public coin log until it holds at least
// `want` entries.
func waitLogLines(dataDir string, player, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	path := coinLog(filepath.Dir(dataDir), player)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && strings.Count(string(b), "\n") >= want {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("player %d's log never reached %d coins within %v", player, want, timeout)
}

// writePeersYAML reserves n loopback ports and writes the cluster config.
// Batch 40 over seed 24 with threshold 6 puts the first refill at coin 20,
// safely before the default -kill-at of 30, and leaves enough coins that
// no second refill lands near the end of the run.
func writePeersYAML(path string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: soak\nsecret: %s\n", strings.Repeat("ab", 32))
	fmt.Fprintf(&b, "t: %d\nk: 32\nbatch: 40\nthreshold: 6\nseedcoins: 24\npeers:\n", *t)
	for i := 0; i < *n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr := ln.Addr().String()
		ln.Close()
		fmt.Fprintf(&b, "  - id: %d\n    addr: %s\n", i, addr)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
