package adversary

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simnet"
)

// Fault is one player's assigned misbehaviour, resolved from a spec entry.
type Fault struct {
	// Name is the behaviour's spec name, with its parameter when one was
	// given (e.g. "silent@200") — used for reporting.
	Name string
	// Fn is the player function implementing the behaviour.
	Fn simnet.PlayerFunc
}

// Spec maps player indices to their assigned faults.
type Spec map[int]Fault

// Indices returns the faulty player indices in ascending order.
func (s Spec) Indices() []int {
	out := make([]int, 0, len(s))
	for i := range s {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// ParseSpec parses a textual fault assignment into player behaviours,
// giving CLIs and tests one shared vocabulary. The grammar is
//
//	spec    = entry *( ";" entry )
//	entry   = name [ "@" param ] ":" index *( "," index )
//
// for example "crash:2,9;silent@200:4;garbage@16:5". Behaviours:
//
//	crash          halt immediately (Crash)
//	crash-after@R  participate silently for R rounds, then halt (CrashAfter)
//	silent         stay in lockstep, send nothing, until the network ends
//	               (Silent); with @R, fall silent for R rounds then halt
//	               (SilentFor)
//	garbage@R      spam per-receiver random junk for R rounds, default 1000
//	               (GarbageSpammer)
//	replay@R       echo previous-round traffic back for R rounds, default
//	               1000 (Replayer)
//
// Indices must lie in [0, n) and no player may be assigned twice. Seeded
// behaviours derive their randomness from `seed` and the player index, so a
// (spec, seed) pair is fully reproducible.
func ParseSpec(spec string, n int, seed int64) (Spec, error) {
	out := Spec{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		head, idxList, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("adversary: spec entry %q lacks a ':<indices>' part", entry)
		}
		name, paramStr, hasParam := strings.Cut(strings.TrimSpace(head), "@")
		name = strings.TrimSpace(name)
		param := -1
		if hasParam {
			p, err := strconv.Atoi(strings.TrimSpace(paramStr))
			if err != nil || p < 0 {
				return nil, fmt.Errorf("adversary: spec entry %q: parameter %q is not a non-negative integer", entry, paramStr)
			}
			param = p
		}
		for _, is := range strings.Split(idxList, ",") {
			is = strings.TrimSpace(is)
			idx, err := strconv.Atoi(is)
			if err != nil {
				return nil, fmt.Errorf("adversary: spec entry %q: index %q is not an integer", entry, is)
			}
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("adversary: spec entry %q: index %d outside range over [0, %d)", entry, idx, n)
			}
			if prev, dup := out[idx]; dup {
				return nil, fmt.Errorf("adversary: duplicate entry for player %d (%s and %s)", idx, prev.Name, head)
			}
			fn, err := faultFor(name, param, hasParam, seed+int64(idx))
			if err != nil {
				return nil, fmt.Errorf("adversary: spec entry %q: %w", entry, err)
			}
			out[idx] = Fault{Name: strings.TrimSpace(head), Fn: fn}
		}
	}
	return out, nil
}

func faultFor(name string, param int, hasParam bool, seed int64) (simnet.PlayerFunc, error) {
	needParam := func() error {
		if !hasParam {
			return fmt.Errorf("behaviour %q requires a parameter (e.g. %s@3)", name, name)
		}
		return nil
	}
	withDefault := func(def int) int {
		if hasParam {
			return param
		}
		return def
	}
	switch name {
	case "crash":
		return Crash(), nil
	case "crash-after":
		if err := needParam(); err != nil {
			return nil, err
		}
		return CrashAfter(param), nil
	case "silent":
		if hasParam {
			return SilentFor(param, nil), nil
		}
		return Silent(), nil
	case "garbage":
		return GarbageSpammer(seed, withDefault(1000), 32), nil
	case "replay":
		return Replayer(withDefault(1000)), nil
	default:
		return nil, fmt.Errorf("unknown behaviour %q (want crash, crash-after, silent, garbage or replay)", name)
	}
}
