package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/ba"
	"repro/internal/bitgen"
	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/gradecast"
	"repro/internal/poly"
	"repro/internal/simnet"
	"repro/internal/vss"
)

// This file holds protocol-aware attacks: Byzantine players that follow a
// protocol's round structure and wire format exactly, deviating only in the
// values they commit to. Each is a named cheat against a paper figure —
// wrong-degree and inconsistent dealings against VSS (Fig. 2/3), lying
// verifiers against the batch degree check, a griefing king against
// phase-king BA, a deviant dealer inside Coin-Gen (Fig. 5) — plus Strategy
// constructors for the equivocation attacks that live below the player,
// in the message layer.

// randomPolys draws `count` random polynomials of degree exactly `deg`
// (leading coefficient forced nonzero).
func randomPolys(f gf2k.Field, count, deg int, rng *rand.Rand) ([]poly.Poly, error) {
	out := make([]poly.Poly, count)
	for j := range out {
		s, err := f.Rand(rng)
		if err != nil {
			return nil, err
		}
		p, err := poly.Random(f, deg, s, rng)
		if err != nil {
			return nil, err
		}
		if p[deg] == 0 {
			p[deg] = 1
		}
		out[j] = p
	}
	return out, nil
}

// shareBuf evaluates every polynomial at player i's id into one wire buffer,
// the same layout vss.Deal sends: m+1 elements, mask last.
func shareBuf(f gf2k.Field, polys []poly.Poly, i int) ([]byte, error) {
	id, err := f.ElementFromID(i + 1)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(polys)*f.ByteLen())
	for _, p := range polys {
		buf = f.AppendElement(buf, poly.Eval(f, p, id))
	}
	return buf, nil
}

// ownInstance assembles the dealer's local vss.Instance from its (possibly
// deviant) polynomials, so the cheating dealer can keep verifying and
// reconstructing in lockstep with the honest players.
func ownInstance(cfg vss.Config, polys []poly.Poly, me int) (*vss.Instance, error) {
	f := cfg.Field
	id, err := f.ElementFromID(me + 1)
	if err != nil {
		return nil, err
	}
	m := len(polys) - 1
	shares := make([]gf2k.Element, m)
	for j := 0; j < m; j++ {
		shares[j] = poly.Eval(f, polys[j], id)
	}
	return vss.NewInstance(cfg, me, shares, poly.Eval(f, polys[m], id)), nil
}

// vssConclude is the honest tail of a VSS ceremony: verify, and — exactly
// when the dealer was accepted — publicly reconstruct all m secrets, so the
// attacker consumes the same rounds as the honest players. It returns the
// verdict.
func vssConclude(nd *simnet.Node, inst *vss.Instance, m int) (interface{}, error) {
	ok, err := inst.Verify(nd)
	if err != nil || !ok {
		return ok, err
	}
	for j := 0; j < m; j++ {
		if _, err := inst.Reconstruct(nd, j); err != nil {
			return nil, fmt.Errorf("adversary: reconstruct %d: %w", j, err)
		}
	}
	return true, nil
}

// VSSWrongDegreeDealer returns a dealer for one VSS ceremony (deal, verify,
// reconstruct-if-accepted) whose m sharing polynomials and mask all have
// degree t+1 instead of ≤ t. The dealing is internally consistent — every
// share lies on the same curve — so only the batch degree check (Fig. 3)
// can catch it, and all honest players must reject the dealer.
func VSSWrongDegreeDealer(cfg vss.Config, m int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed))
		polys, err := randomPolys(cfg.Field, m+1, cfg.T+1, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.N; i++ {
			if i == nd.Index() {
				continue
			}
			buf, err := shareBuf(cfg.Field, polys, i)
			if err != nil {
				return nil, err
			}
			nd.Send(i, buf)
		}
		inst, err := ownInstance(cfg, polys, nd.Index())
		if err != nil {
			return nil, err
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return vssConclude(nd, inst, m)
	}
}

// VSSInconsistentDealer returns a dealer whose polynomials have the correct
// degree but whose shares to each player in `victims` are perturbed by an
// independent pseudo-random offset, so the victims' δ broadcasts fall off
// the polynomial (offsets linear in the victim's id would merely shift the
// curve and pass). With ≤ t victims the Berlekamp–Welch budget absorbs the
// lies and the dealer is still accepted (the sharing it committed to is
// well defined); with more than t the decode must fail and every honest
// player rejects.
func VSSInconsistentDealer(cfg vss.Config, m int, victims []int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		f := cfg.Field
		rng := rand.New(rand.NewSource(seed))
		polys, err := randomPolys(f, m+1, cfg.T, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.N; i++ {
			if i == nd.Index() {
				continue
			}
			buf, err := shareBuf(f, polys, i)
			if err != nil {
				return nil, err
			}
			if containsInt(victims, i) {
				bad := append([]byte(nil), buf...)
				off := len(bad) - f.ByteLen()
				bad[off] ^= byte(1 + rng.Intn(255))
				buf = bad
			}
			nd.Send(i, buf)
		}
		inst, err := ownInstance(cfg, polys, nd.Index())
		if err != nil {
			return nil, err
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return vssConclude(nd, inst, m)
	}
}

// VSSEquivocalDealer returns a dealer that commits to two different sharings
// and splits the network between them: players with index < n/2 receive
// shares of sharing A, the rest sharing B. No single degree-t polynomial
// explains ≥ n−t of the resulting δ broadcasts, so all honest players must
// reject.
func VSSEquivocalDealer(cfg vss.Config, m int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed))
		a, err := randomPolys(cfg.Field, m+1, cfg.T, rng)
		if err != nil {
			return nil, err
		}
		b, err := randomPolys(cfg.Field, m+1, cfg.T, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.N; i++ {
			if i == nd.Index() {
				continue
			}
			polys := a
			if i >= cfg.N/2 {
				polys = b
			}
			buf, err := shareBuf(cfg.Field, polys, i)
			if err != nil {
				return nil, err
			}
			nd.Send(i, buf)
		}
		inst, err := ownInstance(cfg, a, nd.Index())
		if err != nil {
			return nil, err
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return vssConclude(nd, inst, m)
	}
}

// VSSSilentDealer returns a dealer that distributes no shares at all, yet
// still broadcasts a fabricated δ in the verification round. Every honest
// player complains, the complaint count exceeds t, and the dealer must be
// rejected — the δ alone buys nothing.
func VSSSilentDealer(cfg vss.Config, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed))
		if _, err := nd.EndRound(); err != nil { // empty deal round
			return nil, err
		}
		if _, err := cfg.Coins.Expose(nd); err != nil {
			return nil, err
		}
		fake, err := cfg.Field.Rand(rng)
		if err != nil {
			return nil, err
		}
		nd.Broadcast(append([]byte{vss.WireDelta}, cfg.Field.AppendElement(nil, fake)...))
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return false, nil
	}
}

// VSSFalseComplainer returns a verifier that received perfectly good shares
// from `dealer` but broadcasts a complaint anyway — the bad-challenge-
// response attack on the verification round. Up to t complainers must not
// get an honest dealer disqualified.
func VSSFalseComplainer(cfg vss.Config, dealer int) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		if _, err := vss.Deal(nd, cfg, dealer, nil, nil); err != nil {
			return nil, err
		}
		if _, err := cfg.Coins.Expose(nd); err != nil {
			return nil, err
		}
		nd.Broadcast([]byte{vss.WireComplaint})
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return false, nil
	}
}

// VSSDeltaLiar returns a verifier that received good shares from `dealer`
// but broadcasts a random δ instead of the Horner combination — an off-
// polynomial lie the Berlekamp–Welch budget must absorb for up to t liars.
func VSSDeltaLiar(cfg vss.Config, dealer int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed))
		if _, err := vss.Deal(nd, cfg, dealer, nil, nil); err != nil {
			return nil, err
		}
		if _, err := cfg.Coins.Expose(nd); err != nil {
			return nil, err
		}
		fake, err := cfg.Field.Rand(rng)
		if err != nil {
			return nil, err
		}
		nd.Broadcast(append([]byte{vss.WireDelta}, cfg.Field.AppendElement(nil, fake)...))
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return false, nil
	}
}

// PhaseKingGriefer returns a phase-king BA participant that sends seeded
// random votes in every universal-exchange round and, in the phase where it
// is king, announces 0 to even-indexed players and 1 to odd-indexed ones.
// With n ≥ 5t+1 the protocol must still reach agreement (and validity on
// unanimous honest inputs) despite it.
func PhaseKingGriefer(t int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed))
		n := nd.N()
		for phase := 0; phase <= t; phase++ {
			for i := 0; i < n; i++ {
				if i != nd.Index() {
					nd.Send(i, []byte{byte(rng.Intn(2))})
				}
			}
			if _, err := nd.EndRound(); err != nil {
				return nil, fmt.Errorf("adversary: griefer phase %d round A: %w", phase, err)
			}
			if nd.Index() == phase {
				for i := 0; i < n; i++ {
					if i != nd.Index() {
						nd.Send(i, []byte{byte(i & 1)})
					}
				}
			}
			if _, err := nd.EndRound(); err != nil {
				return nil, fmt.Errorf("adversary: griefer phase %d round B: %w", phase, err)
			}
		}
		return nil, nil
	}
}

// CoinGenWrongDegreeDealer participates in one full Coin-Gen execution
// (Fig. 5) as a dealer whose Bit-Gen polynomials have degree t+1, staying in
// lockstep throughout: it exposes the challenge, exchanges γs computed from
// its deviant shares, grade-casts garbage and votes 0 in every leader BA
// until the honest players elect a leader. The consistency-graph check must
// exclude it from the agreed clique.
func CoinGenWrongDegreeDealer(f gf2k.Field, n, t, m int, seedCoins coin.Source, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed))
		polys, err := randomPolys(f, m+1, t+1, rng)
		if err != nil {
			return nil, err
		}
		sh := &bitgen.Shares{
			Alpha:    make([][]gf2k.Element, n),
			Mask:     make([]gf2k.Element, n),
			Received: make([]bool, n),
			OwnPolys: polys,
		}
		for p := 0; p < n; p++ {
			id, err := f.ElementFromID(p + 1)
			if err != nil {
				return nil, err
			}
			if p == nd.Index() {
				row := make([]gf2k.Element, m)
				for h := 0; h < m; h++ {
					row[h] = poly.Eval(f, polys[h], id)
				}
				sh.Alpha[p], sh.Mask[p], sh.Received[p] = row, poly.Eval(f, polys[m], id), true
				continue
			}
			buf, err := shareBuf(f, polys, p)
			if err != nil {
				return nil, err
			}
			nd.Send(p, buf)
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		r, err := seedCoins.Expose(nd)
		if err != nil {
			return nil, err
		}
		bcfg := bitgen.Config{Field: f, N: n, T: t, M: m}
		if _, err := bitgen.ExchangeGammas(nd, bcfg, sh, r); err != nil {
			return nil, err
		}
		if _, err := gradecast.RunAll(nd, t, []byte{0xff}); err != nil {
			return nil, err
		}
		for {
			if _, err := seedCoins.ExposeMod(nd, n); err != nil {
				return nil, err
			}
			dec, err := (ba.PhaseKing{T: t}).Run(nd, 0)
			if err != nil {
				return nil, err
			}
			if dec == 1 {
				return nil, nil
			}
		}
	}
}

// GradeCastSplitter returns a message-level Strategy for the grade-splitting
// sender: in dissemination round `round`, the copies of `sender`'s value
// addressed to `victims` are replaced with `alt`, so the network starts the
// echo rounds split between two values. Grade-Cast's guarantee under test:
// grades for the split instance never land 2 at one honest player and 0 at
// another, and all players with grade ≥ 1 agree on the value.
func GradeCastSplitter(sender, round int, victims []int, alt []byte) *Strategy {
	return NewStrategy(0).On(
		Match{Senders: []int{sender}, Receivers: victims, Round: RoundIs(round)},
		Tamper(func(to int, p []byte) []byte { return append([]byte(nil), alt...) }),
	)
}

// GradeCastEchoLiar returns a Strategy that garbles every framed echo
// message `sender` sends in the two echo rounds following dissemination
// round `round` — the sender distributes its value honestly, then sabotages
// the agreement about everyone's values.
func GradeCastEchoLiar(sender, round int, seed int64) *Strategy {
	return NewStrategy(seed).On(
		Match{Senders: []int{sender}, Round: RoundIn(round+1, round+2)},
		Garble(64),
	)
}

// GammaEquivocator returns a Strategy for the γ-equivocating Bit-Gen player:
// in the γ-exchange round each recipient sees `sender`'s announcement with a
// different coordinate perturbed, so no two honest players share a view of
// the sender's γ vector. The consistency graph (Fig. 5 step 4) must cope:
// honest players still agree on a clique, and the coin stays unanimous.
func GammaEquivocator(f gf2k.Field, sender, round int) *Strategy {
	entry := 1 + f.ByteLen() // per-dealer record: status flag + element
	return NewStrategy(0).On(
		Match{Senders: []int{sender}, Round: RoundIs(round)},
		Tamper(func(to int, p []byte) []byte {
			if len(p) < entry {
				return p
			}
			n := len(p) / entry
			off := (to%n)*entry + 1
			if off < len(p) {
				p[off] ^= byte(to + 1)
			}
			return p
		}),
	)
}

// DealCorruptor returns a Strategy that perturbs the first share element of
// every dealing message `sender` sends in round `round`, with a different
// offset per recipient. The recipients' shares no longer lie on any degree-t
// polynomial, so the sender's Bit-Gen instance must fail decoding and the
// sender must drop out of the agreed clique.
func DealCorruptor(sender, round int) *Strategy {
	return NewStrategy(0).On(
		Match{Senders: []int{sender}, Round: RoundIs(round)},
		PerRecipientFlip(0),
	)
}

// VoteEquivocator returns a Strategy that rewrites every one-byte BA vote
// `sender` sends so even-indexed recipients read 0 and odd-indexed ones
// read 1 — the sender's own code can be honest; the attack lives entirely in
// the message layer.
func VoteEquivocator(sender int) *Strategy {
	return NewStrategy(0).On(
		Match{Senders: []int{sender}},
		Tamper(func(to int, p []byte) []byte {
			if len(p) == 1 {
				p[0] = byte(to & 1)
			}
			return p
		}),
	)
}
