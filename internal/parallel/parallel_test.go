package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, width := range []int{-1, 0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			p := New(width)
			hits := make([]int32, n)
			p.ForEach(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("width=%d n=%d: index %d ran %d times", width, n, i, h)
				}
			}
		}
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if got := p.Width(); got != 1 {
		t.Fatalf("nil pool width = %d, want 1", got)
	}
	sum := 0
	p.ForEach(10, func(i int) { sum += i }) // no atomics: must run inline
	if sum != 45 {
		t.Fatalf("nil pool ForEach sum = %d, want 45", sum)
	}
	if fork := p.Fork(); fork != nil {
		t.Fatalf("Fork of nil pool = %v, want nil", fork)
	}
	if cp := p.WithCounters(&metrics.Counters{}); cp != nil {
		t.Fatalf("WithCounters on nil pool = %v, want nil", cp)
	}
}

func TestWidthEdgeCases(t *testing.T) {
	if w := New(0).Width(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0) width = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(-3).Width(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3) width = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	one := New(1)
	if one.sem != nil {
		t.Fatal("New(1) allocated a semaphore; want pure serial pool")
	}
	// Serial pools must run the body on the calling goroutine so callers
	// may close over non-atomic locals.
	sum := 0
	one.ForEach(5, func(i int) { sum += i })
	if sum != 10 {
		t.Fatalf("width-1 ForEach sum = %d, want 10", sum)
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	p := New(8)
	got := Map(p, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map result[%d] = %d, want %d", i, v, i*i)
		}
	}
	if Map(p, 0, func(i int) int { return i }) != nil {
		t.Fatal("Map with n=0 should return nil")
	}
}

func TestPanicPropagatesToCaller(t *testing.T) {
	p := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		if r != "boom-7" {
			t.Fatalf("recovered %v, want boom-7", r)
		}
		// The pool must have returned its tokens: a subsequent fan-out
		// still engages extra workers (ParallelWidth > 0 proves a token
		// was borrowed; WithCounters shares the same semaphore).
		var c metrics.Counters
		p.WithCounters(&c).ForEach(64, func(i int) {})
		if c.Snapshot().ParallelWidth == 0 {
			t.Fatal("pool lost its capacity tokens after a panic")
		}
	}()
	p.ForEach(64, func(i int) {
		if i == 7 {
			panic("boom-7")
		}
	})
}

func TestPanicOnCallerGoroutinePropagates(t *testing.T) {
	// Index 0 is claimed first by the caller (worker zero) most of the
	// time, but any worker may reach it; either way the panic must cross.
	p := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("panic from first index did not propagate")
		}
	}()
	p.ForEach(2, func(i int) {
		if i == 0 {
			panic("first")
		}
	})
}

func TestForkSharesCapacity(t *testing.T) {
	root := New(2) // one borrowable token
	a, b := root.Fork(), root.Fork()

	// Occupy the single token through fork a; fork b must degrade to
	// serial (its fan-out still completes, entirely on its caller).
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.ForEach(2, func(i int) {
			if i == 1 {
				close(started)
				<-release
			} else {
				<-release
			}
		})
	}()
	<-started
	done := make(chan struct{})
	go func() {
		b.ForEach(8, func(i int) {})
		close(done)
	}()
	<-done // must not deadlock: b runs serially when no token is free
	close(release)
	wg.Wait()
}

func TestCountersRecordFanOut(t *testing.T) {
	var c metrics.Counters
	p := New(4).WithCounters(&c)
	p.ForEach(100, func(i int) {})
	s := c.Snapshot()
	if s.ParallelTasks != 100 {
		t.Fatalf("ParallelTasks = %d, want 100", s.ParallelTasks)
	}
	if s.ParallelWidth < 1 || s.ParallelWidth > 3 {
		t.Fatalf("ParallelWidth = %d, want 1..3 extra workers", s.ParallelWidth)
	}
	// Serial paths must not count.
	c.Reset()
	p.ForEach(1, func(i int) {})
	var nilPool *Pool
	nilPool.ForEach(50, func(i int) {})
	if s := c.Snapshot(); s.ParallelTasks != 0 || s.ParallelWidth != 0 {
		t.Fatalf("serial paths recorded %+v, want zeros", s)
	}
}

func TestSerialPathDoesNotAllocate(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	var p *Pool
	fn := func(i int) {}
	if n := testing.AllocsPerRun(100, func() { p.ForEach(8, fn) }); n != 0 {
		t.Fatalf("nil-pool ForEach allocates %v per run, want 0", n)
	}
	one := New(1)
	if n := testing.AllocsPerRun(100, func() { one.ForEach(8, fn) }); n != 0 {
		t.Fatalf("width-1 ForEach allocates %v per run, want 0", n)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 16, 0}, {-5, 16, 0}, {1, 16, 1}, {16, 16, 1},
		{17, 16, 2}, {32, 16, 2}, {33, 16, 3}, {10, 0, 0},
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.size); got != c.want {
			t.Fatalf("Chunks(%d,%d) = %d, want %d", c.n, c.size, got, c.want)
		}
	}
}

// TestDeterministicSlots is the ordering guarantee under -race: concurrent
// workers write disjoint per-index slots, and after ForEach returns the
// caller reads them all without further synchronization. Any missing
// happens-before edge between a worker's write and the caller's read is a
// race-detector failure.
func TestDeterministicSlots(t *testing.T) {
	p := New(runtime.GOMAXPROCS(0))
	for round := 0; round < 50; round++ {
		out := make([]int, 257)
		p.ForEach(len(out), func(i int) { out[i] = i * 3 })
		for i, v := range out {
			if v != i*3 {
				t.Fatalf("round %d: slot %d = %d, want %d", round, i, v, i*3)
			}
		}
	}
}

func TestConcurrentForEachOnSharedPool(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				var sum atomic.Int64
				p.ForEach(100, func(i int) { sum.Add(int64(i)) })
				if sum.Load() != 4950 {
					t.Error("concurrent ForEach dropped indices")
					return
				}
			}
		}()
	}
	wg.Wait()
}
