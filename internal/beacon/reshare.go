package beacon

// Dealer-free committee handover (internal/reshare) wired into the daemon
// deployment. The choreography has two halves:
//
//   - While serving, an ARMED daemon (DaemonConfig.ReshareNext set)
//     negotiates a round-aligned cutover position with its peers over the
//     Query channel — see (*Daemon).reshareStep — pauses emission there,
//     journals the decision, and returns ErrReshareCutover.
//   - The process (cmd/beacond) then calls RunReshare: every participant —
//     old members, pure joiners, stale members recovering from a missed
//     refill — brings up a COMBINED mesh (old ∪ new roster, its own
//     config digest, so it can never cross-talk with either committee's
//     serving mesh), runs the reshare.Run ceremony over the journaled
//     store tail, backfills the public log for members that lack it, and
//     writes the next generation's player-NNN.* state files. The daemons
//     then restart against the new-generation peers.yaml.
//
// Crash safety is journal-based: reshare-journal.json records the target
// generation, the committed cutover and the attempt counter. A daemon that
// dies mid-negotiation re-adopts the journaled cutover; a process that
// dies mid-ceremony retries with a bumped attempt number (stale attempts
// consumed their challenge coin publicly, so an attempt number is never
// reused — reshare.Config.Attempt); a process that dies after the new
// store was written finds it on restart and only clears the journal. The
// ceremony writes log, then meta, then store, in that order, so a
// next-generation store on disk proves the earlier files are durable.

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/reshare"
	"repro/internal/simnet"
)

// ErrReshareCutover is returned by Daemon.Run when an armed daemon reached
// the negotiated cutover position: its state is persisted, emission is
// stopped cluster-wide at the same log length, and the operator's (or
// supervisor's) next move is RunReshare followed by a restart against the
// next-generation peers.yaml.
var ErrReshareCutover = errors.New("beacon: reshare cutover reached (run the resharing ceremony, then restart with the new peers.yaml)")

// ReshareJournal is the crash-recovery record for an in-flight handover,
// persisted as reshare-journal.json in the state directory from the moment
// a cutover is committed until the ceremony's state files are durable.
type ReshareJournal struct {
	// ToGeneration is the generation being reshared INTO (the next
	// peers.yaml's generation field).
	ToGeneration int
	// Cutover is the committed public-log length at which the old
	// committee stops emitting; every participant reshapes the store tail
	// behind this position. -1 while negotiating.
	Cutover int
	// Attempt is the next ceremony attempt number to use. Bumped (and
	// fsynced) BEFORE each attempt runs, so a crashed attempt — which may
	// have publicly exposed its challenge coin — is never replayed.
	Attempt int
}

func reshareJournalFile(dir string) string {
	return filepath.Join(dir, "reshare-journal.json")
}

// LoadReshareJournal reads the journal; (nil, nil) when none exists.
func LoadReshareJournal(dir string) (*ReshareJournal, error) {
	data, err := os.ReadFile(reshareJournalFile(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var j ReshareJournal
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("beacon: reshare journal corrupt: %w", err)
	}
	return &j, nil
}

// SaveReshareJournal atomically persists the journal.
func SaveReshareJournal(dir string, j ReshareJournal) error {
	enc, err := json.Marshal(j)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	return writeAtomic(reshareJournalFile(dir), enc)
}

// ClearReshareJournal removes the journal (missing is fine).
func ClearReshareJournal(dir string) error {
	err := os.Remove(reshareJournalFile(dir))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// CombinedConfig derives the ceremony mesh's peer config from the old and
// next rosters: old members keep their node ids 0..oldN-1, new members
// already present in the old roster (matched by dial address) reuse their
// old node, and pure joiners are appended in next-roster order. The
// returned newOf maps combined node → next-committee index (-1 for leaving
// members), in the exact shape reshare.Config.NewOf wants.
//
// The combined config's digest — and hence its handshake — pins BOTH
// source digests, the target generation and the attempt number via the
// cluster label, so a participant reading a different roster file, or
// retrying a different attempt, cannot connect at all.
func CombinedConfig(old, next *simnet.PeerConfig, attempt int) (*simnet.PeerConfig, []int, error) {
	if old == nil || next == nil {
		return nil, nil, errors.New("beacon: reshare needs both the old and the next peer config")
	}
	if next.Generation != old.Generation+1 {
		return nil, nil, fmt.Errorf("beacon: next config generation %d must be old generation %d + 1",
			next.Generation, old.Generation)
	}
	if effectiveK(old) != effectiveK(next) {
		return nil, nil, fmt.Errorf("beacon: reshare cannot change the coin field (k=%d → k=%d)",
			effectiveK(old), effectiveK(next))
	}
	if next.N() < 6*next.T+1 {
		return nil, nil, fmt.Errorf("beacon: next committee n=%d < 6t+1=%d cannot run the beacon",
			next.N(), 6*next.T+1)
	}
	if attempt < 0 {
		return nil, nil, fmt.Errorf("beacon: negative reshare attempt %d", attempt)
	}

	oldN := old.N()
	oldByAddr := make(map[string]int, oldN)
	for _, p := range old.Peers {
		oldByAddr[p.Addr] = p.ID
	}
	peers := append([]simnet.Peer(nil), old.Peers...)
	newOf := make([]int, oldN)
	for i := range newOf {
		newOf[i] = -1
	}
	for _, p := range next.Peers {
		if o, ok := oldByAddr[p.Addr]; ok {
			newOf[o] = p.ID
			// The staying member may have moved its NAT bind or
			// observability address between generations; the ceremony mesh
			// uses the next roster's view of both.
			peers[o].Listen = p.Listen
			peers[o].HTTP = p.HTTP
			continue
		}
		joiner := p
		joiner.ID = len(peers)
		peers = append(peers, joiner)
		newOf = append(newOf, p.ID)
	}

	od, nd := old.Digest(), next.Digest()
	mac := hmac.New(sha256.New, append(append([]byte{}, old.Secret...), next.Secret...))
	fmt.Fprintf(mac, "dprbg-reshare-secret\n%x\n%x\n", od, nd)
	cc := &simnet.PeerConfig{
		Cluster: fmt.Sprintf("reshare-%x-%x-g%d-a%d", od[:8], nd[:8], next.Generation, attempt),
		Secret:  mac.Sum(nil),
		Peers:   peers,
		T:       old.T,
		K:       old.K,
	}
	if err := cc.Validate(); err != nil {
		return nil, nil, fmt.Errorf("beacon: combined reshare roster: %w", err)
	}
	return cc, newOf, nil
}

func effectiveK(pc *simnet.PeerConfig) int {
	if pc.K == 0 {
		return 32
	}
	return pc.K
}

// ReshareConfig parameterizes one participant's side of the ceremony.
type ReshareConfig struct {
	// Old and Next are the two generations' peers.yaml files. Next's
	// generation must be Old's + 1.
	Old, Next *simnet.PeerConfig
	// OldSelf is this participant's index in the OLD roster, -1 for a pure
	// joiner. NewSelf is its index in the NEXT roster, -1 for a leaving
	// member. At least one must be set; when both are, they must describe
	// the same peer (matching dial address).
	OldSelf, NewSelf int
	// StateDir holds the participant's player files and the journal.
	StateDir string
	// Stale marks an old member whose store missed a refill (the
	// ErrEpochMismatch recovery path): it participates receive-only — it
	// is branded a cheating sub-dealer by the others (≤ t such members are
	// tolerated) but still receives fresh next-generation shares and
	// backfills its public log.
	Stale bool
	// Rand is this participant's private randomness for sub-dealing.
	Rand io.Reader
	// MaxAttempts bounds the retry loop (default 3). Every attempt bumps
	// the journaled attempt number first.
	MaxAttempts int
	// JoinTimeout bounds each attempt's mesh formation and backfill
	// (default 30s). RoundTimeout/WriteTimeout tune the ceremony transport.
	JoinTimeout  time.Duration
	RoundTimeout time.Duration
	WriteTimeout time.Duration

	Counters    *metrics.Counters
	Tracer      *obs.Tracer
	Metrics     *DaemonMetrics
	PeerMetrics *simnet.PeerMetrics
	Logf        func(format string, args ...interface{})
}

// ReshareResult reports a completed handover.
type ReshareResult struct {
	// Generation is the new committee generation now on disk.
	Generation int
	// Cutover is the public-log length the committees agreed to hand over
	// at; the new committee resumes emitting coin #Cutover.
	Cutover int
	// Coins is the sealed-coin count in the reshared store.
	Coins int
	// Cheaters lists old-roster indices identified as faulty sub-dealers
	// (a Stale participant appears here by design).
	Cheaters []int
	// Attempt is the ceremony attempt that succeeded.
	Attempt int
	// Resumed is true when the ceremony found this participant's
	// next-generation store already on disk (crash after the writes) and
	// only cleared the journal.
	Resumed bool
}

// RunReshare executes this participant's side of the dealer-free handover
// ceremony: mesh up with the combined roster, reshare the journaled store
// tail, write the next generation's state files, clear the journal. It is
// safe to re-run after a crash at any point. On success the caller restarts
// the daemon against the Next config (a leaving member instead retires its
// now-toxic store, which RunReshare has already deleted).
func RunReshare(ctx context.Context, rc ReshareConfig) (*ReshareResult, error) {
	if rc.Logf == nil {
		rc.Logf = func(string, ...interface{}) {}
	}
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 3
	}
	if rc.JoinTimeout <= 0 {
		rc.JoinTimeout = 30 * time.Second
	}
	if rc.Old == nil || rc.Next == nil {
		return nil, errors.New("beacon: reshare needs both peer configs")
	}
	if rc.OldSelf < 0 && rc.NewSelf < 0 {
		return nil, errors.New("beacon: reshare participant is neither an old nor a new member")
	}
	if rc.OldSelf >= rc.Old.N() || rc.NewSelf >= rc.Next.N() {
		return nil, fmt.Errorf("beacon: reshare self (%d, %d) outside rosters (%d, %d)",
			rc.OldSelf, rc.NewSelf, rc.Old.N(), rc.Next.N())
	}
	if rc.OldSelf >= 0 && rc.NewSelf >= 0 &&
		rc.Old.Peers[rc.OldSelf].Addr != rc.Next.Peers[rc.NewSelf].Addr {
		return nil, fmt.Errorf("beacon: old self %d and new self %d have different dial addresses",
			rc.OldSelf, rc.NewSelf)
	}
	if rc.Stale && rc.OldSelf < 0 {
		return nil, errors.New("beacon: only an old member can be stale")
	}

	// Idempotent completion: the store is written LAST, so finding the
	// next-generation store on disk proves log and meta are durable too —
	// the crash happened between the writes and the journal removal.
	if rc.NewSelf >= 0 {
		if st, err := LoadStore(rc.StateDir, rc.NewSelf); err == nil && st.Generation == rc.Next.Generation {
			meta, err := LoadMeta(rc.StateDir, rc.NewSelf)
			if err != nil {
				return nil, err
			}
			if err := ClearReshareJournal(rc.StateDir); err != nil {
				return nil, err
			}
			rc.Logf("reshare to generation %d already completed; cleared journal", rc.Next.Generation)
			return &ReshareResult{Generation: rc.Next.Generation, Cutover: meta.LogLen,
				Coins: st.Remaining(), Resumed: true}, nil
		}
	}

	journal, err := LoadReshareJournal(rc.StateDir)
	if err != nil {
		return nil, err
	}
	if journal == nil {
		journal = &ReshareJournal{ToGeneration: rc.Next.Generation, Cutover: -1}
	}
	if journal.ToGeneration != rc.Next.Generation {
		return nil, fmt.Errorf("beacon: journal targets generation %d but the next config says %d — mixed roster files?",
			journal.ToGeneration, rc.Next.Generation)
	}

	var lastErr error
	for try := 0; try < rc.MaxAttempts; try++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		attempt := journal.Attempt
		journal.Attempt = attempt + 1
		if err := SaveReshareJournal(rc.StateDir, *journal); err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := runReshareAttempt(ctx, rc, journal, attempt)
		rc.Metrics.observeReshare(time.Since(t0).Seconds(), err == nil)
		if err == nil {
			return res, nil
		}
		lastErr = err
		rc.Logf("reshare attempt %d failed: %v", attempt, err)
	}
	return nil, fmt.Errorf("beacon: resharing failed after %d attempts: %w", rc.MaxAttempts, lastErr)
}

// runReshareAttempt is one pass: mesh, position agreement, backfill,
// ceremony, state writes.
func runReshareAttempt(ctx context.Context, rc ReshareConfig, journal *ReshareJournal, attempt int) (*ReshareResult, error) {
	cc, newOf, err := CombinedConfig(rc.Old, rc.Next, attempt)
	if err != nil {
		return nil, err
	}
	oldN := rc.Old.N()
	self := rc.OldSelf
	if self < 0 {
		addr := rc.Next.Peers[rc.NewSelf].Addr
		for _, p := range cc.Peers[oldN:] {
			if p.Addr == addr {
				self = p.ID
				break
			}
		}
		if self < 0 {
			return nil, fmt.Errorf("beacon: joiner %s not in the combined roster", addr)
		}
	}
	if rc.NewSelf != newOf[self] {
		return nil, fmt.Errorf("beacon: reshare self mismatch: combined node %d maps to new index %d, not %d",
			self, newOf[self], rc.NewSelf)
	}

	// Old members load their persisted state; a stale member loads only
	// its (possibly short) public log and abstains from sub-dealing.
	var oldStore *coin.Store
	var log []gf2k.Element
	if rc.OldSelf >= 0 {
		log, err = LoadCoinLog(CoinLogFile(rc.StateDir, rc.OldSelf))
		if err != nil {
			return nil, err
		}
		if !rc.Stale {
			st, err := LoadStore(rc.StateDir, rc.OldSelf)
			if err != nil {
				return nil, fmt.Errorf("%w (a member without a current store joins with -reshare-stale)", err)
			}
			if st.Generation != rc.Old.Generation {
				return nil, fmt.Errorf("beacon: store is generation %d, old config says %d — wrong roster file?",
					st.Generation, rc.Old.Generation)
			}
			meta, err := LoadMeta(rc.StateDir, rc.OldSelf)
			if err != nil {
				return nil, err
			}
			gap := len(log) - meta.LogLen
			if gap < 0 {
				return nil, fmt.Errorf("beacon: player %d log (%d entries) behind its store snapshot (%d)",
					rc.OldSelf, len(log), meta.LogLen)
			}
			if err := st.Discard(gap); err != nil {
				return nil, fmt.Errorf("beacon: player %d reshare reconciliation: %w", rc.OldSelf, err)
			}
			oldStore = st
		}
	}

	// The ceremony mesh answers two queries, both served from the loaded
	// log: RPOS (the cutover position) and RLOG (public-log backfill for
	// joiners and stale members). Only non-stale old members may answer
	// RPOS — a stale member's log can be behind the cutover.
	serveLog := append([]gf2k.Element(nil), log...)
	servePos := -1
	if rc.OldSelf >= 0 && !rc.Stale {
		servePos = len(serveLog)
	}
	handler := func(from int, req []byte) []byte {
		s := string(req)
		switch {
		case s == "RPOS":
			if servePos < 0 {
				return nil
			}
			return []byte(fmt.Sprintf("%d", servePos))
		case strings.HasPrefix(s, "RLOG "):
			var lo, count int
			if _, err := fmt.Sscanf(s, "RLOG %d %d", &lo, &count); err != nil || lo < 0 || count < 1 {
				return nil
			}
			hi := lo + count
			if hi > len(serveLog) {
				hi = len(serveLog)
			}
			var b strings.Builder
			for i := lo; i < hi; i++ {
				b.WriteString(FormatLogEntry(i, serveLog[i]))
				b.WriteByte('\n')
			}
			return []byte(b.String())
		}
		return nil
	}

	opts := []simnet.Option{simnet.WithQueryHandler(handler)}
	if rc.Counters != nil {
		opts = append(opts, simnet.WithCounters(rc.Counters))
	}
	if rc.Tracer != nil {
		opts = append(opts, simnet.WithTracer(rc.Tracer))
	}
	if rc.RoundTimeout > 0 {
		opts = append(opts, simnet.WithRoundTimeout(rc.RoundTimeout))
	}
	if rc.WriteTimeout > 0 {
		opts = append(opts, simnet.WithWriteTimeout(rc.WriteTimeout))
	}
	if rc.PeerMetrics != nil {
		opts = append(opts, simnet.WithPeerMetrics(rc.PeerMetrics))
	}
	nw, err := simnet.NewPeer(cc, self, opts...)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			nw.Close()
		case <-stop:
		}
	}()

	// Mesh formation. The ceremony can tolerate ≤ t unreachable OLD
	// members (they become silent sub-dealers), but every NEW member must
	// be present — a joiner that misses the ceremony has no way to obtain
	// its shares afterwards.
	meshErr := nw.WaitPeers(cc.N()-1, rc.JoinTimeout/2)
	up := nw.PeerConnected()
	oldDown := 0
	for node, j := range newOf {
		if node == self {
			continue
		}
		if j >= 0 && !up[node] {
			return nil, fmt.Errorf("beacon: new member %d (node %d, %s) unreachable — every new member must attend the ceremony (mesh: %v)",
				j, node, cc.Peers[node].Addr, meshErr)
		}
		if node < oldN && !up[node] {
			oldDown++
		}
	}
	if oldDown > rc.Old.T {
		return nil, fmt.Errorf("beacon: %d old members unreachable, above the fault bound t=%d (mesh: %v)",
			oldDown, rc.Old.T, meshErr)
	}

	// Position agreement: t+1 identical RPOS answers pin the committed
	// cutover (at most t old members lie, so a (t+1)-supported value is
	// the honest committee's). A non-stale old member whose own log
	// disagrees missed the cutover memo while partitioned — its store
	// cursor is misaligned, so sub-dealing would only get it branded a
	// cheater; fail it loudly toward the stale path instead.
	cutover, err := queryCutover(nw, oldN, rc.Old.T, up, self)
	if err != nil {
		return nil, err
	}
	if servePos >= 0 && servePos != cutover {
		return nil, fmt.Errorf("beacon: this member paused at %d but the committee's cutover is %d — rejoin the ceremony as stale (-reshare-stale)",
			servePos, cutover)
	}
	if journal.Cutover >= 0 && journal.Cutover != cutover {
		return nil, fmt.Errorf("beacon: journal cutover %d disagrees with the cluster's %d — state dir mixed up?",
			journal.Cutover, cutover)
	}
	if journal.Cutover != cutover {
		journal.Cutover = cutover
		if err := SaveReshareJournal(rc.StateDir, *journal); err != nil {
			return nil, err
		}
	}

	// Continuing members need the public log up to the cutover: backfill
	// whatever is missing (everything, for a joiner) with t+1 agreement.
	if rc.NewSelf >= 0 && len(log) < cutover {
		got, err := fetchCeremonyLog(nw, oldN, rc.Old.T, up, self, len(log), cutover, rc.JoinTimeout/2)
		if err != nil {
			return nil, err
		}
		log = append(log, got...)
	}
	if rc.NewSelf >= 0 && len(log) > cutover {
		return nil, fmt.Errorf("beacon: local log (%d entries) is ahead of the cutover %d — state dir mixed up?",
			len(log), cutover)
	}

	if err := nw.StartAt(0); err != nil {
		return nil, err
	}
	cfg := reshare.Config{
		Field:      coreFieldFor(rc.Old, rc.Counters),
		OldN:       oldN,
		OldT:       rc.Old.T,
		NewN:       rc.Next.N(),
		NewT:       rc.Next.T,
		NewOf:      newOf,
		Attempt:    attempt,
		Generation: rc.Next.Generation,
		Counters:   rc.Counters,
	}
	rc.Logf("reshare attempt %d: ceremony over %d nodes (%d old, %d new), cutover %d",
		attempt, cc.N(), oldN, rc.Next.N(), cutover)
	res, err := reshare.Run(nw.Node(self), cfg, oldStore, rc.Rand)
	if err != nil {
		return nil, err
	}
	rc.Logf("reshare attempt %d: %d coins reshared, quorum %v, cheaters %v",
		attempt, res.Coins, res.Quorum, res.Cheaters)

	out := &ReshareResult{Generation: rc.Next.Generation, Cutover: cutover,
		Coins: res.Coins, Cheaters: res.Cheaters, Attempt: attempt}
	if rc.NewSelf < 0 {
		// Leaving member: its job was sub-dealing. Destroy the old store —
		// after the handover its shares are toxic waste that could erode
		// the new committee's proactive-security margin if exfiltrated
		// later. The public log stays (it is public output).
		if err := os.Remove(storeFile(rc.StateDir, rc.OldSelf)); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		if err := ClearReshareJournal(rc.StateDir); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Continuing member: write the next generation's state files — log,
	// meta, store, in that order (see the package comment's crash story).
	var b strings.Builder
	for i, v := range log {
		b.WriteString(FormatLogEntry(i, v))
		b.WriteByte('\n')
	}
	if err := writeAtomic(CoinLogFile(rc.StateDir, rc.NewSelf), []byte(b.String())); err != nil {
		return nil, err
	}
	if err := SaveMeta(rc.StateDir, rc.NewSelf, Meta{Epoch: 0, LogLen: cutover, Generation: rc.Next.Generation}); err != nil {
		return nil, err
	}
	if err := SaveStore(rc.StateDir, rc.NewSelf, res.Store); err != nil {
		return nil, err
	}
	if rc.OldSelf >= 0 && rc.OldSelf != rc.NewSelf {
		// The member continues under a different index: its old-identity
		// files are dead state (and the store, again, toxic waste).
		for _, f := range []string{storeFile(rc.StateDir, rc.OldSelf),
			metaFile(rc.StateDir, rc.OldSelf), CoinLogFile(rc.StateDir, rc.OldSelf)} {
			if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
	}
	if err := ClearReshareJournal(rc.StateDir); err != nil {
		return nil, err
	}
	return out, nil
}

// queryCutover asks the old committee for the committed cutover position,
// requiring t+1 identical answers — at most t Byzantine members exist, so
// any (t+1)-supported value is the honest committee's.
func queryCutover(nw *simnet.Network, oldN, oldT int, up []bool, self int) (int, error) {
	votes := map[int]int{}
	for node := 0; node < oldN; node++ {
		if node == self || !up[node] {
			continue
		}
		resp, err := nw.Query(node, []byte("RPOS"), 2*time.Second)
		if err != nil || len(resp) == 0 {
			continue
		}
		var p int
		if _, err := fmt.Sscanf(string(resp), "%d", &p); err != nil || p < 0 {
			continue
		}
		votes[p]++
		if votes[p] >= oldT+1 {
			return p, nil
		}
	}
	return 0, fmt.Errorf("beacon: no cutover position with %d matching answers (votes: %v)", oldT+1, votes)
}

// fetchCeremonyLog backfills public-log entries [lo, hi) over the ceremony
// mesh, cross-checking min(t+1, reachable) old members per entry.
func fetchCeremonyLog(nw *simnet.Network, oldN, oldT int, up []bool, self, lo, hi int, patience time.Duration) ([]gf2k.Element, error) {
	var servers []int
	for node := 0; node < oldN; node++ {
		if node != self && up[node] {
			servers = append(servers, node)
		}
	}
	quorum := oldT + 1
	if len(servers) < quorum {
		quorum = len(servers)
	}
	if quorum < 1 {
		return nil, errors.New("beacon: no old members reachable for ceremony log backfill")
	}
	deadline := time.Now().Add(patience)
	entries := make([]gf2k.Element, 0, hi-lo)
	for len(entries) < hi-lo {
		pos := lo + len(entries)
		var verified []gf2k.Element
		responders := 0
		for _, node := range shuffledCopy(servers) {
			resp, err := nw.Query(node, []byte(fmt.Sprintf("RLOG %d %d", pos, hi-pos)), 2*time.Second)
			if err != nil {
				continue
			}
			got, err := parseLogEntries(resp, pos)
			if err != nil {
				return nil, fmt.Errorf("beacon: node %d served a malformed ceremony log: %w", node, err)
			}
			if responders == 0 {
				verified = got
			} else {
				shorter := len(verified)
				if len(got) < shorter {
					shorter = len(got)
				}
				for i := 0; i < shorter; i++ {
					if got[i] != verified[i] {
						return nil, fmt.Errorf("beacon: old members disagree on public coin %d (%x vs %x)",
							pos+i, uint64(verified[i]), uint64(got[i]))
					}
				}
				if len(got) < len(verified) {
					verified = verified[:len(got)]
				}
			}
			responders++
			if responders == quorum {
				break
			}
		}
		if responders < quorum {
			return nil, fmt.Errorf("beacon: only %d/%d old members answered the ceremony log fetch", responders, quorum)
		}
		entries = append(entries, verified...)
		if len(entries) < hi-lo {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("beacon: ceremony backfill stalled at %d/%d entries", len(entries), hi-lo)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return entries, nil
}

// coreFieldFor builds the coin field the cluster's core config uses.
func coreFieldFor(pc *simnet.PeerConfig, ctr *metrics.Counters) gf2k.Field {
	f := gf2k.MustNew(effectiveK(pc))
	if ctr != nil {
		f = f.WithCounters(ctr)
	}
	return f
}
