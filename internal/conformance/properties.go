package conformance

import (
	"fmt"

	"repro/internal/gf2k"
	"repro/internal/poly"
)

// UnpredictabilityWitness checks the coin-unpredictability property from the
// adversary's side: given the sealed-coin shares held by a coalition of at
// most t players (ids are 0-based player indices, shares their values for
// one coin), it constructively shows that for BOTH candidate openings v and
// v+1 there is a degree-≤t polynomial consistent with everything the
// coalition knows. Since a degree-t sharing is information-theoretically
// determined only by t+1 points, the coalition's view fixes nothing about
// the coin before Coin-Expose: any opening remains possible.
//
// exposed is the value the coin actually opened to; the witness confirms a
// completion through (0, exposed) and through (0, exposed+1), and that the
// two completions are distinct polynomials.
func UnpredictabilityWitness(f gf2k.Field, t int, ids []int, shares []gf2k.Element, exposed gf2k.Element) error {
	if len(ids) != len(shares) {
		return fmt.Errorf("unpredictability: %d ids but %d shares", len(ids), len(shares))
	}
	if len(ids) > t {
		return fmt.Errorf("unpredictability: coalition of %d exceeds fault bound t=%d", len(ids), t)
	}
	xs := make([]gf2k.Element, 0, len(ids)+1)
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("unpredictability: duplicate coalition member %d", id)
		}
		seen[id] = true
		x, err := f.ElementFromID(id + 1)
		if err != nil {
			return fmt.Errorf("unpredictability: member %d: %w", id, err)
		}
		xs = append(xs, x)
	}
	xs = append(xs, 0) // the secret sits at x = 0

	var completions []poly.Poly
	for _, v := range []gf2k.Element{exposed, f.Add(exposed, 1)} {
		ys := append(append([]gf2k.Element{}, shares...), v)
		p, err := poly.Interpolate(f, xs, ys, nil)
		if err != nil {
			return fmt.Errorf("unpredictability: no completion through secret %#x: %w", v, err)
		}
		if p.Degree() > t {
			return fmt.Errorf("unpredictability: completion through %#x has degree %d > t=%d", v, p.Degree(), t)
		}
		for i, x := range xs[:len(ids)] {
			if got := poly.Eval(f, p, x); got != shares[i] {
				return fmt.Errorf("unpredictability: completion through %#x contradicts member %d's share", v, ids[i])
			}
		}
		if got := poly.Eval(f, p, 0); got != v {
			return fmt.Errorf("unpredictability: completion opens to %#x, want %#x", got, v)
		}
		completions = append(completions, p)
	}
	// The two completions open to different values, so they must be distinct
	// sharings — the coalition's view cannot tell them apart.
	a, b := completions[0], completions[1]
	if a.Degree() == b.Degree() {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			return fmt.Errorf("unpredictability: completions for both openings coincide")
		}
	}
	return nil
}
