package simnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

func TestRoundDelivery(t *testing.T) {
	nw := New(3)
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			nd.Send(1, []byte("from0"))
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
			return nil, nil
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			return msgs, nil
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			return msgs, err
		},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	msgs := results[1].Value.([]Message)
	if len(msgs) != 1 || string(msgs[0].Payload) != "from0" || msgs[0].From != 0 {
		t.Fatalf("player 1 inbox = %v", msgs)
	}
	if got := results[2].Value.([]Message); len(got) != 0 {
		t.Fatalf("player 2 inbox should be empty, got %v", got)
	}
}

func TestMessagesNotDeliveredEarly(t *testing.T) {
	// A message staged in round 0 must not be visible until the boundary:
	// all nodes observe it only in the inbox returned by EndRound.
	nw := New(2)
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			nd.Send(1, []byte("x"))
			_, err := nd.EndRound()
			return nil, err
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			if len(msgs) != 1 {
				return nil, fmt.Errorf("round-0 inbox size %d, want 1", len(msgs))
			}
			msgs2, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			if len(msgs2) != 0 {
				return nil, fmt.Errorf("round-1 inbox size %d, want 0 (no redelivery)", len(msgs2))
			}
			return nil, nil
		},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
}

func TestDeterministicOrdering(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		nw := New(4)
		fns := make([]PlayerFunc, 4)
		for i := 0; i < 3; i++ {
			i := i
			fns[i] = func(nd *Node) (interface{}, error) {
				nd.Send(3, []byte{byte(i), 0})
				nd.Send(3, []byte{byte(i), 1})
				_, err := nd.EndRound()
				return nil, err
			}
		}
		fns[3] = func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			return msgs, err
		}
		results := Run(nw, fns)
		msgs := results[3].Value.([]Message)
		if len(msgs) != 6 {
			t.Fatalf("got %d messages, want 6", len(msgs))
		}
		for j, m := range msgs {
			wantFrom, wantSeq := j/2, byte(j%2)
			if m.From != wantFrom || m.Payload[1] != wantSeq {
				t.Fatalf("trial %d: position %d has from=%d seq=%d, want from=%d seq=%d",
					trial, j, m.From, m.Payload[1], wantFrom, wantSeq)
			}
		}
	}
}

func TestBroadcastIdenticalEverywhere(t *testing.T) {
	nw := New(4)
	fns := make([]PlayerFunc, 4)
	fns[0] = func(nd *Node) (interface{}, error) {
		nd.Broadcast([]byte("announcement"))
		msgs, err := nd.EndRound()
		return msgs, err
	}
	for i := 1; i < 4; i++ {
		fns[i] = func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			return msgs, err
		}
	}
	results := Run(nw, fns)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		msgs := r.Value.([]Message)
		if len(msgs) != 1 || msgs[0].Kind != Broadcast || string(msgs[0].Payload) != "announcement" {
			t.Fatalf("player %d: broadcast not delivered identically: %v", i, msgs)
		}
	}
}

func TestSendAllExcludesSelf(t *testing.T) {
	nw := New(3)
	fns := make([]PlayerFunc, 3)
	for i := range fns {
		fns[i] = func(nd *Node) (interface{}, error) {
			nd.SendAll([]byte{byte(nd.Index())})
			msgs, err := nd.EndRound()
			return msgs, err
		}
	}
	results := Run(nw, fns)
	for i, r := range results {
		msgs := r.Value.([]Message)
		if len(msgs) != 2 {
			t.Fatalf("player %d: inbox size %d, want 2", i, len(msgs))
		}
		for _, m := range msgs {
			if m.From == i {
				t.Fatalf("player %d received its own SendAll", i)
			}
		}
	}
}

func TestHaltedNodeDoesNotBlockBarrier(t *testing.T) {
	nw := New(3)
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			return nil, nil // crashes immediately; Run halts the node
		},
		func(nd *Node) (interface{}, error) {
			for r := 0; r < 5; r++ {
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
			return "done", nil
		},
		func(nd *Node) (interface{}, error) {
			for r := 0; r < 5; r++ {
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
			return "done", nil
		},
	})
	for i := 1; i < 3; i++ {
		if results[i].Err != nil || results[i].Value != "done" {
			t.Fatalf("player %d: %+v", i, results[i])
		}
	}
}

func TestEndRoundAfterHalt(t *testing.T) {
	nw := New(1)
	nd := nw.Node(0)
	nd.Halt()
	if _, err := nd.EndRound(); !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	nd.Halt() // idempotent
}

func TestMaxRoundsStopsRunawayProtocol(t *testing.T) {
	nw := New(2, WithMaxRounds(10))
	fns := []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			for {
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
		},
		func(nd *Node) (interface{}, error) {
			for {
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
		},
	}
	results := Run(nw, fns)
	for i, r := range results {
		if !errors.Is(r.Err, ErrMaxRounds) {
			t.Fatalf("player %d: err = %v, want ErrMaxRounds", i, r.Err)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	var c metrics.Counters
	nw := New(3, WithCounters(&c))
	fns := []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			nd.Send(1, make([]byte, 10))
			nd.Broadcast(make([]byte, 4))
			_, err := nd.EndRound()
			return nil, err
		},
		func(nd *Node) (interface{}, error) {
			_, err := nd.EndRound()
			return nil, err
		},
		func(nd *Node) (interface{}, error) {
			_, err := nd.EndRound()
			return nil, err
		},
	}
	Run(nw, fns)
	s := c.Snapshot()
	if s.Messages != 1+3 {
		t.Errorf("messages = %d, want 4", s.Messages)
	}
	if s.Bytes != 10+3*4 {
		t.Errorf("bytes = %d, want 22", s.Bytes)
	}
	if s.Broadcasts != 1 {
		t.Errorf("broadcasts = %d, want 1", s.Broadcasts)
	}
	if s.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", s.Rounds)
	}
}

func TestMultiRoundPingPong(t *testing.T) {
	// Two nodes alternate incrementing a counter; verifies lockstep.
	const rounds = 50
	nw := New(2)
	mk := func(self, peer int) PlayerFunc {
		return func(nd *Node) (interface{}, error) {
			val := byte(0)
			for r := 0; r < rounds; r++ {
				nd.Send(peer, []byte{val + 1})
				msgs, err := nd.EndRound()
				if err != nil {
					return nil, err
				}
				if len(msgs) != 1 {
					return nil, fmt.Errorf("round %d: %d msgs", r, len(msgs))
				}
				got := msgs[0].Payload[0]
				if got != val+1 {
					return nil, fmt.Errorf("round %d: got %d, want %d", r, got, val+1)
				}
				val = got
			}
			return int(val), nil
		}
	}
	results := Run(nw, []PlayerFunc{mk(0, 1), mk(1, 0)})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.(int) != rounds {
			t.Fatalf("player %d: final value %v, want %d", i, r.Value, rounds)
		}
	}
}

func TestFirstFromEach(t *testing.T) {
	msgs := []Message{
		{From: 2, Payload: []byte("a")},
		{From: 2, Payload: []byte("b")},
		{From: 0, Payload: []byte("c")},
	}
	m := FirstFromEach(msgs)
	if len(m) != 2 || string(m[2]) != "a" || string(m[0]) != "c" {
		t.Fatalf("FirstFromEach = %v", m)
	}
}

func TestSendValidation(t *testing.T) {
	nw := New(2)
	nd := nw.Node(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Send to out-of-range node did not panic")
			}
		}()
		nd.Send(5, nil)
	}()
	nd.Halt()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Send after Halt did not panic")
			}
		}()
		nd.Send(1, nil)
	}()
}

func TestConcurrentNetworks(t *testing.T) {
	// Several independent networks running concurrently must not interfere.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nw := New(3)
			fns := make([]PlayerFunc, 3)
			for i := range fns {
				fns[i] = func(nd *Node) (interface{}, error) {
					for r := 0; r < 20; r++ {
						nd.SendAll([]byte{byte(r)})
						msgs, err := nd.EndRound()
						if err != nil {
							return nil, err
						}
						if len(msgs) != 2 {
							return nil, fmt.Errorf("round %d: %d msgs", r, len(msgs))
						}
					}
					return nil, nil
				}
			}
			for i, r := range Run(nw, fns) {
				if r.Err != nil {
					t.Errorf("net player %d: %v", i, r.Err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestRoundLimitErrorDiagnosis(t *testing.T) {
	// A runaway protocol must fail with a diagnosis naming the players that
	// were still running (the halted one is innocent) and the traffic that
	// was pending at the fatal boundary.
	nw := New(3, WithMaxRounds(5))
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			_, err := nd.EndRound()
			return nil, err // returns → halts after one round
		},
		func(nd *Node) (interface{}, error) {
			for {
				nd.Send(2, []byte("abc"))
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
		},
		func(nd *Node) (interface{}, error) {
			for {
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
		},
	})
	err := results[1].Err
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	var rle *RoundLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %T, want *RoundLimitError", err)
	}
	if rle.Limit != 5 {
		t.Fatalf("Limit = %d, want 5", rle.Limit)
	}
	if len(rle.Active) != 2 || rle.Active[0] != 1 || rle.Active[1] != 2 {
		t.Fatalf("Active = %v, want [1 2]", rle.Active)
	}
	if rle.StagedMsgs != 1 || rle.StagedBytes != 3 {
		t.Fatalf("staged = %d msgs / %d bytes, want 1 / 3", rle.StagedMsgs, rle.StagedBytes)
	}
	msg := err.Error()
	for _, want := range []string{"budget of 5 rounds", "players [1 2] still active", "1 msgs / 3 bytes staged"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestHaltedErrorDiagnosis(t *testing.T) {
	nw := New(2)
	nd := nw.Node(1)
	nd.Halt()
	_, err := nd.EndRound()
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	var he *HaltedError
	if !errors.As(err, &he) {
		t.Fatalf("err = %T, want *HaltedError", err)
	}
	if he.Player != 1 {
		t.Fatalf("Player = %d, want 1", he.Player)
	}
	if !strings.Contains(err.Error(), "node 1 has halted") {
		t.Fatalf("error %q does not name the node", err.Error())
	}
}

func TestTracerEmitsNetworkEvents(t *testing.T) {
	ring := obs.NewRing(0)
	tr := obs.New(nil, ring)
	nw := New(2, WithTracer(tr))
	if nw.Tracer() != tr {
		t.Fatal("Tracer() accessor does not return the installed tracer")
	}
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			if nd.Tracer() != tr {
				return nil, errors.New("node does not expose the network tracer")
			}
			nd.Send(1, []byte("hello"))
			nd.Broadcast([]byte("hi"))
			_, err := nd.EndRound()
			return nil, err
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			if len(msgs) != 2 {
				return nil, fmt.Errorf("got %d msgs, want 2", len(msgs))
			}
			return nil, nil
		},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	var sends, bcasts, delivers, rounds int
	for _, e := range ring.Events() {
		switch e.Type {
		case obs.EvSend:
			sends++
			if e.From != 0 || e.To != 1 || e.Bytes != 5 || e.Round != 0 {
				t.Fatalf("bad send event: %+v", e)
			}
		case obs.EvBroadcast:
			bcasts++
			if e.From != 0 || e.Bytes != 2 {
				t.Fatalf("bad broadcast event: %+v", e)
			}
		case obs.EvDeliver:
			delivers++
			if e.From != 0 || e.Round != 0 {
				t.Fatalf("bad deliver event: %+v", e)
			}
		case obs.EvRound:
			rounds++
			// 3 deliveries: the unicast to p1 plus the broadcast copy at
			// every node (the ideal facility includes the sender).
			if e.Round != 0 || e.Count != 3 || e.Bytes != 9 {
				t.Fatalf("bad round event: %+v", e)
			}
		}
	}
	if sends != 1 || bcasts != 1 || delivers != 3 || rounds != 1 {
		t.Fatalf("event counts send=%d bcast=%d deliver=%d round=%d, want 1/1/3/1",
			sends, bcasts, delivers, rounds)
	}
}
