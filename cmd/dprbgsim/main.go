// Command dprbgsim runs a configurable D-PRBG simulation: n players
// (optionally some Byzantine), a one-time trusted seed, and a stream of
// shared coins generated on demand with full cost accounting. It is the
// interactive companion to cmd/experiments.
//
// Usage:
//
//	dprbgsim -n 13 -t 2 -k 32 -coins 200 -batch 32 -crash 2,9 -v
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 7, "number of players (n ≥ 6t+1)")
		t       = flag.Int("t", 1, "Byzantine fault bound")
		k       = flag.Int("k", 32, "coin field GF(2^k), 2 ≤ k ≤ 64")
		coins   = flag.Int("coins", 100, "shared coins to generate")
		batch   = flag.Int("batch", 16, "Coin-Gen batch size M")
		seed    = flag.Int("seed", 8, "initial trusted-dealer seed coins")
		crash   = flag.String("crash", "", "comma-separated player indices that crash at start")
		rngSeed = flag.Int64("rngseed", time.Now().UnixNano(), "PRNG seed (reproducibility)")
		verbose = flag.Bool("v", false, "print every coin")
		useTCP  = flag.Bool("tcp", false, "carry every protocol message over TCP loopback sockets")
	)
	flag.Parse()

	field, err := gf2k.New(*k)
	if err != nil {
		return err
	}
	crashed := map[int]bool{}
	if *crash != "" {
		for _, s := range strings.Split(*crash, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || idx < 0 || idx >= *n {
				return fmt.Errorf("bad -crash entry %q", s)
			}
			crashed[idx] = true
		}
	}
	if len(crashed) > *t {
		return fmt.Errorf("%d crashed players exceed fault bound t=%d", len(crashed), *t)
	}

	var ctr metrics.Counters
	cfg := core.Config{
		Field:     field.WithCounters(&ctr),
		N:         *n,
		T:         *t,
		BatchSize: *batch,
		Counters:  &ctr,
	}
	rng := rand.New(rand.NewSource(*rngSeed))
	gens, err := core.SetupTrusted(cfg, *seed, rng)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "dprbgsim: n=%d t=%d k=%d batch=%d seed=%d crashed=%v rngseed=%d tcp=%v\n",
		*n, *t, *k, *batch, *seed, keys(crashed), *rngSeed, *useTCP)

	var nw *simnet.Network
	if *useTCP {
		nw, err = simnet.NewTCP(*n, simnet.WithCounters(&ctr))
		if err != nil {
			return err
		}
		defer nw.Close()
	} else {
		nw = simnet.New(*n, simnet.WithCounters(&ctr))
	}
	fns := make([]simnet.PlayerFunc, *n)
	for i := 0; i < *n; i++ {
		if crashed[i] {
			fns[i] = adversary.Crash()
			continue
		}
		i := i
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(*rngSeed + int64(i) + 1))
			out := make([]gf2k.Element, 0, *coins)
			for len(out) < *coins {
				c, err := gens[i].Next(nd, rnd)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		}
	}
	start := time.Now()
	results := simnet.Run(nw, fns)
	elapsed := time.Since(start)

	var ref []gf2k.Element
	var refIdx int
	for i, r := range results {
		if crashed[i] {
			continue
		}
		if r.Err != nil {
			return fmt.Errorf("player %d: %w", i, r.Err)
		}
		if ref == nil {
			ref = r.Value.([]gf2k.Element)
			refIdx = i
			continue
		}
		got := r.Value.([]gf2k.Element)
		for h := range ref {
			if got[h] != ref[h] {
				return fmt.Errorf("UNANIMITY VIOLATION at coin %d between players %d and %d", h, refIdx, i)
			}
		}
	}

	if *verbose {
		for h, c := range ref {
			fmt.Printf("coin %4d: %0*x\n", h, (field.K()+3)/4, uint64(c))
		}
	}
	st := gens[refIdx].Stats()
	s := ctr.Snapshot()
	fmt.Printf("coins delivered:   %d (all honest players unanimous)\n", st.CoinsDelivered)
	fmt.Printf("refills:           %d (batch size %d; %.2f seed coins each; %.2f leader attempts each)\n",
		st.Batches, *batch, float64(st.SeedSpent)/max1(st.Batches), float64(st.Attempts)/max1(st.Batches))
	fmt.Printf("totals:            %d msgs, %d bytes, %d rounds, %d interpolations, %d field mults\n",
		s.Messages, s.Bytes, s.Rounds, s.Interpolations, s.FieldMuls)
	fmt.Printf("amortized/coin:    %.1f msgs, %.1f bytes, %.2f rounds, %.2f interpolations\n",
		float64(s.Messages)/float64(*coins), float64(s.Bytes)/float64(*coins),
		float64(s.Rounds)/float64(*coins), float64(s.Interpolations)/float64(*coins))
	fmt.Printf("wall clock:        %v (%.1f µs/coin)\n", elapsed,
		float64(elapsed.Microseconds())/float64(*coins))
	return nil
}

func max1(v int) float64 {
	if v < 1 {
		return 1
	}
	return float64(v)
}

func keys(m map[int]bool) []int {
	var out []int
	for v := range m {
		out = append(out, v)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
