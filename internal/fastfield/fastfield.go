// Package fastfield implements the paper's §2 "specially constructed finite
// field in which we can multiply faster": GF(q^l) for a prime q = O(l) with
// q^l ≥ 2^k, elements viewed as degree-<l polynomials over Z_q, multiplied
// with discrete Fourier transforms (NTTs) modulo an irreducible polynomial
// in O(l log l) Z_q operations. With q = O(l) and l = O(k/log k) this gives
// the paper's O(k log k) multiplication bound.
//
// The package exists to reproduce the paper's own caveat: "in practice,
// when k is small, working over GF(2^k) with the naive O(k²) multiplication
// is faster than working over our special field with the O(k log k)
// multiplication, because of the sizes of the constants involved. So an
// implementation should be careful about which method it uses." Experiment
// E9 benchmarks this field against the naive GF(2^k) implementations
// (internal/gf2k for k ≤ 64, internal/gf2big beyond) and locates the
// crossover.
//
// Reduction modulo the irreducible polynomial uses Barrett/Newton division
// (a precomputed power-series inverse of the reversed modulus), so a full
// field multiplication costs three NTT multiplications — still O(l log l).
// Inversions use the extended Euclidean algorithm (they are off the
// critical path). MulNaive provides the schoolbook O(l²) path for ablation.
package fastfield

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Element is an element of GF(q^l): a coefficient vector of length l over
// Z_q. Treat as immutable.
type Element []uint32

// Field is GF(q^l) with NTT-based multiplication.
type Field struct {
	z    *zq
	l    int
	ntt  *ntt
	h    []uint32 // irreducible modulus, monic, degree l (len l+1)
	vinv []uint32 // Newton inverse of reverse(h) mod x^(l−1)
	bits float64  // log2(q^l): effective security parameter
}

// New chooses parameters for security parameter k (so that q^l ≥ 2^k),
// following the paper's recipe: l = O(k/log k), q = O(l) prime admitting
// size-2^m NTTs with 2^m ≥ 2l.
func New(k int) (*Field, error) {
	if k < 2 {
		return nil, fmt.Errorf("fastfield: k must be ≥ 2, got %d", k)
	}
	for l := 2; l <= 1<<20; l *= 2 {
		size := nextPow2(2*l - 1)
		q, ok := findNTTPrime(size, uint32(2*l+1))
		if !ok {
			continue
		}
		if float64(l)*math.Log2(float64(q)) >= float64(k) {
			return NewWithParams(q, l)
		}
	}
	return nil, fmt.Errorf("fastfield: no parameters found for k=%d", k)
}

// NewWithParams builds GF(q^l) explicitly. q must be prime with
// q ≡ 1 (mod 2^⌈log₂(2l−1)⌉) and q ≥ 2l+1; l must be ≥ 2.
func NewWithParams(q uint32, l int) (*Field, error) {
	if l < 2 {
		return nil, fmt.Errorf("fastfield: l must be ≥ 2, got %d", l)
	}
	if !isPrime(q) {
		return nil, fmt.Errorf("fastfield: q=%d is not prime", q)
	}
	if uint64(q) < uint64(2*l+1) {
		return nil, fmt.Errorf("fastfield: need q ≥ 2l+1 (q=%d, l=%d)", q, l)
	}
	z := newZq(q)
	size := nextPow2(2*l - 1)
	tr, err := newNTT(z, size)
	if err != nil {
		return nil, err
	}
	f := &Field{z: z, l: l, ntt: tr, bits: float64(l) * math.Log2(float64(q))}
	h, err := f.findIrreducible()
	if err != nil {
		return nil, err
	}
	f.h = h
	f.vinv = f.newtonInverse(reversed(h), l-1)
	return f, nil
}

// Q returns the characteristic prime.
func (f *Field) Q() uint32 { return f.z.q }

// L returns the extension degree.
func (f *Field) L() int { return f.l }

// Bits returns log₂ of the field size (the effective security parameter).
func (f *Field) Bits() float64 { return f.bits }

// Modulus returns a copy of the irreducible modulus (monic, degree l).
func (f *Field) Modulus() []uint32 { return append([]uint32(nil), f.h...) }

// Zero returns the additive identity.
func (f *Field) Zero() Element { return make(Element, f.l) }

// One returns the multiplicative identity.
func (f *Field) One() Element {
	e := make(Element, f.l)
	e[0] = 1
	return e
}

// Valid reports whether e is a canonical element.
func (f *Field) Valid(e Element) bool {
	if len(e) != f.l {
		return false
	}
	for _, c := range e {
		if c >= f.z.q {
			return false
		}
	}
	return true
}

// Equal reports a == b.
func (f *Field) Equal(a, b Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether e is zero.
func (f *Field) IsZero(e Element) bool {
	for _, c := range e {
		if c != 0 {
			return false
		}
	}
	return true
}

// Add returns a+b.
func (f *Field) Add(a, b Element) Element {
	out := make(Element, f.l)
	for i := range out {
		out[i] = f.z.add(a[i], b[i])
	}
	return out
}

// Sub returns a−b.
func (f *Field) Sub(a, b Element) Element {
	out := make(Element, f.l)
	for i := range out {
		out[i] = f.z.sub(a[i], b[i])
	}
	return out
}

// Mul returns a·b via NTT multiplication and Barrett reduction:
// O(l log l) Z_q operations.
func (f *Field) Mul(a, b Element) Element {
	prod := f.ntt.mulPoly(trim(a), trim(b))
	return f.reduce(prod)
}

// MulNaive returns a·b via schoolbook multiplication and long division —
// the O(l²) comparison path for experiment E9's ablation.
func (f *Field) MulNaive(a, b Element) Element {
	ta, tb := trim(a), trim(b)
	if len(ta) == 0 || len(tb) == 0 {
		return f.Zero()
	}
	prod := make([]uint32, len(ta)+len(tb)-1)
	for i, x := range ta {
		if x == 0 {
			continue
		}
		for j, y := range tb {
			prod[i+j] = f.z.add(prod[i+j], f.z.mul(x, y))
		}
	}
	rem := f.polyMod(prod, f.h)
	out := make(Element, f.l)
	copy(out, rem)
	return out
}

// Inv returns the multiplicative inverse via the extended Euclidean
// algorithm over Z_q[x]. Panics on zero.
func (f *Field) Inv(a Element) Element {
	if f.IsZero(a) {
		panic("fastfield: inverse of zero")
	}
	// Extended Euclid: maintain r0, r1 and s0, s1 with si·a ≡ ri (mod h).
	r0 := append([]uint32(nil), f.h...)
	r1 := trim(a)
	s0 := []uint32{}
	s1 := []uint32{1}
	for polyDeg(r1) > 0 {
		q, rem := f.polyDivMod(r0, r1)
		r0, r1 = r1, rem
		s0, s1 = s1, f.polySub(s0, f.polyMulSchool(q, s1))
	}
	// r1 is a nonzero constant c; inverse is s1/c.
	c := r1[polyDeg(r1)]
	ci := f.z.inv(c)
	out := make(Element, f.l)
	for i := 0; i < len(s1) && i < f.l; i++ {
		out[i] = f.z.mul(s1[i], ci)
	}
	return out
}

// Exp returns a^e.
func (f *Field) Exp(a Element, e uint64) Element {
	result := f.One()
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Rand returns a uniform random element read from r (rejection sampling
// per coefficient).
func (f *Field) Rand(r io.Reader) (Element, error) {
	out := make(Element, f.l)
	var buf [4]byte
	// Rejection bound: largest multiple of q below 2^32.
	limit := (uint64(1) << 32) / uint64(f.z.q) * uint64(f.z.q)
	for i := range out {
		for {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, fmt.Errorf("fastfield: read randomness: %w", err)
			}
			v := uint64(binary.LittleEndian.Uint32(buf[:]))
			if v < limit {
				out[i] = uint32(v % uint64(f.z.q))
				break
			}
		}
	}
	return out, nil
}

// reduce brings a product (deg ≤ 2l−2) into canonical form using the
// precomputed Newton inverse: quotient via two truncated NTT products.
func (f *Field) reduce(c []uint32) Element {
	out := make(Element, f.l)
	dc := polyDeg(c)
	if dc < f.l {
		copy(out, c[:dc+1])
		return out
	}
	dq := dc - f.l // quotient degree, ≤ l−2
	// rev(c) truncated to the precision we need.
	revc := make([]uint32, dq+1)
	for i := 0; i <= dq; i++ {
		revc[i] = c[dc-i]
	}
	vtrunc := f.vinv
	if len(vtrunc) > dq+1 {
		vtrunc = vtrunc[:dq+1]
	}
	t := f.ntt.mulPoly(revc, vtrunc)
	if len(t) > dq+1 {
		t = t[:dq+1]
	}
	// Q = reverse of t at degree dq.
	q := make([]uint32, dq+1)
	for i := 0; i <= dq; i++ {
		if i < len(t) {
			q[dq-i] = t[i]
		}
	}
	qh := f.ntt.mulPoly(q, f.h)
	for i := 0; i < f.l; i++ {
		var ci, qi uint32
		if i < len(c) {
			ci = c[i]
		}
		if i < len(qh) {
			qi = qh[i]
		}
		out[i] = f.z.sub(ci, qi)
	}
	return out
}

// newtonInverse computes g^{-1} mod x^prec for g with g[0] ≠ 0 by Newton
// iteration (setup-time only; schoolbook truncated products).
func (f *Field) newtonInverse(g []uint32, prec int) []uint32 {
	if prec < 1 {
		prec = 1
	}
	v := []uint32{f.z.inv(g[0])}
	for m := 1; m < prec; {
		m2 := 2 * m
		if m2 > prec {
			m2 = prec
		}
		gv := f.polyMulSchoolTrunc(g, v, m2)
		// 2 − g·v
		two := make([]uint32, m2)
		two[0] = f.z.add(1, 1)
		for i := range gv {
			if i < m2 {
				two[i] = f.z.sub(two[i], gv[i])
			}
		}
		v = f.polyMulSchoolTrunc(v, two, m2)
		m = m2
	}
	return v
}

// findIrreducible deterministically enumerates monic degree-l polynomials
// and returns the first that passes the Ben-Or irreducibility test.
func (f *Field) findIrreducible() ([]uint32, error) {
	h := make([]uint32, f.l+1)
	h[f.l] = 1
	// Enumerate over (c1, c0): x^l + c1·x + c0, then widen if needed.
	for c1 := uint32(0); c1 < f.z.q; c1++ {
		for c0 := uint32(1); c0 < f.z.q; c0++ {
			h[1], h[0] = c1, c0
			if f.isIrreducible(h) {
				return append([]uint32(nil), h...), nil
			}
		}
	}
	// Extremely unlikely fallback: add a quadratic term.
	for c2 := uint32(1); c2 < f.z.q; c2++ {
		for c0 := uint32(1); c0 < f.z.q; c0++ {
			h[2], h[1], h[0] = c2, 0, c0
			if f.isIrreducible(h) {
				return append([]uint32(nil), h...), nil
			}
		}
	}
	return nil, errors.New("fastfield: no irreducible polynomial found")
}

// isIrreducible applies the Ben-Or test: h (monic, degree l) is irreducible
// iff gcd(x^(q^i) − x mod h, h) = 1 for i = 1..⌊l/2⌋.
func (f *Field) isIrreducible(h []uint32) bool {
	x := []uint32{0, 1}
	u := append([]uint32(nil), x...) // x^(q^i) mod h, starting i=0
	for i := 1; i <= f.l/2; i++ {
		u = f.polyPowMod(u, uint64(f.z.q), h)
		d := f.polyGCD(f.polySub(u, x), h)
		if polyDeg(d) != 0 {
			return false
		}
	}
	return true
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func trim(a []uint32) []uint32 {
	d := polyDeg(a)
	return a[:d+1]
}

func reversed(h []uint32) []uint32 {
	out := make([]uint32, len(h))
	for i := range h {
		out[len(h)-1-i] = h[i]
	}
	return out
}

func polyDeg(a []uint32) int {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != 0 {
			return i
		}
	}
	return -1
}
