package beacon

// VarsSnapshot is the unified /debug/vars schema: both beacond modes
// publish it under the single "beacon" expvar key, so one scraper
// (cmd/beaconctl, dashboards) reads any deployment without caring which
// mode it hit. Shared concepts share fields — Remaining, Epoch, Refilling,
// Refills mean the same thing everywhere — and mode-specific fields are
// zero in the other mode. Mode disambiguates: "service" is the
// single-process Service, "player" a per-player Daemon.
type VarsSnapshot struct {
	Mode      string
	Remaining int
	Epoch     int
	Refilling bool
	Refills   int64

	// Service-mode serving stats (zero in player mode).
	QueueDepth       int
	CoinsDelivered   int64
	Draws            int64
	PipelinedRefills int64
	BlockingRefills  int64
	BlockedDraws     int64
	Overloaded       int64
	RateLimited      int64
	Resumed          bool

	// Player-mode cluster position (zero in service mode).
	Player     int
	Round      int
	LogLen     int
	Joined     bool
	Generation int
	Peers      []bool `json:",omitempty"`
}

// Vars converts a Service snapshot to the unified schema. A Service has no
// persisted epoch counter; each absorbed batch is one epoch, so Refills is
// the epoch by construction.
func (s Stats) Vars() VarsSnapshot {
	return VarsSnapshot{
		Mode:             "service",
		Remaining:        s.Remaining,
		Epoch:            int(s.Refills),
		Refilling:        s.RefillInFlight,
		Refills:          s.Refills,
		QueueDepth:       s.QueueDepth,
		CoinsDelivered:   s.CoinsDelivered,
		Draws:            s.Draws,
		PipelinedRefills: s.PipelinedRefills,
		BlockingRefills:  s.BlockingRefills,
		BlockedDraws:     s.BlockedDraws,
		Overloaded:       s.Overloaded,
		RateLimited:      s.RateLimited,
		Resumed:          s.Resumed,
	}
}

// Vars converts a Daemon snapshot to the unified schema.
func (d DaemonStats) Vars() VarsSnapshot {
	return VarsSnapshot{
		Mode:       "player",
		Remaining:  d.Remaining,
		Epoch:      d.Epoch,
		Refilling:  d.Refilling,
		Refills:    int64(d.Epoch),
		Player:     d.Player,
		Round:      d.Round,
		LogLen:     d.LogLen,
		Joined:     d.Joined,
		Generation: d.Generation,
		Peers:      d.Peers,
	}
}
