package simnet

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// TestQueryReplyBoundToPeer pins the anti-forgery contract of the query
// side-channel: query ids are sequential and predictable, so a Byzantine
// peer could pre-send replies on its OWN connection that claim the ids of
// queries addressed to honest peers. Such a reply must not settle the
// query (it would let one corrupt peer feed a rejoining daemon a
// fabricated public log, defeating the t+1 cross-check).
//
// Player 2 here is a fake: it completes the handshake, then floods forged
// framePeerReply frames for the first few query ids. Player 0's query to
// the honest player 1 must still return player 1's genuine answer.
func TestQueryReplyBoundToPeer(t *testing.T) {
	cfg := testPeerCfg(t, 3)
	digest := cfg.Digest()

	// Fake player 2: accept, authenticate, then forge replies.
	ln, err := net.Listen("tcp", cfg.ListenAddr(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, err := acceptHandshake(conn, cfg.Secret, 2, digest); err != nil {
					return
				}
				for {
					for id := uint64(0); id < 4; id++ {
						payload := make([]byte, 8, 8+6)
						binary.LittleEndian.PutUint64(payload, id)
						payload = append(payload, []byte("FORGED")...)
						if err := writeFrame(conn, framePeerReply, 0, payload); err != nil {
							return
						}
					}
					select {
					case <-stop:
						return
					case <-time.After(10 * time.Millisecond):
					}
				}
			}(conn)
		}
	}()

	handler := func(from int, req []byte) []byte {
		time.Sleep(150 * time.Millisecond) // keep the query pending while forgeries arrive
		return []byte("GENUINE")
	}
	var nws [2]*Network
	for i := 0; i < 2; i++ {
		nw, err := NewPeer(cfg, i, WithQueryHandler(handler),
			WithDialBackoff(20*time.Millisecond, 100*time.Millisecond))
		if err != nil {
			t.Fatalf("NewPeer(%d): %v", i, err)
		}
		t.Cleanup(nw.Close)
		nws[i] = nw
	}

	// Wait for 0↔1 both ways and 0→2 (the forgery channel) to come up.
	if err := nws[0].WaitPeers(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !nws[0].PeerConnected()[2] {
		if time.Now().After(deadline) {
			t.Fatal("dial to fake player 2 never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let forged replies for id 0 start flowing

	resp, err := nws[0].Query(1, []byte("ping"), 5*time.Second)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if string(resp) != "GENUINE" {
		t.Fatalf("query answered with %q — a forged cross-peer reply settled it", resp)
	}
}

// TestWatermarkClampedAfterStart checks the staging-horizon guard: once the
// round machinery is running, a peer declaring an absurd watermark (round
// 2^30) must be clamped to maxFutureWindow past the local committed round,
// so stageRemote's horizon — and with it the staged map — stays bounded.
// Before StartAt the declared value is kept: a rejoiner's local round is
// still 0 while the cluster may legitimately be far ahead.
func TestWatermarkClampedAfterStart(t *testing.T) {
	cfg := testPeerCfg(t, 2)
	nws := startPeerCluster(t, cfg)

	// Not started: the declared position is recorded as-is.
	nws[1].pn.advanceWatermark(0, 1<<30, -1)
	if got := nws[1].PeerWatermark(0); got != 1<<30 {
		t.Fatalf("pre-start watermark = %d, want %d", got, 1<<30)
	}

	if err := nws[0].StartAt(0); err != nil {
		t.Fatal(err)
	}
	nws[0].pn.advanceWatermark(1, 1<<30, -1)
	if got := nws[0].PeerWatermark(1); got != maxFutureWindow {
		t.Fatalf("post-start watermark = %d, want clamp at %d", got, maxFutureWindow)
	}
}
