package simnet

// Peer-transport metrics: the prom instruments a daemon exports about its
// view of the cluster. Each daemon only sees its own connections and
// watermarks, so these series are per-process by construction; scraping all
// n daemons (cmd/beaconctl does) reassembles the cluster picture —
// watermark lag flags stragglers, demotion/reconnect counters flag flapping
// links, the RTT and round-duration histograms localize slowness.

import (
	"strconv"

	"repro/internal/obs/prom"
)

// PeerMetrics declares the peer-transport metric families on a registry.
// Pass it to NewPeer via WithPeerMetrics; a nil *PeerMetrics (or one built
// from a nil registry) disables the instrumentation with no overhead beyond
// a nil check.
type PeerMetrics struct {
	// Watermark is simnet_peer_watermark{peer}: the highest round each peer
	// has declared complete, -1 until first heard from.
	Watermark *prom.GaugeVec
	// WatermarkLag is simnet_peer_watermark_lag{peer}: rounds the peer
	// trails the cluster lead (0 = keeping up). The straggler signal.
	WatermarkLag *prom.GaugeVec
	// Connected is simnet_peer_connected{peer}: 1 while the authenticated
	// outgoing connection is up.
	Connected *prom.GaugeVec
	// Epoch is simnet_peer_epoch{peer}: the beacon epoch each peer last
	// announced on a done/status frame, -1 until announced.
	Epoch *prom.GaugeVec
	// Demotions is simnet_peer_demotions_total{peer}: barriers that gave up
	// waiting for the peer and committed without it.
	Demotions *prom.CounterVec
	// Connects is simnet_peer_reconnects_total{peer}: successful
	// authenticated dials (the first connect counts as the first reconnect).
	Connects *prom.CounterVec
	// RedialBackoff is simnet_peer_redial_backoff_seconds{peer}: the current
	// backoff delay while the dial loop is retrying, 0 once connected.
	RedialBackoff *prom.GaugeVec
	// QueryRTT is simnet_peer_query_rtt_seconds{peer}: round-trip time of
	// out-of-band queries (the rejoin catch-up channel).
	QueryRTT *prom.HistogramVec
	// Handshakes is simnet_handshake_total{result}: outcome of every
	// outgoing dial attempt — "ok", "reject" (connected but the handshake
	// failed) or "dial-error" (no connection).
	Handshakes *prom.CounterVec
	// RoundDuration is simnet_round_duration_seconds: wall-clock time
	// EndRound spends flushing and waiting at the distributed barrier.
	RoundDuration *prom.Histogram
}

// NewPeerMetrics registers the peer-transport families on r (nil r → nil
// handles throughout, the disabled path).
func NewPeerMetrics(r *prom.Registry) *PeerMetrics {
	return &PeerMetrics{
		Watermark:     r.GaugeVec("simnet_peer_watermark", "Highest round the peer declared complete (-1 if never heard from).", "peer"),
		WatermarkLag:  r.GaugeVec("simnet_peer_watermark_lag", "Rounds the peer trails the cluster lead.", "peer"),
		Connected:     r.GaugeVec("simnet_peer_connected", "1 while the authenticated outgoing connection to the peer is up.", "peer"),
		Epoch:         r.GaugeVec("simnet_peer_epoch", "Beacon epoch the peer last announced (-1 if never announced).", "peer"),
		Demotions:     r.CounterVec("simnet_peer_demotions_total", "Round barriers that timed out waiting for the peer and demoted it.", "peer"),
		Connects:      r.CounterVec("simnet_peer_reconnects_total", "Successful authenticated dials to the peer (first connect included).", "peer"),
		RedialBackoff: r.GaugeVec("simnet_peer_redial_backoff_seconds", "Current redial backoff delay while disconnected (0 when connected).", "peer"),
		QueryRTT:      r.HistogramVec("simnet_peer_query_rtt_seconds", "Round-trip time of out-of-band peer queries.", nil, "peer"),
		Handshakes:    r.CounterVec("simnet_handshake_total", "Outgoing dial attempts by outcome (ok, reject, dial-error).", "result"),
		RoundDuration: r.Histogram("simnet_round_duration_seconds", "EndRound wall-clock time: flush plus distributed barrier wait.", nil),
	}
}

// WithPeerMetrics attaches peer-transport instrumentation to a NewPeer
// network (the in-memory and TCP transports ignore it).
func WithPeerMetrics(pm *PeerMetrics) Option {
	return func(nw *Network) { nw.peerOpts.metrics = pm }
}

// peerInstruments is the per-network resolved form of PeerMetrics: label
// lookups done once at NewPeer, so the round path touches only atomic
// handles. All methods are nil-receiver safe.
type peerInstruments struct {
	watermark, lag, connected, backoff, epoch []*prom.Gauge
	demotions, connects                       []*prom.Counter
	queryRTT                                  []*prom.Histogram
	hsOK, hsReject, hsDialErr                 *prom.Counter
	roundDur                                  *prom.Histogram
}

func newPeerInstruments(pm *PeerMetrics, n int) *peerInstruments {
	if pm == nil {
		return nil
	}
	pi := &peerInstruments{
		watermark: make([]*prom.Gauge, n),
		lag:       make([]*prom.Gauge, n),
		connected: make([]*prom.Gauge, n),
		backoff:   make([]*prom.Gauge, n),
		epoch:     make([]*prom.Gauge, n),
		demotions: make([]*prom.Counter, n),
		connects:  make([]*prom.Counter, n),
		queryRTT:  make([]*prom.Histogram, n),
		hsOK:      pm.Handshakes.With("ok"),
		hsReject:  pm.Handshakes.With("reject"),
		hsDialErr: pm.Handshakes.With("dial-error"),
		roundDur:  pm.RoundDuration,
	}
	for j := 0; j < n; j++ {
		l := strconv.Itoa(j)
		pi.watermark[j] = pm.Watermark.With(l)
		pi.lag[j] = pm.WatermarkLag.With(l)
		pi.connected[j] = pm.Connected.With(l)
		pi.backoff[j] = pm.RedialBackoff.With(l)
		pi.epoch[j] = pm.Epoch.With(l)
		pi.demotions[j] = pm.Demotions.With(l)
		pi.connects[j] = pm.Connects.With(l)
		pi.queryRTT[j] = pm.QueryRTT.With(l)
		pi.watermark[j].Set(-1)
		pi.epoch[j].Set(-1)
	}
	return pi
}

func (pi *peerInstruments) setConnected(j int, up bool) {
	if pi == nil {
		return
	}
	v := 0.0
	if up {
		v = 1
	}
	pi.connected[j].Set(v)
}

func (pi *peerInstruments) setBackoff(j int, seconds float64) {
	if pi == nil {
		return
	}
	pi.backoff[j].Set(seconds)
}

func (pi *peerInstruments) handshake(outcome byte) {
	if pi == nil {
		return
	}
	switch outcome {
	case 'o':
		pi.hsOK.Inc()
	case 'r':
		pi.hsReject.Inc()
	default:
		pi.hsDialErr.Inc()
	}
}

func (pi *peerInstruments) connect(j int) {
	if pi == nil {
		return
	}
	pi.connects[j].Inc()
}

func (pi *peerInstruments) demoted(j int) {
	if pi == nil {
		return
	}
	pi.demotions[j].Inc()
}

func (pi *peerInstruments) setWatermark(j, w int) {
	if pi == nil {
		return
	}
	pi.watermark[j].SetInt(int64(w))
}

func (pi *peerInstruments) setEpoch(j, e int) {
	if pi == nil {
		return
	}
	pi.epoch[j].SetInt(int64(e))
}

// updateLags refreshes the per-peer lag gauges against the given cluster
// lead (the max of every watermark and the local committed round).
func (pi *peerInstruments) updateLags(self, lead int, watermark []int) {
	if pi == nil {
		return
	}
	for j, w := range watermark {
		if j == self {
			pi.lag[j].Set(0)
			continue
		}
		lag := lead - w
		if lag < 0 {
			lag = 0
		}
		pi.lag[j].SetInt(int64(lag))
	}
}

func (pi *peerInstruments) observeRound(seconds float64) {
	if pi == nil {
		return
	}
	pi.roundDur.Observe(seconds)
}

func (pi *peerInstruments) observeQuery(j int, seconds float64) {
	if pi == nil {
		return
	}
	pi.queryRTT[j].Observe(seconds)
}
